package dharma_test

import (
	"context"
	"fmt"
	"testing"

	"dharma"
	"dharma/internal/dataset"
	"dharma/internal/folksonomy"
	"dharma/internal/search"
)

// TestPipelineOverlayMatchesModel is the end-to-end integration test:
// a synthetic workload published through a live overlay by many peers
// must leave the DHT holding exactly the graph the in-memory model
// predicts (naive mode), and navigation over the overlay must follow
// the same path as navigation over the model.
func TestPipelineOverlayMatchesModel(t *testing.T) {
	sys, err := dharma.NewSystem(dharma.Config{
		Nodes: 20, Mode: dharma.Naive, Seed: 77, TopN: -1,
	})
	if err != nil {
		t.Fatal(err)
	}

	d := dataset.Generate(dataset.Tiny(9))
	schedule := d.Shuffled(10)[:600]

	model := folksonomy.New()
	inserted := map[string]bool{}
	for i, a := range schedule {
		peer := sys.Peer(i % sys.Size())
		if !inserted[a.Resource] {
			if err := peer.InsertResource(context.Background(), a.Resource, "uri:"+a.Resource, nil); err != nil {
				t.Fatal(err)
			}
			if err := model.InsertResource(a.Resource, "uri:"+a.Resource); err != nil {
				t.Fatal(err)
			}
			inserted[a.Resource] = true
		}
		if err := peer.Tag(context.Background(), a.Resource, a.Tag); err != nil {
			t.Fatal(err)
		}
		if err := model.Tag(a.Resource, a.Tag); err != nil {
			t.Fatal(err)
		}
	}

	// Every tag's FG adjacency on the DHT equals the model's.
	reader := sys.Peer(7)
	for _, tag := range model.TagNames() {
		want := map[string]int{}
		for _, w := range model.Neighbors(tag) {
			want[w.Name] = w.Weight
		}
		got, err := reader.Neighbors(context.Background(), tag)
		if err != nil {
			t.Fatalf("Neighbors(%s): %v", tag, err)
		}
		live := 0
		for _, w := range got {
			if w.Weight == 0 {
				continue
			}
			live++
			if want[w.Name] != w.Weight {
				t.Fatalf("sim(%s,%s) = %d on overlay, model %d", tag, w.Name, w.Weight, want[w.Name])
			}
		}
		if live != len(want) {
			t.Fatalf("tag %s: %d arcs on overlay, model %d", tag, live, len(want))
		}
	}

	// Navigation agreement: same path over the overlay and the model.
	start := dataset.PopularTags(model, 1)[0]
	overlayNav, navErr := reader.Navigate(context.Background(), start, dharma.First, dharma.NavOptions{})
	if navErr != nil {
		t.Fatalf("overlay navigate: %v", navErr)
	}
	modelNav, _ := search.Run(context.Background(), search.NewFolkView(model), start, search.First, search.Options{})
	if fmt.Sprint(overlayNav.Path) != fmt.Sprint(modelNav.Path) {
		t.Fatalf("paths diverge:\noverlay %v\nmodel   %v", overlayNav.Path, modelNav.Path)
	}
	if overlayNav.Reason != modelNav.Reason {
		t.Fatalf("termination reasons diverge: %v vs %v", overlayNav.Reason, modelNav.Reason)
	}
}

// TestPipelineSurvivesChurnWithMaintenance publishes a workload, churns
// a third of the overlay away, republishes, and verifies search results
// keep working through the facade.
func TestPipelineSurvivesChurnWithMaintenance(t *testing.T) {
	sys, err := dharma.NewSystem(dharma.Config{Nodes: 30, K: 4, Seed: 78})
	if err != nil {
		t.Fatal(err)
	}
	d := dataset.Generate(dataset.Tiny(11))
	schedule := d.Shuffled(12)[:400]
	pop := map[string]int{}
	inserted := map[string]bool{}
	for i, a := range schedule {
		peer := sys.Peer(i % sys.Size())
		if !inserted[a.Resource] {
			if err := peer.InsertResource(context.Background(), a.Resource, "uri:"+a.Resource, nil); err != nil {
				t.Fatal(err)
			}
			inserted[a.Resource] = true
		}
		if err := peer.Tag(context.Background(), a.Resource, a.Tag); err != nil {
			t.Fatal(err)
		}
		pop[a.Tag]++
	}

	// Kill ten nodes, then let the survivors repair replication.
	for i := 10; i < 20; i++ {
		sys.SetDown(i, true)
	}
	for i, p := range sys.Peers() {
		if i >= 10 && i < 20 {
			continue
		}
		p.Node.RepublishOnce(context.Background())
	}

	// The most popular tags must all still answer search steps.
	reader := sys.Peer(0)
	checked := 0
	for tag, n := range pop {
		if n < 5 {
			continue
		}
		if _, _, err := reader.SearchStep(context.Background(), tag); err != nil {
			t.Fatalf("SearchStep(%s) after churn: %v", tag, err)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no popular tags to check")
	}
}

// TestConcurrentPeersPublishing exercises the race-freedom claim of
// Approximation B end to end: many peers tag the same resource
// concurrently and every increment must be accounted.
func TestConcurrentPeersPublishing(t *testing.T) {
	sys, err := dharma.NewSystem(dharma.Config{Nodes: 12, K: 3, Seed: 79})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Peer(0).InsertResource(context.Background(), "hot", "uri:hot", []string{"seed-tag"}); err != nil {
		t.Fatal(err)
	}

	const taggers = 8
	errc := make(chan error, taggers)
	for g := 0; g < taggers; g++ {
		go func(g int) {
			peer := sys.Peer(g)
			for i := 0; i < 5; i++ {
				if err := peer.Tag(context.Background(), "hot", fmt.Sprintf("tag-%d", g)); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(g)
	}
	for g := 0; g < taggers; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}

	tags, err := sys.Peer(11).TagsOf(context.Background(), "hot")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, w := range tags {
		got[w.Name] = w.Weight
	}
	for g := 0; g < taggers; g++ {
		name := fmt.Sprintf("tag-%d", g)
		if got[name] != 5 {
			t.Fatalf("u(%s,hot) = %d, want 5 (lost increments)", name, got[name])
		}
	}
}
