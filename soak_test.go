package dharma

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"dharma/internal/chaos"
	"dharma/internal/core"
	"dharma/internal/dht"
	"dharma/internal/simnet"
)

// TestConcurrentSoak drives one System from many goroutines with a mixed
// Tag / InsertResource / Navigate / SearchStep workload. It asserts
// nothing beyond "no data race and no unexpected error" — its job is to
// fail under `go test -race` if any layer (engine, dht, kademlia,
// simnet) loses its synchronization.
func TestConcurrentSoak(t *testing.T) {
	for _, mode := range []Mode{Naive, Approximated} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			sys, err := NewSystem(Config{Nodes: 8, Mode: mode, K: 3, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}

			// Seed a shared vocabulary so concurrent taggers collide on
			// the same blocks (the interesting case for races).
			resources := make([]string, 12)
			tags := make([]string, 8)
			for i := range tags {
				tags[i] = fmt.Sprintf("tag%d", i)
			}
			for i := range resources {
				resources[i] = fmt.Sprintf("res%d", i)
				if err := sys.Peer(0).InsertResource(context.Background(), resources[i], "uri:"+resources[i], []string{tags[i%len(tags)]}); err != nil {
					t.Fatal(err)
				}
			}

			const (
				workers    = 16
				opsPerGoro = 60
			)
			var wg sync.WaitGroup
			errc := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					peer := sys.Peer(w % sys.Size())
					for i := 0; i < opsPerGoro; i++ {
						r := resources[rng.Intn(len(resources))]
						tg := tags[rng.Intn(len(tags))]
						switch rng.Intn(10) {
						case 0: // insert a fresh resource
							name := fmt.Sprintf("res-w%d-%d", w, i)
							if err := peer.InsertResource(context.Background(), name, "uri:"+name, []string{tg, tags[rng.Intn(len(tags))]}); err != nil {
								errc <- fmt.Errorf("insert: %w", err)
								return
							}
						case 1, 2: // navigate
							res, _ := peer.Navigate(context.Background(), tg, Random, NavOptions{
								MaxSteps: 5, Rng: rand.New(rand.NewSource(int64(i))),
							})
							if len(res.Path) == 0 {
								errc <- fmt.Errorf("navigate from %q: empty path", tg)
								return
							}
						case 3: // point reads
							if _, err := peer.ResolveURI(context.Background(), r); err != nil {
								errc <- fmt.Errorf("resolve %q: %w", r, err)
								return
							}
							if _, err := peer.TagsOf(context.Background(), r); err != nil {
								errc <- fmt.Errorf("tags of %q: %w", r, err)
								return
							}
						default: // tag (the 4+k hot path)
							if err := peer.Tag(context.Background(), r, tg); err != nil {
								errc <- fmt.Errorf("tag: %w", err)
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Error(err)
			}

			// The system must still be coherent: every seeded resource
			// resolves and every seeded tag is navigable.
			for _, r := range resources {
				if _, err := sys.Peer(1).ResolveURI(context.Background(), r); err != nil {
					t.Errorf("post-soak resolve %q: %v", r, err)
				}
			}
			for _, tg := range tags {
				if _, _, err := sys.Peer(2).SearchStep(context.Background(), tg); err != nil {
					t.Errorf("post-soak search %q: %v", tg, err)
				}
			}
		})
	}
}

// TestChaosChurnSoak is the acceptance scenario of the churn subsystem,
// under a fixed seed: a mixed workload runs from protected client
// peers while 25% of the storage nodes crash and a client is
// partitioned from part of the overlay; the partition heals, a repair
// pass runs over the survivors — with the crashed quarter still dead —
// and then every acknowledged write must be readable with its durable
// floor intact. The test also runs under -race, so it doubles as a
// synchronization soak of the whole churn path (crash/detach racing
// in-flight RPCs, repair racing appends).
func TestChaosChurnSoak(t *testing.T) {
	const (
		nodes      = 16
		clients    = 4 // protected prefix: workers drive these
		crashCount = 4 // 25% of the overlay
		opsPerGoro = 80
		seed       = 20260727
	)
	sys, err := NewSystem(Config{
		Nodes:       nodes,
		Mode:        Approximated,
		K:           3,
		Replication: 8,
		ReadRepair:  true,
		Seed:        seed,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Clients write through recording stores, so every acknowledged
	// write lands in the ledger the final check verifies.
	ledger := chaos.NewLedger()
	engines := make([]*core.Engine, clients)
	for i := range engines {
		st := chaos.NewRecording(dht.NewOverlay(sys.Peer(i).Node, nil), ledger)
		engines[i], err = core.NewEngine(st, core.Config{Mode: Approximated, K: 3, Seed: seed + int64(i)})
		if err != nil {
			t.Fatal(err)
		}
	}

	resources := make([]string, 16)
	tags := make([]string, 10)
	for i := range tags {
		tags[i] = fmt.Sprintf("ct%d", i)
	}
	for i := range resources {
		resources[i] = fmt.Sprintf("cr%d", i)
		if err := engines[0].InsertResource(context.Background(), resources[i], "uri:"+resources[i], tags[i%len(tags)]); err != nil {
			t.Fatal(err)
		}
	}

	// runPhase drives the mixed workload once across all clients.
	runPhase := func(phase int) {
		var wg sync.WaitGroup
		for w := 0; w < clients; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(phase*100+w)))
				e := engines[w]
				for i := 0; i < opsPerGoro; i++ {
					r := resources[rng.Intn(len(resources))]
					tg := tags[rng.Intn(len(tags))]
					switch rng.Intn(10) {
					case 0:
						name := fmt.Sprintf("cr-p%d-w%d-%d", phase, w, i)
						// Inserts may fail transiently under faults; the
						// ledger records only what was acknowledged, which
						// is exactly the contract being tested.
						_ = e.InsertResource(context.Background(), name, "uri:"+name, tg)
					case 1, 2:
						_, _, _ = e.SearchStep(context.Background(), tg)
					default:
						_ = e.Tag(context.Background(), r, tg)
					}
				}
			}(w)
		}
		wg.Wait()
	}

	// Phase 1: healthy overlay.
	runPhase(1)

	// Chaos: crash 25% of the storage nodes (never the clients) and cut
	// client 1 off from four live storage nodes.
	cl := sys.Cluster()
	crashRng := rand.New(rand.NewSource(seed))
	for c := 0; c < crashCount; c++ {
		idx := clients + crashRng.Intn(cl.Len()-clients)
		if _, err := cl.Crash(idx); err != nil {
			t.Fatalf("crash %d: %v", c, err)
		}
	}
	clientAddr := simnet.Addr(sys.Peer(1).Node.Self().Addr)
	var cut []simnet.Addr
	for i := 0; i < 4 && clients+i < cl.Len(); i++ {
		peer := simnet.Addr(cl.NodeAt(clients + i).Self().Addr)
		cut = append(cut, peer)
		sys.Network().Partition(clientAddr, peer, true)
	}

	// Phase 2: workload continues against the degraded overlay.
	runPhase(2)

	// Heal the partition; the crashed quarter stays dead.
	for _, peer := range cut {
		sys.Network().Partition(clientAddr, peer, false)
	}

	// Repair pass over the survivors, then the invariant: zero
	// acknowledged-write loss.
	violations := chaos.RepairAndCheck(context.Background(), cl, ledger, 2)
	if len(violations) != 0 {
		t.Fatalf("lost %d of %d acknowledged (block,field) obligations after repair:\n%v",
			len(violations), ledger.Fields(), violations)
	}
	if ledger.Fields() == 0 {
		t.Fatal("ledger recorded nothing; the scenario tested no writes")
	}
}

// TestChaosCrashWaveHealedByAntiEntropy is the churn soak with the
// repair machinery narrowed to the bandwidth-frugal path: read-repair
// is off and no forced republish sweep ever runs. A quarter of the
// storage nodes crash mid-workload, and the only healing force is the
// survivors' timer-driven anti-entropy rounds — digest probes, deltas
// where replicas disagree, suppression for recently written blocks.
// Every acknowledged write must still be readable afterwards.
func TestChaosCrashWaveHealedByAntiEntropy(t *testing.T) {
	const (
		nodes      = 16
		clients    = 4 // protected prefix: workers drive these
		crashCount = 4 // 25% of the overlay
		opsPerGoro = 80
		seed       = 20260808
	)
	sys, err := NewSystem(Config{
		Nodes:       nodes,
		Mode:        Approximated,
		K:           3,
		Replication: 8,
		ReadRepair:  false, // healing must come from anti-entropy alone
		Seed:        seed,
	})
	if err != nil {
		t.Fatal(err)
	}

	ledger := chaos.NewLedger()
	engines := make([]*core.Engine, clients)
	for i := range engines {
		st := chaos.NewRecording(dht.NewOverlay(sys.Peer(i).Node, nil), ledger)
		engines[i], err = core.NewEngine(st, core.Config{Mode: Approximated, K: 3, Seed: seed + int64(i)})
		if err != nil {
			t.Fatal(err)
		}
	}

	resources := make([]string, 16)
	tags := make([]string, 10)
	for i := range tags {
		tags[i] = fmt.Sprintf("at%d", i)
	}
	for i := range resources {
		resources[i] = fmt.Sprintf("ar%d", i)
		if err := engines[0].InsertResource(context.Background(), resources[i], "uri:"+resources[i], tags[i%len(tags)]); err != nil {
			t.Fatal(err)
		}
	}

	runPhase := func(phase int) {
		var wg sync.WaitGroup
		for w := 0; w < clients; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(phase*100+w)))
				e := engines[w]
				for i := 0; i < opsPerGoro; i++ {
					r := resources[rng.Intn(len(resources))]
					tg := tags[rng.Intn(len(tags))]
					switch rng.Intn(10) {
					case 0:
						name := fmt.Sprintf("ar-p%d-w%d-%d", phase, w, i)
						_ = e.InsertResource(context.Background(), name, "uri:"+name, tg)
					case 1, 2:
						_, _, _ = e.SearchStep(context.Background(), tg)
					default:
						_ = e.Tag(context.Background(), r, tg)
					}
				}
			}(w)
		}
		wg.Wait()
	}

	// Phase 1: healthy overlay. Phase 2 runs against the degraded one.
	runPhase(1)
	cl := sys.Cluster()
	crashRng := rand.New(rand.NewSource(seed))
	for c := 0; c < crashCount; c++ {
		idx := clients + crashRng.Intn(cl.Len()-clients)
		if _, err := cl.Crash(idx); err != nil {
			t.Fatalf("crash %d: %v", c, err)
		}
	}
	runPhase(2)

	// Heal purely through anti-entropy rounds on the survivors, then the
	// invariant: zero acknowledged-write loss. Enough rounds that the
	// RepublishEvery=2 deadline fires for every block, suppressed or not.
	violations := chaos.AntiEntropyAndCheck(context.Background(), cl, ledger, 4, 2)
	if len(violations) != 0 {
		t.Fatalf("lost %d of %d acknowledged (block,field) obligations after anti-entropy:\n%v",
			len(violations), ledger.Fields(), violations)
	}
	if ledger.Fields() == 0 {
		t.Fatal("ledger recorded nothing; the scenario tested no writes")
	}

	// The healing must have been digest-frugal, not a disguised full
	// sweep: across the survivors most round-2+ probes hit matching
	// digests and moved no data.
	var matches, fulls int64
	for _, n := range cl.Snapshot() {
		st := n.AntiEntropy()
		matches += st.DigestMatches
		fulls += st.FullBlocks
	}
	if matches == 0 {
		t.Fatal("anti-entropy recorded no digest matches across four rounds")
	}
	if fulls > 0 {
		t.Fatalf("anti-entropy fell back to %d whole-block pushes", fulls)
	}
}

// TestConcurrentSoakLocalEngine exercises the embedding mode: one
// engine over one Local store shared by many goroutines.
func TestConcurrentSoakLocalEngine(t *testing.T) {
	t.Parallel()
	engine, store, err := NewLocalEngine(Config{Mode: Approximated, K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.InsertResource(context.Background(), "shared", "uri:shared", "a", "b", "c", "d", "e", "f"); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tag := fmt.Sprintf("t%d", i%9)
				if err := engine.Tag(context.Background(), "shared", tag); err != nil {
					t.Error(err)
					return
				}
				if _, err := engine.TagsOf(context.Background(), "shared"); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if got := store.Lookups(); got == 0 {
		t.Fatal("no lookups recorded")
	}
}
