module dharma

go 1.24
