package dharma_test

import (
	"context"
	"fmt"

	"dharma"
)

// ExampleNewSystem boots an in-process overlay, publishes tagged
// resources and runs one search step — the complete loop of the paper.
func ExampleNewSystem() {
	sys, err := dharma.NewSystem(dharma.Config{Nodes: 12, Mode: dharma.Approximated, K: 3, Seed: 1})
	if err != nil {
		panic(err)
	}

	alice := sys.Peer(2)
	alice.InsertResource(context.Background(), "norwegian-wood", "magnet:nw", []string{"rock", "60s"}) //nolint:errcheck
	alice.InsertResource(context.Background(), "yesterday", "magnet:yd", []string{"rock", "ballad"})   //nolint:errcheck

	bob := sys.Peer(7)
	related, resources, err := bob.SearchStep(context.Background(), "rock")
	if err != nil {
		panic(err)
	}
	fmt.Printf("related tags: %d, resources: %d\n", len(related), len(resources))

	uri, _ := bob.ResolveURI(context.Background(), "yesterday")
	fmt.Println("yesterday ->", uri)
	// Output:
	// related tags: 2, resources: 2
	// yesterday -> magnet:yd
}

// ExampleNewLocalEngine embeds the tagging engine without networking
// and shows the Table I cost model live.
func ExampleNewLocalEngine() {
	eng, store, err := dharma.NewLocalEngine(dharma.Config{Mode: dharma.Approximated, K: 2, Seed: 1})
	if err != nil {
		panic(err)
	}
	eng.InsertResource(context.Background(), "song", "uri:song", "jazz", "bebop", "50s") //nolint:errcheck
	fmt.Println("insert lookups (2+2m, m=3):", store.Lookups())

	before := store.Lookups()
	eng.Tag(context.Background(), "song", "brubeck") //nolint:errcheck
	fmt.Println("tag lookups (4+k, k=2):", store.Lookups()-before)
	// Output:
	// insert lookups (2+2m, m=3): 8
	// tag lookups (4+k, k=2): 6
}

// ExamplePeer_Navigate runs a faceted navigation and prints the path
// shape.
func ExamplePeer_Navigate() {
	sys, err := dharma.NewSystem(dharma.Config{Nodes: 12, Seed: 3})
	if err != nil {
		panic(err)
	}
	p := sys.Peer(0)
	for i := 0; i < 4; i++ {
		p.InsertResource(context.Background(), fmt.Sprintf("album%d", i), "", []string{"music", "rock", "indie"}) //nolint:errcheck
	}
	for i := 0; i < 4; i++ {
		p.InsertResource(context.Background(), fmt.Sprintf("track%d", i), "", []string{"music", "jazz"}) //nolint:errcheck
	}

	res, err := p.Navigate(context.Background(), "music", dharma.First, dharma.NavOptions{MinResources: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("path:", res.Path)
	fmt.Println("stopped:", res.Reason)
	// Output:
	// path: [music indie]
	// stopped: tags-converged
}
