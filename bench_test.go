// Benchmarks, one per table and figure of the paper's evaluation
// (§V), plus micro-benchmarks of the DHARMA primitives and their
// substrates. Each BenchmarkTable*/BenchmarkFigure* target runs the
// same driver the dharma-bench command uses to regenerate the artifact;
// run with -v to see the rendered tables (logged once per target).
//
// The workload scale defaults to the "small" preset so the whole suite
// finishes in seconds; set DHARMA_SCALE=tiny|small|lastfm to change it.
package dharma_test

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"

	"dharma"
	"dharma/internal/core"
	"dharma/internal/dataset"
	"dharma/internal/dht"
	"dharma/internal/exp"
	"dharma/internal/kademlia"
	"dharma/internal/kadid"
	"dharma/internal/search"
	"dharma/internal/sim"
	"dharma/internal/wire"
)

var (
	benchOnce sync.Once
	benchW    *exp.Workbench
)

func workbench(b *testing.B) *exp.Workbench {
	b.Helper()
	benchOnce.Do(func() {
		var cfg dataset.Config
		switch os.Getenv("DHARMA_SCALE") {
		case "tiny":
			cfg = dataset.Tiny(1)
		case "lastfm":
			cfg = dataset.LastFMScaled(1)
		default:
			cfg = dataset.Small(1)
		}
		benchW = exp.NewWorkbench(cfg)
	})
	return benchW
}

func logOnce(b *testing.B, i int, v fmt.Stringer) {
	if i == 0 {
		b.Log("\n" + v.String())
	}
}

// BenchmarkTableI regenerates Table I: primitive lookup costs, naive
// and approximated, verified against a live overlay.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunTable1(5)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Verified() {
			b.Fatal("Table I verification failed")
		}
		logOnce(b, i, res)
	}
}

// BenchmarkTableII regenerates Table II: TRG/FG degree statistics.
func BenchmarkTableII(b *testing.B) {
	w := workbench(b)
	w.Stats() // exclude one-time dataset construction
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, exp.RunTable2(w))
	}
}

// BenchmarkFigure5 regenerates Figure 5: nodal degree CDFs.
func BenchmarkFigure5(b *testing.B) {
	w := workbench(b)
	w.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, exp.RunFigure5(w))
	}
}

// BenchmarkTableIII regenerates Table III: recall / Kendall τ / cosine
// / sim1% of the approximated graph for k = 1, 5, 10.
func BenchmarkTableIII(b *testing.B) {
	w := workbench(b)
	for _, k := range []int{1, 5, 10} {
		w.Evolution(k) // cache replays outside the timed region
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, exp.RunTable3(w, []int{1, 5, 10}))
	}
}

// BenchmarkFigure6 regenerates Figure 6: original-vs-simulated nodal
// out-degrees for k = 1 and 100.
func BenchmarkFigure6(b *testing.B) {
	w := workbench(b)
	for _, k := range []int{1, 100} {
		w.Evolution(k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, exp.RunFigure6(w, []int{1, 100}))
	}
}

// BenchmarkFigure8 regenerates Figure 8: original-vs-simulated arc
// weights for k = 1, 25, 500.
func BenchmarkFigure8(b *testing.B) {
	w := workbench(b)
	for _, k := range []int{1, 25, 500} {
		w.Evolution(k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, exp.RunFigure8(w, []int{1, 25, 500}))
	}
}

// BenchmarkTableIV regenerates Table IV: faceted-search path lengths
// under the three strategies, original vs approximated graph.
func BenchmarkTableIV(b *testing.B) {
	w := workbench(b)
	w.Evolution(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, exp.RunTable4(w, 1, 20, 20))
	}
}

// BenchmarkFigure7 regenerates Figure 7: path-length CDFs per strategy.
func BenchmarkFigure7(b *testing.B) {
	w := workbench(b)
	w.Evolution(1)
	t4 := exp.RunTable4(w, 1, 20, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, exp.RunFigure7(t4))
	}
}

// BenchmarkEvolutionReplay measures the §V-B graph evolution itself:
// annotations replayed per second under Approximations A and B.
func BenchmarkEvolutionReplay(b *testing.B) {
	w := workbench(b)
	schedule := w.Schedule()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Evolve(schedule, sim.EvolutionConfig{K: 1, ApproxB: true, Seed: int64(i)})
	}
	b.ReportMetric(float64(len(schedule)), "annotations/op")
}

// BenchmarkTagNaive measures the naive tagging primitive on resources
// carrying 20 tags (cost 4+20 block operations).
func BenchmarkTagNaive(b *testing.B) { benchTag(b, core.Naive, 0) }

// BenchmarkTagApproximatedK1 measures the approximated primitive with
// k=1 (cost 5 block operations) on the same resource shape.
func BenchmarkTagApproximatedK1(b *testing.B) { benchTag(b, core.Approximated, 1) }

// BenchmarkTagApproximatedK5 measures the approximated primitive with
// k=5.
func BenchmarkTagApproximatedK5(b *testing.B) { benchTag(b, core.Approximated, 5) }

func benchTag(b *testing.B, mode core.Mode, k int) {
	store := dht.NewLocal()
	if k == 0 {
		k = 1
	}
	eng, err := core.NewEngine(store, core.Config{Mode: mode, K: k, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	tags := make([]string, 20)
	for i := range tags {
		tags[i] = fmt.Sprintf("t%02d", i)
	}
	if err := eng.InsertResource(context.Background(), "r", "", tags...); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Tag(context.Background(), "r", fmt.Sprintf("fresh%d", i%64)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInsertResource measures resource publication with 5 tags
// (cost 2+2·5 block operations).
func BenchmarkInsertResource(b *testing.B) {
	store := dht.NewLocal()
	eng, err := core.NewEngine(store, core.Config{Mode: core.Approximated, K: 5, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.InsertResource(context.Background(), fmt.Sprintf("r%d", i), "uri", "a", "b", "c", "d", "e"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchStep measures one search step (2 block operations with
// index-side filtering).
func BenchmarkSearchStep(b *testing.B) {
	eng, _, err := dharma.NewLocalEngine(dharma.Config{Mode: dharma.Approximated, K: 5})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := eng.InsertResource(context.Background(), fmt.Sprintf("r%d", i), "", "hub", fmt.Sprintf("t%d", i%17)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.SearchStep(context.Background(), "hub"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverlayLookup measures one iterative FIND_NODE on a 64-node
// overlay.
func BenchmarkOverlayLookup(b *testing.B) {
	cl, err := kademlia.NewCluster(kademlia.ClusterConfig{
		N:    64,
		Node: kademlia.Config{K: 8, Alpha: 3},
		Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.Nodes[i%len(cl.Nodes)].IterativeFindNode(context.Background(), kadid.HashString(fmt.Sprintf("key%d", i)))
	}
}

// BenchmarkOverlayStoreGet measures a block append plus a filtered read
// through the full overlay path.
func BenchmarkOverlayStoreGet(b *testing.B) {
	cl, err := kademlia.NewCluster(kademlia.ClusterConfig{
		N:    32,
		Node: kademlia.Config{K: 8, Alpha: 3},
		Seed: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	store := dht.NewOverlay(cl.Nodes[3], nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := kadid.HashString(fmt.Sprintf("blk%d", i%128))
		if err := store.Append(context.Background(), key, []wire.Entry{{Field: "f", Count: 1}}); err != nil {
			b.Fatal(err)
		}
		if _, err := store.Get(context.Background(), key, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFacetedNavigation measures a full first-strategy navigation
// on the workbench graph from a popular tag.
func BenchmarkFacetedNavigation(b *testing.B) {
	w := workbench(b)
	g := w.Graph()
	seeds := w.PopularTags(1)
	view := search.NewFolkView(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		search.Run(context.Background(), view, seeds[0], search.First, search.Options{}) //nolint:errcheck
	}
}
