package dharma

import (
	"context"
	"testing"
)

// TestSystemDurableRestart is the facade-level durability contract: a
// System built over a DataDir, fed inserts and tags, and cleanly shut
// down serves every acknowledged operation when rebuilt over the same
// directory — without a single re-insert.
func TestSystemDurableRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Nodes: 12, K: 3, Seed: 7, DataDir: dir, NoFsync: true}

	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := sys.Peer(0)
	if err := p.InsertResource(context.Background(), "norwegian-wood", "magnet:?xt=nw", []string{"rock", "60s"}); err != nil {
		t.Fatal(err)
	}
	if err := p.Tag(context.Background(), "norwegian-wood", "beatles"); err != nil {
		t.Fatal(err)
	}
	sys.Shutdown()

	// Same Seed → same node identities → each node reopens its own
	// directory, exactly like a fleet of processes restarting in place.
	sys2, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Shutdown()
	p2 := sys2.Peer(1)
	uri, err := p2.ResolveURI(context.Background(), "norwegian-wood")
	if err != nil || uri != "magnet:?xt=nw" {
		t.Fatalf("resolve after restart: %q, %v", uri, err)
	}
	tags, err := p2.TagsOf(context.Background(), "norwegian-wood")
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, w := range tags {
		found[w.Name] = true
	}
	for _, want := range []string{"rock", "60s", "beatles"} {
		if !found[want] {
			t.Fatalf("tag %q lost across restart (got %v)", want, tags)
		}
	}
	res, err := p2.Navigate(context.Background(), "rock", First, NavOptions{})
	if err != nil {
		t.Fatalf("navigate after recovery: %v", err)
	}
	if len(res.FinalResources) == 0 {
		t.Fatalf("navigation after restart found nothing: %+v", res)
	}
}

// TestSystemRebootWarmsReadCache closes the carried gap "dht.Cached is
// cold after restart": on a durable deployment with CacheBlocks set,
// Shutdown snapshots each peer's read cache next to its WAL and the
// next boot warms it, so the first post-reboot read of a hot block is
// served locally — zero overlay lookups — instead of paying the full
// iterative-lookup latency to rebuild the working set.
func TestSystemRebootWarmsReadCache(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Nodes: 12, K: 3, Seed: 7, DataDir: dir, NoFsync: true, CacheBlocks: 64}

	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := sys.Peer(0)
	if err := p.InsertResource(context.Background(), "norwegian-wood", "magnet:?xt=nw", []string{"rock", "60s"}); err != nil {
		t.Fatal(err)
	}
	// The hot working set: repeat reads that populate peer 0's cache.
	if _, err := p.ResolveURI(context.Background(), "norwegian-wood"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.TagsOf(context.Background(), "norwegian-wood"); err != nil {
		t.Fatal(err)
	}
	if p.Cache().Len() == 0 {
		t.Fatal("reads did not populate the cache")
	}
	sys.Shutdown()

	sys2, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Shutdown()
	p2 := sys2.Peer(0)
	if p2.Cache().Len() == 0 {
		t.Fatal("cache cold after reboot: snapshot not warmed")
	}

	// First reads after the reboot: served from the warmed cache. The
	// overlay lookup counter is the latency proxy — a cold cache would
	// pay one full iterative lookup per read here.
	lookupsBefore := p2.Stats().Gets
	uri, err := p2.ResolveURI(context.Background(), "norwegian-wood")
	if err != nil || uri != "magnet:?xt=nw" {
		t.Fatalf("resolve after reboot: %q, %v", uri, err)
	}
	tags, err := p2.TagsOf(context.Background(), "norwegian-wood")
	if err != nil || len(tags) == 0 {
		t.Fatalf("tags after reboot: %v, %v", tags, err)
	}
	st := p2.Stats()
	if st.Gets != lookupsBefore {
		t.Fatalf("first post-reboot reads hit the overlay (%d -> %d lookups); cache was cold",
			lookupsBefore, st.Gets)
	}
	if st.CacheHits == 0 {
		t.Fatal("no cache hits recorded after the warmed reads")
	}

	// A peer that cached nothing before the reboot behaves as before —
	// cold but functional.
	if _, err := sys2.Peer(5).ResolveURI(context.Background(), "norwegian-wood"); err != nil {
		t.Fatalf("cold peer read after reboot: %v", err)
	}
}
