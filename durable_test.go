package dharma

import (
	"context"
	"testing"
)

// TestSystemDurableRestart is the facade-level durability contract: a
// System built over a DataDir, fed inserts and tags, and cleanly shut
// down serves every acknowledged operation when rebuilt over the same
// directory — without a single re-insert.
func TestSystemDurableRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Nodes: 12, K: 3, Seed: 7, DataDir: dir, NoFsync: true}

	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := sys.Peer(0)
	if err := p.InsertResource(context.Background(), "norwegian-wood", "magnet:?xt=nw", []string{"rock", "60s"}); err != nil {
		t.Fatal(err)
	}
	if err := p.Tag(context.Background(), "norwegian-wood", "beatles"); err != nil {
		t.Fatal(err)
	}
	sys.Shutdown()

	// Same Seed → same node identities → each node reopens its own
	// directory, exactly like a fleet of processes restarting in place.
	sys2, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Shutdown()
	p2 := sys2.Peer(1)
	uri, err := p2.ResolveURI(context.Background(), "norwegian-wood")
	if err != nil || uri != "magnet:?xt=nw" {
		t.Fatalf("resolve after restart: %q, %v", uri, err)
	}
	tags, err := p2.TagsOf(context.Background(), "norwegian-wood")
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, w := range tags {
		found[w.Name] = true
	}
	for _, want := range []string{"rock", "60s", "beatles"} {
		if !found[want] {
			t.Fatalf("tag %q lost across restart (got %v)", want, tags)
		}
	}
	res, err := p2.Navigate(context.Background(), "rock", First, NavOptions{})
	if err != nil {
		t.Fatalf("navigate after recovery: %v", err)
	}
	if len(res.FinalResources) == 0 {
		t.Fatalf("navigation after restart found nothing: %+v", res)
	}
}
