// Package dharma is a Go implementation of DHARMA — a DHT-based
// Approach for Resource Mapping through Approximation (Aiello,
// Milanesio, Ruffo, Schifanella; IPPS 2010) — together with every
// substrate the paper builds on: a Kademlia overlay with a Likir-style
// identity layer, the folksonomy model, the approximated graph
// maintenance protocol, and faceted tag search.
//
// The package is a thin facade over the implementation packages:
//
//	internal/core        the DHARMA engine (blocks, primitives, approximations)
//	internal/kademlia    the overlay (routing, lookups, replication)
//	internal/likir       identity-bound node IDs and signed content
//	internal/search      faceted navigation
//	internal/dataset     synthetic Last.fm-like workloads
//	internal/exp         the paper's tables and figures
//
// # Quick start
//
//	sys, err := dharma.NewSystem(dharma.Config{Nodes: 16, K: 5})
//	if err != nil { ... }
//	p := sys.Peer(0)
//	p.InsertResource("norwegian-wood", "magnet:?xt=...", "rock", "60s", "beatles")
//	p.Tag("norwegian-wood", "folk-rock")
//	res := p.Navigate("rock", dharma.First, dharma.NavOptions{})
//	fmt.Println(res.Path, res.FinalResources)
//
// A System and its Peers are safe for concurrent use: any number of
// goroutines may insert, tag and navigate against the same deployment
// simultaneously (block updates are commutative token appends, so
// concurrent tagging is also semantically race-free — §IV-B). The
// internal/loadgen package and `dharma-bench load` drive a System this
// way to measure throughput and latency.
//
// See the examples/ directory for complete programs.
package dharma

import (
	"fmt"
	"time"

	"dharma/internal/core"
	"dharma/internal/dht"
	"dharma/internal/kademlia"
	"dharma/internal/likir"
	"dharma/internal/persist"
	"dharma/internal/search"
	"dharma/internal/simnet"
)

// Mode selects between the exact maintenance protocol and the paper's
// approximated one.
type Mode = core.Mode

// Engine modes.
const (
	// Naive implements the §III model verbatim: a tagging operation
	// costs 4+|Tags(r)| overlay lookups.
	Naive = core.Naive
	// Approximated applies Approximations A and B: a tagging operation
	// costs 4+k lookups and updates are race-free token appends.
	Approximated = core.Approximated
)

// Strategy selects the next tag during faceted navigation.
type Strategy = search.Strategy

// Navigation strategies (§V-C).
const (
	First  = search.First
	Last   = search.Last
	Random = search.Random
)

// NavOptions re-exports the navigator's options.
type NavOptions = search.Options

// NavResult re-exports the navigation result.
type NavResult = search.Result

// Config describes a DHARMA deployment simulated in-process.
type Config struct {
	// Nodes is the overlay size (default 16).
	Nodes int
	// Mode selects the maintenance protocol (default Approximated —
	// the paper's contribution).
	Mode Mode
	// K is the connection parameter of Approximation A (default 5).
	K int
	// TopN caps entries returned per block read (default 100, the
	// paper's display bound; -1 disables filtering).
	TopN int
	// Replication is the overlay's bucket size and replica count
	// (default 8 for in-process clusters).
	Replication int
	// Alpha is the lookup parallelism (default 3).
	Alpha int
	// WithIdentity enables the Likir layer: a certification authority
	// issues every node an identity; peers reject uncertified traffic
	// and URI entries are signed.
	WithIdentity bool
	// ReadRepair enables repair on unfiltered overlay reads: stale or
	// empty replicas observed during a value lookup are written back to
	// the merged state. Free in steady state; under churn it heals
	// blocks on the read path between republish rounds.
	ReadRepair bool
	// WriteQuorum is the minimum replica acknowledgements a write needs
	// to succeed (default 1). An acknowledged write survives crashes of
	// up to WriteQuorum-1 of its ackers even before any repair runs, so
	// churn deployments want at least 2.
	WriteQuorum int
	// DataDir, when set, makes every node's block store durable: writes
	// are logged (write-ahead, group-commit fsync) under
	// DataDir/<node-address> before they are acknowledged, Cluster's
	// Crash models a process kill, and Revive recovers the node's
	// blocks from disk instead of reusing the retained in-memory store.
	// A System rebuilt over the same DataDir (and Seed) serves every
	// previously acknowledged write.
	DataDir string
	// NoFsync trades power-loss durability for speed in a durable
	// deployment: acknowledged writes are handed to the OS (surviving a
	// process kill) but not fsynced. Ignored when DataDir is empty.
	NoFsync bool
	// Seed makes the deployment reproducible (node IDs, approximation
	// subsets).
	Seed int64
	// DropRate injects network loss in [0,1).
	DropRate float64
	// MTU bounds simulated packet payloads (0 = unlimited).
	MTU int
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 16
	}
	if c.Mode == Approximated && c.K == 0 {
		c.K = 5
	}
	if c.K == 0 {
		c.K = 5
	}
	if c.Replication == 0 {
		c.Replication = 8
	}
	if c.Alpha == 0 {
		c.Alpha = 3
	}
	return c
}

// System is an in-process DHARMA deployment: an overlay cluster with
// one tagging engine per node.
type System struct {
	cluster   *kademlia.Cluster
	peers     []*Peer
	authority *likir.Authority
}

// Peer is one participant: a DHARMA engine bound to an overlay node.
// The engine's methods (InsertResource, Tag, SearchStep, ResolveURI,
// TagsOf, Neighbors) are promoted.
type Peer struct {
	*core.Engine
	Node  *kademlia.Node
	store *dht.Overlay
}

// Lookups returns the number of block operations (the paper's lookup
// unit) this peer has issued.
func (p *Peer) Lookups() int64 { return p.store.Lookups() }

// Navigate runs a faceted search over the live overlay starting from
// tag start.
func (p *Peer) Navigate(start string, strat Strategy, opt NavOptions) NavResult {
	return search.Run(search.NewEngineView(p.Engine), start, strat, opt)
}

// NavigateFromResource runs a "more like this" search: the walk enters
// the folksonomy through one of resource r's own tags (chosen by the
// strategy) and refines from there.
func (p *Peer) NavigateFromResource(r string, strat Strategy, opt NavOptions) NavResult {
	v := search.NewEngineView(p.Engine)
	return search.RunFromResource(v, v, r, strat, opt)
}

// NewSystem boots an overlay of cfg.Nodes nodes and attaches a DHARMA
// engine to each.
func NewSystem(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()

	var authority *likir.Authority
	if cfg.WithIdentity {
		var err error
		authority, err = likir.NewAuthority(nil, 24*time.Hour, nil)
		if err != nil {
			return nil, fmt.Errorf("dharma: create authority: %w", err)
		}
	}

	var popts persist.Options
	if cfg.NoFsync {
		popts.Sync = persist.SyncNone
	}
	cluster, err := kademlia.NewCluster(kademlia.ClusterConfig{
		N: cfg.Nodes,
		Node: kademlia.Config{
			K: cfg.Replication, Alpha: cfg.Alpha,
			ReadRepair: cfg.ReadRepair, MinStoreAcks: cfg.WriteQuorum,
		},
		Net:       simnet.Config{DropRate: cfg.DropRate, MTU: cfg.MTU, Seed: cfg.Seed},
		Seed:      cfg.Seed,
		Authority: authority,
		DataDir:   cfg.DataDir,
		Persist:   popts,
	})
	if err != nil {
		return nil, fmt.Errorf("dharma: boot overlay: %w", err)
	}

	sys := &System{cluster: cluster, authority: authority}
	for i, node := range cluster.Nodes {
		var signer *likir.Identity
		if authority != nil {
			signer = node.Identity()
		}
		store := dht.NewOverlay(node, signer)
		engine, err := core.NewEngine(store, core.Config{
			Mode: cfg.Mode,
			K:    cfg.K,
			TopN: cfg.TopN,
			Seed: cfg.Seed + int64(i),
		})
		if err != nil {
			return nil, fmt.Errorf("dharma: engine %d: %w", i, err)
		}
		sys.peers = append(sys.peers, &Peer{Engine: engine, Node: node, store: store})
	}
	return sys, nil
}

// Peer returns the i-th participant.
func (s *System) Peer(i int) *Peer { return s.peers[i] }

// Peers returns all participants.
func (s *System) Peers() []*Peer { return s.peers }

// Size returns the overlay size.
func (s *System) Size() int { return len(s.peers) }

// Network exposes the simulated network for fault injection and
// traffic accounting.
func (s *System) Network() *simnet.Network { return s.cluster.Net }

// Cluster exposes the overlay cluster for churn operations (RemoveNode,
// Crash, Revive, StartMaintenance) and membership inspection. Peers are
// bound to the nodes the System was built with; drive load only through
// peers whose nodes churn does not touch.
func (s *System) Cluster() *kademlia.Cluster { return s.cluster }

// SetDown crashes (or revives) the i-th node: its endpoint stops
// answering until revived.
func (s *System) SetDown(i int, down bool) {
	s.cluster.Net.SetDown(simnet.Addr(s.peers[i].Node.Self().Addr), down)
}

// Shutdown cleanly stops every member: a durable deployment flushes and
// closes its write-ahead logs, so a later NewSystem over the same
// DataDir recovers the full state. A no-op for in-memory systems.
func (s *System) Shutdown() {
	s.cluster.Shutdown()
}

// NewLocalEngine creates a DHARMA engine over an in-process block store
// with the same semantics as the overlay — the embedding mode for
// applications that want the tagging model without networking.
func NewLocalEngine(cfg Config) (*core.Engine, *dht.Local, error) {
	cfg = cfg.withDefaults()
	store := dht.NewLocal()
	engine, err := core.NewEngine(store, core.Config{
		Mode: cfg.Mode, K: cfg.K, TopN: cfg.TopN, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	return engine, store, nil
}
