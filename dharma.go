// Package dharma is a Go implementation of DHARMA — a DHT-based
// Approach for Resource Mapping through Approximation (Aiello,
// Milanesio, Ruffo, Schifanella; IPPS 2010) — together with every
// substrate the paper builds on: a Kademlia overlay with a Likir-style
// identity layer, the folksonomy model, the approximated graph
// maintenance protocol, and faceted tag search.
//
// The package is a thin facade over the implementation packages:
//
//	internal/core        the DHARMA engine (blocks, primitives, approximations)
//	internal/kademlia    the overlay (routing, lookups, replication)
//	internal/likir       identity-bound node IDs and signed content
//	internal/search      faceted navigation
//	internal/dataset     synthetic Last.fm-like workloads
//	internal/exp         the paper's tables and figures
//
// # Quick start
//
//	ctx := context.Background()
//	sys, err := dharma.NewSystem(dharma.Config{Nodes: 16, K: 5})
//	if err != nil { ... }
//	defer sys.Shutdown()
//	p := sys.Peer(0)
//	p.InsertResource(ctx, "norwegian-wood", "magnet:?xt=...", []string{"rock", "60s", "beatles"})
//	p.Tag(ctx, "norwegian-wood", "folk-rock")
//	res, err := p.Navigate(ctx, "rock", dharma.First, dharma.NavOptions{})
//	fmt.Println(res.Path, res.FinalResources)
//
// # Contexts and per-operation options
//
// Every operation takes a context.Context as its first argument, and
// the context is honored through the whole stack: cancelling it (or
// letting its deadline expire) aborts the in-flight overlay RPC waiters
// — not just the next hop — so a client stuck behind a slow or dead
// replica gets its control back immediately instead of waiting out
// internal retry timers. DHARMA's primitives are multi-hop operations
// (a Tag is 4+k lookups, a Navigate an unbounded walk), which makes
// per-call latency bounds the difference between a production overlay
// and a science project.
//
// A context error means "outcome unknown", not "not written": an
// abandoned write may still have landed on some replicas, exactly like
// a write whose acknowledgement was lost on the wire. Block updates are
// commutative token appends, so retrying is always safe.
//
// Per-operation options override deployment defaults for a single
// call:
//
//	// bound one tag operation to 50ms, whatever Config says
//	err := p.Tag(ctx, "norwegian-wood", "psychedelic", dharma.WithTimeout(50*time.Millisecond))
//	// read a wider slice of the index for one navigation
//	res, err := p.Navigate(ctx, "rock", dharma.First, dharma.NavOptions{}, dharma.WithTopN(500))
//
// A System and its Peers are safe for concurrent use: any number of
// goroutines may insert, tag and navigate against the same deployment
// simultaneously (block updates are commutative token appends, so
// concurrent tagging is also semantically race-free — §IV-B). The
// internal/loadgen package and `dharma-bench load` drive a System this
// way to measure throughput and latency.
//
// See the examples/ directory for complete programs.
package dharma

import (
	"context"
	"crypto/ed25519"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"dharma/internal/admission"
	"dharma/internal/core"
	"dharma/internal/dht"
	"dharma/internal/folksonomy"
	"dharma/internal/kademlia"
	"dharma/internal/kadid"
	"dharma/internal/likir"
	"dharma/internal/obs"
	"dharma/internal/persist"
	"dharma/internal/search"
	"dharma/internal/session"
	"dharma/internal/simnet"
	"dharma/internal/wire"
)

// Mode selects between the exact maintenance protocol and the paper's
// approximated one.
type Mode = core.Mode

// Engine modes.
const (
	// Naive implements the §III model verbatim: a tagging operation
	// costs 4+|Tags(r)| overlay lookups.
	Naive = core.Naive
	// Approximated applies Approximations A and B: a tagging operation
	// costs 4+k lookups and updates are race-free token appends.
	Approximated = core.Approximated
)

// Strategy selects the next tag during faceted navigation.
type Strategy = search.Strategy

// Navigation strategies (§V-C).
const (
	First  = search.First
	Last   = search.Last
	Random = search.Random
)

// NavOptions re-exports the navigator's options.
type NavOptions = search.Options

// NavResult re-exports the navigation result.
type NavResult = search.Result

// Weighted re-exports the (name, weight) pair search steps and tag
// listings are stated in.
type Weighted = folksonomy.Weighted

// Config describes a DHARMA deployment simulated in-process.
type Config struct {
	// Nodes is the overlay size (default 16).
	Nodes int
	// Mode selects the maintenance protocol (default Approximated —
	// the paper's contribution).
	Mode Mode
	// K is the connection parameter of Approximation A (default 5).
	K int
	// TopN caps entries returned per block read (default 100, the
	// paper's display bound; -1 disables filtering). WithTopN overrides
	// it per operation.
	TopN int
	// Replication is the overlay's bucket size and replica count
	// (default 8 for in-process clusters).
	Replication int
	// Alpha is the lookup parallelism (default 3).
	Alpha int
	// WithIdentity enables the Likir layer: a certification authority
	// issues every node an identity; peers reject uncertified traffic
	// and URI entries are signed.
	WithIdentity bool
	// ReadRepair enables repair on unfiltered overlay reads: stale or
	// empty replicas observed during a value lookup are written back to
	// the merged state. Free in steady state; under churn it heals
	// blocks on the read path between republish rounds.
	ReadRepair bool
	// WriteQuorum is the minimum replica acknowledgements a write needs
	// to succeed (default 1). An acknowledged write survives crashes of
	// up to WriteQuorum-1 of its ackers even before any repair runs, so
	// churn deployments want at least 2.
	WriteQuorum int
	// DataDir, when set, makes every node's block store durable: writes
	// are logged (write-ahead, group-commit fsync) under
	// DataDir/<node-address> before they are acknowledged, Cluster's
	// Crash models a process kill, and Revive recovers the node's
	// blocks from disk instead of reusing the retained in-memory store.
	// A System rebuilt over the same DataDir (and Seed) serves every
	// previously acknowledged write.
	DataDir string
	// NoFsync trades power-loss durability for speed in a durable
	// deployment: acknowledged writes are handed to the OS (surviving a
	// process kill) but not fsynced. Ignored when DataDir is empty.
	NoFsync bool
	// CacheBlocks, when positive, puts a bounded TTL read cache
	// (dht.Cached) of at most that many blocks in front of every peer's
	// overlay store — DHARMA's read skew makes a small cache absorb most
	// repeat hot-tag lookups (experiment A7). On a durable deployment
	// (DataDir set) each peer's cache is snapshotted on Shutdown next to
	// its node's write-ahead log and warmed on the next boot, so a
	// restarted peer answers its first hot reads locally instead of
	// rebuilding the working set one overlay lookup at a time. Warmed
	// entries keep their original absolute expiry: the TTL staleness
	// bound holds across the reboot.
	CacheBlocks int
	// Seed makes the deployment reproducible (node IDs, approximation
	// subsets).
	Seed int64
	// DropRate injects network loss in [0,1).
	DropRate float64
	// MTU bounds simulated packet payloads (0 = unlimited).
	MTU int
	// QueueDepth caps how many RPCs each node handles concurrently;
	// excess requests are rejected with a typed busy answer that clients
	// back off from (0 = the admission layer's bounded default; negative
	// = unlimited). This is the overload-protection knob: it bounds
	// handler goroutines per node no matter how many callers pile up.
	QueueDepth int
	// PerPeerRate limits how many requests per second a node accepts
	// from any single peer (0 = unlimited). Bursts up to twice the rate
	// are tolerated before rejections start.
	PerPeerRate float64
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 16
	}
	if c.Mode == Approximated && c.K == 0 {
		c.K = 5
	}
	if c.K == 0 {
		c.K = 5
	}
	if c.Replication == 0 {
		c.Replication = 8
	}
	if c.Alpha == 0 {
		c.Alpha = 3
	}
	return c
}

// Option tunes a single operation on a Peer, overriding the
// deployment-wide defaults from Config for that call only.
type Option func(*opSettings)

// opSettings is the resolved per-operation configuration.
type opSettings struct {
	timeout time.Duration
	topN    int
}

// WithTimeout bounds the operation: the call's context is wrapped in
// context.WithTimeout, so when the budget runs out the in-flight
// overlay RPCs are aborted and the operation returns
// context.DeadlineExceeded (wrapped). A zero or negative d is ignored.
func WithTimeout(d time.Duration) Option {
	return func(s *opSettings) {
		if d > 0 {
			s.timeout = d
		}
	}
}

// WithTopN overrides the deployment's index-side filter cap
// (Config.TopN) for one operation: n > 0 caps each block read at n
// entries, n < 0 disables filtering entirely. It affects SearchStep,
// Navigate and NavigateFromResource; operations without a filtered
// read ignore it.
func WithTopN(n int) Option {
	return func(s *opSettings) {
		if n != 0 {
			s.topN = n
		}
	}
}

// apply resolves opts against ctx. The returned cancel must always be
// called (it is a no-op when no timeout was requested).
func applyOptions(ctx context.Context, opts []Option) (context.Context, context.CancelFunc, opSettings) {
	var s opSettings
	for _, o := range opts {
		o(&s)
	}
	if s.timeout > 0 {
		ctx, cancel := context.WithTimeout(ctx, s.timeout)
		return ctx, cancel, s
	}
	return ctx, func() {}, s
}

// System is an in-process DHARMA deployment: an overlay cluster with
// one tagging engine per node.
type System struct {
	cluster   *kademlia.Cluster
	peers     []*Peer
	authority *likir.Authority
}

// Peer is one participant: a DHARMA engine bound to an overlay node.
// Every operation takes a context as its first argument and accepts
// per-operation Options; the context bounds the whole multi-hop
// operation, down to the individual RPC waiters.
type Peer struct {
	engine    *core.Engine
	Node      *kademlia.Node
	store     *dht.Overlay
	cache     *dht.Cached // nil unless Config.CacheBlocks > 0
	cachePath string      // snapshot location; empty on in-memory systems
	net       *simnet.NodeStats
	// admStats resolves this peer's admission accounting. Simulated
	// peers reach through the network (per-endpoint controllers live
	// there); real-UDP peers read their transport's controller.
	admStats func() admission.Stats
	// Security layer state; nil/empty on open-overlay and simulated
	// peers. revSet is shared with the node config's Revoked hook and
	// the session manager, so a Refresh propagates everywhere at once.
	sessions *session.Manager
	revSet   *likir.RevocationSet
	revPath  string
	caPub    ed25519.PublicKey
}

// Cache exposes the peer's read cache (nil when Config.CacheBlocks is
// zero) for hit-rate inspection.
func (p *Peer) Cache() *dht.Cached { return p.cache }

// Engine exposes the peer's underlying DHARMA engine (the
// option-less, context-first core API; the load harness drives
// engines directly).
func (p *Peer) Engine() *core.Engine { return p.engine }

// Stats is a point-in-time snapshot of one peer's accounting,
// consolidated across the three layers that used to be inspected
// separately (engine store counters, overlay node counters, simulated
// network traffic).
type Stats struct {
	// Appends and Gets are the block operations this peer issued — the
	// paper's lookup unit; Lookups is their sum (the Table I cost).
	Appends, Gets, Lookups int64
	// NodeLookups counts iterative lookup procedures the overlay node
	// ran (each block operation needs one, plus maintenance traffic).
	NodeLookups int64
	// RPCServed counts inbound RPC requests this peer answered.
	RPCServed int64
	// Repairs counts stale replicas this peer healed via read-repair.
	Repairs int64
	// NetSent and NetReceived count RPC exchanges originated and served
	// at this peer's simulated endpoint (zero for real-UDP peers).
	NetSent, NetReceived int64
	// BusyRejected counts requests this peer refused at admission
	// (work queue full or per-peer rate exceeded). A nonzero value under
	// load is the overload protection working, not a fault. Reported for
	// both transports: simulated peers read their endpoint's network
	// counter, real-UDP peers their transport's admission controller.
	BusyRejected int64
	// Admitted counts inbound requests that passed the admission gate;
	// InFlight is how many of them are currently in their handler.
	Admitted, InFlight int64
	// CacheHits and CacheMisses are the read-cache counters (both zero
	// unless Config.CacheBlocks is set).
	CacheHits, CacheMisses int64
	// MaintBytesSent and MaintBytesRecv are the wire bytes of
	// maintenance traffic (anti-entropy summary probes and replica
	// deltas) this peer originated and got back — the cost the
	// digest-first protocol exists to minimise.
	MaintBytesSent, MaintBytesRecv int64
	// DigestMatches counts summary probes answered by an equal digest:
	// replica agreement proven without moving block data.
	DigestMatches int64
	// SuppressedRounds counts per-block anti-entropy rounds skipped
	// because the block was written since the previous round (write-time
	// replication already spread the update).
	SuppressedRounds int64
	// DeltaEntries counts the entries shipped as sync deltas; compare
	// against full block sizes to see the bandwidth saving.
	DeltaEntries int64
}

// Stats returns the peer's consolidated accounting snapshot. The fields
// are read from independent atomic counters — the snapshot is
// internally consistent only on a quiescent peer.
func (p *Peer) Stats() Stats {
	ae := p.Node.AntiEntropy()
	st := Stats{
		Appends:          p.store.Appends(),
		Gets:             p.store.Gets(),
		Lookups:          p.store.Lookups(),
		NodeLookups:      p.Node.Lookups(),
		RPCServed:        p.Node.RPCServed(),
		Repairs:          p.Node.Repairs(),
		MaintBytesSent:   ae.BytesSent,
		MaintBytesRecv:   ae.BytesRecv,
		DigestMatches:    ae.DigestMatches,
		SuppressedRounds: ae.Suppressed,
		DeltaEntries:     ae.DeltaEntries,
	}
	if p.cache != nil {
		st.CacheHits = p.cache.Hits()
		st.CacheMisses = p.cache.Misses()
	}
	if p.net != nil {
		st.NetSent = p.net.Sent.Load()
		st.NetReceived = p.net.Received.Load()
		st.BusyRejected = p.net.Busy.Load()
	}
	// Admission accounting. A real-UDP transport self-reports (this is
	// the path that used to be silently missing: a UDP peer's Stats
	// always said BusyRejected 0 no matter how hard its admission gate
	// was working); simulated peers resolve through the network.
	if tr, ok := p.Node.Transport().(interface{ AdmissionStats() admission.Stats }); ok {
		adm := tr.AdmissionStats()
		st.Admitted = adm.Admitted
		st.InFlight = adm.InFlight
		st.BusyRejected = adm.Rejected()
	} else if p.admStats != nil {
		adm := p.admStats()
		st.Admitted = adm.Admitted
		st.InFlight = adm.InFlight
	}
	return st
}

// Lookups returns the number of block operations (the paper's lookup
// unit) this peer has issued — shorthand for Stats().Lookups.
func (p *Peer) Lookups() int64 { return p.store.Lookups() }

// InsertResource publishes a new resource r with URI uri and the given
// tag set; 2+2m lookups for m distinct tags (Table I). Tags are a
// slice (not variadic) so the call can carry per-operation Options —
// the insert is the facade's widest fan-out, exactly the operation a
// caller wants to bound. The engine's InsertResource keeps the
// variadic form.
func (p *Peer) InsertResource(ctx context.Context, r, uri string, tags []string, opts ...Option) error {
	ctx, cancel, _ := applyOptions(ctx, opts)
	defer cancel()
	return p.engine.InsertResource(ctx, r, uri, tags...)
}

// Tag adds tag t to the existing resource r; 4+k lookups in
// Approximated mode (Table I).
func (p *Peer) Tag(ctx context.Context, r, t string, opts ...Option) error {
	ctx, cancel, _ := applyOptions(ctx, opts)
	defer cancel()
	return p.engine.Tag(ctx, r, t)
}

// SearchStep retrieves one navigation step for tag t: related tags by
// descending similarity and resources by descending annotation count,
// both capped index-side (Config.TopN, overridable per call with
// WithTopN); 2 lookups.
func (p *Peer) SearchStep(ctx context.Context, t string, opts ...Option) (related, resources []Weighted, err error) {
	ctx, cancel, s := applyOptions(ctx, opts)
	defer cancel()
	return p.engine.SearchStepN(ctx, t, s.topN)
}

// ResolveURI fetches the URI published for resource r; one lookup.
func (p *Peer) ResolveURI(ctx context.Context, r string, opts ...Option) (string, error) {
	ctx, cancel, _ := applyOptions(ctx, opts)
	defer cancel()
	return p.engine.ResolveURI(ctx, r)
}

// TagsOf fetches Tags(r) with weights, sorted by descending weight;
// one lookup.
func (p *Peer) TagsOf(ctx context.Context, r string, opts ...Option) ([]Weighted, error) {
	ctx, cancel, _ := applyOptions(ctx, opts)
	defer cancel()
	return p.engine.TagsOf(ctx, r)
}

// Neighbors fetches the full (unfiltered) FG adjacency of tag t; one
// lookup.
func (p *Peer) Neighbors(ctx context.Context, t string, opts ...Option) ([]Weighted, error) {
	ctx, cancel, _ := applyOptions(ctx, opts)
	defer cancel()
	return p.engine.Neighbors(ctx, t)
}

// Navigate runs a faceted search over the live overlay starting from
// tag start. ctx (and WithTimeout) bound the whole walk: cancellation
// is observed between steps and aborts the in-flight lookup RPCs, and
// the walk returns the partial Result together with the context error.
// A non-context lookup failure swallowed mid-walk is also reported as
// the error, alongside the (still useful) partial result.
func (p *Peer) Navigate(ctx context.Context, start string, strat Strategy, opt NavOptions, opts ...Option) (NavResult, error) {
	ctx, cancel, s := applyOptions(ctx, opts)
	defer cancel()
	v := search.NewEngineView(ctx, p.engine)
	v.TopN = s.topN
	res, err := search.Run(ctx, v, start, strat, opt)
	if err == nil {
		err = v.Err()
	}
	return res, err
}

// NavigateFromResource runs a "more like this" search: the walk enters
// the folksonomy through one of resource r's own tags (chosen by the
// strategy) and refines from there. Context semantics match Navigate.
func (p *Peer) NavigateFromResource(ctx context.Context, r string, strat Strategy, opt NavOptions, opts ...Option) (NavResult, error) {
	ctx, cancel, s := applyOptions(ctx, opts)
	defer cancel()
	v := search.NewEngineView(ctx, p.engine)
	v.TopN = s.topN
	res, err := search.RunFromResource(ctx, v, v, r, strat, opt)
	if err == nil {
		err = v.Err()
	}
	return res, err
}

// NewSystem boots an overlay of cfg.Nodes nodes and attaches a DHARMA
// engine to each. On any failure after the overlay booted, the cluster
// is shut down before the error is returned — a failed NewSystem never
// leaks live endpoints or open write-ahead logs under cfg.DataDir.
func NewSystem(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()

	var authority *likir.Authority
	if cfg.WithIdentity {
		var err error
		authority, err = likir.NewAuthority(nil, 24*time.Hour, nil)
		if err != nil {
			return nil, fmt.Errorf("dharma: create authority: %w", err)
		}
	}

	var popts persist.Options
	if cfg.NoFsync {
		popts.Sync = persist.SyncNone
	}
	cluster, err := kademlia.NewCluster(kademlia.ClusterConfig{
		N: cfg.Nodes,
		Node: kademlia.Config{
			K: cfg.Replication, Alpha: cfg.Alpha,
			ReadRepair: cfg.ReadRepair, MinStoreAcks: cfg.WriteQuorum,
		},
		Net: simnet.Config{
			DropRate:  cfg.DropRate,
			MTU:       cfg.MTU,
			Seed:      cfg.Seed,
			Admission: admission.Config{QueueDepth: cfg.QueueDepth, PerPeerRate: cfg.PerPeerRate},
		},
		Seed:      cfg.Seed,
		Authority: authority,
		DataDir:   cfg.DataDir,
		Persist:   popts,
	})
	if err != nil {
		return nil, fmt.Errorf("dharma: boot overlay: %w", err)
	}

	sys := &System{cluster: cluster, authority: authority}
	for i, node := range cluster.Nodes {
		var signer *likir.Identity
		if authority != nil {
			signer = node.Identity()
		}
		store := dht.NewOverlay(node, signer)
		var engineStore dht.Store = store
		var cache *dht.Cached
		var cachePath string
		if cfg.CacheBlocks > 0 {
			cache = dht.NewCached(store, cfg.CacheBlocks, 0, nil)
			if cfg.DataDir != "" {
				// The node's WAL directory already exists (the cluster booted
				// durably); the cache snapshot lives alongside it. A failed
				// warm is a cold start, never a failed boot.
				cachePath = filepath.Join(cfg.DataDir, node.Self().Addr, "readcache")
				cache.WarmSnapshot(cachePath) //nolint:errcheck
			}
			engineStore = cache
		}
		engine, err := core.NewEngine(engineStore, core.Config{
			Mode: cfg.Mode,
			K:    cfg.K,
			TopN: cfg.TopN,
			Seed: cfg.Seed + int64(i),
		})
		if err != nil {
			// The cluster is already live: endpoints attached, durable
			// WALs open. Tear it down, or a failed boot leaks them all.
			cluster.Shutdown()
			return nil, fmt.Errorf("dharma: engine %d: %w", i, err)
		}
		addr := simnet.Addr(node.Self().Addr)
		sys.peers = append(sys.peers, &Peer{
			engine:    engine,
			Node:      node,
			store:     store,
			cache:     cache,
			cachePath: cachePath,
			net:       cluster.Net.Stats(addr),
			admStats:  func() admission.Stats { return cluster.Net.AdmissionStats(addr) },
		})
	}
	return sys, nil
}

// Peer returns the i-th participant.
func (s *System) Peer(i int) *Peer { return s.peers[i] }

// Peers returns all participants.
func (s *System) Peers() []*Peer { return s.peers }

// Size returns the overlay size.
func (s *System) Size() int { return len(s.peers) }

// Network exposes the simulated network for fault injection and
// traffic accounting.
func (s *System) Network() *simnet.Network { return s.cluster.Net }

// Cluster exposes the overlay cluster for churn operations (RemoveNode,
// Crash, Revive, StartMaintenance) and membership inspection. Peers are
// bound to the nodes the System was built with; drive load only through
// peers whose nodes churn does not touch.
func (s *System) Cluster() *kademlia.Cluster { return s.cluster }

// SetDown crashes (or revives) the i-th node: its endpoint stops
// answering until revived.
func (s *System) SetDown(i int, down bool) {
	s.cluster.Net.SetDown(simnet.Addr(s.peers[i].Node.Self().Addr), down)
}

// Shutdown cleanly stops every member: a durable deployment flushes and
// closes its write-ahead logs — and snapshots each peer's read cache
// next to them — so a later NewSystem over the same DataDir recovers
// the full state with the caches already warm. A no-op for in-memory
// systems.
func (s *System) Shutdown() {
	for _, p := range s.peers {
		if p.cache != nil && p.cachePath != "" {
			// Best-effort: a lost cache snapshot costs overlay lookups on
			// the next boot, not data.
			p.cache.SaveSnapshot(p.cachePath) //nolint:errcheck
		}
	}
	s.cluster.Shutdown()
}

// UDPPeerConfig describes one real-UDP participant: a node that binds a
// socket and joins (or founds) a deployed overlay, with a DHARMA engine
// on top — the facade's path from simulation to deployment.
type UDPPeerConfig struct {
	// Config supplies the engine and overlay knobs (Mode, K, TopN,
	// Replication, Alpha, ReadRepair, WriteQuorum, DataDir, NoFsync,
	// CacheBlocks, QueueDepth, PerPeerRate, Seed). Simulation-only
	// fields — Nodes, DropRate, MTU, WithIdentity — are ignored: there
	// is no simulated fault model over a real socket, and the Likir
	// layer needs an in-process authority.
	Config
	// Listen is the UDP bind address (e.g. "127.0.0.1:0").
	Listen string
	// Bootstrap lists addresses of running nodes to join through
	// (empty = this peer founds a new overlay).
	Bootstrap []string
	// Timeout bounds each overlay RPC (0 = the transport default).
	Timeout time.Duration
	// Metrics, when non-nil, instruments every layer of the peer on
	// that registry — node, store, cache, transport, and (with DataDir)
	// the write-ahead log — ready for obs.Handler to serve.
	Metrics *obs.Registry

	// IdentityPath and CAPath enable the Likir security layer on a
	// deployed peer: IdentityPath is an identity file issued by
	// `dharma-node ca issue`, CAPath the authority's public key file
	// (ca.pub). Set together or not at all. With them set the peer's
	// overlay ID is the credential's node ID, outbound RPCs carry the
	// credential, every datagram travels inside an authenticated
	// session, and URI entries are signed.
	IdentityPath string
	CAPath       string
	// RevocationsPath, when set, points at the authority's signed
	// revocation bundle (revocations.bin); the peer refuses revoked
	// peers and RefreshRevocations re-reads the file live.
	RevocationsPath string
	// RequireAuth rejects plain (session-less) inbound requests with
	// KindUnauthorized. Leave false during a rolling upgrade; set true
	// once the fleet speaks sessions.
	RequireAuth bool
	// ChaosDelay artificially delays every inbound RPC handler — a
	// test knob for observing deadline-shed behaviour under load.
	ChaosDelay time.Duration
}

// NewUDPPeer boots one real-UDP participant. The returned Peer speaks
// the same API as a simulated one; callers own its lifecycle and must
// Close it. ctx bounds the join handshake only.
func NewUDPPeer(ctx context.Context, ucfg UDPPeerConfig) (*Peer, error) {
	cfg := ucfg.Config.withDefaults()
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	id := kadid.Random(rand.New(rand.NewSource(seed)))

	ncfg := kademlia.Config{
		K: cfg.Replication, Alpha: cfg.Alpha,
		ReadRepair: cfg.ReadRepair, MinStoreAcks: cfg.WriteQuorum,
		ChaosDelay: ucfg.ChaosDelay,
	}

	var (
		ident    *likir.Identity
		caPub    ed25519.PublicKey
		revSet   *likir.RevocationSet
		sessions *session.Manager
	)
	if ucfg.IdentityPath != "" || ucfg.CAPath != "" {
		if ucfg.IdentityPath == "" || ucfg.CAPath == "" {
			return nil, fmt.Errorf("dharma: IdentityPath and CAPath must be set together")
		}
		var err error
		if ident, err = likir.LoadIdentity(ucfg.IdentityPath); err != nil {
			return nil, fmt.Errorf("dharma: %w", err)
		}
		if caPub, err = likir.LoadPublicKey(ucfg.CAPath); err != nil {
			return nil, fmt.Errorf("dharma: %w", err)
		}
		if err := likir.VerifyCredential(caPub, &ident.Credential, nil); err != nil {
			return nil, fmt.Errorf("dharma: identity %s not issued by CA %s: %w",
				ucfg.IdentityPath, ucfg.CAPath, err)
		}
		ncfg.Identity, ncfg.CAPub = ident, caPub
		if ucfg.RevocationsPath != "" {
			bundle, err := os.ReadFile(ucfg.RevocationsPath)
			if err != nil {
				return nil, fmt.Errorf("dharma: %w", err)
			}
			if revSet, err = likir.NewRevocationSet(caPub, bundle); err != nil {
				return nil, fmt.Errorf("dharma: %s: %w", ucfg.RevocationsPath, err)
			}
			ncfg.Revoked = revSet.Contains
		}
		if sessions, err = session.NewManager(session.Config{
			Identity: ident, CAPub: caPub, Revoked: ncfg.Revoked,
		}); err != nil {
			return nil, fmt.Errorf("dharma: %w", err)
		}
		id = ident.NodeID // Likir: the credential fixes the overlay ID
	}

	var popts persist.Options
	if cfg.NoFsync {
		popts.Sync = persist.SyncNone
	}
	popts.Metrics = ucfg.Metrics
	if cfg.DataDir != "" {
		// Without a credential the stored IDENTITY file pins the overlay
		// ID across restarts; with one, the credential already does.
		if ident == nil {
			var err error
			if id, err = persist.LoadOrCreateIdentity(cfg.DataDir, id); err != nil {
				return nil, fmt.Errorf("dharma: %w", err)
			}
		}
		store, _, err := kademlia.OpenDurableStore(cfg.DataDir, popts)
		if err != nil {
			return nil, fmt.Errorf("dharma: %w", err)
		}
		ncfg.Store = store
	}
	node := kademlia.NewNode(id, ncfg)
	tr, err := wire.ListenUDPOptions(ucfg.Listen, node, wire.UDPOptions{
		Timeout:     ucfg.Timeout,
		Admission:   admission.Config{QueueDepth: cfg.QueueDepth, PerPeerRate: cfg.PerPeerRate},
		Sessions:    sessions,
		RequireAuth: ucfg.RequireAuth,
	})
	if err != nil {
		return nil, fmt.Errorf("dharma: %w", err)
	}
	node.Attach(tr)
	var seeds []wire.Contact
	for _, b := range ucfg.Bootstrap {
		contact, err := node.Discover(ctx, b)
		if err != nil {
			node.Shutdown() //nolint:errcheck // boot failed; nothing to flush
			return nil, fmt.Errorf("dharma: discover %s: %w", b, err)
		}
		seeds = append(seeds, contact)
	}
	if len(seeds) > 0 {
		if err := node.Bootstrap(ctx, seeds); err != nil {
			node.Shutdown() //nolint:errcheck // boot failed; nothing to flush
			return nil, fmt.Errorf("dharma: bootstrap: %w", err)
		}
	}

	store := dht.NewOverlay(node, ident)
	var engineStore dht.Store = store
	var cache *dht.Cached
	var cachePath string
	if cfg.CacheBlocks > 0 {
		cache = dht.NewCached(store, cfg.CacheBlocks, 0, nil)
		if cfg.DataDir != "" {
			cachePath = filepath.Join(cfg.DataDir, "readcache")
			cache.WarmSnapshot(cachePath) //nolint:errcheck
		}
		engineStore = cache
	}
	engine, err := core.NewEngine(engineStore, core.Config{
		Mode: cfg.Mode, K: cfg.K, TopN: cfg.TopN, Seed: seed,
	})
	if err != nil {
		node.Shutdown() //nolint:errcheck // boot failed; nothing to flush
		return nil, fmt.Errorf("dharma: engine: %w", err)
	}
	p := &Peer{
		engine:    engine,
		Node:      node,
		store:     store,
		cache:     cache,
		cachePath: cachePath,
		sessions:  sessions,
		revSet:    revSet,
		revPath:   ucfg.RevocationsPath,
		caPub:     caPub,
	}
	p.Instrument(ucfg.Metrics)
	return p, nil
}

// RefreshRevocations re-reads the peer's revocation bundle from disk
// (the authority rewrites it on every `ca revoke`) and tears down any
// live sessions whose peer the fresh bundle names. It returns how many
// identifiers the bundle now lists. Call it from a maintenance tick;
// a no-op (0, nil) on peers built without RevocationsPath.
func (p *Peer) RefreshRevocations() (int, error) {
	if p.revSet == nil || p.revPath == "" {
		return 0, nil
	}
	bundle, err := os.ReadFile(p.revPath)
	if err != nil {
		return p.revSet.Len(), fmt.Errorf("dharma: %w", err)
	}
	if err := p.revSet.Refresh(p.caPub, bundle); err != nil {
		return p.revSet.Len(), fmt.Errorf("dharma: %s: %w", p.revPath, err)
	}
	if p.sessions != nil {
		p.sessions.DropRevoked()
	}
	return p.revSet.Len(), nil
}

// Instrument registers every layer of this peer on reg: the overlay
// node (RPC serve latency by kind, lookup histograms, maintenance
// counters, per-shard store latency), the read cache, and — on a
// real-UDP peer — the transport's datagram and admission accounting.
// One registry per peer: instrument names are deployment-wide, so two
// peers sharing a registry would silently share instruments. A nil reg
// is a no-op.
func (p *Peer) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	p.Node.Instrument(reg)
	if p.cache != nil {
		p.cache.Instrument(reg)
	}
	if tr, ok := p.Node.Transport().(*wire.UDPTransport); ok {
		tr.Instrument(reg)
	}
}

// Close stops a self-owned peer (one built with NewUDPPeer): the read
// cache is snapshotted when durable, then the node shuts down, closing
// its transport and flushing its write-ahead log. Peers belonging to a
// System are closed by System.Shutdown instead.
func (p *Peer) Close() error {
	if p.cache != nil && p.cachePath != "" {
		p.cache.SaveSnapshot(p.cachePath) //nolint:errcheck // best-effort
	}
	return p.Node.Shutdown()
}

// NewLocalEngine creates a DHARMA engine over an in-process block store
// with the same semantics as the overlay — the embedding mode for
// applications that want the tagging model without networking.
func NewLocalEngine(cfg Config) (*core.Engine, *dht.Local, error) {
	cfg = cfg.withDefaults()
	store := dht.NewLocal()
	engine, err := core.NewEngine(store, core.Config{
		Mode: cfg.Mode, K: cfg.K, TopN: cfg.TopN, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	return engine, store, nil
}
