package dharma

// Cancellation and deadline semantics of the context-first API, end to
// end: a deadline or cancellation must abort the in-flight overlay RPC
// waiters — not merely skip the next hop — so operations stuck behind a
// non-answering endpoint return as soon as the caller gives up. On the
// simulated network there is no RPC timeout at all (a hung handler
// blocks forever), which makes these tests strict: without waiter
// aborts they would deadlock, not just run slow.

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"dharma/internal/core"
	"dharma/internal/kadid"
	"dharma/internal/search"
	"dharma/internal/simnet"
	"dharma/internal/wire"
)

// hangReplica attaches an endpoint to sys's network that accepts RPCs
// and never answers, and plants it in peer p's routing table under
// exactly the identifier id — so it sorts first for lookups of id and
// lands in the first query batch. The returned release function
// unblocks every captured handler goroutine.
func hangReplica(sys *System, p *Peer, id kadid.ID, addr string) (release func()) {
	block := make(chan struct{})
	sys.Network().Attach(simnet.Addr(addr), simnet.HandlerFunc(
		func(context.Context, simnet.Addr, []byte) ([]byte, error) {
			<-block
			return nil, errors.New("hung")
		}))
	p.Node.Table().Update(wire.Contact{ID: id, Addr: addr})
	return func() { close(block) }
}

// TestSearchStepDeadlineAbortsInFlightRPC: a WithTimeout deadline on a
// lookup whose replica set includes a non-answering endpoint surfaces
// context.DeadlineExceeded promptly. The hung endpoint would otherwise
// block the lookup round forever.
func TestSearchStepDeadlineAbortsInFlightRPC(t *testing.T) {
	sys, err := NewSystem(Config{Nodes: 12, Mode: Approximated, K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	p := sys.Peer(0)
	// Publish first: the insert runs under no deadline and must not
	// touch the hung endpoint.
	if err := p.InsertResource(context.Background(), "song", "uri:song", []string{"rock", "60s"}); err != nil {
		t.Fatal(err)
	}

	key := core.BlockKey("rock", core.BlockTagNeighbors)
	release := hangReplica(sys, p, key, "hung-replica")
	defer release()

	start := time.Now()
	_, _, err = p.SearchStep(context.Background(), "rock", WithTimeout(100*time.Millisecond))
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SearchStep against hung replica: err = %v, want DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("SearchStep took %v; the 100ms deadline should have aborted the in-flight RPC", elapsed)
	}
}

// TestNavigateCancelMidWalk: cancelling the context while a Navigate is
// blocked inside a step returns promptly with context.Canceled and the
// Canceled termination reason.
func TestNavigateCancelMidWalk(t *testing.T) {
	sys, err := NewSystem(Config{Nodes: 12, Mode: Approximated, K: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	p := sys.Peer(0)
	for _, r := range []string{"r1", "r2", "r3"} {
		if err := p.InsertResource(context.Background(), r, "uri:"+r, []string{"rock", "indie", "live"}); err != nil {
			t.Fatal(err)
		}
	}

	key := core.BlockKey("rock", core.BlockTagNeighbors)
	release := hangReplica(sys, p, key, "hung-nav")
	defer release()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := p.Navigate(ctx, "rock", First, NavOptions{MinResources: 1})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Navigate: err = %v, want context.Canceled", err)
	}
	if res.Reason != search.Canceled {
		t.Fatalf("Navigate reason = %v, want canceled", res.Reason)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("Navigate took %v after a 50ms cancel; the walk did not abort its in-flight RPC", elapsed)
	}
}

// TestOperationsHonorPreCanceledContext: every facade operation refuses
// an already-ended context up front with its error.
func TestOperationsHonorPreCanceledContext(t *testing.T) {
	sys, err := NewSystem(Config{Nodes: 8, Mode: Approximated, K: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	p := sys.Peer(0)
	if err := p.InsertResource(context.Background(), "r", "uri:r", []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if err := p.Tag(ctx, "r", "c"); !errors.Is(err, context.Canceled) {
		t.Errorf("Tag: %v, want Canceled", err)
	}
	if _, _, err := p.SearchStep(ctx, "a"); !errors.Is(err, context.Canceled) {
		t.Errorf("SearchStep: %v, want Canceled", err)
	}
	if _, err := p.ResolveURI(ctx, "r"); !errors.Is(err, context.Canceled) {
		t.Errorf("ResolveURI: %v, want Canceled", err)
	}
	if _, err := p.TagsOf(ctx, "r"); !errors.Is(err, context.Canceled) {
		t.Errorf("TagsOf: %v, want Canceled", err)
	}
	if _, err := p.Neighbors(ctx, "a"); !errors.Is(err, context.Canceled) {
		t.Errorf("Neighbors: %v, want Canceled", err)
	}
	if err := p.InsertResource(ctx, "r2", "uri:r2", []string{"a"}); !errors.Is(err, context.Canceled) {
		t.Errorf("InsertResource: %v, want Canceled", err)
	}
	if _, err := p.Navigate(ctx, "a", First, NavOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("Navigate: %v, want Canceled", err)
	}
}

// TestWithTopNOverridesPerCall: WithTopN narrows one SearchStep without
// touching the deployment default.
func TestWithTopNOverridesPerCall(t *testing.T) {
	sys, err := NewSystem(Config{Nodes: 8, Mode: Approximated, K: 5, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	p := sys.Peer(0)
	// One resource carrying many tags gives "hub" a wide neighbour set.
	tags := []string{"hub", "t1", "t2", "t3", "t4", "t5", "t6"}
	if err := p.InsertResource(context.Background(), "r", "uri:r", tags); err != nil {
		t.Fatal(err)
	}

	wide, _, err := p.SearchStep(context.Background(), "hub")
	if err != nil {
		t.Fatal(err)
	}
	if len(wide) != 6 {
		t.Fatalf("default SearchStep returned %d related tags, want 6", len(wide))
	}
	narrow, _, err := p.SearchStep(context.Background(), "hub", WithTopN(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(narrow) != 2 {
		t.Fatalf("WithTopN(2) returned %d related tags, want 2", len(narrow))
	}
	// The override is per-call: the default is untouched afterwards.
	again, _, err := p.SearchStep(context.Background(), "hub")
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 6 {
		t.Fatalf("SearchStep after override returned %d related tags, want 6", len(again))
	}
}

// TestNewSystemPartialFailureShutsDownCluster: when an engine fails to
// construct after the overlay booted, NewSystem must shut the cluster
// down — otherwise every durable node leaks its open write-ahead log
// (observable as the WAL flusher goroutines that only exit on Close).
func TestNewSystemPartialFailureShutsDownCluster(t *testing.T) {
	dir := t.TempDir()
	before := runtime.NumGoroutine()

	// Approximated mode with K < 0 survives withDefaults but fails
	// core.NewEngine — after the 8 durable nodes are already serving.
	_, err := NewSystem(Config{
		Nodes: 8, Mode: Approximated, K: -1,
		DataDir: dir, NoFsync: true, Seed: 21,
	})
	if err == nil {
		t.Fatal("NewSystem with invalid engine config: want error")
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("failed NewSystem leaked goroutines: %d before, %d after (WAL flushers not closed)",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The WALs were closed cleanly: the same DataDir boots again.
	sys, err := NewSystem(Config{Nodes: 8, DataDir: dir, NoFsync: true, Seed: 21})
	if err != nil {
		t.Fatalf("reboot over the same DataDir: %v", err)
	}
	sys.Shutdown()
}

// TestPeerStatsSnapshot: the consolidated Stats() snapshot agrees with
// the per-layer counters it replaces.
func TestPeerStatsSnapshot(t *testing.T) {
	sys, err := NewSystem(Config{Nodes: 8, Mode: Approximated, K: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	p := sys.Peer(2)
	if err := p.InsertResource(context.Background(), "r", "uri:r", []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if err := p.Tag(context.Background(), "r", "c"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.SearchStep(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}

	st := p.Stats()
	if st.Lookups == 0 || st.Appends == 0 || st.Gets == 0 {
		t.Fatalf("zero op counters after traffic: %+v", st)
	}
	if st.Lookups != st.Appends+st.Gets {
		t.Fatalf("Lookups = %d, want Appends+Gets = %d", st.Lookups, st.Appends+st.Gets)
	}
	if st.Lookups != p.Lookups() {
		t.Fatalf("Stats().Lookups = %d disagrees with Lookups() = %d", st.Lookups, p.Lookups())
	}
	if st.NodeLookups == 0 {
		t.Fatalf("NodeLookups = 0 after overlay traffic: %+v", st)
	}
	if st.NetSent == 0 {
		t.Fatalf("NetSent = 0 after overlay traffic: %+v", st)
	}
	// Some peer served the replica RPCs this peer issued.
	served := int64(0)
	for _, q := range sys.Peers() {
		served += q.Stats().RPCServed
	}
	if served == 0 {
		t.Fatalf("no peer served any RPC after overlay traffic")
	}
}
