package dharma

import (
	"context"
	"testing"
)

func TestConfigWithDefaults(t *testing.T) {
	cases := []struct {
		name string
		in   Config
		want Config
	}{
		{
			name: "zero value fills every default",
			in:   Config{},
			want: Config{Nodes: 16, Mode: Naive, K: 5, Replication: 8, Alpha: 3},
		},
		{
			name: "approximated mode defaults K",
			in:   Config{Mode: Approximated},
			want: Config{Nodes: 16, Mode: Approximated, K: 5, Replication: 8, Alpha: 3},
		},
		{
			name: "naive mode still gets a K for later mode switches",
			in:   Config{Mode: Naive, Nodes: 4},
			want: Config{Nodes: 4, Mode: Naive, K: 5, Replication: 8, Alpha: 3},
		},
		{
			name: "explicit values survive",
			in: Config{Nodes: 3, Mode: Approximated, K: 2, TopN: 10,
				Replication: 4, Alpha: 1, Seed: 9, DropRate: 0.1, MTU: 1400},
			want: Config{Nodes: 3, Mode: Approximated, K: 2, TopN: 10,
				Replication: 4, Alpha: 1, Seed: 9, DropRate: 0.1, MTU: 1400},
		},
		{
			name: "negative TopN (filtering disabled) is preserved",
			in:   Config{TopN: -1},
			want: Config{Nodes: 16, K: 5, TopN: -1, Replication: 8, Alpha: 3},
		},
		{
			name: "identity flag is preserved",
			in:   Config{WithIdentity: true},
			want: Config{Nodes: 16, K: 5, Replication: 8, Alpha: 3, WithIdentity: true},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.in.withDefaults(); got != c.want {
				t.Errorf("withDefaults() = %+v, want %+v", got, c.want)
			}
		})
	}
}

func TestSetDownAndRevive(t *testing.T) {
	sys, err := NewSystem(Config{Nodes: 12, Mode: Approximated, K: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Peer(0).InsertResource(context.Background(), "r", "uri:r", []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}

	victim := 5
	contact := sys.Peer(victim).Node.Self()

	if !sys.Peer(1).Node.Ping(context.Background(), contact) {
		t.Fatal("victim unreachable before SetDown")
	}
	sys.SetDown(victim, true)
	if sys.Peer(1).Node.Ping(context.Background(), contact) {
		t.Fatal("victim still answering while down")
	}
	// The rest of the overlay keeps serving: replication covers the
	// crashed node.
	if _, err := sys.Peer(2).ResolveURI(context.Background(), "r"); err != nil {
		t.Fatalf("ResolveURI with a node down: %v", err)
	}
	if err := sys.Peer(3).Tag(context.Background(), "r", "c"); err != nil {
		t.Fatalf("Tag with a node down: %v", err)
	}

	// Revive: the node answers again and can itself operate.
	sys.SetDown(victim, false)
	if !sys.Peer(1).Node.Ping(context.Background(), contact) {
		t.Fatal("victim not answering after revive")
	}
	if _, err := sys.Peer(victim).ResolveURI(context.Background(), "r"); err != nil {
		t.Fatalf("revived node ResolveURI: %v", err)
	}
	if err := sys.Peer(victim).Tag(context.Background(), "r", "d"); err != nil {
		t.Fatalf("revived node Tag: %v", err)
	}

	// Down/revive must be idempotent.
	sys.SetDown(victim, false)
	if !sys.Peer(1).Node.Ping(context.Background(), contact) {
		t.Fatal("double revive broke the node")
	}
}
