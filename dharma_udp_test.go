package dharma

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"dharma/internal/kadid"
	"dharma/internal/obs"
	"dharma/internal/wire"
)

// TestUDPPeerStatsSurfaceAdmission is the regression test for the bug
// where a real-UDP peer's Stats() silently reported BusyRejected: 0 —
// the field was read from simnet counters only, and a deployed node has
// no simnet endpoint. The admission accounting must come from the UDP
// transport's own controller.
func TestUDPPeerStatsSurfaceAdmission(t *testing.T) {
	ctx := context.Background()
	// A per-peer rate this low never refills a token: the default burst
	// (8) is the total allowance, everything past it is rejected busy.
	p, err := NewUDPPeer(ctx, UDPPeerConfig{
		Listen: "127.0.0.1:0",
		Config: Config{PerPeerRate: 0.0001},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// A raw wire-level client: no busy retries, no backoff — each Call
	// is exactly one admission decision at the peer.
	client, err := wire.ListenUDP("127.0.0.1:0", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ping := wire.Encode(&wire.Message{
		Kind: wire.KindPing,
		From: wire.Contact{ID: kadid.Random(rand.New(rand.NewSource(1))), Addr: string(client.Addr())},
	})
	var busy int
	for i := 0; i < 20; i++ {
		resp, err := client.Call(ctx, p.Node.Transport().Addr(), ping)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		m, err := wire.Decode(resp)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if m.Kind == wire.KindBusy {
			busy++
		}
	}
	if busy == 0 {
		t.Fatal("rate gate never rejected; the test exercises nothing")
	}

	st := p.Stats()
	if st.Admitted == 0 {
		t.Fatal("UDP peer Stats().Admitted is 0 despite served pings")
	}
	if st.BusyRejected == 0 {
		t.Fatal("UDP peer Stats().BusyRejected is 0 despite busy answers (the old silent-zero bug)")
	}
	if int(st.BusyRejected) != busy {
		t.Fatalf("BusyRejected = %d, want %d (one per busy answer)", st.BusyRejected, busy)
	}
	if st.InFlight != 0 {
		t.Fatalf("InFlight = %d on a quiescent peer", st.InFlight)
	}
}

// TestSimnetPeerStatsSurfaceAdmission: the simulated path reports the
// same admission fields, resolved through the network's per-endpoint
// controllers.
func TestSimnetPeerStatsSurfaceAdmission(t *testing.T) {
	sys, err := NewSystem(Config{Nodes: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Shutdown()
	ctx := context.Background()
	if err := sys.Peer(0).InsertResource(ctx, "r", "uri:r", []string{"rock"}); err != nil {
		t.Fatal(err)
	}
	var admitted int64
	for _, p := range sys.Peers() {
		admitted += p.Stats().Admitted
	}
	if admitted == 0 {
		t.Fatal("no simulated peer reports admitted requests after an insert")
	}
}

// TestUDPPeerInstrument: a deployed two-peer overlay instrumented on a
// registry exposes RPC, transport, and admission metrics.
func TestUDPPeerInstrument(t *testing.T) {
	ctx := context.Background()
	reg := obs.NewRegistry()
	a, err := NewUDPPeer(ctx, UDPPeerConfig{Listen: "127.0.0.1:0", Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewUDPPeer(ctx, UDPPeerConfig{
		Listen:    "127.0.0.1:0",
		Bootstrap: []string{string(a.Node.Transport().Addr())},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := b.InsertResource(ctx, "song", "uri:song", []string{"rock"}); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"dharma_rpc_serve_seconds_bucket",
		"dharma_udp_datagrams_read_total",
		"dharma_admission_admitted_total",
		"dharma_store_blocks",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q", want)
		}
	}
	parsed, err := obs.ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if m, ok := parsed["dharma_udp_datagrams_read_total"]; !ok || m.Value == 0 {
		t.Fatalf("instrumented transport read no datagrams: %+v", m)
	}
}
