package dharma_test

import (
	"context"
	"fmt"
	"testing"

	"dharma"
)

func TestSystemEndToEnd(t *testing.T) {
	sys, err := dharma.NewSystem(dharma.Config{Nodes: 16, Mode: dharma.Approximated, K: 5, Seed: 1})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if sys.Size() != 16 {
		t.Fatalf("Size = %d", sys.Size())
	}

	publisher := sys.Peer(3)
	if err := publisher.InsertResource(context.Background(), "norwegian-wood", "magnet:nw", []string{"rock", "60s", "beatles"}); err != nil {
		t.Fatalf("InsertResource: %v", err)
	}
	if err := publisher.InsertResource(context.Background(), "yesterday", "magnet:yd", []string{"rock", "60s", "ballad"}); err != nil {
		t.Fatal(err)
	}
	if err := publisher.Tag(context.Background(), "norwegian-wood", "folk-rock"); err != nil {
		t.Fatalf("Tag: %v", err)
	}

	// A different peer sees the published graph.
	reader := sys.Peer(11)
	related, resources, err := reader.SearchStep(context.Background(), "rock")
	if err != nil {
		t.Fatalf("SearchStep: %v", err)
	}
	if len(related) == 0 || len(resources) != 2 {
		t.Fatalf("related=%v resources=%v", related, resources)
	}
	uri, err := reader.ResolveURI(context.Background(), "yesterday")
	if err != nil || uri != "magnet:yd" {
		t.Fatalf("ResolveURI = %q, %v", uri, err)
	}

	res, err := reader.Navigate(context.Background(), "rock", dharma.First, dharma.NavOptions{MinResources: 1})
	if err != nil {
		t.Fatalf("navigate: %v", err)
	}
	if res.Steps() < 1 {
		t.Fatal("navigation produced no path")
	}
	if reader.Lookups() == 0 {
		t.Fatal("reader performed no lookups")
	}
}

func TestSystemWithIdentity(t *testing.T) {
	sys, err := dharma.NewSystem(dharma.Config{Nodes: 12, WithIdentity: true, Seed: 2})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	p := sys.Peer(0)
	if err := p.InsertResource(context.Background(), "song", "uri:song", []string{"jazz"}); err != nil {
		t.Fatalf("InsertResource: %v", err)
	}
	uri, err := sys.Peer(7).ResolveURI(context.Background(), "song")
	if err != nil || uri != "uri:song" {
		t.Fatalf("ResolveURI over Likir overlay = %q, %v", uri, err)
	}
}

func TestSystemNaiveMode(t *testing.T) {
	sys, err := dharma.NewSystem(dharma.Config{Nodes: 8, Mode: dharma.Naive, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := sys.Peer(1)
	if err := p.InsertResource(context.Background(), "r", "", []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	before := p.Lookups()
	if err := p.Tag(context.Background(), "r", "c"); err != nil {
		t.Fatal(err)
	}
	if got := p.Lookups() - before; got != 4+2 {
		t.Fatalf("naive tag cost %d block ops, want 6", got)
	}
}

func TestNewLocalEngine(t *testing.T) {
	eng, store, err := dharma.NewLocalEngine(dharma.Config{Mode: dharma.Approximated, K: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := eng.InsertResource(context.Background(), fmt.Sprintf("r%d", i), "", "x", "y"); err != nil {
			t.Fatal(err)
		}
	}
	related, _, err := eng.SearchStep(context.Background(), "x")
	if err != nil {
		t.Fatal(err)
	}
	if len(related) != 1 || related[0].Name != "y" {
		t.Fatalf("related = %v", related)
	}
	if store.Lookups() == 0 {
		t.Fatal("no lookups counted")
	}
}

func TestNavigateFromResource(t *testing.T) {
	sys, err := dharma.NewSystem(dharma.Config{Nodes: 12, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	p := sys.Peer(2)
	for i := 0; i < 6; i++ {
		if err := p.InsertResource(context.Background(), fmt.Sprintf("song%d", i), "", []string{"rock", "live"}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sys.Peer(9).NavigateFromResource(context.Background(), "song3", dharma.First, dharma.NavOptions{MinResources: 1})
	if err != nil {
		t.Fatalf("navigate from resource: %v", err)
	}
	if res.Steps() < 1 {
		t.Fatalf("pivot navigation empty: %+v", res)
	}
	if res.Path[0] != "live" && res.Path[0] != "rock" {
		t.Fatalf("entry tag %q not on song3", res.Path[0])
	}
	// Unknown resource degrades gracefully.
	empty, _ := sys.Peer(9).NavigateFromResource(context.Background(), "ghost", dharma.First, dharma.NavOptions{})
	if empty.Steps() != 0 {
		t.Fatalf("ghost pivot produced a path: %+v", empty)
	}
}

func TestSystemFaultInjection(t *testing.T) {
	sys, err := dharma.NewSystem(dharma.Config{Nodes: 24, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Peer(0).InsertResource(context.Background(), "r", "uri:r", []string{"tag"}); err != nil {
		t.Fatal(err)
	}
	// Take down a third of the overlay; the blocks must survive thanks
	// to write-time replication.
	for i := 10; i < 18; i++ {
		sys.SetDown(i, true)
	}
	if _, err := sys.Peer(2).ResolveURI(context.Background(), "r"); err != nil {
		t.Fatalf("ResolveURI after failures: %v", err)
	}
}
