// Fileshare demonstrates DHARMA as the index of a p2p file-sharing
// network — the paper's motivating deployment — with the Likir identity
// layer enabled: nodes carry certified identities, URI blocks are
// signed, and the index survives node crashes thanks to write-time
// replication.
package main

import (
	"context"
	"fmt"
	"log"

	"dharma"
)

func main() {
	// WithIdentity boots a certification authority and issues every
	// node a Likir credential; uncertified peers are rejected.
	sys, err := dharma.NewSystem(dharma.Config{
		Nodes:        24,
		Mode:         dharma.Approximated,
		K:            4,
		WithIdentity: true,
		Seed:         11,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Shutdown()
	fmt.Printf("Likir overlay up: %d certified nodes\n\n", sys.Size())

	ctx := context.Background()

	type file struct {
		name, magnet string
		tags         []string
	}
	files := []file{
		{"ubuntu-24.04.iso", "magnet:?xt=ubuntu", []string{"linux", "iso", "os", "lts"}},
		{"debian-12.iso", "magnet:?xt=debian", []string{"linux", "iso", "os", "stable"}},
		{"go1.22.src.tar.gz", "magnet:?xt=gosrc", []string{"golang", "source", "compiler"}},
		{"sicp.pdf", "magnet:?xt=sicp", []string{"book", "lisp", "cs"}},
		{"k&r.pdf", "magnet:?xt=knr", []string{"book", "c", "cs"}},
		{"tapl.pdf", "magnet:?xt=tapl", []string{"book", "types", "cs"}},
	}
	for i, f := range files {
		publisher := sys.Peer(i % sys.Size())
		if err := publisher.InsertResource(ctx, f.name, f.magnet, f.tags); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("node-%-2d published %-20s %v\n", i%sys.Size(), f.name, f.tags)
	}

	// Another user enriches the index.
	if err := sys.Peer(7).Tag(ctx, "sicp.pdf", "scheme"); err != nil {
		log.Fatal(err)
	}

	// Navigate: books about computer science, then refine.
	seeker := sys.Peer(19)
	nav, err := seeker.Navigate(ctx, "book", dharma.First, dharma.NavOptions{MinResources: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnavigation from 'book': path=%v -> %v\n", nav.Path, nav.FinalResources)

	// "More like this": enter the folksonomy through a known file.
	similar, err := seeker.NavigateFromResource(ctx, "sicp.pdf", dharma.First, dharma.NavOptions{MinResources: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("more-like sicp.pdf: path=%v -> %v\n", similar.Path, similar.FinalResources)

	// Crash a third of the network, including possibly some replica
	// holders, and show the index still resolves.
	for i := 0; i < 8; i++ {
		sys.SetDown(i, true)
	}
	fmt.Println("\ncrashed nodes 0..7; retrieving through the survivors:")
	for _, f := range files {
		uri, err := seeker.ResolveURI(ctx, f.name)
		if err != nil {
			fmt.Printf("  %-20s LOST (%v)\n", f.name, err)
			continue
		}
		fmt.Printf("  %-20s -> %s\n", f.name, uri)
	}

	// The Likir layer end-to-end: a search step still verifies content
	// signatures on the survivors.
	related, _, err := seeker.SearchStep(ctx, "cs")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntags related to 'cs' after the crash: ")
	for _, w := range related {
		fmt.Printf("%s(%d) ", w.Name, w.Weight)
	}
	fmt.Println()
}
