// Musicfolk replays a synthetic Last.fm-like workload (the paper's
// evaluation domain) through a live DHARMA overlay and then explores it
// with all three navigation strategies of §V-C, reporting path lengths
// and per-node load — a miniature of the full evaluation pipeline.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"

	"dharma"
	"dharma/internal/dataset"
	"dharma/internal/simnet"
)

func main() {
	nodes := flag.Int("nodes", 24, "overlay size")
	k := flag.Int("k", 3, "connection parameter (Approximation A)")
	annotations := flag.Int("annotations", 1500, "annotations to publish")
	seed := flag.Int64("seed", 7, "workload seed")
	flag.Parse()

	sys, err := dharma.NewSystem(dharma.Config{Nodes: *nodes, Mode: dharma.Approximated, K: *k, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Shutdown()
	ctx := context.Background()

	// Generate a workload shaped like the paper's crawl (power-law
	// degrees, singleton periphery, popular core) and publish a slice.
	d := dataset.Generate(dataset.Tiny(*seed))
	schedule := d.Shuffled(*seed + 1)
	if len(schedule) > *annotations {
		schedule = schedule[:*annotations]
	}

	fmt.Printf("publishing %d annotations from %d users onto %d nodes (k=%d)...\n",
		len(schedule), d.Config.Users, sys.Size(), *k)
	inserted := map[string]bool{}
	popularity := map[string]int{}
	for i, a := range schedule {
		peer := sys.Peer(i % sys.Size()) // tagging load spread over peers
		if !inserted[a.Resource] {
			if err := peer.InsertResource(ctx, a.Resource, "lastfm:"+a.Resource, nil); err != nil {
				log.Fatal(err)
			}
			inserted[a.Resource] = true
		}
		if err := peer.Tag(ctx, a.Resource, a.Tag); err != nil {
			log.Fatal(err)
		}
		popularity[a.Tag]++
	}

	// The most popular tag is the worst-case navigation start (§V-C).
	type tagCount struct {
		tag string
		n   int
	}
	var pop []tagCount
	for t, n := range popularity {
		pop = append(pop, tagCount{t, n})
	}
	sort.Slice(pop, func(i, j int) bool {
		if pop[i].n != pop[j].n {
			return pop[i].n > pop[j].n
		}
		return pop[i].tag < pop[j].tag
	})
	start := pop[0].tag
	fmt.Printf("most popular tag: %q (%d annotations)\n\n", start, pop[0].n)

	explorer := sys.Peer(0)
	for _, strat := range []dharma.Strategy{dharma.Last, dharma.Random, dharma.First} {
		nav, err := explorer.Navigate(ctx, start, strat, dharma.NavOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s strategy: %2d steps  path=%v\n", strat, nav.Steps(), nav.Path)
		fmt.Printf("        stopped: %s, %d resources remain\n", nav.Reason, len(nav.FinalResources))
	}

	// Per-node load: the hotspot picture of §V.
	fmt.Printf("\noverlay load (top 5 of %d nodes by requests served):\n", sys.Size())
	busiest := sys.Network().BusiestNodes()
	for i, addr := range busiest {
		if i == 5 {
			break
		}
		st := sys.Network().Stats(simnet.Addr(addr))
		fmt.Printf("  %-8s served %6d requests\n", addr, st.Received.Load())
	}
	c := sys.Network().Counters()
	fmt.Printf("network totals: %d RPCs, %.1f MB out\n",
		c.Calls, float64(c.BytesOut)/(1<<20))
}
