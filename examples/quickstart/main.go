// Quickstart: boot an in-process DHARMA overlay, publish a few tagged
// resources, and run a faceted search — the end-to-end loop of the
// paper in ~60 lines.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dharma"
)

func main() {
	// 16 overlay nodes, approximated maintenance with connection
	// parameter k=5 (a tagging operation costs at most 4+5 lookups).
	sys, err := dharma.NewSystem(dharma.Config{Nodes: 16, Mode: dharma.Approximated, K: 5, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Shutdown()

	// Every operation takes a context; cancel it (or let a deadline
	// expire) and the in-flight overlay RPCs are aborted.
	ctx := context.Background()
	fmt.Printf("overlay up: %d nodes\n\n", sys.Size())

	// Any peer can publish. Tags connect the resource into the
	// folksonomy graph.
	alice := sys.Peer(3)
	resources := []struct {
		name, uri string
		tags      []string
	}{
		{"norwegian-wood", "magnet:?xt=nw", []string{"rock", "60s", "beatles", "folk-rock"}},
		{"yesterday", "magnet:?xt=yd", []string{"rock", "60s", "beatles", "ballad"}},
		{"paranoid-android", "magnet:?xt=pa", []string{"rock", "90s", "radiohead"}},
		{"karma-police", "magnet:?xt=kp", []string{"rock", "90s", "radiohead", "ballad"}},
		{"take-five", "magnet:?xt=t5", []string{"jazz", "instrumental", "50s"}},
	}
	for _, r := range resources {
		if err := alice.InsertResource(ctx, r.name, r.uri, r.tags); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("published %-18s tags=%v\n", r.name, r.tags)
	}

	// Collaborative tagging: another user refines an existing resource.
	bob := sys.Peer(9)
	// Per-operation options: bound this tag to 100ms whatever happens.
	if err := bob.Tag(ctx, "take-five", "brubeck", dharma.WithTimeout(100*time.Millisecond)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("bob tagged take-five with 'brubeck'")

	// One search step: what relates to "rock"? (2 overlay lookups)
	related, res, err := bob.SearchStep(ctx, "rock")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsearch step on 'rock': %d related tags, %d resources\n", len(related), len(res))
	for i, w := range related {
		if i == 5 {
			break
		}
		fmt.Printf("  sim(rock, %s) = %d\n", w.Name, w.Weight)
	}

	// Faceted navigation: refine until few resources remain.
	nav, err := bob.Navigate(ctx, "rock", dharma.First, dharma.NavOptions{MinResources: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnavigation path: %v (%s)\n", nav.Path, nav.Reason)
	fmt.Printf("resources satisfying the conjunction: %v\n", nav.FinalResources)

	// Resolve a result to its URI (block type 4).
	if len(nav.FinalResources) > 0 {
		uri, err := bob.ResolveURI(ctx, nav.FinalResources[0])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("resolved %s -> %s\n", nav.FinalResources[0], uri)
	}
	fmt.Printf("\nbob's total block operations (overlay lookups): %d\n", bob.Lookups())
}
