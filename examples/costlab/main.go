// Costlab reproduces Table I live: it runs the same tagging workload
// through a naive engine and an approximated one, counting actual block
// operations (the paper's "overlay lookups"), and sweeps the connection
// parameter k to show where the approximation pays off.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"dharma"
	"dharma/internal/dataset"
)

func main() {
	annotations := flag.Int("annotations", 2000, "tagging operations to replay")
	seed := flag.Int64("seed", 5, "workload seed")
	flag.Parse()

	d := dataset.Generate(dataset.Tiny(*seed))
	schedule := d.Shuffled(*seed)
	if len(schedule) > *annotations {
		schedule = schedule[:*annotations]
	}

	ctx := context.Background()
	replay := func(mode dharma.Mode, k int) (lookups int64, maxTagCost int64) {
		eng, store, err := dharma.NewLocalEngine(dharma.Config{Mode: mode, K: k, Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		inserted := map[string]bool{}
		for _, a := range schedule {
			if !inserted[a.Resource] {
				if err := eng.InsertResource(ctx, a.Resource, ""); err != nil {
					log.Fatal(err)
				}
				inserted[a.Resource] = true
			}
			before := store.Lookups()
			if err := eng.Tag(ctx, a.Resource, a.Tag); err != nil {
				log.Fatal(err)
			}
			if c := store.Lookups() - before; c > maxTagCost {
				maxTagCost = c
			}
		}
		return store.Lookups(), maxTagCost
	}

	fmt.Printf("replaying %d tagging operations (Table I live)\n\n", len(schedule))
	naive, naiveMax := replay(dharma.Naive, 1)
	fmt.Printf("%-16s %12s %18s %16s\n", "mode", "lookups", "lookups/operation", "worst tag cost")
	fmt.Printf("%-16s %12d %18.2f %16d\n", "naive", naive,
		float64(naive)/float64(len(schedule)), naiveMax)

	for _, k := range []int{1, 5, 10, 25} {
		approx, approxMax := replay(dharma.Approximated, k)
		fmt.Printf("%-16s %12d %18.2f %16d   (bound 4+k = %d)\n",
			fmt.Sprintf("approximated k=%d", k), approx,
			float64(approx)/float64(len(schedule)), approxMax, 4+k)
		if approxMax > int64(4+k) {
			log.Fatalf("approximated worst tag cost %d exceeded the 4+k bound", approxMax)
		}
	}
	fmt.Println("\nnaive tag cost scales with |Tags(r)| (unbounded); approximated is capped at 4+k.")
	fmt.Println("(insert costs 2+2m in both modes and is included in the totals)")
}
