// Command dharma-node runs a DHARMA participant over real UDP: a
// storage node that serves the overlay, or a short-lived client that
// inserts, tags, searches and resolves through a bootstrap node.
//
// Run a first node:
//
//	dharma-node serve -listen 127.0.0.1:9000
//
// Join more (any running node works as bootstrap):
//
//	dharma-node serve -listen 127.0.0.1:9001 -bootstrap 127.0.0.1:9000
//
// Use the index:
//
//	dharma-node insert  -bootstrap 127.0.0.1:9000 -r song -uri magnet:x -tags rock,60s
//	dharma-node tag     -bootstrap 127.0.0.1:9000 -r song -t beatles
//	dharma-node search  -bootstrap 127.0.0.1:9000 -t rock
//	dharma-node resolve -bootstrap 127.0.0.1:9000 -r song
//
// A serving node exposes a live ops endpoint when -debug-addr is set:
// Prometheus metrics under /metrics, a JSON stats snapshot under
// /debug/stats, recent lookup traces under /debug/traces, and the
// standard pprof profiles under /debug/pprof/.
package main

import (
	"context"
	"crypto/ed25519"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"dharma/internal/admission"
	"dharma/internal/core"
	"dharma/internal/dht"
	"dharma/internal/kademlia"
	"dharma/internal/kadid"
	"dharma/internal/likir"
	"dharma/internal/obs"
	"dharma/internal/persist"
	"dharma/internal/session"
	"dharma/internal/wire"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// Ctrl-C (or SIGTERM) cancels this context; every operation below
	// runs under it, so an interrupt aborts in-flight overlay RPCs
	// instead of waiting out their retry timers.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "serve":
		err = serve(ctx, args)
	case "insert", "tag", "search", "resolve":
		err = client(ctx, cmd, args)
	case "ca":
		err = caCmd(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dharma-node:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  dharma-node serve   -listen host:port [-bootstrap host:port] [-k n] [-alpha n]
                      [-data-dir path] [-fsync group|each|none]
                      [-queue-depth n] [-peer-rate r] [-debug-addr host:port]
                      [-trace-slow d] [-trace-sample n] [-log-level l]
                      [-identity file -ca file [-revocations file] [-require-auth]]
  dharma-node insert  -bootstrap host:port -r name -uri uri [-tags a,b,c] [-timeout d]
  dharma-node tag     -bootstrap host:port -r name -t tag [-timeout d]
  dharma-node search  -bootstrap host:port -t tag [-top n] [-timeout d]
  dharma-node resolve -bootstrap host:port -r name [-timeout d]
  (clients accept -identity/-ca/-revocations too, for secured overlays)
  dharma-node ca init   -dir path [-validity d]
  dharma-node ca issue  -dir path -name name -out file
  dharma-node ca revoke -dir path (-id hexid | -identity file)`)
}

// newLogger builds the process logger from the -log-level flag value.
func newLogger(level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "", "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})), nil
}

// traceHook logs captured lookup traces through logger: slow ops at
// WARN (these are the "why was this navigate slow" evidence), sampled
// captures at DEBUG.
func traceHook(logger *slog.Logger) func(*kademlia.LookupTrace) {
	return func(tr *kademlia.LookupTrace) {
		lvl := slog.LevelDebug
		if tr.Slow {
			lvl = slog.LevelWarn
		}
		logger.Log(context.Background(), lvl, "lookup trace",
			"trace-id", fmt.Sprintf("%016x", tr.TraceID),
			"target", tr.Target.Short(),
			"value", tr.Value,
			"wall", tr.Wall,
			"rounds", tr.Rounds,
			"tried", tr.Tried,
			"busy", tr.Busy,
			"found", tr.Found,
			"slow", tr.Slow,
			"spans", len(tr.Spans))
	}
}

// nodeOptions bundles what startNode needs beyond addresses.
type nodeOptions struct {
	dataDir     string
	popts       persist.Options
	adm         admission.Config
	k, alpha    int
	traceSlow   time.Duration
	traceSample int
	logger      *slog.Logger
	// metrics, when non-nil, instruments node and transport before the
	// bootstrap dials out, so even the first handshake lands in the
	// histograms.
	metrics *obs.Registry
	// Security layer (all-empty = open overlay).
	identityPath string
	caPath       string
	revPath      string
	requireAuth  bool
	chaosDelay   time.Duration
}

// nodeSec is the security state of one running node: the loaded
// identity, CA key, live revocation set, and session cache. nil on an
// open overlay — every method is nil-receiver safe.
type nodeSec struct {
	ident    *likir.Identity
	caPub    ed25519.PublicKey
	revSet   *likir.RevocationSet
	revPath  string
	sessions *session.Manager
}

// signer returns the identity URI entries are signed with (nil = open
// overlay, unsigned).
func (s *nodeSec) signer() *likir.Identity {
	if s == nil {
		return nil
	}
	return s.ident
}

// refresh re-reads the revocation bundle and evicts sessions of newly
// revoked peers. Best-effort: a transient read failure keeps the
// previous set (fail-open on the file, never on the signature).
func (s *nodeSec) refresh(logger *slog.Logger) {
	if s == nil || s.revSet == nil || s.revPath == "" {
		return
	}
	bundle, err := os.ReadFile(s.revPath)
	if err != nil {
		logger.Warn("revocation refresh: read failed", "path", s.revPath, "err", err)
		return
	}
	if err := s.revSet.Refresh(s.caPub, bundle); err != nil {
		logger.Warn("revocation refresh: bad bundle", "path", s.revPath, "err", err)
		return
	}
	if n := s.sessions.DropRevoked(); n > 0 {
		logger.Info("revocation refresh dropped live sessions",
			"dropped", n, "revoked", s.revSet.Len())
	}
}

// loadSec loads the security material named by o, nil when o names
// none.
func loadSec(o nodeOptions) (*nodeSec, error) {
	if o.identityPath == "" && o.caPath == "" {
		return nil, nil
	}
	if o.identityPath == "" || o.caPath == "" {
		return nil, errors.New("-identity and -ca must be set together")
	}
	ident, err := likir.LoadIdentity(o.identityPath)
	if err != nil {
		return nil, err
	}
	caPub, err := likir.LoadPublicKey(o.caPath)
	if err != nil {
		return nil, err
	}
	if err := likir.VerifyCredential(caPub, &ident.Credential, nil); err != nil {
		return nil, fmt.Errorf("identity %s not issued by CA %s: %w", o.identityPath, o.caPath, err)
	}
	s := &nodeSec{ident: ident, caPub: caPub, revPath: o.revPath}
	scfg := session.Config{Identity: ident, CAPub: caPub}
	if o.revPath != "" {
		bundle, err := os.ReadFile(o.revPath)
		if err != nil {
			return nil, err
		}
		if s.revSet, err = likir.NewRevocationSet(caPub, bundle); err != nil {
			return nil, fmt.Errorf("%s: %w", o.revPath, err)
		}
		scfg.Revoked = s.revSet.Contains
	}
	if s.sessions, err = session.NewManager(scfg); err != nil {
		return nil, err
	}
	return s, nil
}

// startNode binds a UDP node and optionally joins through bootstrap.
// With a data directory the node is durable: its identifier is loaded
// from (or minted into) the directory so a restart re-enters the
// overlay as the same member, and its block store recovers from the
// write-ahead log before serving. With -identity/-ca the node runs the
// Likir layer: authenticated sessions on the wire, credential-vetted
// mutations in the handler, and the credential's node ID as its
// overlay identifier.
func startNode(ctx context.Context, listen, bootstrap string, o nodeOptions) (*kademlia.Node, *nodeSec, error) {
	sec, err := loadSec(o)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	cfg := kademlia.Config{
		K: o.k, Alpha: o.alpha,
		TraceSlow: o.traceSlow, TraceSample: o.traceSample,
		OnTrace:    traceHook(o.logger),
		ChaosDelay: o.chaosDelay,
	}
	id := kadid.Random(rng)
	if sec != nil {
		cfg.Identity, cfg.CAPub = sec.ident, sec.caPub
		if sec.revSet != nil {
			cfg.Revoked = sec.revSet.Contains
		}
		id = sec.ident.NodeID
	}
	if o.dataDir != "" {
		// A credential already pins the overlay ID; otherwise the stored
		// IDENTITY file does.
		if sec == nil {
			if id, err = persist.LoadOrCreateIdentity(o.dataDir, id); err != nil {
				return nil, nil, err
			}
		}
		store, stats, err := kademlia.OpenDurableStore(o.dataDir, o.popts)
		if err != nil {
			return nil, nil, err
		}
		cfg.Store = store
		o.logger.Info(fmt.Sprintf("recovered %d blocks", store.Len()),
			"data-dir", o.dataDir, "recovery", stats.String())
	}
	node := kademlia.NewNode(id, cfg)
	var sessions *session.Manager
	if sec != nil {
		sessions = sec.sessions
	}
	tr, err := wire.ListenUDPOptions(listen, node, wire.UDPOptions{
		Admission:   o.adm,
		Sessions:    sessions,
		RequireAuth: o.requireAuth,
	})
	if err != nil {
		return nil, nil, err
	}
	node.Attach(tr)
	if o.metrics != nil {
		node.Instrument(o.metrics)
		tr.Instrument(o.metrics)
	}
	if bootstrap != "" {
		seed, err := node.Discover(ctx, bootstrap)
		if err != nil {
			node.Shutdown() //nolint:errcheck // boot failed; nothing to flush
			return nil, nil, fmt.Errorf("discover %s: %w", bootstrap, err)
		}
		if err := node.Bootstrap(ctx, []wire.Contact{seed}); err != nil {
			node.Shutdown() //nolint:errcheck // boot failed; nothing to flush
			return nil, nil, err
		}
	}
	return node, sec, nil
}

// parseSyncMode maps the -fsync flag onto a persist.SyncMode.
func parseSyncMode(s string) (persist.SyncMode, error) {
	switch s {
	case "group":
		return persist.SyncGroup, nil
	case "each":
		return persist.SyncEach, nil
	case "none":
		return persist.SyncNone, nil
	default:
		return 0, fmt.Errorf("unknown -fsync mode %q (want group, each or none)", s)
	}
}

// nodeStats is the /debug/stats JSON snapshot of a serving node — the
// same admission-aware accounting Peer.Stats reports, plus transport
// traffic.
type nodeStats struct {
	Node         string `json:"node"`
	Addr         string `json:"addr"`
	Contacts     int    `json:"contacts"`
	Blocks       int    `json:"blocks"`
	RPCServed    int64  `json:"rpc_served"`
	Lookups      int64  `json:"lookups"`
	Admitted     int64  `json:"admitted"`
	BusyRejected int64  `json:"busy_rejected"`
	InFlight     int64  `json:"in_flight"`
	BusyServed   int64  `json:"busy_served"`
}

func serve(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:9000", "UDP address to bind")
	bootstrap := fs.String("bootstrap", "", "address of an existing node (empty = first node)")
	k := fs.Int("k", 20, "bucket size / replication factor")
	alpha := fs.Int("alpha", 3, "lookup parallelism")
	maintain := fs.Duration("maintain", 10*time.Minute,
		"interval between maintenance rounds (anti-entropy + bucket refresh); 0 disables")
	dataDir := fs.String("data-dir", "",
		"directory for durable storage (WAL + snapshots + identity); restart resumes identity and blocks")
	fsync := fs.String("fsync", "group",
		"durability policy with -data-dir: group (one fsync per commit window), each (fsync per append), none (survives kill, not power loss)")
	queueDepth := fs.Int("queue-depth", admission.DefaultQueueDepth,
		"concurrent request handlers admitted before answering BUSY (negative = unlimited)")
	peerRate := fs.Float64("peer-rate", 0,
		"admitted requests/sec per source peer before answering BUSY (0 = unlimited)")
	debugAddr := fs.String("debug-addr", "",
		"HTTP address for the ops endpoint (/metrics, /debug/stats, /debug/traces, /debug/pprof); empty disables")
	traceSlow := fs.Duration("trace-slow", 0,
		"capture and log every lookup slower than this (0 = default 250ms, negative = disabled)")
	traceSample := fs.Int("trace-sample", 0,
		"capture 1 in n lookups regardless of speed (0 = default 1024, negative = disabled)")
	logLevel := fs.String("log-level", "info", "log verbosity: debug, info, warn or error")
	identity := fs.String("identity", "", "Likir identity file issued by `dharma-node ca issue` (with -ca enables authenticated sessions and signed mutations)")
	ca := fs.String("ca", "", "CA public key file (ca.pub)")
	revocations := fs.String("revocations", "", "signed revocation bundle (revocations.bin); re-read every maintenance tick")
	requireAuth := fs.Bool("require-auth", false, "reject plain (session-less) requests with UNAUTHORIZED")
	chaosDelay := fs.Duration("chaos-delay", 0, "artificially delay every inbound RPC handler (deadline-shed testing)")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	logger, err := newLogger(*logLevel)
	if err != nil {
		return err
	}
	var popts persist.Options
	if popts.Sync, err = parseSyncMode(*fsync); err != nil {
		return err
	}
	// The registry exists even without -debug-addr: instruments are a
	// few KB of atomics, and a SIGQUIT'd process dump with live counters
	// beats a dead flag. The WAL metrics ride the same registry.
	reg := obs.NewRegistry()
	popts.Metrics = reg

	node, sec, err := startNode(ctx, *listen, *bootstrap, nodeOptions{
		dataDir: *dataDir, popts: popts,
		adm: admission.Config{QueueDepth: *queueDepth, PerPeerRate: *peerRate},
		k:   *k, alpha: *alpha,
		traceSlow: *traceSlow, traceSample: *traceSample,
		logger: logger, metrics: reg,
		identityPath: *identity, caPath: *ca, revPath: *revocations,
		requireAuth: *requireAuth, chaosDelay: *chaosDelay,
	})
	if err != nil {
		return err
	}
	if sec != nil {
		logger.Info("Likir layer active",
			"identity", sec.ident.Name, "node-id", sec.ident.NodeID.Short(),
			"require-auth", *requireAuth, "revocations", *revocations)
	}
	// startNode already instrumented node and transport on reg (before
	// the bootstrap dials, so the first handshake is in the histograms).
	udp, _ := node.Transport().(*wire.UDPTransport)
	logger.Info(fmt.Sprintf("node %s serving", node.Self().ID.Short()),
		"addr", node.Self().Addr, "contacts", node.Table().Len())

	var debugSrv *http.Server
	if *debugAddr != "" {
		statsFn := func() any {
			st := nodeStats{
				Node:      node.Self().ID.Short(),
				Addr:      node.Self().Addr,
				Contacts:  node.Table().Len(),
				Blocks:    node.LocalStore().Len(),
				RPCServed: node.RPCServed(),
				Lookups:   node.Lookups(),
			}
			if udp != nil {
				adm := udp.AdmissionStats()
				st.Admitted = adm.Admitted
				st.BusyRejected = adm.Rejected()
				st.InFlight = adm.InFlight
				st.BusyServed = udp.BusyServed()
			}
			return st
		}
		tracesFn := func() any { return node.RecentTraces() }
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			node.Shutdown() //nolint:errcheck // boot failed; nothing to flush
			return fmt.Errorf("debug listen: %w", err)
		}
		debugSrv = &http.Server{Handler: obs.Handler(reg, statsFn, tracesFn)}
		go func() {
			if serr := debugSrv.Serve(ln); serr != nil && !errors.Is(serr, http.ErrServerClosed) {
				logger.Error("debug endpoint failed", "err", serr)
			}
		}()
		logger.Info("ops endpoint serving", "debug-addr", ln.Addr().String())
	}

	if *maintain > 0 {
		go func() {
			ticker := time.NewTicker(*maintain)
			defer ticker.Stop()
			seed := time.Now().UnixNano()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					// The serve context bounds the maintenance RPCs too:
					// Ctrl-C mid-round aborts the sweep rather than letting
					// it finish behind the shutdown. Each tick is one
					// anti-entropy round: per-block timers pick which blocks
					// to sync, digests prove agreement before any data
					// moves, and just-written blocks sit a round out.
					// Revocations first: a freshly revoked peer must not be
					// pulled from (or pushed to) in the round that follows.
					sec.refresh(logger)
					r := node.AntiEntropyOnce(ctx, 0)
					for _, b := range node.Table().NonEmptyBuckets() {
						seed++
						node.RefreshBucket(ctx, b, seed)
					}
					ae := node.AntiEntropy()
					logger.Info("maintenance: anti-entropy",
						"synced", r.Synced,
						"suppressed", r.Suppressed,
						"skipped", r.Skipped,
						"acks", r.Acks,
						"matches", ae.DigestMatches,
						"delta-entries", ae.DeltaEntries,
						"full-blocks", ae.FullBlocks,
						"bytes-out", ae.BytesSent,
						"contacts", node.Table().Len())
				}
			}
		}()
	}

	<-ctx.Done()
	if debugSrv != nil {
		debugSrv.Close() //nolint:errcheck // process is exiting
	}
	// Clean stop: flush and close the durable store (no-op in-memory).
	// A SIGKILL skips this path entirely — that is what the WAL's
	// torn-tail recovery is for.
	if err := node.Shutdown(); err != nil {
		logger.Error("shutdown failed", "err", err)
	}
	logger.Info("stopping",
		"rpc-served", node.RPCServed(), "blocks", node.LocalStore().Len())
	return nil
}

func client(ctx context.Context, cmd string, args []string) error {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	bootstrap := fs.String("bootstrap", "127.0.0.1:9000", "address of a running node")
	r := fs.String("r", "", "resource name")
	t := fs.String("t", "", "tag")
	uri := fs.String("uri", "", "resource URI")
	tags := fs.String("tags", "", "comma-separated tag list")
	top := fs.Int("top", 10, "entries to display")
	mode := fs.String("mode", "approx", "maintenance mode: naive or approx")
	k := fs.Int("k", 5, "connection parameter (approx mode)")
	timeout := fs.Duration("timeout", 0,
		"overall deadline for the operation, bootstrap included (0 = none); on expiry in-flight RPCs are aborted and the command exits nonzero")
	logLevel := fs.String("log-level", "warn", "log verbosity: debug, info, warn or error")
	identity := fs.String("identity", "", "Likir identity file (with -ca: authenticated sessions, signed writes)")
	ca := fs.String("ca", "", "CA public key file (ca.pub)")
	revocations := fs.String("revocations", "", "signed revocation bundle (revocations.bin)")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	logger, err := newLogger(*logLevel)
	if err != nil {
		return err
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	node, sec, err := startNode(ctx, "127.0.0.1:0", *bootstrap, nodeOptions{
		k: 20, alpha: 3, logger: logger,
		identityPath: *identity, caPath: *ca, revPath: *revocations,
	})
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("deadline exceeded reaching bootstrap %s: %w", *bootstrap, err)
		}
		return err
	}
	defer node.Shutdown() //nolint:errcheck // short-lived client
	engMode := core.Approximated
	if *mode == "naive" {
		engMode = core.Naive
	}
	eng, err := core.NewEngine(dht.NewOverlay(node, sec.signer()), core.Config{
		Mode: engMode, K: *k, Seed: time.Now().UnixNano(),
	})
	if err != nil {
		return err
	}

	switch cmd {
	case "insert":
		if *r == "" || *uri == "" {
			return fmt.Errorf("insert needs -r and -uri")
		}
		var tagList []string
		if *tags != "" {
			tagList = strings.Split(*tags, ",")
		}
		if err := eng.InsertResource(ctx, *r, *uri, tagList...); err != nil {
			return err
		}
		fmt.Printf("inserted %s with %d tags\n", *r, len(tagList))

	case "tag":
		if *r == "" || *t == "" {
			return fmt.Errorf("tag needs -r and -t")
		}
		if err := eng.Tag(ctx, *r, *t); err != nil {
			return err
		}
		fmt.Printf("tagged %s with %s\n", *r, *t)

	case "search":
		if *t == "" {
			return fmt.Errorf("search needs -t")
		}
		related, resources, err := eng.SearchStep(ctx, *t)
		if err != nil {
			return err
		}
		fmt.Printf("related tags of %q:\n", *t)
		for i, w := range related {
			if i == *top {
				break
			}
			fmt.Printf("  %-24s sim=%d\n", w.Name, w.Weight)
		}
		fmt.Printf("resources labeled %q:\n", *t)
		for i, w := range resources {
			if i == *top {
				break
			}
			fmt.Printf("  %-24s u=%d\n", w.Name, w.Weight)
		}

	case "resolve":
		if *r == "" {
			return fmt.Errorf("resolve needs -r")
		}
		uri, err := eng.ResolveURI(ctx, *r)
		if err != nil {
			return err
		}
		fmt.Printf("%s -> %s\n", *r, uri)
	}
	return nil
}

// caCmd implements the certification-authority toolbox: `ca init`
// mints the authority key pair, `ca issue` hands a node operator an
// identity file, `ca revoke` adds a node to the signed revocation
// bundle the fleet re-reads on its maintenance ticks.
func caCmd(args []string) error {
	if len(args) < 1 {
		return errors.New("ca needs a subcommand: init, issue or revoke")
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "init":
		fs := flag.NewFlagSet("ca init", flag.ExitOnError)
		dir := fs.String("dir", "", "CA state directory to create")
		validity := fs.Duration("validity", 30*24*time.Hour, "credential validity window")
		fs.Parse(rest) //nolint:errcheck // ExitOnError
		if *dir == "" {
			return errors.New("ca init needs -dir")
		}
		// Refuse to overwrite: a new key silently invalidates every
		// credential the old one issued.
		if _, err := os.Stat(filepath.Join(*dir, "ca.key")); err == nil {
			return fmt.Errorf("%s already holds a CA key", *dir)
		}
		a, err := likir.NewAuthority(nil, *validity, nil)
		if err != nil {
			return err
		}
		if err := a.SaveCA(*dir); err != nil {
			return err
		}
		fmt.Printf("CA initialised in %s\n  public key: %s\n  revocation bundle: %s\n",
			*dir, likir.PublicKeyPath(*dir), likir.BundlePath(*dir))

	case "issue":
		fs := flag.NewFlagSet("ca issue", flag.ExitOnError)
		dir := fs.String("dir", "", "CA state directory")
		name := fs.String("name", "", "human-readable identity name")
		out := fs.String("out", "", "identity file to write (credential + private key, 0600)")
		fs.Parse(rest) //nolint:errcheck // ExitOnError
		if *dir == "" || *name == "" || *out == "" {
			return errors.New("ca issue needs -dir, -name and -out")
		}
		a, err := likir.LoadCA(*dir)
		if err != nil {
			return err
		}
		id, err := a.Issue(nil, *name)
		if err != nil {
			return err
		}
		if err := id.Save(*out); err != nil {
			return err
		}
		fmt.Printf("issued %q -> %s\n  node id: %s\n", *name, *out, id.NodeID)

	case "revoke":
		fs := flag.NewFlagSet("ca revoke", flag.ExitOnError)
		dir := fs.String("dir", "", "CA state directory")
		idStr := fs.String("id", "", "node identifier to revoke (hex)")
		idFile := fs.String("identity", "", "identity file whose node to revoke")
		fs.Parse(rest) //nolint:errcheck // ExitOnError
		if *dir == "" || (*idStr == "") == (*idFile == "") {
			return errors.New("ca revoke needs -dir and exactly one of -id or -identity")
		}
		var target kadid.ID
		if *idFile != "" {
			ident, err := likir.LoadIdentity(*idFile)
			if err != nil {
				return err
			}
			target = ident.NodeID
		} else {
			var err error
			if target, err = kadid.Parse(*idStr); err != nil {
				return err
			}
		}
		a, err := likir.LoadCA(*dir)
		if err != nil {
			return err
		}
		a.Revoke(target)
		// SaveCA rewrites the ledger and re-signs the bundle; running
		// nodes pick the new bundle up on their next maintenance tick.
		if err := a.SaveCA(*dir); err != nil {
			return err
		}
		fmt.Printf("revoked %s\n  updated bundle: %s\n", target, likir.BundlePath(*dir))

	default:
		return fmt.Errorf("unknown ca subcommand %q (want init, issue or revoke)", sub)
	}
	return nil
}
