package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"dharma/internal/loadgen"
)

// runScale is the `dharma-bench scale` mode: sweep overlay size and
// report how lookup hop count and latency grow with n.
//
//	dharma-bench scale                       # 100, 1k, 10k nodes
//	dharma-bench scale -sizes 100,1000 -lookups 200
//	dharma-bench scale -out .                # also writes BENCH_scale.json
func runScale(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("scale", flag.ExitOnError)
	sizes := fs.String("sizes", "100,1000,10000", "comma-separated node counts to sweep")
	lookups := fs.Int("lookups", 1000, "lookups measured per node count")
	seed := fs.Int64("seed", 1, "run seed")
	k := fs.Int("k", 0, "bucket size / replication factor (0: kademlia default)")
	alpha := fs.Int("alpha", 0, "lookup parallelism (0: kademlia default)")
	latMin := fs.Duration("lat-min", 50*time.Microsecond, "simulated per-exchange latency floor")
	latMax := fs.Duration("lat-max", 200*time.Microsecond, "simulated per-exchange latency ceiling")
	out := fs.String("out", "", "directory for BENCH_scale.json (omit to skip)")
	if err := fs.Parse(args); err != nil {
		fail(err)
	}

	var ns []int
	for _, s := range strings.Split(*sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fail(fmt.Errorf("bad -sizes entry %q", s))
		}
		ns = append(ns, n)
	}

	rep, err := loadgen.RunScale(ctx, loadgen.ScaleConfig{
		Sizes:      ns,
		Lookups:    *lookups,
		Seed:       *seed,
		K:          *k,
		Alpha:      *alpha,
		LatencyMin: *latMin,
		LatencyMax: *latMax,
	})
	if errors.Is(err, context.Canceled) {
		diag.Warn("interrupted")
		os.Exit(130)
	}
	if err != nil {
		fail(err)
	}
	fmt.Print(rep)

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fail(err)
		}
		path := filepath.Join(*out, "BENCH_scale.json")
		f, err := os.Create(path)
		if err != nil {
			fail(err)
		}
		if err := rep.WriteJSON(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("(wrote %s)\n", path)
	}
}
