package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"dharma/internal/kademlia"
	"dharma/internal/obs"
)

// The scrape subcommand reads a serving node's ops endpoint
// (dharma-node serve -debug-addr) and reports what the node is doing:
// per-kind RPC latency percentiles, transport and admission traffic,
// the stats snapshot, and the hop-by-hop timeline of a recent lookup
// trace. With -assert-rpc / -assert-trace it doubles as the check the
// metrics smoke script runs against a live fleet.
func runScrape(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("scrape", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9600", "ops endpoint address (dharma-node serve -debug-addr)")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request HTTP timeout")
	assertRPC := fs.Bool("assert-rpc", false,
		"exit nonzero unless the node reports served RPCs in its latency histograms")
	assertTrace := fs.Bool("assert-trace", false,
		"exit nonzero unless the node retains at least one lookup trace with spans")
	assertMin := fs.String("assert-min", "",
		`comma-separated name=min pairs; exit nonzero unless each scraped metric, summed across its label sets (histograms by count), reaches its minimum — e.g. -assert-min dharma_session_cache_size=1,dharma_rpc_auth_rejected_count=1`)
	logLevel := fs.String("log-level", "info", "log verbosity: debug, info, warn or error")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	logger := benchLogger(*logLevel)

	base := "http://" + *addr
	client := &http.Client{Timeout: *timeout}

	body, err := fetch(ctx, client, base+"/metrics")
	if err != nil {
		logger.Error("scrape /metrics failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	metrics, err := obs.ParsePrometheus(strings.NewReader(string(body)))
	if err != nil {
		logger.Error("parse /metrics failed", "err", err)
		os.Exit(1)
	}
	printMetrics(metrics)

	stats, err := fetch(ctx, client, base+"/debug/stats")
	if err != nil {
		logger.Error("scrape /debug/stats failed", "err", err)
		os.Exit(1)
	}
	fmt.Printf("\nstats: %s\n", strings.TrimSpace(string(stats)))

	tbody, err := fetch(ctx, client, base+"/debug/traces")
	if err != nil {
		logger.Error("scrape /debug/traces failed", "err", err)
		os.Exit(1)
	}
	var traces []*kademlia.LookupTrace
	if err := json.Unmarshal(tbody, &traces); err != nil {
		logger.Error("decode /debug/traces failed", "err", err)
		os.Exit(1)
	}
	printTraces(traces)

	// pprof must answer too: profiles are part of the ops surface.
	if _, err := fetch(ctx, client, base+"/debug/pprof/cmdline"); err != nil {
		logger.Error("scrape /debug/pprof/cmdline failed", "err", err)
		os.Exit(1)
	}
	fmt.Println("\npprof: live")

	if *assertRPC {
		var served uint64
		for key, m := range metrics {
			if m.Name == "dharma_rpc_serve_seconds" && m.Type == "histogram" {
				logger.Debug("rpc histogram", "series", key, "count", m.Count)
				served += m.Count
			}
		}
		if served == 0 {
			logger.Error("assert-rpc failed: no served RPCs in dharma_rpc_serve_seconds")
			os.Exit(1)
		}
		fmt.Printf("assert-rpc ok: %d RPCs in serve histograms\n", served)
	}
	if *assertTrace {
		spans := 0
		for _, tr := range traces {
			spans += len(tr.Spans)
		}
		if len(traces) == 0 || spans == 0 {
			logger.Error("assert-trace failed: no retained lookup trace with spans",
				"traces", len(traces), "spans", spans)
			os.Exit(1)
		}
		fmt.Printf("assert-trace ok: %d traces, %d spans retained\n", len(traces), spans)
	}
	for _, spec := range strings.Split(*assertMin, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		name, minStr, ok := strings.Cut(spec, "=")
		if !ok {
			logger.Error("bad -assert-min spec (want name=min)", "spec", spec)
			os.Exit(2)
		}
		floor, err := strconv.ParseFloat(minStr, 64)
		if err != nil {
			logger.Error("bad -assert-min minimum", "spec", spec, "err", err)
			os.Exit(2)
		}
		var total float64
		seen := false
		for _, m := range metrics {
			if m.Name != name {
				continue
			}
			seen = true
			if m.Type == "histogram" {
				total += float64(m.Count)
			} else {
				total += m.Value
			}
		}
		if !seen || total < floor {
			logger.Error("assert-min failed", "metric", name, "want-at-least", floor,
				"got", total, "present", seen)
			os.Exit(1)
		}
		fmt.Printf("assert-min ok: %s = %g (>= %g)\n", name, total, floor)
	}
}

func fetch(ctx context.Context, client *http.Client, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	return body, nil
}

// printMetrics summarizes the scraped registry: histograms as
// count/p50/p99, nonzero scalars as-is, sorted by series name.
func printMetrics(metrics map[string]*obs.ScrapedMetric) {
	keys := make([]string, 0, len(metrics))
	for k := range metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println("metrics:")
	for _, k := range keys {
		m := metrics[k]
		switch {
		case m.Type == "histogram":
			if m.Count == 0 {
				continue
			}
			fmt.Printf("  %-52s count=%-8d p50=%-12g p99=%g\n",
				k, m.Count, m.Quantile(50), m.Quantile(99))
		case m.Value != 0:
			fmt.Printf("  %-52s %g\n", k, m.Value)
		}
	}
}

// printTraces renders the newest retained lookup trace hop by hop —
// the "why was this navigate slow" answer, read off a live node.
func printTraces(traces []*kademlia.LookupTrace) {
	fmt.Printf("\ntraces retained: %d\n", len(traces))
	if len(traces) == 0 {
		return
	}
	tr := traces[0] // newest first
	why := "sampled"
	if tr.Slow {
		why = "slow"
	}
	fmt.Printf("newest trace %016x (%s): target=%s value=%t wall=%s rounds=%d tried=%d busy=%d found=%t\n",
		tr.TraceID, why, tr.Target.Short(), tr.Value, tr.Wall, tr.Rounds, tr.Tried, tr.Busy, tr.Found)
	for i, sp := range tr.Spans {
		fmt.Printf("  hop %-3d round=%-2d peer=%-22s kind=%-10s start=%-12s rtt=%-12s verdict=%s\n",
			i+1, sp.Round, sp.Peer.Addr, sp.Kind, sp.Start, sp.RTT, sp.Verdict)
	}
}

// benchLogger builds the bench's diagnostic logger; reports go to
// stdout as before, diagnostics go through slog on stderr.
func benchLogger(level string) *slog.Logger {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		lvl = slog.LevelInfo
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
}
