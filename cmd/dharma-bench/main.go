// Command dharma-bench regenerates every table and figure of the
// paper's evaluation section (plus the ablations listed in DESIGN.md)
// on a synthetic workload, printing each artifact with the paper's own
// numbers alongside and optionally writing the figures' series as CSV.
//
//	dharma-bench -scale small            # quick pass (~seconds)
//	dharma-bench -scale lastfm -out csv  # full benchmark preset + CSVs
//
// The load subcommand instead drives a live deployment with parallel
// workload mixes and reports throughput and latency percentiles:
//
//	dharma-bench load                                  # all mixes, overlay target
//	dharma-bench load -mix tag-heavy -workers 16 -ops 20000
//	dharma-bench load -target local -out csv           # in-process store + CSVs
//
// The overload subcommand offers load at multiples of the deployment's
// measured capacity and verifies overload protection: goodput must stay
// flat (excess load rejected early with BUSY) and goroutines must
// return to baseline:
//
//	dharma-bench overload -mult 1,2,4                  # in-process simnet overlay
//	dharma-bench overload -bootstrap 127.0.0.1:9000    # against a real UDP fleet
//
// The scale subcommand sweeps overlay size (100, 1k, 10k nodes by
// default) and reports hop-count and latency distributions per lookup,
// optionally writing BENCH_scale.json:
//
//	dharma-bench scale -out .
//
// The antientropy subcommand measures maintenance bytes per round on
// the hot-tag regime — legacy full-block pushes vs the digest-first
// summary sweep vs steady-state timer-driven rounds — and doubles as a
// regression gate plus a crash-wave durability check:
//
//	dharma-bench antientropy -assert-ratio 10
//
// The scrape subcommand reads a serving node's live ops endpoint
// (dharma-node serve -debug-addr) and reports RPC latency percentiles,
// admission accounting, and the hop-by-hop timeline of a recent lookup
// trace; -assert-rpc/-assert-trace make it a fleet health check:
//
//	dharma-bench scrape -addr 127.0.0.1:9600 -assert-rpc -assert-trace
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"dharma"
	"dharma/internal/chaos"
	"dharma/internal/core"
	"dharma/internal/dataset"
	"dharma/internal/dht"
	"dharma/internal/exp"
	"dharma/internal/kademlia"
	"dharma/internal/kadid"
	"dharma/internal/loadgen"
)

type csvWriter interface{ WriteCSV(w io.Writer) error }

func main() {
	// Ctrl-C cancels the run: the load harness aborts its in-flight
	// operations and the bench exits promptly instead of draining the
	// full op budget.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if len(os.Args) > 1 && os.Args[1] == "load" {
		runLoad(ctx, os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "overload" {
		runOverload(ctx, os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "scale" {
		runScale(ctx, os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "antientropy" {
		runAntiEntropy(ctx, os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "scrape" {
		runScrape(ctx, os.Args[2:])
		return
	}
	// The experiment path below is batch work that does not poll ctx;
	// NotifyContext swallowed the signal's default-kill behavior, so
	// restore it: first Ctrl-C exits promptly.
	go func() {
		<-ctx.Done()
		diag.Warn("interrupted")
		os.Exit(130)
	}()
	scale := flag.String("scale", "small", "workload scale: tiny, small or lastfm")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "", "directory for figure CSVs (omit to skip)")
	flag.Parse()

	var cfg dataset.Config
	seeds, randomRuns := 0, 0
	switch *scale {
	case "tiny":
		cfg, seeds, randomRuns = dataset.Tiny(*seed), 10, 20
	case "small":
		cfg, seeds, randomRuns = dataset.Small(*seed), 50, 50
	case "lastfm":
		cfg, seeds, randomRuns = dataset.LastFMScaled(*seed), 100, 100
	default:
		fmt.Fprintf(os.Stderr, "dharma-bench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fail(err)
		}
	}

	w := exp.NewWorkbench(cfg)
	start := time.Now()
	section := func(name string) {
		fmt.Printf("\n===== %s (elapsed %.1fs) =====\n", name, time.Since(start).Seconds())
	}

	section("Table I")
	t1, err := exp.RunTable1(5)
	if err != nil {
		fail(err)
	}
	fmt.Print(t1)
	if !t1.Verified() {
		fail(fmt.Errorf("Table I verification failed"))
	}

	section("Table II")
	fmt.Print(exp.RunTable2(w))

	section("Figure 5")
	f5 := exp.RunFigure5(w)
	fmt.Print(f5)
	writeCSV(*out, "figure5.csv", f5)

	section("Table III")
	fmt.Print(exp.RunTable3(w, []int{1, 5, 10}))

	section("Figure 6")
	f6 := exp.RunFigure6(w, []int{1, 100})
	fmt.Print(f6)
	writeCSV(*out, "figure6.csv", f6)

	section("Figure 8")
	f8 := exp.RunFigure8(w, []int{1, 25, 500})
	fmt.Print(f8)
	writeCSV(*out, "figure8.csv", f8)

	section("Table IV")
	t4 := exp.RunTable4(w, 1, seeds, randomRuns)
	fmt.Print(t4)

	section("Figure 7")
	f7 := exp.RunFigure7(t4)
	fmt.Print(f7)
	writeCSV(*out, "figure7.csv", f7)

	section("Ablation A1 (approximations in isolation)")
	fmt.Print(exp.RunAblationB(w, 1))

	section("Ablation A2 (k sweep)")
	fmt.Print(exp.RunAblationK(w, []int{1, 2, 5, 10, 25, 100}))

	section("Ablation A3 (hotspots)")
	hot, err := exp.RunHotspots(w, 32, 2000, 5)
	if err != nil {
		fail(err)
	}
	fmt.Print(hot)

	section("Ablation A4 (filter cap)")
	fmt.Print(exp.RunFilterCap(w, []int{10, 50, 100, 500}, min(seeds, 20), min(randomRuns, 20)))

	section("Extension A5 (trend emergence — §VI future work)")
	trend := exp.RunTrendEmergence(w, 1, cfg.Annotations/100, 12, 100)
	fmt.Print(trend)
	writeCSV(*out, "trend.csv", trend)

	section("Extension A6 (availability under churn)")
	churn, err := exp.RunChurn(w, 20, 1200, 6, 3, 2, 4)
	if err != nil {
		fail(err)
	}
	fmt.Print(churn)

	section("Extension A7 (client cache vs hotspots)")
	cache, err := exp.RunCacheEffect(w, 24, 1500, 5, 2000)
	if err != nil {
		fail(err)
	}
	fmt.Print(cache)

	fmt.Printf("\nall artifacts regenerated in %.1fs\n", time.Since(start).Seconds())
}

func writeCSV(dir, name string, r csvWriter) {
	if dir == "" {
		return
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	if err := r.WriteCSV(f); err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("(wrote %s)\n", path)
}

// runLoad is the `dharma-bench load` mode: parallel load generation
// against a live System (or an in-process store), one report per
// workload mix.
func runLoad(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	mixes := fs.String("mix", "all", `workload mixes, comma-separated ("insert-heavy,tag-heavy,...") or "all"`)
	target := fs.String("target", "overlay", "what to drive: overlay (live Kademlia cluster) or local (in-process store)")
	nodes := fs.Int("nodes", 16, "overlay size (overlay target)")
	workers := fs.Int("workers", 8, "concurrent load workers")
	ops := fs.Int("ops", 5000, "measured operations per mix")
	seed := fs.Int64("seed", 1, "run seed")
	k := fs.Int("k", 5, "connection parameter of Approximation A")
	naive := fs.Bool("naive", false, "drive the naive (unapproximated) engine")
	signed := fs.Bool("signed", false, "enable the Likir identity layer (overlay target): CA-issued credentials on every RPC, Ed25519-signed URI entries, replicas vet every mutation — measures the secured write path's overhead")
	drop := fs.Float64("drop", 0, "inject network loss in [0,1) (overlay target): failed ops count and the run exits nonzero")
	churnSpec := fs.String("churn", "", `membership churn during the measured phase: "rate,kill-fraction" (overlay target), e.g. -churn 20,0.25; enables read-repair + background maintenance, verifies every acknowledged write after a repair pass, and exits nonzero on lost writes`)
	resources := fs.Int("resources", 128, "seeded resource universe")
	tags := fs.Int("tags", 48, "tag vocabulary size (Zipf-popular)")
	prefill := fs.Int("prefill", 0, "pre-fill the hottest tags' blocks with this many arcs each (hot-tag regime)")
	dataDir := fs.String("data-dir", "", "give overlay nodes durable stores (WAL + snapshots) under this directory; churn revivals then recover from disk")
	noFsync := fs.Bool("no-fsync", false, "with -data-dir: skip fsync (survives process kill, not power loss)")
	batch := fs.Duration("batch", 0, "coalesce appends to the same key within this window (0 disables batching)")
	vocab := fs.String("vocab", "", "draw vocabulary from a generated dataset: tiny, small or lastfm (default synthetic names)")
	out := fs.String("out", "", "directory for per-mix CSVs (omit to skip)")
	if err := fs.Parse(args); err != nil {
		fail(err)
	}

	mode := dharma.Approximated
	if *naive {
		mode = dharma.Naive
	}

	var ds *dataset.Dataset
	switch *vocab {
	case "":
	case "tiny":
		ds = dataset.Generate(dataset.Tiny(*seed))
	case "small":
		ds = dataset.Generate(dataset.Small(*seed))
	case "lastfm":
		ds = dataset.Generate(dataset.LastFMScaled(*seed))
	default:
		fail(fmt.Errorf("unknown vocab %q", *vocab))
	}

	var churnCfg *loadgen.ChurnConfig
	if *churnSpec != "" {
		cc, err := loadgen.ParseChurnSpec(*churnSpec)
		if err != nil {
			fail(err)
		}
		if *target != "overlay" {
			fail(fmt.Errorf("-churn needs a live overlay (target %q has no membership)", *target))
		}
		churnCfg = &cc
	}
	if *dataDir != "" && *target != "overlay" {
		fail(fmt.Errorf("-data-dir needs a live overlay (target %q has no node stores)", *target))
	}
	if *signed && *target != "overlay" {
		fail(fmt.Errorf("-signed needs a live overlay (target %q has no identity layer)", *target))
	}

	var engines []*core.Engine
	var batchers []*dht.Batching
	var sys *dharma.System
	var ledger *chaos.Ledger
	churnClients := 0
	wrap := func(s dht.Store) dht.Store {
		if *batch <= 0 {
			return s
		}
		b := dht.NewBatching(s, *batch)
		batchers = append(batchers, b)
		return b
	}
	switch *target {
	case "overlay":
		// Under churn, writes need a 2-replica quorum: an acknowledged
		// write then survives the crash of either acker even before any
		// repair round spreads the block further.
		writeQuorum := 0
		if churnCfg != nil {
			writeQuorum = 2
		}
		var err error
		sys, err = dharma.NewSystem(dharma.Config{
			Nodes: *nodes, Mode: mode, K: *k, Seed: *seed,
			DropRate: *drop, ReadRepair: churnCfg != nil, WriteQuorum: writeQuorum,
			DataDir: *dataDir, NoFsync: *noFsync, WithIdentity: *signed,
		})
		if err != nil {
			fail(err)
		}
		if *dataDir != "" {
			defer sys.Shutdown()
			fmt.Printf("durable: per-node WAL under %s (fsync %v)\n", *dataDir, !*noFsync)
		}
		if churnCfg != nil {
			// Clients (the nodes workers drive) are protected from
			// churn; the rest of the overlay is fair game. Every
			// client's store records acknowledged writes in one shared
			// ledger, which the post-mix repair pass is checked against.
			churnClients = *nodes / 4
			if churnClients < 2 {
				churnClients = 2
			}
			if *nodes < churnClients+4 {
				fail(fmt.Errorf("-churn needs at least %d nodes (%d clients + 4 churnable), got %d", churnClients+4, churnClients, *nodes))
			}
			ledger = chaos.NewLedger()
			for i := 0; i < churnClients; i++ {
				p := sys.Peer(i)
				st := chaos.NewRecording(wrap(dht.NewOverlay(p.Node, p.Node.Identity())), ledger)
				e, err := core.NewEngine(st, core.Config{Mode: mode, K: *k, Seed: *seed + int64(i)})
				if err != nil {
					fail(err)
				}
				engines = append(engines, e)
			}
		} else if *batch > 0 {
			// Rebuild each peer's engine over a coalescing store so
			// same-key appends within the window collapse into one
			// overlay store operation.
			for i, p := range sys.Peers() {
				e, err := core.NewEngine(wrap(dht.NewOverlay(p.Node, p.Node.Identity())), core.Config{Mode: mode, K: *k, Seed: *seed + int64(i)})
				if err != nil {
					fail(err)
				}
				engines = append(engines, e)
			}
		} else {
			for _, p := range sys.Peers() {
				engines = append(engines, p.Engine())
			}
		}
		fmt.Printf("target: %d-node overlay, %s mode, k=%d, drop=%.2f, batch=%s, signed=%v\n", sys.Size(), mode, *k, *drop, *batch, *signed)
	case "local":
		store := wrap(dht.NewLocal())
		for i := 0; i < *workers; i++ {
			e, err := core.NewEngine(store, core.Config{Mode: mode, K: *k, Seed: *seed + int64(i)})
			if err != nil {
				fail(err)
			}
			engines = append(engines, e)
		}
		fmt.Printf("target: in-process store, %s mode, k=%d, batch=%s\n", mode, *k, *batch)
	default:
		fail(fmt.Errorf("unknown target %q (want overlay or local)", *target))
	}

	var selected []loadgen.Mix
	if *mixes == "all" {
		selected = loadgen.Mixes()
	} else {
		for _, name := range strings.Split(*mixes, ",") {
			m, err := loadgen.MixByName(strings.TrimSpace(name))
			if err != nil {
				fail(err)
			}
			selected = append(selected, m)
		}
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fail(err)
		}
	}

	// Under churn, every live node runs background maintenance for the
	// whole session (republish + bucket refresh + dead-contact sweeps).
	var maintSet *kademlia.MaintainerSet
	var maintCancel context.CancelFunc
	if churnCfg != nil {
		var maintCtx context.Context
		maintCtx, maintCancel = context.WithCancel(ctx)
		defer maintCancel()
		maintSet = sys.Cluster().StartMaintenance(maintCtx, kademlia.MaintainerConfig{
			Interval: 500 * time.Millisecond,
			Seed:     *seed,
		})
		fmt.Printf("churn: rate=%.1f events/sec, kill-fraction=%.2f, %d protected clients, read-repair + maintenance on\n",
			churnCfg.Rate, churnCfg.KillFraction, churnClients)
	}

	// Lost obligations are deduplicated by (block, field): the ledger is
	// cumulative across mixes, so a write lost permanently in mix 1
	// resurfaces in every later mix's check and must not be re-counted.
	type lostKey struct {
		key   kadid.ID
		field string
	}
	lost := make(map[lostKey]bool)
	totalErrs := 0
	var prevEnq, prevCoal, prevFlushed int64
	for i, mix := range selected {
		lcfg := loadgen.Config{
			Mix:        mix,
			Workers:    *workers,
			Ops:        *ops,
			Seed:       *seed + int64(i),
			Resources:  *resources,
			Tags:       *tags,
			HotPrefill: *prefill,
			Dataset:    ds,
		}

		// The churner starts once seeding is done (AfterSeed) and stops
		// when the mix's measured phase ends.
		var churner *loadgen.Churner
		var churnCancel context.CancelFunc
		churnDone := make(chan struct{})
		if churnCfg != nil {
			cc := *churnCfg
			cc.Protected = churnClients
			cc.Seed = *seed + int64(i)*101
			// Joiners run what the existing members run (replication,
			// alpha, read-repair, write quorum).
			cc.Node = sys.Peer(0).Node.Config()
			var err error
			churner, err = loadgen.NewChurner(sys.Cluster(), cc)
			if err != nil {
				fail(err)
			}
			var churnCtx context.Context
			churnCtx, churnCancel = context.WithCancel(ctx)
			defer churnCancel()
			lcfg.AfterSeed = func() {
				go func() {
					defer close(churnDone)
					churner.Run(churnCtx)
				}()
			}
		}

		rep, err := loadgen.Run(ctx, lcfg, engines)
		if errors.Is(err, context.Canceled) {
			diag.Warn("interrupted; in-flight operations aborted")
			os.Exit(130)
		}
		if err != nil {
			fail(err)
		}
		fmt.Println()
		fmt.Print(rep)
		if churner != nil {
			churnCancel()
			<-churnDone
			fmt.Printf("  churn: %s (%d still dead at mix end)\n", churner.Stats(), churner.DeadCount())
			violations := chaos.RepairAndCheck(ctx, sys.Cluster(), ledger, 2)
			if len(violations) > 0 {
				fmt.Printf("  LOST WRITES: %d of %d acknowledged (block,field) obligations\n", len(violations), ledger.Fields())
				for vi, v := range violations {
					if vi >= 10 {
						fmt.Printf("    ... and %d more\n", len(violations)-vi)
						break
					}
					fmt.Printf("    %s\n", v)
				}
			} else {
				fmt.Printf("  invariant: all %d acknowledged (block,field) obligations readable after repair\n", ledger.Fields())
			}
			for _, v := range violations {
				lost[lostKey{key: v.Key, field: v.Field}] = true
			}
			churner.ReviveAll(ctx) // next mix starts against a whole overlay
		}
		if rep.FirstError != nil {
			fmt.Printf("  first error: %v\n", rep.FirstError)
		}
		if len(batchers) > 0 {
			// The batchers live across mixes; print per-mix deltas.
			var enq, coal, flushed int64
			for _, b := range batchers {
				enq += b.Enqueued()
				coal += b.Coalesced()
				flushed += b.Flushes()
			}
			fmt.Printf("  batching: %d logical appends, %d coalesced away, %d physical flushes\n",
				enq-prevEnq, coal-prevCoal, flushed-prevFlushed)
			prevEnq, prevCoal, prevFlushed = enq, coal, flushed
		}
		totalErrs += rep.Errors
		writeCSV(*out, "load-"+mix.Name+".csv", rep)
	}
	if maintSet != nil {
		maintCancel()
		maintSet.Wait()
		ms := maintSet.Stats()
		fmt.Printf("\nmaintenance: %d rounds, %d dead contacts evicted, %d buckets refreshed, %d blocks republished\n",
			ms.Rounds, ms.Evicted, ms.Refreshed, ms.Blocks)
	}
	if churnCfg != nil {
		// Churn mode verifies durability, not per-op success: transient
		// failures while nodes are down are expected, lost acknowledged
		// writes are not.
		if len(lost) > 0 {
			fail(fmt.Errorf("load: %d acknowledged writes lost under churn", len(lost)))
		}
		if totalErrs > 0 {
			fmt.Printf("note: %d operations failed transiently under churn (tolerated; every acknowledged write survived)\n", totalErrs)
		}
		return
	}
	if totalErrs > 0 {
		fail(fmt.Errorf("load: %d operations failed", totalErrs))
	}
}

// diag is the bench's diagnostic logger. Reports and tables stay on
// stdout (they are the product); diagnostics are structured on stderr.
var diag = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo}))

func fail(err error) {
	diag.Error("fatal", "err", err)
	os.Exit(1)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
