// Command dharma-bench regenerates every table and figure of the
// paper's evaluation section (plus the ablations listed in DESIGN.md)
// on a synthetic workload, printing each artifact with the paper's own
// numbers alongside and optionally writing the figures' series as CSV.
//
//	dharma-bench -scale small            # quick pass (~seconds)
//	dharma-bench -scale lastfm -out csv  # full benchmark preset + CSVs
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"dharma/internal/dataset"
	"dharma/internal/exp"
)

type csvWriter interface{ WriteCSV(w io.Writer) error }

func main() {
	scale := flag.String("scale", "small", "workload scale: tiny, small or lastfm")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "", "directory for figure CSVs (omit to skip)")
	flag.Parse()

	var cfg dataset.Config
	seeds, randomRuns := 0, 0
	switch *scale {
	case "tiny":
		cfg, seeds, randomRuns = dataset.Tiny(*seed), 10, 20
	case "small":
		cfg, seeds, randomRuns = dataset.Small(*seed), 50, 50
	case "lastfm":
		cfg, seeds, randomRuns = dataset.LastFMScaled(*seed), 100, 100
	default:
		fmt.Fprintf(os.Stderr, "dharma-bench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fail(err)
		}
	}

	w := exp.NewWorkbench(cfg)
	start := time.Now()
	section := func(name string) {
		fmt.Printf("\n===== %s (elapsed %.1fs) =====\n", name, time.Since(start).Seconds())
	}

	section("Table I")
	t1, err := exp.RunTable1(5)
	if err != nil {
		fail(err)
	}
	fmt.Print(t1)
	if !t1.Verified() {
		fail(fmt.Errorf("Table I verification failed"))
	}

	section("Table II")
	fmt.Print(exp.RunTable2(w))

	section("Figure 5")
	f5 := exp.RunFigure5(w)
	fmt.Print(f5)
	writeCSV(*out, "figure5.csv", f5)

	section("Table III")
	fmt.Print(exp.RunTable3(w, []int{1, 5, 10}))

	section("Figure 6")
	f6 := exp.RunFigure6(w, []int{1, 100})
	fmt.Print(f6)
	writeCSV(*out, "figure6.csv", f6)

	section("Figure 8")
	f8 := exp.RunFigure8(w, []int{1, 25, 500})
	fmt.Print(f8)
	writeCSV(*out, "figure8.csv", f8)

	section("Table IV")
	t4 := exp.RunTable4(w, 1, seeds, randomRuns)
	fmt.Print(t4)

	section("Figure 7")
	f7 := exp.RunFigure7(t4)
	fmt.Print(f7)
	writeCSV(*out, "figure7.csv", f7)

	section("Ablation A1 (approximations in isolation)")
	fmt.Print(exp.RunAblationB(w, 1))

	section("Ablation A2 (k sweep)")
	fmt.Print(exp.RunAblationK(w, []int{1, 2, 5, 10, 25, 100}))

	section("Ablation A3 (hotspots)")
	hot, err := exp.RunHotspots(w, 32, 2000, 5)
	if err != nil {
		fail(err)
	}
	fmt.Print(hot)

	section("Ablation A4 (filter cap)")
	fmt.Print(exp.RunFilterCap(w, []int{10, 50, 100, 500}, min(seeds, 20), min(randomRuns, 20)))

	section("Extension A5 (trend emergence — §VI future work)")
	trend := exp.RunTrendEmergence(w, 1, cfg.Annotations/100, 12, 100)
	fmt.Print(trend)
	writeCSV(*out, "trend.csv", trend)

	section("Extension A6 (availability under churn)")
	churn, err := exp.RunChurn(w, 20, 1200, 6, 3, 2, 4)
	if err != nil {
		fail(err)
	}
	fmt.Print(churn)

	section("Extension A7 (client cache vs hotspots)")
	cache, err := exp.RunCacheEffect(w, 24, 1500, 5, 2000)
	if err != nil {
		fail(err)
	}
	fmt.Print(cache)

	fmt.Printf("\nall artifacts regenerated in %.1fs\n", time.Since(start).Seconds())
}

func writeCSV(dir, name string, r csvWriter) {
	if dir == "" {
		return
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	if err := r.WriteCSV(f); err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("(wrote %s)\n", path)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dharma-bench:", err)
	os.Exit(1)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
