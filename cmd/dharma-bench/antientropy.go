package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"dharma/internal/chaos"
	"dharma/internal/dht"
	"dharma/internal/kademlia"
	"dharma/internal/kadid"
	"dharma/internal/wire"
)

// runAntiEntropy is the `dharma-bench antientropy` mode: seed the
// paper's hot-tag regime (tens of thousands of entries concentrated in
// a few hot blocks), then measure maintenance bytes per round under
// three protocols on the same converged overlay:
//
//   - full-push sweep: the legacy RepublishFullOnce — every holder
//     pushes every block, whole, to its k closest nodes;
//   - summary sweep: RepublishOnce — same coverage, but replicas
//     exchange digests first and ship data only on mismatch;
//   - steady state: AntiEntropyOnce rounds with a trickle of writes —
//     per-block timers suppress recently written blocks and skip
//     settled ones, so most blocks cost nothing at all.
//
// -assert-ratio makes the run a regression gate: it exits nonzero
// unless full-push/summary bytes exceed the given ratio. The run ends
// with a 25% crash wave healed purely by anti-entropy, checked against
// a chaos ledger for zero acknowledged-write loss.
//
//	dharma-bench antientropy                         # defaults: 32 nodes, 50k entries
//	dharma-bench antientropy -assert-ratio 10        # CI regression gate
func runAntiEntropy(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("antientropy", flag.ExitOnError)
	nodes := fs.Int("nodes", 32, "overlay size")
	blocks := fs.Int("blocks", 64, "hot blocks (tag vocabulary)")
	entries := fs.Int("entries", 50000, "total entries across the hot blocks (Zipf-skewed)")
	rounds := fs.Int("rounds", 4, "steady-state anti-entropy rounds to average")
	writeFrac := fs.Float64("write-frac", 0.05, "fraction of blocks written between steady-state rounds")
	crashFrac := fs.Float64("crash", 0.25, "fraction of nodes crashed for the durability check (0 skips)")
	seed := fs.Int64("seed", 1, "run seed")
	k := fs.Int("k", 8, "replication factor")
	assertRatio := fs.Float64("assert-ratio", 0, "exit nonzero unless full-push/summary bytes-per-round exceeds this ratio (0 disables)")
	if err := fs.Parse(args); err != nil {
		fail(err)
	}

	cl, err := kademlia.NewCluster(kademlia.ClusterConfig{
		N:    *nodes,
		Node: kademlia.Config{K: *k, Alpha: 3},
		Seed: *seed,
	})
	if err != nil {
		fail(err)
	}

	// Seed the hot-tag mix through a recording store: every acknowledged
	// write becomes a ledger obligation the final crash check verifies.
	// Block b gets a Zipf-ish share of the entry budget — the skew that
	// makes whole-block pushes expensive (the hottest blocks are the
	// widest ones).
	rng := rand.New(rand.NewSource(*seed))
	ledger := chaos.NewLedger()
	writer := chaos.NewRecording(dht.NewOverlay(cl.Nodes[0], nil), ledger)
	keys := make([]kadid.ID, *blocks)
	var weights []float64
	var wsum float64
	for b := range keys {
		keys[b] = kadid.HashString(fmt.Sprintf("hot-tag-%03d|3", b))
		w := 1.0 / float64(b+1)
		weights = append(weights, w)
		wsum += w
	}
	seeded := 0
	for b, key := range keys {
		n := int(float64(*entries) * weights[b] / wsum)
		if n < 1 {
			n = 1
		}
		if n > wire.MaxListLen {
			n = wire.MaxListLen
		}
		batch := make([]wire.Entry, n)
		for i := range batch {
			batch[i] = wire.Entry{
				Field: fmt.Sprintf("f%05d", i),
				Count: uint64(1 + rng.Intn(100)),
			}
		}
		if err := writer.Append(ctx, key, batch); err != nil {
			fail(fmt.Errorf("seed block %d: %w", b, err))
		}
		seeded += n
	}
	fmt.Printf("anti-entropy bench: %d-node overlay (k=%d), %d hot blocks, %d entries seeded (seed %d)\n",
		*nodes, *k, *blocks, seeded, *seed)

	bytesTotal := func() int64 {
		var sum int64
		for _, n := range cl.Snapshot() {
			st := n.AntiEntropy()
			sum += st.BytesSent
		}
		return sum
	}

	// Protocol 1: the legacy whole-block push, every node sweeping once.
	before := bytesTotal()
	for _, n := range cl.Snapshot() {
		n.RepublishFullOnce(ctx)
	}
	fullBytes := bytesTotal() - before

	// Protocol 2: the summary sweep on the now-converged overlay. Same
	// full coverage; agreement is proven by digests instead of re-sent.
	before = bytesTotal()
	for _, n := range cl.Snapshot() {
		n.RepublishOnce(ctx)
	}
	summaryBytes := bytesTotal() - before

	// Protocol 3: steady state. A trickle of writes lands between
	// rounds; the timers suppress just-written blocks and skip settled
	// ones, so a round's cost tracks the write rate, not the store size.
	var steadyBytes int64
	var suppressed, skipped, synced int
	for r := 0; r < *rounds; r++ {
		for i := 0; i < int(float64(*blocks)**writeFrac)+1; i++ {
			key := keys[rng.Intn(len(keys))]
			if err := writer.Append(ctx, key, []wire.Entry{
				{Field: fmt.Sprintf("f%05d", rng.Intn(50)), Count: uint64(1 + rng.Intn(5))},
			}); err != nil {
				fail(fmt.Errorf("steady-state write: %w", err))
			}
		}
		before = bytesTotal()
		for _, n := range cl.Snapshot() {
			rr := n.AntiEntropyOnce(ctx, 0)
			suppressed += rr.Suppressed
			skipped += rr.Skipped
			synced += rr.Synced
		}
		steadyBytes += bytesTotal() - before
	}
	steadyPerRound := steadyBytes / int64(*rounds)

	fmt.Printf("  full-push sweep (RepublishFullOnce): %12d bytes/round\n", fullBytes)
	fmt.Printf("  summary sweep   (RepublishOnce):     %12d bytes/round\n", summaryBytes)
	fmt.Printf("  steady state    (AntiEntropyOnce):   %12d bytes/round  (%d synced, %d suppressed, %d skipped over %d rounds)\n",
		steadyPerRound, synced, suppressed, skipped, *rounds)

	ratio := float64(fullBytes) / float64(summaryBytes)
	if summaryBytes == 0 {
		ratio = float64(fullBytes)
	}
	fmt.Printf("  ratio full/summary = %.1fx", ratio)
	if *assertRatio > 0 {
		if ratio < *assertRatio {
			fmt.Printf("  (assert >= %.1fx FAILED)\n", *assertRatio)
			fail(fmt.Errorf("antientropy: bytes/round ratio %.1fx below the asserted %.1fx — summary sync regressed", ratio, *assertRatio))
		}
		fmt.Printf("  (assert >= %.1fx ok)\n", *assertRatio)
	} else {
		fmt.Println()
	}

	// Durability under the crash wave: kill a fraction of the overlay
	// (never node 0 — it carries the reader and the seeding engine) and
	// heal with anti-entropy rounds alone, then verify the ledger.
	if *crashFrac > 0 {
		crashes := int(float64(*nodes) * *crashFrac)
		crashRng := rand.New(rand.NewSource(*seed + 1))
		for c := 0; c < crashes; c++ {
			idx := 1 + crashRng.Intn(cl.Len()-1)
			if _, err := cl.Crash(idx); err != nil {
				fail(fmt.Errorf("crash %d: %w", c, err))
			}
		}
		violations := chaos.AntiEntropyAndCheck(ctx, cl, ledger, 3, 2)
		if len(violations) > 0 {
			fmt.Printf("  LOST WRITES after %d%% crash wave: %d of %d obligations\n",
				int(*crashFrac*100), len(violations), ledger.Fields())
			for vi, v := range violations {
				if vi >= 10 {
					fmt.Printf("    ... and %d more\n", len(violations)-vi)
					break
				}
				fmt.Printf("    %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Printf("  crash wave: %d/%d nodes killed; anti-entropy healed the survivors — all %d acknowledged (block,field) obligations readable\n",
			crashes, *nodes, ledger.Fields())
	}
}
