package main

// The overload subcommand offers load at multiples of the deployment's
// measured capacity and checks the two protection invariants: goodput
// must not collapse past saturation (excess load is rejected early with
// BUSY, not queued into timeouts), and goroutines must return to
// baseline afterwards (no abandoned-handler leak).
//
//	dharma-bench overload                          # in-process simnet overlay
//	dharma-bench overload -mult 1,4,10 -queue-depth 64
//	dharma-bench overload -bootstrap 127.0.0.1:9000  # against a real UDP fleet

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"dharma"
	"dharma/internal/admission"
	"dharma/internal/core"
	"dharma/internal/dht"
	"dharma/internal/kademlia"
	"dharma/internal/kadid"
	"dharma/internal/loadgen"
	"dharma/internal/wire"
)

func runOverload(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("overload", flag.ExitOnError)
	nodes := fs.Int("nodes", 16, "overlay size (simnet mode)")
	multStr := fs.String("mult", "1,2,4", "offered-load multipliers relative to measured capacity, comma-separated")
	duration := fs.Duration("duration", 2*time.Second, "measured duration per multiplier")
	calibrate := fs.Duration("calibrate", time.Second, "closed-loop capacity calibration duration")
	workers := fs.Int("workers", 8, "closed-loop calibration workers")
	opTimeout := fs.Duration("op-timeout", 250*time.Millisecond, "per-operation deadline during open-loop phases")
	queueDepth := fs.Int("queue-depth", admission.DefaultQueueDepth, "per-node admission queue depth (simnet mode; negative = unlimited, shows the unprotected collapse)")
	peerRate := fs.Float64("peer-rate", 0, "per-peer admitted requests/sec per node (simnet mode; 0 = unlimited)")
	k := fs.Int("k", 5, "connection parameter of Approximation A")
	seed := fs.Int64("seed", 1, "run seed")
	resources := fs.Int("resources", 64, "seeded resource universe")
	tags := fs.Int("tags", 32, "tag vocabulary size")
	tolerance := fs.Float64("tolerance", 0.2, "allowed goodput drop relative to the first multiplier (0.2 = 20%)")
	gorBudget := fs.Int("goroutine-budget", 200, "allowed goroutine growth over baseline after the run quiesces")
	bootstrapAddr := fs.String("bootstrap", "", "drive a real UDP fleet through this bootstrap node instead of an in-process simnet overlay")
	clients := fs.Int("clients", 4, "UDP client nodes generating load (-bootstrap mode)")
	out := fs.String("out", "", "CSV path for the phase table (omit to skip)")
	if err := fs.Parse(args); err != nil {
		fail(err)
	}

	var mults []float64
	for _, s := range strings.Split(*multStr, ",") {
		m, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || m <= 0 {
			fail(fmt.Errorf("bad -mult entry %q", s))
		}
		mults = append(mults, m)
	}

	cfg := loadgen.OverloadConfig{
		Multipliers:       mults,
		Duration:          *duration,
		CalibrateDuration: *calibrate,
		Workers:           *workers,
		OpTimeout:         *opTimeout,
		Resources:         *resources,
		Tags:              *tags,
		Seed:              *seed,
	}

	var engines []*core.Engine
	var serverBusy func() int64
	var sys *dharma.System
	if *bootstrapAddr != "" {
		// Real fleet: each client is its own UDP node bootstrapped into
		// the running overlay; BUSY rejections are observed client-side
		// (the servers' own counters live in their processes).
		rng := rand.New(rand.NewSource(*seed))
		for i := 0; i < *clients; i++ {
			node := kademlia.NewNode(kadid.Random(rng), kademlia.Config{K: 20, Alpha: 3})
			tr, err := wire.ListenUDP("127.0.0.1:0", node, 0)
			if err != nil {
				fail(err)
			}
			node.Attach(tr)
			seedContact, err := node.Discover(ctx, *bootstrapAddr)
			if err != nil {
				fail(fmt.Errorf("discover %s: %w", *bootstrapAddr, err))
			}
			if err := node.Bootstrap(ctx, []wire.Contact{seedContact}); err != nil {
				fail(err)
			}
			defer node.Shutdown() //nolint:errcheck // short-lived client
			e, err := core.NewEngine(dht.NewOverlay(node, nil), core.Config{
				Mode: core.Approximated, K: *k, Seed: *seed + int64(i),
			})
			if err != nil {
				fail(err)
			}
			engines = append(engines, e)
		}
		fmt.Printf("target: UDP fleet via %s, %d clients, k=%d\n", *bootstrapAddr, *clients, *k)
	} else {
		var err error
		sys, err = dharma.NewSystem(dharma.Config{
			Nodes: *nodes, Mode: dharma.Approximated, K: *k, Seed: *seed,
			QueueDepth: *queueDepth, PerPeerRate: *peerRate,
		})
		if err != nil {
			fail(err)
		}
		for _, p := range sys.Peers() {
			engines = append(engines, p.Engine())
		}
		serverBusy = func() int64 { return sys.Network().Counters().Busy }
		fmt.Printf("target: %d-node simnet overlay, k=%d, queue-depth=%d, peer-rate=%.0f\n",
			*nodes, *k, *queueDepth, *peerRate)
	}

	rep, err := loadgen.RunOverload(ctx, cfg, engines, serverBusy)
	if errors.Is(err, context.Canceled) {
		diag.Warn("interrupted")
		os.Exit(130)
	}
	if err != nil {
		fail(err)
	}
	fmt.Print(rep)
	if sys != nil {
		var rejected int64
		for _, p := range sys.Peers() {
			rejected += p.Stats().BusyRejected
		}
		fmt.Printf("admission: %d requests rejected busy across the fleet\n", rejected)
	}
	if *out != "" {
		if err := rep.WriteCSV(*out); err != nil {
			fail(err)
		}
		fmt.Printf("(wrote %s)\n", *out)
	}

	if problems := rep.Check(*tolerance, *gorBudget); len(problems) > 0 {
		for _, p := range problems {
			diag.Error("overload check failed", "problem", p)
		}
		os.Exit(1)
	}
	fmt.Printf("overload check passed: goodput within %.0f%% of baseline at every multiplier, goroutines back within +%d of baseline\n",
		*tolerance*100, *gorBudget)
}
