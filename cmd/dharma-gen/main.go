// Command dharma-gen generates and inspects the tagging workloads the
// evaluation runs on: it prints the §V-A structural statistics
// (Table II, Figure 5) for a chosen scale, dumps the raw ⟨user, item,
// tag⟩ triples as CSV, loads such dumps back (so a real crawl can be
// analysed the same way), and snapshots the built folksonomy graph for
// fast reloading.
package main

import (
	"flag"
	"fmt"
	"os"

	"dharma/internal/dataset"
	"dharma/internal/exp"
)

func main() {
	scale := flag.String("scale", "small", "workload scale: tiny, small or lastfm")
	seed := flag.Int64("seed", 1, "generator seed")
	csvPath := flag.String("csv", "", "write the annotation triples to this file")
	loadPath := flag.String("load", "", "load annotations from a CSV instead of generating")
	snapPath := flag.String("snapshot", "", "write the built folksonomy graph (gob) to this file")
	flag.Parse()

	var w *exp.Workbench
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			fail(err)
		}
		d, err := dataset.ReadCSV(f)
		f.Close() //nolint:errcheck // read-only
		if err != nil {
			fail(err)
		}
		fmt.Printf("loaded %d annotations from %s\n\n", len(d.Annotations), *loadPath)
		w = exp.NewWorkbenchFromDataset(d, *seed)
	} else {
		var cfg dataset.Config
		switch *scale {
		case "tiny":
			cfg = dataset.Tiny(*seed)
		case "small":
			cfg = dataset.Small(*seed)
		case "lastfm":
			cfg = dataset.LastFMScaled(*seed)
		default:
			fmt.Fprintf(os.Stderr, "dharma-gen: unknown scale %q\n", *scale)
			os.Exit(2)
		}
		w = exp.NewWorkbench(cfg)
	}

	fmt.Print(exp.RunTable2(w))
	fmt.Println()
	fmt.Print(exp.RunFigure5(w))

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fail(err)
		}
		if err := w.Dataset().WriteCSV(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("\nwrote %d annotations to %s\n", len(w.Dataset().Annotations), *csvPath)
	}
	if *snapPath != "" {
		f, err := os.Create(*snapPath)
		if err != nil {
			fail(err)
		}
		if err := w.Graph().Save(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("\nsnapshotted folksonomy graph to %s\n", *snapPath)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dharma-gen:", err)
	os.Exit(1)
}
