// Package kadid provides 160-bit Kademlia identifiers and the XOR
// distance metric they are compared under.
//
// Both overlay nodes and stored blocks live in the same identifier
// space; a block is stored on the nodes whose identifiers are closest
// (in XOR distance) to the block key. Keys are derived with SHA-1 as in
// the original Kademlia paper.
package kadid

import (
	"crypto/sha1"
	"encoding/hex"
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
)

// Size is the identifier length in bytes (160 bits, as in Kademlia).
const Size = 20

// Bits is the identifier length in bits.
const Bits = Size * 8

// ID is a 160-bit identifier in the Kademlia key space. The zero value
// is the all-zeroes identifier and is valid.
type ID [Size]byte

// FromBytes builds an ID from exactly Size bytes.
func FromBytes(b []byte) (ID, error) {
	var id ID
	if len(b) != Size {
		return id, fmt.Errorf("kadid: need %d bytes, got %d", Size, len(b))
	}
	copy(id[:], b)
	return id, nil
}

// HashString derives an ID from an arbitrary string with SHA-1. This is
// how block names are mapped onto the key space.
func HashString(s string) ID {
	return ID(sha1.Sum([]byte(s)))
}

// HashBytes derives an ID from arbitrary bytes with SHA-1.
func HashBytes(b []byte) ID {
	return ID(sha1.Sum(b))
}

// Random returns a uniformly random ID drawn from rng.
func Random(rng *rand.Rand) ID {
	var id ID
	for i := 0; i < Size; i += 8 {
		v := rng.Uint64()
		for j := 0; j < 8 && i+j < Size; j++ {
			id[i+j] = byte(v >> (8 * j))
		}
	}
	return id
}

// RandomInBucket returns a random ID whose XOR distance from ref has its
// highest set bit at position bucket (counting from the most significant
// bit, 0-based). Such an ID falls into routing-table bucket `bucket` of a
// node with identifier ref. It is used for bucket refreshes.
func RandomInBucket(ref ID, bucket int, rng *rand.Rand) ID {
	if bucket < 0 || bucket >= Bits {
		panic(fmt.Sprintf("kadid: bucket %d out of range", bucket))
	}
	id := Random(rng)
	// Force the first `bucket` bits to equal ref's, flip bit `bucket`.
	for i := 0; i < bucket; i++ {
		setBit(&id, i, bit(ref, i))
	}
	setBit(&id, bucket, !bit(ref, bucket))
	return id
}

func bit(id ID, i int) bool {
	return id[i/8]&(0x80>>(i%8)) != 0
}

func setBit(id *ID, i int, v bool) {
	mask := byte(0x80 >> (i % 8))
	if v {
		id[i/8] |= mask
	} else {
		id[i/8] &^= mask
	}
}

// Distance returns the XOR distance between a and b.
func Distance(a, b ID) ID {
	var d ID
	for i := range a {
		d[i] = a[i] ^ b[i]
	}
	return d
}

// Cmp compares a and b as 160-bit big-endian unsigned integers.
// It returns -1 if a < b, 0 if a == b, +1 if a > b.
func Cmp(a, b ID) int {
	for i := range a {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// Closer reports whether a is strictly closer to target than b is,
// under the XOR metric.
func Closer(a, b, target ID) bool {
	for i := range target {
		da := a[i] ^ target[i]
		db := b[i] ^ target[i]
		if da != db {
			return da < db
		}
	}
	return false
}

// CommonPrefixLen returns the number of leading bits a and b share.
// For a == b it returns Bits.
func CommonPrefixLen(a, b ID) int {
	for i := range a {
		if x := a[i] ^ b[i]; x != 0 {
			return i*8 + bits.LeadingZeros8(x)
		}
	}
	return Bits
}

// BucketIndex returns the routing-table bucket an ID at distance d from
// self belongs to: the position of the highest set bit of the XOR
// distance (0 = farthest half of the space, Bits-1 = nearest neighbours).
// It returns -1 when other == self.
func BucketIndex(self, other ID) int {
	cpl := CommonPrefixLen(self, other)
	if cpl == Bits {
		return -1
	}
	return cpl
}

// Bit reports whether bit i of the identifier is set, counting from the
// most significant bit (0-based). The routing table's expanding-ring
// walk uses the bits of a XOR distance to order buckets by proximity.
func (id ID) Bit(i int) bool {
	return bit(id, i)
}

// IsZero reports whether id is the all-zero identifier.
func (id ID) IsZero() bool {
	for _, b := range id {
		if b != 0 {
			return false
		}
	}
	return true
}

// String returns the full lowercase hex encoding of the identifier.
func (id ID) String() string {
	return hex.EncodeToString(id[:])
}

// Short returns an 8-hex-digit prefix, convenient for logs.
func (id ID) Short() string {
	return hex.EncodeToString(id[:4])
}

// Parse decodes a 40-character hex string into an ID.
func Parse(s string) (ID, error) {
	var id ID
	if len(s) != Size*2 {
		return id, errors.New("kadid: hex string must be 40 characters")
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return id, fmt.Errorf("kadid: %w", err)
	}
	copy(id[:], b)
	return id, nil
}

// SortByDistance sorts ids in place by ascending XOR distance from
// target (an insertion sort: callers pass short candidate lists).
func SortByDistance(ids []ID, target ID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && Closer(ids[j], ids[j-1], target); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
