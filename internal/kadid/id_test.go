package kadid

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestFromBytes(t *testing.T) {
	b := make([]byte, Size)
	for i := range b {
		b[i] = byte(i)
	}
	id, err := FromBytes(b)
	if err != nil {
		t.Fatalf("FromBytes: %v", err)
	}
	for i := range b {
		if id[i] != byte(i) {
			t.Fatalf("byte %d = %d, want %d", i, id[i], i)
		}
	}
	if _, err := FromBytes(b[:10]); err == nil {
		t.Fatal("FromBytes accepted short input")
	}
	if _, err := FromBytes(append(b, 0)); err == nil {
		t.Fatal("FromBytes accepted long input")
	}
}

func TestHashStringDeterministic(t *testing.T) {
	a := HashString("rock|2")
	b := HashString("rock|2")
	if a != b {
		t.Fatal("HashString not deterministic")
	}
	if a == HashString("rock|3") {
		t.Fatal("different names must map to different keys")
	}
}

func TestDistanceProperties(t *testing.T) {
	r := rng(1)
	cfg := &quick.Config{MaxCount: 500, Rand: r}

	// d(x, x) == 0
	identity := func(raw [Size]byte) bool {
		x := ID(raw)
		return Distance(x, x).IsZero()
	}
	if err := quick.Check(identity, cfg); err != nil {
		t.Errorf("identity: %v", err)
	}

	// d(x, y) == d(y, x)
	symmetry := func(a, b [Size]byte) bool {
		return Distance(ID(a), ID(b)) == Distance(ID(b), ID(a))
	}
	if err := quick.Check(symmetry, cfg); err != nil {
		t.Errorf("symmetry: %v", err)
	}

	// XOR triangle equality: d(x,z) <= d(x,y) + d(y,z) holds because
	// d(x,z) = d(x,y) XOR d(y,z) and XOR never exceeds the sum.
	triangle := func(a, b, c [Size]byte) bool {
		x, y, z := ID(a), ID(b), ID(c)
		dxz := Distance(x, z)
		dxy := Distance(x, y)
		dyz := Distance(y, z)
		// Compare big-endian integers: dxz <= dxy + dyz.
		sum, carry := addIDs(dxy, dyz)
		if carry {
			return true // sum overflowed 160 bits, trivially larger
		}
		return Cmp(dxz, sum) <= 0
	}
	if err := quick.Check(triangle, cfg); err != nil {
		t.Errorf("triangle: %v", err)
	}

	// Unidirectionality: for any x and distance d there is exactly one y
	// with d(x,y)=d, namely y = x XOR d.
	unidir := func(a, d [Size]byte) bool {
		x := ID(a)
		y := Distance(x, ID(d)) // y = x ^ d
		return Distance(x, y) == ID(d)
	}
	if err := quick.Check(unidir, cfg); err != nil {
		t.Errorf("unidirectionality: %v", err)
	}
}

// addIDs adds two IDs as 160-bit big-endian integers.
func addIDs(a, b ID) (ID, bool) {
	var out ID
	carry := 0
	for i := Size - 1; i >= 0; i-- {
		s := int(a[i]) + int(b[i]) + carry
		out[i] = byte(s)
		carry = s >> 8
	}
	return out, carry != 0
}

func TestCmp(t *testing.T) {
	var a, b ID
	if Cmp(a, b) != 0 {
		t.Fatal("equal IDs must compare 0")
	}
	b[Size-1] = 1
	if Cmp(a, b) != -1 || Cmp(b, a) != 1 {
		t.Fatal("ordering broken for low byte")
	}
	a[0] = 1
	if Cmp(a, b) != 1 {
		t.Fatal("high byte must dominate")
	}
}

func TestCloserConsistentWithDistanceCmp(t *testing.T) {
	f := func(a, b, tgt [Size]byte) bool {
		x, y, target := ID(a), ID(b), ID(tgt)
		want := Cmp(Distance(x, target), Distance(y, target)) < 0
		return Closer(x, y, target) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng(2)}); err != nil {
		t.Fatal(err)
	}
}

func TestCommonPrefixLen(t *testing.T) {
	var a, b ID
	if got := CommonPrefixLen(a, b); got != Bits {
		t.Fatalf("identical IDs: got %d, want %d", got, Bits)
	}
	b[0] = 0x80
	if got := CommonPrefixLen(a, b); got != 0 {
		t.Fatalf("first bit differs: got %d, want 0", got)
	}
	b[0] = 0x01
	if got := CommonPrefixLen(a, b); got != 7 {
		t.Fatalf("bit 7 differs: got %d, want 7", got)
	}
	b[0] = 0
	b[5] = 0x10
	if got := CommonPrefixLen(a, b); got != 43 {
		t.Fatalf("bit 43 differs: got %d, want 43", got)
	}
}

func TestBucketIndex(t *testing.T) {
	var self ID
	if got := BucketIndex(self, self); got != -1 {
		t.Fatalf("self bucket: got %d, want -1", got)
	}
	other := self
	other[Size-1] = 1 // differs only in the last bit
	if got := BucketIndex(self, other); got != Bits-1 {
		t.Fatalf("nearest bucket: got %d, want %d", got, Bits-1)
	}
	other = self
	other[0] = 0x80
	if got := BucketIndex(self, other); got != 0 {
		t.Fatalf("farthest bucket: got %d, want 0", got)
	}
}

func TestRandomInBucket(t *testing.T) {
	r := rng(3)
	ref := Random(r)
	for _, bucket := range []int{0, 1, 7, 8, 80, 158, 159} {
		id := RandomInBucket(ref, bucket, r)
		if got := BucketIndex(ref, id); got != bucket {
			t.Fatalf("bucket %d: generated ID lands in bucket %d", bucket, got)
		}
	}
}

func TestRandomInBucketPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range bucket")
		}
	}()
	RandomInBucket(ID{}, Bits, rng(4))
}

func TestParseRoundTrip(t *testing.T) {
	r := rng(5)
	for i := 0; i < 50; i++ {
		id := Random(r)
		got, err := Parse(id.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", id.String(), err)
		}
		if got != id {
			t.Fatalf("round trip mismatch: %v != %v", got, id)
		}
	}
	if _, err := Parse("zz"); err == nil {
		t.Fatal("Parse accepted a short string")
	}
	if _, err := Parse("zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz"); err == nil {
		t.Fatal("Parse accepted non-hex input")
	}
}

func TestSortByDistance(t *testing.T) {
	r := rng(6)
	target := Random(r)
	ids := make([]ID, 64)
	for i := range ids {
		ids[i] = Random(r)
	}
	SortByDistance(ids, target)
	if !sort.SliceIsSorted(ids, func(i, j int) bool {
		return Cmp(Distance(ids[i], target), Distance(ids[j], target)) < 0
	}) {
		t.Fatal("SortByDistance did not sort by XOR distance")
	}
}

func TestShortAndString(t *testing.T) {
	id := HashString("x")
	if len(id.String()) != 40 {
		t.Fatalf("String length = %d, want 40", len(id.String()))
	}
	if len(id.Short()) != 8 {
		t.Fatalf("Short length = %d, want 8", len(id.Short()))
	}
	if id.String()[:8] != id.Short() {
		t.Fatal("Short must be a prefix of String")
	}
}

func TestRandomUniform(t *testing.T) {
	// Cheap sanity check: with 2000 random IDs the mean of the first byte
	// should be near 127.5 and all-zero IDs should not appear.
	r := rng(7)
	sum := 0
	for i := 0; i < 2000; i++ {
		id := Random(r)
		if id.IsZero() {
			t.Fatal("random ID was zero")
		}
		sum += int(id[0])
	}
	mean := float64(sum) / 2000
	if mean < 110 || mean > 145 {
		t.Fatalf("first-byte mean %.1f, expected near 127.5", mean)
	}
}
