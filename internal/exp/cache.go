package exp

import (
	"context"

	"fmt"
	"math/rand"
	"strings"
	"time"

	"dharma/internal/core"
	"dharma/internal/dht"
	"dharma/internal/kademlia"
	"dharma/internal/metrics"
	"dharma/internal/simnet"
)

// CacheResult is the A7 extension experiment: how much of DHARMA's
// read traffic a small client-side LRU cache absorbs, and what it does
// to the hotspot skew. Search traffic is Zipf-skewed over the popular
// tags, matching the access pattern §V identifies as the problem.
type CacheResult struct {
	Nodes, Readers, Searches int

	PlainLookups, CachedLookups int64   // overlay reads issued by readers
	HitRate                     float64 // cache hits / reads
	PlainGini, CachedGini       float64 // request skew across storage nodes
}

// RunCacheEffect publishes a workload slice, then replays a Zipf-skewed
// stream of search steps through a set of reader peers — once against
// plain overlay stores and once with a per-reader dht.Cached wrapper —
// and compares overlay lookups and per-node request skew.
func RunCacheEffect(w *Workbench, nodes, annotations, k, searches int) (*CacheResult, error) {
	const readers = 8
	res := &CacheResult{Nodes: nodes, Readers: readers, Searches: searches}

	run := func(cached bool) (lookups int64, hitRate, gini float64, err error) {
		cl, err := kademlia.NewCluster(kademlia.ClusterConfig{
			N:    nodes,
			Node: kademlia.Config{K: 8, Alpha: 3},
			Seed: w.Seed,
		})
		if err != nil {
			return 0, 0, 0, err
		}
		pub, err := core.NewEngine(dht.NewOverlay(cl.Nodes[0], nil), core.Config{
			Mode: core.Approximated, K: k, Seed: w.Seed,
		})
		if err != nil {
			return 0, 0, 0, err
		}
		schedule := w.Schedule()
		if len(schedule) > annotations {
			schedule = schedule[:annotations]
		}
		inserted := map[string]bool{}
		tagPop := map[string]int{}
		for _, a := range schedule {
			if !inserted[a.Resource] {
				if err := pub.InsertResource(context.Background(), a.Resource, "uri:"+a.Resource); err != nil {
					return 0, 0, 0, err
				}
				inserted[a.Resource] = true
			}
			if err := pub.Tag(context.Background(), a.Resource, a.Tag); err != nil {
				return 0, 0, 0, err
			}
			tagPop[a.Tag]++
		}
		top := topTags(tagPop, 50)

		// Reader engines on distinct peers, optionally cache-fronted.
		engines := make([]*core.Engine, readers)
		stores := make([]dht.Counter, readers)
		caches := make([]*dht.Cached, readers)
		for i := 0; i < readers; i++ {
			var store dht.Store = dht.NewOverlay(cl.Nodes[1+i], nil)
			if cached {
				c := dht.NewCached(store, 128, time.Minute, nil)
				caches[i] = c
				store = c
			}
			stores[i] = store.(dht.Counter)
			engines[i], err = core.NewEngine(store, core.Config{
				Mode: core.Approximated, K: k, Seed: w.Seed + int64(i),
			})
			if err != nil {
				return 0, 0, 0, err
			}
		}

		// Snapshot per-node request counters so only the search phase
		// is measured.
		before := make(map[simnet.Addr]int64, len(cl.Nodes))
		for _, n := range cl.Nodes {
			addr := simnet.Addr(n.Self().Addr)
			before[addr] = cl.Net.Stats(addr).Received.Load()
		}

		zipf := rand.NewZipf(rand.New(rand.NewSource(w.Seed+9)), 1.3, 1, uint64(len(top)-1))
		for i := 0; i < searches; i++ {
			tag := top[zipf.Uint64()]
			if _, _, err := engines[i%readers].SearchStep(context.Background(), tag); err != nil {
				return 0, 0, 0, fmt.Errorf("search %q: %w", tag, err)
			}
		}

		var load []float64
		for _, n := range cl.Nodes {
			addr := simnet.Addr(n.Self().Addr)
			load = append(load, float64(cl.Net.Stats(addr).Received.Load()-before[addr]))
		}
		for _, s := range stores {
			lookups += s.Gets()
		}
		if cached {
			var hits, total int64
			for _, c := range caches {
				hits += c.Hits()
				total += c.Hits() + c.Misses()
			}
			if total > 0 {
				hitRate = float64(hits) / float64(total)
			}
		}
		return lookups, hitRate, metrics.Gini(load), nil
	}

	var err error
	if res.PlainLookups, _, res.PlainGini, err = run(false); err != nil {
		return nil, err
	}
	if res.CachedLookups, res.HitRate, res.CachedGini, err = run(true); err != nil {
		return nil, err
	}
	return res, nil
}

// String renders the comparison.
func (r *CacheResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension A7 — client cache vs hotspot traffic (%d Zipf searches, %d readers)\n",
		r.Searches, r.Readers)
	fmt.Fprintf(&b, "%-10s %16s %14s %12s\n", "variant", "overlay lookups", "request Gini", "hit rate")
	fmt.Fprintf(&b, "%-10s %16d %14.3f %12s\n", "plain", r.PlainLookups, r.PlainGini, "-")
	fmt.Fprintf(&b, "%-10s %16d %14.3f %12.3f\n", "cached", r.CachedLookups, r.CachedGini, r.HitRate)
	if r.PlainLookups > 0 {
		fmt.Fprintf(&b, "lookup reduction: %.1f%%\n",
			100*(1-float64(r.CachedLookups)/float64(r.PlainLookups)))
	}
	b.WriteString("(a small per-peer LRU absorbs the Zipf head, easing the popular-tag hotspots of §V)\n")
	return b.String()
}
