package exp

import (
	"context"

	"fmt"
	"sort"
	"strings"

	"dharma/internal/core"
	"dharma/internal/dht"
	"dharma/internal/kademlia"
	"dharma/internal/metrics"
	"dharma/internal/search"
	"dharma/internal/sim"
	"dharma/internal/simnet"
)

// AblationBResult isolates the two approximations (A1 in DESIGN.md):
// Approximation B alone never drops arcs (recall 1) but flattens
// weights; Approximation A alone drops arcs but keeps theoretic forward
// weights.
type AblationBResult struct {
	K int // the connection parameter used for the A-only row
	// BOnly compares {A off, B on} against the theoretic graph.
	BOnlyRecall, BOnlyTau, BOnlyTheta metrics.Summary
	// AOnly compares {A on with K, B off} against the theoretic graph.
	AOnlyRecall, AOnlyTau, AOnlyTheta metrics.Summary
}

// RunAblationB evolves the graph with each approximation disabled in
// turn.
func RunAblationB(w *Workbench, k int) *AblationBResult {
	orig := w.Graph()
	schedule := w.Schedule()

	bOnly := sim.Evolve(schedule, sim.EvolutionConfig{K: 0, ApproxB: true, Seed: w.Seed})
	bCmp := sim.Compare(orig, bOnly, sim.CompareOptions{Seed: w.Seed})

	aOnly := sim.Evolve(schedule, sim.EvolutionConfig{K: k, ApproxB: false, Seed: w.Seed})
	aCmp := sim.Compare(orig, aOnly, sim.CompareOptions{Seed: w.Seed})

	return &AblationBResult{
		K:           k,
		BOnlyRecall: metrics.Summarize(bCmp.Recall),
		BOnlyTau:    metrics.Summarize(bCmp.Tau),
		BOnlyTheta:  metrics.Summarize(bCmp.Theta),
		AOnlyRecall: metrics.Summarize(aCmp.Recall),
		AOnlyTau:    metrics.Summarize(aCmp.Tau),
		AOnlyTheta:  metrics.Summarize(aCmp.Theta),
	}
}

// String renders the ablation.
func (r *AblationBResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation A1 — approximations in isolation\n")
	fmt.Fprintf(&b, "%-24s %10s %10s %10s\n", "variant", "recall", "Ktau", "theta")
	fmt.Fprintf(&b, "%-24s %10.4f %10.4f %10.4f\n", "B only (A disabled)",
		r.BOnlyRecall.Mean, r.BOnlyTau.Mean, r.BOnlyTheta.Mean)
	fmt.Fprintf(&b, "%-24s %10.4f %10.4f %10.4f\n", fmt.Sprintf("A only (k=%d, B off)", r.K),
		r.AOnlyRecall.Mean, r.AOnlyTau.Mean, r.AOnlyTheta.Mean)
	b.WriteString("(B alone keeps recall = 1: it flattens weights but never drops arcs)\n")
	return b.String()
}

// AblationKResult sweeps the connection parameter (A2): the paper's
// claim that recall grows sub-linearly with k, quantified.
type AblationKResult struct {
	Ks     []int
	Recall []float64 // mean per k
	Tau    []float64
	Theta  []float64
	Sim1   []float64
}

// RunAblationK measures the comparison metrics across a k sweep.
func RunAblationK(w *Workbench, ks []int) *AblationKResult {
	orig := w.Graph()
	out := &AblationKResult{Ks: ks}
	for _, k := range ks {
		cmp := sim.Compare(orig, w.Evolution(k), sim.CompareOptions{Seed: w.Seed})
		out.Recall = append(out.Recall, metrics.Summarize(cmp.Recall).Mean)
		out.Tau = append(out.Tau, metrics.Summarize(cmp.Tau).Mean)
		out.Theta = append(out.Theta, metrics.Summarize(cmp.Theta).Mean)
		out.Sim1 = append(out.Sim1, metrics.Summarize(cmp.Sim1).Mean)
	}
	return out
}

// String renders the sweep.
func (r *AblationKResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation A2 — connection parameter sweep (means per tag)\n")
	fmt.Fprintf(&b, "%4s %10s %10s %10s %10s\n", "k", "recall", "Ktau", "theta", "sim1%")
	for i, k := range r.Ks {
		fmt.Fprintf(&b, "%4d %10.4f %10.4f %10.4f %10.4f\n",
			k, r.Recall[i], r.Tau[i], r.Theta[i], r.Sim1[i])
	}
	b.WriteString("(paper: recall grows sub-linearly with k)\n")
	return b.String()
}

// HotspotResult measures how block placement and request load spread
// over overlay nodes when a workload is published through DHARMA (A3) —
// the hotspot concern §V raises for popular tags.
type HotspotResult struct {
	Nodes           int
	TotalBlocks     int
	TotalRequests   int64
	BlockGini       float64 // inequality of stored entries per node
	RequestGini     float64 // inequality of requests served per node
	Top5RequestFrac float64 // share of requests served by the 5 busiest nodes
}

// RunHotspots publishes a workload slice through a live cluster (with
// the approximated engine) and then replays one search step per popular
// tag, measuring the per-node distribution of storage and traffic.
func RunHotspots(w *Workbench, nodes, annotations, k int) (*HotspotResult, error) {
	cl, err := kademlia.NewCluster(kademlia.ClusterConfig{
		N:    nodes,
		Node: kademlia.Config{K: 8, Alpha: 3},
		Seed: w.Seed,
	})
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(dht.NewOverlay(cl.Nodes[1], nil), core.Config{
		Mode: core.Approximated, K: k, Seed: w.Seed,
	})
	if err != nil {
		return nil, err
	}

	schedule := w.Schedule()
	if len(schedule) > annotations {
		schedule = schedule[:annotations]
	}
	inserted := map[string]bool{}
	tags := map[string]int{}
	for _, a := range schedule {
		if !inserted[a.Resource] {
			if err := eng.InsertResource(context.Background(), a.Resource, "uri:"+a.Resource); err != nil {
				return nil, err
			}
			inserted[a.Resource] = true
		}
		if err := eng.Tag(context.Background(), a.Resource, a.Tag); err != nil {
			return nil, err
		}
		tags[a.Tag]++
	}

	// One search step per tag, most popular first (popularity within the
	// replayed slice).
	type tc struct {
		tag string
		n   int
	}
	var byPop []tc
	for t, n := range tags {
		byPop = append(byPop, tc{t, n})
	}
	sort.Slice(byPop, func(i, j int) bool {
		if byPop[i].n != byPop[j].n {
			return byPop[i].n > byPop[j].n
		}
		return byPop[i].tag < byPop[j].tag
	})
	if len(byPop) > 100 {
		byPop = byPop[:100]
	}
	for _, t := range byPop {
		if _, _, err := eng.SearchStep(context.Background(), t.tag); err != nil {
			return nil, err
		}
	}

	res := &HotspotResult{Nodes: nodes}
	var blockLoad, reqLoad []float64
	for _, n := range cl.Nodes {
		blocks := n.LocalStore().EntryCount()
		res.TotalBlocks += blocks
		blockLoad = append(blockLoad, float64(blocks))
		served := cl.Net.Stats(simnet.Addr(n.Self().Addr)).Received.Load()
		res.TotalRequests += served
		reqLoad = append(reqLoad, float64(served))
	}
	res.BlockGini = metrics.Gini(blockLoad)
	res.RequestGini = metrics.Gini(reqLoad)

	sort.Sort(sort.Reverse(sort.Float64Slice(reqLoad)))
	var top5 float64
	for i := 0; i < 5 && i < len(reqLoad); i++ {
		top5 += reqLoad[i]
	}
	if res.TotalRequests > 0 {
		res.Top5RequestFrac = top5 / float64(res.TotalRequests)
	}
	return res, nil
}

// String renders the hotspot measurements.
func (r *HotspotResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation A3 — hotspot load distribution on the overlay\n")
	fmt.Fprintf(&b, "nodes=%d stored-entries=%d requests=%d\n", r.Nodes, r.TotalBlocks, r.TotalRequests)
	fmt.Fprintf(&b, "storage Gini=%.3f request Gini=%.3f top-5-node request share=%.3f\n",
		r.BlockGini, r.RequestGini, r.Top5RequestFrac)
	b.WriteString("(hashing spreads blocks; skew that remains tracks tag popularity, the paper's hotspot concern)\n")
	return b.String()
}

// FilterCapResult sweeps the index-side filter / display cap (A4): how
// the per-step tag budget changes convergence speed.
type FilterCapResult struct {
	Caps  []int
	Stats map[int]map[search.Strategy]metrics.Summary
}

// RunFilterCap runs the convergence experiment at several display caps
// on the original graph.
func RunFilterCap(w *Workbench, caps []int, topSeeds, randomRuns int) *FilterCapResult {
	g := w.Graph()
	seeds := w.PopularTags(topSeeds)
	out := &FilterCapResult{Caps: caps, Stats: map[int]map[search.Strategy]metrics.Summary{}}
	for _, c := range caps {
		res := sim.RunSearches(search.NewFolkView(g), sim.SearchConfig{
			Seeds:      seeds,
			RandomRuns: randomRuns,
			Options:    search.Options{DisplayCap: c},
			Seed:       w.Seed,
		})
		out.Stats[c] = map[search.Strategy]metrics.Summary{}
		for strat, steps := range res.Steps {
			out.Stats[c][strat] = metrics.Summarize(steps)
		}
	}
	return out
}

// String renders the sweep.
func (r *FilterCapResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation A4 — index-side filter cap vs mean path length\n")
	fmt.Fprintf(&b, "%6s %8s %8s %8s\n", "cap", "last", "rand", "first")
	for _, c := range r.Caps {
		fmt.Fprintf(&b, "%6d", c)
		for _, s := range table4Strategies {
			fmt.Fprintf(&b, " %8.2f", r.Stats[c][s].Mean)
		}
		b.WriteString("\n")
	}
	return b.String()
}
