package exp

import (
	"fmt"
	"io"
	"strings"

	"dharma/internal/metrics"
	"dharma/internal/plot"
	"dharma/internal/search"
	"dharma/internal/sim"
)

// paperTable4 holds the paper's Table IV (µ, σ, median) per graph and
// strategy.
var paperTable4 = map[string]map[search.Strategy][3]float64{
	"original": {
		search.Last:   {3.47, 1.4175, 3},
		search.Random: {6.412, 4.4587, 5},
		search.First:  {33.94, 15.9942, 33},
	},
	"simulated": {
		search.Last:   {3.38, 1.2373, 3},
		search.Random: {5.2140, 2.6994, 5},
		search.First:  {19.17, 10.3065, 16},
	},
}

// Table4Result reproduces Table IV and carries the raw path-length
// samples Figure 7 plots.
type Table4Result struct {
	K          int // connection parameter of the simulated graph
	Seeds      int // number of starting tags
	RandomRuns int
	// Original and Simulated map each strategy to its path-length
	// summary; Raw* keep the samples for Figure 7.
	Original, Simulated       map[search.Strategy]metrics.Summary
	RawOriginal, RawSimulated map[search.Strategy][]float64
}

// RunTable4 executes the §V-C convergence experiment: from each of the
// topSeeds most popular tags, one "first", one "last" and randomRuns
// random walks on both the original graph and the k=1 approximated one.
func RunTable4(w *Workbench, k, topSeeds, randomRuns int) *Table4Result {
	g := w.Graph()
	seeds := w.PopularTags(topSeeds)
	cfg := sim.SearchConfig{Seeds: seeds, RandomRuns: randomRuns, Seed: w.Seed}

	origOut := sim.RunSearches(search.NewFolkView(g), cfg)
	simOut := sim.RunSearches(search.NewCompositeView(w.Evolution(k), g), cfg)

	res := &Table4Result{
		K: k, Seeds: len(seeds), RandomRuns: randomRuns,
		Original:     map[search.Strategy]metrics.Summary{},
		Simulated:    map[search.Strategy]metrics.Summary{},
		RawOriginal:  origOut.Steps,
		RawSimulated: simOut.Steps,
	}
	for strat, steps := range origOut.Steps {
		res.Original[strat] = metrics.Summarize(steps)
	}
	for strat, steps := range simOut.Steps {
		res.Simulated[strat] = metrics.Summarize(steps)
	}
	return res
}

var table4Strategies = []search.Strategy{search.Last, search.Random, search.First}

// String renders Table IV with the paper's values alongside.
func (r *Table4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table IV — search path length (steps), %d seed tags, %d random runs each, simulated k=%d\n",
		r.Seeds, r.RandomRuns, r.K)
	fmt.Fprintf(&b, "%-18s %8s %8s %8s   %s\n", "graph/stat", "last", "rand", "first", "paper (last/rand/first)")
	dump := func(label string, rows map[search.Strategy]metrics.Summary, paper map[search.Strategy][3]float64, idx int, stat func(metrics.Summary) float64) {
		fmt.Fprintf(&b, "%-18s", label)
		for _, s := range table4Strategies {
			fmt.Fprintf(&b, " %8.2f", stat(rows[s]))
		}
		fmt.Fprintf(&b, "   %8.2f %8.2f %8.2f\n",
			paper[search.Last][idx], paper[search.Random][idx], paper[search.First][idx])
	}
	for _, graph := range []struct {
		label string
		rows  map[search.Strategy]metrics.Summary
		paper map[search.Strategy][3]float64
	}{
		{"original", r.Original, paperTable4["original"]},
		{"simulated(k=1)", r.Simulated, paperTable4["simulated"]},
	} {
		dump(graph.label+" mu", graph.rows, graph.paper, 0, func(s metrics.Summary) float64 { return s.Mean })
		dump(graph.label+" sd", graph.rows, graph.paper, 1, func(s metrics.Summary) float64 { return s.Std })
		dump(graph.label+" med", graph.rows, graph.paper, 2, func(s metrics.Summary) float64 { return s.Median })
	}
	return b.String()
}

// Figure7Result reproduces Figure 7: the CDFs of path length per
// strategy, on both graphs.
type Figure7Result struct {
	// CDFs[graph][strategy] with graph ∈ {"original", "approximated"}.
	CDFs map[string]map[search.Strategy][]metrics.CDFPoint
}

// RunFigure7 derives the CDFs from a Table IV run (the same samples).
func RunFigure7(t4 *Table4Result) *Figure7Result {
	out := &Figure7Result{CDFs: map[string]map[search.Strategy][]metrics.CDFPoint{
		"original":     {},
		"approximated": {},
	}}
	for strat, steps := range t4.RawOriginal {
		out.CDFs["original"][strat] = metrics.CDF(steps)
	}
	for strat, steps := range t4.RawSimulated {
		out.CDFs["approximated"][strat] = metrics.CDF(steps)
	}
	return out
}

// String prints the CDFs at small step counts (the figure's axes),
// followed by an ASCII rendering per strategy.
func (f *Figure7Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 7 — CDF of search path length per strategy\n")
	for _, strat := range table4Strategies {
		fmt.Fprintf(&b, "-- %s tag strategy --\n%6s %12s %12s\n", strat, "steps", "original", "approximated")
		for _, x := range []float64{2, 3, 4, 5, 6, 8, 10, 15, 20, 30, 40, 60, 80} {
			fmt.Fprintf(&b, "%6.0f %12.4f %12.4f\n", x,
				metrics.CDFAt(f.CDFs["original"][strat], x),
				metrics.CDFAt(f.CDFs["approximated"][strat], x))
		}
		b.WriteString(plot.Render([]plot.Series{
			{Name: "original", Points: cdfPoints(f.CDFs["original"][strat])},
			{Name: "approximated", Points: cdfPoints(f.CDFs["approximated"][strat])},
		}, plot.Options{Height: 12, XLabel: "search steps", YLabel: "cumulative probability"}))
	}
	b.WriteString("(paper: approximation shifts every CDF left — shorter navigations)\n")
	return b.String()
}

// WriteCSV dumps all six CDF series.
func (f *Figure7Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "graph,strategy,steps,cumulative_probability"); err != nil {
		return err
	}
	for graph, byStrat := range f.CDFs {
		for strat, pts := range byStrat {
			for _, p := range pts {
				if _, err := fmt.Fprintf(w, "%s,%s,%g,%g\n", graph, strat, p.Value, p.Prob); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
