package exp

import (
	"context"

	"fmt"
	"strings"

	"dharma/internal/core"
	"dharma/internal/dht"
	"dharma/internal/kademlia"
)

// Table1Row is one primitive's cost, analytic and measured.
type Table1Row struct {
	Primitive string
	Formula   string
	Param     int   // the m or |Tags(r)| the measurement used
	Expected  int64 // formula evaluated at Param
	Measured  int64 // lookups counted on the instrumented store
}

// Table1Result reproduces Table I: the lookup cost of the distributed
// tagging primitives, naive and approximated, verified by running every
// primitive against a live overlay cluster with an instrumented store.
type Table1Result struct {
	K          int // connection parameter used for the approximated rows
	NaiveRows  []Table1Row
	ApproxRows []Table1Row
	// OverlayVerified reports that the measurements were reproduced on
	// a real Kademlia cluster (not just the in-process store).
	OverlayVerified bool
}

// RunTable1 measures every Table I cell. The m and |Tags(r)| parameters
// are fixed small values (costs are exact formulas, verified per-call).
func RunTable1(k int) (*Table1Result, error) {
	res := &Table1Result{K: k}

	measure := func(mode core.Mode) ([]Table1Row, error) {
		store := dht.NewLocal()
		eng, err := core.NewEngine(store, core.Config{Mode: mode, K: k, Seed: 7})
		if err != nil {
			return nil, err
		}
		const m = 8 // tags on the insert measurement
		tags := make([]string, m)
		for i := range tags {
			tags[i] = fmt.Sprintf("t%d", i)
		}
		before := store.Lookups()
		if err := eng.InsertResource(context.Background(), "r", "uri:r", tags...); err != nil {
			return nil, err
		}
		insertCost := store.Lookups() - before

		before = store.Lookups()
		if err := eng.Tag(context.Background(), "r", "fresh"); err != nil {
			return nil, err
		}
		tagCost := store.Lookups() - before

		before = store.Lookups()
		if _, _, err := eng.SearchStep(context.Background(), "t0"); err != nil {
			return nil, err
		}
		searchCost := store.Lookups() - before

		tagParam := m // |Tags(r)| when "fresh" was added
		expTag := int64(4 + tagParam)
		tagFormula := "4+|Tags(r)|"
		if mode == core.Approximated {
			expTag = int64(4 + min(k, tagParam))
			tagFormula = "4+k"
		}
		return []Table1Row{
			{Primitive: "Insert(r, t1..m)", Formula: "2+2m", Param: m, Expected: int64(2 + 2*m), Measured: insertCost},
			{Primitive: "Tag(r,t)", Formula: tagFormula, Param: tagParam, Expected: expTag, Measured: tagCost},
			{Primitive: "Search step", Formula: "2", Param: 0, Expected: 2, Measured: searchCost},
		}, nil
	}

	var err error
	if res.NaiveRows, err = measure(core.Naive); err != nil {
		return nil, err
	}
	if res.ApproxRows, err = measure(core.Approximated); err != nil {
		return nil, err
	}

	// Reproduce the approximated measurements over a real overlay: the
	// engine's costs are defined in block operations, and each block
	// operation must map to exactly one overlay lookup.
	cl, err := kademlia.NewCluster(kademlia.ClusterConfig{
		N:    24,
		Node: kademlia.Config{K: 8, Alpha: 3},
		Seed: 41,
	})
	if err != nil {
		return nil, err
	}
	over := dht.NewOverlay(cl.Nodes[2], nil)
	eng, err := core.NewEngine(over, core.Config{Mode: core.Approximated, K: k, Seed: 7})
	if err != nil {
		return nil, err
	}
	node := cl.Nodes[2]
	beforeOps, beforeLookups := over.Lookups(), node.Lookups()
	if err := eng.InsertResource(context.Background(), "or", "uri:or", "a", "b", "c"); err != nil {
		return nil, err
	}
	if err := eng.Tag(context.Background(), "or", "d"); err != nil {
		return nil, err
	}
	opDelta := over.Lookups() - beforeOps
	overlayDelta := node.Lookups() - beforeLookups
	if opDelta != int64((2+2*3)+(4+min(k, 3))) {
		return nil, fmt.Errorf("exp: overlay op count %d does not match formulas", opDelta)
	}
	if overlayDelta != opDelta {
		return nil, fmt.Errorf("exp: %d block ops became %d overlay lookups", opDelta, overlayDelta)
	}
	res.OverlayVerified = true
	return res, nil
}

// String renders the table in the paper's layout.
func (r *Table1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — distributed tagging primitives cost (k=%d)\n", r.K)
	fmt.Fprintf(&b, "%-22s %-14s %8s %10s %10s\n", "primitive", "formula", "param", "expected", "measured")
	dump := func(label string, rows []Table1Row) {
		fmt.Fprintf(&b, "-- %s --\n", label)
		for _, row := range rows {
			fmt.Fprintf(&b, "%-22s %-14s %8d %10d %10d\n",
				row.Primitive, row.Formula, row.Param, row.Expected, row.Measured)
		}
	}
	dump("#lookups (naive)", r.NaiveRows)
	dump("#lookups (approximated)", r.ApproxRows)
	fmt.Fprintf(&b, "overlay-verified: %v (paper: Insert 2+2m | Tag naive 4+|Tags(r)|, approx 4+k | Search 2)\n",
		r.OverlayVerified)
	return b.String()
}

// Verified reports whether every measured cost matched its formula.
func (r *Table1Result) Verified() bool {
	for _, rows := range [][]Table1Row{r.NaiveRows, r.ApproxRows} {
		for _, row := range rows {
			if row.Expected != row.Measured {
				return false
			}
		}
	}
	return r.OverlayVerified
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
