package exp

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"dharma/internal/metrics"
	"dharma/internal/plot"
	"dharma/internal/sim"
)

// paperTable3 holds the paper's Table III values (µ, σ) for each k.
var paperTable3 = map[int]map[string][2]float64{
	1:  {"recall": {0.6103, 0.2798}, "tau": {0.7636, 0.2728}, "theta": {0.8152, 0.1978}, "sim1": {0.9214, 0.1044}},
	5:  {"recall": {0.7268, 0.2730}, "tau": {0.7638, 0.2380}, "theta": {0.8664, 0.1636}, "sim1": {0.9346, 0.0914}},
	10: {"recall": {0.7841, 0.2686}, "tau": {0.7985, 0.2138}, "theta": {0.8971, 0.1424}, "sim1": {0.9432, 0.0850}},
}

// Table3Row is the comparison between approximated and theoretic FG for
// one connection parameter.
type Table3Row struct {
	K                                int
	Recall, Tau, Theta, Sim1         metrics.Summary
	MissingWeightLE3                 float64
	OrigArcs, MissingArcs, ApproxOps int
}

// Table3Result reproduces Table III for a set of k values.
type Table3Result struct {
	Rows []Table3Row
}

// RunTable3 evolves the approximated graph for each k and compares it
// to the theoretic graph.
func RunTable3(w *Workbench, ks []int) *Table3Result {
	orig := w.Graph()
	res := &Table3Result{}
	for _, k := range ks {
		evo := w.Evolution(k)
		cmp := sim.Compare(orig, evo, sim.CompareOptions{Seed: w.Seed})
		res.Rows = append(res.Rows, Table3Row{
			K:                k,
			Recall:           metrics.Summarize(cmp.Recall),
			Tau:              metrics.Summarize(cmp.Tau),
			Theta:            metrics.Summarize(cmp.Theta),
			Sim1:             metrics.Summarize(cmp.Sim1),
			MissingWeightLE3: cmp.MissingWeightLE3,
			OrigArcs:         cmp.OrigArcs,
			MissingArcs:      cmp.MissingArcs,
			ApproxOps:        evo.Ops,
		})
	}
	return res
}

// String renders the table with the paper's values alongside.
func (r *Table3Result) String() string {
	var b strings.Builder
	b.WriteString("Table III — approximated vs theoretic folksonomy graph\n")
	fmt.Fprintf(&b, "%3s %4s %10s %10s %10s %10s   %s\n",
		"k", "", "Recall", "Ktau", "theta", "sim1%", "paper (same order)")
	for _, row := range r.Rows {
		p := paperTable3[row.K]
		paperMu, paperSd := "", ""
		if p != nil {
			paperMu = fmt.Sprintf("%.4f %.4f %.4f %.4f", p["recall"][0], p["tau"][0], p["theta"][0], p["sim1"][0])
			paperSd = fmt.Sprintf("%.4f %.4f %.4f %.4f", p["recall"][1], p["tau"][1], p["theta"][1], p["sim1"][1])
		}
		fmt.Fprintf(&b, "%3d %4s %10.4f %10.4f %10.4f %10.4f   %s\n",
			row.K, "mu", row.Recall.Mean, row.Tau.Mean, row.Theta.Mean, row.Sim1.Mean, paperMu)
		fmt.Fprintf(&b, "%3s %4s %10.4f %10.4f %10.4f %10.4f   %s\n",
			"", "sd", row.Recall.Std, row.Tau.Std, row.Theta.Std, row.Sim1.Std, paperSd)
	}
	if len(r.Rows) > 0 {
		last := r.Rows[len(r.Rows)-1]
		fmt.Fprintf(&b, "missing arcs with theoretic weight<=3 at k=%d: %.4f (paper: 0.99 for every k)\n",
			last.K, last.MissingWeightLE3)
	}
	return b.String()
}

// FigureScatter is the generic scatter-series result behind Figures 6
// and 8: per-k point clouds of original-vs-simulated values plus the
// fitted slope through the origin.
type FigureScatter struct {
	Figure string // "6" or "8"
	XLabel string
	Series map[int][][2]float64 // k -> (original, simulated) pairs
	Slopes map[int]float64
}

// RunFigure6 compares nodal out-degrees between the original and the
// simulated graphs for the paper's k values (1 and 100).
func RunFigure6(w *Workbench, ks []int) *FigureScatter {
	orig := w.Graph()
	out := &FigureScatter{Figure: "6", XLabel: "node out degree",
		Series: map[int][][2]float64{}, Slopes: map[int]float64{}}
	for _, k := range ks {
		cmp := sim.Compare(orig, w.Evolution(k), sim.CompareOptions{Seed: w.Seed})
		out.Series[k] = cmp.DegreePairs
		xs := make([]float64, len(cmp.DegreePairs))
		ys := make([]float64, len(cmp.DegreePairs))
		for i, p := range cmp.DegreePairs {
			xs[i], ys[i] = p[0], p[1]
		}
		out.Slopes[k] = metrics.SlopeThroughOrigin(xs, ys)
	}
	return out
}

// RunFigure8 compares arc weights between the original and the
// simulated graphs for the paper's k values (1, 25, 500).
func RunFigure8(w *Workbench, ks []int) *FigureScatter {
	orig := w.Graph()
	out := &FigureScatter{Figure: "8", XLabel: "arc weight",
		Series: map[int][][2]float64{}, Slopes: map[int]float64{}}
	for _, k := range ks {
		cmp := sim.Compare(orig, w.Evolution(k), sim.CompareOptions{Seed: w.Seed})
		out.Series[k] = cmp.WeightPairs
		xs := make([]float64, len(cmp.WeightPairs))
		ys := make([]float64, len(cmp.WeightPairs))
		for i, p := range cmp.WeightPairs {
			xs[i], ys[i] = p[0], p[1]
		}
		out.Slopes[k] = metrics.SlopeThroughOrigin(xs, ys)
	}
	return out
}

// String summarises the scatter by its fitted slopes (the paper's
// qualitative claims: Figure 6 slopes stay near the diagonal for every
// k; Figure 8 slopes fall well below 1 for small k) and draws the point
// cloud against the y=x reference.
func (f *FigureScatter) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s — original vs simulated %s\n", f.Figure, f.XLabel)
	ks := make([]int, 0, len(f.Slopes))
	for k := range f.Slopes {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	series := make([]plot.Series, 0, len(ks))
	for _, k := range ks {
		fmt.Fprintf(&b, "  k=%-4d points=%-7d slope(sim~orig)=%.4f\n", k, len(f.Series[k]), f.Slopes[k])
		pts := f.Series[k]
		if len(pts) > 2000 { // keep the canvas drawing cheap
			pts = pts[:2000]
		}
		series = append(series, plot.Series{Name: fmt.Sprintf("k=%d", k), Points: pts})
	}
	b.WriteString(plot.Render(series, plot.Options{
		LogX: true, LogY: true, Diagonal: true,
		XLabel: "original " + f.XLabel, YLabel: "simulated " + f.XLabel,
	}))
	if f.Figure == "6" {
		b.WriteString("(paper: degree points align close to the diagonal even for k=1)\n")
	} else {
		b.WriteString("(paper: weights are significantly reduced for low k)\n")
	}
	return b.String()
}

// WriteCSV dumps every series for plotting.
func (f *FigureScatter) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "k,original_%s,simulated_%s\n",
		csvLabel(f.XLabel), csvLabel(f.XLabel)); err != nil {
		return err
	}
	for k, pts := range f.Series {
		for _, p := range pts {
			if _, err := fmt.Fprintf(w, "%d,%g,%g\n", k, p[0], p[1]); err != nil {
				return err
			}
		}
	}
	return nil
}

func csvLabel(s string) string { return strings.ReplaceAll(s, " ", "_") }
