package exp

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"

	"dharma/internal/dataset"
	"dharma/internal/sim"
)

// TrendResult is the A5 extension experiment — the paper's stated
// future work: "we are planning to study if our approximated model
// hampers the emergence of new tagging trends". A brand-new tag bursts
// onto the resources of a popular host tag late in the schedule; we
// track the rank it reaches in the host's displayed neighbour list on
// the exact graph and on the approximated one.
type TrendResult struct {
	HostTag  string
	TrendTag string
	K        int
	Burst    int // trend annotations injected

	// One sample per checkpoint.
	OpsDone    []int // operations applied when sampled
	ExactRank  []int // 1-based rank in the host's display; -1 = absent
	ApproxRank []int
	ExactSim   []int // sim(host, trend) at the checkpoint
	ApproxSim  []int

	// EmergenceOps is the number of operations after the burst began
	// until the trend first entered the host's top-N display (-1 =
	// never), per graph.
	ExactEmergence, ApproxEmergence int
}

// RunTrendEmergence injects a `burst` of trend annotations, uniformly
// interleaved into the last fifth of the schedule, and replays the
// whole schedule on an exact evolver and an approximated (k, B) one,
// sampling the trend tag's display rank at `checkpoints` points. topN
// is the display cut-off (the paper's 100).
func RunTrendEmergence(w *Workbench, k, burst, checkpoints, topN int) *TrendResult {
	base := w.Schedule()
	g := w.Graph()
	host := w.PopularTags(1)[0]
	const trend = "zz-new-trend"

	// The burst tags resources already carrying the host tag, sampled
	// by their popularity — a genuine trend rides popular content.
	hostRes := g.Res(host)
	sort.Slice(hostRes, func(i, j int) bool {
		if hostRes[i].Weight != hostRes[j].Weight {
			return hostRes[i].Weight > hostRes[j].Weight
		}
		return hostRes[i].Name < hostRes[j].Name
	})
	rng := rand.New(rand.NewSource(w.Seed + 77))
	burstAnn := make([]dataset.Annotation, burst)
	for i := range burstAnn {
		r := hostRes[rng.Intn(min(len(hostRes), 50))]
		burstAnn[i] = dataset.Annotation{
			User:     fmt.Sprintf("trendsetter%d", i),
			Resource: r.Name,
			Tag:      trend,
		}
	}

	// Interleave the burst uniformly into the last 20% of the schedule.
	cut := len(base) * 4 / 5
	tail := append([]dataset.Annotation(nil), base[cut:]...)
	for _, a := range burstAnn {
		pos := rng.Intn(len(tail) + 1)
		tail = append(tail, dataset.Annotation{})
		copy(tail[pos+1:], tail[pos:])
		tail[pos] = a
	}
	schedule := append(append([]dataset.Annotation(nil), base[:cut]...), tail...)

	exact := sim.NewEvolver(sim.EvolutionConfig{})
	approx := sim.NewEvolver(sim.EvolutionConfig{K: k, ApproxB: true, Seed: w.Seed})

	res := &TrendResult{
		HostTag: host, TrendTag: trend, K: k, Burst: burst,
		ExactEmergence: -1, ApproxEmergence: -1,
	}
	every := max(len(schedule[cut:])/checkpoints, 1)
	for i, a := range schedule {
		exact.Apply(a)
		approx.Apply(a)
		if i < cut || (i-cut)%every != 0 && i != len(schedule)-1 {
			continue
		}
		er, es := displayRank(exact.Result(), host, trend, topN)
		ar, as := displayRank(approx.Result(), host, trend, topN)
		res.OpsDone = append(res.OpsDone, i+1)
		res.ExactRank = append(res.ExactRank, er)
		res.ApproxRank = append(res.ApproxRank, ar)
		res.ExactSim = append(res.ExactSim, es)
		res.ApproxSim = append(res.ApproxSim, as)
		if er > 0 && res.ExactEmergence < 0 {
			res.ExactEmergence = i + 1 - cut
		}
		if ar > 0 && res.ApproxEmergence < 0 {
			res.ApproxEmergence = i + 1 - cut
		}
	}
	return res
}

// displayRank computes the 1-based position of `tag` in host's top-N
// display (sorted by descending sim, name tie-break), or -1 if absent.
func displayRank(r *sim.Result, host, tag string, topN int) (rank, simValue int) {
	ws := r.Neighbors(host)
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].Weight != ws[j].Weight {
			return ws[i].Weight > ws[j].Weight
		}
		return ws[i].Name < ws[j].Name
	})
	if len(ws) > topN {
		ws = ws[:topN]
	}
	for i, w := range ws {
		if w.Name == tag {
			return i + 1, w.Weight
		}
	}
	return -1, r.Sim(host, tag)
}

// String renders the emergence curves.
func (r *TrendResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension A5 — trend emergence (future work of §VI): %d-annotation burst of %q on host %q, k=%d\n",
		r.Burst, r.TrendTag, r.HostTag, r.K)
	fmt.Fprintf(&b, "%10s %12s %12s %12s %12s\n", "ops", "exact rank", "approx rank", "exact sim", "approx sim")
	for i := range r.OpsDone {
		fmt.Fprintf(&b, "%10d %12s %12s %12d %12d\n",
			r.OpsDone[i], rankStr(r.ExactRank[i]), rankStr(r.ApproxRank[i]),
			r.ExactSim[i], r.ApproxSim[i])
	}
	fmt.Fprintf(&b, "ops-to-display after burst start: exact=%s approx=%s\n",
		emergeStr(r.ExactEmergence), emergeStr(r.ApproxEmergence))
	return b.String()
}

// WriteCSV dumps the curves.
func (r *TrendResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "ops,exact_rank,approx_rank,exact_sim,approx_sim"); err != nil {
		return err
	}
	for i := range r.OpsDone {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d\n",
			r.OpsDone[i], r.ExactRank[i], r.ApproxRank[i], r.ExactSim[i], r.ApproxSim[i]); err != nil {
			return err
		}
	}
	return nil
}

func rankStr(r int) string {
	if r < 0 {
		return "-"
	}
	return fmt.Sprintf("#%d", r)
}

func emergeStr(e int) string {
	if e < 0 {
		return "never"
	}
	return fmt.Sprintf("%d", e)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
