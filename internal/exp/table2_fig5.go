package exp

import (
	"fmt"
	"io"
	"strings"

	"dharma/internal/metrics"
	"dharma/internal/plot"
)

// paperTable2 holds the degree statistics the paper reports for the
// full-scale Last.fm crawl (Table II), for side-by-side rendering.
var paperTable2 = map[string][3]float64{ // µ, σ, max
	"Tags(r)": {5, 13, 1182},
	"Res(t)":  {26, 525, 109717},
	"NFG(t)":  {316, 1569, 120568},
}

// Table2Result reproduces Table II: the nodal degree statistics of the
// TRG and FG.
type Table2Result struct {
	Rows map[string]metrics.Summary // keyed like paperTable2
	// Core-periphery indicators from the §V-A prose.
	SingletonTagFrac    float64 // paper: ~0.55
	SingleTagResourceFr float64 // paper: ~0.40
	Resources, Tags     int
	Annotations         int
}

// RunTable2 computes the degree statistics of the workbench's dataset.
func RunTable2(w *Workbench) *Table2Result {
	st := w.Stats()
	return &Table2Result{
		Rows: map[string]metrics.Summary{
			"Tags(r)": metrics.Summarize(st.TagsPerResource),
			"Res(t)":  metrics.Summarize(st.ResPerTag),
			"NFG(t)":  metrics.Summarize(st.NeighborsPerTag),
		},
		SingletonTagFrac:    st.SingletonTagFrac,
		SingleTagResourceFr: st.SingleTagResourceFr,
		Resources:           st.Resources,
		Tags:                st.Tags,
		Annotations:         st.Annotations,
	}
}

// String renders the table with the paper's full-scale values alongside.
func (r *Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II — graph degree statistics (synthetic: R=%d T=%d annotations=%d; paper: R=1413657 T=285182 annotations≈11M)\n",
		r.Resources, r.Tags, r.Annotations)
	fmt.Fprintf(&b, "%-9s %10s %10s %10s   %28s\n", "degree", "mu", "sigma", "max", "paper (mu/sigma/max)")
	for _, key := range []string{"Tags(r)", "Res(t)", "NFG(t)"} {
		s := r.Rows[key]
		p := paperTable2[key]
		fmt.Fprintf(&b, "%-9s %10.1f %10.1f %10.0f   %10.0f %8.0f %9.0f\n",
			key, s.Mean, s.Std, s.Max, p[0], p[1], p[2])
	}
	fmt.Fprintf(&b, "singleton tags: %.2f (paper ~0.55) | single-tag resources: %.2f (paper ~0.40)\n",
		r.SingletonTagFrac, r.SingleTagResourceFr)
	return b.String()
}

// Figure5Result reproduces Figure 5: the cumulative distribution of the
// three nodal degrees.
type Figure5Result struct {
	TagsPerResource []metrics.CDFPoint
	ResPerTag       []metrics.CDFPoint
	NeighborsPerTag []metrics.CDFPoint
}

// RunFigure5 builds the degree CDFs.
func RunFigure5(w *Workbench) *Figure5Result {
	st := w.Stats()
	return &Figure5Result{
		TagsPerResource: metrics.CDF(st.TagsPerResource),
		ResPerTag:       metrics.CDF(st.ResPerTag),
		NeighborsPerTag: metrics.CDF(st.NeighborsPerTag),
	}
}

// String renders the CDFs evaluated at powers of ten, matching the
// figure's log-scaled x axis, followed by an ASCII rendering of the
// curves.
func (r *Figure5Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 5 — nodal degree CDFs, P(X <= x) at log-spaced sizes\n")
	fmt.Fprintf(&b, "%8s %12s %12s %12s\n", "size", "Res(t)", "Tags(r)", "NFG(t)")
	for _, x := range []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 10000, 100000} {
		fmt.Fprintf(&b, "%8.0f %12.4f %12.4f %12.4f\n",
			x, metrics.CDFAt(r.ResPerTag, x), metrics.CDFAt(r.TagsPerResource, x),
			metrics.CDFAt(r.NeighborsPerTag, x))
	}
	b.WriteString(plot.Render([]plot.Series{
		{Name: "Res(t)", Points: cdfPoints(r.ResPerTag)},
		{Name: "Tags(r)", Points: cdfPoints(r.TagsPerResource)},
		{Name: "NFG(t)", Points: cdfPoints(r.NeighborsPerTag)},
	}, plot.Options{LogX: true, XLabel: "size", YLabel: "cumulative probability"}))
	b.WriteString("(paper: ~55% of tags at size 1 for Res(t); ~40% of resources at size 1 for Tags(r))\n")
	return b.String()
}

func cdfPoints(cdf []metrics.CDFPoint) [][2]float64 {
	out := make([][2]float64, len(cdf))
	for i, p := range cdf {
		out[i] = [2]float64{p.Value, p.Prob}
	}
	return out
}

// WriteCSV dumps the three CDF series for plotting.
func (r *Figure5Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "series,value,cumulative_probability"); err != nil {
		return err
	}
	dump := func(name string, pts []metrics.CDFPoint) error {
		for _, p := range pts {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", name, p.Value, p.Prob); err != nil {
				return err
			}
		}
		return nil
	}
	if err := dump("Res(t)", r.ResPerTag); err != nil {
		return err
	}
	if err := dump("Tags(r)", r.TagsPerResource); err != nil {
		return err
	}
	return dump("NFG(t)", r.NeighborsPerTag)
}
