package exp

import (
	"bytes"
	"strings"
	"testing"

	"dharma/internal/dataset"
	"dharma/internal/search"
)

func tinyBench(t *testing.T) *Workbench {
	t.Helper()
	return NewWorkbench(dataset.Tiny(3))
}

func TestRunTable1VerifiesFormulas(t *testing.T) {
	for _, k := range []int{1, 3, 10} {
		res, err := RunTable1(k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !res.Verified() {
			t.Fatalf("k=%d: measured costs diverge from Table I:\n%s", k, res)
		}
		s := res.String()
		for _, want := range []string{"Insert(r, t1..m)", "Tag(r,t)", "Search step", "2+2m", "4+k"} {
			if !strings.Contains(s, want) {
				t.Fatalf("rendering lacks %q:\n%s", want, s)
			}
		}
	}
}

func TestRunTable2(t *testing.T) {
	w := tinyBench(t)
	res := RunTable2(w)
	if res.Rows["Tags(r)"].N == 0 || res.Rows["Res(t)"].N == 0 || res.Rows["NFG(t)"].N == 0 {
		t.Fatal("empty degree samples")
	}
	if res.Rows["Tags(r)"].Mean <= 1 {
		t.Fatalf("Tags(r) mean %.2f implausible", res.Rows["Tags(r)"].Mean)
	}
	if res.SingletonTagFrac <= 0 || res.SingletonTagFrac >= 1 {
		t.Fatalf("singleton fraction %v", res.SingletonTagFrac)
	}
	s := res.String()
	if !strings.Contains(s, "Table II") || !strings.Contains(s, "1182") {
		t.Fatalf("rendering lacks paper reference:\n%s", s)
	}
}

func TestRunFigure5(t *testing.T) {
	w := tinyBench(t)
	res := RunFigure5(w)
	for name, cdf := range map[string]int{
		"tags":      len(res.TagsPerResource),
		"res":       len(res.ResPerTag),
		"neighbors": len(res.NeighborsPerTag),
	} {
		if cdf == 0 {
			t.Fatalf("empty CDF %s", name)
		}
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "series,value,cumulative_probability\n") {
		t.Fatal("CSV header missing")
	}
	if len(strings.Split(buf.String(), "\n")) < 5 {
		t.Fatal("CSV too short")
	}
	if !strings.Contains(res.String(), "Figure 5") {
		t.Fatal("rendering header missing")
	}
}

func TestRunTable3(t *testing.T) {
	w := tinyBench(t)
	res := RunTable3(w, []int{1, 5, 10})
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i, row := range res.Rows {
		if row.Recall.Mean <= 0 || row.Recall.Mean > 1 {
			t.Fatalf("row %d recall %v", i, row.Recall.Mean)
		}
		if row.Theta.Mean <= 0 {
			t.Fatalf("row %d theta %v", i, row.Theta.Mean)
		}
	}
	// Recall must not decrease with k.
	if res.Rows[2].Recall.Mean+0.02 < res.Rows[0].Recall.Mean {
		t.Fatalf("recall shrank with k: %v -> %v", res.Rows[0].Recall.Mean, res.Rows[2].Recall.Mean)
	}
	s := res.String()
	if !strings.Contains(s, "Table III") || !strings.Contains(s, "0.6103") {
		t.Fatalf("rendering lacks paper values:\n%s", s)
	}
}

func TestRunFigures6And8(t *testing.T) {
	w := tinyBench(t)
	f6 := RunFigure6(w, []int{1, 100})
	if len(f6.Series[1]) == 0 || len(f6.Series[100]) == 0 {
		t.Fatal("figure 6 series empty")
	}
	// Degrees align near the diagonal even at k=1 (paper's claim); at
	// k=100 Approximation A almost never truncates on a tiny dataset.
	if f6.Slopes[1] < 0.5 || f6.Slopes[1] > 1.01 {
		t.Fatalf("k=1 degree slope %.3f implausible", f6.Slopes[1])
	}
	if f6.Slopes[100] < f6.Slopes[1]-1e-9 {
		t.Fatalf("degree slope did not improve with k: %v vs %v", f6.Slopes[100], f6.Slopes[1])
	}

	f8 := RunFigure8(w, []int{1, 25, 500})
	if f8.Slopes[1] >= f8.Slopes[500] {
		t.Fatalf("weight slope must grow with k: k1=%v k500=%v", f8.Slopes[1], f8.Slopes[500])
	}
	var buf bytes.Buffer
	if err := f8.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "k,original_arc_weight") {
		t.Fatalf("CSV header: %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
	if !strings.Contains(f6.String(), "Figure 6") || !strings.Contains(f8.String(), "Figure 8") {
		t.Fatal("figure headers missing")
	}
}

func TestRunTable4AndFigure7(t *testing.T) {
	w := tinyBench(t)
	t4 := RunTable4(w, 1, 5, 10)
	for _, strat := range table4Strategies {
		if t4.Original[strat].N == 0 || t4.Simulated[strat].N == 0 {
			t.Fatalf("missing samples for %v", strat)
		}
		if t4.Original[strat].Mean < 1 {
			t.Fatalf("%v mean %v below 1", strat, t4.Original[strat].Mean)
		}
	}
	// Last converges at least as fast as First on the original graph.
	if t4.Original[search.Last].Mean > t4.Original[search.First].Mean+1e-9 {
		t.Fatalf("last (%v) slower than first (%v)",
			t4.Original[search.Last].Mean, t4.Original[search.First].Mean)
	}
	s := t4.String()
	if !strings.Contains(s, "Table IV") || !strings.Contains(s, "33.94") {
		t.Fatalf("rendering lacks paper values:\n%s", s)
	}

	f7 := RunFigure7(t4)
	if len(f7.CDFs["original"]) != 3 || len(f7.CDFs["approximated"]) != 3 {
		t.Fatal("figure 7 missing series")
	}
	var buf bytes.Buffer
	if err := f7.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "graph,strategy,steps") {
		t.Fatal("CSV header missing")
	}
	if !strings.Contains(f7.String(), "Figure 7") {
		t.Fatal("rendering header missing")
	}
}

func TestRunAblationB(t *testing.T) {
	w := tinyBench(t)
	res := RunAblationB(w, 1)
	// Approximation B alone never drops arcs.
	if res.BOnlyRecall.Mean != 1 {
		t.Fatalf("B-only recall %v, want 1", res.BOnlyRecall.Mean)
	}
	// Approximation A alone does drop arcs at k=1.
	if res.AOnlyRecall.Mean >= 1 {
		t.Fatalf("A-only recall %v, want < 1", res.AOnlyRecall.Mean)
	}
	if !strings.Contains(res.String(), "Ablation A1") {
		t.Fatal("rendering header missing")
	}
}

func TestRunAblationK(t *testing.T) {
	w := tinyBench(t)
	res := RunAblationK(w, []int{1, 2, 5, 20})
	if len(res.Recall) != 4 {
		t.Fatal("missing sweep points")
	}
	for i := 1; i < len(res.Recall); i++ {
		if res.Recall[i]+0.02 < res.Recall[i-1] {
			t.Fatalf("recall regressed in sweep: %v", res.Recall)
		}
	}
	// Sub-linearity: the recall gain from k=1→2 exceeds the per-k gain
	// from 5→20.
	gainLow := res.Recall[1] - res.Recall[0]
	gainHigh := (res.Recall[3] - res.Recall[2]) / 15
	if gainHigh > gainLow+1e-9 {
		t.Fatalf("recall not sub-linear: low gain %v, high per-k gain %v", gainLow, gainHigh)
	}
	if !strings.Contains(res.String(), "Ablation A2") {
		t.Fatal("rendering header missing")
	}
}

func TestRunHotspots(t *testing.T) {
	w := tinyBench(t)
	res, err := RunHotspots(w, 16, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBlocks == 0 || res.TotalRequests == 0 {
		t.Fatalf("no load recorded: %+v", res)
	}
	if res.BlockGini < 0 || res.BlockGini > 1 || res.RequestGini < 0 || res.RequestGini > 1 {
		t.Fatalf("gini out of range: %+v", res)
	}
	if res.Top5RequestFrac <= 0 || res.Top5RequestFrac > 1 {
		t.Fatalf("top-5 share %v", res.Top5RequestFrac)
	}
	if !strings.Contains(res.String(), "Ablation A3") {
		t.Fatal("rendering header missing")
	}
}

func TestRunFilterCap(t *testing.T) {
	w := tinyBench(t)
	res := RunFilterCap(w, []int{5, 100}, 4, 5)
	if len(res.Stats) != 2 {
		t.Fatal("missing cap entries")
	}
	for _, c := range res.Caps {
		for _, strat := range table4Strategies {
			if res.Stats[c][strat].N == 0 {
				t.Fatalf("cap %d strategy %v: no samples", c, strat)
			}
		}
	}
	if !strings.Contains(res.String(), "Ablation A4") {
		t.Fatal("rendering header missing")
	}
}

func TestRunTrendEmergence(t *testing.T) {
	w := tinyBench(t)
	res := RunTrendEmergence(w, 1, 150, 10, 100)
	if res.HostTag == "" || res.TrendTag == "" {
		t.Fatal("missing tags")
	}
	if len(res.OpsDone) == 0 {
		t.Fatal("no checkpoints recorded")
	}
	if res.ExactEmergence < 0 {
		t.Fatal("a 150-annotation burst must emerge on the exact graph")
	}
	// sim(host, trend) grows monotonically on the exact graph.
	for i := 1; i < len(res.ExactSim); i++ {
		if res.ExactSim[i] < res.ExactSim[i-1] {
			t.Fatalf("exact sim regressed at checkpoint %d: %v", i, res.ExactSim)
		}
	}
	// Approximated sim is bounded by the exact one at each checkpoint.
	for i := range res.ApproxSim {
		if res.ApproxSim[i] > res.ExactSim[i] {
			t.Fatalf("approx sim %d exceeds exact %d", res.ApproxSim[i], res.ExactSim[i])
		}
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ops,exact_rank") {
		t.Fatal("CSV header missing")
	}
	if !strings.Contains(res.String(), "Extension A5") {
		t.Fatal("rendering header missing")
	}
}

func TestRunChurn(t *testing.T) {
	w := tinyBench(t)
	res, err := RunChurn(w, 20, 300, 4, 3, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AvailWith) != 4 || len(res.AvailWithout) != 4 {
		t.Fatalf("cycle series wrong: %+v", res)
	}
	for i := range res.AvailWith {
		if res.AvailWith[i] < 0 || res.AvailWith[i] > 1 {
			t.Fatalf("availability out of range: %v", res.AvailWith)
		}
		if res.AvailWith[i]+1e-9 < res.AvailWithout[i]-0.15 {
			t.Fatalf("cycle %d: republish (%.2f) markedly worse than none (%.2f)",
				i, res.AvailWith[i], res.AvailWithout[i])
		}
	}
	// With maintenance, availability at the end must not collapse.
	last := res.AvailWith[len(res.AvailWith)-1]
	if last < 0.9 {
		t.Fatalf("availability with republish fell to %.2f", last)
	}
	if !strings.Contains(res.String(), "Extension A6") {
		t.Fatal("rendering header missing")
	}
}

func TestRunCacheEffect(t *testing.T) {
	w := tinyBench(t)
	res, err := RunCacheEffect(w, 16, 300, 2, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlainLookups == 0 {
		t.Fatal("no plain lookups recorded")
	}
	if res.CachedLookups >= res.PlainLookups {
		t.Fatalf("cache did not reduce lookups: %d vs %d", res.CachedLookups, res.PlainLookups)
	}
	if res.HitRate <= 0.3 {
		t.Fatalf("hit rate %.2f too low for Zipf traffic", res.HitRate)
	}
	if !strings.Contains(res.String(), "Extension A7") {
		t.Fatal("rendering header missing")
	}
}

func TestWorkbenchCaches(t *testing.T) {
	w := tinyBench(t)
	if w.Dataset() != w.Dataset() {
		t.Fatal("dataset not cached")
	}
	if w.Graph() != w.Graph() {
		t.Fatal("graph not cached")
	}
	if w.Evolution(3) != w.Evolution(3) {
		t.Fatal("evolution not cached")
	}
	s1 := w.Schedule()
	s2 := w.Schedule()
	if &s1[0] != &s2[0] {
		t.Fatal("schedule not cached")
	}
	if len(w.PopularTags(5)) != 5 {
		t.Fatal("popular tags")
	}
}
