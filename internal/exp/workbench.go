// Package exp contains one driver per table and figure of the paper's
// evaluation section, plus the ablations listed in DESIGN.md. Each
// driver returns a structured result that renders to text (the same
// rows/series the paper reports, with the paper's own numbers printed
// alongside for comparison) and, for figures, dumps CSV series.
//
// Drivers share a Workbench that lazily builds and caches the expensive
// artifacts — the synthetic dataset, its theoretic graph, the shuffled
// tagging schedule and one evolution replay per connection parameter k —
// so a full harness run pays for each only once.
package exp

import (
	"sync"

	"dharma/internal/dataset"
	"dharma/internal/folksonomy"
	"dharma/internal/sim"
)

// Workbench caches the shared inputs of the §V experiments.
type Workbench struct {
	// Cfg describes the synthetic workload.
	Cfg dataset.Config
	// ShuffleSeed orders the §V-B tagging schedule.
	ShuffleSeed int64
	// Seed drives every other source of randomness in the experiments.
	Seed int64

	mu       sync.Mutex
	data     *dataset.Dataset
	graph    *folksonomy.Graph
	stats    *dataset.Stats
	schedule []dataset.Annotation
	evos     map[int]*sim.Result
}

// NewWorkbench creates a workbench over the given workload description.
func NewWorkbench(cfg dataset.Config) *Workbench {
	return &Workbench{Cfg: cfg, ShuffleSeed: cfg.Seed + 1, Seed: cfg.Seed + 2,
		evos: make(map[int]*sim.Result)}
}

// NewWorkbenchFromDataset runs the experiments on an existing dataset
// (e.g. a real crawl loaded from CSV) instead of generating one.
func NewWorkbenchFromDataset(d *dataset.Dataset, seed int64) *Workbench {
	return &Workbench{Cfg: d.Config, ShuffleSeed: seed + 1, Seed: seed + 2,
		data: d, evos: make(map[int]*sim.Result)}
}

// Dataset returns the generated workload, building it on first use.
func (w *Workbench) Dataset() *dataset.Dataset {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.data == nil {
		w.data = dataset.Generate(w.Cfg)
	}
	return w.data
}

// Graph returns the theoretic TRG+FG of the workload.
func (w *Workbench) Graph() *folksonomy.Graph {
	d := w.Dataset()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.graph == nil {
		w.graph = d.BuildGraph()
	}
	return w.graph
}

// Stats returns the §V-A structural statistics.
func (w *Workbench) Stats() dataset.Stats {
	d := w.Dataset()
	g := w.Graph()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.stats == nil {
		st := d.ComputeStats(g)
		w.stats = &st
	}
	return *w.stats
}

// Schedule returns the §V-B tagging schedule (a seeded permutation of
// the annotation instances).
func (w *Workbench) Schedule() []dataset.Annotation {
	d := w.Dataset()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.schedule == nil {
		w.schedule = d.Shuffled(w.ShuffleSeed)
	}
	return w.schedule
}

// Evolution returns the approximated FG for connection parameter k,
// replaying the schedule on first use (Approximations A and B active).
func (w *Workbench) Evolution(k int) *sim.Result {
	schedule := w.Schedule()
	w.mu.Lock()
	defer w.mu.Unlock()
	if r, ok := w.evos[k]; ok {
		return r
	}
	r := sim.Evolve(schedule, sim.EvolutionConfig{K: k, ApproxB: true, Seed: w.Seed})
	w.evos[k] = r
	return r
}

// PopularTags returns the n most popular tags of the workload.
func (w *Workbench) PopularTags(n int) []string {
	return dataset.PopularTags(w.Graph(), n)
}
