package exp

import (
	"context"

	"fmt"
	"math/rand"
	"strings"

	"dharma/internal/core"
	"dharma/internal/dht"
	"dharma/internal/kademlia"
	"dharma/internal/simnet"
)

// ChurnResult is the A6 extension experiment: block availability under
// node churn, with and without replica maintenance (republish). The
// paper defers "emulative and evolutionary analysis" to future work;
// this measures the part a deployment cares about most — whether the
// folksonomy index survives peers leaving.
type ChurnResult struct {
	Nodes, ProbeKeys, Cycles   int
	KillPerCycle, JoinPerCycle int

	Live         []int     // live node count after each cycle
	AvailWith    []float64 // probe availability with republish
	AvailWithout []float64 // probe availability without
}

// RunChurn publishes a workload slice on a live overlay, then runs
// churn cycles (kill `kill` random nodes, join `join` fresh ones per
// cycle), measuring the retrievability of the most popular tags' t̂
// blocks. The scenario runs twice from identical seeds: once with every
// live node republishing each cycle, once without any maintenance.
func RunChurn(w *Workbench, nodes, annotations, cycles, kill, join, replication int) (*ChurnResult, error) {
	if replication <= 0 {
		replication = 8
	}
	res := &ChurnResult{
		Nodes: nodes, Cycles: cycles,
		KillPerCycle: kill, JoinPerCycle: join,
	}

	run := func(republish bool) ([]int, []float64, error) {
		cl, err := kademlia.NewCluster(kademlia.ClusterConfig{
			N:    nodes,
			Node: kademlia.Config{K: replication, Alpha: 3},
			Seed: w.Seed,
		})
		if err != nil {
			return nil, nil, err
		}
		eng, err := core.NewEngine(dht.NewOverlay(cl.Nodes[0], nil), core.Config{
			Mode: core.Approximated, K: 5, Seed: w.Seed,
		})
		if err != nil {
			return nil, nil, err
		}

		schedule := w.Schedule()
		if len(schedule) > annotations {
			schedule = schedule[:annotations]
		}
		inserted := map[string]bool{}
		tagPop := map[string]int{}
		for _, a := range schedule {
			if !inserted[a.Resource] {
				if err := eng.InsertResource(context.Background(), a.Resource, "uri:"+a.Resource); err != nil {
					return nil, nil, err
				}
				inserted[a.Resource] = true
			}
			if err := eng.Tag(context.Background(), a.Resource, a.Tag); err != nil {
				return nil, nil, err
			}
			tagPop[a.Tag]++
		}

		// Probe the t̂ blocks of the most popular tags in the slice.
		probes := topTags(tagPop, 30)
		res.ProbeKeys = len(probes)

		rng := rand.New(rand.NewSource(w.Seed + 5))
		alive := make([]bool, nodes)
		for i := range alive {
			alive[i] = true
		}
		liveCount := nodes
		var liveSeries []int
		var avail []float64

		for cycle := 0; cycle < cycles; cycle++ {
			// Kill: never node 0, which hosts the probing engine.
			for k := 0; k < kill; k++ {
				for tries := 0; tries < 10*nodes; tries++ {
					i := 1 + rng.Intn(len(cl.Nodes)-1)
					if i < len(alive) && alive[i] {
						alive[i] = false
						liveCount--
						cl.Net.SetDown(simnet.Addr(cl.Nodes[i].Self().Addr), true)
						break
					}
				}
			}
			// Join fresh nodes via node 0.
			for j := 0; j < join; j++ {
				if _, err := cl.AddNode(context.Background(), kademlia.Config{K: replication, Alpha: 3},
					w.Seed+int64(1000+cycle*join+j), 0); err != nil {
					return nil, nil, err
				}
				alive = append(alive, true)
				liveCount++
			}
			if republish {
				for i, n := range cl.Nodes {
					if i < len(alive) && alive[i] {
						n.RepublishOnce(context.Background())
					}
				}
			}

			found := 0
			for _, tag := range probes {
				if _, err := eng.Store().Get(context.Background(), core.BlockKey(tag, core.BlockTagNeighbors), 1); err == nil {
					found++
				}
			}
			liveSeries = append(liveSeries, liveCount)
			avail = append(avail, float64(found)/float64(len(probes)))
		}
		return liveSeries, avail, nil
	}

	var err error
	if res.Live, res.AvailWith, err = run(true); err != nil {
		return nil, err
	}
	if _, res.AvailWithout, err = run(false); err != nil {
		return nil, err
	}
	return res, nil
}

func topTags(pop map[string]int, n int) []string {
	type tc struct {
		tag string
		n   int
	}
	all := make([]tc, 0, len(pop))
	for t, c := range pop {
		all = append(all, tc{t, c})
	}
	for i := 1; i < len(all); i++ { // insertion sort: small n
		for j := i; j > 0 && (all[j].n > all[j-1].n ||
			(all[j].n == all[j-1].n && all[j].tag < all[j-1].tag)); j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	if len(all) > n {
		all = all[:n]
	}
	out := make([]string, len(all))
	for i, t := range all {
		out[i] = t.tag
	}
	return out
}

// String renders the availability series.
func (r *ChurnResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension A6 — availability under churn (%d nodes, -%d/+%d per cycle, %d probe blocks)\n",
		r.Nodes, r.KillPerCycle, r.JoinPerCycle, r.ProbeKeys)
	fmt.Fprintf(&b, "%6s %6s %18s %18s\n", "cycle", "live", "avail (republish)", "avail (none)")
	for i := range r.AvailWith {
		fmt.Fprintf(&b, "%6d %6d %18.3f %18.3f\n", i+1, r.Live[i], r.AvailWith[i], r.AvailWithout[i])
	}
	b.WriteString("(replica maintenance keeps the index retrievable as the original holders disappear)\n")
	return b.String()
}
