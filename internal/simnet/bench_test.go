package simnet

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

// BenchmarkCallContention measures the per-RPC cost of the network's
// bookkeeping under concurrent callers. Before the map sharding and the
// per-endpoint stats cache, every Call took the network-wide exclusive
// lock twice (once per Stats lookup) plus the global rng mutex, so this
// benchmark collapsed onto those three serial points as callers grew.
func BenchmarkCallContention(b *testing.B) {
	for _, callers := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("callers=%d", callers), func(b *testing.B) {
			n := New(Config{Seed: 1})
			const servers = 64
			targets := make([]Addr, servers)
			for i := range targets {
				targets[i] = Addr(fmt.Sprintf("srv-%d", i))
				n.Attach(targets[i], echo())
			}
			eps := make([]Transport, callers)
			for i := range eps {
				eps[i] = n.Attach(Addr(fmt.Sprintf("cli-%d", i)), echo())
			}
			payload := []byte("0123456789abcdef")
			ctx := context.Background()

			b.ReportAllocs()
			b.SetParallelism((callers + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
			var seq atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				id := int(seq.Add(1)-1) % callers
				ep := eps[id]
				for i := 0; pb.Next(); i++ {
					if _, err := ep.Call(ctx, targets[(id+i)%servers], payload); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
