// Package simnet provides an in-memory message-passing network used to
// run overlay protocols deterministically on one machine.
//
// The unit of communication is a blocking RPC carrying an opaque byte
// payload, mirroring a UDP request/response exchange. The network can
// inject packet loss, enforce a maximum payload size (the paper notes
// that overlay messages travel in UDP packets with a limited payload,
// which motivates DHARMA's index-side filtering), take nodes down, and
// partition pairs of endpoints. All randomness is seeded, so failures
// are reproducible.
//
// Wall-clock time is never consumed: simulated latency is accumulated in
// counters instead of slept, which keeps large experiments fast while
// still reporting how much network time a protocol would have spent.
//
// The network state is sharded: endpoints, down/partition flags, and
// per-node statistics live in numShards stripes keyed by an address
// hash, and each stripe carries its own seeded random source. No
// operation on the hot Call path takes a network-wide lock, which is
// what lets a single Network carry 10k+ endpoints with concurrent
// callers (see BenchmarkCallContention).
package simnet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dharma/internal/admission"
	"dharma/internal/obs"
)

// Addr identifies an endpoint on the network.
type Addr string

// Handler processes one inbound RPC and returns the response payload.
// Handlers are invoked concurrently and must be safe for concurrent use.
// ctx is the server-side context for this request: it ends when the
// caller gives up or the serving transport shuts down, so long-running
// handlers (storage commits, anything that blocks) should watch it and
// stop wasting work that nobody will read.
type Handler interface {
	HandleRPC(ctx context.Context, from Addr, payload []byte) ([]byte, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx context.Context, from Addr, payload []byte) ([]byte, error)

// HandleRPC calls f.
func (f HandlerFunc) HandleRPC(ctx context.Context, from Addr, payload []byte) ([]byte, error) {
	return f(ctx, from, payload)
}

// Transport is the sender side of an endpoint. The kademlia package
// depends only on this interface, so the same protocol code runs over
// simnet and over real UDP (internal/wire).
type Transport interface {
	// Call sends payload to the endpoint at `to` and blocks until the
	// response arrives, the exchange fails, or ctx ends. A cancelled or
	// expired ctx aborts the in-flight wait and returns ctx.Err() — the
	// caller stops waiting immediately; whatever the exchange would have
	// produced is discarded.
	Call(ctx context.Context, to Addr, payload []byte) ([]byte, error)
	// Addr returns the local address of this endpoint.
	Addr() Addr
	// Close detaches the endpoint; subsequent calls fail.
	Close() error
}

// Errors returned by the simulated network. ErrTimeout stands in for
// every silent failure a UDP exchange can suffer (loss, dead peer,
// partition); protocols cannot distinguish those cases in reality
// either.
var (
	ErrTimeout  = errors.New("simnet: request timed out")
	ErrTooLarge = errors.New("simnet: payload exceeds MTU")
	ErrClosed   = errors.New("simnet: endpoint closed")
)

// ErrBusy reports that the remote endpoint rejected the request at
// admission (work queue full or per-peer rate exceeded). Unlike
// ErrTimeout it is an explicit, near-instant answer from a live node:
// callers should back off and retry, not mark the peer dead.
var ErrBusy = admission.ErrBusy

// Config controls fault injection and accounting.
type Config struct {
	// DropRate is the probability in [0,1) that a request/response
	// exchange is lost. Loss is decided once per exchange.
	DropRate float64
	// MTU is the maximum payload size in bytes; 0 means unlimited.
	MTU int
	// LatencyMin and LatencyMax bound the simulated one-way latency,
	// sampled uniformly. Latency is accounted, not slept.
	LatencyMin, LatencyMax time.Duration
	// Seed drives the network's random sources. Each of the numShards
	// stripes derives its own rng from (Seed, shard index), so fault
	// decisions are deterministic per (shard, call sequence within that
	// shard) rather than per global call sequence — reproducible under
	// a fixed seed and schedule, and free of a global rng lock.
	Seed int64
	// Admission configures the per-endpoint overload gate (bounded work
	// queue + per-peer rate limits). The zero value applies the default
	// bounded queue (admission.DefaultQueueDepth) with no rate limit.
	Admission admission.Config
}

// Counters aggregates network-wide accounting. All fields are totals
// since the network was created.
type Counters struct {
	Calls        int64         // RPC exchanges attempted
	Drops        int64         // exchanges lost to injected faults
	Busy         int64         // exchanges rejected at admission (ErrBusy)
	BytesOut     int64         // request payload bytes
	BytesIn      int64         // response payload bytes
	SimulatedRTT time.Duration // accumulated round-trip latency
}

// numShards is the stripe count for the endpoint/down/cut/stats maps
// and the per-stripe rngs. 64 keeps the per-stripe population small
// even at 10k endpoints while the array overhead stays negligible for
// tiny test networks.
const numShards = 64

// shard is one stripe of the network state. The fault-model rng is
// guarded by its own mutex, separate from the map lock, so a drop roll
// never serialises against an Attach/SetDown on the same stripe.
type shard struct {
	mu      sync.RWMutex
	nodes   map[Addr]*endpoint
	down    map[Addr]bool
	cut     map[[2]Addr]bool // directed (src, dst) pairs, keyed by src's shard
	perNode map[Addr]*NodeStats

	rngMu sync.Mutex
	rng   *rand.Rand
}

// Network connects endpoints. The zero value is not usable; call New.
type Network struct {
	cfg      Config
	shards   [numShards]shard
	counters struct {
		calls, drops, busy, bytesOut, bytesIn, rttNanos atomic.Int64
	}
}

// NodeStats counts traffic observed at a single endpoint.
type NodeStats struct {
	Sent     atomic.Int64 // requests originated
	Received atomic.Int64 // requests offered (including admission rejects)
	Busy     atomic.Int64 // requests this endpoint rejected at admission
}

type endpoint struct {
	net     *Network
	addr    Addr
	handler Handler
	ctrl    *admission.Controller
	stats   *NodeStats // this endpoint's own counters, resolved at Attach
	closed  atomic.Bool
}

// New creates an empty network with the given configuration.
func New(cfg Config) *Network {
	if cfg.LatencyMax < cfg.LatencyMin {
		cfg.LatencyMax = cfg.LatencyMin
	}
	n := &Network{cfg: cfg}
	for i := range n.shards {
		s := &n.shards[i]
		s.nodes = make(map[Addr]*endpoint)
		s.down = make(map[Addr]bool)
		s.cut = make(map[[2]Addr]bool)
		s.perNode = make(map[Addr]*NodeStats)
		// Mix the shard index into the seed with a 64-bit odd constant
		// (splitmix64's increment) so adjacent seeds do not produce
		// correlated shard streams.
		s.rng = rand.New(rand.NewSource(cfg.Seed ^ (int64(i+1) * -0x61c8864680b583eb)))
	}
	return n
}

// shardOf maps an address onto its stripe with FNV-1a.
func (n *Network) shardOf(addr Addr) *shard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= 1099511628211
	}
	return &n.shards[h%numShards]
}

// statsLocked returns the per-node counters for addr within s, creating
// them if needed. Callers hold s.mu.
func (s *shard) statsLocked(addr Addr) *NodeStats {
	st, ok := s.perNode[addr]
	if !ok {
		st = &NodeStats{}
		s.perNode[addr] = st
	}
	return st
}

// Attach registers a handler under addr and returns its Transport.
// Attaching an address twice replaces the previous endpoint. The
// endpoint's own stats pointer is resolved here, once, so the Call path
// never looks the sender up again.
func (n *Network) Attach(addr Addr, h Handler) Transport {
	ep := &endpoint{net: n, addr: addr, handler: h, ctrl: admission.New(n.cfg.Admission)}
	s := n.shardOf(addr)
	s.mu.Lock()
	ep.stats = s.statsLocked(addr)
	s.nodes[addr] = ep
	s.mu.Unlock()
	return ep
}

// Detach removes the endpoint at addr, if any.
func (n *Network) Detach(addr Addr) {
	s := n.shardOf(addr)
	s.mu.Lock()
	delete(s.nodes, addr)
	s.mu.Unlock()
}

// SetDown marks addr unreachable (true) or reachable (false) without
// detaching it, simulating a crashed-but-rejoining node.
func (n *Network) SetDown(addr Addr, down bool) {
	s := n.shardOf(addr)
	s.mu.Lock()
	if down {
		s.down[addr] = true
	} else {
		delete(s.down, addr)
	}
	s.mu.Unlock()
}

// Partition cuts (or heals) the link between a and b in both directions.
// Each direction is recorded in the sending side's shard, which is the
// stripe Call already consults for the sender.
func (n *Network) Partition(a, b Addr, cut bool) {
	n.partitionDirected(a, b, cut)
	n.partitionDirected(b, a, cut)
}

func (n *Network) partitionDirected(src, dst Addr, cut bool) {
	s := n.shardOf(src)
	k := [2]Addr{src, dst}
	s.mu.Lock()
	if cut {
		s.cut[k] = true
	} else {
		delete(s.cut, k)
	}
	s.mu.Unlock()
}

// Counters returns a snapshot of network-wide accounting.
func (n *Network) Counters() Counters {
	return Counters{
		Calls:        n.counters.calls.Load(),
		Drops:        n.counters.drops.Load(),
		Busy:         n.counters.busy.Load(),
		BytesOut:     n.counters.bytesOut.Load(),
		BytesIn:      n.counters.bytesIn.Load(),
		SimulatedRTT: time.Duration(n.counters.rttNanos.Load()),
	}
}

// AdmissionStats returns the admission-gate accounting of the endpoint
// attached at addr: what its own controller admitted and rejected. The
// zero Stats is returned when nothing is attached there — per-endpoint
// controllers live and die with their endpoint, unlike the NodeStats
// traffic counters, which outlive detachment.
func (n *Network) AdmissionStats(addr Addr) admission.Stats {
	s := n.shardOf(addr)
	s.mu.RLock()
	ep, ok := s.nodes[addr]
	s.mu.RUnlock()
	if !ok {
		return admission.Stats{}
	}
	return ep.ctrl.Stats()
}

// Instrument registers the network-wide counters on reg as scrape-time
// funcs, so a simulated deployment exposes the same ops surface as a
// real one. A nil reg is a no-op.
func (n *Network) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("dharma_simnet_calls_total",
		"RPC exchanges attempted across the simulated network.", n.counters.calls.Load)
	reg.CounterFunc("dharma_simnet_drops_total",
		"Exchanges lost to injected faults.", n.counters.drops.Load)
	reg.CounterFunc("dharma_simnet_busy_total",
		"Exchanges rejected at admission.", n.counters.busy.Load)
	reg.CounterFunc("dharma_simnet_request_bytes_total",
		"Request payload bytes carried.", n.counters.bytesOut.Load)
	reg.CounterFunc("dharma_simnet_response_bytes_total",
		"Response payload bytes carried.", n.counters.bytesIn.Load)
	reg.CounterFunc("dharma_simnet_simulated_rtt_nanoseconds_total",
		"Accumulated simulated round-trip latency.", n.counters.rttNanos.Load)
}

// Stats returns the per-node counters for addr, creating them if needed
// so that callers can query nodes that have not sent traffic yet. The
// returned pointer is stable for the life of the network; callers that
// poll a node repeatedly should keep it instead of re-resolving.
func (n *Network) Stats(addr Addr) *NodeStats {
	s := n.shardOf(addr)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked(addr)
}

// BusiestNodes returns addresses sorted by requests served, descending.
// It is used by the hotspot experiment (A3). Counts are snapshotted
// once per node, so the sort itself takes no locks.
func (n *Network) BusiestNodes() []Addr {
	type nodeLoad struct {
		addr     Addr
		received int64
	}
	var loads []nodeLoad
	for i := range n.shards {
		s := &n.shards[i]
		s.mu.RLock()
		for a, st := range s.perNode {
			loads = append(loads, nodeLoad{addr: a, received: st.Received.Load()})
		}
		s.mu.RUnlock()
	}
	sort.Slice(loads, func(i, j int) bool {
		if loads[i].received != loads[j].received {
			return loads[i].received > loads[j].received
		}
		return loads[i].addr < loads[j].addr
	})
	out := make([]Addr, len(loads))
	for i, l := range loads {
		out[i] = l.addr
	}
	return out
}

// roll draws this exchange's fault-model outcome from the sender
// shard's rng: deterministic per (shard, sequence of rolls in that
// shard) under a fixed seed.
func (s *shard) roll(cfg *Config) (drop bool, rtt time.Duration) {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	drop = cfg.DropRate > 0 && s.rng.Float64() < cfg.DropRate
	rtt = 2 * cfg.LatencyMin
	if span := cfg.LatencyMax - cfg.LatencyMin; span > 0 {
		rtt = 2 * (cfg.LatencyMin + time.Duration(s.rng.Int63n(int64(span))))
	}
	return drop, rtt
}

// Call implements Transport.
func (ep *endpoint) Call(ctx context.Context, to Addr, payload []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if ep.closed.Load() {
		return nil, ErrClosed
	}
	n := ep.net
	n.counters.calls.Add(1)
	if n.cfg.MTU > 0 && len(payload) > n.cfg.MTU {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooLarge, len(payload), n.cfg.MTU)
	}

	// Sender-side state (down flag, outbound partition cuts) lives in
	// the sender's stripe; the target endpoint and its down flag in the
	// target's. The two reads are sequential, never nested, so equal
	// stripes cannot deadlock.
	src := n.shardOf(ep.addr)
	src.mu.RLock()
	downSrc := src.down[ep.addr]
	cut := src.cut[[2]Addr{ep.addr, to}]
	src.mu.RUnlock()

	dst := n.shardOf(to)
	dst.mu.RLock()
	target, ok := dst.nodes[to]
	downDst := dst.down[to]
	dst.mu.RUnlock()

	drop, rtt := src.roll(&n.cfg)
	if !ok || downSrc || downDst || cut || drop || target.closed.Load() {
		n.counters.drops.Add(1)
		return nil, ErrTimeout
	}

	n.counters.bytesOut.Add(int64(len(payload)))
	n.counters.rttNanos.Add(int64(rtt))
	// Both stats pointers are already resolved: the sender's since
	// Attach, the receiver's on its own endpoint — no network-wide (or
	// even stripe) lock on the per-RPC stats path.
	ep.stats.Sent.Add(1)
	target.stats.Received.Add(1)

	// Admission at the receiver: the target either takes the request into
	// its bounded work queue or answers busy immediately. Rejection is an
	// explicit cheap reply, not silence — distinct from Drops.
	release, aerr := target.ctrl.Admit(string(ep.addr))
	if aerr != nil {
		n.counters.busy.Add(1)
		target.stats.Busy.Add(1)
		return nil, fmt.Errorf("simnet: %s rejected request: %w", to, aerr)
	}

	if ctx.Done() == nil {
		// Uncancellable context (Background/TODO): keep the synchronous
		// fast path — no goroutine per simulated RPC.
		defer release()
		return ep.finish(target.handler.HandleRPC(ctx, ep.addr, payload))
	}
	type handled struct {
		resp []byte
		err  error
	}
	ch := make(chan handled, 1)
	go func() {
		// The handler goroutine holds its admission slot until it
		// finishes, even after the caller below gives up. That is the
		// bound that fixes the cancellation goroutine leak: abandoned
		// handlers can pile up only to QueueDepth before the endpoint
		// starts answering busy instead of spawning more.
		defer release()
		resp, err := target.handler.HandleRPC(ctx, ep.addr, payload)
		ch <- handled{resp, err}
	}()
	select {
	case <-ctx.Done():
		// The waiter is aborted; the handler observes the same ctx and is
		// expected to wind down, though it may well have applied the write
		// already — exactly like a response lost on the wire. Deliberately
		// NOT counted as a drop: Drops measures the injected fault model,
		// and a caller giving up is not simulated packet loss.
		return nil, ctx.Err()
	case h := <-ch:
		return ep.finish(h.resp, h.err)
	}
}

// finish applies the response-side accounting and fault model shared by
// the synchronous and cancellable call paths.
func (ep *endpoint) finish(resp []byte, err error) ([]byte, error) {
	n := ep.net
	if err != nil {
		// A handler error is delivered as a timeout: over UDP the caller
		// would simply never hear back.
		n.counters.drops.Add(1)
		return nil, ErrTimeout
	}
	if n.cfg.MTU > 0 && len(resp) > n.cfg.MTU {
		n.counters.drops.Add(1)
		return nil, fmt.Errorf("%w: response %d > %d", ErrTooLarge, len(resp), n.cfg.MTU)
	}
	n.counters.bytesIn.Add(int64(len(resp)))
	return resp, nil
}

// Addr implements Transport.
func (ep *endpoint) Addr() Addr { return ep.addr }

// Close implements Transport.
func (ep *endpoint) Close() error {
	if ep.closed.CompareAndSwap(false, true) {
		ep.net.Detach(ep.addr)
	}
	return nil
}
