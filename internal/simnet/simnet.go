// Package simnet provides an in-memory message-passing network used to
// run overlay protocols deterministically on one machine.
//
// The unit of communication is a blocking RPC carrying an opaque byte
// payload, mirroring a UDP request/response exchange. The network can
// inject packet loss, enforce a maximum payload size (the paper notes
// that overlay messages travel in UDP packets with a limited payload,
// which motivates DHARMA's index-side filtering), take nodes down, and
// partition pairs of endpoints. All randomness is seeded, so failures
// are reproducible.
//
// Wall-clock time is never consumed: simulated latency is accumulated in
// counters instead of slept, which keeps large experiments fast while
// still reporting how much network time a protocol would have spent.
package simnet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dharma/internal/admission"
)

// Addr identifies an endpoint on the network.
type Addr string

// Handler processes one inbound RPC and returns the response payload.
// Handlers are invoked concurrently and must be safe for concurrent use.
// ctx is the server-side context for this request: it ends when the
// caller gives up or the serving transport shuts down, so long-running
// handlers (storage commits, anything that blocks) should watch it and
// stop wasting work that nobody will read.
type Handler interface {
	HandleRPC(ctx context.Context, from Addr, payload []byte) ([]byte, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx context.Context, from Addr, payload []byte) ([]byte, error)

// HandleRPC calls f.
func (f HandlerFunc) HandleRPC(ctx context.Context, from Addr, payload []byte) ([]byte, error) {
	return f(ctx, from, payload)
}

// Transport is the sender side of an endpoint. The kademlia package
// depends only on this interface, so the same protocol code runs over
// simnet and over real UDP (internal/wire).
type Transport interface {
	// Call sends payload to the endpoint at `to` and blocks until the
	// response arrives, the exchange fails, or ctx ends. A cancelled or
	// expired ctx aborts the in-flight wait and returns ctx.Err() — the
	// caller stops waiting immediately; whatever the exchange would have
	// produced is discarded.
	Call(ctx context.Context, to Addr, payload []byte) ([]byte, error)
	// Addr returns the local address of this endpoint.
	Addr() Addr
	// Close detaches the endpoint; subsequent calls fail.
	Close() error
}

// Errors returned by the simulated network. ErrTimeout stands in for
// every silent failure a UDP exchange can suffer (loss, dead peer,
// partition); protocols cannot distinguish those cases in reality
// either.
var (
	ErrTimeout  = errors.New("simnet: request timed out")
	ErrTooLarge = errors.New("simnet: payload exceeds MTU")
	ErrClosed   = errors.New("simnet: endpoint closed")
)

// ErrBusy reports that the remote endpoint rejected the request at
// admission (work queue full or per-peer rate exceeded). Unlike
// ErrTimeout it is an explicit, near-instant answer from a live node:
// callers should back off and retry, not mark the peer dead.
var ErrBusy = admission.ErrBusy

// Config controls fault injection and accounting.
type Config struct {
	// DropRate is the probability in [0,1) that a request/response
	// exchange is lost. Loss is decided once per exchange.
	DropRate float64
	// MTU is the maximum payload size in bytes; 0 means unlimited.
	MTU int
	// LatencyMin and LatencyMax bound the simulated one-way latency,
	// sampled uniformly. Latency is accounted, not slept.
	LatencyMin, LatencyMax time.Duration
	// Seed drives the network's private random source.
	Seed int64
	// Admission configures the per-endpoint overload gate (bounded work
	// queue + per-peer rate limits). The zero value applies the default
	// bounded queue (admission.DefaultQueueDepth) with no rate limit.
	Admission admission.Config
}

// Counters aggregates network-wide accounting. All fields are totals
// since the network was created.
type Counters struct {
	Calls        int64         // RPC exchanges attempted
	Drops        int64         // exchanges lost to injected faults
	Busy         int64         // exchanges rejected at admission (ErrBusy)
	BytesOut     int64         // request payload bytes
	BytesIn      int64         // response payload bytes
	SimulatedRTT time.Duration // accumulated round-trip latency
}

// Network connects endpoints. The zero value is not usable; call New.
type Network struct {
	cfg Config

	mu       sync.RWMutex
	nodes    map[Addr]*endpoint
	down     map[Addr]bool
	cut      map[[2]Addr]bool
	rng      *rand.Rand
	rngMu    sync.Mutex
	perNode  map[Addr]*NodeStats
	counters struct {
		calls, drops, busy, bytesOut, bytesIn, rttNanos atomic.Int64
	}
}

// NodeStats counts traffic observed at a single endpoint.
type NodeStats struct {
	Sent     atomic.Int64 // requests originated
	Received atomic.Int64 // requests offered (including admission rejects)
	Busy     atomic.Int64 // requests this endpoint rejected at admission
}

type endpoint struct {
	net     *Network
	addr    Addr
	handler Handler
	ctrl    *admission.Controller
	closed  atomic.Bool
}

// New creates an empty network with the given configuration.
func New(cfg Config) *Network {
	if cfg.LatencyMax < cfg.LatencyMin {
		cfg.LatencyMax = cfg.LatencyMin
	}
	return &Network{
		cfg:     cfg,
		nodes:   make(map[Addr]*endpoint),
		down:    make(map[Addr]bool),
		cut:     make(map[[2]Addr]bool),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		perNode: make(map[Addr]*NodeStats),
	}
}

// Attach registers a handler under addr and returns its Transport.
// Attaching an address twice replaces the previous endpoint.
func (n *Network) Attach(addr Addr, h Handler) Transport {
	ep := &endpoint{net: n, addr: addr, handler: h, ctrl: admission.New(n.cfg.Admission)}
	n.mu.Lock()
	n.nodes[addr] = ep
	if _, ok := n.perNode[addr]; !ok {
		n.perNode[addr] = &NodeStats{}
	}
	n.mu.Unlock()
	return ep
}

// Detach removes the endpoint at addr, if any.
func (n *Network) Detach(addr Addr) {
	n.mu.Lock()
	delete(n.nodes, addr)
	n.mu.Unlock()
}

// SetDown marks addr unreachable (true) or reachable (false) without
// detaching it, simulating a crashed-but-rejoining node.
func (n *Network) SetDown(addr Addr, down bool) {
	n.mu.Lock()
	if down {
		n.down[addr] = true
	} else {
		delete(n.down, addr)
	}
	n.mu.Unlock()
}

// Partition cuts (or heals) the link between a and b in both directions.
func (n *Network) Partition(a, b Addr, cut bool) {
	k1 := [2]Addr{a, b}
	k2 := [2]Addr{b, a}
	n.mu.Lock()
	if cut {
		n.cut[k1], n.cut[k2] = true, true
	} else {
		delete(n.cut, k1)
		delete(n.cut, k2)
	}
	n.mu.Unlock()
}

// Counters returns a snapshot of network-wide accounting.
func (n *Network) Counters() Counters {
	return Counters{
		Calls:        n.counters.calls.Load(),
		Drops:        n.counters.drops.Load(),
		Busy:         n.counters.busy.Load(),
		BytesOut:     n.counters.bytesOut.Load(),
		BytesIn:      n.counters.bytesIn.Load(),
		SimulatedRTT: time.Duration(n.counters.rttNanos.Load()),
	}
}

// Stats returns the per-node counters for addr, creating them if needed
// so that callers can query nodes that have not sent traffic yet.
func (n *Network) Stats(addr Addr) *NodeStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	st, ok := n.perNode[addr]
	if !ok {
		st = &NodeStats{}
		n.perNode[addr] = st
	}
	return st
}

// BusiestNodes returns addresses sorted by requests served, descending.
// It is used by the hotspot experiment (A3).
func (n *Network) BusiestNodes() []Addr {
	n.mu.RLock()
	addrs := make([]Addr, 0, len(n.perNode))
	for a := range n.perNode {
		addrs = append(addrs, a)
	}
	n.mu.RUnlock()
	sort.Slice(addrs, func(i, j int) bool {
		ri := n.Stats(addrs[i]).Received.Load()
		rj := n.Stats(addrs[j]).Received.Load()
		if ri != rj {
			return ri > rj
		}
		return addrs[i] < addrs[j]
	})
	return addrs
}

func (n *Network) roll() (drop bool, rtt time.Duration) {
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	drop = n.cfg.DropRate > 0 && n.rng.Float64() < n.cfg.DropRate
	rtt = 2 * n.cfg.LatencyMin
	if span := n.cfg.LatencyMax - n.cfg.LatencyMin; span > 0 {
		rtt = 2 * (n.cfg.LatencyMin + time.Duration(n.rng.Int63n(int64(span))))
	}
	return drop, rtt
}

// Call implements Transport.
func (ep *endpoint) Call(ctx context.Context, to Addr, payload []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if ep.closed.Load() {
		return nil, ErrClosed
	}
	n := ep.net
	n.counters.calls.Add(1)
	if n.cfg.MTU > 0 && len(payload) > n.cfg.MTU {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooLarge, len(payload), n.cfg.MTU)
	}

	n.mu.RLock()
	target, ok := n.nodes[to]
	downSrc := n.down[ep.addr]
	downDst := n.down[to]
	cut := n.cut[[2]Addr{ep.addr, to}]
	n.mu.RUnlock()

	drop, rtt := n.roll()
	if !ok || downSrc || downDst || cut || drop || target.closed.Load() {
		n.counters.drops.Add(1)
		return nil, ErrTimeout
	}

	n.counters.bytesOut.Add(int64(len(payload)))
	n.counters.rttNanos.Add(int64(rtt))
	n.Stats(ep.addr).Sent.Add(1)
	n.Stats(to).Received.Add(1)

	// Admission at the receiver: the target either takes the request into
	// its bounded work queue or answers busy immediately. Rejection is an
	// explicit cheap reply, not silence — distinct from Drops.
	release, aerr := target.ctrl.Admit(string(ep.addr))
	if aerr != nil {
		n.counters.busy.Add(1)
		n.Stats(to).Busy.Add(1)
		return nil, fmt.Errorf("simnet: %s rejected request: %w", to, aerr)
	}

	if ctx.Done() == nil {
		// Uncancellable context (Background/TODO): keep the synchronous
		// fast path — no goroutine per simulated RPC.
		defer release()
		return ep.finish(target.handler.HandleRPC(ctx, ep.addr, payload))
	}
	type handled struct {
		resp []byte
		err  error
	}
	ch := make(chan handled, 1)
	go func() {
		// The handler goroutine holds its admission slot until it
		// finishes, even after the caller below gives up. That is the
		// bound that fixes the cancellation goroutine leak: abandoned
		// handlers can pile up only to QueueDepth before the endpoint
		// starts answering busy instead of spawning more.
		defer release()
		resp, err := target.handler.HandleRPC(ctx, ep.addr, payload)
		ch <- handled{resp, err}
	}()
	select {
	case <-ctx.Done():
		// The waiter is aborted; the handler observes the same ctx and is
		// expected to wind down, though it may well have applied the write
		// already — exactly like a response lost on the wire. Deliberately
		// NOT counted as a drop: Drops measures the injected fault model,
		// and a caller giving up is not simulated packet loss.
		return nil, ctx.Err()
	case h := <-ch:
		return ep.finish(h.resp, h.err)
	}
}

// finish applies the response-side accounting and fault model shared by
// the synchronous and cancellable call paths.
func (ep *endpoint) finish(resp []byte, err error) ([]byte, error) {
	n := ep.net
	if err != nil {
		// A handler error is delivered as a timeout: over UDP the caller
		// would simply never hear back.
		n.counters.drops.Add(1)
		return nil, ErrTimeout
	}
	if n.cfg.MTU > 0 && len(resp) > n.cfg.MTU {
		n.counters.drops.Add(1)
		return nil, fmt.Errorf("%w: response %d > %d", ErrTooLarge, len(resp), n.cfg.MTU)
	}
	n.counters.bytesIn.Add(int64(len(resp)))
	return resp, nil
}

// Addr implements Transport.
func (ep *endpoint) Addr() Addr { return ep.addr }

// Close implements Transport.
func (ep *endpoint) Close() error {
	if ep.closed.CompareAndSwap(false, true) {
		ep.net.Detach(ep.addr)
	}
	return nil
}
