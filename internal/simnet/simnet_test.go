package simnet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func echo() Handler {
	return HandlerFunc(func(_ context.Context, from Addr, p []byte) ([]byte, error) {
		return append([]byte("echo:"), p...), nil
	})
}

func TestCallDelivers(t *testing.T) {
	n := New(Config{})
	a := n.Attach("a", echo())
	n.Attach("b", echo())

	resp, err := a.Call(context.Background(), "b", []byte("hi"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if !bytes.Equal(resp, []byte("echo:hi")) {
		t.Fatalf("resp = %q", resp)
	}
}

func TestCallUnknownAddr(t *testing.T) {
	n := New(Config{})
	a := n.Attach("a", echo())
	if _, err := a.Call(context.Background(), "ghost", []byte("x")); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
}

func TestHandlerErrorBecomesTimeout(t *testing.T) {
	n := New(Config{})
	a := n.Attach("a", echo())
	n.Attach("bad", HandlerFunc(func(context.Context, Addr, []byte) ([]byte, error) {
		return nil, errors.New("boom")
	}))
	if _, err := a.Call(context.Background(), "bad", nil); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
}

func TestMTUEnforced(t *testing.T) {
	n := New(Config{MTU: 8})
	a := n.Attach("a", echo())
	n.Attach("b", echo())

	if _, err := a.Call(context.Background(), "b", make([]byte, 9)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("request over MTU: want ErrTooLarge, got %v", err)
	}
	// "echo:" + 4 bytes = 9 > 8: the response violates the MTU.
	if _, err := a.Call(context.Background(), "b", make([]byte, 4)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("response over MTU: want ErrTooLarge, got %v", err)
	}
	// 3-byte request gives an 8-byte response: fits.
	if _, err := a.Call(context.Background(), "b", make([]byte, 3)); err != nil {
		t.Fatalf("within MTU: %v", err)
	}
}

func TestDropRateDeterministic(t *testing.T) {
	run := func() (drops int64) {
		n := New(Config{DropRate: 0.3, Seed: 42})
		a := n.Attach("a", echo())
		n.Attach("b", echo())
		for i := 0; i < 1000; i++ {
			a.Call(context.Background(), "b", []byte("x")) //nolint:errcheck // counting drops below
		}
		return n.Counters().Drops
	}
	d1, d2 := run(), run()
	if d1 != d2 {
		t.Fatalf("same seed produced different drop counts: %d vs %d", d1, d2)
	}
	if d1 < 200 || d1 > 400 {
		t.Fatalf("drop count %d far from expected ~300", d1)
	}
}

func TestSetDownAndRecover(t *testing.T) {
	n := New(Config{})
	a := n.Attach("a", echo())
	n.Attach("b", echo())

	n.SetDown("b", true)
	if _, err := a.Call(context.Background(), "b", nil); !errors.Is(err, ErrTimeout) {
		t.Fatalf("down node reachable: %v", err)
	}
	n.SetDown("b", false)
	if _, err := a.Call(context.Background(), "b", nil); err != nil {
		t.Fatalf("recovered node unreachable: %v", err)
	}
}

func TestPartition(t *testing.T) {
	n := New(Config{})
	a := n.Attach("a", echo())
	b := n.Attach("b", echo())
	n.Attach("c", echo())

	n.Partition("a", "b", true)
	if _, err := a.Call(context.Background(), "b", nil); !errors.Is(err, ErrTimeout) {
		t.Fatal("partition a->b not enforced")
	}
	if _, err := b.Call(context.Background(), "a", nil); !errors.Is(err, ErrTimeout) {
		t.Fatal("partition b->a not enforced")
	}
	if _, err := a.Call(context.Background(), "c", nil); err != nil {
		t.Fatalf("unrelated link affected: %v", err)
	}
	n.Partition("a", "b", false)
	if _, err := a.Call(context.Background(), "b", nil); err != nil {
		t.Fatalf("healed link still cut: %v", err)
	}
}

func TestClose(t *testing.T) {
	n := New(Config{})
	a := n.Attach("a", echo())
	b := n.Attach("b", echo())
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := a.Call(context.Background(), "b", nil); !errors.Is(err, ErrTimeout) {
		t.Fatal("closed endpoint still reachable")
	}
	if _, err := b.Call(context.Background(), "a", nil); !errors.Is(err, ErrClosed) {
		t.Fatal("closed endpoint can still send")
	}
}

func TestCountersAndStats(t *testing.T) {
	n := New(Config{LatencyMin: time.Millisecond, LatencyMax: 2 * time.Millisecond})
	a := n.Attach("a", echo())
	n.Attach("b", echo())

	const calls = 10
	for i := 0; i < calls; i++ {
		if _, err := a.Call(context.Background(), "b", []byte("1234")); err != nil {
			t.Fatal(err)
		}
	}
	c := n.Counters()
	if c.Calls != calls {
		t.Fatalf("Calls = %d, want %d", c.Calls, calls)
	}
	if c.BytesOut != 4*calls {
		t.Fatalf("BytesOut = %d, want %d", c.BytesOut, 4*calls)
	}
	if c.BytesIn != int64((4+5)*calls) {
		t.Fatalf("BytesIn = %d, want %d", c.BytesIn, (4+5)*calls)
	}
	// Accumulated RTT must be within [2*min, 2*max] per call.
	if c.SimulatedRTT < 2*time.Millisecond*calls || c.SimulatedRTT > 4*time.Millisecond*calls {
		t.Fatalf("SimulatedRTT = %v out of range", c.SimulatedRTT)
	}
	if got := n.Stats("a").Sent.Load(); got != calls {
		t.Fatalf("a.Sent = %d, want %d", got, calls)
	}
	if got := n.Stats("b").Received.Load(); got != calls {
		t.Fatalf("b.Received = %d, want %d", got, calls)
	}
}

func TestBusiestNodes(t *testing.T) {
	n := New(Config{})
	a := n.Attach("a", echo())
	n.Attach("b", echo())
	n.Attach("c", echo())
	for i := 0; i < 5; i++ {
		a.Call(context.Background(), "b", nil) //nolint:errcheck
	}
	for i := 0; i < 2; i++ {
		a.Call(context.Background(), "c", nil) //nolint:errcheck
	}
	order := n.BusiestNodes()
	if len(order) != 3 || order[0] != "b" || order[1] != "c" {
		t.Fatalf("BusiestNodes = %v", order)
	}
}

func TestConcurrentCalls(t *testing.T) {
	n := New(Config{})
	var served sync.Map
	for i := 0; i < 8; i++ {
		addr := Addr(fmt.Sprintf("srv-%d", i))
		n.Attach(addr, HandlerFunc(func(_ context.Context, from Addr, p []byte) ([]byte, error) {
			served.Store(string(p), true)
			return p, nil
		}))
	}
	client := n.Attach("client", echo())

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				to := Addr(fmt.Sprintf("srv-%d", (g+i)%8))
				msg := fmt.Sprintf("g%d-i%d", g, i)
				if _, err := client.Call(context.Background(), to, []byte(msg)); err != nil {
					t.Errorf("Call: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	count := 0
	served.Range(func(_, _ any) bool { count++; return true })
	if count != 16*50 {
		t.Fatalf("served %d distinct messages, want %d", count, 16*50)
	}
}

// TestCallCtxAbortsHungHandler: a handler that never returns must not
// hold the caller hostage — a context deadline aborts the in-flight
// wait while the handler goroutine finishes on its own.
func TestCallCtxAbortsHungHandler(t *testing.T) {
	n := New(Config{})
	block := make(chan struct{})
	defer close(block)
	n.Attach("hung", HandlerFunc(func(context.Context, Addr, []byte) ([]byte, error) {
		<-block
		return nil, nil
	}))
	a := n.Attach("a", echo())

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := a.Call(ctx, "hung", []byte("x"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Call to hung handler = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Call took %v; the deadline should abort the wait", elapsed)
	}

	// A pre-canceled context refuses before any network accounting.
	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	if _, err := a.Call(cctx, "hung", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("Call under canceled ctx = %v, want Canceled", err)
	}
}
