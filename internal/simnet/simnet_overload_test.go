package simnet

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"dharma/internal/admission"
)

// TestCancelStormBoundsGoroutines is the regression test for the
// cancellation goroutine leak: 10k in-flight cancellable RPCs against a
// handler that never returns (and ignores its ctx) used to leave 10k
// blocked handler goroutines behind. With a bounded work queue the
// endpoint admits at most QueueDepth of them and answers busy to the
// rest, so the goroutine count stays pinned near the cap.
func TestCancelStormBoundsGoroutines(t *testing.T) {
	const (
		queueDepth = 32
		callers    = 10_000
	)
	n := New(Config{Admission: admission.Config{QueueDepth: queueDepth}})
	block := make(chan struct{})
	n.Attach("hung", HandlerFunc(func(context.Context, Addr, []byte) ([]byte, error) {
		<-block // deliberately deaf to ctx: the worst-case handler
		return nil, nil
	}))
	a := n.Attach("a", echo())

	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var busy, canceled sync.Map // caller index -> true
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := a.Call(ctx, "hung", []byte("x"))
			switch {
			case errors.Is(err, ErrBusy):
				busy.Store(i, true)
			case errors.Is(err, context.Canceled):
				canceled.Store(i, true)
			}
		}(i)
	}
	// Let admission engage before cancelling: the spawn loop races
	// cancel() on small GOMAXPROCS, and a caller that only gets scheduled
	// after cancellation bails at Call's entry ctx check without ever
	// reaching the queue. The deaf handler never releases its slots, so
	// once more than queueDepth callers have entered, a busy answer is
	// guaranteed and the counter is monotonic.
	waitUntil(t, 10*time.Second, func() bool { return n.Counters().Busy > 0 })
	cancel()
	wg.Wait()

	// Callers are gone; only admitted handler goroutines (≤ queueDepth)
	// may remain. Allow generous slack for runtime/test goroutines.
	deadline := time.Now().Add(5 * time.Second)
	budget := before + queueDepth + 50
	var now int
	for {
		now = runtime.NumGoroutine()
		if now <= budget || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if now > budget {
		t.Fatalf("goroutines after cancel storm = %d, budget %d (before=%d, cap=%d): handler goroutines are unbounded",
			now, budget, before, queueDepth)
	}

	nBusy, nCanceled := mapLen(&busy), mapLen(&canceled)
	if nBusy == 0 {
		t.Fatal("no caller saw ErrBusy; admission did not engage")
	}
	if nBusy+nCanceled != callers {
		t.Fatalf("busy(%d) + canceled(%d) != callers(%d)", nBusy, nCanceled, callers)
	}
	if got := n.Counters().Busy; got != int64(nBusy) {
		t.Fatalf("Counters().Busy = %d, want %d", got, nBusy)
	}
	if got := n.Stats("hung").Busy.Load(); got != int64(nBusy) {
		t.Fatalf(`Stats("hung").Busy = %d, want %d`, got, nBusy)
	}

	// Unblocking the handler drains the queue and frees every slot: the
	// endpoint must accept new work again.
	close(block)
	waitUntil(t, 5*time.Second, func() bool {
		_, err := a.Call(context.Background(), "hung", nil)
		return err == nil
	})
}

// TestBusyAfterQueueDrain: busy is a transient answer — once in-flight
// work completes, the same endpoint admits again without reattachment.
func TestBusyAfterQueueDrain(t *testing.T) {
	n := New(Config{Admission: admission.Config{QueueDepth: 1}})
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	n.Attach("srv", HandlerFunc(func(_ context.Context, _ Addr, p []byte) ([]byte, error) {
		entered <- struct{}{}
		<-gate
		return p, nil
	}))
	a := n.Attach("a", echo())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := a.Call(ctx, "srv", []byte("first"))
		done <- err
	}()
	<-entered // the single slot is now held

	if _, err := a.Call(context.Background(), "srv", []byte("second")); !errors.Is(err, ErrBusy) {
		t.Fatalf("call against a full depth-1 queue: got %v, want ErrBusy", err)
	}

	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("first call: %v", err)
	}
	if _, err := a.Call(context.Background(), "srv", []byte("third")); err != nil {
		t.Fatalf("call after drain: %v", err)
	}
}

// TestPerPeerRateLimitIsolatesPeers: a hog exceeding its token bucket is
// rejected while an independent peer is untouched.
func TestPerPeerRateLimitIsolatesPeers(t *testing.T) {
	n := New(Config{Admission: admission.Config{PerPeerRate: 1, PerPeerBurst: 4}})
	n.Attach("srv", echo())
	hog := n.Attach("hog", echo())
	quiet := n.Attach("quiet", echo())

	var hogBusy int
	for i := 0; i < 20; i++ {
		if _, err := hog.Call(context.Background(), "srv", nil); errors.Is(err, ErrBusy) {
			hogBusy++
		}
	}
	if hogBusy == 0 {
		t.Fatal("hog was never rate-limited")
	}
	if _, err := quiet.Call(context.Background(), "srv", nil); err != nil {
		t.Fatalf("quiet peer rejected alongside the hog: %v", err)
	}
}

func mapLen(m *sync.Map) int {
	c := 0
	m.Range(func(_, _ any) bool { c++; return true })
	return c
}

func waitUntil(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached before timeout")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
