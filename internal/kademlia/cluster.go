package kademlia

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"

	"dharma/internal/kadid"
	"dharma/internal/likir"
	"dharma/internal/persist"
	"dharma/internal/simnet"
	"dharma/internal/wire"
)

// BootstrapMode selects how NewCluster populates routing tables.
type BootstrapMode int

const (
	// BootstrapIterative joins every node through node 0 with a
	// self-lookup, exactly as a real deployment would (the default).
	// Network-faithful, but the join RPCs make construction super-linear
	// in cluster size: fine to a few hundred nodes, minutes at 10k.
	BootstrapIterative BootstrapMode = iota
	// BootstrapWired computes every routing table offline from the full
	// membership — no join RPCs at all. Construction is O(n·log n):
	// member IDs are sorted once, and each node's bucket i is a
	// contiguous slice of the sorted order (the IDs sharing its first i
	// bits and differing at bit i), found by narrowing binary search.
	// Buckets hold the same neighbours a converged iterative join finds
	// (deep buckets exactly; shallow, over-full buckets a deterministic
	// stride sample), so lookup behaviour matches a warmed-up overlay.
	// This is what makes a 10k-node simnet buildable in seconds.
	BootstrapWired
)

// ClusterConfig describes an in-process overlay for experiments, tests
// and examples.
type ClusterConfig struct {
	// N is the number of nodes (at least 1).
	N int
	// Node is the per-node protocol configuration.
	Node Config
	// Net configures the simulated network.
	Net simnet.Config
	// Seed drives node identifier generation and refresh randomness.
	Seed int64
	// Authority, when set, issues a Likir identity to every node and
	// enables credential checking cluster-wide (Node.CAPub is filled).
	Authority *likir.Authority
	// RefreshRounds runs extra random lookups per node after joining to
	// densify routing tables. 0 keeps plain bootstrap.
	RefreshRounds int
	// Bootstrap selects how routing tables are populated (zero value:
	// BootstrapIterative). Large clusters should use BootstrapWired.
	Bootstrap BootstrapMode
	// DataDir, when set, gives every node a durable block store under
	// DataDir/<node-address>: writes are logged before they are
	// acknowledged, Crash models a process kill, and Revive recovers
	// the node's blocks from disk instead of reusing the retained
	// in-memory store.
	DataDir string
	// Persist configures the per-node write-ahead logs (zero value:
	// defaults; simulated clusters usually set Sync: persist.SyncNone,
	// which still survives the simulated process kill).
	Persist persist.Options
}

// Cluster is a set of overlay nodes wired through one simulated
// network. Node 0 acts as the bootstrap seed.
//
// Direct access to Nodes is safe while membership is static (the common
// case: build the cluster, then drive it). When nodes churn in while
// other goroutines run — a load generator against a growing overlay —
// use AddNode together with NodeAt/Len/Snapshot, which share a lock.
type Cluster struct {
	Net   *simnet.Network
	Nodes []*Node

	dataDir     string          // root of per-node durable stores ("" = in-memory)
	persistOpts persist.Options // write-ahead-log options for durable stores

	mu     sync.RWMutex   // guards Nodes, minted and maint against concurrent membership changes
	minted int            // addresses handed out; never reused (even across RemoveNode/Crash), so joins cannot shadow a dead endpoint
	maint  *MaintainerSet // active maintenance pool, if any; membership changes keep it in sync
}

// NewCluster builds and joins an N-node overlay. Every node bootstraps
// against node 0, which mirrors how a deployment uses a well-known
// rendezvous node.
func NewCluster(cc ClusterConfig) (*Cluster, error) {
	if cc.N < 1 {
		return nil, fmt.Errorf("kademlia: cluster needs at least 1 node, got %d", cc.N)
	}
	rng := rand.New(rand.NewSource(cc.Seed))
	net := simnet.New(cc.Net)
	cl := &Cluster{
		Net: net, Nodes: make([]*Node, cc.N), minted: cc.N,
		dataDir: cc.DataDir, persistOpts: cc.Persist,
	}

	for i := 0; i < cc.N; i++ {
		cfg := cc.Node
		var id kadid.ID
		if cc.Authority != nil {
			ident, err := cc.Authority.Issue(deterministicReader{rng}, fmt.Sprintf("node-%d", i))
			if err != nil {
				return nil, fmt.Errorf("kademlia: issue identity: %w", err)
			}
			cfg.Identity = ident
			cfg.CAPub = cc.Authority.PublicKey()
		} else {
			id = kadid.Random(rng)
		}
		addr := fmt.Sprintf("node-%d", i)
		if cl.dataDir != "" {
			store, _, err := OpenDurableStore(cl.nodeDir(addr), cl.persistOpts)
			if err != nil {
				return nil, fmt.Errorf("kademlia: node %d: %w", i, err)
			}
			cfg.Store = store
		}
		node := NewNode(id, cfg)
		tr := net.Attach(simnet.Addr(addr), node)
		node.Attach(tr)
		cl.Nodes[i] = node
	}

	if cc.Bootstrap == BootstrapWired {
		wireTables(cl.Nodes)
	} else {
		seed := cl.Nodes[0].Self()
		for i := 1; i < cc.N; i++ {
			if err := cl.Nodes[i].Bootstrap(context.Background(), []wire.Contact{seed}); err != nil {
				return nil, fmt.Errorf("kademlia: bootstrap node %d: %w", i, err)
			}
		}
	}
	for r := 0; r < cc.RefreshRounds; r++ {
		for _, n := range cl.Nodes {
			n.IterativeFindNode(context.Background(), kadid.Random(rng))
		}
	}
	return cl, nil
}

// wireTables fills every node's routing table directly from the full
// membership, the offline equivalent of a fully converged join.
//
// The member IDs are sorted once as 160-bit integers. For a node x,
// consider the range R_i of sorted members sharing x's first i bits:
// R_0 is everything, and R_{i+1} is the half of R_i on x's side of bit
// i. The other half — members sharing exactly i leading bits with x —
// is precisely x's bucket i, so one pass that repeatedly splits the
// current range at bit i (binary search inside the range) enumerates
// every non-empty bucket in O(log² n) per node, no RPCs.
//
// A bucket range with at most k members is inserted whole — deep
// buckets therefore hold exactly the node's true nearest neighbours. An
// over-full range contributes a deterministic stride sample of k, which
// mirrors the arbitrary-but-fixed subset a converged real overlay
// settles on.
func wireTables(nodes []*Node) {
	type member struct {
		id      kadid.ID
		contact wire.Contact
	}
	sorted := make([]member, len(nodes))
	for i, n := range nodes {
		sorted[i] = member{id: n.id, contact: n.Self()}
	}
	sort.Slice(sorted, func(i, j int) bool { return kadid.Cmp(sorted[i].id, sorted[j].id) < 0 })

	for _, n := range nodes {
		k := n.cfg.K
		lo, hi := 0, len(sorted) // bounds of R_i in sorted order
		for i := 0; i < kadid.Bits && hi-lo > 1; i++ {
			// Members with bit i clear sort before those with it set.
			mid := lo + sort.Search(hi-lo, func(j int) bool { return sorted[lo+j].id.Bit(i) })
			var blo, bhi int // bucket i: the half not containing x
			if n.id.Bit(i) {
				blo, bhi = lo, mid
				lo = mid
			} else {
				blo, bhi = mid, hi
				hi = mid
			}
			if span := bhi - blo; span <= k {
				for j := blo; j < bhi; j++ {
					n.table.Update(sorted[j].contact)
				}
			} else {
				step := span / k
				for j := 0; j < k; j++ {
					n.table.Update(sorted[blo+j*step].contact)
				}
			}
		}
	}
}

// AddNode joins one more node to a running cluster (churn-in). The new
// node bootstraps through the given existing member; ctx bounds the
// bootstrap — a join against a wedged seed returns when the caller
// gives up instead of hanging membership forever. AddNode is safe to
// call while other goroutines read membership through NodeAt/Len/
// Snapshot.
func (c *Cluster) AddNode(ctx context.Context, cfg Config, seed int64, via int) (*Node, error) {
	rng := rand.New(rand.NewSource(seed))

	c.mu.Lock()
	addr := simnet.Addr(fmt.Sprintf("node-%d", c.minted))
	c.minted++
	seedContact := c.Nodes[via].Self()
	c.mu.Unlock()

	if c.dataDir != "" {
		store, _, err := OpenDurableStore(c.nodeDir(string(addr)), c.persistOpts)
		if err != nil {
			return nil, err
		}
		cfg.Store = store
	}
	node := NewNode(kadid.Random(rng), cfg)

	node.Attach(c.Net.Attach(addr, node))
	if err := node.Bootstrap(ctx, []wire.Contact{seedContact}); err != nil {
		node.Shutdown() //nolint:errcheck // join failed; leave disk state for a later retry
		return nil, err
	}
	c.mu.Lock()
	c.Nodes = append(c.Nodes, node)
	c.mu.Unlock()
	c.notifyJoin(node)
	return node, nil
}

// nodeDir is where a node's durable store lives; addresses are unique
// for the life of the cluster (minted, never reused), so the mapping is
// stable across crashes and revivals.
func (c *Cluster) nodeDir(addr string) string {
	return filepath.Join(c.dataDir, addr)
}

// Durable reports whether the cluster's nodes persist their stores.
func (c *Cluster) Durable() bool { return c.dataDir != "" }

// Shutdown cleanly stops every current member: detach, flush and close
// durable stores. Crashed (removed-from-membership) nodes are not
// touched — their logs already ended, cleanly or not.
func (c *Cluster) Shutdown() {
	for _, n := range c.Snapshot() {
		n.Shutdown() //nolint:errcheck // best-effort teardown
	}
}

// notifyJoin and notifyLeave keep the active maintenance pool aligned
// with membership (see StartMaintenance).
func (c *Cluster) notifyJoin(n *Node) {
	c.mu.RLock()
	set := c.maint
	c.mu.RUnlock()
	if set != nil {
		set.add(n)
	}
}

func (c *Cluster) notifyLeave(n *Node) {
	c.mu.RLock()
	set := c.maint
	c.mu.RUnlock()
	if set != nil {
		set.remove(n)
	}
}

// NodeAt returns the i-th member under the membership lock, or nil when
// the index is out of range — membership shrinks under RemoveNode and
// Crash, so an index observed through Len may be stale by the time it
// is dereferenced.
func (c *Cluster) NodeAt(i int) *Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if i < 0 || i >= len(c.Nodes) {
		return nil
	}
	return c.Nodes[i]
}

// Len returns the current membership size under the lock.
func (c *Cluster) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.Nodes)
}

// Snapshot returns a copy of the current membership slice; the copy is
// safe to range over while nodes keep joining.
func (c *Cluster) Snapshot() []*Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]*Node(nil), c.Nodes...)
}

// Contacts returns the contact of every cluster node.
func (c *Cluster) Contacts() []wire.Contact {
	nodes := c.Snapshot()
	out := make([]wire.Contact, len(nodes))
	for i, n := range nodes {
		out[i] = n.Self()
	}
	return out
}

// ClosestGroundTruth returns the true k closest node contacts to target
// across the whole cluster — the oracle lookups are validated against.
func (c *Cluster) ClosestGroundTruth(target kadid.ID, k int) []wire.Contact {
	all := c.Contacts()
	sortContactsByDistance(all, target)
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// deterministicReader adapts a *rand.Rand to io.Reader for key
// generation, keeping cluster construction reproducible under a seed.
type deterministicReader struct{ r *rand.Rand }

func (d deterministicReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}
