package kademlia

import (
	"sort"
	"sync"

	"dharma/internal/kadid"
	"dharma/internal/wire"
)

// Store is a node's local block storage. A block is a weighted set of
// fields: DHARMA appends "+1 tokens" to a (block, field) pair, so the
// only mutation is a commutative merge, which is what makes concurrent
// tagging race-free (Approximation B relies on this).
type Store struct {
	mu     sync.RWMutex
	blocks map[kadid.ID]map[string]*storedEntry
}

type storedEntry struct {
	count  uint64
	data   []byte
	author []byte
	sig    []byte
}

// NewStore creates an empty block store.
func NewStore() *Store {
	return &Store{blocks: make(map[kadid.ID]map[string]*storedEntry)}
}

// Append merges entries into the block stored under key. Counts add up;
// an entry with Init > 0 whose field is absent is created at Init
// instead (Approximation B's conditional create, evaluated here at the
// storage node); non-empty Data (with its signature envelope) replaces
// the stored copy.
func (s *Store) Append(key kadid.ID, entries []wire.Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	blk, ok := s.blocks[key]
	if !ok {
		blk = make(map[string]*storedEntry, len(entries))
		s.blocks[key] = blk
	}
	for _, e := range entries {
		se, ok := blk[e.Field]
		if !ok {
			se = &storedEntry{}
			blk[e.Field] = se
			if e.Init > 0 {
				se.count = e.Init
			} else {
				se.count = e.Count
			}
		} else {
			se.count += e.Count
		}
		if len(e.Data) > 0 {
			se.data = append([]byte(nil), e.Data...)
			se.author = append([]byte(nil), e.Author...)
			se.sig = append([]byte(nil), e.Sig...)
		}
	}
}

// Get returns the block under key sorted by descending count (ties
// broken by field name), truncated to topN entries when topN > 0. This
// is the "index side filtering" of the paper: a popular tag's block may
// hold tens of thousands of arcs, far more than fits a UDP payload, so
// the storing node returns only the most relevant ones. The second
// result reports whether the block exists.
func (s *Store) Get(key kadid.ID, topN int) ([]wire.Entry, bool) {
	s.mu.RLock()
	blk, ok := s.blocks[key]
	if !ok {
		s.mu.RUnlock()
		return nil, false
	}
	out := make([]wire.Entry, 0, len(blk))
	for f, se := range blk {
		out = append(out, wire.Entry{
			Field:  f,
			Count:  se.count,
			Data:   se.data,
			Author: se.author,
			Sig:    se.sig,
		})
	}
	s.mu.RUnlock()

	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Field < out[j].Field
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out, true
}

// Has reports whether a block exists under key.
func (s *Store) Has(key kadid.ID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.blocks[key]
	return ok
}

// Keys returns the identifiers of all stored blocks.
func (s *Store) Keys() []kadid.ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]kadid.ID, 0, len(s.blocks))
	for k := range s.blocks {
		out = append(out, k)
	}
	return out
}

// Len returns the number of stored blocks.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blocks)
}

// EntryCount returns the total number of fields across all blocks; it
// approximates the node's storage load for the hotspot experiment.
func (s *Store) EntryCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, blk := range s.blocks {
		n += len(blk)
	}
	return n
}
