package kademlia

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"dharma/internal/kadid"
	"dharma/internal/obs"
	"dharma/internal/persist"
	"dharma/internal/wire"
)

// Store is a node's local block storage. A block is a weighted set of
// fields: DHARMA appends "+1 tokens" to a (block, field) pair, so the
// only mutation is a commutative merge, which is what makes concurrent
// tagging race-free (Approximation B relies on this).
//
// The store is built for the paper's access pattern at scale. Tag
// popularity is heavily skewed, so a handful of hot blocks take most of
// the traffic, and every SearchStep asks for the top-topN entries of
// such a block (index-side filtering). Two structural choices follow:
//
//   - The block map is sharded by key prefix into storeShards stripes,
//     each behind its own RWMutex, so appends to unrelated blocks never
//     contend on a global lock.
//   - Every block maintains its descending-count order incrementally: a
//     bounded, exactly-sorted top index (topIndexCap entries) is updated
//     on each append, so Get(key, topN) for topN ≤ topIndexCap is
//     O(topN) instead of a full O(n log n) re-sort of a block that may
//     hold tens of thousands of arcs. Counts only grow (Append adds,
//     MergeMax takes the max), which keeps the maintenance cheap: a
//     bumped entry can only move towards the front.
//
// Mutations (Append, AppendBatch, MergeMax) return an error so that a
// durable backend can refuse to acknowledge a write it could not log;
// the in-memory store never fails.
type Store struct {
	shards [storeShards]storeShard

	// dur, when set, write-ahead-logs every mutation before it is
	// acknowledged (see OpenDurableStore); nil keeps the store purely
	// in-memory.
	dur *durability

	// metrics, when set by Instrument, times appends and reads per
	// shard. Nil (the default) keeps the mutation paths clock-free.
	metrics *storeMetrics
}

// storeMetrics holds the store's per-shard latency instruments. The
// append histogram covers the full acknowledged write — on a durable
// store that includes the WAL group-commit wait, which is exactly the
// latency a writer experiences.
type storeMetrics struct {
	appendLatency *obs.HistogramVec
	getLatency    *obs.HistogramVec
}

// Instrument registers per-shard append/get latency histograms on reg
// and starts timing. Call once, before the store serves traffic; a nil
// reg is a no-op.
func (s *Store) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	labels := make([]string, storeShards)
	for i := range labels {
		labels[i] = fmt.Sprintf("%02d", i)
	}
	s.metrics = &storeMetrics{
		appendLatency: reg.HistogramVec("dharma_store_append_seconds",
			"Acknowledged block append latency (including WAL commit), by shard.", "shard", labels),
		getLatency: reg.HistogramVec("dharma_store_get_seconds",
			"Block read latency, by shard.", "shard", labels),
	}
}

// storeShards is the stripe count; a power of two so the key prefix
// maps to a shard with a mask.
const storeShards = 64

// topIndexCap bounds the incrementally sorted head of each block. It
// must cover the largest filter a search step asks for (the paper uses
// top-100); reads beyond it fall back to a full sort.
const topIndexCap = 128

type storeShard struct {
	mu     sync.RWMutex
	blocks map[kadid.ID]*block
}

// block is one stored weighted set plus its maintained head.
type block struct {
	fields map[string]*storedEntry
	// top holds the min(len(fields), topIndexCap) greatest entries in
	// exact (count desc, field asc) order.
	top []*storedEntry
	// digest is the anti-entropy summary: an XOR fold of
	// fieldDigest(field, count) over every field, maintained
	// incrementally at each count transition like the top index (see
	// store_summary.go). It covers the weight map only, not Data.
	digest uint64
	// version counts mutations that changed the block; per-block
	// republish timers use it as a write clock ("recently written blocks
	// skip a round") without reading wall time.
	version uint64
}

type storedEntry struct {
	field  string
	count  uint64
	data   []byte
	author []byte
	sig    []byte
	// pos is the entry's index in the block's top slice, -1 when the
	// entry is not part of the maintained head.
	pos int
}

// storedLess is the block order: descending count, ties broken by
// ascending field name.
func storedLess(a, b *storedEntry) bool {
	if a.count != b.count {
		return a.count > b.count
	}
	return a.field < b.field
}

// BatchItem is one (key, entries) pair of a multi-block append.
type BatchItem struct {
	Key     kadid.ID
	Entries []wire.Entry
}

// NewStore creates an empty block store.
func NewStore() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].blocks = make(map[kadid.ID]*block)
	}
	return s
}

func (s *Store) shard(key kadid.ID) *storeShard {
	return &s.shards[key[0]&(storeShards-1)]
}

// Append merges entries into the block stored under key. Counts add up;
// an entry with Init > 0 whose field is absent is created at Init
// instead (Approximation B's conditional create, evaluated here at the
// storage node); non-empty Data (with its signature envelope) replaces
// the stored copy. An empty entries slice is a no-op: it must not
// materialize an empty block (a tagging operation whose forward-arc set
// is empty still costs its Table-I lookup, but the storage node keeps
// nothing for it).
// A durable store logs the append before acknowledging; a non-nil
// error means the write must not be acked (the entries may or may not
// have reached memory, but they were never promised to survive).
func (s *Store) Append(ctx context.Context, key kadid.ID, entries []wire.Entry) error {
	if len(entries) == 0 {
		return nil
	}
	if m := s.metrics; m != nil {
		start := time.Now()
		defer func() {
			m.appendLatency.At(int(key[0] & (storeShards - 1))).Observe(time.Since(start))
		}()
	}
	if s.dur != nil {
		return s.dur.commit(ctx, persist.Record{Op: persist.OpAppend, Key: key, Entries: entries},
			func() { s.applyAppend(key, entries) })
	}
	s.applyAppend(key, entries)
	return nil
}

// applyAppend is the in-memory half of Append.
func (s *Store) applyAppend(key kadid.ID, entries []wire.Entry) {
	sh := s.shard(key)
	sh.mu.Lock()
	sh.appendLocked(key, entries)
	sh.mu.Unlock()
}

// AppendBatch merges every item in one pass, taking each shard's lock
// once. It is the storage half of the engine's batched write path: a
// tagging operation's reverse-arc appends (and an insertion's t̄/t̂
// appends) target distinct keys and commute, so they can be applied as
// one grouped call.
// On a durable store the whole batch is logged as one commit — one
// group-commit flush covers every item.
func (s *Store) AppendBatch(ctx context.Context, items []BatchItem) error {
	if s.dur != nil {
		recs := make([]persist.Record, 0, len(items))
		for _, it := range items {
			if len(it.Entries) == 0 {
				continue
			}
			recs = append(recs, persist.Record{Op: persist.OpAppend, Key: it.Key, Entries: it.Entries})
		}
		if len(recs) == 0 {
			return nil
		}
		return s.dur.commitAll(ctx, recs, func() { s.applyAppendBatch(items) })
	}
	s.applyAppendBatch(items)
	return nil
}

// applyAppendBatch is the in-memory half of AppendBatch: one pass, each
// shard's lock taken once.
func (s *Store) applyAppendBatch(items []BatchItem) {
	var groups [storeShards][]BatchItem
	for _, it := range items {
		if len(it.Entries) == 0 {
			continue
		}
		si := it.Key[0] & (storeShards - 1)
		groups[si] = append(groups[si], it)
	}
	for si := range groups {
		if len(groups[si]) == 0 {
			continue
		}
		sh := &s.shards[si]
		sh.mu.Lock()
		for _, it := range groups[si] {
			sh.appendLocked(it.Key, it.Entries)
		}
		sh.mu.Unlock()
	}
}

func (sh *storeShard) appendLocked(key kadid.ID, entries []wire.Entry) {
	blk, ok := sh.blocks[key]
	if !ok {
		blk = &block{fields: make(map[string]*storedEntry, len(entries))}
		sh.blocks[key] = blk
	}
	changed := false
	for i := range entries {
		e := &entries[i]
		se, ok := blk.fields[e.Field]
		if !ok {
			se = &storedEntry{field: e.Field, pos: -1}
			blk.fields[e.Field] = se
			if e.Init > 0 {
				se.count = e.Init
			} else {
				se.count = e.Count
			}
			blk.digest ^= fieldDigest(e.Field, se.count)
			blk.indexEnter(se)
			changed = true
		} else if e.Count > 0 {
			blk.digest ^= fieldDigest(e.Field, se.count)
			se.count += e.Count
			blk.digest ^= fieldDigest(e.Field, se.count)
			blk.indexBump(se)
			changed = true
		}
		if len(e.Data) > 0 {
			se.data = append([]byte(nil), e.Data...)
			se.author = append([]byte(nil), e.Author...)
			se.sig = append([]byte(nil), e.Sig...)
			changed = true
		}
	}
	if changed {
		blk.version++
	}
}

// indexBump restores the top-index invariant after se's count grew.
// Counts never shrink, so the entry can only move towards the front.
func (b *block) indexBump(se *storedEntry) {
	if se.pos < 0 {
		b.indexEnter(se)
		return
	}
	for se.pos > 0 && storedLess(se, b.top[se.pos-1]) {
		prev := b.top[se.pos-1]
		b.top[se.pos-1], b.top[se.pos] = se, prev
		prev.pos = se.pos
		se.pos--
	}
}

// indexEnter considers an entry that is not part of the head (fresh, or
// previously evicted and now bumped) for inclusion.
func (b *block) indexEnter(se *storedEntry) {
	if len(b.top) >= topIndexCap {
		tail := b.top[len(b.top)-1]
		if !storedLess(se, tail) {
			return // does not beat the current head
		}
		tail.pos = -1
		b.top = b.top[:len(b.top)-1]
	}
	// Binary search for the insertion point, then shift the tail right.
	i := sort.Search(len(b.top), func(i int) bool { return storedLess(se, b.top[i]) })
	b.top = append(b.top, nil)
	copy(b.top[i+1:], b.top[i:])
	b.top[i] = se
	se.pos = i
	for j := i + 1; j < len(b.top); j++ {
		b.top[j].pos = j
	}
}

// mergeMaxLocked applies the replica-maintenance merge rule: per-field
// maximum instead of addition (see maintain.go). It shares the index
// maintenance with appendLocked because counts still only grow.
func (sh *storeShard) mergeMaxLocked(key kadid.ID, entries []wire.Entry) {
	blk, ok := sh.blocks[key]
	if !ok {
		blk = &block{fields: make(map[string]*storedEntry, len(entries))}
		sh.blocks[key] = blk
	}
	changed := false
	for i := range entries {
		e := &entries[i]
		se, ok := blk.fields[e.Field]
		if !ok {
			se = &storedEntry{field: e.Field, count: e.Count, pos: -1}
			blk.fields[e.Field] = se
			blk.digest ^= fieldDigest(e.Field, se.count)
			blk.indexEnter(se)
			changed = true
		} else if e.Count > se.count {
			blk.digest ^= fieldDigest(e.Field, se.count)
			se.count = e.Count
			blk.digest ^= fieldDigest(e.Field, se.count)
			blk.indexBump(se)
			changed = true
		}
		if len(se.data) == 0 && len(e.Data) > 0 {
			se.data = append([]byte(nil), e.Data...)
			se.author = append([]byte(nil), e.Author...)
			se.sig = append([]byte(nil), e.Sig...)
			changed = true
		}
	}
	if changed {
		blk.version++
	}
}

// Get returns the block under key sorted by descending count (ties
// broken by field name), truncated to topN entries when topN > 0. This
// is the "index side filtering" of the paper: a popular tag's block may
// hold tens of thousands of arcs, far more than fits a UDP payload, so
// the storing node returns only the most relevant ones. The second
// result reports whether the block exists.
//
// A filtered read with topN ≤ topIndexCap is served from the block's
// maintained head in O(topN); only unfiltered reads (and filters wider
// than the head) scan and sort the full block. Returned entries never
// alias internal storage — Data/Author/Sig are copied on the way out.
func (s *Store) Get(key kadid.ID, topN int) ([]wire.Entry, bool) {
	if m := s.metrics; m != nil {
		start := time.Now()
		defer func() {
			m.getLatency.At(int(key[0] & (storeShards - 1))).Observe(time.Since(start))
		}()
	}
	sh := s.shard(key)
	sh.mu.RLock()
	blk, ok := sh.blocks[key]
	if !ok {
		sh.mu.RUnlock()
		return nil, false
	}

	if topN > 0 && topN <= topIndexCap {
		n := topN
		if n > len(blk.top) {
			n = len(blk.top)
		}
		out := make([]wire.Entry, n)
		for i, se := range blk.top[:n] {
			out[i] = se.entry()
		}
		sh.mu.RUnlock()
		return out, true
	}

	out := make([]wire.Entry, 0, len(blk.fields))
	for _, se := range blk.fields {
		out = append(out, se.entry())
	}
	sh.mu.RUnlock()

	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Field < out[j].Field
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out, true
}

// entry materializes a wire entry with copied byte slices, so callers
// can never mutate stored state through a Get result.
func (se *storedEntry) entry() wire.Entry {
	e := wire.Entry{Field: se.field, Count: se.count}
	if se.data != nil {
		e.Data = append([]byte(nil), se.data...)
	}
	if se.author != nil {
		e.Author = append([]byte(nil), se.author...)
	}
	if se.sig != nil {
		e.Sig = append([]byte(nil), se.sig...)
	}
	return e
}

// Has reports whether a block exists under key.
func (s *Store) Has(key kadid.ID) bool {
	sh := s.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	_, ok := sh.blocks[key]
	return ok
}

// Keys returns the identifiers of all stored blocks.
func (s *Store) Keys() []kadid.ID {
	out := make([]kadid.ID, 0, 64)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k := range sh.blocks {
			out = append(out, k)
		}
		sh.mu.RUnlock()
	}
	return out
}

// Len returns the number of stored blocks.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.blocks)
		sh.mu.RUnlock()
	}
	return n
}

// EntryCount returns the total number of fields across all blocks; it
// approximates the node's storage load for the hotspot experiment.
func (s *Store) EntryCount() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, blk := range sh.blocks {
			n += len(blk.fields)
		}
		sh.mu.RUnlock()
	}
	return n
}
