// Package kademlia implements the structured overlay DHARMA runs on: a
// complete Kademlia node (XOR-metric routing table, iterative lookups
// with parallelism α, STORE/FIND_VALUE with k-closest replication)
// extended with the two features the paper requires of its DHT layer:
// append-only block updates ("one-bit tokens") and index-side filtering
// on reads. An optional Likir identity layer authenticates both nodes
// and stored entries.
//
// The protocol logic is transport-agnostic: it speaks through the
// simnet.Transport interface, so the same node runs on the in-memory
// instrumented network (tests, experiments) and on real UDP
// (cmd/dharma-node).
package kademlia

import (
	"context"
	"crypto/ed25519"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dharma/internal/kadid"
	"dharma/internal/likir"
	"dharma/internal/session"
	"dharma/internal/simnet"
	"dharma/internal/wire"
)

// Protocol defaults; K and Alpha are the constants of the Kademlia
// paper.
const (
	DefaultK     = 20
	DefaultAlpha = 3

	// DefaultBusyRetries and DefaultBusyBackoff shape the client's
	// reaction to BUSY rejections: up to 3 retries starting from a 2ms
	// base, doubling each attempt with uniform jitter, so a storm of
	// rejected writers decorrelates instead of re-arriving in lockstep.
	DefaultBusyRetries = 3
	DefaultBusyBackoff = 2 * time.Millisecond
)

// Errors returned by overlay operations.
var (
	ErrNotFound   = errors.New("kademlia: value not found")
	ErrNoContacts = errors.New("kademlia: routing table is empty")

	// errDetached is returned by outbound calls of a node that has no
	// live endpoint (crashed or departed).
	errDetached = errors.New("kademlia: node is detached")
)

// Config parameterises a node.
type Config struct {
	// K is the bucket size and replication factor (default DefaultK).
	K int
	// Alpha is the lookup parallelism (default DefaultAlpha).
	Alpha int
	// Identity is the node's Likir identity. When set, outbound RPCs
	// carry the marshalled credential.
	Identity *likir.Identity
	// CAPub, when set, makes the node reject RPCs from peers without a
	// valid credential and drop stored entries whose signature fails.
	CAPub ed25519.PublicKey
	// Revoked, when set, rejects peers whose identifier it reports as
	// withdrawn. It is consulted on every message (a revocation cuts
	// off peers that were admitted earlier). Typically backed by a
	// likir.RevocationSet refreshed from the authority's bundle.
	Revoked func(kadid.ID) bool
	// CacheOnLookup enables the Kademlia §4.1 optimisation: after a
	// successful value lookup, the block is replicated (max-merge) onto
	// the closest observed node that did not have it. Popular blocks —
	// DHARMA's hotspot concern — thereby spread towards their readers.
	CacheOnLookup bool
	// ReadRepair enables repair on unfiltered value lookups: the merged
	// (field-wise maximum) block is written back, via REPLICATE, to
	// every node of the k-closest set whose response was stale — missing
	// the block entirely, or holding lower counts for any field. Under
	// churn this heals replica sets on the read path, between republish
	// rounds; in steady state every replica is fresh and it costs
	// nothing. Filtered (top-N) lookups never repair: a truncated
	// response is not evidence of staleness.
	ReadRepair bool
	// Store, when set, is the node's block storage — typically a
	// durable store from OpenDurableStore, so the node's blocks outlive
	// its process. Nil creates a fresh in-memory store.
	Store *Store
	// BusyRetries is how many times an outbound RPC answered with BUSY
	// is retried with jittered exponential backoff before the error is
	// surfaced (default DefaultBusyRetries; negative disables retries).
	// A busy peer is alive — it is never evicted from the routing table.
	BusyRetries int
	// BusyBackoff is the base delay of the busy-retry schedule; attempt
	// i sleeps a uniformly jittered multiple of BusyBackoff·2^i
	// (default DefaultBusyBackoff).
	BusyBackoff time.Duration
	// MinStoreAcks is how many replica acknowledgements a Store needs
	// before reporting success (default 1). The churn invariant —
	// acknowledged writes survive replica crashes — is only as strong
	// as the acknowledgement: a write acked by a single replica dies
	// with that replica if it crashes before any repair round spreads
	// the block. Raising the quorum trades write availability under
	// faults for durability.
	MinStoreAcks int
	// Now is the clock used for credential validation (default time.Now).
	Now func() time.Time
	// TraceSample captures the hop-by-hop trace of 1 in TraceSample
	// lookups (default DefaultTraceSample; negative disables sampling).
	// Captured traces land in the ring served by RecentTraces.
	TraceSample int
	// TraceSlow always captures the trace of a lookup slower than this
	// threshold, regardless of sampling (default DefaultTraceSlow;
	// negative disables slow capture). This is the "why was this
	// navigate slow" knob: the spans are recorded before anyone knows
	// the op will be slow, so the evidence is there when it is.
	TraceSlow time.Duration
	// OnTrace, when set, is called synchronously with every captured
	// trace (after it entered the ring) — the hook slow-op logging hangs
	// off. It must not block.
	OnTrace func(*LookupTrace)
	// ChaosDelay, when positive, delays every inbound RPC handler by
	// this duration — under the caller's propagated deadline — before
	// dispatch. It is a fault-injection knob: it makes "the server was
	// slower than the client's budget" deterministic, which is what the
	// deadline-shedding smoke test needs. Never set in production.
	ChaosDelay time.Duration
}

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = DefaultK
	}
	if c.Alpha <= 0 {
		c.Alpha = DefaultAlpha
	}
	if c.MinStoreAcks <= 0 {
		c.MinStoreAcks = 1
	}
	if c.BusyRetries == 0 {
		c.BusyRetries = DefaultBusyRetries
	}
	if c.BusyBackoff <= 0 {
		c.BusyBackoff = DefaultBusyBackoff
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.TraceSample == 0 {
		c.TraceSample = DefaultTraceSample
	} else if c.TraceSample < 0 {
		c.TraceSample = 0
	}
	if c.TraceSlow == 0 {
		c.TraceSlow = DefaultTraceSlow
	} else if c.TraceSlow < 0 {
		c.TraceSlow = 0
	}
	return c
}

// Node is one overlay participant.
type Node struct {
	cfg   Config
	id    kadid.ID // immutable
	table *Table
	store *Store

	// selfMu guards the attachable state: the transport and the
	// contact's address. Both change when a crashed node is revived at
	// a new endpoint, which can race with a stray in-flight RPC still
	// executing this node's handler.
	selfMu    sync.RWMutex
	self      wire.Contact
	transport simnet.Transport
	// detached is true while the node has no live endpoint (never
	// attached, gracefully departed, or crashed). A detached node must
	// not interpret its own send failures as peers being dead — its
	// routing table has to survive a crash the way its store does.
	detached atomic.Bool

	credBlob []byte

	// credCache remembers peers whose credential already verified, so
	// the Ed25519 check runs once per peer rather than once per message.
	credMu    sync.RWMutex
	credSeen  map[kadid.ID]bool
	lookups   atomic.Int64
	rounds    atomic.Int64 // lookup rounds = hops (one α-wide wave each)
	rpcServed atomic.Int64
	repairs   atomic.Int64

	shedTotal    atomic.Int64 // requests shed dead-on-arrival
	authRejTotal atomic.Int64 // requests answered UNAUTHORIZED

	// Anti-entropy state (antientropy.go). aeMu guards the per-block
	// timer maps: the version observed at the previous round (aeSeen),
	// the version and round of the last completed sync (aeSyncedV,
	// aeRoundAt) and the round counter.
	aeMu       sync.Mutex
	aeSeen     map[kadid.ID]uint64
	aeSyncedV  map[kadid.ID]uint64
	aeRoundAt  map[kadid.ID]int64
	aeRoundCtr int64

	aeSynced       atomic.Int64
	aeSuppressed   atomic.Int64
	aeSkipped      atomic.Int64
	aeMatches      atomic.Int64
	aeDeltaEntries atomic.Int64
	aePullEntries  atomic.Int64
	aeFullBlocks   atomic.Int64
	repairEntries  atomic.Int64
	aeBytesOut     atomic.Int64
	aeBytesIn      atomic.Int64

	// arenas pools lookup working state (candidate lists, seen map,
	// seed buffer) so steady-state lookups allocate no per-round
	// bookkeeping. See lookupArena.
	arenas sync.Pool

	// Telemetry (metrics.go, trace.go). metrics is the zero value —
	// all no-ops — until Instrument installs real instruments.
	metrics    nodeMetrics
	traceSeq   atomic.Uint64
	forceTrace atomic.Int64 // >0 while a TraceLookup is in flight
	traces     traceRing
}

// NewNode creates a node with identifier self. Attach must be called
// with a live transport before the node can serve or send RPCs.
func NewNode(self kadid.ID, cfg Config) *Node {
	cfg = cfg.withDefaults()
	if cfg.Identity != nil {
		self = cfg.Identity.NodeID // Likir: the identity fixes the ID
	}
	store := cfg.Store
	if store == nil {
		store = NewStore()
	}
	n := &Node{
		cfg:       cfg,
		id:        self,
		self:      wire.Contact{ID: self},
		store:     store,
		credSeen:  make(map[kadid.ID]bool),
		aeSeen:    make(map[kadid.ID]uint64),
		aeSyncedV: make(map[kadid.ID]uint64),
		aeRoundAt: make(map[kadid.ID]int64),
	}
	n.detached.Store(true) // until Attach
	n.arenas.New = func() any { return &lookupArena{} }
	n.table = NewTable(self, cfg.K, n.pingContact)
	if cfg.Identity != nil {
		n.credBlob = cfg.Identity.Credential.Marshal()
	}
	return n
}

// Detached reports whether the node currently has no live endpoint.
func (n *Node) Detached() bool { return n.detached.Load() }

// Attach binds the node to a transport endpoint. The typical sequence
// is: node := NewNode(...); tr := net.Attach(addr, node); node.Attach(tr).
// Re-attaching (a crashed node reviving) is safe while RPCs are in
// flight.
func (n *Node) Attach(tr simnet.Transport) {
	n.selfMu.Lock()
	n.transport = tr
	n.self.Addr = string(tr.Addr())
	n.selfMu.Unlock()
	n.detached.Store(false)
}

// Self returns the node's own contact.
func (n *Node) Self() wire.Contact {
	n.selfMu.RLock()
	defer n.selfMu.RUnlock()
	return n.self
}

// Identity returns the node's Likir identity, nil on an open overlay.
func (n *Node) Identity() *likir.Identity { return n.cfg.Identity }

// Config returns the node's configuration with defaults applied —
// what a peer wanting to join as an equal member should run with. The
// per-node Identity and Store are stripped (a joiner must bring its
// own); the shared CA key and every protocol parameter carry over.
func (n *Node) Config() Config {
	cfg := n.cfg
	cfg.Identity = nil
	cfg.Store = nil
	cfg.OnTrace = nil // per-node hook, not protocol configuration
	return cfg
}

// Transport returns the transport the node is currently attached to
// (nil while detached). The facade uses it to reach transport-level
// statistics — admission counters live with the endpoint, not the node.
func (n *Node) Transport() simnet.Transport {
	n.selfMu.RLock()
	defer n.selfMu.RUnlock()
	return n.transport
}

// Table exposes the routing table (read-mostly; used by tests and the
// hotspot experiment).
func (n *Node) Table() *Table { return n.table }

// LocalStore exposes the node's block storage.
func (n *Node) LocalStore() *Store { return n.store }

// Lookups returns how many iterative lookup procedures this node has
// initiated; it is the unit the paper's Table I counts costs in.
func (n *Node) Lookups() int64 { return n.lookups.Load() }

// LookupRounds returns how many lookup rounds (α-wide query waves) this
// node has executed across all its lookups. A round is the unit the
// scale harness reports as a hop: every candidate in a round is one
// overlay step closer to the target, so rounds-per-lookup is the
// O(log n) quantity of the Kademlia paper.
func (n *Node) LookupRounds() int64 { return n.rounds.Load() }

// RPCServed returns how many RPC requests this node has answered.
func (n *Node) RPCServed() int64 { return n.rpcServed.Load() }

// Repairs returns how many stale or empty replicas this node has
// written back through read-repair (requires Config.ReadRepair).
func (n *Node) Repairs() int64 { return n.repairs.Load() }

// HandleRPC implements simnet.Handler: it decodes one request, updates
// the routing table with the caller, and dispatches. ctx is the
// server-side request context: work whose caller has already given up
// (or whose transport is shutting down) is shed at the door, and
// storage commits run under it so a cancelled write does not pin the
// handler for a whole WAL flush window.
func (n *Node) HandleRPC(ctx context.Context, from simnet.Addr, payload []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var start time.Time
	if n.metrics.rpcLatency != nil {
		start = time.Now()
	}
	msg, err := wire.Decode(payload)
	if err != nil {
		return nil, err
	}
	n.rpcServed.Add(1)

	// Cross-node deadline propagation: the caller stamped its remaining
	// budget (µs) on the message. Install it as this handler's deadline
	// so storage commits and downstream work observe the caller's
	// patience, and shed requests that are already dead on arrival
	// instead of computing answers nobody is waiting for.
	if msg.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(msg.Deadline)*time.Microsecond)
		defer cancel()
	}
	if d := n.cfg.ChaosDelay; d > 0 {
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
		case <-t.C:
		}
	}
	if err := ctx.Err(); err != nil {
		n.shedTotal.Add(1)
		if c := n.metrics.deadlineShed.At(int(msg.Kind) - 1); c != nil {
			c.Add(1)
		}
		// No reply: the caller's budget is spent, so any answer would be
		// garbage-collected by its transport anyway.
		return nil, err
	}

	if err := n.admit(ctx, msg); err != nil {
		n.rejectUnauthorized(msg.Kind)
		return wire.Encode(&wire.Message{Kind: wire.KindUnauthorized, From: n.Self(), Err: err.Error()}), nil
	}
	if msg.From.ID != (kadid.ID{}) && msg.From.Addr != "" {
		n.table.Update(msg.From)
	}

	// Contact lists for NODES replies are built in a pooled scratch
	// buffer: they live only until the response is encoded below, so the
	// backing array can be recycled across requests.
	var scratch *contactBuf
	closest := func(target kadid.ID) []wire.Contact {
		scratch = contactBufPool.Get().(*contactBuf)
		scratch.cs = n.table.ClosestInto(target, n.cfg.K, scratch.cs[:0])
		return scratch.cs
	}

	var resp *wire.Message
	switch msg.Kind {
	case wire.KindPing:
		resp = &wire.Message{Kind: wire.KindPong}

	case wire.KindFindNode:
		resp = &wire.Message{
			Kind:     wire.KindNodes,
			Contacts: closest(msg.Target),
		}

	case wire.KindFindValue:
		if entries, ok := n.store.Get(msg.Target, int(msg.TopN)); ok {
			resp = &wire.Message{Kind: wire.KindValue, Entries: entries}
		} else {
			resp = &wire.Message{
				Kind:     wire.KindNodes,
				Contacts: closest(msg.Target),
			}
		}

	case wire.KindSummary:
		// Anti-entropy digest exchange: answer with our summary; on
		// mismatch also enumerate our (field, count) map so the caller
		// can compute the exact delta. A block too wide to enumerate in
		// one message answers with the bare summary — the caller falls
		// back to a full push.
		resp = &wire.Message{Kind: wire.KindSummaryReply}
		if sum, ok := n.store.Summary(msg.Target); ok {
			resp.Summary = sum
			if sum != msg.Summary {
				if counts, ok := n.store.Counts(msg.Target); ok && len(counts) <= wire.MaxListLen {
					resp.Entries = counts
				}
			}
		}

	case wire.KindStore, wire.KindReplicate:
		if n.cfg.CAPub != nil {
			if reason := n.vetMutation(msg); reason != "" {
				// Strict signed-mutation rule: the whole message is refused
				// and nothing lands. A filter-and-ack here would let a
				// tampered batch earn an acknowledgement, which upper layers
				// read as "durably stored".
				n.rejectUnauthorized(msg.Kind)
				resp = &wire.Message{Kind: wire.KindUnauthorized, Err: reason}
				break
			}
		}
		var serr error
		if msg.Kind == wire.KindStore {
			serr = n.store.Append(ctx, msg.Target, msg.Entries)
		} else {
			serr = n.store.MergeMax(ctx, msg.Target, msg.Entries)
		}
		if serr != nil {
			// A durable store that could not log the write must not ack
			// it: the sender sees a failure and withholds its own ack,
			// which is the whole durability contract.
			resp = &wire.Message{Kind: wire.KindError, Err: serr.Error()}
		} else {
			resp = &wire.Message{Kind: wire.KindStoreAck}
		}

	default:
		resp = &wire.Message{Kind: wire.KindError, Err: fmt.Sprintf("unexpected %v", msg.Kind)}
	}
	resp.From = n.Self()
	// Echo the caller's trace stamp so the response is attributable to
	// the traced lookup in packet captures and remote logs.
	resp.TraceID = msg.TraceID
	resp.Hop = msg.Hop
	out := wire.Encode(resp)
	if scratch != nil {
		contactBufPool.Put(scratch)
	}
	if h := n.metrics.kindHist(msg.Kind); h != nil {
		h.Observe(time.Since(start))
		ki := int(msg.Kind) - 1
		n.metrics.rpcReqBytes.At(ki).Add(int64(len(payload)))
		n.metrics.rpcRespBytes.At(ki).Add(int64(len(out)))
	}
	return out, nil
}

// contactBufPool recycles the contact lists HandleRPC encodes into
// NODES replies — the most common allocation of a node serving lookups.
var contactBufPool = sync.Pool{New: func() any { return &contactBuf{} }}

type contactBuf struct {
	cs []wire.Contact
}

// admit enforces Likir node admission when a CA public key is
// configured: requests must carry a valid credential matching the
// claimed sender identifier. Requests arriving over a transport
// session (wire.UDPTransport handshake) were already authenticated
// against the same CA key; the per-message credential check is skipped
// for them — revocation is still consulted every time, because a
// bundle refresh can outdate a session that verified cleanly at
// handshake.
func (n *Node) admit(ctx context.Context, msg *wire.Message) error {
	if n.cfg.Revoked != nil && n.cfg.Revoked(msg.From.ID) {
		return errors.New("kademlia: peer identity revoked")
	}
	if n.cfg.CAPub == nil {
		return nil
	}
	if peer, ok := session.PeerFromContext(ctx); ok && peer.NodeID == msg.From.ID {
		return nil // session handshake already verified this identity
	}
	if msg.From.ID == (kadid.ID{}) {
		return nil // anonymous probe (no routing-table update happens)
	}
	n.credMu.RLock()
	ok := n.credSeen[msg.From.ID]
	n.credMu.RUnlock()
	if ok {
		return nil
	}
	if len(msg.Cred) == 0 {
		return errors.New("kademlia: credential required")
	}
	cred, err := likir.UnmarshalCredential(msg.Cred)
	if err != nil {
		return err
	}
	if err := likir.VerifyCredential(n.cfg.CAPub, cred, n.cfg.Now); err != nil {
		return err
	}
	if cred.NodeID != msg.From.ID {
		return fmt.Errorf("%w: sender id does not match credential", likir.ErrBadCredential)
	}
	n.credMu.Lock()
	n.credSeen[msg.From.ID] = true
	n.credMu.Unlock()
	return nil
}

// vetMutation enforces the signed-mutation rule of a secured overlay
// on one STORE/REPLICATE message. The sender must be identified (an
// anonymous probe may read, never write), every Data-bearing entry
// must carry an author signature, and every signature present must
// verify over (block key, field, data). Count-only entries stay
// unsigned by design: they aggregate one-bit tokens appended by many
// writers and are not attributable to a single author. Returns the
// rejection reason, or "" to accept.
func (n *Node) vetMutation(msg *wire.Message) string {
	if msg.From.ID == (kadid.ID{}) {
		return "kademlia: anonymous mutation rejected"
	}
	return vetEntries(msg.Target, msg.Entries)
}

// vetEntries applies the entry half of the signed-mutation rule; see
// vetMutation.
func vetEntries(key kadid.ID, entries []wire.Entry) string {
	for i := range entries {
		e := &entries[i]
		if len(e.Data) > 0 && len(e.Author) == 0 {
			return fmt.Sprintf("kademlia: unsigned data entry %q", e.Field)
		}
		if err := likir.VerifyEntry(key, e.Field, e.Data, e.Author, e.Sig); err != nil {
			return fmt.Sprintf("kademlia: entry %q: %v", e.Field, err)
		}
	}
	return ""
}

// rejectUnauthorized records one UNAUTHORIZED verdict in the node's
// counters.
func (n *Node) rejectUnauthorized(k wire.Kind) {
	n.authRejTotal.Add(1)
	if c := n.metrics.authRejected.At(int(k) - 1); c != nil {
		c.Add(1)
	}
}

// DeadlineShed returns how many requests this node dropped because the
// caller's propagated deadline had already expired at dispatch.
func (n *Node) DeadlineShed() int64 { return n.shedTotal.Load() }

// AuthRejected returns how many requests this node answered with
// UNAUTHORIZED (failed admission or signed-mutation checks).
func (n *Node) AuthRejected() int64 { return n.authRejTotal.Load() }

// call sends one RPC and maintains the routing table on success and
// failure. ctx bounds the exchange: when it ends, the transport's
// in-flight waiter is aborted and ctx.Err() comes back. BUSY answers
// are retried with jittered exponential backoff (up to
// Config.BusyRetries times) before being surfaced.
func (n *Node) call(ctx context.Context, to wire.Contact, msg *wire.Message) (*wire.Message, error) {
	backoff := n.cfg.BusyBackoff
	for attempt := 0; ; attempt++ {
		resp, err := n.callOnce(ctx, to, msg)
		if err == nil || !errors.Is(err, wire.ErrBusy) || attempt >= n.cfg.BusyRetries {
			return resp, err
		}
		// Uniform jitter in [0.5, 1.5)·backoff: retriers that were
		// rejected together must not knock again together.
		delay := backoff/2 + time.Duration(rand.Int63n(int64(backoff)))
		backoff *= 2
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(delay):
		}
	}
}

// callOnce performs a single exchange. A BUSY answer — whether a
// transport-level admission rejection or a decoded KindBusy reply — is
// returned wrapping wire.ErrBusy and, crucially, does NOT evict the
// peer from the routing table: busy means alive, the same way
// cancellation means nothing (PR 5's rule).
func (n *Node) callOnce(ctx context.Context, to wire.Contact, msg *wire.Message) (*wire.Message, error) {
	if n.detached.Load() {
		return nil, errDetached
	}
	n.selfMu.RLock()
	msg.From = n.self
	tr := n.transport
	n.selfMu.RUnlock()
	msg.Cred = n.credBlob
	// Stamp the caller's remaining budget on the wire so the receiver
	// can shed the request if it arrives already dead. Zero means "no
	// deadline"; a context that is over before encoding is refused here,
	// saving the packet.
	msg.Deadline = 0
	if dl, ok := ctx.Deadline(); ok {
		left := time.Until(dl)
		if left <= 0 {
			return nil, context.DeadlineExceeded
		}
		msg.Deadline = uint64(left / time.Microsecond)
		if msg.Deadline == 0 {
			msg.Deadline = 1 // sub-µs remainder still counts as a budget
		}
	}
	// The request is marshalled into a pooled buffer. It is recycled
	// only when the exchange did not end via ctx: a cancelled simnet
	// call can leave an abandoned handler goroutine still draining the
	// payload, so those buffers are dropped to the GC instead.
	buf := wire.GetBuffer()
	buf.B = wire.AppendEncode(buf.B[:0], msg)
	// Maintenance-plane byte accounting: SUMMARY exchanges and REPLICATE
	// pushes (republish, anti-entropy, read-repair, §4.1 caching) are
	// what the bandwidth-frugality claim is about, so their payload
	// sizes are metered transport-independently here.
	maint := msg.Kind == wire.KindSummary || msg.Kind == wire.KindReplicate
	if maint {
		n.aeBytesOut.Add(int64(len(buf.B)))
	}
	raw, err := tr.Call(ctx, simnet.Addr(to.Addr), buf.B)
	if maint && err == nil {
		n.aeBytesIn.Add(int64(len(raw)))
	}
	if ctx.Err() == nil {
		buf.Release()
	}
	if err != nil {
		// A local send failure (endpoint closed under us) says nothing
		// about the peer; only a timed-out exchange does. Likewise a
		// caller giving up (ctx ended) is not evidence the peer is dead,
		// and neither is an explicit busy rejection.
		if !errors.Is(err, simnet.ErrClosed) && !errors.Is(err, wire.ErrBusy) && ctx.Err() == nil {
			n.table.Remove(to.ID)
		}
		return nil, err
	}
	resp, err := wire.Decode(raw)
	if err != nil {
		return nil, err
	}
	if resp.Kind == wire.KindBusy {
		return nil, fmt.Errorf("kademlia: %s is busy: %w", to.Addr, wire.ErrBusy)
	}
	if resp.Kind == wire.KindUnauthorized {
		// An UNAUTHORIZED verdict comes from a live, policy-enforcing
		// peer: surface the typed error and keep the peer routable — it
		// is this node's standing that is in question, not the peer's.
		return nil, fmt.Errorf("kademlia: %s refused: %s: %w", to.Addr, resp.Err, wire.ErrUnauthorized)
	}
	if resp.Kind == wire.KindError {
		return nil, fmt.Errorf("kademlia: remote error: %s", resp.Err)
	}
	if resp.From.ID != (kadid.ID{}) && resp.From.Addr != "" {
		n.table.Update(resp.From)
	}
	return resp, nil
}

// pingContact is the routing table's liveness probe. Table-internal
// pings are background work with no caller to cancel them, so they run
// under the background context.
func (n *Node) pingContact(c wire.Contact) bool {
	return n.Ping(context.Background(), c)
}

// Ping probes a contact and returns whether it answered before ctx
// ended.
func (n *Node) Ping(ctx context.Context, c wire.Contact) bool {
	resp, err := n.call(ctx, c, &wire.Message{Kind: wire.KindPing})
	return err == nil && resp.Kind == wire.KindPong
}

// Discover pings a bare address and returns the full contact of the
// node answering there — how a joining node learns its bootstrap
// contact from a host:port alone.
func (n *Node) Discover(ctx context.Context, addr string) (wire.Contact, error) {
	resp, err := n.call(ctx, wire.Contact{Addr: addr}, &wire.Message{Kind: wire.KindPing})
	if err != nil {
		return wire.Contact{}, err
	}
	if resp.From.ID.IsZero() || resp.From.Addr == "" {
		return wire.Contact{}, errors.New("kademlia: peer did not identify itself")
	}
	return resp.From, nil
}

// Bootstrap introduces the node to the overlay through seed contacts:
// it inserts them into the table and performs an iterative lookup of its
// own identifier, which populates the buckets closest to the node.
func (n *Node) Bootstrap(ctx context.Context, seeds []wire.Contact) error {
	for _, s := range seeds {
		if s.ID != n.id {
			n.table.Update(s)
		}
	}
	if n.table.Len() == 0 {
		return ErrNoContacts
	}
	n.IterativeFindNode(ctx, n.id)
	return ctx.Err()
}

// RefreshBucket performs the Kademlia bucket-refresh procedure for one
// bucket index: it looks up a random identifier falling in that bucket.
func (n *Node) RefreshBucket(ctx context.Context, bucket int, seed int64) {
	id := kadid.RandomInBucket(n.id, bucket, newRand(seed))
	n.IterativeFindNode(ctx, id)
}

// Store places entries under key on the k closest nodes to key
// (replication at write time). The writer itself participates when it
// is one of the k closest, so every writer converges on the same
// replica set. It returns how many replicas acknowledged. When ctx ends
// mid-operation the in-flight replica RPCs are aborted; if the quorum
// was not reached by then, ctx's error is returned with the partial ack
// count.
func (n *Node) Store(ctx context.Context, key kadid.ID, entries []wire.Entry) (int, error) {
	_, _, targets, _, lerr := n.iterativeLookup(ctx, key, false, 0)
	if lerr != nil {
		return 0, lerr
	}
	targets = n.insertSelf(targets, key)
	if len(targets) == 0 {
		return 0, ErrNoContacts
	}
	acks, busy, unauth := 0, 0, 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, c := range targets {
		if c.ID == n.id {
			// The local replica applies the same signed-mutation rule the
			// remote ones enforce: a node must not hold entries it would
			// refuse from the network.
			if n.cfg.CAPub != nil && vetEntries(key, entries) != "" {
				mu.Lock()
				unauth++
				mu.Unlock()
				continue
			}
			if n.store.Append(ctx, key, entries) == nil {
				mu.Lock()
				acks++
				mu.Unlock()
			}
			continue
		}
		wg.Add(1)
		go func(c wire.Contact) {
			defer wg.Done()
			resp, err := n.call(ctx, c, &wire.Message{Kind: wire.KindStore, Target: key, Entries: entries})
			mu.Lock()
			defer mu.Unlock()
			if err == nil && resp.Kind == wire.KindStoreAck {
				acks++
			} else if errors.Is(err, wire.ErrBusy) {
				busy++
			} else if errors.Is(err, wire.ErrUnauthorized) {
				unauth++
			}
		}(c)
	}
	wg.Wait()
	if acks < n.cfg.MinStoreAcks {
		if err := ctx.Err(); err != nil {
			return acks, err
		}
	}
	if acks == 0 {
		if unauth > 0 {
			// Every replica that answered gave a policy verdict, not a
			// failure: the write is refused, retrying is pointless.
			return 0, fmt.Errorf("kademlia: %d replica(s) refused store of %s: %w", unauth, key.Short(), wire.ErrUnauthorized)
		}
		if busy > 0 {
			// The replica set is saturated, not gone: surface the typed
			// busy error so upper layers can back off instead of treating
			// the write target as unreachable.
			return 0, fmt.Errorf("kademlia: %d replica(s) rejected store of %s: %w", busy, key.Short(), wire.ErrBusy)
		}
		return 0, fmt.Errorf("kademlia: no replica acknowledged store of %s", key.Short())
	}
	if acks < n.cfg.MinStoreAcks {
		return acks, fmt.Errorf("kademlia: store of %s reached only %d of %d required replica acks",
			key.Short(), acks, n.cfg.MinStoreAcks)
	}
	return acks, nil
}

// insertSelf adds the node's own contact to a distance-sorted contact
// list when it belongs among the k closest to key.
func (n *Node) insertSelf(sorted []wire.Contact, key kadid.ID) []wire.Contact {
	if len(sorted) >= n.cfg.K && !kadid.Closer(n.id, sorted[n.cfg.K-1].ID, key) {
		return sorted
	}
	out := append(sorted, n.Self())
	for i := len(out) - 1; i > 0 && kadid.Closer(out[i].ID, out[i-1].ID, key); i-- {
		out[i], out[i-1] = out[i-1], out[i]
	}
	if len(out) > n.cfg.K {
		out = out[:n.cfg.K]
	}
	return out
}

// FindValue retrieves the block stored under key, asking for at most
// topN entries (0 = all). It performs one iterative lookup and returns
// ErrNotFound if no replica holds the block. When ctx ends before a
// value was assembled, ctx.Err() is returned instead — the caller's
// deadline wins over every internal retry budget.
func (n *Node) FindValue(ctx context.Context, key kadid.ID, topN int) ([]wire.Entry, error) {
	entries, found, _, busy, lerr := n.iterativeLookup(ctx, key, true, topN)
	if lerr != nil {
		return nil, lerr
	}
	if local, ok := n.store.Get(key, topN); ok {
		// The reader may itself hold a replica; merge it in field-wise,
		// keeping the larger count (counts only grow).
		entries = mergeEntriesMax(entries, local)
		found = true
		if n.cfg.ReadRepair && topN == 0 {
			// Self-repair: a replica that reads the block and discovers
			// it was stale adopts the merged state it just computed.
			// Best-effort — a repair the durable store cannot log is
			// simply skipped (the read itself already succeeded).
			n.store.MergeMax(ctx, key, entries) //nolint:errcheck
		}
		if topN > 0 && len(entries) > topN {
			entries = entries[:topN]
		}
	}
	if !found {
		if busy > 0 {
			// Replicas rejected the read at admission; "not found" would
			// be a lie (the block may exist behind the saturation).
			return nil, fmt.Errorf("kademlia: %d candidate(s) busy during lookup of %s: %w", busy, key.Short(), wire.ErrBusy)
		}
		return nil, ErrNotFound
	}
	if n.cfg.CAPub != nil {
		kept := entries[:0]
		for _, e := range entries {
			if likir.VerifyEntry(key, e.Field, e.Data, e.Author, e.Sig) == nil {
				kept = append(kept, e)
			}
		}
		entries = kept
	}
	return entries, nil
}

// IterativeFindNode locates the k closest live nodes to target, sorted
// by ascending XOR distance. A ctx that ends mid-lookup cuts the walk
// short; the contacts gathered so far are returned best-effort (callers
// that must distinguish a complete window check ctx.Err() themselves).
func (n *Node) IterativeFindNode(ctx context.Context, target kadid.ID) []wire.Contact {
	_, _, closest, _, _ := n.iterativeLookup(ctx, target, false, 0)
	return closest
}
