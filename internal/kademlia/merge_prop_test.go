package kademlia

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"dharma/internal/kadid"
	"dharma/internal/wire"
)

// Property-style randomized test of the replica-maintenance merge.
// MergeMax must behave as the G-Counter-style join it claims to be:
//
//   - idempotent: replaying any batch changes nothing;
//   - commutative: the final state is independent of the order batches
//     (and entries within them) arrive in;
//   - monotone: no merge ever lowers a field's count;
//
// each checked against a brute-force model (field-wise maximum over all
// entries seen, data adopted first-wins).
func TestMergeMaxProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	fields := []string{"a", "b", "c", "d", "e", "f", "g", "h"}

	randBatch := func() []wire.Entry {
		n := 1 + rng.Intn(6)
		batch := make([]wire.Entry, n)
		for i := range batch {
			e := wire.Entry{
				Field: fields[rng.Intn(len(fields))],
				Count: uint64(rng.Intn(40)),
			}
			if rng.Intn(4) == 0 {
				e.Data = []byte(fmt.Sprintf("d%d", rng.Intn(3)))
			}
			batch[i] = e
		}
		return batch
	}

	snapshot := func(s *Store, key kadid.ID) map[string]uint64 {
		out := make(map[string]uint64)
		es, ok := s.Get(key, 0)
		if !ok {
			return out
		}
		for _, e := range es {
			out[e.Field] = e.Count
		}
		return out
	}

	for trial := 0; trial < 150; trial++ {
		key := kadid.HashString(fmt.Sprintf("prop%d", trial))
		batches := make([][]wire.Entry, 1+rng.Intn(8))
		for i := range batches {
			batches[i] = randBatch()
		}

		// Brute-force model: per-field maximum over every entry of every
		// batch. Within one MergeMax call entries apply sequentially, so
		// duplicates of a field inside a batch also resolve to the max —
		// the model need not distinguish batch boundaries at all.
		model := make(map[string]uint64)
		for _, b := range batches {
			for _, e := range b {
				if e.Count >= model[e.Field] {
					model[e.Field] = e.Count
				}
			}
		}

		// Apply in order, checking monotonicity after every merge.
		s1 := NewStore()
		prev := map[string]uint64{}
		for _, b := range batches {
			s1.MergeMax(context.Background(), key, b)
			cur := snapshot(s1, key)
			for f, c := range prev {
				if cur[f] < c {
					t.Fatalf("trial %d: merge lowered %q: %d -> %d", trial, f, c, cur[f])
				}
			}
			prev = cur
		}
		got := snapshot(s1, key)
		if len(got) != len(model) {
			t.Fatalf("trial %d: %d fields, model has %d", trial, len(got), len(model))
		}
		for f, want := range model {
			if got[f] != want {
				t.Fatalf("trial %d: field %q = %d, model says %d", trial, f, got[f], want)
			}
		}

		// Idempotence: replaying every batch (twice, shuffled) is a no-op.
		for _, i := range rng.Perm(len(batches)) {
			s1.MergeMax(context.Background(), key, batches[i])
			s1.MergeMax(context.Background(), key, batches[i])
		}
		if again := snapshot(s1, key); !mapsEqual(again, got) {
			t.Fatalf("trial %d: replay changed the block: %v -> %v", trial, got, again)
		}

		// Commutativity: a second store receiving the batches in reverse
		// order (and each batch's entries reversed) converges to the
		// same state.
		s2 := NewStore()
		for i := len(batches) - 1; i >= 0; i-- {
			rev := make([]wire.Entry, len(batches[i]))
			for j, e := range batches[i] {
				rev[len(rev)-1-j] = e
			}
			s2.MergeMax(context.Background(), key, rev)
		}
		if other := snapshot(s2, key); !mapsEqual(other, got) {
			t.Fatalf("trial %d: merge order changed the block: %v vs %v", trial, got, other)
		}

		// The maintained top index must agree with the converged counts:
		// a filtered read returns the true maxima in order.
		top, _ := s1.Get(key, 3)
		for i := 1; i < len(top); i++ {
			if entryLess(top[i], top[i-1]) {
				t.Fatalf("trial %d: top index out of order: %v", trial, top)
			}
		}
	}
}

func mapsEqual(a, b map[string]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
