package kademlia

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"dharma/internal/kadid"
	"dharma/internal/wire"
)

// Property-style randomized test of the replica-maintenance merge.
// MergeMax must behave as the G-Counter-style join it claims to be:
//
//   - idempotent: replaying any batch changes nothing;
//   - commutative: the final state is independent of the order batches
//     (and entries within them) arrive in;
//   - monotone: no merge ever lowers a field's count;
//
// each checked against a brute-force model (field-wise maximum over all
// entries seen, data adopted first-wins).
func TestMergeMaxProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	fields := []string{"a", "b", "c", "d", "e", "f", "g", "h"}

	randBatch := func() []wire.Entry {
		n := 1 + rng.Intn(6)
		batch := make([]wire.Entry, n)
		for i := range batch {
			e := wire.Entry{
				Field: fields[rng.Intn(len(fields))],
				Count: uint64(rng.Intn(40)),
			}
			if rng.Intn(4) == 0 {
				e.Data = []byte(fmt.Sprintf("d%d", rng.Intn(3)))
			}
			batch[i] = e
		}
		return batch
	}

	snapshot := func(s *Store, key kadid.ID) map[string]uint64 {
		out := make(map[string]uint64)
		es, ok := s.Get(key, 0)
		if !ok {
			return out
		}
		for _, e := range es {
			out[e.Field] = e.Count
		}
		return out
	}

	for trial := 0; trial < 150; trial++ {
		key := kadid.HashString(fmt.Sprintf("prop%d", trial))
		batches := make([][]wire.Entry, 1+rng.Intn(8))
		for i := range batches {
			batches[i] = randBatch()
		}

		// Brute-force model: per-field maximum over every entry of every
		// batch. Within one MergeMax call entries apply sequentially, so
		// duplicates of a field inside a batch also resolve to the max —
		// the model need not distinguish batch boundaries at all.
		model := make(map[string]uint64)
		for _, b := range batches {
			for _, e := range b {
				if e.Count >= model[e.Field] {
					model[e.Field] = e.Count
				}
			}
		}

		// Apply in order, checking monotonicity after every merge.
		s1 := NewStore()
		prev := map[string]uint64{}
		for _, b := range batches {
			s1.MergeMax(context.Background(), key, b)
			cur := snapshot(s1, key)
			for f, c := range prev {
				if cur[f] < c {
					t.Fatalf("trial %d: merge lowered %q: %d -> %d", trial, f, c, cur[f])
				}
			}
			prev = cur
		}
		got := snapshot(s1, key)
		if len(got) != len(model) {
			t.Fatalf("trial %d: %d fields, model has %d", trial, len(got), len(model))
		}
		for f, want := range model {
			if got[f] != want {
				t.Fatalf("trial %d: field %q = %d, model says %d", trial, f, got[f], want)
			}
		}

		// Idempotence: replaying every batch (twice, shuffled) is a no-op.
		for _, i := range rng.Perm(len(batches)) {
			s1.MergeMax(context.Background(), key, batches[i])
			s1.MergeMax(context.Background(), key, batches[i])
		}
		if again := snapshot(s1, key); !mapsEqual(again, got) {
			t.Fatalf("trial %d: replay changed the block: %v -> %v", trial, got, again)
		}

		// Commutativity: a second store receiving the batches in reverse
		// order (and each batch's entries reversed) converges to the
		// same state.
		s2 := NewStore()
		for i := len(batches) - 1; i >= 0; i-- {
			rev := make([]wire.Entry, len(batches[i]))
			for j, e := range batches[i] {
				rev[len(rev)-1-j] = e
			}
			s2.MergeMax(context.Background(), key, rev)
		}
		if other := snapshot(s2, key); !mapsEqual(other, got) {
			t.Fatalf("trial %d: merge order changed the block: %v vs %v", trial, got, other)
		}

		// The maintained top index must agree with the converged counts:
		// a filtered read returns the true maxima in order.
		top, _ := s1.Get(key, 3)
		for i := 1; i < len(top); i++ {
			if entryLess(top[i], top[i-1]) {
				t.Fatalf("trial %d: top index out of order: %v", trial, top)
			}
		}
	}
}

// TestDeltaRepairConverges is the property behind delta-based sync and
// read-repair: for random divergent replica pairs, exchanging only the
// deltaEntries each side computes against the other's counts — applied
// via MergeMax — converges both replicas to the field-wise maximum of
// the pair. The exchange must also be idempotent (re-applying a delta
// changes nothing) and commutative (which replica pushes first does not
// matter), because under churn deltas are retried and interleave.
func TestDeltaRepairConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(515151))
	fields := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"}

	randDivergent := func(key kadid.ID) (sa, sb *Store) {
		sa, sb = NewStore(), NewStore()
		// A shared prefix both replicas saw, then independent suffixes —
		// the shape a partition or missed write leaves behind.
		shared := make([]wire.Entry, 1+rng.Intn(6))
		for i := range shared {
			shared[i] = wire.Entry{Field: fields[rng.Intn(len(fields))], Count: uint64(1 + rng.Intn(40))}
		}
		sa.MergeMax(context.Background(), key, shared)
		sb.MergeMax(context.Background(), key, shared)
		for _, store := range []*Store{sa, sb} {
			for op := 0; op < rng.Intn(5); op++ {
				batch := make([]wire.Entry, 1+rng.Intn(4))
				for i := range batch {
					batch[i] = wire.Entry{Field: fields[rng.Intn(len(fields))], Count: uint64(1 + rng.Intn(80))}
				}
				store.Append(context.Background(), key, batch)
			}
		}
		return sa, sb
	}

	snapshot := func(s *Store, key kadid.ID) map[string]uint64 {
		out := make(map[string]uint64)
		es, ok := s.Get(key, 0)
		if !ok {
			return out
		}
		for _, e := range es {
			out[e.Field] = e.Count
		}
		return out
	}

	exchange := func(from, to *Store, key kadid.ID) []wire.Entry {
		local, _ := from.Get(key, 0)
		remote := snapshot(to, key)
		delta := deltaEntries(local, remote)
		to.MergeMax(context.Background(), key, delta)
		return delta
	}

	for trial := 0; trial < 150; trial++ {
		key := kadid.HashString(fmt.Sprintf("delta%d", trial))
		sa, sb := randDivergent(key)

		// The model: field-wise maximum over both replicas.
		model := snapshot(sa, key)
		for f, c := range snapshot(sb, key) {
			if c > model[f] {
				model[f] = c
			}
		}

		// One exchange in each direction converges both sides.
		deltaAB := exchange(sa, sb, key)
		deltaBA := exchange(sb, sa, key)
		gotA, gotB := snapshot(sa, key), snapshot(sb, key)
		if !mapsEqual(gotA, model) || !mapsEqual(gotB, model) {
			t.Fatalf("trial %d: replicas did not converge to the max:\n a=%v\n b=%v\n model=%v",
				trial, gotA, gotB, model)
		}

		// Idempotence: replaying both deltas changes nothing.
		sb.MergeMax(context.Background(), key, deltaAB)
		sa.MergeMax(context.Background(), key, deltaBA)
		if !mapsEqual(snapshot(sa, key), model) || !mapsEqual(snapshot(sb, key), model) {
			t.Fatalf("trial %d: delta replay moved a converged replica", trial)
		}

		// After convergence the digests agree — the next summary exchange
		// is a match and moves no data (deltas in both directions empty).
		sumA, _ := sa.Summary(key)
		sumB, _ := sb.Summary(key)
		if sumA != sumB {
			t.Fatalf("trial %d: converged replicas summarise differently: %+v vs %+v", trial, sumA, sumB)
		}
		la, _ := sa.Get(key, 0)
		if d := deltaEntries(la, snapshot(sb, key)); len(d) != 0 {
			t.Fatalf("trial %d: converged replicas still produce a delta: %v", trial, d)
		}

		// Commutativity: a fresh pair exchanging in the opposite order
		// converges to the same state.
		sc, sd := randDivergent(kadid.HashString(fmt.Sprintf("delta%d-swap", trial)))
		key2 := kadid.HashString(fmt.Sprintf("delta%d-swap", trial))
		model2 := snapshot(sc, key2)
		for f, c := range snapshot(sd, key2) {
			if c > model2[f] {
				model2[f] = c
			}
		}
		exchange(sd, sc, key2) // B->A first this time
		exchange(sc, sd, key2)
		if !mapsEqual(snapshot(sc, key2), model2) || !mapsEqual(snapshot(sd, key2), model2) {
			t.Fatalf("trial %d: reversed exchange order did not converge", trial)
		}
	}
}

func mapsEqual(a, b map[string]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
