package kademlia

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Maintainer runs a node's periodic background maintenance, the three
// duties Kademlia prescribes for surviving churn:
//
//   - dead-contact eviction: every routing-table contact is pinged and
//     non-responders are dropped, so lookups stop wasting their k-window
//     on crashed peers;
//   - bucket refresh: random lookups inside a few buckets per round keep
//     the table populated as the membership moves;
//   - anti-entropy: blocks are reconciled with the k nodes currently
//     closest to their key via the summary exchange (digest first, delta
//     on mismatch — see antientropy.go), under per-block timers: a block
//     just written skips a round, an unchanged synced block waits
//     RepublishEvery rounds between checks. This is what moves replicas
//     onto joiners and off the footprint of the dead, at a per-round
//     cost proportional to divergence instead of store size.
//
// Rounds run at a jittered interval so a cluster of maintainers does not
// phase-lock into synchronized republish storms.
type Maintainer struct {
	node *Node
	cfg  MaintainerConfig

	rngMu sync.Mutex
	rng   *rand.Rand

	rounds     atomic.Int64
	evicted    atomic.Int64
	refreshed  atomic.Int64
	blocks     atomic.Int64
	acks       atomic.Int64
	suppressed atomic.Int64
	skipped    atomic.Int64
}

// MaintainerConfig parameterises the maintenance loop.
type MaintainerConfig struct {
	// Interval is the base period between rounds (default 250ms).
	Interval time.Duration
	// Jitter is the fraction of Interval each wait is randomized by,
	// uniformly in ±Jitter·Interval (default 0.25, clamped to [0,1)).
	Jitter float64
	// RefreshBuckets is how many non-empty buckets are refreshed per
	// round (default 2). Refreshing every bucket every round would cost
	// a full lookup per bucket; a rotating sample amortizes it.
	RefreshBuckets int
	// RepublishEvery is how many rounds an unchanged, already-synced
	// block sits out between anti-entropy checks (default
	// kademlia.DefaultRepublishEvery). Every block is still force-synced
	// at least once per RepublishEvery rounds, so it bounds replica
	// staleness at RepublishEvery·Interval.
	RepublishEvery int
	// Seed drives the jitter and the refresh choices.
	Seed int64
}

func (c MaintainerConfig) withDefaults() MaintainerConfig {
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.Jitter < 0 || c.Jitter >= 1 {
		c.Jitter = 0.25
	}
	if c.Jitter == 0 {
		c.Jitter = 0.25
	}
	if c.RefreshBuckets <= 0 {
		c.RefreshBuckets = 2
	}
	if c.RepublishEvery <= 0 {
		c.RepublishEvery = DefaultRepublishEvery
	}
	return c
}

// MaintenanceStats aggregates what maintenance rounds have done.
type MaintenanceStats struct {
	Rounds     int64 // maintenance rounds completed
	Evicted    int64 // dead contacts dropped from routing tables
	Refreshed  int64 // bucket refresh lookups performed
	Blocks     int64 // blocks anti-entropy-synced
	Acks       int64 // replica acknowledgements (digest matches included)
	Suppressed int64 // block-rounds skipped as recently written
	Skipped    int64 // block-rounds skipped as synced and not yet due
}

// NewMaintainer creates a maintainer for node n. Run starts the loop;
// RunOnce performs a single round synchronously (tests, benchmarks and
// the churn experiment drive it directly).
func NewMaintainer(n *Node, cfg MaintainerConfig) *Maintainer {
	cfg = cfg.withDefaults()
	return &Maintainer{
		node: n,
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
}

// RunOnce performs one maintenance round: evict, refresh, republish.
// On a detached node (crashed, departed) it is a no-op: a dead node
// performs no maintenance, and must not pollute the stats with rounds
// that can reach nobody. ctx bounds the round — a cancelled context
// aborts the in-flight refresh and republish RPCs mid-sweep.
func (m *Maintainer) RunOnce(ctx context.Context) {
	if m.node.Detached() {
		return
	}
	m.evicted.Add(int64(m.node.EvictDead(ctx)))
	buckets := m.node.Table().NonEmptyBuckets()
	for i := 0; i < m.cfg.RefreshBuckets && len(buckets) > 0; i++ {
		if ctx.Err() != nil {
			return
		}
		m.rngMu.Lock()
		idx := buckets[m.rng.Intn(len(buckets))]
		seed := m.rng.Int63()
		m.rngMu.Unlock()
		m.node.RefreshBucket(ctx, idx, seed)
		m.refreshed.Add(1)
	}
	r := m.node.AntiEntropyOnce(ctx, m.cfg.RepublishEvery)
	m.blocks.Add(int64(r.Synced))
	m.acks.Add(int64(r.Acks))
	m.suppressed.Add(int64(r.Suppressed))
	m.skipped.Add(int64(r.Skipped))
	m.rounds.Add(1)
}

// Run executes maintenance rounds until ctx is cancelled. The same ctx
// bounds each round's RPCs, so cancellation does not just stop the
// ticker — it cuts the round short.
func (m *Maintainer) Run(ctx context.Context) {
	timer := time.NewTimer(m.nextWait())
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}
		m.RunOnce(ctx)
		timer.Reset(m.nextWait())
	}
}

// nextWait draws the jittered interval for the next round.
func (m *Maintainer) nextWait() time.Duration {
	m.rngMu.Lock()
	defer m.rngMu.Unlock()
	span := float64(m.cfg.Interval) * m.cfg.Jitter
	return m.cfg.Interval + time.Duration((2*m.rng.Float64()-1)*span)
}

// Stats returns a snapshot of the maintainer's counters.
func (m *Maintainer) Stats() MaintenanceStats {
	return MaintenanceStats{
		Rounds:     m.rounds.Load(),
		Evicted:    m.evicted.Load(),
		Refreshed:  m.refreshed.Load(),
		Blocks:     m.blocks.Load(),
		Acks:       m.acks.Load(),
		Suppressed: m.suppressed.Load(),
		Skipped:    m.skipped.Load(),
	}
}

// add accumulates o into s (for aggregating a MaintainerSet).
func (s *MaintenanceStats) add(o MaintenanceStats) {
	s.Rounds += o.Rounds
	s.Evicted += o.Evicted
	s.Refreshed += o.Refreshed
	s.Blocks += o.Blocks
	s.Acks += o.Acks
	s.Suppressed += o.Suppressed
	s.Skipped += o.Skipped
}

// EvictDead pings every routing-table contact and reports how many were
// dropped for not answering twice. A single failed exchange is not
// evidence of death on a lossy network — under an injected 2% drop rate
// one-strike eviction would falsely remove ~2% of healthy contacts per
// sweep — so a failed ping (whose error path already removed the
// contact) gets one retry, and a successful retry re-admits the contact
// through the routing table's usual update path. A cancelled ctx stops
// the sweep early (cancelled pings evict nobody: node.call only removes
// contacts on genuine failures).
func (n *Node) EvictDead(ctx context.Context) int {
	if n.Detached() {
		return 0
	}
	evicted := 0
	for _, c := range n.table.Contacts() {
		if ctx.Err() != nil {
			return evicted
		}
		if n.Ping(ctx, c) || n.Ping(ctx, c) {
			continue
		}
		// Count only real removals: if this node detached mid-sweep the
		// pings failed locally (errDetached) and the table kept the
		// contact, which must not inflate the eviction stat.
		if !n.table.Contains(c.ID) {
			evicted++
		}
	}
	return evicted
}

// MaintainerSet is the cluster's membership-aware maintenance pool:
// one background Maintainer per live member, started and stopped as
// membership moves. A node joining after StartMaintenance (AddNode, a
// churn joiner, a revived crasher) gets its own maintainer immediately
// — it republishes its blocks itself instead of depending on the
// original members' sweeps — and a node that crashes or leaves has its
// loop cancelled rather than left pinging the dead.
type MaintainerSet struct {
	ctx context.Context
	cfg MaintainerConfig

	mu   sync.Mutex
	all  []*Maintainer                // every maintainer ever started (stats survive member departure)
	live map[*Node]context.CancelFunc // currently running loops
	next int64                        // seed counter, so late joiners decorrelate too
	wg   sync.WaitGroup
}

// StartMaintenance launches one background Maintainer per current
// member, each seeded distinctly so their jitter decorrelates, and
// registers the pool with the cluster: every later AddNode/Revive
// starts a maintainer for the new member, every RemoveNode/Crash stops
// the departing member's. Cancel ctx to stop the whole pool, then Wait
// for the loops to exit; membership changes after cancellation are
// ignored.
func (c *Cluster) StartMaintenance(ctx context.Context, cfg MaintainerConfig) *MaintainerSet {
	set := &MaintainerSet{
		ctx:  ctx,
		cfg:  cfg,
		live: make(map[*Node]context.CancelFunc),
	}
	c.mu.Lock()
	c.maint = set
	nodes := append([]*Node(nil), c.Nodes...)
	c.mu.Unlock()
	for _, n := range nodes {
		set.add(n)
	}
	return set
}

// add starts a maintainer for n (idempotent; no-op after the pool's
// context ended).
func (s *MaintainerSet) add(n *Node) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ctx.Err() != nil {
		return
	}
	if _, ok := s.live[n]; ok {
		return
	}
	s.next++
	mcfg := s.cfg
	mcfg.Seed = s.cfg.Seed + s.next*0x9e3779b9
	m := NewMaintainer(n, mcfg)
	ctx, cancel := context.WithCancel(s.ctx)
	s.all = append(s.all, m)
	s.live[n] = cancel
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		m.Run(ctx)
	}()
}

// remove stops n's maintainer, if it has one.
func (s *MaintainerSet) remove(n *Node) {
	s.mu.Lock()
	cancel := s.live[n]
	delete(s.live, n)
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// Len reports how many maintainer loops are currently live.
func (s *MaintainerSet) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.live)
}

// Covers reports whether n currently has a live maintainer.
func (s *MaintainerSet) Covers(n *Node) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.live[n]
	return ok
}

// Wait blocks until every maintainer loop has observed cancellation.
func (s *MaintainerSet) Wait() { s.wg.Wait() }

// Stats aggregates the counters of every maintainer the pool ever
// started, including those of members that have since departed.
func (s *MaintainerSet) Stats() MaintenanceStats {
	s.mu.Lock()
	ms := append([]*Maintainer(nil), s.all...)
	s.mu.Unlock()
	var out MaintenanceStats
	for _, m := range ms {
		out.add(m.Stats())
	}
	return out
}
