package kademlia

import (
	"fmt"
	"testing"

	"dharma/internal/kadid"
	"dharma/internal/wire"
)

func benchCluster(b *testing.B, n int) *Cluster {
	b.Helper()
	cl, err := NewCluster(ClusterConfig{
		N:    n,
		Node: Config{K: 8, Alpha: 3},
		Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return cl
}

// BenchmarkIterativeLookup measures lookup latency against overlay
// size; Kademlia promises O(log n) hops.
func BenchmarkIterativeLookup(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cl := benchCluster(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cl.Nodes[i%n].IterativeFindNode(kadid.HashString(fmt.Sprintf("t%d", i)))
			}
		})
	}
}

// BenchmarkStoreReplicated measures a replicated write (lookup + k
// STOREs).
func BenchmarkStoreReplicated(b *testing.B) {
	cl := benchCluster(b, 64)
	entries := []wire.Entry{{Field: "f", Count: 1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Nodes[i%64].Store(kadid.HashString(fmt.Sprintf("k%d", i%256)), entries); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFindValueHot measures repeated reads of one popular block.
func BenchmarkFindValueHot(b *testing.B) {
	cl := benchCluster(b, 64)
	key := kadid.HashString("hot")
	if _, err := cl.Nodes[0].Store(key, []wire.Entry{{Field: "f", Count: 1}}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Nodes[i%64].FindValue(key, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoutingTableUpdate measures the table's hot path.
func BenchmarkRoutingTableUpdate(b *testing.B) {
	tab := NewTable(kadid.HashString("self"), 20, nil)
	contacts := make([]wire.Contact, 1024)
	for i := range contacts {
		contacts[i] = wire.Contact{ID: kadid.HashString(fmt.Sprintf("c%d", i)), Addr: "a"}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Update(contacts[i%len(contacts)])
	}
}

// BenchmarkLocalStoreAppend measures the storage merge path.
func BenchmarkLocalStoreAppend(b *testing.B) {
	s := NewStore()
	keys := make([]kadid.ID, 64)
	for i := range keys {
		keys[i] = kadid.HashString(fmt.Sprintf("k%d", i))
	}
	e := []wire.Entry{{Field: "f", Count: 1}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Append(keys[i%len(keys)], e)
	}
}
