package kademlia

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"

	"dharma/internal/kadid"
	"dharma/internal/persist"
	"dharma/internal/simnet"
	"dharma/internal/wire"
)

func benchCluster(b *testing.B, n int) *Cluster {
	b.Helper()
	cl, err := NewCluster(ClusterConfig{
		N:    n,
		Node: Config{K: 8, Alpha: 3},
		Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return cl
}

// BenchmarkIterativeLookup measures lookup latency against overlay
// size; Kademlia promises O(log n) hops.
func BenchmarkIterativeLookup(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cl := benchCluster(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cl.Nodes[i%n].IterativeFindNode(context.Background(), kadid.HashString(fmt.Sprintf("t%d", i)))
			}
		})
	}
}

// BenchmarkStoreReplicated measures a replicated write (lookup + k
// STOREs).
func BenchmarkStoreReplicated(b *testing.B) {
	cl := benchCluster(b, 64)
	entries := []wire.Entry{{Field: "f", Count: 1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Nodes[i%64].Store(context.Background(), kadid.HashString(fmt.Sprintf("k%d", i%256)), entries); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFindValueHot measures repeated reads of one popular block.
func BenchmarkFindValueHot(b *testing.B) {
	cl := benchCluster(b, 64)
	key := kadid.HashString("hot")
	if _, err := cl.Nodes[0].Store(context.Background(), key, []wire.Entry{{Field: "f", Count: 1}}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Nodes[i%64].FindValue(context.Background(), key, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoutingTableUpdate measures the table's hot path.
func BenchmarkRoutingTableUpdate(b *testing.B) {
	tab := NewTable(kadid.HashString("self"), 20, nil)
	contacts := make([]wire.Contact, 1024)
	for i := range contacts {
		contacts[i] = wire.Contact{ID: kadid.HashString(fmt.Sprintf("c%d", i)), Addr: "a"}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Update(contacts[i%len(contacts)])
	}
}

// BenchmarkLocalStoreAppend measures the storage merge path.
func BenchmarkLocalStoreAppend(b *testing.B) {
	s := NewStore()
	keys := make([]kadid.ID, 64)
	for i := range keys {
		keys[i] = kadid.HashString(fmt.Sprintf("k%d", i))
	}
	e := []wire.Entry{{Field: "f", Count: 1}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Append(context.Background(), keys[i%len(keys)], e)
	}
}

// BenchmarkRepublishOnce measures one full republish round of a node
// holding a realistic block population (the core of a maintenance
// round: one iterative lookup plus up to k REPLICATEs per block).
func BenchmarkRepublishOnce(b *testing.B) {
	for _, blocks := range []int{16, 64} {
		b.Run(fmt.Sprintf("blocks=%d", blocks), func(b *testing.B) {
			cl := benchCluster(b, 32)
			republisher := cl.Nodes[1]
			entries := []wire.Entry{{Field: "f", Count: 3}, {Field: "g", Count: 1}}
			for i := 0; i < blocks; i++ {
				republisher.LocalStore().Append(context.Background(), kadid.HashString(fmt.Sprintf("rep%d", i)), entries)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if blk, _ := republisher.RepublishOnce(context.Background()); blk != blocks {
					b.Fatalf("republished %d blocks, want %d", blk, blocks)
				}
			}
		})
	}
}

// BenchmarkChurnRecovery measures the acceptance path end to end: with
// a block replicated on k nodes, crash k-1 holders (SetDown, so the
// cluster is reusable across iterations) and time how long the
// survivor's maintenance round plus a verifying read take to restore
// full readability.
func BenchmarkChurnRecovery(b *testing.B) {
	cl := benchCluster(b, 32) // K = 8, so each recovery survives 7 crashes
	reader := cl.Nodes[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		key := kadid.HashString(fmt.Sprintf("recover%d", i))
		if _, err := cl.Nodes[2].Store(context.Background(), key, []wire.Entry{{Field: "f", Count: 5}}); err != nil {
			b.Fatal(err)
		}
		var holders []*Node
		for _, n := range cl.Snapshot() {
			if n != reader && n.LocalStore().Has(key) {
				holders = append(holders, n)
			}
		}
		if len(holders) < 2 {
			continue
		}
		survivor := holders[len(holders)-1]
		downed := holders[:len(holders)-1]
		for _, h := range downed {
			cl.Net.SetDown(simnet.Addr(h.Self().Addr), true)
		}
		m := NewMaintainer(survivor, MaintainerConfig{Seed: int64(i)})

		b.StartTimer()
		m.RunOnce(context.Background())
		if _, err := reader.FindValue(context.Background(), key, 0); err != nil {
			b.Fatalf("block unreadable after recovery: %v", err)
		}
		b.StopTimer()

		for _, h := range downed {
			cl.Net.SetDown(simnet.Addr(h.Self().Addr), false)
		}
		b.StartTimer()
	}
}

// baselineStore is the pre-refactor block store — one global RWMutex,
// plain maps, full O(n log n) sort on every Get — kept verbatim as the
// benchmark baseline the sharded, incrementally indexed Store is
// measured against.
type baselineStore struct {
	mu     sync.RWMutex
	blocks map[kadid.ID]map[string]*baselineEntry
}

type baselineEntry struct {
	count uint64
	data  []byte
}

func newBaselineStore() *baselineStore {
	return &baselineStore{blocks: make(map[kadid.ID]map[string]*baselineEntry)}
}

func (s *baselineStore) Append(key kadid.ID, entries []wire.Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	blk, ok := s.blocks[key]
	if !ok {
		blk = make(map[string]*baselineEntry, len(entries))
		s.blocks[key] = blk
	}
	for _, e := range entries {
		se, ok := blk[e.Field]
		if !ok {
			se = &baselineEntry{}
			blk[e.Field] = se
			if e.Init > 0 {
				se.count = e.Init
			} else {
				se.count = e.Count
			}
		} else {
			se.count += e.Count
		}
		if len(e.Data) > 0 {
			se.data = append([]byte(nil), e.Data...)
		}
	}
}

func (s *baselineStore) Get(key kadid.ID, topN int) ([]wire.Entry, bool) {
	s.mu.RLock()
	blk, ok := s.blocks[key]
	if !ok {
		s.mu.RUnlock()
		return nil, false
	}
	out := make([]wire.Entry, 0, len(blk))
	for f, se := range blk {
		out = append(out, wire.Entry{Field: f, Count: se.count, Data: se.data})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Field < out[j].Field
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out, true
}

// hotBlockSize is the ISSUE's reference block: a popular tag that has
// accumulated 50k reverse arcs.
const hotBlockSize = 50_000

func fillHotBlock(append func(kadid.ID, []wire.Entry), key kadid.ID) {
	const chunk = 1000
	for base := 0; base < hotBlockSize; base += chunk {
		entries := make([]wire.Entry, chunk)
		for i := range entries {
			f := base + i
			entries[i] = wire.Entry{Field: fmt.Sprintf("arc%05d", f), Count: uint64(f%9973 + 1)}
		}
		append(key, entries)
	}
}

// fillHotBlockStore adapts fillHotBlock to the error-returning Store
// mutator (the in-memory store never fails).
func fillHotBlockStore(s *Store, key kadid.ID) {
	fillHotBlock(func(k kadid.ID, es []wire.Entry) { s.Append(context.Background(), k, es) }, key) //nolint:errcheck
}

// BenchmarkRecovery measures a full durable-store recovery of the
// ISSUE's reference state — one 50k-entry hot block — in both layouts:
// a raw WAL tail (every append replayed record by record) and the
// compacted snapshot the background compaction converges to.
//
//	go test ./internal/kademlia/ -run xxx -bench Recovery
func BenchmarkRecovery(b *testing.B) {
	build := func(b *testing.B, compact bool) string {
		b.Helper()
		dir := b.TempDir()
		s, _, err := OpenDurableStore(dir, persist.Options{
			Sync: persist.SyncNone, SegmentBytes: 1 << 30, CompactBytes: -1,
		})
		if err != nil {
			b.Fatal(err)
		}
		fillHotBlockStore(s, kadid.HashString("hot"))
		if compact {
			if err := s.Compact(); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
		return dir
	}
	for _, layout := range []struct {
		name    string
		compact bool
	}{
		{"wal-tail", false},
		{"snapshot", true},
	} {
		b.Run(layout.name, func(b *testing.B) {
			dir := build(b, layout.compact)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, _, err := OpenDurableStore(dir, persist.Options{Sync: persist.SyncNone, CompactBytes: -1})
				if err != nil {
					b.Fatal(err)
				}
				if es, ok := s.Get(kadid.HashString("hot"), 100); !ok || len(es) != 100 {
					b.Fatalf("recovered store broken: ok=%v len=%d", ok, len(es))
				}
				b.StopTimer()
				s.Close()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkDurableAppend is the store-level view of the WAL cost: the
// same hot append as BenchmarkStoreAppendHot, but logged and flushed
// (no fsync, isolating the logging overhead from disk latency).
func BenchmarkDurableAppend(b *testing.B) {
	dir := b.TempDir()
	s, _, err := OpenDurableStore(dir, persist.Options{
		Sync: persist.SyncNone, SegmentBytes: 1 << 30, CompactBytes: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	key := kadid.HashString("hot")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append(context.Background(), key, []wire.Entry{{Field: fmt.Sprintf("arc%05d", i%hotBlockSize), Count: 1}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreGetHot measures the paper's hot read — Get(key, 100) on
// a 50k-entry block — against the incrementally maintained index.
func BenchmarkStoreGetHot(b *testing.B) {
	s := NewStore()
	key := kadid.HashString("hot")
	fillHotBlockStore(s, key)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if es, ok := s.Get(key, 100); !ok || len(es) != 100 {
			b.Fatalf("bad read: %d entries, ok=%v", len(es), ok)
		}
	}
}

// BenchmarkStoreGetHotBaseline is the identical read against the
// pre-refactor store, which re-sorts the full block on every call.
func BenchmarkStoreGetHotBaseline(b *testing.B) {
	s := newBaselineStore()
	key := kadid.HashString("hot")
	fillHotBlock(s.Append, key)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if es, ok := s.Get(key, 100); !ok || len(es) != 100 {
			b.Fatalf("bad read: %d entries, ok=%v", len(es), ok)
		}
	}
}

// BenchmarkStoreAppendHot measures the "+1 token" write against a 50k
// block — the price of keeping the index incremental.
func BenchmarkStoreAppendHot(b *testing.B) {
	s := NewStore()
	key := kadid.HashString("hot")
	fillHotBlockStore(s, key)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Append(context.Background(), key, []wire.Entry{{Field: fmt.Sprintf("arc%05d", i%hotBlockSize), Count: 1}})
	}
}

// BenchmarkStoreHotMixedParallel is the contended shape the shards and
// the index exist for: every core hammering reads and writes of the
// same hot block plus a spread of cold ones.
func BenchmarkStoreHotMixedParallel(b *testing.B) {
	s := NewStore()
	hot := kadid.HashString("hot")
	fillHotBlockStore(s, hot)
	cold := make([]kadid.ID, 256)
	for i := range cold {
		cold[i] = kadid.HashString(fmt.Sprintf("cold%d", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			switch i % 4 {
			case 0:
				s.Get(hot, 100)
			case 1:
				s.Append(context.Background(), hot, []wire.Entry{{Field: fmt.Sprintf("arc%05d", i%hotBlockSize), Count: 1}})
			case 2:
				s.Append(context.Background(), cold[i%len(cold)], []wire.Entry{{Field: "f", Count: 1}})
			default:
				s.Get(cold[i%len(cold)], 10)
			}
			i++
		}
	})
}
