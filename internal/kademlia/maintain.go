package kademlia

import (
	"sync"

	"dharma/internal/kadid"
	"dharma/internal/wire"
)

// Replica maintenance. Kademlia keeps values alive under churn by
// periodically republishing each stored block to the nodes currently
// closest to its key. Republication must be idempotent — replicas that
// already hold the block must not double-count its weights — so it uses
// a dedicated merge rule: per-field MAXIMUM instead of addition. Block
// counts grow monotonically, so max-merge converges every replica to
// the most complete state it has seen (an anti-entropy exchange in the
// G-Counter style; increments applied to disjoint replica sets during a
// partition are reconciled to the larger side rather than summed, an
// approximation consistent with DHARMA's tolerance for approximate
// weights).

// MergeMax merges entries into the block under key taking the maximum
// count per field. Data and its signature envelope are adopted when the
// local copy has none. Like Append, an empty entries slice materializes
// nothing.
func (s *Store) MergeMax(key kadid.ID, entries []wire.Entry) {
	if len(entries) == 0 {
		return
	}
	sh := s.shard(key)
	sh.mu.Lock()
	sh.mergeMaxLocked(key, entries)
	sh.mu.Unlock()
}

// RepublishOnce pushes every locally stored block to the k nodes
// currently closest to its key (max-merge on arrival). It returns how
// many blocks were pushed and how many replica stores succeeded.
// Deployments call this periodically; tests and the churn experiment
// call it directly.
func (n *Node) RepublishOnce() (blocks int, acks int) {
	return n.pushBlocks(true)
}

// pushBlocks is the replicate fan-out shared by RepublishOnce (the
// node stays a replica: its own contact counts towards the k targets)
// and Handoff (the node is leaving: all k targets are other nodes).
func (n *Node) pushBlocks(includeSelf bool) (blocks, acks int) {
	for _, key := range n.store.Keys() {
		entries, ok := n.store.Get(key, 0)
		if !ok {
			continue // deleted concurrently
		}
		targets := n.IterativeFindNode(key)
		if includeSelf {
			targets = n.insertSelf(targets, key)
		}
		blocks++
		acks += n.replicateTo(key, entries, targets)
	}
	return blocks, acks
}

// replicateTo sends one block to every target but the node itself (in
// parallel) and returns how many acknowledged.
func (n *Node) replicateTo(key kadid.ID, entries []wire.Entry, targets []wire.Contact) int {
	acks := 0
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, c := range targets {
		if c.ID == n.id {
			continue // we already hold it
		}
		wg.Add(1)
		go func(c wire.Contact) {
			defer wg.Done()
			resp, err := n.call(c, &wire.Message{
				Kind:    wire.KindReplicate,
				Target:  key,
				Entries: entries,
			})
			if err == nil && resp.Kind == wire.KindStoreAck {
				mu.Lock()
				acks++
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	return acks
}
