package kademlia

import (
	"context"
	"sync"

	"dharma/internal/kadid"
	"dharma/internal/persist"
	"dharma/internal/wire"
)

// Replica maintenance. Kademlia keeps values alive under churn by
// periodically republishing each stored block to the nodes currently
// closest to its key. Republication must be idempotent — replicas that
// already hold the block must not double-count its weights — so it uses
// a dedicated merge rule: per-field MAXIMUM instead of addition. Block
// counts grow monotonically, so max-merge converges every replica to
// the most complete state it has seen (an anti-entropy exchange in the
// G-Counter style; increments applied to disjoint replica sets during a
// partition are reconciled to the larger side rather than summed, an
// approximation consistent with DHARMA's tolerance for approximate
// weights).

// MergeMax merges entries into the block under key taking the maximum
// count per field. Data and its signature envelope are adopted when the
// local copy has none. Like Append, an empty entries slice materializes
// nothing, and a durable store logs the merge before acknowledging —
// a node is a replica, so replicated state must survive its restarts
// exactly like state it stored first-hand.
func (s *Store) MergeMax(ctx context.Context, key kadid.ID, entries []wire.Entry) error {
	if len(entries) == 0 {
		return nil
	}
	if s.dur != nil {
		return s.dur.commit(ctx, persist.Record{Op: persist.OpMergeMax, Key: key, Entries: entries},
			func() { s.applyMergeMax(key, entries) })
	}
	s.applyMergeMax(key, entries)
	return nil
}

// applyMergeMax is the in-memory half of MergeMax.
func (s *Store) applyMergeMax(key kadid.ID, entries []wire.Entry) {
	sh := s.shard(key)
	sh.mu.Lock()
	sh.mergeMaxLocked(key, entries)
	sh.mu.Unlock()
}

// RepublishOnce pushes every locally stored block to the k nodes
// currently closest to its key (max-merge on arrival). It returns how
// many blocks were pushed and how many replica stores succeeded.
// Deployments call this periodically; tests and the churn experiment
// call it directly. A cancelled ctx stops the sweep between blocks and
// aborts the in-flight replicate RPCs — how a maintenance loop winds
// down promptly on shutdown.
func (n *Node) RepublishOnce(ctx context.Context) (blocks int, acks int) {
	blocks, acks, _ = n.pushBlocks(ctx, true, false)
	return blocks, acks
}

// pushBlocks is the replicate fan-out shared by RepublishOnce (the
// node stays a replica: its own contact counts towards the k targets)
// and Handoff (the node is leaving: all k targets are other nodes).
// With retryUnacked, a block no replica acknowledged gets one more
// attempt against a fresh lookup; blocks that still land nowhere are
// returned so the caller can report the incomplete leave.
func (n *Node) pushBlocks(ctx context.Context, includeSelf, retryUnacked bool) (blocks, acks int, unacked []kadid.ID) {
	for _, key := range n.store.Keys() {
		if ctx.Err() != nil {
			return blocks, acks, unacked
		}
		entries, ok := n.store.Get(key, 0)
		if !ok {
			continue // deleted concurrently
		}
		targets := n.IterativeFindNode(ctx, key)
		if includeSelf {
			targets = n.insertSelf(targets, key)
		}
		blocks++
		got := n.replicateTo(ctx, key, entries, targets)
		if got == 0 && retryUnacked && ctx.Err() == nil {
			// The first target set may have been stale under churn; one
			// bounded retry against a fresh lookup, then give up and
			// report rather than block the departure indefinitely.
			got = n.replicateTo(ctx, key, entries, n.IterativeFindNode(ctx, key))
		}
		if got == 0 && retryUnacked {
			unacked = append(unacked, key)
		}
		acks += got
	}
	return blocks, acks, unacked
}

// replicateTo sends one block to every target but the node itself (in
// parallel) and returns how many acknowledged.
func (n *Node) replicateTo(ctx context.Context, key kadid.ID, entries []wire.Entry, targets []wire.Contact) int {
	acks := 0
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, c := range targets {
		if c.ID == n.id {
			continue // we already hold it
		}
		wg.Add(1)
		go func(c wire.Contact) {
			defer wg.Done()
			resp, err := n.call(ctx, c, &wire.Message{
				Kind:    wire.KindReplicate,
				Target:  key,
				Entries: entries,
			})
			if err == nil && resp.Kind == wire.KindStoreAck {
				mu.Lock()
				acks++
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	return acks
}
