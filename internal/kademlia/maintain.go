package kademlia

import (
	"context"
	"sync"
	"time"

	"dharma/internal/kadid"
	"dharma/internal/persist"
	"dharma/internal/wire"
)

// Replica maintenance. Kademlia keeps values alive under churn by
// periodically republishing each stored block to the nodes currently
// closest to its key. Republication must be idempotent — replicas that
// already hold the block must not double-count its weights — so it uses
// a dedicated merge rule: per-field MAXIMUM instead of addition. Block
// counts grow monotonically, so max-merge converges every replica to
// the most complete state it has seen (an anti-entropy exchange in the
// G-Counter style; increments applied to disjoint replica sets during a
// partition are reconciled to the larger side rather than summed, an
// approximation consistent with DHARMA's tolerance for approximate
// weights).

// MergeMax merges entries into the block under key taking the maximum
// count per field. Data and its signature envelope are adopted when the
// local copy has none. Like Append, an empty entries slice materializes
// nothing, and a durable store logs the merge before acknowledging —
// a node is a replica, so replicated state must survive its restarts
// exactly like state it stored first-hand.
func (s *Store) MergeMax(ctx context.Context, key kadid.ID, entries []wire.Entry) error {
	if len(entries) == 0 {
		return nil
	}
	if m := s.metrics; m != nil {
		start := time.Now()
		defer func() {
			m.appendLatency.At(int(key[0] & (storeShards - 1))).Observe(time.Since(start))
		}()
	}
	if s.dur != nil {
		return s.dur.commit(ctx, persist.Record{Op: persist.OpMergeMax, Key: key, Entries: entries},
			func() { s.applyMergeMax(key, entries) })
	}
	s.applyMergeMax(key, entries)
	return nil
}

// applyMergeMax is the in-memory half of MergeMax.
func (s *Store) applyMergeMax(key kadid.ID, entries []wire.Entry) {
	sh := s.shard(key)
	sh.mu.Lock()
	sh.mergeMaxLocked(key, entries)
	sh.mu.Unlock()
}

// RepublishOnce reconciles every locally stored block with the k nodes
// currently closest to its key. It returns how many blocks were swept
// and how many replica acknowledgements came back (a digest match
// counts — the replica demonstrably holds the block). The sweep is
// forced — no per-block timers, every block every call — but each
// exchange is summary-based (see antientropy.go): replicas that already
// agree cost one digest round trip instead of a whole-block push, and
// disagreeing replicas receive only the delta. Deployments needing
// periodic maintenance should prefer the Maintainer, which drives the
// timer-suppressed AntiEntropyOnce; RepublishOnce is for callers that
// must guarantee full coverage now (the chaos harness's repair phase,
// tests, a node rejoining after downtime). A cancelled ctx stops the
// sweep between blocks and aborts the in-flight RPCs.
func (n *Node) RepublishOnce(ctx context.Context) (blocks int, acks int) {
	for _, key := range n.store.Keys() {
		if ctx.Err() != nil {
			return blocks, acks
		}
		targets := n.insertSelf(n.IterativeFindNode(ctx, key), key)
		got := n.syncBlock(ctx, key, targets)
		blocks++
		acks += got
	}
	return blocks, acks
}

// RepublishFullOnce is the pre-summary maintenance sweep: every block
// pushed whole to its k closest nodes, unconditionally. It is kept as
// the measured baseline for the summary path (`dharma-bench
// antientropy` reports bytes/round for both) and as a belt-and-braces
// fallback that moves blobs even where digests would agree.
func (n *Node) RepublishFullOnce(ctx context.Context) (blocks int, acks int) {
	blocks, acks, _ = n.pushBlocks(ctx, true, false)
	return blocks, acks
}

// pushBlocks is the replicate fan-out shared by RepublishOnce (the
// node stays a replica: its own contact counts towards the k targets)
// and Handoff (the node is leaving: all k targets are other nodes).
// With retryUnacked, a block no replica acknowledged gets one more
// attempt against a fresh lookup; blocks that still land nowhere are
// returned so the caller can report the incomplete leave.
func (n *Node) pushBlocks(ctx context.Context, includeSelf, retryUnacked bool) (blocks, acks int, unacked []kadid.ID) {
	for _, key := range n.store.Keys() {
		if ctx.Err() != nil {
			return blocks, acks, unacked
		}
		entries, ok := n.store.Get(key, 0)
		if !ok {
			continue // deleted concurrently
		}
		targets := n.IterativeFindNode(ctx, key)
		if includeSelf {
			targets = n.insertSelf(targets, key)
		}
		blocks++
		got := n.replicateTo(ctx, key, entries, targets)
		if got == 0 && retryUnacked && ctx.Err() == nil {
			// The first target set may have been stale under churn; one
			// bounded retry against a fresh lookup, then give up and
			// report rather than block the departure indefinitely.
			got = n.replicateTo(ctx, key, entries, n.IterativeFindNode(ctx, key))
		}
		if got == 0 && retryUnacked {
			unacked = append(unacked, key)
		}
		acks += got
	}
	return blocks, acks, unacked
}

// replicateTo sends one block to every target but the node itself (in
// parallel) and returns how many acknowledged.
func (n *Node) replicateTo(ctx context.Context, key kadid.ID, entries []wire.Entry, targets []wire.Contact) int {
	acks := 0
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, c := range targets {
		if c.ID == n.id {
			continue // we already hold it
		}
		wg.Add(1)
		go func(c wire.Contact) {
			defer wg.Done()
			resp, err := n.call(ctx, c, &wire.Message{
				Kind:    wire.KindReplicate,
				Target:  key,
				Entries: entries,
			})
			if err == nil && resp.Kind == wire.KindStoreAck {
				mu.Lock()
				acks++
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	return acks
}
