package kademlia

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"dharma/internal/kadid"
	"dharma/internal/likir"
	"dharma/internal/simnet"
	"dharma/internal/wire"
)

func newTestCluster(t *testing.T, n int, seed int64) *Cluster {
	t.Helper()
	cl, err := NewCluster(ClusterConfig{
		N:    n,
		Node: Config{K: 8, Alpha: 3},
		Seed: seed,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return cl
}

func TestIterativeFindNodeFindsTrueClosest(t *testing.T) {
	cl := newTestCluster(t, 48, 1)
	rng := rand.New(rand.NewSource(2))

	for trial := 0; trial < 10; trial++ {
		target := kadid.Random(rng)
		origin := cl.Nodes[rng.Intn(len(cl.Nodes))]
		got := origin.IterativeFindNode(context.Background(), target)
		want := cl.ClosestGroundTruth(target, 8)

		if len(got) < len(want) {
			t.Fatalf("trial %d: found %d contacts, want %d", trial, len(got), len(want))
		}
		gotIDs := map[kadid.ID]bool{}
		for _, c := range got {
			gotIDs[c.ID] = true
		}
		// The lookup runs from `origin`, which never returns itself; all
		// other ground-truth nodes must be present.
		for _, w := range want {
			if w.ID == origin.Self().ID {
				continue
			}
			if !gotIDs[w.ID] {
				t.Fatalf("trial %d: lookup missed true closest node %s", trial, w.ID.Short())
			}
		}
		// Result must be sorted by distance.
		for i := 1; i < len(got); i++ {
			if kadid.Closer(got[i].ID, got[i-1].ID, target) {
				t.Fatalf("trial %d: result not sorted", trial)
			}
		}
	}
}

func TestStoreAndFindValue(t *testing.T) {
	cl := newTestCluster(t, 32, 3)
	key := kadid.HashString("rock|3")
	writer := cl.Nodes[5]
	reader := cl.Nodes[20]

	acks, err := writer.Store(context.Background(), key, []wire.Entry{{Field: "pop", Count: 2}, {Field: "indie", Count: 1}})
	if err != nil {
		t.Fatalf("Store: %v", err)
	}
	if acks < 1 {
		t.Fatal("no replica acknowledged")
	}

	es, err := reader.FindValue(context.Background(), key, 0)
	if err != nil {
		t.Fatalf("FindValue: %v", err)
	}
	if len(es) != 2 || es[0].Field != "pop" || es[0].Count != 2 {
		t.Fatalf("entries = %+v", es)
	}
}

func TestFindValueNotFound(t *testing.T) {
	cl := newTestCluster(t, 16, 4)
	if _, err := cl.Nodes[3].FindValue(context.Background(), kadid.HashString("absent"), 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestStoreAppendsAccumulateAcrossWriters(t *testing.T) {
	cl := newTestCluster(t, 24, 5)
	key := kadid.HashString("jazz|3")
	for i := 0; i < 10; i++ {
		if _, err := cl.Nodes[i].Store(context.Background(), key, []wire.Entry{{Field: "swing", Count: 1}}); err != nil {
			t.Fatalf("Store %d: %v", i, err)
		}
	}
	es, err := cl.Nodes[15].FindValue(context.Background(), key, 0)
	if err != nil {
		t.Fatalf("FindValue: %v", err)
	}
	if len(es) != 1 || es[0].Count != 10 {
		t.Fatalf("entries = %+v, want swing/10", es)
	}
}

func TestValueSurvivesReplicaFailures(t *testing.T) {
	cl := newTestCluster(t, 32, 6)
	key := kadid.HashString("blues|2")
	if _, err := cl.Nodes[1].Store(context.Background(), key, []wire.Entry{{Field: "r", Count: 1}}); err != nil {
		t.Fatal(err)
	}

	// Take down half of the replica set (K=8 -> 4 holders).
	holders := cl.ClosestGroundTruth(key, 8)
	for _, h := range holders[:4] {
		cl.Net.SetDown(simnet.Addr(h.Addr), true)
	}

	// A reader that is not among the dead replicas must still find it.
	var reader *Node
	for _, n := range cl.Nodes {
		dead := false
		for _, h := range holders[:4] {
			if n.Self().ID == h.ID {
				dead = true
				break
			}
		}
		if !dead {
			reader = n
			break
		}
	}
	if _, err := reader.FindValue(context.Background(), key, 0); err != nil {
		t.Fatalf("FindValue after failures: %v", err)
	}
}

func TestFindValueTopNFiltering(t *testing.T) {
	cl := newTestCluster(t, 24, 7)
	key := kadid.HashString("pop|3")
	var entries []wire.Entry
	for i := 0; i < 50; i++ {
		entries = append(entries, wire.Entry{Field: fmt.Sprintf("t%02d", i), Count: uint64(i + 1)})
	}
	if _, err := cl.Nodes[0].Store(context.Background(), key, entries); err != nil {
		t.Fatal(err)
	}
	es, err := cl.Nodes[10].FindValue(context.Background(), key, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 5 {
		t.Fatalf("got %d entries, want 5", len(es))
	}
	// The top-5 by count are t49..t45.
	if es[0].Field != "t49" || es[4].Field != "t45" {
		t.Fatalf("filter returned wrong entries: %+v", es)
	}
}

func TestBootstrapRequiresSeeds(t *testing.T) {
	n := NewNode(kadid.HashString("lonely"), Config{K: 4})
	net := simnet.New(simnet.Config{})
	n.Attach(net.Attach("lonely", n))
	if err := n.Bootstrap(context.Background(), nil); !errors.Is(err, ErrNoContacts) {
		t.Fatalf("want ErrNoContacts, got %v", err)
	}
}

func TestLookupCounterIncrements(t *testing.T) {
	cl := newTestCluster(t, 16, 8)
	n := cl.Nodes[2]
	before := n.Lookups()
	n.IterativeFindNode(context.Background(), kadid.HashString("x"))
	if _, err := n.FindValue(context.Background(), kadid.HashString("y"), 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unexpected: %v", err)
	}
	if got := n.Lookups() - before; got != 2 {
		t.Fatalf("Lookups delta = %d, want 2", got)
	}
}

func TestPing(t *testing.T) {
	cl := newTestCluster(t, 4, 9)
	if !cl.Nodes[1].Ping(context.Background(), cl.Nodes[2].Self()) {
		t.Fatal("live node did not answer ping")
	}
	cl.Net.SetDown("node-2", true)
	if cl.Nodes[1].Ping(context.Background(), cl.Nodes[2].Self()) {
		t.Fatal("dead node answered ping")
	}
}

func TestRefreshBucketPopulates(t *testing.T) {
	cl := newTestCluster(t, 32, 10)
	n := cl.Nodes[4]
	buckets := n.Table().NonEmptyBuckets()
	if len(buckets) == 0 {
		t.Fatal("no buckets after bootstrap")
	}
	before := n.Table().Len()
	n.RefreshBucket(context.Background(), buckets[0], 123)
	if n.Table().Len() < before {
		t.Fatal("refresh shrank the table")
	}
}

func TestLikirClusterAcceptsCertifiedTraffic(t *testing.T) {
	auth, err := likir.NewAuthority(nil, time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(ClusterConfig{
		N:         16,
		Node:      Config{K: 4, Alpha: 2},
		Seed:      11,
		Authority: auth,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	key := kadid.HashString("folk|3")
	if _, err := cl.Nodes[3].Store(context.Background(), key, []wire.Entry{{Field: "acoustic", Count: 1}}); err != nil {
		t.Fatalf("Store: %v", err)
	}
	if _, err := cl.Nodes[9].FindValue(context.Background(), key, 0); err != nil {
		t.Fatalf("FindValue: %v", err)
	}
}

func TestLikirClusterRejectsUncredentialedPeer(t *testing.T) {
	auth, err := likir.NewAuthority(nil, time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(ClusterConfig{
		N:         8,
		Node:      Config{K: 4, Alpha: 2},
		Seed:      12,
		Authority: auth,
	})
	if err != nil {
		t.Fatal(err)
	}

	// A rogue node with a self-chosen ID and no credential. Honest nodes
	// must refuse its RPCs: whatever its local API reports, no certified
	// node may end up holding its block, and no certified node may admit
	// it into a routing table.
	rogue := NewNode(kadid.HashString("rogue"), Config{K: 4, Alpha: 2})
	rogue.Attach(cl.Net.Attach("rogue", rogue))
	key := kadid.HashString("x|3")
	if err := rogue.Bootstrap(context.Background(), []wire.Contact{cl.Nodes[0].Self()}); err == nil {
		rogue.Store(context.Background(), key, []wire.Entry{{Field: "f", Count: 1}}) //nolint:errcheck
	}
	for i, n := range cl.Nodes {
		if n.LocalStore().Has(key) {
			t.Fatalf("certified node %d stored a block from an uncredentialed peer", i)
		}
		if n.Table().Contains(rogue.Self().ID) {
			t.Fatalf("certified node %d admitted the rogue into its routing table", i)
		}
	}
	if _, err := cl.Nodes[3].FindValue(context.Background(), key, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("rogue block visible on the overlay: %v", err)
	}
}

func TestLikirDropsTamperedEntries(t *testing.T) {
	auth, err := likir.NewAuthority(nil, time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(ClusterConfig{
		N:         12,
		Node:      Config{K: 4, Alpha: 2},
		Seed:      13,
		Authority: auth,
	})
	if err != nil {
		t.Fatal(err)
	}
	key := kadid.HashString("uri|4")
	writer := cl.Nodes[2]

	good := wire.Entry{Field: "res", Data: []byte("http://good")}
	good.Author, good.Sig = writer.cfg.Identity.SignEntry(key, good.Field, good.Data)

	evil := wire.Entry{Field: "res2", Data: []byte("http://evil")}
	evil.Author, evil.Sig = writer.cfg.Identity.SignEntry(key, evil.Field, evil.Data)
	evil.Data = []byte("http://tampered") // break the signature

	// Strict mode: a batch carrying one bad signature is refused whole —
	// no replica acks it and nothing lands, not even the good entry.
	if _, err := writer.Store(context.Background(), key, []wire.Entry{good, evil}); !errors.Is(err, wire.ErrUnauthorized) {
		t.Fatalf("tampered batch: want ErrUnauthorized, got %v", err)
	}
	if _, err := cl.Nodes[7].FindValue(context.Background(), key, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("tampered batch left residue on the overlay: %v", err)
	}

	// An unsigned data entry is refused the same way: data must always
	// be attributable.
	unsigned := wire.Entry{Field: "res3", Data: []byte("http://unsigned")}
	if _, err := writer.Store(context.Background(), key, []wire.Entry{unsigned}); !errors.Is(err, wire.ErrUnauthorized) {
		t.Fatalf("unsigned data entry: want ErrUnauthorized, got %v", err)
	}

	// The cleanly signed entry alone stores and reads back everywhere.
	if _, err := writer.Store(context.Background(), key, []wire.Entry{good}); err != nil {
		t.Fatalf("Store(good): %v", err)
	}
	es, err := cl.Nodes[7].FindValue(context.Background(), key, 0)
	if err != nil {
		t.Fatalf("FindValue: %v", err)
	}
	if len(es) != 1 || es[0].Field != "res" {
		t.Fatalf("want exactly the good entry, got %+v", es)
	}
}

func TestRevokedPeerRejected(t *testing.T) {
	auth, err := likir.NewAuthority(nil, time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	set, err := likir.NewRevocationSet(auth.PublicKey(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(ClusterConfig{
		N:         10,
		Node:      Config{K: 4, Alpha: 2, Revoked: set.Contains},
		Seed:      61,
		Authority: auth,
	})
	if err != nil {
		t.Fatal(err)
	}
	victim := cl.Nodes[3]
	key := kadid.HashString("pre|3")
	if _, err := victim.Store(context.Background(), key, []wire.Entry{{Field: "f", Count: 1}}); err != nil {
		t.Fatalf("store before revocation: %v", err)
	}

	// The authority withdraws the victim's identity; every node's
	// revocation set sees it (shared set here, as if all refreshed).
	auth.Revoke(victim.Self().ID)
	if err := set.Refresh(auth.PublicKey(), auth.RevocationBundle()); err != nil {
		t.Fatal(err)
	}

	// The victim can no longer operate: peers reject every RPC, even
	// though it was admitted (and cached) before the revocation.
	if _, err := victim.Store(context.Background(), kadid.HashString("post|3"), []wire.Entry{{Field: "f", Count: 1}}); err == nil {
		acks := 0
		for _, n := range cl.Nodes {
			if n != victim && n.LocalStore().Has(kadid.HashString("post|3")) {
				acks++
			}
		}
		if acks > 0 {
			t.Fatalf("revoked peer stored on %d honest nodes", acks)
		}
	}
	if victim.Ping(context.Background(), cl.Nodes[1].Self()) {
		t.Fatal("revoked peer still gets PONGs")
	}
}

func TestClusterRejectsBadSize(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{N: 0}); err == nil {
		t.Fatal("accepted empty cluster")
	}
}

func TestLookupsUnderPacketLoss(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{
		N:    32,
		Node: Config{K: 8, Alpha: 3},
		Net:  simnet.Config{DropRate: 0.05, Seed: 77},
		Seed: 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	key := kadid.HashString("lossy|3")
	if _, err := cl.Nodes[1].Store(context.Background(), key, []wire.Entry{{Field: "f", Count: 1}}); err != nil {
		t.Fatalf("Store under loss: %v", err)
	}
	// Retry a few times: 5% loss can still kill a single lookup.
	var got []wire.Entry
	for i := 0; i < 5 && got == nil; i++ {
		if es, err := cl.Nodes[9].FindValue(context.Background(), key, 0); err == nil {
			got = es
		}
	}
	if got == nil {
		t.Fatal("value unreachable under 5% loss with retries")
	}
}
