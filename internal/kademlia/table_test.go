package kademlia

import (
	"fmt"
	"testing"

	"dharma/internal/kadid"
	"dharma/internal/wire"
)

func mkContact(s string) wire.Contact {
	return wire.Contact{ID: kadid.HashString(s), Addr: s}
}

func TestTableUpdateAndContains(t *testing.T) {
	self := kadid.HashString("self")
	tab := NewTable(self, 4, nil)

	c := mkContact("a")
	tab.Update(c)
	if !tab.Contains(c.ID) {
		t.Fatal("contact not inserted")
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tab.Len())
	}
	// Self and zero IDs are never inserted.
	tab.Update(wire.Contact{ID: self, Addr: "self"})
	tab.Update(wire.Contact{})
	if tab.Len() != 1 {
		t.Fatalf("Len = %d after inserting self/zero, want 1", tab.Len())
	}
}

func TestTableUpdateRefreshesAddr(t *testing.T) {
	tab := NewTable(kadid.HashString("self"), 4, nil)
	id := kadid.HashString("a")
	tab.Update(wire.Contact{ID: id, Addr: "old"})
	tab.Update(wire.Contact{ID: id, Addr: "new"})
	cs := tab.Closest(id, 1)
	if len(cs) != 1 || cs[0].Addr != "new" {
		t.Fatalf("got %+v, want refreshed address", cs)
	}
	if tab.Len() != 1 {
		t.Fatalf("duplicate insert: Len = %d", tab.Len())
	}
}

// bucketFiller generates contacts that all land in the same bucket of
// self, so eviction logic can be exercised deterministically.
func bucketFiller(t *testing.T, self kadid.ID, bucket, n int) []wire.Contact {
	t.Helper()
	rng := newRand(99)
	out := make([]wire.Contact, 0, n)
	seen := map[kadid.ID]bool{}
	for len(out) < n {
		id := kadid.RandomInBucket(self, bucket, rng)
		if seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, wire.Contact{ID: id, Addr: fmt.Sprintf("c%d", len(out))})
	}
	return out
}

func TestTableEvictsDeadOldest(t *testing.T) {
	self := kadid.HashString("self")
	dead := func(wire.Contact) bool { return false }
	tab := NewTable(self, 3, dead)

	cs := bucketFiller(t, self, 5, 4)
	for _, c := range cs[:3] {
		tab.Update(c)
	}
	tab.Update(cs[3]) // bucket full; oldest (cs[0]) is dead -> replaced
	if tab.Contains(cs[0].ID) {
		t.Fatal("dead oldest contact kept")
	}
	if !tab.Contains(cs[3].ID) {
		t.Fatal("newcomer not inserted after eviction")
	}
}

func TestTableKeepsAliveOldest(t *testing.T) {
	self := kadid.HashString("self")
	alive := func(wire.Contact) bool { return true }
	tab := NewTable(self, 3, alive)

	cs := bucketFiller(t, self, 5, 4)
	for _, c := range cs[:3] {
		tab.Update(c)
	}
	tab.Update(cs[3]) // oldest answers ping -> newcomer dropped
	if !tab.Contains(cs[0].ID) {
		t.Fatal("alive oldest contact evicted")
	}
	if tab.Contains(cs[3].ID) {
		t.Fatal("newcomer inserted into full bucket with live oldest")
	}
}

func TestTableNilPingerEvicts(t *testing.T) {
	self := kadid.HashString("self")
	tab := NewTable(self, 2, nil)
	cs := bucketFiller(t, self, 7, 3)
	tab.Update(cs[0])
	tab.Update(cs[1])
	tab.Update(cs[2])
	if tab.Contains(cs[0].ID) {
		t.Fatal("nil pinger must treat oldest as dead")
	}
	if !tab.Contains(cs[2].ID) {
		t.Fatal("newcomer missing")
	}
}

func TestTableRemove(t *testing.T) {
	tab := NewTable(kadid.HashString("self"), 4, nil)
	c := mkContact("a")
	tab.Update(c)
	tab.Remove(c.ID)
	if tab.Contains(c.ID) {
		t.Fatal("Remove did not delete contact")
	}
	tab.Remove(c.ID) // removing twice is a no-op
}

func TestTableClosestSorted(t *testing.T) {
	self := kadid.HashString("self")
	tab := NewTable(self, 20, nil)
	for i := 0; i < 40; i++ {
		tab.Update(mkContact(fmt.Sprintf("n%d", i)))
	}
	target := kadid.HashString("target")
	cs := tab.Closest(target, 10)
	if len(cs) != 10 {
		t.Fatalf("got %d contacts, want 10", len(cs))
	}
	for i := 1; i < len(cs); i++ {
		if kadid.Closer(cs[i].ID, cs[i-1].ID, target) {
			t.Fatal("Closest result not sorted by distance")
		}
	}
}

func TestTableNonEmptyBuckets(t *testing.T) {
	self := kadid.HashString("self")
	tab := NewTable(self, 4, nil)
	if got := tab.NonEmptyBuckets(); len(got) != 0 {
		t.Fatalf("empty table has non-empty buckets: %v", got)
	}
	cs := bucketFiller(t, self, 3, 1)
	tab.Update(cs[0])
	got := tab.NonEmptyBuckets()
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("NonEmptyBuckets = %v, want [3]", got)
	}
}

func TestNewTablePanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	NewTable(kadid.ID{}, 0, nil)
}
