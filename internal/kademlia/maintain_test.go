package kademlia

import (
	"context"
	"fmt"
	"testing"
	"time"

	"dharma/internal/kadid"
	"dharma/internal/simnet"
	"dharma/internal/wire"
)

func TestMergeMaxIdempotent(t *testing.T) {
	s := NewStore()
	key := kadid.HashString("k")
	entries := []wire.Entry{{Field: "a", Count: 5}, {Field: "b", Count: 2}}
	s.MergeMax(context.Background(), key, entries)
	s.MergeMax(context.Background(), key, entries) // replaying a replica must not double-count
	es, _ := s.Get(key, 0)
	if es[0].Count != 5 || es[1].Count != 2 {
		t.Fatalf("entries = %+v, want a/5 b/2", es)
	}
}

func TestMergeMaxTakesLargerCount(t *testing.T) {
	s := NewStore()
	key := kadid.HashString("k")
	s.Append(context.Background(), key, []wire.Entry{{Field: "a", Count: 7}})
	s.MergeMax(context.Background(), key, []wire.Entry{{Field: "a", Count: 3}}) // stale replica
	es, _ := s.Get(key, 0)
	if es[0].Count != 7 {
		t.Fatalf("stale merge shrank count: %d", es[0].Count)
	}
	s.MergeMax(context.Background(), key, []wire.Entry{{Field: "a", Count: 11}}) // fresher replica
	es, _ = s.Get(key, 0)
	if es[0].Count != 11 {
		t.Fatalf("fresh merge ignored: %d", es[0].Count)
	}
}

func TestMergeMaxAdoptsDataOnlyWhenMissing(t *testing.T) {
	s := NewStore()
	key := kadid.HashString("k")
	s.MergeMax(context.Background(), key, []wire.Entry{{Field: "r", Count: 1, Data: []byte("uri1")}})
	s.MergeMax(context.Background(), key, []wire.Entry{{Field: "r", Count: 1, Data: []byte("uri2")}})
	es, _ := s.Get(key, 0)
	if string(es[0].Data) != "uri1" {
		t.Fatalf("replication overwrote existing data: %q", es[0].Data)
	}
}

func TestRepublishMovesBlocksToJoiners(t *testing.T) {
	cl := newTestCluster(t, 20, 51)
	key := kadid.HashString("persistent|3")
	if _, err := cl.Nodes[2].Store(context.Background(), key, []wire.Entry{{Field: "f", Count: 9}}); err != nil {
		t.Fatal(err)
	}

	// Grow the overlay: some joiners will land closer to the key than
	// the original replicas.
	for i := 0; i < 20; i++ {
		if _, err := cl.AddNode(context.Background(), Config{K: 8, Alpha: 3}, int64(1000+i), i%20); err != nil {
			t.Fatalf("AddNode %d: %v", i, err)
		}
	}

	// Republish from every original holder.
	for _, n := range cl.Nodes[:20] {
		if n.LocalStore().Has(key) {
			n.RepublishOnce(context.Background())
		}
	}

	// Now the k closest nodes in the grown overlay must hold the block.
	holders := 0
	for _, c := range cl.ClosestGroundTruth(key, 8) {
		for _, n := range cl.Nodes {
			if n.Self().ID == c.ID && n.LocalStore().Has(key) {
				holders++
			}
		}
	}
	if holders < 6 { // allow slack for ties at the k-boundary
		t.Fatalf("only %d of the 8 closest nodes hold the block after republish", holders)
	}

	// Counts must be intact (max-merge, not addition).
	es, err := cl.Nodes[25].FindValue(context.Background(), key, 0)
	if err != nil {
		t.Fatal(err)
	}
	if es[0].Count != 9 {
		t.Fatalf("count after republish = %d, want 9", es[0].Count)
	}
}

func TestRepublishRestoresReplicationAfterCrashes(t *testing.T) {
	cl := newTestCluster(t, 32, 52)
	key := kadid.HashString("durable|2")
	if _, err := cl.Nodes[0].Store(context.Background(), key, []wire.Entry{{Field: "f", Count: 4}}); err != nil {
		t.Fatal(err)
	}

	// Crash most of the replica set, keeping one holder alive.
	holders := cl.ClosestGroundTruth(key, 8)
	var survivor *Node
	for _, n := range cl.Nodes {
		if n.Self().ID == holders[len(holders)-1].ID {
			survivor = n
			break
		}
	}
	if survivor == nil || !survivor.LocalStore().Has(key) {
		t.Skip("survivor does not hold the block under this seed")
	}
	for _, h := range holders[:len(holders)-1] {
		cl.Net.SetDown(simnet.Addr(h.Addr), true)
	}

	// The survivor repairs the replica set among live nodes.
	survivor.RepublishOnce(context.Background())

	liveHolders := 0
	for _, n := range cl.Nodes {
		if n == survivor {
			continue
		}
		down := false
		for _, h := range holders[:len(holders)-1] {
			if n.Self().ID == h.ID {
				down = true
			}
		}
		if !down && n.LocalStore().Has(key) {
			liveHolders++
		}
	}
	if liveHolders < 4 {
		t.Fatalf("republish created only %d live replicas", liveHolders)
	}

	// Any live reader finds the value again.
	var reader *Node
	for _, n := range cl.Nodes {
		isDead := false
		for _, h := range holders[:len(holders)-1] {
			if n.Self().ID == h.ID {
				isDead = true
			}
		}
		if !isDead && !n.LocalStore().Has(key) {
			reader = n
			break
		}
	}
	if reader == nil {
		t.Skip("no non-holder reader available")
	}
	if _, err := reader.FindValue(context.Background(), key, 0); err != nil {
		t.Fatalf("FindValue after repair: %v", err)
	}
}

func TestCacheOnLookupSpreadsHotBlocks(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{
		N:    32,
		Node: Config{K: 4, Alpha: 3, CacheOnLookup: true},
		Seed: 71,
	})
	if err != nil {
		t.Fatal(err)
	}
	key := kadid.HashString("hot|3")
	if _, err := cl.Nodes[0].Store(context.Background(), key, []wire.Entry{{Field: "f", Count: 6}}); err != nil {
		t.Fatal(err)
	}
	holdersBefore := 0
	for _, n := range cl.Nodes {
		if n.LocalStore().Has(key) {
			holdersBefore++
		}
	}

	// Many distinct readers fetch the hot block (unfiltered).
	for i := 4; i < 28; i++ {
		if _, err := cl.Nodes[i].FindValue(context.Background(), key, 0); err != nil {
			t.Fatalf("reader %d: %v", i, err)
		}
	}
	// Cache stores are fire-and-forget; nudge the scheduler.
	for i := 0; i < 100; i++ {
		holders := 0
		for _, n := range cl.Nodes {
			if n.LocalStore().Has(key) {
				holders++
			}
		}
		if holders > holdersBefore {
			// Value must stay intact on every copy (max-merge).
			es, err := cl.Nodes[30].FindValue(context.Background(), key, 0)
			if err != nil || es[0].Count != 6 {
				t.Fatalf("cached value corrupted: %+v, %v", es, err)
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("no cache copies created (still %d holders)", holdersBefore)
}

func TestFilteredLookupDoesNotCache(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{
		N:    24,
		Node: Config{K: 8, Alpha: 3, CacheOnLookup: true},
		Seed: 72,
	})
	if err != nil {
		t.Fatal(err)
	}
	key := kadid.HashString("filtered|3")
	var entries []wire.Entry
	for i := 0; i < 20; i++ {
		entries = append(entries, wire.Entry{Field: fmt.Sprintf("t%02d", i), Count: uint64(i + 1)})
	}
	if _, err := cl.Nodes[0].Store(context.Background(), key, entries); err != nil {
		t.Fatal(err)
	}
	holders := func() int {
		h := 0
		for _, n := range cl.Nodes {
			if n.LocalStore().Has(key) {
				h++
			}
		}
		return h
	}
	before := holders()
	for i := 5; i < 20; i++ {
		if _, err := cl.Nodes[i].FindValue(context.Background(), key, 3); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	if got := holders(); got != before {
		t.Fatalf("filtered lookups created cache copies: %d -> %d", before, got)
	}
}

func TestReplicateRPCUsesMaxMerge(t *testing.T) {
	cl := newTestCluster(t, 8, 53)
	key := kadid.HashString("x|3")
	target := cl.Nodes[3]
	target.LocalStore().Append(context.Background(), key, []wire.Entry{{Field: "f", Count: 10}})

	// A REPLICATE with a smaller count must not change anything; a
	// STORE with the same payload would add.
	resp, err := cl.Nodes[1].call(context.Background(), target.Self(), &wire.Message{
		Kind:    wire.KindReplicate,
		Target:  key,
		Entries: []wire.Entry{{Field: "f", Count: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != wire.KindStoreAck {
		t.Fatalf("resp = %v", resp.Kind)
	}
	es, _ := target.LocalStore().Get(key, 0)
	if es[0].Count != 10 {
		t.Fatalf("replicate changed count to %d", es[0].Count)
	}
}
