package kademlia

import (
	"context"
	"strings"
	"testing"
	"time"

	"dharma/internal/kadid"
	"dharma/internal/obs"
	"dharma/internal/wire"
)

func TestTraceLookupAssemblesHopTimeline(t *testing.T) {
	cl := newTestCluster(t, 32, 41)
	defer cl.Shutdown()
	key := kadid.HashString("rock|3")
	writer := cl.Nodes[3]
	if _, err := writer.Store(context.Background(), key, []wire.Entry{{Field: "pop", Count: 2}}); err != nil {
		t.Fatalf("Store: %v", err)
	}

	reader := cl.Nodes[17]
	trace, err := reader.TraceLookup(context.Background(), key)
	if err != nil {
		t.Fatalf("TraceLookup: %v", err)
	}
	if trace == nil {
		t.Fatal("forced trace was not captured")
	}
	if trace.TraceID == 0 {
		t.Fatal("trace has no ID")
	}
	if trace.Target != key || !trace.Value {
		t.Fatalf("trace misdescribes the lookup: %+v", trace)
	}
	if !trace.Found {
		t.Fatal("value lookup that found the block must record Found")
	}
	if trace.Rounds < 1 || len(trace.Spans) < trace.Rounds {
		t.Fatalf("timeline too thin: rounds=%d spans=%d", trace.Rounds, len(trace.Spans))
	}
	if trace.Tried != len(trace.Spans) {
		t.Fatalf("every tried candidate must have a span: tried=%d spans=%d", trace.Tried, len(trace.Spans))
	}
	sawValue := false
	lastRound := 0
	for i, sp := range trace.Spans {
		if sp.Round < lastRound {
			t.Fatalf("span %d out of round order: %+v", i, sp)
		}
		lastRound = sp.Round
		if sp.Round < 1 || sp.Round > trace.Rounds {
			t.Fatalf("span %d has round %d outside [1,%d]", i, sp.Round, trace.Rounds)
		}
		if sp.Kind != wire.KindFindValue {
			t.Fatalf("span %d kind = %v, want FIND_VALUE", i, sp.Kind)
		}
		if sp.Peer.Addr == "" || sp.Peer.ID.IsZero() {
			t.Fatalf("span %d has no peer: %+v", i, sp)
		}
		if sp.RTT < 0 || sp.Start < 0 {
			t.Fatalf("span %d has negative timing: %+v", i, sp)
		}
		if sp.Verdict == VerdictValue {
			sawValue = true
		}
	}
	if !sawValue {
		t.Fatal("a found lookup's timeline must contain a value span")
	}

	// The forced capture must be retained by the ring.
	recent := reader.RecentTraces()
	if len(recent) == 0 || recent[0].TraceID != trace.TraceID {
		t.Fatalf("ring does not retain the forced trace: %d retained", len(recent))
	}
}

// TestTraceSampling: with TraceSample=1 every lookup is captured; with
// sampling and slow-capture disabled, none are.
func TestTraceSampling(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{
		N:    16,
		Node: Config{K: 8, Alpha: 3, TraceSample: 1, TraceSlow: -1},
		Seed: 43,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Shutdown()
	n := cl.Nodes[0]
	for i := 0; i < 5; i++ {
		n.IterativeFindNode(context.Background(), kadid.HashString("t"))
	}
	if got := len(n.RecentTraces()); got != 5 {
		t.Fatalf("TraceSample=1 captured %d of 5 lookups", got)
	}
	for _, tr := range n.RecentTraces() {
		if !tr.Sampled || tr.Value {
			t.Fatalf("capture mislabeled: %+v", tr)
		}
	}

	cl2, err := NewCluster(ClusterConfig{
		N:    16,
		Node: Config{K: 8, Alpha: 3, TraceSample: -1, TraceSlow: -1},
		Seed: 44,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Shutdown()
	n2 := cl2.Nodes[0]
	for i := 0; i < 5; i++ {
		n2.IterativeFindNode(context.Background(), kadid.HashString("t"))
	}
	if got := len(n2.RecentTraces()); got != 0 {
		t.Fatalf("tracing disabled but %d lookups captured", got)
	}
}

// TestTraceSlowCapture: with a 1ns threshold, every lookup is slower
// than the bar and must be captured even though sampling never fires.
func TestTraceSlowCapture(t *testing.T) {
	var hooked []*LookupTrace
	cl, err := NewCluster(ClusterConfig{
		N: 16,
		Node: Config{K: 8, Alpha: 3, TraceSample: 1 << 30, TraceSlow: time.Nanosecond,
			OnTrace: nil},
		Seed: 45,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Shutdown()
	n := cl.Nodes[0]
	n.cfg.OnTrace = func(tr *LookupTrace) { hooked = append(hooked, tr) }
	n.IterativeFindNode(context.Background(), kadid.HashString("t"))
	traces := n.RecentTraces()
	if len(traces) != 1 {
		t.Fatalf("slow capture missed: %d traces", len(traces))
	}
	if !traces[0].Slow || traces[0].Sampled {
		t.Fatalf("capture mislabeled: %+v", traces[0])
	}
	if len(hooked) != 1 || hooked[0] != traces[0] {
		t.Fatalf("OnTrace hook not called with the captured trace")
	}
}

// TestNodeInstrumentation drives real traffic through an instrumented
// cluster and checks the metrics pipeline end to end, down to the
// Prometheus exposition.
func TestNodeInstrumentation(t *testing.T) {
	cl := newTestCluster(t, 24, 46)
	defer cl.Shutdown()
	reg := obs.NewRegistry()
	serving := cl.Nodes[1]
	client := cl.Nodes[2]
	serving.Instrument(reg)

	key := kadid.HashString("rock|3")
	if _, err := client.Store(context.Background(), key, []wire.Entry{{Field: "pop", Count: 2}}); err != nil {
		t.Fatalf("Store: %v", err)
	}
	if _, err := client.FindValue(context.Background(), key, 0); err != nil {
		t.Fatalf("FindValue: %v", err)
	}
	// Drive lookups from the instrumented node too, for the lookup-side
	// instruments.
	serving.IterativeFindNode(context.Background(), key)

	if serving.metrics.lookupWall.Count() == 0 {
		t.Fatal("lookup wall histogram recorded nothing")
	}
	if serving.metrics.lookupRounds.Count() == 0 {
		t.Fatal("lookup rounds histogram recorded nothing")
	}
	// The serving node answered somebody's RPCs during all that traffic.
	var served uint64
	for k := wire.KindPing; k <= wire.KindSummaryReply; k++ {
		served += serving.metrics.kindHist(k).Count()
	}
	if served == 0 {
		t.Fatal("per-kind serve histograms recorded nothing")
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"dharma_rpc_serve_seconds_bucket{kind=\"FIND_NODE\"",
		"dharma_lookup_wall_seconds_count",
		"dharma_lookups_total",
		"dharma_routing_table_peers",
		"dharma_store_append_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q", want)
		}
	}
}

// TestTraceStampEchoed: a traced request's ID must come back on the
// response, so packet-level correlation works across nodes.
func TestTraceStampEchoed(t *testing.T) {
	cl := newTestCluster(t, 4, 47)
	defer cl.Shutdown()
	n := cl.Nodes[0]
	msg := &wire.Message{
		Kind:    wire.KindFindNode,
		From:    cl.Nodes[1].Self(),
		Target:  kadid.HashString("x"),
		TraceID: 0xabcdef,
		Hop:     4,
	}
	out, err := n.HandleRPC(context.Background(), "peer", wire.Encode(msg))
	if err != nil {
		t.Fatalf("HandleRPC: %v", err)
	}
	resp, err := wire.Decode(out)
	if err != nil {
		t.Fatal(err)
	}
	if resp.TraceID != 0xabcdef || resp.Hop != 4 {
		t.Fatalf("trace stamp not echoed: id=%#x hop=%d", resp.TraceID, resp.Hop)
	}
}
