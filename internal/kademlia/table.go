package kademlia

import (
	"sync"

	"dharma/internal/kadid"
	"dharma/internal/wire"
)

// Pinger checks whether a contact is still alive. The routing table
// calls it (outside its lock) before evicting a least-recently-seen
// contact in favour of a new one, as prescribed by the Kademlia paper.
type Pinger func(wire.Contact) bool

// Table is a Kademlia routing table: one bucket per distance prefix,
// each holding at most k contacts ordered from least to most recently
// seen. It is safe for concurrent use.
type Table struct {
	self kadid.ID
	k    int
	ping Pinger

	mu      sync.Mutex
	buckets [kadid.Bits][]wire.Contact
	// count and occupied are maintained incrementally on Update/Remove
	// so Len, Contacts and NonEmptyBuckets can pre-size their outputs
	// (and Len needs no bucket sweep at all).
	count    int // total contacts across all buckets
	occupied int // buckets holding at least one contact
}

// NewTable creates a routing table for the node with identifier self.
// ping may be nil, in which case full buckets evict their
// least-recently-seen contact without probing it first.
func NewTable(self kadid.ID, k int, ping Pinger) *Table {
	if k <= 0 {
		panic("kademlia: bucket size must be positive")
	}
	return &Table{self: self, k: k, ping: ping}
}

// Update records that contact c was just seen. Following Kademlia's
// rules: a known contact moves to the most-recently-seen position; a new
// contact fills spare bucket capacity; when the bucket is full the
// least-recently-seen contact is pinged and keeps its slot if it
// answers, otherwise it is replaced.
func (t *Table) Update(c wire.Contact) {
	if c.ID == t.self || c.ID.IsZero() {
		return
	}
	idx := kadid.BucketIndex(t.self, c.ID)

	t.mu.Lock()
	b := t.buckets[idx]
	for i := range b {
		if b[i].ID == c.ID {
			// Move to tail (most recently seen), refresh the address.
			copy(b[i:], b[i+1:])
			b[len(b)-1] = c
			t.mu.Unlock()
			return
		}
	}
	if len(b) < t.k {
		if len(b) == 0 {
			t.occupied++
		}
		t.count++
		t.buckets[idx] = append(b, c)
		t.mu.Unlock()
		return
	}
	oldest := b[0]
	t.mu.Unlock()

	alive := false
	if t.ping != nil {
		alive = t.ping(oldest) // outside the lock: may take network time
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	b = t.buckets[idx]
	if len(b) == 0 || b[0].ID != oldest.ID {
		// The bucket changed while we were pinging; drop the newcomer
		// rather than guessing.
		return
	}
	if alive {
		// Oldest responded: it moves to the tail, the newcomer is dropped.
		copy(b, b[1:])
		b[len(b)-1] = oldest
		return
	}
	copy(b, b[1:])
	b[len(b)-1] = c
}

// Remove deletes a contact, typically after it failed to answer an RPC.
func (t *Table) Remove(id kadid.ID) {
	if id == t.self {
		return
	}
	idx := kadid.BucketIndex(t.self, id)
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.buckets[idx]
	for i := range b {
		if b[i].ID == id {
			t.buckets[idx] = append(b[:i], b[i+1:]...)
			t.count--
			if len(t.buckets[idx]) == 0 {
				t.occupied--
			}
			return
		}
	}
}

// Closest returns up to n known contacts sorted by ascending XOR
// distance from target. It allocates the result; hot paths that can
// reuse a buffer across calls should prefer ClosestInto.
func (t *Table) Closest(target kadid.ID, n int) []wire.Contact {
	return t.ClosestInto(target, n, nil)
}

// ClosestInto appends up to n contacts, sorted by ascending XOR distance
// from target, into buf (which is truncated first and reused when its
// capacity suffices) and returns the result.
//
// Instead of copying every bucket and sorting the union — O(total
// contacts) copy + quadratic sort per lookup step — the walk visits
// buckets in exact nearest-first order and stops as soon as n contacts
// are on hand. The order comes from the XOR metric itself: with
// D = self XOR target, every contact in bucket i (common prefix length
// exactly i with self) has distance-to-target in a range determined by
// its first i+1 bits, and those ranges are pairwise disjoint. Comparing
// two buckets a < b, bucket a's range is nearer iff D's bit a is set.
// Hence exact nearest-first bucket order is: indices whose D-bit is 1
// in ascending order (the target-side branches, nearest first), then
// indices whose D-bit is 0 in descending order. Only the contacts
// gathered — at most n plus one bucket's worth — are sorted, so the
// cost per call is O(visited buckets + (n+k)·k) instead of growing with
// table population.
func (t *Table) ClosestInto(target kadid.ID, n int, buf []wire.Contact) []wire.Contact {
	out := buf[:0]
	if n <= 0 {
		return out
	}
	d := kadid.Distance(t.self, target)

	t.mu.Lock()
	// Target-side branches: D-bit set, ascending index.
	for i := 0; i < kadid.Bits && len(out) < n; i++ {
		if d.Bit(i) {
			out = append(out, t.buckets[i]...)
		}
	}
	// Self-side branches: D-bit clear, descending index (nearest last
	// buckets hold the longest shared prefixes with self — and therefore
	// with target on every bit where the two agree).
	for i := kadid.Bits - 1; i >= 0 && len(out) < n; i-- {
		if !d.Bit(i) {
			out = append(out, t.buckets[i]...)
		}
	}
	t.mu.Unlock()

	sortContactsByDistance(out, target)
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// closestFullScan is the reference implementation ClosestInto is tested
// against: copy every bucket, sort the union, truncate. Kept verbatim
// (not for production use) so the equivalence property — the ring walk
// returns exactly the nearest-first prefix of the full scan — stays
// checkable as both sides evolve.
func (t *Table) closestFullScan(target kadid.ID, n int) []wire.Contact {
	t.mu.Lock()
	all := make([]wire.Contact, 0, 2*n)
	for i := range t.buckets {
		all = append(all, t.buckets[i]...)
	}
	t.mu.Unlock()

	sortContactsByDistance(all, target)
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// Len returns the total number of contacts in the table.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// Contains reports whether the table currently holds id.
func (t *Table) Contains(id kadid.ID) bool {
	if id == t.self {
		return false
	}
	idx := kadid.BucketIndex(t.self, id)
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, c := range t.buckets[idx] {
		if c.ID == id {
			return true
		}
	}
	return false
}

// Contacts returns every contact currently in the table, in bucket
// order. The maintainer's dead-contact sweep pings this list. The
// output is pre-sized from the running count, so one allocation covers
// the whole sweep.
func (t *Table) Contacts() []wire.Contact {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]wire.Contact, 0, t.count)
	for i := range t.buckets {
		out = append(out, t.buckets[i]...)
	}
	return out
}

// NonEmptyBuckets returns the indices of buckets that hold at least one
// contact; used by bucket refresh. Pre-sized from the running occupancy
// count.
func (t *Table) NonEmptyBuckets() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]int, 0, t.occupied)
	for i := range t.buckets {
		if len(t.buckets[i]) > 0 {
			out = append(out, i)
		}
	}
	return out
}

func sortContactsByDistance(cs []wire.Contact, target kadid.ID) {
	// Insertion sort: candidate lists are short (k to a few k).
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && kadid.Closer(cs[j].ID, cs[j-1].ID, target); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}
