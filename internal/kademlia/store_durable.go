package kademlia

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"dharma/internal/persist"
	"dharma/internal/wire"
)

// Durable storage. OpenDurableStore puts a write-ahead log under the
// sharded block store: every Append/AppendBatch/MergeMax is logged (and
// group-commit flushed) before it is acknowledged, so an acknowledged
// write survives the death of the process. Recovery replays the newest
// snapshot plus the WAL tail through the normal apply paths, which
// rebuilds each block's incremental top-N index as a side effect —
// a recovered store filters reads exactly like the one that died.
//
// Compaction (snapshot-and-truncate) runs automatically in the
// background once the log outgrows persist.Options.CompactBytes; it
// briefly stalls writers (the snapshot must be an exact cut) while
// readers proceed.

// durability is the glue between a Store and its write-ahead log.
type durability struct {
	wal        *persist.Log
	store      *Store
	compacting atomic.Bool
	compactWG  sync.WaitGroup // in-flight background compaction; Close drains it
}

// OpenDurableStore opens (or creates) a durable block store rooted at
// dir, replaying any previous state. The returned stats describe the
// recovery.
func OpenDurableStore(dir string, opts persist.Options) (*Store, persist.RecoveryStats, error) {
	s := NewStore()
	wal, stats, err := persist.Open(dir, opts, func(rec persist.Record) error {
		switch rec.Op {
		case persist.OpAppend:
			s.applyAppend(rec.Key, rec.Entries)
		case persist.OpMergeMax:
			s.applyMergeMax(rec.Key, rec.Entries)
		default:
			return fmt.Errorf("kademlia: unknown logged op %d", rec.Op)
		}
		return nil
	})
	if err != nil {
		return nil, stats, fmt.Errorf("kademlia: open durable store: %w", err)
	}
	s.dur = &durability{wal: wal, store: s}
	return s, stats, nil
}

// Durable reports whether the store is backed by a write-ahead log.
func (s *Store) Durable() bool { return s.dur != nil }

// WAL exposes the backing log (stats, explicit compaction, tests); nil
// for an in-memory store.
func (s *Store) WAL() *persist.Log {
	if s.dur == nil {
		return nil
	}
	return s.dur.wal
}

// Close flushes and cleanly shuts down the backing log; it is a no-op
// on an in-memory store. An in-flight background compaction is waited
// out first, so a clean shutdown never races the snapshot writer
// against the closing log.
func (s *Store) Close() error {
	if s.dur == nil {
		return nil
	}
	s.dur.compactWG.Wait()
	return s.dur.wal.Close()
}

// SimulateCrash kills the backing log the way SIGKILL would: staged
// but unacknowledged writes are dropped, acknowledged ones stay on
// disk, nothing is flushed on the way out. The in-memory contents are
// NOT cleared — the caller abandons the store object, the way a dead
// process's heap is abandoned — and a later OpenDurableStore on the
// same directory recovers only what was acknowledged. No-op on an
// in-memory store.
func (s *Store) SimulateCrash() {
	if s.dur != nil {
		s.dur.wal.Crash()
	}
}

// commit logs one record, applies it, and waits for durability.
func (d *durability) commit(ctx context.Context, rec persist.Record, apply func()) error {
	return d.commitAll(ctx, []persist.Record{rec}, apply)
}

// commitAll logs a group of records as one commit, applies them, waits
// for durability, and triggers background compaction when the log has
// outgrown its threshold.
func (d *durability) commitAll(ctx context.Context, recs []persist.Record, apply func()) error {
	if err := d.wal.Commit(ctx, recs, apply); err != nil {
		return err
	}
	d.maybeCompact()
	return nil
}

// maybeCompact starts one background snapshot-and-truncate pass when
// the log crossed its compaction threshold. At most one pass runs at a
// time; errors poison the log (later commits surface them).
func (d *durability) maybeCompact() {
	threshold := d.wal.Options().CompactBytes
	if threshold <= 0 || d.wal.BytesSinceCompact() < threshold {
		return
	}
	if !d.compacting.CompareAndSwap(false, true) {
		return
	}
	d.compactWG.Add(1)
	go func() {
		defer d.compactWG.Done()
		defer d.compacting.Store(false)
		// The error, if any, is sticky inside the log; the next commit
		// reports it to a caller that can refuse the ack.
		d.wal.Compact(d.store.dumpBlocks) //nolint:errcheck
	}()
}

// Compact synchronously snapshots the store's state and truncates the
// WAL (tests and shutdown hooks; background compaction normally keeps
// the log bounded on its own).
func (s *Store) Compact() error {
	if s.dur == nil {
		return nil
	}
	return s.dur.wal.Compact(s.dumpBlocks)
}

// dumpBlocks streams every block to the snapshot writer as a max-merge
// record — loading a snapshot into an empty store is exact, and
// max-merge keeps even a double-loaded snapshot idempotent. It runs
// with the log's commit lock held, so writers are frozen; readers are
// not (shard read-locks are shared).
func (s *Store) dumpBlocks(add func(persist.Record) error) error {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for key, blk := range sh.blocks {
			entries := make([]wire.Entry, 0, len(blk.fields))
			for _, se := range blk.fields {
				entries = append(entries, se.entry())
			}
			if err := add(persist.Record{Op: persist.OpMergeMax, Key: key, Entries: entries}); err != nil {
				sh.mu.RUnlock()
				return err
			}
		}
		sh.mu.RUnlock()
	}
	return nil
}
