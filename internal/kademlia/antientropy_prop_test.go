package kademlia

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"dharma/internal/kadid"
	"dharma/internal/wire"
)

// Property battery for the anti-entropy digest (store_summary.go). The
// whole bandwidth argument rests on one equivalence: replicas skip the
// data exchange iff their summaries match, so the digest must have no
// false negatives (equal blocks always summarise equally, whatever
// histories produced them) and false positives only at the hash
// collision bound.

// randOps produces a randomized mutation schedule: a mix of Append and
// MergeMax batches over a small field alphabet, the kind of interleaved
// write/maintenance traffic a replica sees.
type storeOp struct {
	merge   bool
	entries []wire.Entry
}

func randOps(rng *rand.Rand, nOps int) []storeOp {
	fields := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	ops := make([]storeOp, nOps)
	for i := range ops {
		n := 1 + rng.Intn(5)
		batch := make([]wire.Entry, n)
		for j := range batch {
			batch[j] = wire.Entry{
				Field: fields[rng.Intn(len(fields))],
				Count: uint64(1 + rng.Intn(50)),
			}
			if rng.Intn(5) == 0 {
				batch[j].Init = uint64(1 + rng.Intn(10))
			}
			if rng.Intn(6) == 0 {
				batch[j].Data = []byte(fmt.Sprintf("d%d", rng.Intn(3)))
			}
		}
		ops[i] = storeOp{merge: rng.Intn(3) == 0, entries: batch}
	}
	return ops
}

func applyOps(t *testing.T, s *Store, key kadid.ID, ops []storeOp) {
	t.Helper()
	for _, op := range ops {
		var err error
		if op.merge {
			err = s.MergeMax(context.Background(), key, op.entries)
		} else {
			err = s.Append(context.Background(), key, op.entries)
		}
		if err != nil {
			t.Fatalf("apply: %v", err)
		}
	}
}

func countsOf(s *Store, key kadid.ID) map[string]uint64 {
	out := make(map[string]uint64)
	es, ok := s.Get(key, 0)
	if !ok {
		return out
	}
	for _, e := range es {
		out[e.Field] = e.Count
	}
	return out
}

// TestDigestMatchesBlockEquality drives two stores through randomized
// append/merge schedules and asserts the central equivalence both ways:
// equal weight maps summarise identically (no false negatives, even
// when the histories differ), and differing weight maps summarise
// differently (no false positives across the sample — the analytic
// bound is ~2^-64 per pair, see TestDigestCollisionBound).
func TestDigestMatchesBlockEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(88000001))
	for trial := 0; trial < 200; trial++ {
		key := kadid.HashString(fmt.Sprintf("digest-eq-%d", trial))
		s1, s2 := NewStore(), NewStore()

		if trial%2 == 0 {
			// Convergent histories: same merge batches, different order and
			// interleaving with duplicate replays. MergeMax commutes, so
			// both stores end at the same weight map.
			batches := make([][]wire.Entry, 1+rng.Intn(6))
			for i := range batches {
				n := 1 + rng.Intn(5)
				batches[i] = make([]wire.Entry, n)
				for j := range batches[i] {
					batches[i][j] = wire.Entry{
						Field: fmt.Sprintf("f%d", rng.Intn(8)),
						Count: uint64(1 + rng.Intn(100)),
					}
				}
			}
			for _, b := range batches {
				s1.MergeMax(context.Background(), key, b)
			}
			for _, i := range rng.Perm(len(batches)) {
				s2.MergeMax(context.Background(), key, batches[i])
				s2.MergeMax(context.Background(), key, batches[i]) // replay
			}
		} else {
			// Independent histories: almost always divergent weight maps.
			applyOps(t, s1, key, randOps(rng, 1+rng.Intn(10)))
			applyOps(t, s2, key, randOps(rng, 1+rng.Intn(10)))
		}

		eq := mapsEqual(countsOf(s1, key), countsOf(s2, key))
		sum1, ok1 := s1.Summary(key)
		sum2, ok2 := s2.Summary(key)
		if !ok1 || !ok2 {
			t.Fatalf("trial %d: missing summary (%v, %v)", trial, ok1, ok2)
		}
		if eq && sum1 != sum2 {
			t.Fatalf("trial %d: equal blocks, differing summaries: %+v vs %+v (false negative)",
				trial, sum1, sum2)
		}
		if !eq && sum1 == sum2 {
			t.Fatalf("trial %d: differing blocks collided on summary %+v", trial, sum1)
		}
	}
}

// TestDigestIncrementality asserts that the incrementally maintained
// digest equals a from-scratch XOR fold over the block's current
// (field, count) pairs after any mutation schedule — the top-index-style
// invariant that lets Summary be O(1).
func TestDigestIncrementality(t *testing.T) {
	rng := rand.New(rand.NewSource(88000002))
	for trial := 0; trial < 200; trial++ {
		key := kadid.HashString(fmt.Sprintf("digest-inc-%d", trial))
		s := NewStore()
		applyOps(t, s, key, randOps(rng, 1+rng.Intn(12)))

		sum, ok := s.Summary(key)
		if !ok {
			t.Fatalf("trial %d: block missing", trial)
		}
		counts, _ := s.Counts(key)
		var scratch uint64
		for _, e := range counts {
			scratch ^= fieldDigest(e.Field, e.Count)
		}
		if sum.Digest != scratch {
			t.Fatalf("trial %d: maintained digest %x != recomputed %x", trial, sum.Digest, scratch)
		}
		if sum.Fields != uint64(len(counts)) {
			t.Fatalf("trial %d: summary says %d fields, block has %d", trial, sum.Fields, len(counts))
		}
	}
}

// TestDigestCollisionBound documents the false-positive bound. The
// digest is an XOR fold of 64-bit splitmix-finalised hashes, so two
// differing blocks collide iff the XOR of their differing pair hashes
// cancels: probability ~2^-64 per comparison for independent hashes.
// A 64-bit test cannot observe that rate directly; instead it checks
// the structured families that would break a weaker fold (FNV without
// finalisation is near-linear): single-bit count steps, field
// permutations with swapped counts, and count transfers that preserve
// the sum. None may collide across the sample, and the sample's
// pairwise hash distance behaves like random 64-bit values.
func TestDigestCollisionBound(t *testing.T) {
	seen := make(map[uint64][]string)
	record := func(desc string, digest uint64) {
		if prev, ok := seen[digest]; ok {
			t.Fatalf("digest collision between %v and %s (digest %x)", prev, desc, digest)
		}
		seen[digest] = []string{desc}
	}

	// Family 1: one field, counts 1..4096 — adjacent counts differ in
	// few bits, the classic weak-hash failure.
	for c := uint64(1); c <= 4096; c++ {
		record(fmt.Sprintf("tag=%d", c), fieldDigest("tag", c))
	}
	// Family 2: two fields with swapped counts must not fold equal to
	// the swap (XOR is symmetric in its operands, so this relies on
	// fieldDigest binding field and count together).
	d1 := fieldDigest("a", 1) ^ fieldDigest("b", 2)
	d2 := fieldDigest("a", 2) ^ fieldDigest("b", 1)
	if d1 == d2 {
		t.Fatal("swapped counts fold to the same digest")
	}
	// Family 3: sum-preserving transfers {a: i, b: N-i} — a linear fold
	// over counts would collapse these.
	const total = 1024
	transfers := make(map[uint64]int)
	for i := uint64(1); i < total; i++ {
		fold := fieldDigest("a", i) ^ fieldDigest("b", total-i)
		if j, ok := transfers[fold]; ok {
			t.Fatalf("sum-preserving transfer collision: i=%d and i=%d", j, i)
		}
		transfers[fold] = int(i)
	}
}
