package kademlia

import (
	"context"
	"encoding/binary"
	"errors"
	"math/rand"
	"sync"
	"time"

	"dharma/internal/kadid"
	"dharma/internal/wire"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// lookupResult is what one RPC in a lookup round produced.
type lookupResult struct {
	from     wire.Contact
	contacts []wire.Contact
	entries  []wire.Entry
	isValue  bool
	err      error
	start    time.Duration // send offset from the lookup's start (tracing)
	rtt      time.Duration // full exchange time, including busy retries
}

// candidate is one contact the lookup knows about and its query state.
type candidate struct {
	contact   wire.Contact
	queried   bool
	responded bool
	failed    bool
}

// lookupArena is the reusable working state of one iterative lookup.
// Arenas are pooled per node (see Node.arenas) so that steady-state
// lookup rounds allocate no candidate bookkeeping: the candidate slice,
// the distance-ordered index list, the seen map and the table seed
// buffer all retain their capacity across lookups. order holds indices
// into cands (not pointers), so growing cands never invalidates it.
type lookupArena struct {
	cands   []candidate
	order   []int32            // indices into cands, ascending distance to target
	seen    map[kadid.ID]int32 // contact ID -> index into cands
	seedBuf []wire.Contact     // reused by Table.ClosestInto for seeding
	batch   []int32            // this round's query set (indices into cands)
	spans   []TraceSpan        // per-RPC trace spans, cloned out only on capture
}

func (a *lookupArena) reset() {
	a.cands = a.cands[:0]
	a.order = a.order[:0]
	a.batch = a.batch[:0]
	a.spans = a.spans[:0]
	if a.seen == nil {
		a.seen = make(map[kadid.ID]int32)
	} else {
		clear(a.seen)
	}
}

// iterativeLookup is the Kademlia node-lookup procedure. Starting from
// the k closest known contacts it repeatedly queries, with parallelism
// α, the closest not-yet-queried candidates, merging every NODES
// response into the candidate set. It stops when the k closest known
// contacts have all been queried — or, in value mode, as soon as a
// replica returns the block.
//
// In value mode (wantValue) the RPC is FIND_VALUE and entries from all
// VALUE responses of the final round are merged field-wise, taking the
// maximum count per field: counts only grow, so the maximum is the most
// complete replica state.
//
// ctx bounds the whole procedure. Cancellation is checked between
// rounds AND aborts the round's in-flight RPC waiters, so a lookup
// stuck on non-answering peers returns as soon as the caller gives up,
// not when the transport's retry timers expire. On early termination
// the ctx error is returned along with the best-effort contact window
// gathered so far; entries are withheld (a partial value is not a
// value).
//
// The busy return counts candidates whose exchange ultimately failed
// with a BUSY rejection (after the call layer's own retries). The
// lookup routes around busy nodes like failed ones, but the count lets
// callers report "the neighbourhood is overloaded" instead of a
// misleading not-found — and busy candidates are never evicted from
// the routing table.
func (n *Node) iterativeLookup(ctx context.Context, target kadid.ID, wantValue bool, topN int) (entriesOut []wire.Entry, found bool, closestOut []wire.Contact, busy int, errOut error) {
	n.lookups.Add(1)
	t0 := time.Now()

	// Tracing decision. Spans are recorded whenever capture is still
	// possible — forced (TraceLookup), lottery-sampled, or merely
	// *eligible* for slow capture — because the slow verdict only
	// exists at the end, when it is too late to start recording.
	seq := n.traceSeq.Add(1)
	forced := n.forceTrace.Load() > 0
	sampled := n.cfg.TraceSample > 0 && seq%uint64(n.cfg.TraceSample) == 0
	tracing := forced || sampled || n.cfg.TraceSlow > 0
	var traceID uint64
	if tracing {
		traceID = binary.BigEndian.Uint64(n.id[:8]) ^ seq
		if traceID == 0 {
			traceID = 1
		}
	}

	arena := n.arenas.Get().(*lookupArena)
	arena.reset()
	defer n.arenas.Put(arena)

	round, tried := 0, 0
	defer func() {
		wall := time.Since(t0)
		n.metrics.lookupWall.Observe(wall)
		n.metrics.lookupRounds.ObserveN(int64(round))
		n.metrics.lookupTried.ObserveN(int64(tried))
		if busy > 0 {
			n.metrics.lookupBusy.Add(int64(busy))
		}
		if tracing {
			slow := n.cfg.TraceSlow > 0 && wall >= n.cfg.TraceSlow
			if forced || sampled || slow {
				n.captureTrace(arena, traceID, target, wantValue, t0, wall,
					round, tried, busy, found, slow, sampled)
			}
		}
	}()

	insert := func(c wire.Contact) {
		if c.ID == n.id || c.ID.IsZero() || c.Addr == "" {
			return
		}
		if _, ok := arena.seen[c.ID]; ok {
			return
		}
		idx := int32(len(arena.cands))
		arena.cands = append(arena.cands, candidate{contact: c})
		arena.seen[c.ID] = idx
		order := append(arena.order, idx)
		for i := len(order) - 1; i > 0 && kadid.Closer(arena.cands[order[i]].contact.ID, arena.cands[order[i-1]].contact.ID, target); i-- {
			order[i], order[i-1] = order[i-1], order[i]
		}
		arena.order = order
	}

	// Seed with a deeper slice of the table than the k-window needs:
	// when an entire near-key neighbourhood has crashed, the extra
	// candidates are what lets the lookup route around it.
	arena.seedBuf = n.table.ClosestInto(target, 3*n.cfg.K, arena.seedBuf)
	for _, c := range arena.seedBuf {
		insert(c)
	}

	var merged map[string]wire.Entry
	foundValue := false
	var valueHolders map[kadid.ID]bool
	// In repair mode (unfiltered value lookup on a ReadRepair node) the
	// per-holder counts are kept so stale replicas can be detected after
	// the merge. A filtered response is truncated by design and proves
	// nothing about the holder's state, so repair stays off for topN > 0.
	repairing := wantValue && n.cfg.ReadRepair && topN == 0
	var holderCounts map[kadid.ID]map[string]uint64
	if repairing {
		holderCounts = make(map[kadid.ID]map[string]uint64)
	}

	// One result channel serves every round; it is drained completely
	// (wg.Wait before reading exactly len(batch) results), so reusing it
	// across rounds is safe and saves a channel per round.
	results := make(chan lookupResult, n.cfg.Alpha)
	for ctx.Err() == nil {
		// Pick the α closest unqueried candidates among the k closest
		// that have not failed: dead nodes must not occupy the window,
		// or a crashed replica set would mask the live nodes behind it.
		arena.batch = arena.batch[:0]
		inspected := 0
		for _, idx := range arena.order {
			cd := &arena.cands[idx]
			if cd.failed {
				continue
			}
			if inspected >= n.cfg.K {
				break
			}
			inspected++
			if !cd.queried {
				arena.batch = append(arena.batch, idx)
				if len(arena.batch) >= n.cfg.Alpha {
					break
				}
			}
		}
		if len(arena.batch) == 0 {
			break
		}
		n.rounds.Add(1)
		round++
		tried += len(arena.batch)

		var wg sync.WaitGroup
		for _, idx := range arena.batch {
			cd := &arena.cands[idx]
			cd.queried = true
			wg.Add(1)
			go func(c wire.Contact) {
				defer wg.Done()
				var msg *wire.Message
				if wantValue {
					msg = &wire.Message{Kind: wire.KindFindValue, Target: target, TopN: uint32(topN)}
				} else {
					msg = &wire.Message{Kind: wire.KindFindNode, Target: target}
				}
				if tracing {
					// Stamp the α-wave so receivers (and packet captures)
					// can attribute the RPC to this lookup's timeline.
					msg.TraceID = traceID
					msg.Hop = uint32(round)
				}
				st := time.Now()
				resp, err := n.call(ctx, c, msg)
				rtt := time.Since(st)
				if err != nil {
					results <- lookupResult{from: c, err: err, start: st.Sub(t0), rtt: rtt}
					return
				}
				results <- lookupResult{
					from:     c,
					contacts: resp.Contacts,
					entries:  resp.Entries,
					isValue:  resp.Kind == wire.KindValue,
					start:    st.Sub(t0),
					rtt:      rtt,
				}
			}(cd.contact)
		}
		wg.Wait()

		for pending := len(arena.batch); pending > 0; pending-- {
			res := <-results
			if tracing {
				arena.spans = append(arena.spans, TraceSpan{
					Round:   round,
					Peer:    res.from,
					Kind:    lookupKind(wantValue),
					Start:   res.start,
					RTT:     res.rtt,
					Verdict: spanVerdict(ctx, &res),
				})
			}
			if res.err != nil {
				if errors.Is(res.err, wire.ErrBusy) {
					busy++
				}
				// A cancelled exchange says nothing about the peer; only
				// a genuinely failed one marks the candidate dead. A busy
				// candidate is also marked failed — the lookup routes
				// around it this round — but the distinction survives in
				// the busy count and the peer stays in the table.
				if idx, ok := arena.seen[res.from.ID]; ok && ctx.Err() == nil {
					arena.cands[idx].failed = true
				}
				continue
			}
			if idx, ok := arena.seen[res.from.ID]; ok {
				arena.cands[idx].responded = true
			}
			if res.isValue {
				foundValue = true
				if merged == nil {
					merged = make(map[string]wire.Entry)
					valueHolders = make(map[kadid.ID]bool)
				}
				valueHolders[res.from.ID] = true
				if repairing {
					counts := make(map[string]uint64, len(res.entries))
					for _, e := range res.entries {
						counts[e.Field] = e.Count
					}
					holderCounts[res.from.ID] = counts
				}
				for _, e := range res.entries {
					if cur, ok := merged[e.Field]; !ok || e.Count > cur.Count {
						merged[e.Field] = e
					}
				}
				continue
			}
			for _, c := range res.contacts {
				insert(c)
			}
		}
		// A found value normally short-circuits the lookup. In repair
		// mode the lookup keeps going until the whole k-closest window
		// has answered: read-repair needs to observe every replica —
		// including the stale and the empty ones — to know what to heal,
		// exactly the quorum-read shape Dynamo-style systems use. That
		// makes an unfiltered ReadRepair read cost a full lookup, which
		// is the price of the durability guarantee and is why the mode
		// is opt-in.
		if foundValue && !repairing {
			break
		}
	}

	// The k closest responders, in distance order, are the lookup's
	// node-set result (used for replica placement by Store). The result
	// escapes to callers, so it is the one slice a lookup still
	// allocates.
	closest := make([]wire.Contact, 0, n.cfg.K)
	for _, idx := range arena.order {
		if cd := &arena.cands[idx]; cd.responded {
			closest = append(closest, cd.contact)
			if len(closest) >= n.cfg.K {
				break
			}
		}
	}

	if err := ctx.Err(); err != nil {
		return nil, false, closest, busy, err
	}
	if !foundValue {
		return nil, false, closest, busy, nil
	}
	out := make([]wire.Entry, 0, len(merged))
	for _, e := range merged {
		out = append(out, e)
	}
	sortEntries(out)

	// Read-repair: write the merged block back to every stale member of
	// the k-closest set (synchronously, so a Get's repair is visible to
	// the next read). This subsumes the §4.1 cache push below when both
	// are enabled.
	if repairing {
		n.readRepair(ctx, target, out, closest, holderCounts)
	}

	// Kademlia §4.1: replicate the found value onto the closest node
	// observed during the lookup that does not hold it, so hot blocks
	// migrate towards their readers. Max-merge keeps this idempotent.
	// Only unfiltered lookups are cached: a TopN-truncated response is
	// a partial block, and caching it would let it shadow full replicas
	// for later readers. (Cached copies can still serve stale counts —
	// acceptable for DHARMA, whose weights are approximate by design.)
	// The push is asynchronous and detached from the read's ctx: the
	// read already succeeded, and a best-effort replica seeding must not
	// die with the caller's deadline.
	if n.cfg.CacheOnLookup && topN == 0 && !repairing {
		for _, c := range closest {
			if !valueHolders[c.ID] {
				go n.call(context.Background(), c, &wire.Message{ //nolint:errcheck // best effort
					Kind: wire.KindReplicate, Target: target, Entries: out,
				})
				break
			}
		}
	}

	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out, true, closest, busy, nil
}

// readRepair heals the stale members of the k-closest set from merged —
// the field-wise maximum over every replica response. The repair is
// delta-based: each holder receives only the fields its own response
// was missing or held at a lower count (its per-field state was
// observed in holderCounts during the lookup), while non-holders get
// the whole block they should be storing. REPLICATE max-merges on
// arrival, so concurrent repairs and appends commute, and re-sending an
// entry a racing writer already delivered is harmless.
func (n *Node) readRepair(ctx context.Context, key kadid.ID, merged []wire.Entry, closest []wire.Contact, holderCounts map[kadid.ID]map[string]uint64) {
	type repairJob struct {
		to    wire.Contact
		delta []wire.Entry
	}
	var jobs []repairJob
	for _, c := range closest {
		counts, isHolder := holderCounts[c.ID]
		if !isHolder {
			jobs = append(jobs, repairJob{to: c, delta: merged})
			continue
		}
		var delta []wire.Entry
		for _, e := range merged {
			if counts[e.Field] < e.Count {
				delta = append(delta, e)
			}
		}
		if len(delta) > 0 {
			jobs = append(jobs, repairJob{to: c, delta: delta})
		}
	}
	if len(jobs) == 0 {
		return
	}
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j repairJob) {
			defer wg.Done()
			resp, err := n.call(ctx, j.to, &wire.Message{
				Kind:    wire.KindReplicate,
				Target:  key,
				Entries: j.delta,
			})
			if err == nil && resp.Kind == wire.KindStoreAck {
				n.repairs.Add(1)
				n.repairEntries.Add(int64(len(j.delta)))
			}
		}(j)
	}
	wg.Wait()
}

func sortEntries(es []wire.Entry) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && entryLess(es[j], es[j-1]); j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

func entryLess(a, b wire.Entry) bool {
	if a.Count != b.Count {
		return a.Count > b.Count
	}
	return a.Field < b.Field
}

// mergeEntriesMax merges two entry lists field-wise, keeping the larger
// count per field, and returns the result sorted by descending count.
func mergeEntriesMax(a, b []wire.Entry) []wire.Entry {
	m := make(map[string]wire.Entry, len(a)+len(b))
	for _, e := range a {
		m[e.Field] = e
	}
	for _, e := range b {
		if cur, ok := m[e.Field]; !ok || e.Count > cur.Count {
			m[e.Field] = e
		}
	}
	out := make([]wire.Entry, 0, len(m))
	for _, e := range m {
		out = append(out, e)
	}
	sortEntries(out)
	return out
}
