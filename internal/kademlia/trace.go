package kademlia

import (
	"context"
	"errors"
	"sync"
	"time"

	"dharma/internal/kadid"
	"dharma/internal/wire"
)

// Hop-level lookup tracing. Every iterative lookup records one
// TraceSpan per RPC into its pooled arena — alloc-free in steady state,
// so the spans exist even for lookups nobody decided to trace in
// advance. At the end of the lookup the spans are *captured* (cloned
// out of the arena into a LookupTrace and pushed onto the node's ring)
// when any of three things is true: the lookup was explicitly forced
// (Node.TraceLookup), it won the sampling lottery (1 in
// Config.TraceSample), or it came in slower than Config.TraceSlow.
// The slow case is the one that matters operationally: "why was this
// navigate slow" is only answerable if the evidence was being recorded
// before anyone knew the op would be slow.

// Tracing defaults: sample 1 lookup in 1024, and always capture
// lookups slower than 250ms.
const (
	DefaultTraceSample = 1024
	DefaultTraceSlow   = 250 * time.Millisecond

	// traceRingCap bounds the per-node ring of retained traces.
	traceRingCap = 64
)

// TraceSpan is one RPC of a traced lookup: which α-wave it belonged
// to, which peer it went to, and how the exchange ended.
type TraceSpan struct {
	Round   int           // α-wave number (1-based)
	Peer    wire.Contact  // who was queried
	Kind    wire.Kind     // FIND_NODE or FIND_VALUE
	Start   time.Duration // offset from the lookup's start
	RTT     time.Duration // full exchange time, including busy retries
	Verdict string        // "ok", "value", "busy", "timeout", "cancel", "error"
}

// Span verdicts.
const (
	VerdictOK      = "ok"      // NODES answer
	VerdictValue   = "value"   // VALUE answer
	VerdictBusy    = "busy"    // rejected by admission after retries
	VerdictTimeout = "timeout" // deadline elapsed waiting for the peer
	VerdictCancel  = "cancel"  // the caller gave up mid-exchange
	VerdictError   = "error"   // transport failure or remote error
)

// LookupTrace is the assembled hop-by-hop timeline of one lookup.
type LookupTrace struct {
	TraceID uint64
	Target  kadid.ID
	Value   bool // FIND_VALUE lookup (vs FIND_NODE)
	Start   time.Time
	Wall    time.Duration
	Rounds  int
	Tried   int // candidates queried
	Busy    int // candidates that stayed BUSY after retries
	Found   bool
	Slow    bool // captured because Wall >= Config.TraceSlow
	Sampled bool // captured by the sampling lottery
	Spans   []TraceSpan
}

// traceRing retains the last traceRingCap captured traces.
type traceRing struct {
	mu   sync.Mutex
	buf  [traceRingCap]*LookupTrace
	next int
	n    int
}

func (r *traceRing) push(t *LookupTrace) {
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % traceRingCap
	if r.n < traceRingCap {
		r.n++
	}
	r.mu.Unlock()
}

// recent returns the retained traces, newest first.
func (r *traceRing) recent() []*LookupTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*LookupTrace, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+traceRingCap)%traceRingCap])
	}
	return out
}

// lookupKind names the RPC kind a lookup's queries use.
func lookupKind(wantValue bool) wire.Kind {
	if wantValue {
		return wire.KindFindValue
	}
	return wire.KindFindNode
}

// spanVerdict classifies how one lookup RPC ended.
func spanVerdict(ctx context.Context, res *lookupResult) string {
	switch {
	case res.err == nil && res.isValue:
		return VerdictValue
	case res.err == nil:
		return VerdictOK
	case errors.Is(res.err, wire.ErrBusy):
		return VerdictBusy
	case errors.Is(res.err, context.DeadlineExceeded):
		return VerdictTimeout
	case ctx.Err() != nil:
		return VerdictCancel
	default:
		return VerdictError
	}
}

// RecentTraces returns the node's retained lookup traces, newest
// first — what the ops endpoint serves under /debug/traces.
func (n *Node) RecentTraces() []*LookupTrace {
	return n.traces.recent()
}

// TraceLookup runs a value lookup for key with capture forced and
// returns its hop-by-hop trace (alongside nothing else: the entries are
// discarded — this is a diagnostic probe, not a read path). The trace
// also lands in the ring like any other capture.
func (n *Node) TraceLookup(ctx context.Context, key kadid.ID) (*LookupTrace, error) {
	var captured *LookupTrace
	n.forceTrace.Add(1)
	defer n.forceTrace.Add(-1)
	_, _, _, _, err := n.iterativeLookup(ctx, key, true, 0)
	if err != nil && ctx.Err() != nil {
		return nil, err
	}
	// The forced capture is the newest trace for this target.
	for _, t := range n.traces.recent() {
		if t.Target == key {
			captured = t
			break
		}
	}
	return captured, nil
}

// capture clones the arena's spans into a retained LookupTrace, pushes
// it onto the ring, and notifies Config.OnTrace.
func (n *Node) captureTrace(a *lookupArena, traceID uint64, target kadid.ID, wantValue bool,
	start time.Time, wall time.Duration, rounds, tried, busy int, found, slow, sampled bool) {
	t := &LookupTrace{
		TraceID: traceID,
		Target:  target,
		Value:   wantValue,
		Start:   start,
		Wall:    wall,
		Rounds:  rounds,
		Tried:   tried,
		Busy:    busy,
		Found:   found,
		Slow:    slow,
		Sampled: sampled,
		Spans:   append([]TraceSpan(nil), a.spans...),
	}
	n.traces.push(t)
	n.metrics.tracesCaptured.Inc()
	if n.cfg.OnTrace != nil {
		n.cfg.OnTrace(t)
	}
}
