package kademlia

import (
	"context"
	"errors"
	"testing"
	"time"

	"dharma/internal/kadid"
	"dharma/internal/wire"
)

// TestFindValueDeadlineBeatsUDPRetryTimer is the acceptance check of
// the context redesign at the transport layer: a lookup over real UDP
// whose only contact never answers must return the caller's deadline
// error well before the transport's own retry timeout expires. Before
// the redesign the Call waiter slept the full transport timeout (here
// deliberately 5s) regardless of the caller's budget.
func TestFindValueDeadlineBeatsUDPRetryTimer(t *testing.T) {
	node := NewNode(kadid.HashString("udp-ctx-node"), Config{K: 4, Alpha: 2})
	tr, err := wire.ListenUDP("127.0.0.1:0", node, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	node.Attach(tr)
	defer node.Close()

	// The discard port: datagrams vanish, no response ever arrives. The
	// waiter is genuinely in flight until something aborts it.
	dead := wire.Contact{ID: kadid.HashString("dead-peer"), Addr: "127.0.0.1:9"}
	node.Table().Update(dead)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = node.FindValue(ctx, kadid.HashString("some-key"), 0)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("FindValue = %v, want DeadlineExceeded", err)
	}
	if elapsed >= 2*time.Second {
		t.Fatalf("FindValue took %v: the 100ms deadline must abort the in-flight waiter, not wait out the 5s retry timer", elapsed)
	}
}

// TestStoreCtxCanceledReturnsCtxError: Store under an ended context
// reports the context error, not a misleading "no replica acknowledged".
func TestStoreCtxCanceledReturnsCtxError(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{N: 8, Node: Config{K: 4, Alpha: 3}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cl.Nodes[1].Store(ctx, kadid.HashString("k"), []wire.Entry{{Field: "f", Count: 1}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Store under canceled ctx = %v, want context.Canceled", err)
	}
	if _, err := cl.Nodes[1].FindValue(ctx, kadid.HashString("k"), 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("FindValue under canceled ctx = %v, want context.Canceled", err)
	}
}

// TestCancelDoesNotEvictContacts: a cancelled exchange is not evidence
// the peer is dead — the routing table must keep the contact.
func TestCancelDoesNotEvictContacts(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{N: 6, Node: Config{K: 4, Alpha: 2}, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	n := cl.Nodes[2]
	before := n.Table().Len()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n.IterativeFindNode(ctx, kadid.HashString("anything"))
	if got := n.Table().Len(); got < before {
		t.Fatalf("canceled lookup evicted contacts: table %d -> %d", before, got)
	}
}
