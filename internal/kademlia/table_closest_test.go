package kademlia

import (
	"fmt"
	"math/rand"
	"testing"

	"dharma/internal/kadid"
	"dharma/internal/wire"
)

// TestClosestMatchesFullScan is the equivalence property the
// expanding-ring walk is allowed to exist under: for every table fill
// level from a single contact to fully saturated buckets, and for
// targets both random and adversarial (self, near-self, a table
// member), ClosestInto returns exactly the same contacts in exactly the
// same order as the retained full-scan-and-sort reference.
func TestClosestMatchesFullScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	self := kadid.Random(rng)

	for _, k := range []int{1, 4, 20} {
		for _, fill := range []int{1, 2, 5, 17, 60, 200, 1000, 5000} {
			tab := NewTable(self, k, nil)
			inserted := make([]wire.Contact, 0, fill)
			for i := 0; i < fill; i++ {
				c := wire.Contact{ID: kadid.Random(rng), Addr: fmt.Sprintf("n-%d", i)}
				tab.Update(c)
				inserted = append(inserted, c)
			}
			targets := []kadid.ID{
				self,
				kadid.Random(rng),
				kadid.Random(rng),
				inserted[rng.Intn(len(inserted))].ID, // exact member
				kadid.RandomInBucket(self, kadid.Bits-3, rng), // near-self neighbourhood
				kadid.RandomInBucket(self, 0, rng),            // farthest half
			}
			for _, target := range targets {
				for _, n := range []int{1, 3, k, 2*k + 1, 10 * k} {
					want := tab.closestFullScan(target, n)
					got := tab.ClosestInto(target, n, nil)
					if len(got) != len(want) {
						t.Fatalf("k=%d fill=%d n=%d: ring walk returned %d contacts, full scan %d",
							k, fill, n, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("k=%d fill=%d n=%d: position %d differs: ring %v (dist %v) vs scan %v (dist %v)",
								k, fill, n, i, got[i].ID, kadid.Distance(got[i].ID, target), want[i].ID, kadid.Distance(want[i].ID, target))
						}
					}
				}
			}
		}
	}
}

// TestClosestIntoReusesBuffer pins the zero-allocation contract: a
// buffer with sufficient capacity is reused, not replaced.
func TestClosestIntoReusesBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tab := NewTable(kadid.Random(rng), 8, nil)
	for i := 0; i < 100; i++ {
		tab.Update(wire.Contact{ID: kadid.Random(rng), Addr: "a"})
	}
	buf := make([]wire.Contact, 0, 64)
	out := tab.ClosestInto(kadid.Random(rng), 16, buf)
	if len(out) != 16 {
		t.Fatalf("got %d contacts, want 16", len(out))
	}
	if &out[0] != &buf[0:1][0] {
		t.Fatal("ClosestInto allocated a new backing array despite sufficient capacity")
	}
}

// TestTableCountBookkeeping pins the running count/occupancy updates
// that pre-size Contacts and NonEmptyBuckets against the ground truth.
func TestTableCountBookkeeping(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tab := NewTable(kadid.Random(rng), 4, nil)
	var ids []kadid.ID
	for i := 0; i < 500; i++ {
		id := kadid.Random(rng)
		tab.Update(wire.Contact{ID: id, Addr: "a"})
		ids = append(ids, id)
		if i%3 == 0 && len(ids) > 1 {
			victim := ids[rng.Intn(len(ids))]
			tab.Remove(victim)
		}
		// Re-update a known contact: move-to-tail must not change counts.
		tab.Update(wire.Contact{ID: ids[rng.Intn(len(ids))], Addr: "b"})

		if got, want := tab.Len(), len(tab.Contacts()); got != want {
			t.Fatalf("step %d: Len() = %d but Contacts() has %d", i, got, want)
		}
		nonEmpty := tab.NonEmptyBuckets()
		seen := map[int]bool{}
		for _, c := range tab.Contacts() {
			seen[kadid.BucketIndex(tab.self, c.ID)] = true
		}
		if len(nonEmpty) != len(seen) {
			t.Fatalf("step %d: NonEmptyBuckets() = %d buckets, ground truth %d", i, len(nonEmpty), len(seen))
		}
	}
}

// fillTable populates a table with contacts until it holds roughly
// `want` of them (saturated buckets silently drop newcomers when ping
// is nil-evict; here ping==nil so oldest is evicted — the fill still
// converges because insertions replace rather than grow).
func fillTable(tab *Table, want int, rng *rand.Rand) {
	for i := 0; tab.Len() < want && i < want*50; i++ {
		tab.Update(wire.Contact{ID: kadid.Random(rng), Addr: "bench"})
	}
}

// BenchmarkTableClosest is the gated hot path of every lookup step:
// k-closest selection against a sparse table (a fresh node) and a full
// one (a long-lived node at scale). Both variants must report 0
// allocs/op — the caller-reusable buffer is the point of the refactor.
// scripts/alloc_gate.sh holds this to the budget in
// scripts/alloc_budgets.txt.
func BenchmarkTableClosest(b *testing.B) {
	for _, tc := range []struct {
		name string
		fill int
	}{
		{"sparse", 30},
		{"full", 2000},
	} {
		b.Run(tc.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			tab := NewTable(kadid.Random(rng), 20, nil)
			fillTable(tab, tc.fill, rng)
			targets := make([]kadid.ID, 256)
			for i := range targets {
				targets[i] = kadid.Random(rng)
			}
			buf := make([]wire.Contact, 0, 128)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = tab.ClosestInto(targets[i%len(targets)], 20, buf)
				if len(buf) == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}

// BenchmarkTableClosestFullScanBaseline is the pre-refactor algorithm
// on the same full table, for the README comparison.
func BenchmarkTableClosestFullScanBaseline(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tab := NewTable(kadid.Random(rng), 20, nil)
	fillTable(tab, 2000, rng)
	targets := make([]kadid.ID, 256)
	for i := range targets {
		targets[i] = kadid.Random(rng)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := tab.closestFullScan(targets[i%len(targets)], 20); len(out) == 0 {
			b.Fatal("empty result")
		}
	}
}
