package kademlia

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"dharma/internal/kadid"
	"dharma/internal/simnet"
)

// TestWiredBootstrapMatchesGroundTruth: lookups on a wired cluster must
// land on the true k-closest nodes — the offline tables have to be at
// least as good as a converged iterative join.
func TestWiredBootstrapMatchesGroundTruth(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{
		N:         300,
		Node:      Config{K: 8, Alpha: 3},
		Net:       simnet.Config{LatencyMin: 500 * time.Microsecond, LatencyMax: time.Millisecond},
		Seed:      42,
		Bootstrap: BootstrapWired,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		target := kadid.Random(rng)
		origin := cl.Nodes[rng.Intn(len(cl.Nodes))]
		got := origin.IterativeFindNode(context.Background(), target)
		want := cl.ClosestGroundTruth(target, 8)
		if len(got) < len(want) {
			t.Fatalf("trial %d: lookup returned %d contacts, ground truth has %d", trial, len(got), len(want))
		}
		gotSet := make(map[kadid.ID]bool, len(got))
		for _, c := range got {
			gotSet[c.ID] = true
		}
		missed := 0
		for _, c := range want {
			if !gotSet[c.ID] {
				missed++
			}
		}
		if missed > 0 {
			t.Fatalf("trial %d: lookup missed %d of the true %d closest", trial, missed, len(want))
		}
	}
}

// TestWiredBootstrapDeterministic: same seed, same tables.
func TestWiredBootstrapDeterministic(t *testing.T) {
	build := func() []string {
		cl, err := NewCluster(ClusterConfig{
			N:         100,
			Node:      Config{K: 4},
			Seed:      9,
			Bootstrap: BootstrapWired,
		})
		if err != nil {
			t.Fatal(err)
		}
		var dump []string
		for _, n := range cl.Nodes {
			for _, c := range n.table.Contacts() {
				dump = append(dump, c.Addr)
			}
		}
		return dump
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("table sizes differ across identical builds: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tables diverge at contact %d: %s vs %s", i, a[i], b[i])
		}
	}
}

// TestScale1kSmoke is the CI scale smoke: build a 1000-node wired
// overlay and run 100 lookups through it (under -race in the workflow).
func TestScale1kSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scale smoke skipped in -short mode")
	}
	start := time.Now()
	cl, err := NewCluster(ClusterConfig{
		N:         1000,
		Node:      Config{K: 16, Alpha: 3},
		Net:       simnet.Config{LatencyMin: 100 * time.Microsecond, LatencyMax: 200 * time.Microsecond},
		Seed:      1,
		Bootstrap: BootstrapWired,
	})
	if err != nil {
		t.Fatal(err)
	}
	buildTime := time.Since(start)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		target := kadid.Random(rng)
		origin := cl.Nodes[rng.Intn(len(cl.Nodes))]
		if got := origin.IterativeFindNode(context.Background(), target); len(got) == 0 {
			t.Fatalf("lookup %d returned no contacts", i)
		}
	}
	t.Logf("built 1k-node cluster in %v, 100 lookups OK", buildTime)
}
