package kademlia

import (
	"sync"
	"testing"
)

// TestAddNodeConcurrent joins nodes from many goroutines and checks
// that every member got a distinct address and is reachable — a
// duplicate address would silently shadow an earlier endpoint on the
// simulated network.
func TestAddNodeConcurrent(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{N: 8, Node: Config{K: 4, Alpha: 2}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	const extra = 8
	var wg sync.WaitGroup
	for i := 0; i < extra; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := cl.AddNode(Config{K: 4, Alpha: 2}, int64(100+i), i%8); err != nil {
				t.Errorf("AddNode %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	if got := cl.Len(); got != 8+extra {
		t.Fatalf("Len = %d, want %d", got, 8+extra)
	}
	seen := make(map[string]bool)
	for _, n := range cl.Snapshot() {
		addr := n.Self().Addr
		if seen[addr] {
			t.Fatalf("duplicate address %q", addr)
		}
		seen[addr] = true
	}
	for _, n := range cl.Snapshot()[1:] {
		if !cl.NodeAt(0).Ping(n.Self()) {
			t.Errorf("node %s unreachable after concurrent join", n.Self().Addr)
		}
	}
}
