package kademlia

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"dharma/internal/kadid"
	"dharma/internal/wire"
)

// TestAddNodeConcurrent joins nodes from many goroutines and checks
// that every member got a distinct address and is reachable — a
// duplicate address would silently shadow an earlier endpoint on the
// simulated network.
func TestAddNodeConcurrent(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{N: 8, Node: Config{K: 4, Alpha: 2}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	const extra = 8
	var wg sync.WaitGroup
	for i := 0; i < extra; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := cl.AddNode(context.Background(), Config{K: 4, Alpha: 2}, int64(100+i), i%8); err != nil {
				t.Errorf("AddNode %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	if got := cl.Len(); got != 8+extra {
		t.Fatalf("Len = %d, want %d", got, 8+extra)
	}
	seen := make(map[string]bool)
	for _, n := range cl.Snapshot() {
		addr := n.Self().Addr
		if seen[addr] {
			t.Fatalf("duplicate address %q", addr)
		}
		seen[addr] = true
	}
	for _, n := range cl.Snapshot()[1:] {
		if !cl.NodeAt(0).Ping(context.Background(), n.Self()) {
			t.Errorf("node %s unreachable after concurrent join", n.Self().Addr)
		}
	}
}

// TestNoAddressReuseAfterRemoval is the regression for the minted
// counter: removals shrink the membership, and a join sized off the
// membership length would re-mint a live node's address, silently
// shadowing its endpoint on the simulated network.
func TestNoAddressReuseAfterRemoval(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{N: 8, Node: Config{K: 4, Alpha: 2}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	used := make(map[string]*Node)
	record := func() {
		for _, n := range cl.Snapshot() {
			addr := n.Self().Addr
			if prev, ok := used[addr]; ok && prev != n {
				t.Fatalf("address %q reissued to a different node", addr)
			}
			used[addr] = n
		}
	}
	record()

	// Shrink below the original size, then grow past it again.
	for i := 0; i < 3; i++ {
		if _, err := cl.RemoveNode(context.Background(), cl.Len()-1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Crash(cl.Len() - 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := cl.AddNode(context.Background(), Config{K: 4, Alpha: 2}, int64(500+i), 0); err != nil {
			t.Fatal(err)
		}
		record()
	}
}

// TestClusterChurnConcurrent runs joins, graceful leaves, crashes,
// revives and membership reads all at once, against a cluster under
// RPC load — the shape `dharma-bench load -churn` produces. It checks
// the reader-facing invariants: NodeAt never returns a node outside the
// snapshot contract, addresses stay unique, and the overlay stays
// usable throughout.
func TestClusterChurnConcurrent(t *testing.T) {
	const protected = 2 // node 0 (bootstrap) and node 1 (load source) are off-limits
	cl, err := NewCluster(ClusterConfig{N: 12, Node: Config{K: 4, Alpha: 2}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	var (
		wg      sync.WaitGroup // membership writers and readers
		loadWg  sync.WaitGroup // the load goroutine, stopped last
		stop    atomic.Bool
		crashMu sync.Mutex
		crashed []*Node
	)

	// Load: node 1 stores and reads blocks the whole time.
	loadWg.Add(1)
	go func() {
		defer loadWg.Done()
		for i := 0; !stop.Load(); i++ {
			key := kadid.HashString(fmt.Sprintf("churnload%d", i%32))
			cl.NodeAt(1).Store(context.Background(), key, []wire.Entry{{Field: "f", Count: 1}})
			cl.NodeAt(1).FindValue(context.Background(), key, 0)
		}
	}()

	// Membership writers. Only these goroutines shrink the membership;
	// each picks indices past the protected prefix and tolerates stale
	// picks (the cluster bounds-checks under its lock).
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < 12; i++ {
				n := cl.Len()
				switch rng.Intn(4) {
				case 0:
					if _, err := cl.AddNode(context.Background(), Config{K: 4, Alpha: 2}, rng.Int63(), 0); err != nil {
						t.Errorf("AddNode: %v", err)
					}
				case 1:
					if n > protected+2 {
						cl.RemoveNode(context.Background(), protected+rng.Intn(n-protected)) // stale index errors are fine
					}
				case 2:
					if n > protected+2 {
						if node, err := cl.Crash(protected + rng.Intn(n-protected)); err == nil {
							crashMu.Lock()
							crashed = append(crashed, node)
							crashMu.Unlock()
						}
					}
				default:
					crashMu.Lock()
					var node *Node
					if len(crashed) > 0 {
						node = crashed[len(crashed)-1]
						crashed = crashed[:len(crashed)-1]
					}
					crashMu.Unlock()
					if node != nil {
						if _, err := cl.Revive(context.Background(), node, 0); err != nil {
							t.Errorf("Revive: %v", err)
						}
					}
				}
			}
		}(g)
	}

	// Membership readers: Snapshot/NodeAt/Len must stay coherent while
	// the writers churn — no panics, no nil members inside a snapshot,
	// no duplicate addresses within one snapshot.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				snap := cl.Snapshot()
				if len(snap) != 0 && snap[0] == nil {
					t.Error("snapshot contains nil member")
					return
				}
				seen := make(map[string]bool, len(snap))
				for _, n := range snap {
					addr := n.Self().Addr
					if seen[addr] {
						t.Errorf("duplicate address %q within one snapshot", addr)
						return
					}
					seen[addr] = true
				}
				// NodeAt tolerates stale indices by returning nil.
				if n := cl.NodeAt(cl.Len() + 10); n != nil {
					t.Error("NodeAt out of range returned a node")
					return
				}
				if n := cl.NodeAt(0); n == nil {
					t.Error("bootstrap node vanished")
					return
				}
			}
		}()
	}

	wg.Wait()
	stop.Store(true)
	loadWg.Wait()

	// Final coherence: protected prefix intact, every member reachable,
	// addresses unique across the final snapshot.
	if cl.Len() < protected {
		t.Fatalf("membership shrank to %d", cl.Len())
	}
	for _, n := range cl.Snapshot()[1:] {
		if !cl.NodeAt(0).Ping(context.Background(), n.Self()) {
			t.Errorf("member %s unreachable after churn", n.Self().Addr)
		}
	}
}
