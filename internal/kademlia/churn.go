package kademlia

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"dharma/internal/simnet"
	"dharma/internal/wire"
)

// Churn operations on a running cluster. A deployment loses nodes two
// ways — a graceful leave, where the departing node hands its blocks to
// the nodes that will be responsible for them, and a crash, where the
// node simply stops answering — and regains them through joins
// (AddNode) and recoveries (Revive). Together with the background
// Maintainer and read-repair these keep every block's replica set
// populated while membership moves underneath it.
//
// On a durable cluster (ClusterConfig.DataDir) the crash/revive pair
// models a real process death: Crash kills the node's write-ahead log
// the way SIGKILL would, and Revive builds a fresh node that recovers
// identity and blocks from disk — nothing of the crashed object's
// memory is reused.

// ErrHandoffIncomplete is wrapped by Handoff (and surfaced by
// RemoveNode) when some blocks could not be placed on any replica even
// after the bounded retry. The departure still completes; the blocks
// named in the error are only healed once other replicas republish.
var ErrHandoffIncomplete = errors.New("kademlia: handoff incomplete")

// Handoff pushes every locally stored block to the k closest live nodes
// excluding the node itself — the departing half of a graceful leave.
// Replicas merge with max semantics, so a handoff of blocks the targets
// already hold is idempotent. A block no replica acknowledges is retried
// once against a fresh lookup; if it still lands nowhere it is named in
// the returned ErrHandoffIncomplete so the caller can see the leave was
// lossy-unless-republished. It returns how many blocks were offered and
// how many replica stores were acknowledged.
func (n *Node) Handoff(ctx context.Context) (blocks, acks int, err error) {
	blocks, acks, unacked := n.pushBlocks(ctx, false, true)
	if len(unacked) > 0 {
		short := make([]string, 0, 4)
		for i, k := range unacked {
			if i == 4 {
				short = append(short, fmt.Sprintf("+%d more", len(unacked)-i))
				break
			}
			short = append(short, k.Short())
		}
		err = fmt.Errorf("%w: %d of %d blocks unacknowledged (%s)",
			ErrHandoffIncomplete, len(unacked), blocks, strings.Join(short, ", "))
	}
	return blocks, acks, err
}

// Close detaches the node from its transport; subsequent RPCs in either
// direction fail. It is safe to call on a node that was never attached.
// The block store is left untouched — use Shutdown for a clean stop
// that also closes a durable store.
func (n *Node) Close() error {
	n.detached.Store(true)
	n.selfMu.RLock()
	tr := n.transport
	n.selfMu.RUnlock()
	if tr == nil {
		return nil
	}
	return tr.Close()
}

// Shutdown is the clean stop: detach from the network, then flush and
// close the block store's write-ahead log (a no-op for in-memory
// stores). This is what a deployment runs on SIGINT/SIGTERM.
func (n *Node) Shutdown() error {
	cerr := n.Close()
	serr := n.store.Close()
	if cerr != nil {
		return cerr
	}
	return serr
}

// remove unlinks the i-th member under the lock and returns it. The
// minted address counter is deliberately untouched: addresses are never
// reissued after a removal, so a later AddNode cannot shadow a departed
// (or crashed-and-reviving) endpoint on the simulated network.
func (c *Cluster) remove(i int) (*Node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.Nodes) {
		return nil, fmt.Errorf("kademlia: no node at index %d (membership %d)", i, len(c.Nodes))
	}
	n := c.Nodes[i]
	c.Nodes = append(c.Nodes[:i], c.Nodes[i+1:]...)
	return n, nil
}

// RemoveNode gracefully removes the i-th member (churn-out): the node is
// dropped from the membership, hands its blocks off to the nodes now
// closest to their keys, and detaches from the network (closing its
// durable store cleanly, if it has one). The returned node is dead for
// overlay purposes; its address is never reused. A non-nil error
// alongside a non-nil node is the handoff report: the removal happened,
// but the named blocks were not acknowledged by any replica
// (ErrHandoffIncomplete) — callers that must not lose sole-copy blocks
// should check it.
//
// ctx bounds the handoff: when a receiving replica is wedged, the
// caller's deadline cuts the push short and the unacknowledged blocks
// are reported via ErrHandoffIncomplete — membership never hangs on a
// stuck peer. The node is removed and shut down regardless.
//
// Indices shift left past i, so concurrent callers that pick indices
// must tolerate the (nil, error) returned for a stale out-of-range
// index.
func (c *Cluster) RemoveNode(ctx context.Context, i int) (*Node, error) {
	n, err := c.remove(i)
	if err != nil {
		return nil, err
	}
	c.notifyLeave(n)
	// Hand off while still attached, so the departing node can reach
	// the replicas that take over its blocks; then disappear.
	_, _, herr := n.Handoff(ctx)
	n.Shutdown() //nolint:errcheck // departing node; store close errors have no recipient
	return n, herr
}

// Crash abruptly kills the i-th member: no handoff, no goodbye — the
// endpoint is marked down and detached, exactly as if the process died.
// On a durable cluster the node's write-ahead log is killed the same
// way (staged unacknowledged writes drop, acknowledged ones stay on
// disk). The node object is returned so the caller can Revive it later;
// on a durable cluster it is only a handle (identity + address) — its
// in-memory state is abandoned, and revival reads the disk.
func (c *Cluster) Crash(i int) (*Node, error) {
	n, err := c.remove(i)
	if err != nil {
		return nil, err
	}
	c.notifyLeave(n)
	addr := simnet.Addr(n.Self().Addr)
	c.Net.SetDown(addr, true)
	// Close the node's own endpoint too (which detaches it): a crashed
	// process sends nothing, and must not mistake its own send failures
	// for every peer being dead — the routing table has to survive the
	// crash alongside the store.
	n.Close()
	if c.dataDir != "" {
		n.store.SimulateCrash()
	}
	return n, nil
}

// Revive rejoins a previously crashed node at its original address and
// returns the live member. On an in-memory cluster that is the same
// object (its routing table and store survived in the retained node,
// the way a warm standby would); on a durable cluster revival is a
// process restart: a fresh node with the same identity recovers its
// blocks from the data directory — acknowledged writes and nothing
// else — and re-bootstraps through the via-th current member. Either
// way the revived node's pre-crash blocks converge with the live
// replicas through republish max-merges. ctx bounds the re-bootstrap.
func (c *Cluster) Revive(ctx context.Context, n *Node, via int) (*Node, error) {
	c.mu.RLock()
	if via < 0 || via >= len(c.Nodes) {
		c.mu.RUnlock()
		return nil, fmt.Errorf("kademlia: no bootstrap node at index %d", via)
	}
	seed := c.Nodes[via].Self()
	c.mu.RUnlock()

	addr := simnet.Addr(n.Self().Addr)
	node := n
	if c.dataDir != "" {
		store, _, err := OpenDurableStore(c.nodeDir(string(addr)), c.persistOpts)
		if err != nil {
			return nil, fmt.Errorf("kademlia: revive %s: %w", addr, err)
		}
		cfg := n.cfg
		cfg.Store = store
		node = NewNode(n.id, cfg)
	}
	node.Attach(c.Net.Attach(addr, node))
	c.Net.SetDown(addr, false)
	if err := node.Bootstrap(ctx, []wire.Contact{seed}); err != nil {
		node.Shutdown() //nolint:errcheck // disk state stays intact for the next attempt
		return nil, fmt.Errorf("kademlia: revive %s: %w", addr, err)
	}
	c.mu.Lock()
	c.Nodes = append(c.Nodes, node)
	c.mu.Unlock()
	c.notifyJoin(node)
	return node, nil
}
