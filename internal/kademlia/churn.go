package kademlia

import (
	"fmt"

	"dharma/internal/simnet"
	"dharma/internal/wire"
)

// Churn operations on a running cluster. A deployment loses nodes two
// ways — a graceful leave, where the departing node hands its blocks to
// the nodes that will be responsible for them, and a crash, where the
// node simply stops answering — and regains them through joins
// (AddNode) and recoveries (Revive). Together with the background
// Maintainer and read-repair these keep every block's replica set
// populated while membership moves underneath it.

// Handoff pushes every locally stored block to the k closest live nodes
// excluding the node itself — the departing half of a graceful leave.
// Replicas merge with max semantics, so a handoff of blocks the targets
// already hold is idempotent. It returns how many blocks were offered
// and how many replica stores were acknowledged.
func (n *Node) Handoff() (blocks, acks int) {
	return n.pushBlocks(false)
}

// Close detaches the node from its transport; subsequent RPCs in either
// direction fail. It is safe to call on a node that was never attached.
func (n *Node) Close() error {
	n.detached.Store(true)
	n.selfMu.RLock()
	tr := n.transport
	n.selfMu.RUnlock()
	if tr == nil {
		return nil
	}
	return tr.Close()
}

// remove unlinks the i-th member under the lock and returns it. The
// minted address counter is deliberately untouched: addresses are never
// reissued after a removal, so a later AddNode cannot shadow a departed
// (or crashed-and-reviving) endpoint on the simulated network.
func (c *Cluster) remove(i int) (*Node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.Nodes) {
		return nil, fmt.Errorf("kademlia: no node at index %d (membership %d)", i, len(c.Nodes))
	}
	n := c.Nodes[i]
	c.Nodes = append(c.Nodes[:i], c.Nodes[i+1:]...)
	return n, nil
}

// RemoveNode gracefully removes the i-th member (churn-out): the node is
// dropped from the membership, hands its blocks off to the nodes now
// closest to their keys, and detaches from the network. The returned
// node is dead for overlay purposes; its address is never reused.
//
// Indices shift left past i, so concurrent callers that pick indices
// must tolerate the error returned for a stale out-of-range index.
func (c *Cluster) RemoveNode(i int) (*Node, error) {
	n, err := c.remove(i)
	if err != nil {
		return nil, err
	}
	// Hand off while still attached, so the departing node can reach
	// the replicas that take over its blocks; then disappear.
	n.Handoff()
	n.Close()
	return n, nil
}

// Crash abruptly kills the i-th member: no handoff, no goodbye — the
// endpoint is marked down and detached, exactly as if the process died.
// The node object (with its routing table and block store intact, the
// way a disk survives a crash) is returned so the caller can Revive it
// later.
func (c *Cluster) Crash(i int) (*Node, error) {
	n, err := c.remove(i)
	if err != nil {
		return nil, err
	}
	addr := simnet.Addr(n.Self().Addr)
	c.Net.SetDown(addr, true)
	// Close the node's own endpoint too (which detaches it): a crashed
	// process sends nothing, and must not mistake its own send failures
	// for every peer being dead — the routing table has to survive the
	// crash alongside the store.
	n.Close()
	return n, nil
}

// Revive rejoins a previously crashed node at its original address: the
// endpoint is reattached and marked up, the node re-bootstraps through
// the via-th current member, and it rejoins the membership. Its
// pre-crash blocks come back with it and converge with the live
// replicas through republish max-merges.
func (c *Cluster) Revive(n *Node, via int) error {
	c.mu.RLock()
	if via < 0 || via >= len(c.Nodes) {
		c.mu.RUnlock()
		return fmt.Errorf("kademlia: no bootstrap node at index %d", via)
	}
	seed := c.Nodes[via].Self()
	c.mu.RUnlock()

	addr := simnet.Addr(n.Self().Addr)
	n.Attach(c.Net.Attach(addr, n))
	c.Net.SetDown(addr, false)
	if err := n.Bootstrap([]wire.Contact{seed}); err != nil {
		n.Close()
		return fmt.Errorf("kademlia: revive %s: %w", addr, err)
	}
	c.mu.Lock()
	c.Nodes = append(c.Nodes, n)
	c.mu.Unlock()
	return nil
}
