package kademlia

import (
	"dharma/internal/kadid"
	"dharma/internal/wire"
)

// Anti-entropy block summaries.
//
// Every block carries a 64-bit digest: the XOR fold of
// fieldDigest(field, count) over all of its fields. XOR makes the fold
// order-independent (appends and merges commute, so replicas that
// converged through different histories fold to the same value) and
// incrementally updatable: when a field's count moves from old to new,
// the mutation path XORs out fieldDigest(field, old) and XORs in
// fieldDigest(field, new) under the shard lock it already holds, so
// Summary is O(1) and never rescans the block.
//
// The digest covers the weight map only — (field, count) pairs, not
// Data/Author/Sig. Blobs are immutable once written (Append replaces,
// MergeMax adopts-when-empty) and always travel with the entry that
// created the field, so a weight-map match implies the replicas saw the
// same field set; a blob-only divergence heals on the next count bump.
//
// False positives: two differing blocks collide when the XOR of the
// differing pair hashes cancels. With 64-bit hashes mixed through a
// splitmix64 finalizer that is ~2^-64 per comparison — at one summary
// exchange per block per maintenance round, a fleet doing a billion
// comparisons a day expects one silent skip every ~50 million years,
// and the next count bump on either replica breaks the collision.
// TestDigestCollisionBound documents this bound.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fieldDigest hashes one (field, count) pair. FNV-1a over the field
// bytes and the count's little-endian bytes gives per-pair diffusion;
// the splitmix64 finalizer breaks FNV's near-linearity so structured
// field/count families do not produce correlated XOR folds.
func fieldDigest(field string, count uint64) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(field); i++ {
		h ^= uint64(field[i])
		h *= fnvPrime64
	}
	for i := 0; i < 8; i++ {
		h ^= (count >> (8 * i)) & 0xff
		h *= fnvPrime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Summary returns the block's anti-entropy summary (field count +
// weight-map digest). A missing block reports ok=false; its summary is
// the zero value, which is also what replicas exchange for "I have
// nothing".
func (s *Store) Summary(key kadid.ID) (wire.BlockSummary, bool) {
	sh := s.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	blk, ok := sh.blocks[key]
	if !ok {
		return wire.BlockSummary{}, false
	}
	return wire.BlockSummary{Fields: uint64(len(blk.fields)), Digest: blk.digest}, true
}

// Version returns the block's mutation counter. It only moves forward,
// and only when a mutation changed the block (idempotent replays of
// already-merged state do not bump it), so an unchanged version between
// two observations means the block is exactly as it was.
func (s *Store) Version(key kadid.ID) (uint64, bool) {
	sh := s.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	blk, ok := sh.blocks[key]
	if !ok {
		return 0, false
	}
	return blk.version, true
}

// Counts returns the block's weight map as count-only entries (no
// Data/Author/Sig copies, no sorting) — the cheap representation a
// summary mismatch reply carries so the other replica can compute a
// delta. Order is unspecified.
func (s *Store) Counts(key kadid.ID) ([]wire.Entry, bool) {
	sh := s.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	blk, ok := sh.blocks[key]
	if !ok {
		return nil, false
	}
	out := make([]wire.Entry, 0, len(blk.fields))
	for _, se := range blk.fields {
		out = append(out, wire.Entry{Field: se.field, Count: se.count})
	}
	return out, true
}
