package kademlia

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"dharma/internal/kadid"
	"dharma/internal/simnet"
	"dharma/internal/wire"
)

// busyThenPong answers KindBusy for the first busyCount requests, then
// a proper PONG. It records the arrival time of every request so tests
// can verify the caller's backoff schedule.
type busyThenPong struct {
	self      wire.Contact
	busyCount int

	mu       sync.Mutex
	arrivals []time.Time
}

func (b *busyThenPong) HandleRPC(_ context.Context, _ simnet.Addr, _ []byte) ([]byte, error) {
	b.mu.Lock()
	b.arrivals = append(b.arrivals, time.Now())
	n := len(b.arrivals)
	b.mu.Unlock()
	if n <= b.busyCount {
		return wire.Encode(&wire.Message{Kind: wire.KindBusy}), nil
	}
	return wire.Encode(&wire.Message{Kind: wire.KindPong, From: b.self}), nil
}

func (b *busyThenPong) times() []time.Time {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]time.Time(nil), b.arrivals...)
}

// TestBusyRetryBacksOffAndSucceeds: a client answered BUSY twice must
// retry with growing jittered delays and succeed on the third attempt —
// without ever dropping the busy peer from its routing table.
func TestBusyRetryBacksOffAndSucceeds(t *testing.T) {
	net := simnet.New(simnet.Config{})
	const backoff = 4 * time.Millisecond
	n := NewNode(kadid.HashString("client"), Config{K: 4, BusyBackoff: backoff})
	n.Attach(net.Attach("client", n))

	peer := wire.Contact{ID: kadid.HashString("busy-peer"), Addr: "busy-peer"}
	srv := &busyThenPong{self: peer, busyCount: 2}
	net.Attach("busy-peer", srv)
	n.Table().Update(peer)

	if !n.Ping(context.Background(), peer) {
		t.Fatal("Ping failed; the busy retries should have reached the PONG")
	}

	arr := srv.times()
	if len(arr) != 3 {
		t.Fatalf("server saw %d attempts, want 3 (2 busy + 1 success)", len(arr))
	}
	// Jitter draws from [0.5, 1.5)·backoff·2^i, so the gap lower bounds
	// are deterministic: ≥ backoff/2, then ≥ backoff (doubled base).
	gap1, gap2 := arr[1].Sub(arr[0]), arr[2].Sub(arr[1])
	if gap1 < backoff/2 {
		t.Fatalf("first retry after %v, want ≥ %v", gap1, backoff/2)
	}
	if gap2 < backoff {
		t.Fatalf("second retry after %v, want ≥ %v (backoff must grow)", gap2, backoff)
	}

	if got := n.Table().Closest(peer.ID, 1); len(got) == 0 || got[0].ID != peer.ID {
		t.Fatal("busy peer missing from the routing table: busy must not mean dead")
	}
}

// TestBusyExhaustionSurfacesTypedError: when every retry is answered
// BUSY, the call gives up with an error wrapping wire.ErrBusy — and the
// peer still stays in the routing table.
func TestBusyExhaustionSurfacesTypedError(t *testing.T) {
	net := simnet.New(simnet.Config{})
	n := NewNode(kadid.HashString("client"), Config{K: 4, BusyRetries: 2, BusyBackoff: time.Millisecond})
	n.Attach(net.Attach("client", n))

	peer := wire.Contact{ID: kadid.HashString("forever-busy"), Addr: "forever-busy"}
	srv := &busyThenPong{self: peer, busyCount: 1 << 30}
	net.Attach("forever-busy", srv)
	n.Table().Update(peer)

	_, err := n.call(context.Background(), peer, &wire.Message{Kind: wire.KindPing})
	if !errors.Is(err, wire.ErrBusy) {
		t.Fatalf("exhausted retries: got %v, want wire.ErrBusy", err)
	}
	if got := len(srv.times()); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (initial + 2 retries)", got)
	}
	if got := n.Table().Closest(peer.ID, 1); len(got) == 0 || got[0].ID != peer.ID {
		t.Fatal("busy peer was evicted from the routing table")
	}
}

// TestBusyRetryHonorsContext: cancellation during the backoff sleep
// returns promptly with the ctx error instead of finishing the retry
// schedule.
func TestBusyRetryHonorsContext(t *testing.T) {
	net := simnet.New(simnet.Config{})
	n := NewNode(kadid.HashString("client"), Config{K: 4, BusyRetries: 10, BusyBackoff: 200 * time.Millisecond})
	n.Attach(net.Attach("client", n))

	peer := wire.Contact{ID: kadid.HashString("forever-busy"), Addr: "forever-busy"}
	net.Attach("forever-busy", &busyThenPong{self: peer, busyCount: 1 << 30})
	n.Table().Update(peer)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := n.call(ctx, peer, &wire.Message{Kind: wire.KindPing})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("call took %v; ctx must cut the backoff sleep short", elapsed)
	}
}

// TestRemoveNodeHungHandoffHonorsContext: a departing node whose
// replicas never answer must not hang membership — the caller's
// deadline bounds the handoff, the removal itself still happens.
func TestRemoveNodeHungHandoffHonorsContext(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{N: 3, Node: Config{K: 2, Alpha: 2}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Shutdown()

	// Give the departing node a block so the handoff has work to do.
	departing := cl.NodeAt(2)
	key := kadid.HashString("block")
	if err := departing.store.Append(context.Background(), key, []wire.Entry{{Field: "f", Count: 1}}); err != nil {
		t.Fatal(err)
	}

	// Wedge every other member: requests arrive and never finish.
	block := make(chan struct{})
	defer close(block)
	for i := 0; i < 2; i++ {
		addr := simnet.Addr(cl.NodeAt(i).Self().Addr)
		cl.Net.Attach(addr, simnet.HandlerFunc(
			func(context.Context, simnet.Addr, []byte) ([]byte, error) {
				<-block
				return nil, errors.New("wedged")
			}))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	n, herr := cl.RemoveNode(ctx, 2)
	elapsed := time.Since(start)

	if n == nil {
		t.Fatal("RemoveNode returned no node; the removal must happen even when the handoff cannot")
	}
	if herr == nil {
		t.Fatal("hung handoff reported success")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("RemoveNode took %v; the 100ms deadline must bound the hung handoff", elapsed)
	}
	if got := cl.Len(); got != 2 {
		t.Fatalf("membership after removal = %d, want 2", got)
	}
}
