package kademlia

import (
	"context"
	"errors"
	"testing"
	"time"

	"dharma/internal/kadid"
	"dharma/internal/simnet"
	"dharma/internal/wire"
)

func testCluster(t *testing.T, n int, cfg Config) *Cluster {
	t.Helper()
	cl, err := NewCluster(ClusterConfig{N: n, Node: cfg, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// TestMaintainerPoolTracksMembership: the pool covers exactly the live
// membership through AddNode/Crash/Revive/RemoveNode.
func TestMaintainerPoolTracksMembership(t *testing.T) {
	cl := testCluster(t, 6, Config{K: 4, Alpha: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// A huge interval: loops exist but never fire; this test is about
	// coverage bookkeeping, not behavior.
	set := cl.StartMaintenance(ctx, MaintainerConfig{Interval: time.Hour, Seed: 9})
	if set.Len() != 6 {
		t.Fatalf("pool covers %d members, want 6", set.Len())
	}

	joiner, err := cl.AddNode(context.Background(), Config{K: 4, Alpha: 2}, 77, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !set.Covers(joiner) || set.Len() != 7 {
		t.Fatalf("late joiner not covered (len %d)", set.Len())
	}

	crashed, err := cl.Crash(cl.Len() - 1)
	if err != nil {
		t.Fatal(err)
	}
	if set.Covers(crashed) || set.Len() != 6 {
		t.Fatalf("crashed member still covered (len %d)", set.Len())
	}

	revived, err := cl.Revive(context.Background(), crashed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !set.Covers(revived) || set.Len() != 7 {
		t.Fatalf("revived member not covered (len %d)", set.Len())
	}

	if _, err := cl.RemoveNode(context.Background(), cl.Len()-1); err != nil && !errors.Is(err, ErrHandoffIncomplete) {
		t.Fatal(err)
	}
	if set.Len() != 6 {
		t.Fatalf("pool covers %d after graceful leave, want 6", set.Len())
	}

	// After cancellation the pool ignores joins.
	cancel()
	set.Wait()
	late, err := cl.AddNode(context.Background(), Config{K: 4, Alpha: 2}, 78, 0)
	if err != nil {
		t.Fatal(err)
	}
	if set.Covers(late) {
		t.Fatal("pool added a maintainer after its context ended")
	}
}

// TestMaintainerPoolCoversLateJoiner is the behavioral half: a block
// held ONLY by a node that joined after StartMaintenance must still get
// republished onto its replica set — only the joiner's own maintainer
// can do that.
func TestMaintainerPoolCoversLateJoiner(t *testing.T) {
	cl := testCluster(t, 8, Config{K: 3, Alpha: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	set := cl.StartMaintenance(ctx, MaintainerConfig{Interval: 20 * time.Millisecond, Seed: 5})
	defer set.Wait()
	defer cancel()

	joiner, err := cl.AddNode(context.Background(), Config{K: 3, Alpha: 2}, 99, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := kadid.HashString("late-joiner-block")
	if err := joiner.LocalStore().Append(context.Background(), key, []wire.Entry{{Field: "f", Count: 5}}); err != nil {
		t.Fatal(err)
	}

	deadline := time.After(5 * time.Second)
	for {
		holders := 0
		for _, n := range cl.Snapshot() {
			if n != joiner && n.LocalStore().Has(key) {
				holders++
			}
		}
		if holders > 0 {
			return // the joiner's maintainer republished
		}
		select {
		case <-deadline:
			t.Fatal("late joiner's block never republished — joiner has no maintainer")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestHandoffReportsUnacked: a departing node whose peers are all
// unreachable reports every block as unacknowledged instead of
// silently dropping them.
func TestHandoffReportsUnacked(t *testing.T) {
	cl := testCluster(t, 5, Config{K: 3, Alpha: 2})
	leaver := cl.Nodes[4]
	keys := []kadid.ID{kadid.HashString("h1"), kadid.HashString("h2"), kadid.HashString("h3")}
	for _, k := range keys {
		if err := leaver.LocalStore().Append(context.Background(), k, []wire.Entry{{Field: "f", Count: 1}}); err != nil {
			t.Fatal(err)
		}
	}

	// Healthy overlay: the handoff lands and reports nothing.
	blocks, acks, err := leaver.Handoff(context.Background())
	if err != nil || blocks != len(keys) || acks == 0 {
		t.Fatalf("healthy handoff: blocks=%d acks=%d err=%v", blocks, acks, err)
	}

	// Kill every peer: nothing can ack, the report must name the loss.
	for _, n := range cl.Nodes[:4] {
		cl.Net.SetDown(simnet.Addr(n.Self().Addr), true)
	}
	blocks, acks, err = leaver.Handoff(context.Background())
	if !errors.Is(err, ErrHandoffIncomplete) {
		t.Fatalf("handoff into a dead overlay: err=%v, want ErrHandoffIncomplete", err)
	}
	if blocks != len(keys) || acks != 0 {
		t.Fatalf("handoff into a dead overlay: blocks=%d acks=%d", blocks, acks)
	}

	// RemoveNode surfaces the same report while still removing.
	for _, n := range cl.Nodes[:4] {
		cl.Net.SetDown(simnet.Addr(n.Self().Addr), false)
	}
	cl2 := testCluster(t, 4, Config{K: 3, Alpha: 2})
	victim := cl2.Nodes[3]
	if err := victim.LocalStore().Append(context.Background(), kadid.HashString("solo"), []wire.Entry{{Field: "f", Count: 2}}); err != nil {
		t.Fatal(err)
	}
	for _, n := range cl2.Nodes[:3] {
		cl2.Net.SetDown(simnet.Addr(n.Self().Addr), true)
	}
	n, err := cl2.RemoveNode(context.Background(), 3)
	if n == nil {
		t.Fatalf("RemoveNode failed outright: %v", err)
	}
	if !errors.Is(err, ErrHandoffIncomplete) {
		t.Fatalf("RemoveNode error = %v, want ErrHandoffIncomplete", err)
	}
	if cl2.Len() != 3 {
		t.Fatalf("membership %d after leave, want 3", cl2.Len())
	}
}
