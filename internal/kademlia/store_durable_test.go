package kademlia

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"dharma/internal/kadid"
	"dharma/internal/persist"
	"dharma/internal/wire"
)

// storeImage captures a store's observable contents: every block,
// fully sorted, plus the filtered head — so equality also proves the
// incremental top-N index was rebuilt correctly.
func storeImage(t *testing.T, s *Store) map[kadid.ID][]wire.Entry {
	t.Helper()
	img := make(map[kadid.ID][]wire.Entry)
	for _, key := range s.Keys() {
		full, ok := s.Get(key, 0)
		if !ok {
			t.Fatalf("key %s vanished", key.Short())
		}
		head, _ := s.Get(key, 10)
		want := full
		if len(want) > 10 {
			want = want[:10]
		}
		if !reflect.DeepEqual(head, want) {
			t.Fatalf("key %s: top index disagrees with full sort", key.Short())
		}
		img[key] = full
	}
	return img
}

func imagesEqual(t *testing.T, got, want map[kadid.ID][]wire.Entry) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("store holds %d blocks, want %d", len(got), len(want))
	}
	for k, w := range want {
		if !reflect.DeepEqual(got[k], w) {
			t.Fatalf("block %s differs:\n got %+v\nwant %+v", k.Short(), got[k], w)
		}
	}
}

// populateDurable applies a randomized mutation mix through every write
// path (single appends, batches, merges).
func populateDurable(t *testing.T, s *Store) {
	t.Helper()
	for i := 0; i < 40; i++ {
		key := kadid.HashString(fmt.Sprintf("blk%d", i%7))
		if err := s.Append(context.Background(), key, []wire.Entry{
			{Field: fmt.Sprintf("f%d", i%13), Count: uint64(i%5 + 1)},
			{Field: fmt.Sprintf("g%d", i%3), Count: 1, Init: 2},
		}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.AppendBatch(context.Background(), []BatchItem{
		{Key: kadid.HashString("batch1"), Entries: []wire.Entry{{Field: "a", Count: 3}}},
		{Key: kadid.HashString("batch2"), Entries: []wire.Entry{{Field: "b", Count: 4, Data: []byte("uri")}}},
		{Key: kadid.HashString("blk0"), Entries: []wire.Entry{{Field: "f0", Count: 9}}},
	}); err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	if err := s.MergeMax(context.Background(), kadid.HashString("blk1"), []wire.Entry{{Field: "f1", Count: 100}}); err != nil {
		t.Fatalf("MergeMax: %v", err)
	}
}

func TestDurableStoreRecovery(t *testing.T) {
	dir := t.TempDir()
	s, stats, err := OpenDurableStore(dir, persist.Options{Sync: persist.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 0 || stats.SnapshotSeq != 0 {
		t.Fatalf("fresh dir recovered state: %+v", stats)
	}
	populateDurable(t, s)
	want := storeImage(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 2; round++ {
		s2, stats, err := OpenDurableStore(dir, persist.Options{Sync: persist.SyncNone})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if stats.Records == 0 && stats.SnapshotRecords == 0 {
			t.Fatalf("round %d: nothing replayed", round)
		}
		imagesEqual(t, storeImage(t, s2), want)
		if round == 0 {
			// Compact between rounds: the second recovery reads the
			// snapshot path instead of the raw WAL.
			if err := s2.Compact(); err != nil {
				t.Fatalf("Compact: %v", err)
			}
		}
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// After the explicit Compact the recovery must come from a snapshot.
	s3, stats, err := OpenDurableStore(dir, persist.Options{Sync: persist.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SnapshotSeq == 0 || stats.SnapshotRecords == 0 {
		t.Fatalf("expected snapshot recovery, got %+v", stats)
	}
	imagesEqual(t, storeImage(t, s3), want)
	s3.Close()
}

// TestDurableStoreCrash: acknowledged mutations survive a simulated
// SIGKILL; the store object refuses new writes afterwards.
func TestDurableStoreCrash(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenDurableStore(dir, persist.Options{Sync: persist.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	populateDurable(t, s)
	want := storeImage(t, s)
	s.SimulateCrash()

	if err := s.Append(context.Background(), kadid.HashString("late"), []wire.Entry{{Field: "x", Count: 1}}); !errors.Is(err, persist.ErrCrashed) {
		t.Fatalf("append after crash: %v, want ErrCrashed", err)
	}

	s2, _, err := OpenDurableStore(dir, persist.Options{Sync: persist.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	imagesEqual(t, storeImage(t, s2), want)
}

// TestDurableStoreAutoCompact crosses the CompactBytes threshold and
// checks a snapshot appears in the background without losing state.
func TestDurableStoreAutoCompact(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenDurableStore(dir, persist.Options{
		Sync: persist.SyncNone, SegmentBytes: 1 << 12, CompactBytes: 1 << 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		key := kadid.HashString(fmt.Sprintf("k%d", i%11))
		if err := s.Append(context.Background(), key, []wire.Entry{{Field: fmt.Sprintf("f%d", i%97), Count: 1}}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	want := storeImage(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	snaps, err := filepath.Glob(filepath.Join(dir, "snap", "*.snap"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no snapshot written by auto-compaction (err=%v)", err)
	}

	s2, _, err := OpenDurableStore(dir, persist.Options{Sync: persist.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	imagesEqual(t, storeImage(t, s2), want)
}

// TestDurableStoreConcurrent hammers a durable store from many
// goroutines (run under -race) and then verifies a full recovery.
func TestDurableStoreConcurrent(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenDurableStore(dir, persist.Options{
		Sync: persist.SyncNone, SegmentBytes: 1 << 14, CompactBytes: 1 << 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers, each = 8, 120
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := kadid.HashString(fmt.Sprintf("w%d", w%3))
			for i := 0; i < each; i++ {
				switch i % 3 {
				case 0:
					if err := s.Append(context.Background(), key, []wire.Entry{{Field: fmt.Sprintf("f%d", i), Count: 1}}); err != nil {
						t.Errorf("append: %v", err)
						return
					}
				case 1:
					if err := s.AppendBatch(context.Background(), []BatchItem{
						{Key: key, Entries: []wire.Entry{{Field: "hot", Count: 1}}},
						{Key: kadid.HashString(fmt.Sprintf("w%d-b", w)), Entries: []wire.Entry{{Field: "c", Count: 2}}},
					}); err != nil {
						t.Errorf("batch: %v", err)
						return
					}
				default:
					if err := s.MergeMax(context.Background(), key, []wire.Entry{{Field: "hot", Count: uint64(i)}}); err != nil {
						t.Errorf("merge: %v", err)
						return
					}
				}
				if i%10 == 0 {
					s.Get(key, 5)
				}
			}
		}(w)
	}
	wg.Wait()
	want := storeImage(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, _, err := OpenDurableStore(dir, persist.Options{Sync: persist.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	imagesEqual(t, storeImage(t, s2), want)
}

// durableCluster builds a cluster whose nodes persist under a temp dir.
func durableCluster(t *testing.T, n int, nodeCfg Config) *Cluster {
	t.Helper()
	cl, err := NewCluster(ClusterConfig{
		N:       n,
		Node:    nodeCfg,
		Seed:    1,
		DataDir: t.TempDir(),
		Persist: persist.Options{Sync: persist.SyncNone},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Shutdown)
	return cl
}

// TestClusterReviveRecoversFromDisk is the wipe-and-recover path: a
// crashed node of a durable cluster comes back as a fresh process that
// reads its blocks from its data directory, not from the dead object's
// memory.
func TestClusterReviveRecoversFromDisk(t *testing.T) {
	cl := durableCluster(t, 12, Config{K: 4, Alpha: 3})

	key := kadid.HashString("durable-block")
	if _, err := cl.Nodes[0].Store(context.Background(), key, []wire.Entry{{Field: "f", Count: 7}}); err != nil {
		t.Fatal(err)
	}
	var victim *Node
	var idx int
	for i, n := range cl.Snapshot() {
		if i != 0 && n.LocalStore().Has(key) {
			victim, idx = n, i
			break
		}
	}
	if victim == nil {
		t.Fatal("no replica holder besides the writer")
	}

	crashed, err := cl.Crash(idx)
	if err != nil {
		t.Fatal(err)
	}
	revived, err := cl.Revive(context.Background(), crashed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if revived == crashed {
		t.Fatal("durable revive returned the retained in-memory node; want a fresh process-style node")
	}
	if revived.Self() != crashed.Self() {
		t.Fatalf("revived node changed identity: %+v != %+v", revived.Self(), crashed.Self())
	}
	es, ok := revived.LocalStore().Get(key, 0)
	if !ok || len(es) != 1 || es[0].Count != 7 {
		t.Fatalf("revived store lost the block: ok=%v entries=%+v", ok, es)
	}
	if !cl.Nodes[0].Ping(context.Background(), revived.Self()) {
		t.Fatal("revived node does not answer")
	}

	// The acknowledged write is still readable through the overlay.
	got, err := cl.Nodes[0].FindValue(context.Background(), key, 0)
	if err != nil || len(got) == 0 || got[0].Count < 7 {
		t.Fatalf("overlay read after revive: %+v, %v", got, err)
	}
}

// TestClusterCrashDropsUnacknowledged: with every replica of a key
// crashed process-style and revived from disk, acknowledged writes
// survive — and the revived node refuses nothing it acked.
func TestClusterWipeRecoverAllReplicas(t *testing.T) {
	cl := durableCluster(t, 10, Config{K: 3, Alpha: 3})

	key := kadid.HashString("all-replicas-die")
	if _, err := cl.Nodes[0].Store(context.Background(), key, []wire.Entry{{Field: "f", Count: 11}}); err != nil {
		t.Fatal(err)
	}

	// Crash every holder (possibly including the writer).
	var crashed []*Node
	for {
		holder := -1
		for i, n := range cl.Snapshot() {
			if n.LocalStore().Has(key) {
				holder = i
				break
			}
		}
		if holder == -1 {
			break
		}
		n, err := cl.Crash(holder)
		if err != nil {
			t.Fatal(err)
		}
		crashed = append(crashed, n)
	}
	if len(crashed) == 0 {
		t.Fatal("no holders found")
	}
	if reader := cl.NodeAt(0); reader != nil {
		if _, err := reader.FindValue(context.Background(), key, 0); err == nil {
			t.Fatal("block readable while every holder is dead")
		}
	}

	for _, n := range crashed {
		if _, err := cl.Revive(context.Background(), n, 0); err != nil {
			t.Fatalf("revive: %v", err)
		}
	}
	got, err := cl.NodeAt(0).FindValue(context.Background(), key, 0)
	if err != nil || len(got) == 0 || got[0].Count < 11 {
		t.Fatalf("acknowledged write lost across full wipe-and-recover: %+v, %v", got, err)
	}
}
