package kademlia

import (
	"context"
	"testing"
	"time"

	"dharma/internal/kadid"
	"dharma/internal/likir"
	"dharma/internal/session"
	"dharma/internal/wire"
)

// TestDeadlinePropagationSheds drives HandleRPC directly — the way a
// UDP transport does, with no caller context attached — and checks that
// the wire-level Deadline field alone is enough for the server to shed
// work that is dead on arrival.
func TestDeadlinePropagationSheds(t *testing.T) {
	n := NewNode(kadid.HashString("server"), Config{K: 4, ChaosDelay: 5 * time.Millisecond})

	// A 100µs budget against a 5ms chaos delay: the request is dead long
	// before dispatch. No reply must be produced.
	dead := wire.Encode(&wire.Message{Kind: wire.KindPing, Deadline: 100})
	if out, err := n.HandleRPC(context.Background(), "caller", dead); err == nil {
		t.Fatalf("expired request served anyway: %q", out)
	}
	if got := n.DeadlineShed(); got != 1 {
		t.Fatalf("DeadlineShed = %d, want 1", got)
	}

	// No budget on the wire = no server-side deadline: the same request
	// without the stamp rides out the chaos delay and gets its PONG.
	alive := wire.Encode(&wire.Message{Kind: wire.KindPing})
	out, err := n.HandleRPC(context.Background(), "caller", alive)
	if err != nil {
		t.Fatalf("unstamped request: %v", err)
	}
	resp, err := wire.Decode(out)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Kind != wire.KindPong {
		t.Fatalf("resp = %v, want PONG", resp.Kind)
	}
	if got := n.DeadlineShed(); got != 1 {
		t.Fatalf("DeadlineShed after control = %d, want 1", got)
	}
}

// TestCallStampsDeadline checks the client half: a context deadline is
// translated into the message's µs budget for the receiving side.
func TestCallStampsDeadline(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{N: 2, Node: Config{K: 4, Alpha: 2}, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	msg := &wire.Message{Kind: wire.KindPing}
	if _, err := cl.Nodes[0].call(ctx, cl.Nodes[1].Self(), msg); err != nil {
		t.Fatalf("call: %v", err)
	}
	// ~1h in µs, minus the time spent reaching callOnce.
	if msg.Deadline == 0 || msg.Deadline > uint64(time.Hour/time.Microsecond) {
		t.Fatalf("stamped Deadline = %dµs, want ~1h", msg.Deadline)
	}
	// Without a context deadline the stamp must stay zero — "no budget"
	// must never be encoded as a huge finite one.
	msg2 := &wire.Message{Kind: wire.KindPing}
	if _, err := cl.Nodes[0].call(context.Background(), cl.Nodes[1].Self(), msg2); err != nil {
		t.Fatalf("call: %v", err)
	}
	if msg2.Deadline != 0 {
		t.Fatalf("stamped Deadline = %d without a ctx deadline, want 0", msg2.Deadline)
	}
}

// TestSessionPeerSkipsCredentialCheck verifies the admission fast path:
// a request arriving over an authenticated transport session needs no
// per-message credential, while the same request without the session
// context is refused UNAUTHORIZED.
func TestSessionPeerSkipsCredentialCheck(t *testing.T) {
	auth, err := likir.NewAuthority(nil, time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	server, err := auth.Issue(nil, "server")
	if err != nil {
		t.Fatal(err)
	}
	client, err := auth.Issue(nil, "client")
	if err != nil {
		t.Fatal(err)
	}
	n := NewNode(kadid.ID{}, Config{K: 4, Identity: server, CAPub: auth.PublicKey()})

	// The message deliberately carries no credential blob: over a session
	// transport the handshake already proved the identity.
	payload := wire.Encode(&wire.Message{
		Kind: wire.KindPing,
		From: wire.Contact{ID: client.NodeID, Addr: "client-addr"},
	})

	ctx := session.WithPeer(context.Background(), &client.Credential)
	out, err := n.HandleRPC(ctx, "client-addr", payload)
	if err != nil {
		t.Fatalf("HandleRPC: %v", err)
	}
	resp, err := wire.Decode(out)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != wire.KindPong {
		t.Fatalf("session-authenticated ping answered %v, want PONG", resp.Kind)
	}

	// Same request, no session on the context: credential required.
	out, err = n.HandleRPC(context.Background(), "client-addr", payload)
	if err != nil {
		t.Fatalf("HandleRPC: %v", err)
	}
	resp, err = wire.Decode(out)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != wire.KindUnauthorized {
		t.Fatalf("credential-less ping answered %v, want UNAUTHORIZED", resp.Kind)
	}
	if n.AuthRejected() != 1 {
		t.Fatalf("AuthRejected = %d, want 1", n.AuthRejected())
	}

	// A session for a DIFFERENT identity than the claimed sender must not
	// satisfy admission (a peer cannot borrow someone else's session).
	mallory, err := auth.Issue(nil, "mallory")
	if err != nil {
		t.Fatal(err)
	}
	ctx = session.WithPeer(context.Background(), &mallory.Credential)
	out, err = n.HandleRPC(ctx, "client-addr", payload)
	if err != nil {
		t.Fatal(err)
	}
	if resp, _ := wire.Decode(out); resp.Kind != wire.KindUnauthorized {
		t.Fatalf("mismatched session identity answered %v, want UNAUTHORIZED", resp.Kind)
	}
}

// TestRevocationBeatsSession: a revoked peer is cut off even when its
// transport session is still live — the bundle check runs before the
// session fast path.
func TestRevocationBeatsSession(t *testing.T) {
	auth, err := likir.NewAuthority(nil, time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	server, err := auth.Issue(nil, "server")
	if err != nil {
		t.Fatal(err)
	}
	client, err := auth.Issue(nil, "client")
	if err != nil {
		t.Fatal(err)
	}
	set, err := likir.NewRevocationSet(auth.PublicKey(), nil)
	if err != nil {
		t.Fatal(err)
	}
	n := NewNode(kadid.ID{}, Config{
		K: 4, Identity: server, CAPub: auth.PublicKey(), Revoked: set.Contains,
	})

	payload := wire.Encode(&wire.Message{
		Kind: wire.KindPing,
		From: wire.Contact{ID: client.NodeID, Addr: "client-addr"},
	})
	ctx := session.WithPeer(context.Background(), &client.Credential)
	out, err := n.HandleRPC(ctx, "client-addr", payload)
	if err != nil {
		t.Fatal(err)
	}
	if resp, _ := wire.Decode(out); resp.Kind != wire.KindPong {
		t.Fatalf("pre-revocation ping answered %v, want PONG", resp.Kind)
	}

	auth.Revoke(client.NodeID)
	if err := set.Refresh(auth.PublicKey(), auth.RevocationBundle()); err != nil {
		t.Fatal(err)
	}
	out, err = n.HandleRPC(ctx, "client-addr", payload)
	if err != nil {
		t.Fatal(err)
	}
	if resp, _ := wire.Decode(out); resp.Kind != wire.KindUnauthorized {
		t.Fatalf("post-revocation ping answered %v, want UNAUTHORIZED", resp.Kind)
	}
}
