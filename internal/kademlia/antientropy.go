package kademlia

import (
	"context"
	"math"
	"sync"

	"dharma/internal/kadid"
	"dharma/internal/wire"
)

// Summary-based anti-entropy (the bandwidth-frugal replica sync).
//
// The old maintenance path pushed every stored block, in full, to its k
// closest nodes every round — O(store size) bytes per round even when
// every replica already agreed. The summary path inverts that: replicas
// first exchange a fixed-size BlockSummary (field count + weight-map
// digest, see store_summary.go); matching digests end the exchange in
// one small round trip, and mismatches move only a delta — the fields
// the other side is missing or holds at a lower count. MergeMax applies
// deltas idempotently and commutatively, so partial syncs, retries and
// concurrent writers all converge.
//
// On top of the per-exchange savings, AntiEntropyOnce adds per-block
// timers (Kademlia §2.5 republish suppression): a block whose version
// moved since the last round was just written — write-time replication
// already spread it, so it skips a round — and a block that is unchanged
// and was synced recently is not re-checked until RepublishEvery rounds
// have passed. Every block is still force-synced at least once per
// RepublishEvery rounds, so replica staleness stays bounded even for
// permanently hot blocks.

// DefaultRepublishEvery is how many anti-entropy rounds an unchanged,
// already-synced block sits out between summary checks.
const DefaultRepublishEvery = 4

// aeNeverSynced is the "last synced round" sentinel for blocks that
// have never completed a sync: far enough in the past that the periodic
// force-sync rule fires on the first round that sees them.
const aeNeverSynced = math.MinInt64 / 2

// AntiEntropyStats is a snapshot of a node's cumulative anti-entropy
// counters, across both AntiEntropyOnce rounds and forced RepublishOnce
// sweeps (and, for the delta/byte counters, read-repair).
type AntiEntropyStats struct {
	Synced        int64 // blocks reconciled via summary exchange
	Suppressed    int64 // block-rounds skipped because recently written
	Skipped       int64 // block-rounds skipped because synced and not yet due
	DigestMatches int64 // summary exchanges where digests matched (no data moved)
	DeltaEntries  int64 // entries pushed as sync deltas (not whole blocks)
	PullEntries   int64 // entries pull-merged from better-informed replicas
	FullBlocks    int64 // fallback whole-block pushes (remote counts unavailable)
	RepairEntries int64 // entries pushed by delta read-repair
	BytesSent     int64 // payload bytes sent on SUMMARY/REPLICATE exchanges
	BytesRecv     int64 // payload bytes received on SUMMARY/REPLICATE exchanges
}

// AntiEntropy returns the node's anti-entropy counters.
func (n *Node) AntiEntropy() AntiEntropyStats {
	return AntiEntropyStats{
		Synced:        n.aeSynced.Load(),
		Suppressed:    n.aeSuppressed.Load(),
		Skipped:       n.aeSkipped.Load(),
		DigestMatches: n.aeMatches.Load(),
		DeltaEntries:  n.aeDeltaEntries.Load(),
		PullEntries:   n.aePullEntries.Load(),
		FullBlocks:    n.aeFullBlocks.Load(),
		RepairEntries: n.repairEntries.Load(),
		BytesSent:     n.aeBytesOut.Load(),
		BytesRecv:     n.aeBytesIn.Load(),
	}
}

// AntiEntropyRound reports what one AntiEntropyOnce round did.
type AntiEntropyRound struct {
	Synced     int // blocks summary-synced this round
	Suppressed int // blocks that skipped the round as recently written
	Skipped    int // blocks synced earlier and not yet due again
	Acks       int // replica acknowledgements (digest match counts as one)
}

// AntiEntropyOnce runs one timer-driven anti-entropy round over the
// local store. Per block, in priority order:
//
//  1. due — never synced, or RepublishEvery rounds since the last sync:
//     summary-sync it regardless of write activity (bounds staleness);
//  2. recently written — its version moved since the previous round:
//     skip (write-time replication just spread it; syncing now would
//     re-send what the write already delivered);
//  3. settled — unchanged since last round but changed since its last
//     sync: summary-sync it;
//  4. otherwise skip until due again.
//
// every <= 0 uses DefaultRepublishEvery. A cancelled ctx stops the
// sweep between blocks, like RepublishOnce.
func (n *Node) AntiEntropyOnce(ctx context.Context, every int) AntiEntropyRound {
	if every <= 0 {
		every = DefaultRepublishEvery
	}
	var r AntiEntropyRound
	n.aeMu.Lock()
	n.aeRoundCtr++
	round := n.aeRoundCtr
	n.aeMu.Unlock()
	for _, key := range n.store.Keys() {
		if ctx.Err() != nil {
			break
		}
		v, ok := n.store.Version(key)
		if !ok {
			continue
		}
		n.aeMu.Lock()
		seen, seenOK := n.aeSeen[key]
		syncedV := n.aeSyncedV[key]
		lastRound, syncedOK := n.aeRoundAt[key]
		if !syncedOK {
			lastRound = aeNeverSynced
		}
		n.aeSeen[key] = v
		n.aeMu.Unlock()

		due := round-lastRound >= int64(every)
		switch {
		case !due && seenOK && seen != v:
			r.Suppressed++
			n.aeSuppressed.Add(1)
			continue
		case !due && syncedOK && syncedV == v:
			r.Skipped++
			n.aeSkipped.Add(1)
			continue
		}

		targets := n.insertSelf(n.IterativeFindNode(ctx, key), key)
		r.Acks += n.syncBlock(ctx, key, targets)
		r.Synced++
		n.aeMu.Lock()
		n.aeSyncedV[key] = v
		n.aeRoundAt[key] = round
		n.aeMu.Unlock()
	}
	return r
}

// syncBlock reconciles the block under key with every target (in
// parallel, like replicateTo) using the summary exchange, and returns
// how many replicas acknowledged — a digest match counts: the replica
// demonstrably holds the same weight map. The full block is fetched
// lazily, so a round where every replica matches never materializes it.
func (n *Node) syncBlock(ctx context.Context, key kadid.ID, targets []wire.Contact) int {
	local, ok := n.store.Summary(key)
	if !ok {
		return 0
	}
	n.aeSynced.Add(1)
	var fullMu sync.Mutex
	var full []wire.Entry
	fullEntries := func() []wire.Entry {
		fullMu.Lock()
		defer fullMu.Unlock()
		if full == nil {
			full, _ = n.store.Get(key, 0)
		}
		return full
	}
	acks := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, c := range targets {
		if c.ID == n.id {
			continue // we already hold it
		}
		wg.Add(1)
		go func(c wire.Contact) {
			defer wg.Done()
			if n.syncBlockWith(ctx, key, local, c, fullEntries) {
				mu.Lock()
				acks++
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	return acks
}

// syncBlockWith runs the summary exchange with one replica:
//
//	-> SUMMARY {key, our summary}
//	<- SUMMARY_REPLY {their summary, their (field,count) map on mismatch}
//	-> REPLICATE {only the fields they miss or hold lower}   (if any)
//
// and pull-merges any counts the replica holds above ours, so a single
// exchange heals both directions. Returns whether the replica is known
// to hold at least our state afterwards.
func (n *Node) syncBlockWith(ctx context.Context, key kadid.ID, local wire.BlockSummary, c wire.Contact, fullEntries func() []wire.Entry) bool {
	if n.cfg.Revoked != nil && n.cfg.Revoked(c.ID) {
		// A revoked replica gets neither our deltas nor — more
		// importantly — a chance to feed us counts through the pull
		// half of the exchange.
		return false
	}
	resp, err := n.call(ctx, c, &wire.Message{Kind: wire.KindSummary, Target: key, Summary: local})
	if err != nil || resp.Kind != wire.KindSummaryReply {
		return false
	}
	if resp.Summary == local {
		n.aeMatches.Add(1)
		return true
	}
	entries := fullEntries()
	var delta []wire.Entry
	fallback := resp.Summary.Fields > 0 && len(resp.Entries) == 0
	if fallback {
		// The replica has a block but could not enumerate it (wider than
		// a message allows): fall back to the whole-block push.
		delta = entries
		n.aeFullBlocks.Add(1)
	} else {
		remote := make(map[string]uint64, len(resp.Entries))
		for _, e := range resp.Entries {
			remote[e.Field] = e.Count
		}
		delta = deltaEntries(entries, remote)
		// Pull: counts the replica holds above ours merge back locally
		// (count-only — any blob travels with a later push the usual way).
		localCounts := make(map[string]uint64, len(entries))
		for _, e := range entries {
			localCounts[e.Field] = e.Count
		}
		if pull := deltaEntries(resp.Entries, localCounts); len(pull) > 0 {
			n.aePullEntries.Add(int64(len(pull)))
			n.store.MergeMax(ctx, key, pull) //nolint:errcheck // best-effort pull
		}
	}
	if len(delta) == 0 {
		return true // the replica holds a superset; nothing to push
	}
	if !fallback {
		n.aeDeltaEntries.Add(int64(len(delta)))
	}
	ack, err := n.call(ctx, c, &wire.Message{Kind: wire.KindReplicate, Target: key, Entries: delta})
	return err == nil && ack.Kind == wire.KindStoreAck
}

// deltaEntries selects the entries of local whose field the other side
// is missing or holds at a lower count — exactly what MergeMax applied
// remotely needs to raise the other replica to the field-wise maximum
// of the pair. It is the one direction of the sync; read-repair and the
// pull half use the same shape with the roles swapped.
func deltaEntries(local []wire.Entry, remote map[string]uint64) []wire.Entry {
	var delta []wire.Entry
	for _, e := range local {
		if rc, ok := remote[e.Field]; !ok || e.Count > rc {
			delta = append(delta, e)
		}
	}
	return delta
}
