package kademlia

import (
	"context"
	"testing"

	"dharma/internal/kadid"
	"dharma/internal/wire"
)

// Integration tests for the summary exchange and the per-block timers,
// on a small simnet overlay where every node replicates every block
// (K = n), so replica state is fully deterministic.

func TestSummarySyncSuppressesDataWhenReplicasAgree(t *testing.T) {
	cl := newTestCluster(t, 8, 7001)
	a := cl.Nodes[0]
	key := kadid.HashString("agreed|3")
	if _, err := a.Store(context.Background(), key, []wire.Entry{
		{Field: "rock", Count: 3}, {Field: "jazz", Count: 1},
	}); err != nil {
		t.Fatal(err)
	}

	// Write-time replication already converged all 8 replicas, so a full
	// republish sweep must be pure digest traffic: matches, no deltas,
	// no whole-block fallbacks.
	blocks, acks := a.RepublishOnce(context.Background())
	st := a.AntiEntropy()
	if blocks != 1 || acks != 7 {
		t.Fatalf("RepublishOnce = (%d blocks, %d acks), want (1, 7)", blocks, acks)
	}
	if st.DigestMatches != 7 {
		t.Fatalf("DigestMatches = %d, want 7", st.DigestMatches)
	}
	if st.DeltaEntries != 0 || st.FullBlocks != 0 || st.PullEntries != 0 {
		t.Fatalf("agreeing replicas moved data: %+v", st)
	}
	if st.BytesSent == 0 || st.BytesRecv == 0 {
		t.Fatalf("summary exchange metered no bytes: %+v", st)
	}
}

func TestSummarySyncPushesOnlyTheDelta(t *testing.T) {
	cl := newTestCluster(t, 8, 7002)
	a := cl.Nodes[0]
	key := kadid.HashString("diverged|3")
	if _, err := a.Store(context.Background(), key, []wire.Entry{
		{Field: "rock", Count: 3}, {Field: "jazz", Count: 1}, {Field: "pop", Count: 2},
	}); err != nil {
		t.Fatal(err)
	}

	// Diverge: one new field lands only on a's local replica (a write a
	// crashed replica set would have missed).
	if err := a.LocalStore().Append(context.Background(), key, []wire.Entry{{Field: "indie", Count: 5}}); err != nil {
		t.Fatal(err)
	}

	before := a.AntiEntropy()
	if _, acks := a.RepublishOnce(context.Background()); acks != 7 {
		t.Fatalf("acks = %d, want 7", acks)
	}
	st := a.AntiEntropy()
	// Each of the 7 stale replicas receives exactly the 1 missing entry,
	// not the 4-entry block.
	if got := st.DeltaEntries - before.DeltaEntries; got != 7 {
		t.Fatalf("delta entries pushed = %d, want 7 (one per replica)", got)
	}
	if st.FullBlocks != before.FullBlocks {
		t.Fatalf("delta sync fell back to full-block pushes: %+v", st)
	}
	for i, n := range cl.Nodes {
		es, ok := n.LocalStore().Get(key, 0)
		if !ok || len(es) != 4 {
			t.Fatalf("node %d did not converge: %v (ok=%v)", i, es, ok)
		}
	}

	// A second sweep is back to pure digest matches.
	before = a.AntiEntropy()
	a.RepublishOnce(context.Background())
	st = a.AntiEntropy()
	if st.DeltaEntries != before.DeltaEntries || st.DigestMatches-before.DigestMatches != 7 {
		t.Fatalf("converged replicas still pushed data: %+v -> %+v", before, st)
	}
}

func TestSummarySyncPullsHigherRemoteCounts(t *testing.T) {
	cl := newTestCluster(t, 8, 7003)
	a, b := cl.Nodes[0], cl.Nodes[1]
	key := kadid.HashString("pulled|3")
	if _, err := a.Store(context.Background(), key, []wire.Entry{{Field: "rock", Count: 3}}); err != nil {
		t.Fatal(err)
	}

	// b's replica pulls ahead (a write a partitioned away from).
	if err := b.LocalStore().Append(context.Background(), key, []wire.Entry{{Field: "rock", Count: 10}}); err != nil {
		t.Fatal(err)
	}

	// a initiates the sync: it has nothing b misses, but the exchange
	// carries b's counts back, and a max-merges them in.
	a.RepublishOnce(context.Background())
	if st := a.AntiEntropy(); st.PullEntries == 0 {
		t.Fatalf("no pull happened: %+v", st)
	}
	es, _ := a.LocalStore().Get(key, 0)
	if len(es) != 1 || es[0].Count != 13 {
		t.Fatalf("a did not adopt b's higher count: %v", es)
	}
}

// TestAntiEntropyTimers walks the per-block timer state machine through
// its full cycle and asserts each round's classification: first sight
// syncs, quiet rounds skip, a fresh write suppresses exactly one round,
// settling syncs, and the RepublishEvery deadline forces a re-check.
func TestAntiEntropyTimers(t *testing.T) {
	cl := newTestCluster(t, 8, 7004)
	a := cl.Nodes[0]
	key := kadid.HashString("timed|3")
	if _, err := a.Store(context.Background(), key, []wire.Entry{{Field: "rock", Count: 1}}); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	const every = 4

	// Round 1: never synced — due immediately.
	if r := a.AntiEntropyOnce(ctx, every); r.Synced != 1 || r.Acks != 7 {
		t.Fatalf("round 1 = %+v, want 1 synced / 7 acks", r)
	}
	// Round 2: unchanged and synced — skipped.
	if r := a.AntiEntropyOnce(ctx, every); r.Skipped != 1 || r.Synced != 0 {
		t.Fatalf("round 2 = %+v, want 1 skipped", r)
	}
	// A write lands between rounds.
	if err := a.LocalStore().Append(ctx, key, []wire.Entry{{Field: "jazz", Count: 2}}); err != nil {
		t.Fatal(err)
	}
	// Round 3: recently written — suppressed (write-time replication is
	// assumed to have spread it; the suppression is what the issue calls
	// "recently written blocks skip a round").
	if r := a.AntiEntropyOnce(ctx, every); r.Suppressed != 1 || r.Synced != 0 {
		t.Fatalf("round 3 = %+v, want 1 suppressed", r)
	}
	// Round 4: the block settled — synced (and the delta heals the
	// replicas that the direct local append skipped).
	if r := a.AntiEntropyOnce(ctx, every); r.Synced != 1 {
		t.Fatalf("round 4 = %+v, want 1 synced", r)
	}
	for i, n := range cl.Nodes {
		if es, _ := n.LocalStore().Get(key, 0); len(es) != 2 {
			t.Fatalf("node %d missed the settled sync: %v", i, es)
		}
	}
	// Rounds 5-7: quiet — skipped.
	for round := 5; round <= 7; round++ {
		if r := a.AntiEntropyOnce(ctx, every); r.Skipped != 1 {
			t.Fatalf("round %d = %+v, want 1 skipped", round, r)
		}
	}
	// Round 8: RepublishEvery rounds since the last sync — due again,
	// even though nothing changed (bounded staleness).
	if r := a.AntiEntropyOnce(ctx, every); r.Synced != 1 {
		t.Fatalf("round 8 = %+v, want 1 synced (periodic force-sync)", r)
	}
}

// TestAntiEntropySuppressionBounded: a block written every round is
// suppressed, but never starves past RepublishEvery — the periodic
// deadline force-syncs it.
func TestAntiEntropySuppressionBounded(t *testing.T) {
	cl := newTestCluster(t, 8, 7005)
	a := cl.Nodes[0]
	key := kadid.HashString("hot|3")
	ctx := context.Background()
	if _, err := a.Store(ctx, key, []wire.Entry{{Field: "rock", Count: 1}}); err != nil {
		t.Fatal(err)
	}
	const every = 4
	a.AntiEntropyOnce(ctx, every) // round 1: first sight, synced

	syncs := 0
	for round := 2; round <= 9; round++ {
		// The block is written before every round — permanently hot.
		if err := a.LocalStore().Append(ctx, key, []wire.Entry{{Field: "rock", Count: 1}}); err != nil {
			t.Fatal(err)
		}
		r := a.AntiEntropyOnce(ctx, every)
		syncs += r.Synced
		if r.Synced == 0 && r.Suppressed != 1 {
			t.Fatalf("round %d: hot block neither synced nor suppressed: %+v", round, r)
		}
	}
	// 8 hot rounds at every=4: the deadline fires at rounds 5 and 9.
	if syncs != 2 {
		t.Fatalf("hot block force-synced %d times in 8 rounds, want 2 (bounded staleness)", syncs)
	}
}

// TestAntiEntropyHealsEmptyReplicas: replicas that never saw a write
// (the block exists only on one node, as after a crash wave) are
// rebuilt by that node's sweep — an empty remote answers the summary
// probe with a zero summary, so the whole weight map is the delta.
func TestAntiEntropyHealsEmptyReplicas(t *testing.T) {
	cl := newTestCluster(t, 8, 7006)
	a := cl.Nodes[0]
	key := kadid.HashString("healed|3")
	ctx := context.Background()
	// Local-only write: the other 7 replicas never see it.
	if err := a.LocalStore().Append(ctx, key, []wire.Entry{
		{Field: "rock", Count: 3}, {Field: "jazz", Count: 1},
	}); err != nil {
		t.Fatal(err)
	}

	a.RepublishOnce(ctx)
	st := a.AntiEntropy()
	// Each of the 7 empty replicas received both entries as the delta.
	if st.DeltaEntries != 14 {
		t.Fatalf("DeltaEntries = %d, want 14 (2 entries x 7 empty replicas)", st.DeltaEntries)
	}
	for i, n := range cl.Nodes {
		es, ok := n.LocalStore().Get(key, 0)
		if !ok || len(es) != 2 {
			t.Fatalf("node %d not rebuilt: %v (ok=%v)", i, es, ok)
		}
	}
}

// TestReadRepairSendsOnlyDelta: the read path's repair must raise a
// stale holder with exactly the fields it was missing, not the whole
// merged block.
func TestReadRepairSendsOnlyDelta(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{
		N:    8,
		Node: Config{K: 8, Alpha: 3, ReadRepair: true},
		Seed: 7007,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, reader := cl.Nodes[0], cl.Nodes[2]
	key := kadid.HashString("repairme|3")
	ctx := context.Background()
	if _, err := a.Store(ctx, key, []wire.Entry{
		{Field: "rock", Count: 3}, {Field: "jazz", Count: 1}, {Field: "pop", Count: 2}, {Field: "folk", Count: 4},
	}); err != nil {
		t.Fatal(err)
	}

	// One replica misses one field's newest count.
	stale := cl.Nodes[5]
	if err := a.LocalStore().Append(ctx, key, []wire.Entry{{Field: "rock", Count: 7}}); err != nil {
		t.Fatal(err)
	}
	for _, n := range cl.Nodes {
		if n == a || n == stale {
			continue
		}
		if err := n.LocalStore().MergeMax(ctx, key, []wire.Entry{{Field: "rock", Count: 10}}); err != nil {
			t.Fatal(err)
		}
	}

	before := reader.AntiEntropy()
	if _, err := reader.FindValue(ctx, key, 0); err != nil {
		t.Fatal(err)
	}
	st := reader.AntiEntropy()
	repaired := st.RepairEntries - before.RepairEntries
	// The two stale holders (a at rock=10 missing, stale at rock=10
	// missing) each need exactly the one field — 4-entry full-block
	// pushes would have cost 8.
	if repaired == 0 {
		t.Fatal("read-repair pushed nothing")
	}
	if repaired > 2 {
		t.Fatalf("read-repair pushed %d entries, want <= 2 (one per stale holder)", repaired)
	}
	healed := false
	es, _ := stale.LocalStore().Get(key, 0)
	for _, e := range es {
		if e.Field == "rock" && e.Count == 10 {
			healed = true
		}
	}
	if len(es) != 4 || !healed {
		t.Fatalf("stale holder not healed: %v", es)
	}
}
