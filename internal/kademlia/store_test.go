package kademlia

import (
	"sync"
	"testing"

	"dharma/internal/kadid"
	"dharma/internal/wire"
)

func TestStoreAppendAccumulates(t *testing.T) {
	s := NewStore()
	key := kadid.HashString("rock|3")
	s.Append(key, []wire.Entry{{Field: "pop", Count: 1}})
	s.Append(key, []wire.Entry{{Field: "pop", Count: 2}, {Field: "indie", Count: 1}})

	es, ok := s.Get(key, 0)
	if !ok {
		t.Fatal("block missing")
	}
	if len(es) != 2 {
		t.Fatalf("got %d entries, want 2", len(es))
	}
	if es[0].Field != "pop" || es[0].Count != 3 {
		t.Fatalf("entry 0 = %+v, want pop/3", es[0])
	}
	if es[1].Field != "indie" || es[1].Count != 1 {
		t.Fatalf("entry 1 = %+v, want indie/1", es[1])
	}
}

func TestStoreAppendInitSemantics(t *testing.T) {
	// Init applies only when the field is absent (Approximation B's
	// conditional create); existing fields add Count as usual.
	s := NewStore()
	key := kadid.HashString("k")
	s.Append(key, []wire.Entry{{Field: "a", Count: 7, Init: 1}})
	es, _ := s.Get(key, 0)
	if es[0].Count != 1 {
		t.Fatalf("absent field with Init: count = %d, want 1", es[0].Count)
	}
	s.Append(key, []wire.Entry{{Field: "a", Count: 7, Init: 1}})
	es, _ = s.Get(key, 0)
	if es[0].Count != 8 {
		t.Fatalf("present field with Init: count = %d, want 1+7", es[0].Count)
	}
}

func TestStoreDataReplaced(t *testing.T) {
	s := NewStore()
	key := kadid.HashString("song|4")
	s.Append(key, []wire.Entry{{Field: "song", Data: []byte("uri-v1")}})
	s.Append(key, []wire.Entry{{Field: "song", Data: []byte("uri-v2")}})
	s.Append(key, []wire.Entry{{Field: "song", Count: 1}}) // no data: keep v2

	es, _ := s.Get(key, 0)
	if string(es[0].Data) != "uri-v2" {
		t.Fatalf("Data = %q, want uri-v2", es[0].Data)
	}
}

func TestStoreGetTopNOrdering(t *testing.T) {
	s := NewStore()
	key := kadid.HashString("k")
	s.Append(key, []wire.Entry{
		{Field: "c", Count: 5},
		{Field: "a", Count: 9},
		{Field: "b", Count: 5},
		{Field: "d", Count: 1},
	})
	es, _ := s.Get(key, 3)
	if len(es) != 3 {
		t.Fatalf("topN not applied: %d entries", len(es))
	}
	// Descending count; ties broken by field name.
	want := []string{"a", "b", "c"}
	for i, w := range want {
		if es[i].Field != w {
			t.Fatalf("order[%d] = %s, want %s (full: %+v)", i, es[i].Field, w, es)
		}
	}
}

func TestStoreGetMissing(t *testing.T) {
	s := NewStore()
	if _, ok := s.Get(kadid.HashString("nope"), 0); ok {
		t.Fatal("Get on missing key reported ok")
	}
	if s.Has(kadid.HashString("nope")) {
		t.Fatal("Has on missing key")
	}
}

func TestStoreKeysLenEntryCount(t *testing.T) {
	s := NewStore()
	s.Append(kadid.HashString("k1"), []wire.Entry{{Field: "a", Count: 1}, {Field: "b", Count: 1}})
	s.Append(kadid.HashString("k2"), []wire.Entry{{Field: "c", Count: 1}})
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if got := len(s.Keys()); got != 2 {
		t.Fatalf("Keys = %d, want 2", got)
	}
	if s.EntryCount() != 3 {
		t.Fatalf("EntryCount = %d, want 3", s.EntryCount())
	}
}

func TestStoreConcurrentAppends(t *testing.T) {
	// The commutative merge is what makes DHARMA's Approximation B sound:
	// concurrent "+1 token" appends must never lose an increment.
	s := NewStore()
	key := kadid.HashString("hot")
	const goroutines, perG = 16, 100

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.Append(key, []wire.Entry{{Field: "t", Count: 1}})
			}
		}()
	}
	wg.Wait()
	es, _ := s.Get(key, 0)
	if es[0].Count != goroutines*perG {
		t.Fatalf("Count = %d, want %d", es[0].Count, goroutines*perG)
	}
}

func TestStoreGetDoesNotAliasInternalState(t *testing.T) {
	s := NewStore()
	key := kadid.HashString("k")
	s.Append(key, []wire.Entry{{Field: "a", Count: 1, Data: []byte("x")}})
	es, _ := s.Get(key, 0)
	es[0].Count = 999
	es2, _ := s.Get(key, 0)
	if es2[0].Count != 1 {
		t.Fatal("caller mutation leaked into store")
	}
}
