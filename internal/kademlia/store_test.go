package kademlia

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"dharma/internal/kadid"
	"dharma/internal/wire"
)

func TestStoreAppendAccumulates(t *testing.T) {
	s := NewStore()
	key := kadid.HashString("rock|3")
	s.Append(context.Background(), key, []wire.Entry{{Field: "pop", Count: 1}})
	s.Append(context.Background(), key, []wire.Entry{{Field: "pop", Count: 2}, {Field: "indie", Count: 1}})

	es, ok := s.Get(key, 0)
	if !ok {
		t.Fatal("block missing")
	}
	if len(es) != 2 {
		t.Fatalf("got %d entries, want 2", len(es))
	}
	if es[0].Field != "pop" || es[0].Count != 3 {
		t.Fatalf("entry 0 = %+v, want pop/3", es[0])
	}
	if es[1].Field != "indie" || es[1].Count != 1 {
		t.Fatalf("entry 1 = %+v, want indie/1", es[1])
	}
}

func TestStoreAppendInitSemantics(t *testing.T) {
	// Init applies only when the field is absent (Approximation B's
	// conditional create); existing fields add Count as usual.
	s := NewStore()
	key := kadid.HashString("k")
	s.Append(context.Background(), key, []wire.Entry{{Field: "a", Count: 7, Init: 1}})
	es, _ := s.Get(key, 0)
	if es[0].Count != 1 {
		t.Fatalf("absent field with Init: count = %d, want 1", es[0].Count)
	}
	s.Append(context.Background(), key, []wire.Entry{{Field: "a", Count: 7, Init: 1}})
	es, _ = s.Get(key, 0)
	if es[0].Count != 8 {
		t.Fatalf("present field with Init: count = %d, want 1+7", es[0].Count)
	}
}

func TestStoreDataReplaced(t *testing.T) {
	s := NewStore()
	key := kadid.HashString("song|4")
	s.Append(context.Background(), key, []wire.Entry{{Field: "song", Data: []byte("uri-v1")}})
	s.Append(context.Background(), key, []wire.Entry{{Field: "song", Data: []byte("uri-v2")}})
	s.Append(context.Background(), key, []wire.Entry{{Field: "song", Count: 1}}) // no data: keep v2

	es, _ := s.Get(key, 0)
	if string(es[0].Data) != "uri-v2" {
		t.Fatalf("Data = %q, want uri-v2", es[0].Data)
	}
}

func TestStoreGetTopNOrdering(t *testing.T) {
	s := NewStore()
	key := kadid.HashString("k")
	s.Append(context.Background(), key, []wire.Entry{
		{Field: "c", Count: 5},
		{Field: "a", Count: 9},
		{Field: "b", Count: 5},
		{Field: "d", Count: 1},
	})
	es, _ := s.Get(key, 3)
	if len(es) != 3 {
		t.Fatalf("topN not applied: %d entries", len(es))
	}
	// Descending count; ties broken by field name.
	want := []string{"a", "b", "c"}
	for i, w := range want {
		if es[i].Field != w {
			t.Fatalf("order[%d] = %s, want %s (full: %+v)", i, es[i].Field, w, es)
		}
	}
}

func TestStoreGetMissing(t *testing.T) {
	s := NewStore()
	if _, ok := s.Get(kadid.HashString("nope"), 0); ok {
		t.Fatal("Get on missing key reported ok")
	}
	if s.Has(kadid.HashString("nope")) {
		t.Fatal("Has on missing key")
	}
}

func TestStoreKeysLenEntryCount(t *testing.T) {
	s := NewStore()
	s.Append(context.Background(), kadid.HashString("k1"), []wire.Entry{{Field: "a", Count: 1}, {Field: "b", Count: 1}})
	s.Append(context.Background(), kadid.HashString("k2"), []wire.Entry{{Field: "c", Count: 1}})
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if got := len(s.Keys()); got != 2 {
		t.Fatalf("Keys = %d, want 2", got)
	}
	if s.EntryCount() != 3 {
		t.Fatalf("EntryCount = %d, want 3", s.EntryCount())
	}
}

func TestStoreConcurrentAppends(t *testing.T) {
	// The commutative merge is what makes DHARMA's Approximation B sound:
	// concurrent "+1 token" appends must never lose an increment.
	s := NewStore()
	key := kadid.HashString("hot")
	const goroutines, perG = 16, 100

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.Append(context.Background(), key, []wire.Entry{{Field: "t", Count: 1}})
			}
		}()
	}
	wg.Wait()
	es, _ := s.Get(key, 0)
	if es[0].Count != goroutines*perG {
		t.Fatalf("Count = %d, want %d", es[0].Count, goroutines*perG)
	}
}

func TestStoreGetDoesNotAliasInternalState(t *testing.T) {
	s := NewStore()
	key := kadid.HashString("k")
	s.Append(context.Background(), key, []wire.Entry{{Field: "a", Count: 1, Data: []byte("x")}})
	es, _ := s.Get(key, 0)
	es[0].Count = 999
	es2, _ := s.Get(key, 0)
	if es2[0].Count != 1 {
		t.Fatal("caller mutation leaked into store")
	}
}

func TestStoreEmptyAppendCreatesNoBlock(t *testing.T) {
	// A tagging operation whose forward-arc set is empty still costs a
	// lookup, but the storage node must not materialize a phantom empty
	// block for it — Has would flip true and hotspot accounting skew.
	s := NewStore()
	key := kadid.HashString("phantom")
	s.Append(context.Background(), key, nil)
	s.Append(context.Background(), key, []wire.Entry{})
	s.MergeMax(context.Background(), key, nil)
	if s.Has(key) {
		t.Fatal("empty append materialized a block")
	}
	if s.Len() != 0 || s.EntryCount() != 0 {
		t.Fatalf("Len=%d EntryCount=%d after empty appends, want 0/0", s.Len(), s.EntryCount())
	}
	s.AppendBatch(context.Background(), []BatchItem{{Key: key}, {Key: kadid.HashString("p2")}})
	if s.Len() != 0 {
		t.Fatal("empty batch items materialized blocks")
	}
}

func TestStoreGetCopiesByteSlices(t *testing.T) {
	// Data/Author/Sig of a Get result must not alias internal storage:
	// a caller scribbling over what it got back must not corrupt the
	// stored copy.
	s := NewStore()
	key := kadid.HashString("k")
	s.Append(context.Background(), key, []wire.Entry{{Field: "a", Count: 1, Data: []byte("uri-v1"), Author: []byte("au"), Sig: []byte("sig")}})

	for _, topN := range []int{0, 1} { // filtered (index) and full-scan paths
		es, _ := s.Get(key, topN)
		es[0].Data[0] = 'X'
		es[0].Author[0] = 'X'
		es[0].Sig[0] = 'X'
		es2, _ := s.Get(key, topN)
		if string(es2[0].Data) != "uri-v1" || string(es2[0].Author) != "au" || string(es2[0].Sig) != "sig" {
			t.Fatalf("topN=%d: caller mutation leaked into store: %+v", topN, es2[0])
		}
	}
}

func TestStoreAppendBatchMergesEveryItem(t *testing.T) {
	s := NewStore()
	k1, k2 := kadid.HashString("b1"), kadid.HashString("b2")
	s.Append(context.Background(), k1, []wire.Entry{{Field: "x", Count: 1}})
	s.AppendBatch(context.Background(), []BatchItem{
		{Key: k1, Entries: []wire.Entry{{Field: "x", Count: 2}, {Field: "y", Count: 1}}},
		{Key: k2, Entries: []wire.Entry{{Field: "z", Count: 5}}},
	})
	es, _ := s.Get(k1, 0)
	if len(es) != 2 || es[0].Field != "x" || es[0].Count != 3 {
		t.Fatalf("k1 after batch: %+v", es)
	}
	es, _ = s.Get(k2, 0)
	if len(es) != 1 || es[0].Count != 5 {
		t.Fatalf("k2 after batch: %+v", es)
	}
}

// TestStoreIncrementalOrderMatchesFullSort drives one block through a
// random schedule of Append and MergeMax calls — enough distinct fields
// to overflow the maintained head several times — and checks after every
// step that filtered reads served from the incremental index agree with
// a from-scratch sort of a reference model.
func TestStoreIncrementalOrderMatchesFullSort(t *testing.T) {
	s := NewStore()
	key := kadid.HashString("fuzzy")
	rng := rand.New(rand.NewSource(23))
	ref := make(map[string]uint64)

	check := func(step int) {
		want := make([]wire.Entry, 0, len(ref))
		for f, c := range ref {
			want = append(want, wire.Entry{Field: f, Count: c})
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].Count != want[j].Count {
				return want[i].Count > want[j].Count
			}
			return want[i].Field < want[j].Field
		})
		for _, topN := range []int{1, 7, topIndexCap, topIndexCap + 5, 0} {
			got, ok := s.Get(key, topN)
			if !ok {
				t.Fatalf("step %d: block missing", step)
			}
			wantN := want
			if topN > 0 && len(wantN) > topN {
				wantN = wantN[:topN]
			}
			if len(got) != len(wantN) {
				t.Fatalf("step %d topN=%d: %d entries, want %d", step, topN, len(got), len(wantN))
			}
			for i := range got {
				if got[i].Field != wantN[i].Field || got[i].Count != wantN[i].Count {
					t.Fatalf("step %d topN=%d order[%d] = %s/%d, want %s/%d",
						step, topN, i, got[i].Field, got[i].Count, wantN[i].Field, wantN[i].Count)
				}
			}
		}
	}

	const fields = 3 * topIndexCap
	for step := 0; step < 1500; step++ {
		f := fmt.Sprintf("f%03d", rng.Intn(fields))
		switch rng.Intn(3) {
		case 0: // plain token append
			c := uint64(rng.Intn(4))
			ref[f] += c
			s.Append(context.Background(), key, []wire.Entry{{Field: f, Count: c}})
		case 1: // Approximation B conditional create
			if _, ok := ref[f]; !ok {
				ref[f] = 1
			} else {
				ref[f] += 2
			}
			s.Append(context.Background(), key, []wire.Entry{{Field: f, Count: 2, Init: 1}})
		default: // replica anti-entropy
			c := uint64(rng.Intn(2000))
			if c > ref[f] {
				ref[f] = c
			} else if _, ok := ref[f]; !ok {
				ref[f] = c
			}
			s.MergeMax(context.Background(), key, []wire.Entry{{Field: f, Count: c}})
		}
		if step%97 == 0 || step == 1499 {
			check(step)
		}
	}
}

// TestStoreConcurrentMixedOps hammers every public method from many
// goroutines; run under -race this is the sharding regression test.
func TestStoreConcurrentMixedOps(t *testing.T) {
	s := NewStore()
	keys := make([]kadid.ID, 32)
	for i := range keys {
		keys[i] = kadid.HashString(fmt.Sprintf("ck%d", i))
	}
	const goroutines, perG = 12, 200

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				key := keys[(g+i)%len(keys)]
				switch i % 6 {
				case 0, 1:
					s.Append(context.Background(), key, []wire.Entry{{Field: fmt.Sprintf("f%d", i%50), Count: 1}})
				case 2:
					s.AppendBatch(context.Background(), []BatchItem{
						{Key: key, Entries: []wire.Entry{{Field: "b", Count: 1}}},
						{Key: keys[(g+i+7)%len(keys)], Entries: []wire.Entry{{Field: "b2", Count: 2}}},
					})
				case 3:
					s.Get(key, 10)
					s.Get(key, 0)
				case 4:
					s.MergeMax(context.Background(), key, []wire.Entry{{Field: "m", Count: uint64(i)}})
				default:
					s.Keys()
					s.Len()
					s.EntryCount()
					s.Has(key)
				}
			}
		}(g)
	}
	wg.Wait()

	// Token conservation: the "f*" appends from case 0/1 must all be
	// accounted for across the key set.
	var total uint64
	for _, key := range keys {
		es, ok := s.Get(key, 0)
		if !ok {
			continue
		}
		for _, e := range es {
			if len(e.Field) > 0 && e.Field[0] == 'f' {
				total += e.Count
			}
		}
	}
	var want uint64
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			if i%6 == 0 || i%6 == 1 {
				want++
			}
		}
	}
	if total != want {
		t.Fatalf("lost tokens under concurrency: got %d, want %d", total, want)
	}
}
