package kademlia

import (
	"context"
	"fmt"
	"testing"
	"time"

	"dharma/internal/kadid"
	"dharma/internal/simnet"
	"dharma/internal/wire"
)

// holderOf returns the cluster members currently storing key.
func holdersOf(cl *Cluster, key kadid.ID) []*Node {
	var out []*Node
	for _, n := range cl.Snapshot() {
		if n.LocalStore().Has(key) {
			out = append(out, n)
		}
	}
	return out
}

func indexOf(cl *Cluster, n *Node) int {
	for i, m := range cl.Snapshot() {
		if m == n {
			return i
		}
	}
	return -1
}

func TestRemoveNodeHandsOffBlocks(t *testing.T) {
	cl := newTestCluster(t, 24, 61)
	key := kadid.HashString("handoff|1")
	if _, err := cl.Nodes[0].Store(context.Background(), key, []wire.Entry{{Field: "f", Count: 7}}); err != nil {
		t.Fatal(err)
	}

	// Gracefully remove every original holder, one at a time. Each
	// departure must hand the block to the nodes now closest to it, so
	// the block never becomes unreadable.
	for round := 0; round < 4; round++ {
		holders := holdersOf(cl, key)
		if len(holders) == 0 {
			t.Fatalf("round %d: block has no holders left", round)
		}
		idx := indexOf(cl, holders[0])
		if idx == 0 {
			if len(holders) == 1 {
				break // only the bootstrap holds it; leave it there
			}
			idx = indexOf(cl, holders[1])
		}
		if _, err := cl.RemoveNode(context.Background(), idx); err != nil {
			t.Fatalf("round %d: RemoveNode(%d): %v", round, idx, err)
		}
		es, err := cl.NodeAt(0).FindValue(context.Background(), key, 0)
		if err != nil {
			t.Fatalf("round %d: value unreadable after graceful leave: %v", round, err)
		}
		if es[0].Count != 7 {
			t.Fatalf("round %d: count corrupted by handoff: %d", round, es[0].Count)
		}
	}
}

func TestRemoveNodeDetachesEndpoint(t *testing.T) {
	cl := newTestCluster(t, 8, 62)
	victim := cl.NodeAt(5)
	if _, err := cl.RemoveNode(context.Background(), 5); err != nil {
		t.Fatal(err)
	}
	if cl.Len() != 7 {
		t.Fatalf("Len = %d after removal, want 7", cl.Len())
	}
	if cl.NodeAt(0).Ping(context.Background(), victim.Self()) {
		t.Fatal("removed node still answers pings")
	}
	for _, n := range cl.Snapshot() {
		if n == victim {
			t.Fatal("removed node still in membership")
		}
	}
}

func TestCrashIsAbruptAndReviveRejoins(t *testing.T) {
	cl := newTestCluster(t, 16, 63)
	key := kadid.HashString("crashy|2")
	if _, err := cl.Nodes[1].Store(context.Background(), key, []wire.Entry{{Field: "f", Count: 3}}); err != nil {
		t.Fatal(err)
	}

	holders := holdersOf(cl, key)
	if len(holders) == 0 {
		t.Fatal("no holders after store")
	}
	victim := holders[0]
	if victim == cl.NodeAt(0) && len(holders) > 1 {
		victim = holders[1]
	}
	before := victim.LocalStore().Len()

	idx := indexOf(cl, victim)
	crashed, err := cl.Crash(idx)
	if err != nil {
		t.Fatal(err)
	}
	if crashed != victim {
		t.Fatal("Crash returned a different node")
	}
	if cl.NodeAt(0).Ping(context.Background(), victim.Self()) {
		t.Fatal("crashed node still answers")
	}
	// A crash is abrupt: the store must be untouched (no handoff ran).
	if got := victim.LocalStore().Len(); got != before {
		t.Fatalf("crash mutated the store: %d -> %d blocks", before, got)
	}
	// The routing table survives the crash like the store does: a
	// maintenance round on the dead node must be a no-op, not a sweep
	// that mistakes its own send failures for every peer being dead.
	tableBefore := victim.Table().Len()
	NewMaintainer(victim, MaintainerConfig{Seed: 1}).RunOnce(context.Background())
	if got := victim.Table().Len(); got != tableBefore {
		t.Fatalf("crashed node's maintenance mutated its table: %d -> %d", tableBefore, got)
	}

	if _, err := cl.Revive(context.Background(), victim, 0); err != nil {
		t.Fatalf("Revive: %v", err)
	}
	if !cl.NodeAt(0).Ping(context.Background(), victim.Self()) {
		t.Fatal("revived node does not answer")
	}
	if cl.Len() != 16 {
		t.Fatalf("Len = %d after revive, want 16", cl.Len())
	}
	// Its pre-crash replica must still be servable.
	es, err := cl.NodeAt(0).FindValue(context.Background(), key, 0)
	if err != nil || es[0].Count != 3 {
		t.Fatalf("value after revive: %v, %v", es, err)
	}
}

func TestMaintainerRepairsAfterCrashes(t *testing.T) {
	cl := newTestCluster(t, 32, 64)
	key := kadid.HashString("maintained|1")
	if _, err := cl.Nodes[0].Store(context.Background(), key, []wire.Entry{{Field: "f", Count: 5}}); err != nil {
		t.Fatal(err)
	}

	// Crash every holder but one (k-1 of the replica set).
	holders := holdersOf(cl, key)
	if len(holders) < 2 {
		t.Skipf("only %d holders under this seed", len(holders))
	}
	survivor := holders[len(holders)-1]
	if survivor == cl.NodeAt(0) {
		survivor = holders[0]
	}
	for _, h := range holders {
		if h == survivor {
			continue
		}
		if idx := indexOf(cl, h); idx > 0 {
			if _, err := cl.Crash(idx); err != nil {
				t.Fatal(err)
			}
		} else if idx == 0 {
			cl.Net.SetDown(simnet.Addr(h.Self().Addr), true)
		}
	}

	// One maintenance round on the survivor: evict the dead from its
	// table, refresh, republish to the live k-closest.
	m := NewMaintainer(survivor, MaintainerConfig{Seed: 9})
	m.RunOnce(context.Background())
	st := m.Stats()
	if st.Rounds != 1 || st.Blocks == 0 {
		t.Fatalf("stats after one round: %+v", st)
	}

	live := holdersOf(cl, key) // crashed nodes are out of the membership
	liveCount := 0
	for _, h := range live {
		if h != survivor {
			liveCount++
		}
	}
	if liveCount < 4 {
		t.Fatalf("republish created only %d live replicas beyond the survivor", liveCount)
	}
	es, err := cl.NodeAt(1).FindValue(context.Background(), key, 0)
	if err != nil || es[0].Count != 5 {
		t.Fatalf("value after maintenance: %v, %v", es, err)
	}
}

func TestMaintainerRunStopsOnCancel(t *testing.T) {
	cl := newTestCluster(t, 8, 65)
	ctx, cancel := context.WithCancel(context.Background())
	set := cl.StartMaintenance(ctx, MaintainerConfig{Interval: 5 * time.Millisecond, Seed: 3})

	deadline := time.Now().Add(5 * time.Second)
	for set.Stats().Rounds < 8 {
		if time.Now().After(deadline) {
			t.Fatalf("maintainers made no progress: %+v", set.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	set.Wait() // must return; a hang here fails the test by timeout
	if set.Stats().Rounds == 0 {
		t.Fatal("no rounds recorded")
	}
}

func TestEvictDeadDropsCrashedContacts(t *testing.T) {
	cl := newTestCluster(t, 12, 66)
	n := cl.NodeAt(0)
	before := n.Table().Len()
	if before == 0 {
		t.Fatal("bootstrap node knows nobody")
	}

	// Crash a contact the bootstrap definitely knows.
	contacts := n.Table().Contacts()
	victimID := contacts[0].ID
	for i, m := range cl.Snapshot() {
		if m.Self().ID == victimID {
			if _, err := cl.Crash(i); err != nil {
				t.Fatal(err)
			}
			break
		}
	}

	evicted := n.EvictDead(context.Background())
	if evicted == 0 {
		t.Fatal("EvictDead removed nothing although a contact crashed")
	}
	if n.Table().Contains(victimID) {
		t.Fatal("dead contact survived the sweep")
	}
}

func TestReadRepairWritesBackStaleAndEmptyReplicas(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{
		N:    24,
		Node: Config{K: 6, Alpha: 3, ReadRepair: true},
		Seed: 67,
	})
	if err != nil {
		t.Fatal(err)
	}
	key := kadid.HashString("repairable|2")
	if _, err := cl.Nodes[2].Store(context.Background(), key, []wire.Entry{{Field: "f", Count: 4}}); err != nil {
		t.Fatal(err)
	}

	// Make one replica fresher than the rest by appending to its local
	// store directly — the staleness read-repair exists to heal.
	holders := holdersOf(cl, key)
	if len(holders) < 2 {
		t.Skipf("only %d holders under this seed", len(holders))
	}
	holders[0].LocalStore().Append(context.Background(), key, []wire.Entry{{Field: "f", Count: 6}}) // now 10

	reader := cl.NodeAt(20)
	es, err := reader.FindValue(context.Background(), key, 0)
	if err != nil {
		t.Fatal(err)
	}
	if es[0].Count != 10 {
		t.Fatalf("read did not surface the freshest replica: %d", es[0].Count)
	}
	if reader.Repairs() == 0 {
		t.Fatal("no repairs recorded although replicas diverged")
	}
	// A repair-mode read surveys the whole k-closest window before
	// merging, so afterwards every one of the k closest nodes to the
	// key must hold the block at the merged maximum. (A holder outside
	// that window — replica placement drifts as lookups differ — is not
	// observed by the read and converges later through republish.)
	for _, c := range cl.ClosestGroundTruth(key, 6) {
		for _, n := range cl.Snapshot() {
			if n.Self().ID != c.ID {
				continue
			}
			es, ok := n.LocalStore().Get(key, 0)
			if !ok {
				t.Fatalf("closest node %s has no copy after read-repair", c.Addr)
			}
			if es[0].Count != 10 {
				t.Fatalf("closest node %s still stale after read-repair: %d", c.Addr, es[0].Count)
			}
		}
	}
}

func TestReadRepairRefillsEmptyReplicas(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{
		N:    32,
		Node: Config{K: 6, Alpha: 3, ReadRepair: true},
		Seed: 73,
	})
	if err != nil {
		t.Fatal(err)
	}
	key := kadid.HashString("refill|1")
	if _, err := cl.Nodes[3].Store(context.Background(), key, []wire.Entry{{Field: "f", Count: 8}}); err != nil {
		t.Fatal(err)
	}

	// Crash every holder but one; no republish runs. The next read must
	// find the survivor and synchronously re-seed the block onto live
	// nodes of the k-closest set it observed.
	holders := holdersOf(cl, key)
	if len(holders) < 2 {
		t.Skipf("only %d holders under this seed", len(holders))
	}
	survivor := holders[0]
	if survivor == cl.NodeAt(0) {
		survivor = holders[1]
	}
	for _, h := range holders {
		if h == survivor || h == cl.NodeAt(0) {
			continue
		}
		if _, err := cl.Crash(indexOf(cl, h)); err != nil {
			t.Fatal(err)
		}
	}
	if cl.NodeAt(0).LocalStore().Has(key) {
		t.Skip("bootstrap node holds the block under this seed; scenario not isolated")
	}

	reader := cl.NodeAt(0)
	es, err := reader.FindValue(context.Background(), key, 0)
	if err != nil {
		t.Fatalf("value unreadable with one live holder: %v", err)
	}
	if es[0].Count != 8 {
		t.Fatalf("count corrupted: %d", es[0].Count)
	}
	if reader.Repairs() == 0 {
		t.Fatal("read of an under-replicated block performed no repairs")
	}
	if live := holdersOf(cl, key); len(live) < 2 {
		t.Fatalf("block still has %d live holders after read-repair", len(live))
	}
}

func TestFilteredReadNeverRepairs(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{
		N:    16,
		Node: Config{K: 4, Alpha: 3, ReadRepair: true},
		Seed: 68,
	})
	if err != nil {
		t.Fatal(err)
	}
	key := kadid.HashString("filtered-repair|1")
	var entries []wire.Entry
	for i := 0; i < 8; i++ {
		entries = append(entries, wire.Entry{Field: fmt.Sprintf("t%d", i), Count: uint64(i + 1)})
	}
	if _, err := cl.Nodes[0].Store(context.Background(), key, entries); err != nil {
		t.Fatal(err)
	}
	holders := holdersOf(cl, key)
	if len(holders) == 0 {
		t.Fatal("no holders")
	}
	holders[0].LocalStore().Append(context.Background(), key, []wire.Entry{{Field: "t0", Count: 50}})

	reader := cl.NodeAt(10)
	if _, err := reader.FindValue(context.Background(), key, 2); err != nil {
		t.Fatal(err)
	}
	if got := reader.Repairs(); got != 0 {
		t.Fatalf("filtered read performed %d repairs; truncated responses must not be treated as stale", got)
	}
}

func TestCrashedKMinusOneHoldersStayReadableAfterRepair(t *testing.T) {
	// The acceptance scenario in miniature: with replication k, crash
	// k-1 holders of a block; after one maintenance round on the
	// survivor the block must be fully readable with intact counts.
	cl, err := NewCluster(ClusterConfig{
		N:    40,
		Node: Config{K: 5, Alpha: 3, ReadRepair: true},
		Seed: 69,
	})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		key := kadid.HashString(fmt.Sprintf("acceptance|%d", round))
		if _, err := cl.NodeAt(0).Store(context.Background(), key, []wire.Entry{{Field: "f", Count: uint64(10 + round)}}); err != nil {
			t.Fatal(err)
		}
		holders := holdersOf(cl, key)
		if len(holders) < 2 {
			continue
		}
		survivor := holders[0]
		if survivor == cl.NodeAt(0) && len(holders) > 1 {
			survivor = holders[1]
		}
		var revive []*Node
		for _, h := range holders {
			if h == survivor || h == cl.NodeAt(0) {
				continue
			}
			n, err := cl.Crash(indexOf(cl, h))
			if err != nil {
				t.Fatal(err)
			}
			revive = append(revive, n)
		}

		NewMaintainer(survivor, MaintainerConfig{Seed: int64(round)}).RunOnce(context.Background())

		es, err := cl.NodeAt(0).FindValue(context.Background(), key, 0)
		if err != nil {
			t.Fatalf("round %d: block lost after crashing k-1 holders: %v", round, err)
		}
		if es[0].Count != uint64(10+round) {
			t.Fatalf("round %d: count corrupted: %d", round, es[0].Count)
		}
		for _, n := range revive {
			if _, err := cl.Revive(context.Background(), n, 0); err != nil {
				t.Fatalf("round %d: revive: %v", round, err)
			}
		}
	}
}
