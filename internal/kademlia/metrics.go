package kademlia

import (
	"dharma/internal/obs"
	"dharma/internal/wire"
)

// maxKind bounds the per-kind instrument vectors; wire kinds are a
// dense enum starting at 1.
const maxKind = int(wire.KindUnauthorized)

// kindNames lists every wire.Kind's name, indexed by kind-1, for
// metric label values.
func kindNames() []string {
	names := make([]string, maxKind)
	for i := range names {
		names[i] = wire.Kind(i + 1).String()
	}
	return names
}

// nodeMetrics holds the node's registered instruments. The zero value
// (an un-instrumented node) is fully usable: every field is nil and
// every record call is a no-op branch, so the protocol code threads
// telemetry without conditionals.
type nodeMetrics struct {
	rpcLatency   *obs.HistogramVec // serve time by wire.Kind
	rpcReqBytes  *obs.CounterVec   // decoded request payload bytes by kind
	rpcRespBytes *obs.CounterVec   // encoded response payload bytes by kind

	deadlineShed *obs.CounterVec // requests shed dead-on-arrival, by kind
	authRejected *obs.CounterVec // requests answered UNAUTHORIZED, by kind

	lookupWall   *obs.Histogram // per-lookup wall time
	lookupRounds *obs.Histogram // α-waves per lookup
	lookupTried  *obs.Histogram // candidates queried per lookup
	lookupBusy   *obs.Counter   // candidates still BUSY after retries

	tracesCaptured *obs.Counter
}

// kindHist returns the serve-latency histogram for k (nil when
// un-instrumented or k is out of the known range).
func (m *nodeMetrics) kindHist(k wire.Kind) *obs.Histogram {
	return m.rpcLatency.At(int(k) - 1)
}

// Instrument registers the node's instruments on reg and wires the
// node's pre-existing atomic counters in as scrape-time funcs. Call
// once, before the node serves traffic. A nil reg is a no-op (the node
// stays un-instrumented).
func (n *Node) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	names := kindNames()
	n.metrics = nodeMetrics{
		rpcLatency: reg.HistogramVec("dharma_rpc_serve_seconds",
			"Time to serve one RPC request, by message kind.", "kind", names),
		rpcReqBytes: reg.CounterVec("dharma_rpc_request_bytes_total",
			"Decoded request payload bytes served, by message kind.", "kind", names),
		rpcRespBytes: reg.CounterVec("dharma_rpc_response_bytes_total",
			"Encoded response payload bytes returned, by message kind.", "kind", names),
		deadlineShed: reg.CounterVec("dharma_rpc_deadline_shed_total",
			"Requests shed because the caller's propagated deadline had already expired, by message kind.", "kind", names),
		authRejected: reg.CounterVec("dharma_rpc_auth_rejected_total",
			"Requests answered UNAUTHORIZED by the Likir identity checks, by message kind.", "kind", names),
		lookupWall: reg.Histogram("dharma_lookup_wall_seconds",
			"Wall time of one iterative lookup."),
		lookupRounds: reg.ValueHistogram("dharma_lookup_rounds",
			"α-wide query waves per iterative lookup (the paper's hop count)."),
		lookupTried: reg.ValueHistogram("dharma_lookup_candidates_tried",
			"Candidates queried per iterative lookup."),
		lookupBusy: reg.Counter("dharma_lookup_busy_candidates_total",
			"Lookup candidates that stayed BUSY after the retry budget."),
		tracesCaptured: reg.Counter("dharma_lookup_traces_captured_total",
			"Lookup traces captured (sampled, slow, or forced)."),
	}
	reg.CounterFunc("dharma_lookups_total",
		"Iterative lookup procedures initiated.", n.lookups.Load)
	reg.CounterFunc("dharma_lookup_rounds_total",
		"Lookup rounds (α-wide waves) executed.", n.rounds.Load)
	reg.CounterFunc("dharma_rpc_served_total",
		"RPC requests answered.", n.rpcServed.Load)
	reg.CounterFunc("dharma_rpc_deadline_shed_count",
		"Requests shed dead-on-arrival (all kinds).", n.shedTotal.Load)
	reg.CounterFunc("dharma_rpc_auth_rejected_count",
		"Requests rejected by identity checks (all kinds).", n.authRejTotal.Load)
	reg.CounterFunc("dharma_read_repairs_total",
		"Stale replicas healed through read-repair.", n.repairs.Load)
	reg.CounterFunc("dharma_read_repair_entries_total",
		"Entries written back by read-repair.", n.repairEntries.Load)
	reg.CounterFunc("dharma_antientropy_synced_total",
		"Blocks synced by anti-entropy rounds.", n.aeSynced.Load)
	reg.CounterFunc("dharma_antientropy_digest_matches_total",
		"Anti-entropy summary exchanges proving agreement by digest.", n.aeMatches.Load)
	reg.CounterFunc("dharma_antientropy_suppressed_total",
		"Anti-entropy rounds suppressed for just-written blocks.", n.aeSuppressed.Load)
	reg.CounterFunc("dharma_antientropy_skipped_total",
		"Anti-entropy rounds skipped for settled blocks.", n.aeSkipped.Load)
	reg.CounterFunc("dharma_antientropy_delta_entries_total",
		"Entries pushed as anti-entropy deltas.", n.aeDeltaEntries.Load)
	reg.CounterFunc("dharma_antientropy_pull_entries_total",
		"Entries pulled from replicas holding higher counts.", n.aePullEntries.Load)
	reg.CounterFunc("dharma_antientropy_full_blocks_total",
		"Blocks anti-entropy had to push in full.", n.aeFullBlocks.Load)
	reg.CounterFunc("dharma_maintenance_bytes_out_total",
		"Maintenance-plane payload bytes sent (SUMMARY + REPLICATE).", n.aeBytesOut.Load)
	reg.CounterFunc("dharma_maintenance_bytes_in_total",
		"Maintenance-plane payload bytes received.", n.aeBytesIn.Load)
	reg.GaugeFunc("dharma_routing_table_peers",
		"Live contacts in the routing table.", func() int64 { return int64(n.table.Len()) })
	reg.GaugeFunc("dharma_store_blocks",
		"Blocks held by the local store.", func() int64 { return int64(n.store.Len()) })
	n.store.Instrument(reg)
}
