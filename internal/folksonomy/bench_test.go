package folksonomy

import (
	"fmt"
	"testing"
)

// BenchmarkTagMaintenance measures the §III-B2 update on resources of
// varying tag degree — the hot loop of every evaluation replay.
func BenchmarkTagMaintenance(b *testing.B) {
	for _, degree := range []int{5, 50, 500} {
		b.Run(fmt.Sprintf("degree=%d", degree), func(b *testing.B) {
			g := New()
			tags := make([]string, degree)
			for i := range tags {
				tags[i] = fmt.Sprintf("t%d", i)
			}
			if err := g.InsertResource("r", "", tags...); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := g.Tag("r", tags[i%degree]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInsertResource measures resource insertion with 5 tags.
func BenchmarkInsertResource(b *testing.B) {
	g := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := g.InsertResource(fmt.Sprintf("r%d", i), "", "a", "b", "c", "d", "e"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNeighbors measures FG adjacency extraction for a dense tag.
func BenchmarkNeighbors(b *testing.B) {
	g := New()
	for i := 0; i < 500; i++ {
		if err := g.InsertResource(fmt.Sprintf("r%d", i), "", "hub", fmt.Sprintf("t%d", i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ws := g.Neighbors("hub"); len(ws) != 500 {
			b.Fatal("wrong adjacency")
		}
	}
}
