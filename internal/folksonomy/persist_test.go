package folksonomy

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func buildRandomGraph(t *testing.T, seed int64, ops int) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := New()
	nRes := 0
	for i := 0; i < ops; i++ {
		if nRes == 0 || rng.Float64() < 0.2 {
			var tags []string
			for j := 0; j < 5; j++ {
				if rng.Float64() < 0.5 {
					tags = append(tags, fmt.Sprintf("t%d", rng.Intn(15)))
				}
			}
			r := fmt.Sprintf("r%d", nRes)
			if err := g.InsertResource(r, "uri:"+r, tags...); err != nil {
				t.Fatal(err)
			}
			nRes++
		} else {
			if err := g.Tag(fmt.Sprintf("r%d", rng.Intn(nRes)), fmt.Sprintf("t%d", rng.Intn(15))); err != nil {
				t.Fatal(err)
			}
		}
	}
	return g
}

func TestSaveLoadRoundTrip(t *testing.T) {
	g := buildRandomGraph(t, 3, 300)
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	g2, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}

	if g2.NumResources() != g.NumResources() || g2.NumTags() != g.NumTags() || g2.NumArcs() != g.NumArcs() {
		t.Fatalf("sizes differ: R %d/%d T %d/%d arcs %d/%d",
			g2.NumResources(), g.NumResources(), g2.NumTags(), g.NumTags(), g2.NumArcs(), g.NumArcs())
	}
	for _, r := range g.ResourceNames() {
		if g2.URI(r) != g.URI(r) {
			t.Fatalf("URI(%s) differs", r)
		}
		for _, w := range g.Tags(r) {
			if g2.U(w.Name, r) != w.Weight {
				t.Fatalf("u(%s,%s) = %d, want %d", w.Name, r, g2.U(w.Name, r), w.Weight)
			}
		}
	}
	for _, tag := range g.TagNames() {
		if g2.ResDegree(tag) != g.ResDegree(tag) {
			t.Fatalf("ResDegree(%s) differs", tag)
		}
		for _, w := range g.Neighbors(tag) {
			if g2.Sim(tag, w.Name) != w.Weight {
				t.Fatalf("sim(%s,%s) = %d, want %d", tag, w.Name, g2.Sim(tag, w.Name), w.Weight)
			}
		}
	}
}

func TestLoadedGraphRemainsMutable(t *testing.T) {
	g := buildRandomGraph(t, 4, 100)
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Continue evolving both identically; they must stay equal.
	for i := 0; i < 50; i++ {
		r := fmt.Sprintf("r%d", i%g.NumResources())
		tag := fmt.Sprintf("t%d", i%15)
		if err := g.Tag(r, tag); err != nil {
			t.Fatal(err)
		}
		if err := g2.Tag(r, tag); err != nil {
			t.Fatal(err)
		}
	}
	want := g.RecomputeSimFromTRG()
	got := g2.RecomputeSimFromTRG()
	for t1, m := range want {
		for t2, w := range m {
			if got[t1][t2] != w {
				t.Fatalf("post-load divergence at sim(%s,%s)", t1, t2)
			}
		}
	}
	// And the incremental state matches the definition.
	for t1, m := range got {
		for t2, w := range m {
			if g2.Sim(t1, t2) != w {
				t.Fatalf("loaded graph maintenance broken at (%s,%s)", t1, t2)
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Load(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSaveLoadEmptyGraph(t *testing.T) {
	var buf bytes.Buffer
	if err := New().Save(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumResources() != 0 || g.NumTags() != 0 {
		t.Fatal("empty graph round trip not empty")
	}
	// Must be usable after load.
	if err := g.InsertResource("r", "", "a"); err != nil {
		t.Fatal(err)
	}
}
