package folksonomy

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func TestInsertResourceBasics(t *testing.T) {
	g := New()
	if err := g.InsertResource("r1", "uri:r1", "t1", "t2", "t3"); err != nil {
		t.Fatalf("InsertResource: %v", err)
	}
	if !g.HasResource("r1") || !g.HasTag("t2") {
		t.Fatal("resource or tag missing")
	}
	if g.URI("r1") != "uri:r1" {
		t.Fatalf("URI = %q", g.URI("r1"))
	}
	for _, tag := range []string{"t1", "t2", "t3"} {
		if g.U(tag, "r1") != 1 {
			t.Fatalf("u(%s,r1) = %d, want 1", tag, g.U(tag, "r1"))
		}
	}
	// All ordered pairs get sim = 1.
	for _, pair := range [][2]string{{"t1", "t2"}, {"t2", "t1"}, {"t1", "t3"}, {"t3", "t2"}} {
		if got := g.Sim(pair[0], pair[1]); got != 1 {
			t.Fatalf("sim(%s,%s) = %d, want 1", pair[0], pair[1], got)
		}
	}
	if g.NumResources() != 1 || g.NumTags() != 3 || g.NumArcs() != 6 {
		t.Fatalf("sizes: R=%d T=%d arcs=%d", g.NumResources(), g.NumTags(), g.NumArcs())
	}
}

func TestInsertResourceDuplicateFails(t *testing.T) {
	g := New()
	if err := g.InsertResource("r", "", "a"); err != nil {
		t.Fatal(err)
	}
	if err := g.InsertResource("r", "", "b"); err == nil {
		t.Fatal("duplicate resource accepted")
	}
}

func TestInsertResourceDedupsTags(t *testing.T) {
	g := New()
	if err := g.InsertResource("r", "", "a", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if g.U("a", "r") != 1 {
		t.Fatalf("u(a,r) = %d, want 1 after dedup", g.U("a", "r"))
	}
	if g.Sim("a", "b") != 1 || g.Sim("b", "a") != 1 {
		t.Fatal("dedup broke similarity updates")
	}
	if g.Sim("a", "a") != 0 {
		t.Fatal("self-similarity created")
	}
}

func TestTagOnMissingResourceFails(t *testing.T) {
	g := New()
	if err := g.Tag("ghost", "t"); err == nil {
		t.Fatal("Tag on missing resource accepted")
	}
}

// TestPaperFigure1Example rebuilds the worked example of Figure 1: the
// arc (t1,t2) has weight 5 because the resources r1, r2 ∈ Res(t1) carry
// t2 with weights 3 and 2, while conversely sim(t2,t1) = 7.
func TestPaperFigure1Example(t *testing.T) {
	g := New()
	// r1: u(t1)=4, u(t2)=3; r2: u(t1)=3, u(t2)=2.
	if err := g.InsertResource("r1", "", "t1", "t2"); err != nil {
		t.Fatal(err)
	}
	if err := g.InsertResource("r2", "", "t1", "t2"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		mustTag(t, g, "r1", "t1")
	}
	for i := 0; i < 2; i++ {
		mustTag(t, g, "r1", "t2")
	}
	for i := 0; i < 2; i++ {
		mustTag(t, g, "r2", "t1")
	}
	mustTag(t, g, "r2", "t2")

	if g.U("t1", "r1") != 4 || g.U("t2", "r1") != 3 || g.U("t1", "r2") != 3 || g.U("t2", "r2") != 2 {
		t.Fatalf("TRG weights wrong: %d %d %d %d",
			g.U("t1", "r1"), g.U("t2", "r1"), g.U("t1", "r2"), g.U("t2", "r2"))
	}
	if got := g.Sim("t1", "t2"); got != 5 {
		t.Fatalf("sim(t1,t2) = %d, want 5", got)
	}
	if got := g.Sim("t2", "t1"); got != 7 {
		t.Fatalf("sim(t2,t1) = %d, want 7", got)
	}
}

// TestPaperFigure2TagInsertion replays Figure 2(b): r2 holds t1 (u=3)
// and t2 (u=2); attaching the new tag t3 must set sim(t3,t1)=3,
// sim(t3,t2)=2 and increment sim(t1,t3), sim(t2,t3) by one.
func TestPaperFigure2TagInsertion(t *testing.T) {
	g := New()
	if err := g.InsertResource("r2", "", "t1", "t2"); err != nil {
		t.Fatal(err)
	}
	mustTag(t, g, "r2", "t1")
	mustTag(t, g, "r2", "t1")
	mustTag(t, g, "r2", "t2")
	if g.U("t1", "r2") != 3 || g.U("t2", "r2") != 2 {
		t.Fatalf("setup wrong: u(t1)=%d u(t2)=%d", g.U("t1", "r2"), g.U("t2", "r2"))
	}
	simT1T3 := g.Sim("t1", "t3")
	simT2T3 := g.Sim("t2", "t3")

	mustTag(t, g, "r2", "t3")

	if got := g.Sim("t3", "t1"); got != 3 {
		t.Fatalf("sim(t3,t1) = %d, want u(t1,r2)=3", got)
	}
	if got := g.Sim("t3", "t2"); got != 2 {
		t.Fatalf("sim(t3,t2) = %d, want u(t2,r2)=2", got)
	}
	if got := g.Sim("t1", "t3"); got != simT1T3+1 {
		t.Fatalf("sim(t1,t3) = %d, want +1", got)
	}
	if got := g.Sim("t2", "t3"); got != simT2T3+1 {
		t.Fatalf("sim(t2,t3) = %d, want +1", got)
	}
}

func TestRepeatedTagLeavesForwardSimUnchanged(t *testing.T) {
	// §III-B2: if t was already in Tags(r), sim(t,τ) must not change,
	// while sim(τ,t) still grows by one.
	g := New()
	if err := g.InsertResource("r", "", "a", "b"); err != nil {
		t.Fatal(err)
	}
	simAB := g.Sim("a", "b")
	simBA := g.Sim("b", "a")
	mustTag(t, g, "r", "a") // a already present
	if got := g.Sim("a", "b"); got != simAB {
		t.Fatalf("sim(a,b) changed: %d -> %d", simAB, got)
	}
	if got := g.Sim("b", "a"); got != simBA+1 {
		t.Fatalf("sim(b,a) = %d, want %d", got, simBA+1)
	}
}

func TestIncrementalMatchesDefinition(t *testing.T) {
	// The maintenance rules must keep sim identical to recomputing it
	// from the TRG definition, under arbitrary operation sequences.
	rng := rand.New(rand.NewSource(42))
	tags := []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"}

	for trial := 0; trial < 20; trial++ {
		g := New()
		nRes := 0
		for op := 0; op < 200; op++ {
			if nRes == 0 || rng.Float64() < 0.15 {
				var tr []string
				for _, tg := range tags {
					if rng.Float64() < 0.4 {
						tr = append(tr, tg)
					}
				}
				if len(tr) == 0 {
					tr = []string{tags[rng.Intn(len(tags))]}
				}
				if err := g.InsertResource(fmt.Sprintf("r%d", nRes), "", tr...); err != nil {
					t.Fatal(err)
				}
				nRes++
			} else {
				r := fmt.Sprintf("r%d", rng.Intn(nRes))
				mustTag(t, g, r, tags[rng.Intn(len(tags))])
			}
		}
		want := g.RecomputeSimFromTRG()
		got := make(map[string]map[string]int)
		for _, t1 := range g.TagNames() {
			m := make(map[string]int)
			for _, w := range g.Neighbors(t1) {
				m[w.Name] = w.Weight
			}
			got[t1] = m
		}
		for t1, m := range want {
			for t2, w := range m {
				if got[t1][t2] != w {
					t.Fatalf("trial %d: sim(%s,%s) = %d, definition says %d",
						trial, t1, t2, got[t1][t2], w)
				}
			}
		}
		for t1, m := range got {
			for t2 := range m {
				if want[t1][t2] == 0 && m[t2] != 0 {
					t.Fatalf("trial %d: spurious arc (%s,%s)=%d", trial, t1, t2, m[t2])
				}
			}
		}
	}
}

func TestSimExistenceSymmetry(t *testing.T) {
	// By construction, sim(t1,t2) != 0 implies sim(t2,t1) != 0.
	rng := rand.New(rand.NewSource(7))
	g := New()
	tags := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < 30; i++ {
		var tr []string
		for _, tg := range tags {
			if rng.Float64() < 0.5 {
				tr = append(tr, tg)
			}
		}
		if len(tr) == 0 {
			continue
		}
		if err := g.InsertResource(fmt.Sprintf("r%d", i), "", tr...); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		r := fmt.Sprintf("r%d", rng.Intn(30))
		if g.HasResource(r) {
			mustTag(t, g, r, tags[rng.Intn(len(tags))])
		}
	}
	g.ForEachArc(func(t1, t2 string, w int) {
		if w <= 0 {
			t.Fatalf("non-positive arc weight sim(%s,%s)=%d", t1, t2, w)
		}
		if g.Sim(t2, t1) == 0 {
			t.Fatalf("sim(%s,%s)=%d but sim(%s,%s)=0", t1, t2, w, t2, t1)
		}
	})
}

func TestDegreesAndSets(t *testing.T) {
	g := New()
	if err := g.InsertResource("r1", "", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := g.InsertResource("r2", "", "b", "c"); err != nil {
		t.Fatal(err)
	}
	if g.TagDegree("r1") != 2 || g.ResDegree("b") != 2 {
		t.Fatalf("degrees wrong: TagDegree=%d ResDegree=%d", g.TagDegree("r1"), g.ResDegree("b"))
	}
	if g.NeighborDegree("b") != 2 { // b co-occurs with a and c
		t.Fatalf("NeighborDegree(b) = %d, want 2", g.NeighborDegree("b"))
	}
	if g.NeighborDegree("a") != 1 {
		t.Fatalf("NeighborDegree(a) = %d, want 1", g.NeighborDegree("a"))
	}
	res := g.Res("b")
	if len(res) != 2 {
		t.Fatalf("Res(b) = %v", res)
	}
	if len(g.ResourceNames()) != 2 || len(g.TagNames()) != 3 {
		t.Fatal("name listings wrong")
	}
}

func TestSortWeighted(t *testing.T) {
	ws := []Weighted{{"b", 2}, {"a", 2}, {"c", 9}, {"d", 1}}
	SortWeighted(ws)
	want := []Weighted{{"c", 9}, {"a", 2}, {"b", 2}, {"d", 1}}
	if !reflect.DeepEqual(ws, want) {
		t.Fatalf("SortWeighted = %v, want %v", ws, want)
	}
}

func mustTag(t *testing.T, g *Graph, r, tag string) {
	t.Helper()
	if err := g.Tag(r, tag); err != nil {
		t.Fatalf("Tag(%s,%s): %v", r, tag, err)
	}
}
