package folksonomy

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Persistence. A Graph snapshot stores the interned name tables, the
// TRG adjacency and the FG arcs, so a built folksonomy (minutes of
// replay at full scale) can be saved once and reloaded in milliseconds.

// snapshot is the gob-encoded on-disk form. Field names are part of the
// format; bump formatVersion when they change.
type snapshot struct {
	Version  int
	TagNames []string
	ResNames []string
	URIs     []string
	// TRG: per resource, parallel slices of tag ids and weights.
	AdjTags    [][]int32
	AdjWeights [][]int32
	// FG: per tag, adjacency map.
	Sim []map[int32]int32
}

const formatVersion = 1

// Save writes the graph to w. The encoding is self-contained: Load
// restores an identical graph.
func (g *Graph) Save(w io.Writer) error {
	s := snapshot{
		Version:    formatVersion,
		TagNames:   g.tagName,
		ResNames:   g.resName,
		URIs:       g.uri,
		AdjTags:    make([][]int32, len(g.tagsOf)),
		AdjWeights: make([][]int32, len(g.tagsOf)),
		Sim:        g.sim,
	}
	for i, adj := range g.tagsOf {
		ids := make([]int32, len(adj))
		ws := make([]int32, len(adj))
		for j, c := range adj {
			ids[j], ws[j] = c.id, c.w
		}
		s.AdjTags[i], s.AdjWeights[i] = ids, ws
	}
	if err := gob.NewEncoder(w).Encode(&s); err != nil {
		return fmt.Errorf("folksonomy: save: %w", err)
	}
	return nil
}

// Load reads a graph previously written by Save.
func Load(r io.Reader) (*Graph, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("folksonomy: load: %w", err)
	}
	if s.Version != formatVersion {
		return nil, fmt.Errorf("folksonomy: load: unsupported format version %d", s.Version)
	}
	if len(s.AdjTags) != len(s.ResNames) || len(s.URIs) != len(s.ResNames) ||
		len(s.Sim) != len(s.TagNames) || len(s.AdjWeights) != len(s.AdjTags) {
		return nil, fmt.Errorf("folksonomy: load: inconsistent snapshot")
	}

	g := &Graph{
		tagID:   make(map[string]int32, len(s.TagNames)),
		tagName: s.TagNames,
		resID:   make(map[string]int32, len(s.ResNames)),
		resName: s.ResNames,
		uri:     s.URIs,
		sim:     s.Sim,
	}
	for i, name := range s.TagNames {
		g.tagID[name] = int32(i)
	}
	for i, name := range s.ResNames {
		g.resID[name] = int32(i)
	}
	g.resOf = make([]map[int32]int32, len(s.TagNames))
	for i := range g.resOf {
		g.resOf[i] = make(map[int32]int32)
	}
	if g.sim == nil {
		g.sim = []map[int32]int32{}
	}
	for i := range g.sim {
		if g.sim[i] == nil {
			g.sim[i] = make(map[int32]int32)
		}
	}

	g.tagsOf = make([][]idw, len(s.AdjTags))
	g.tagPos = make([]map[int32]int32, len(s.AdjTags))
	for rid, ids := range s.AdjTags {
		ws := s.AdjWeights[rid]
		if len(ws) != len(ids) {
			return nil, fmt.Errorf("folksonomy: load: resource %d adjacency mismatch", rid)
		}
		adj := make([]idw, len(ids))
		pos := make(map[int32]int32, len(ids))
		for j := range ids {
			tid, weight := ids[j], ws[j]
			if int(tid) >= len(s.TagNames) || weight <= 0 {
				return nil, fmt.Errorf("folksonomy: load: bad cell (%d,%d) on resource %d", tid, weight, rid)
			}
			adj[j] = idw{id: tid, w: weight}
			pos[tid] = int32(j)
			g.resOf[tid][int32(rid)] = weight
		}
		g.tagsOf[rid] = adj
		g.tagPos[rid] = pos
	}
	return g, nil
}
