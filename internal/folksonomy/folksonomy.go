// Package folksonomy implements the tagging-system model of §III of the
// paper: the Tag-Resource Graph (TRG), the Folksonomy Graph (FG) derived
// from it through the similarity measure
//
//	sim(t1,t2) = Σ_{r ∈ Res(t1)} u(t2,r),
//
// and the maintenance rules that keep both graphs consistent while users
// insert resources and add tags. This is the exact ("theoretic") model;
// the DHT-mapped, approximated evolution lives in internal/core and is
// evaluated against this one.
//
// Tag and resource names are interned to dense integer identifiers
// internally: graph maintenance is the hot loop of every evaluation
// experiment (hundreds of thousands of tagging operations, each touching
// |Tags(r)| similarity arcs), and integer-keyed adjacency is several
// times faster than hashing strings. The public API speaks strings.
package folksonomy

import (
	"fmt"
	"sort"
)

// Weighted is a (name, weight) pair: a tag with its similarity, or a
// resource with its annotation count.
type Weighted struct {
	Name   string
	Weight int
}

// SortWeighted orders by descending weight, ties broken by name, which
// is the presentation order of a search step.
func SortWeighted(ws []Weighted) {
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].Weight != ws[j].Weight {
			return ws[i].Weight > ws[j].Weight
		}
		return ws[i].Name < ws[j].Name
	})
}

// Graph holds a TRG and the FG incrementally derived from it.
type Graph struct {
	tagID   map[string]int32
	tagName []string
	resID   map[string]int32
	resName []string

	tagsOf [][]idw           // resource -> (tag, u) adjacency
	tagPos []map[int32]int32 // resource -> tag -> index into tagsOf[r]
	resOf  []map[int32]int32 // tag -> resource -> u
	sim    []map[int32]int32 // t1 -> t2 -> sim(t1,t2)
	uri    []string
}

// idw is an (id, weight) adjacency cell.
type idw struct {
	id int32
	w  int32
}

// New creates an empty folksonomy.
func New() *Graph {
	return &Graph{
		tagID: make(map[string]int32),
		resID: make(map[string]int32),
	}
}

func (g *Graph) internTag(t string) int32 {
	if id, ok := g.tagID[t]; ok {
		return id
	}
	id := int32(len(g.tagName))
	g.tagID[t] = id
	g.tagName = append(g.tagName, t)
	g.resOf = append(g.resOf, make(map[int32]int32))
	g.sim = append(g.sim, make(map[int32]int32))
	return id
}

func (g *Graph) internRes(r string) int32 {
	id := int32(len(g.resName))
	g.resID[r] = id
	g.resName = append(g.resName, r)
	g.tagsOf = append(g.tagsOf, nil)
	g.tagPos = append(g.tagPos, make(map[int32]int32))
	g.uri = append(g.uri, "")
	return id
}

// HasResource reports whether r is a known resource.
func (g *Graph) HasResource(r string) bool {
	_, ok := g.resID[r]
	return ok
}

// HasTag reports whether t is a known tag.
func (g *Graph) HasTag(t string) bool {
	_, ok := g.tagID[t]
	return ok
}

// InsertResource performs the resource-insertion maintenance of
// §III-B1: r is added with the (deduplicated) tag set tags, every
// (r, t_i) edge gets weight 1, and every ordered pair of distinct tags
// has its similarity incremented by one (created at 1 if absent).
func (g *Graph) InsertResource(r, uri string, tags ...string) error {
	if g.HasResource(r) {
		return fmt.Errorf("folksonomy: resource %q already exists", r)
	}
	rid := g.internRes(r)
	g.uri[rid] = uri

	uniq := make([]int32, 0, len(tags))
	seen := make(map[int32]bool, len(tags))
	for _, t := range tags {
		tid := g.internTag(t)
		if !seen[tid] {
			seen[tid] = true
			uniq = append(uniq, tid)
		}
	}
	for _, tid := range uniq {
		g.tagPos[rid][tid] = int32(len(g.tagsOf[rid]))
		g.tagsOf[rid] = append(g.tagsOf[rid], idw{id: tid, w: 1})
		g.resOf[tid][rid] = 1
	}
	for _, t1 := range uniq {
		m := g.sim[t1]
		for _, t2 := range uniq {
			if t1 != t2 {
				m[t2]++
			}
		}
	}
	return nil
}

// Tag performs the tag-insertion maintenance of §III-B2 on an existing
// resource: u(t,r) is created at 1 or incremented; for every other tag
// τ of r, sim(τ,t) grows by one, and sim(t,τ) grows by u(τ,r) only when
// t is new on r.
func (g *Graph) Tag(r, t string) error {
	rid, ok := g.resID[r]
	if !ok {
		return fmt.Errorf("folksonomy: resource %q does not exist", r)
	}
	tid := g.internTag(t)

	pos, wasTagged := g.tagPos[rid][tid]
	adj := g.tagsOf[rid]
	simT := g.sim[tid]
	for i := range adj {
		τ := adj[i].id
		if τ == tid {
			continue
		}
		g.sim[τ][tid]++
		if !wasTagged {
			simT[τ] += adj[i].w
		}
	}
	if wasTagged {
		adj[pos].w++
	} else {
		g.tagPos[rid][tid] = int32(len(adj))
		g.tagsOf[rid] = append(adj, idw{id: tid, w: 1})
	}
	g.resOf[tid][rid]++
	return nil
}

// U returns the TRG edge weight u(t,r): how many users tagged r with t.
func (g *Graph) U(t, r string) int {
	rid, ok := g.resID[r]
	if !ok {
		return 0
	}
	tid, ok := g.tagID[t]
	if !ok {
		return 0
	}
	pos, ok := g.tagPos[rid][tid]
	if !ok {
		return 0
	}
	return int(g.tagsOf[rid][pos].w)
}

// Sim returns sim(t1,t2), 0 when no arc exists.
func (g *Graph) Sim(t1, t2 string) int {
	id1, ok := g.tagID[t1]
	if !ok {
		return 0
	}
	id2, ok := g.tagID[t2]
	if !ok {
		return 0
	}
	return int(g.sim[id1][id2])
}

// URI returns the URI registered for r (type-4 block content).
func (g *Graph) URI(r string) string {
	rid, ok := g.resID[r]
	if !ok {
		return ""
	}
	return g.uri[rid]
}

// Tags returns Tags(r) with weights, unsorted.
func (g *Graph) Tags(r string) []Weighted {
	rid, ok := g.resID[r]
	if !ok {
		return nil
	}
	adj := g.tagsOf[rid]
	out := make([]Weighted, len(adj))
	for i, c := range adj {
		out[i] = Weighted{Name: g.tagName[c.id], Weight: int(c.w)}
	}
	return out
}

// Res returns Res(t) with weights, unsorted.
func (g *Graph) Res(t string) []Weighted {
	tid, ok := g.tagID[t]
	if !ok {
		return nil
	}
	m := g.resOf[tid]
	out := make([]Weighted, 0, len(m))
	for rid, w := range m {
		out = append(out, Weighted{Name: g.resName[rid], Weight: int(w)})
	}
	return out
}

// Neighbors returns N_FG(t): the tags with non-zero similarity from t,
// with their sim(t, ·) weights, unsorted.
func (g *Graph) Neighbors(t string) []Weighted {
	tid, ok := g.tagID[t]
	if !ok {
		return nil
	}
	m := g.sim[tid]
	out := make([]Weighted, 0, len(m))
	for t2, w := range m {
		out = append(out, Weighted{Name: g.tagName[t2], Weight: int(w)})
	}
	return out
}

// TagDegree returns |Tags(r)|.
func (g *Graph) TagDegree(r string) int {
	rid, ok := g.resID[r]
	if !ok {
		return 0
	}
	return len(g.tagsOf[rid])
}

// ResDegree returns |Res(t)|.
func (g *Graph) ResDegree(t string) int {
	tid, ok := g.tagID[t]
	if !ok {
		return 0
	}
	return len(g.resOf[tid])
}

// NeighborDegree returns |N_FG(t)| (the FG out-degree of t).
func (g *Graph) NeighborDegree(t string) int {
	tid, ok := g.tagID[t]
	if !ok {
		return 0
	}
	return len(g.sim[tid])
}

// NumResources returns |R|.
func (g *Graph) NumResources() int { return len(g.resName) }

// NumTags returns |T|.
func (g *Graph) NumTags() int { return len(g.tagName) }

// NumArcs returns the number of directed FG arcs.
func (g *Graph) NumArcs() int {
	n := 0
	for _, m := range g.sim {
		n += len(m)
	}
	return n
}

// ResourceNames returns every resource name in insertion order. The
// returned slice is shared; callers must not modify it.
func (g *Graph) ResourceNames() []string { return g.resName }

// TagNames returns every tag name in first-use order. The returned
// slice is shared; callers must not modify it.
func (g *Graph) TagNames() []string { return g.tagName }

// ForEachArc calls fn for every directed FG arc (t1, t2, sim(t1,t2)).
func (g *Graph) ForEachArc(fn func(t1, t2 string, w int)) {
	for t1, m := range g.sim {
		for t2, w := range m {
			fn(g.tagName[t1], g.tagName[t2], int(w))
		}
	}
}

// RecomputeSimFromTRG derives the FG from scratch using the definition
// sim(t1,t2) = Σ_{r∈Res(t1)} u(t2,r). It is the oracle the incremental
// maintenance is validated against in tests.
func (g *Graph) RecomputeSimFromTRG() map[string]map[string]int {
	out := make(map[string]map[string]int, len(g.tagName))
	for t1 := range g.tagName {
		m := make(map[string]int)
		for rid := range g.resOf[t1] {
			for _, c := range g.tagsOf[rid] {
				if int(c.id) == t1 {
					continue
				}
				m[g.tagName[c.id]] += int(c.w)
			}
		}
		out[g.tagName[t1]] = m
	}
	return out
}
