package admission

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestQueueDepthCapsConcurrentAdmissions(t *testing.T) {
	c := New(Config{QueueDepth: 3})

	var releases []func()
	for i := 0; i < 3; i++ {
		rel, err := c.Admit("peer-a")
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		releases = append(releases, rel)
	}
	if _, err := c.Admit("peer-a"); !errors.Is(err, ErrBusy) {
		t.Fatalf("4th admit over depth 3: got %v, want ErrBusy", err)
	}
	st := c.Stats()
	if st.Admitted != 3 || st.RejectedQueue != 1 || st.InFlight != 3 {
		t.Fatalf("stats = %+v, want admitted=3 rejectedQueue=1 inFlight=3", st)
	}

	// Releasing one slot makes room for exactly one more.
	releases[0]()
	rel, err := c.Admit("peer-b")
	if err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	rel()
	for _, r := range releases[1:] {
		r()
	}
	if got := c.Stats().InFlight; got != 0 {
		t.Fatalf("inFlight after all releases = %d, want 0", got)
	}
}

func TestReleaseIsIdempotent(t *testing.T) {
	c := New(Config{QueueDepth: 1})
	rel, err := c.Admit("p")
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel() // double release must not free a phantom slot
	if got := c.Stats().InFlight; got != 0 {
		t.Fatalf("inFlight = %d, want 0", got)
	}
	r1, err := c.Admit("p")
	if err != nil {
		t.Fatal(err)
	}
	defer r1()
	if _, err := c.Admit("p"); !errors.Is(err, ErrBusy) {
		t.Fatalf("depth-1 queue admitted twice after a double release: %v", err)
	}
}

func TestNegativeQueueDepthIsUnlimited(t *testing.T) {
	c := New(Config{QueueDepth: -1})
	for i := 0; i < 10*DefaultQueueDepth; i++ {
		if _, err := c.Admit("p"); err != nil {
			t.Fatalf("unlimited controller rejected admit %d: %v", i, err)
		}
	}
}

func TestPerPeerTokenBucket(t *testing.T) {
	now := time.Unix(1000, 0)
	c := New(Config{
		QueueDepth:   -1,
		PerPeerRate:  10, // 10 req/s
		PerPeerBurst: 2,
		Now:          func() time.Time { return now },
	})

	// Burst of 2 passes, third is rejected.
	for i := 0; i < 2; i++ {
		rel, err := c.Admit("hog")
		if err != nil {
			t.Fatalf("burst admit %d: %v", i, err)
		}
		rel()
	}
	if _, err := c.Admit("hog"); !errors.Is(err, ErrBusy) {
		t.Fatalf("over-burst admit: got %v, want ErrBusy", err)
	}
	if got := c.Stats().RejectedRate; got != 1 {
		t.Fatalf("RejectedRate = %d, want 1", got)
	}

	// A different peer has its own bucket.
	if rel, err := c.Admit("quiet"); err != nil {
		t.Fatalf("independent peer rejected: %v", err)
	} else {
		rel()
	}

	// 100ms at 10 req/s refills exactly one token.
	now = now.Add(100 * time.Millisecond)
	rel, err := c.Admit("hog")
	if err != nil {
		t.Fatalf("admit after refill: %v", err)
	}
	rel()
	if _, err := c.Admit("hog"); !errors.Is(err, ErrBusy) {
		t.Fatalf("second admit after one-token refill: got %v, want ErrBusy", err)
	}

	// Refill never exceeds the burst capacity.
	now = now.Add(time.Hour)
	for i := 0; i < 2; i++ {
		rel, err := c.Admit("hog")
		if err != nil {
			t.Fatalf("post-idle admit %d: %v", i, err)
		}
		rel()
	}
	if _, err := c.Admit("hog"); !errors.Is(err, ErrBusy) {
		t.Fatalf("burst cap not enforced after idle: %v", err)
	}
}

func TestConcurrentAdmitRelease(t *testing.T) {
	const depth = 16
	c := New(Config{QueueDepth: depth})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				rel, err := c.Admit("p")
				if err != nil {
					continue
				}
				if in := c.Stats().InFlight; in > depth {
					t.Errorf("inFlight %d exceeds depth %d", in, depth)
				}
				rel()
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.InFlight != 0 {
		t.Fatalf("inFlight after quiesce = %d, want 0", st.InFlight)
	}
	if st.Admitted == 0 {
		t.Fatal("no admissions recorded")
	}
}
