// Package admission is the server-side overload protection shared by
// both transports (the in-memory simnet and the UDP transport in
// internal/wire). A node past saturation must say "no" early and
// cheaply instead of queueing work without bound: DHARMA's cost bounds
// (Table I) are stated in lookups, and a lookup against a node that
// accepted ten thousand requests it cannot serve costs whatever the
// backlog costs.
//
// Two independent gates guard a handler:
//
//   - a bounded work queue — a counting semaphore capping how many
//     requests may be in the handler concurrently. This is the hard
//     bound that fixes the cancellation goroutine leak: a transport
//     spawns at most QueueDepth handler goroutines per node no matter
//     how many callers give up and abandon their exchanges.
//   - per-peer token buckets — a sustained request rate per remote
//     address, so one aggressive client cannot monopolize the queue
//     that every peer shares.
//
// Rejected requests fail fast with ErrBusy (surfaced to overlay
// clients as wire.ErrBusy); well-behaved clients back off with
// jittered exponential retry and never treat a busy peer as dead.
package admission

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBusy is the early-rejection error: the server is saturated (work
// queue full) or the peer exceeded its rate allowance. Busy is an
// explicit, cheap answer — the opposite of a timeout — and busy does
// NOT mean dead: clients must retry with backoff rather than evict the
// peer from routing state.
var ErrBusy = errors.New("admission: server busy")

// DefaultQueueDepth is the per-node concurrent-request cap used when
// Config.QueueDepth is zero. It is deliberately always finite: an
// unbounded handler pool is the bug this package exists to fix, so
// "unconfigured" must not mean "unprotected".
const DefaultQueueDepth = 1024

// Config parameterises a Controller.
type Config struct {
	// QueueDepth caps how many requests may be admitted concurrently
	// (0 = DefaultQueueDepth; negative = unlimited, an escape hatch for
	// tests that need the historical unbounded behavior).
	QueueDepth int
	// PerPeerRate is the sustained admission rate per remote peer in
	// requests/second (0 = unlimited).
	PerPeerRate float64
	// PerPeerBurst is the token-bucket capacity per peer; a peer may
	// burst this many requests before the sustained rate applies
	// (0 = max(8, 2·PerPeerRate)).
	PerPeerBurst int
	// Now is the clock (default time.Now); tests inject a fake.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.QueueDepth == 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.PerPeerBurst <= 0 {
		c.PerPeerBurst = int(2 * c.PerPeerRate)
		if c.PerPeerBurst < 8 {
			c.PerPeerBurst = 8
		}
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Stats is a point-in-time snapshot of a controller's accounting.
type Stats struct {
	// Admitted counts requests that passed both gates.
	Admitted int64
	// RejectedQueue counts rejections by the full work queue,
	// RejectedRate by a peer's exhausted token bucket.
	RejectedQueue, RejectedRate int64
	// InFlight is the number of currently admitted, unreleased requests.
	InFlight int64
}

// Rejected is the total across both gates.
func (s Stats) Rejected() int64 { return s.RejectedQueue + s.RejectedRate }

// bucket is one peer's token bucket; lazily refilled on access.
type bucket struct {
	tokens float64
	last   time.Time
}

// Controller is one node's admission gate. It is safe for concurrent
// use by any number of transport goroutines.
type Controller struct {
	cfg   Config
	slots chan struct{} // nil when QueueDepth < 0 (unlimited)

	admitted atomic.Int64
	rejQueue atomic.Int64
	rejRate  atomic.Int64
	inFlight atomic.Int64

	mu      sync.Mutex
	buckets map[string]*bucket
}

// New builds a controller; the zero Config yields the default bounded
// queue with no per-peer rate limit.
func New(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{cfg: cfg}
	if cfg.QueueDepth > 0 {
		c.slots = make(chan struct{}, cfg.QueueDepth)
	}
	if cfg.PerPeerRate > 0 {
		c.buckets = make(map[string]*bucket)
	}
	return c
}

// Admit asks to run one request from peer. On success it returns a
// release function that MUST be called exactly once when the handler
// finishes (however it finishes); on rejection it returns ErrBusy.
// Admission never blocks — a full queue is an immediate rejection, not
// a wait — so the transport's receive loop stays responsive no matter
// how deep the backlog is.
func (c *Controller) Admit(peer string) (release func(), err error) {
	if !c.takeToken(peer) {
		c.rejRate.Add(1)
		return nil, ErrBusy
	}
	if c.slots != nil {
		select {
		case c.slots <- struct{}{}:
		default:
			c.rejQueue.Add(1)
			return nil, ErrBusy
		}
	}
	c.admitted.Add(1)
	c.inFlight.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			c.inFlight.Add(-1)
			if c.slots != nil {
				<-c.slots
			}
		})
	}, nil
}

// takeToken spends one token from peer's bucket, reporting whether one
// was available. Buckets refill lazily at PerPeerRate up to
// PerPeerBurst; with no rate configured every request has a token.
func (c *Controller) takeToken(peer string) bool {
	if c.buckets == nil {
		return true
	}
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.buckets[peer]
	if !ok {
		b = &bucket{tokens: float64(c.cfg.PerPeerBurst), last: now}
		c.buckets[peer] = b
	} else if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * c.cfg.PerPeerRate
		if max := float64(c.cfg.PerPeerBurst); b.tokens > max {
			b.tokens = max
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Stats returns a snapshot of the controller's accounting.
func (c *Controller) Stats() Stats {
	return Stats{
		Admitted:      c.admitted.Load(),
		RejectedQueue: c.rejQueue.Load(),
		RejectedRate:  c.rejRate.Load(),
		InFlight:      c.inFlight.Load(),
	}
}
