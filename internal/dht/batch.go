package dht

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"dharma/internal/kadid"
	"dharma/internal/wire"
)

// DefaultBatchWindow bounds how long a Batching store may hold an
// append before flushing it.
const DefaultBatchWindow = 2 * time.Millisecond

// Batching wraps a Store and coalesces appends to the same key that
// arrive within a short flush window into a single inner append. Block
// updates are commutative merges, so concatenating the entry lists of
// two appends and applying them once is indistinguishable from applying
// them separately — which is what makes the coalescing safe.
//
// The win is cross-client: many engines hammering the same hot tag
// (Zipf traffic) collapse their "+1 token" appends into one physical
// block operation per window. Every logical append still blocks until
// its window flushes and returns the flush's error, so caller-side
// error accounting (the load harness counts failures per operation)
// stays exact.
//
// Table-I accounting is preserved through the existing Counter
// interface by delegation: Appends/Gets/Lookups report the physical
// block operations the inner store actually performed — the real cost
// after coalescing — while Enqueued and Coalesced expose how many
// logical appends arrived and how many were absorbed into an earlier
// pending flush.
type Batching struct {
	inner  Store
	window time.Duration

	mu      sync.Mutex
	pending map[kadid.ID]*pendingAppend

	enqueued  atomic.Int64
	coalesced atomic.Int64
	flushes   atomic.Int64
}

// pendingAppend collects the entries bound for one key during one
// window. done is closed once the flush completed and err is set.
type pendingAppend struct {
	entries []wire.Entry
	done    chan struct{}
	err     error
}

// NewBatching wraps inner with a coalescing window (0 selects
// DefaultBatchWindow).
func NewBatching(inner Store, window time.Duration) *Batching {
	if window <= 0 {
		window = DefaultBatchWindow
	}
	return &Batching{
		inner:   inner,
		window:  window,
		pending: make(map[kadid.ID]*pendingAppend),
	}
}

// Append implements Store: the entries join the key's pending group
// (creating it, and scheduling its flush, if none is open) and the call
// blocks until that group is flushed, returning the flush result — or
// until ctx ends, in which case the caller gets ctx.Err() immediately.
// The group itself still flushes: it aggregates other callers' entries
// too, so one caller's cancellation must not unwrite everybody's batch.
// As with any context error on a Store, the outcome of the abandoned
// append is unknown to the canceller.
func (b *Batching) Append(ctx context.Context, key kadid.ID, entries []wire.Entry) error {
	if len(entries) == 0 {
		// Nothing to coalesce; pass through so the inner counter still
		// sees the Table-I lookup the operation costs.
		return b.inner.Append(ctx, key, entries)
	}
	p := b.enqueue(key, entries)
	select {
	case <-p.done:
		return p.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// AppendBatch implements Store: every item joins its key's pending
// group, then the call waits for all involved flushes. Errors of the
// individual flushes are joined.
func (b *Batching) AppendBatch(ctx context.Context, items []BatchItem) error {
	groups := make([]*pendingAppend, 0, len(items))
	for _, it := range items {
		if len(it.Entries) == 0 {
			if err := b.inner.Append(ctx, it.Key, it.Entries); err != nil {
				groups = append(groups, &pendingAppend{err: err, done: closedChan})
			}
			continue
		}
		groups = append(groups, b.enqueue(it.Key, it.Entries))
	}
	errs := make([]error, 0, len(groups))
	for _, p := range groups {
		select {
		case <-p.done:
			if p.err != nil {
				errs = append(errs, p.err)
			}
		case <-ctx.Done():
			// Stop waiting on every remaining group; they flush on their
			// own schedule regardless.
			return ctx.Err()
		}
	}
	return errors.Join(errs...)
}

var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

func (b *Batching) enqueue(key kadid.ID, entries []wire.Entry) *pendingAppend {
	b.mu.Lock()
	// Count inside the critical section, after the group is reachable
	// from b.pending: observers treating Enqueued() as "this many
	// appends are pending or flushed" (the tests do) must never see the
	// count run ahead of the map.
	b.enqueued.Add(1)
	p, ok := b.pending[key]
	if !ok {
		p = &pendingAppend{done: make(chan struct{})}
		b.pending[key] = p
		time.AfterFunc(b.window, func() { b.flushKey(key, p) })
	} else {
		b.coalesced.Add(1)
	}
	p.entries = append(p.entries, entries...)
	b.mu.Unlock()
	return p
}

// flushKey flushes the pending group for key if it is still the given
// one; a group already claimed by another flusher is left alone (its
// claimer closes done). The physical append runs under the background
// context: a flush acts for every committer whose entries it carries,
// so no single caller's deadline may abort it.
func (b *Batching) flushKey(key kadid.ID, p *pendingAppend) {
	b.mu.Lock()
	cur := b.pending[key]
	if cur != p {
		b.mu.Unlock()
		return
	}
	delete(b.pending, key)
	b.mu.Unlock()

	p.err = b.inner.Append(context.Background(), key, p.entries)
	b.flushes.Add(1)
	close(p.done)
}

// Get implements Store. Reads are not cached here, but a read of a key
// with a pending append flushes it first, so a client always observes
// its own writes (the engine's Tag reads r̄ right before appending it).
func (b *Batching) Get(ctx context.Context, key kadid.ID, topN int) ([]wire.Entry, error) {
	b.mu.Lock()
	p := b.pending[key]
	b.mu.Unlock()
	if p != nil {
		// Kick the flush on its own goroutine so the wait below really
		// is bounded by ctx — a synchronous flush against a congested
		// overlay would render the ctx branch unreachable.
		go b.flushKey(key, p)
		select {
		case <-p.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return b.inner.Get(ctx, key, topN)
}

// Flush forces out every pending group and waits for completion; it is
// how a deployment drains the store before shutdown (and how tests make
// the window deterministic).
func (b *Batching) Flush() {
	b.mu.Lock()
	claimed := b.pending
	b.pending = make(map[kadid.ID]*pendingAppend)
	b.mu.Unlock()
	for key, p := range claimed {
		p.err = b.inner.Append(context.Background(), key, p.entries)
		b.flushes.Add(1)
		close(p.done)
	}
}

// Enqueued returns how many logical appends entered the store.
func (b *Batching) Enqueued() int64 { return b.enqueued.Load() }

// Coalesced returns how many logical appends were absorbed into an
// already-pending flush (physical appends saved).
func (b *Batching) Coalesced() int64 { return b.coalesced.Load() }

// Flushes returns how many physical appends were issued.
func (b *Batching) Flushes() int64 { return b.flushes.Load() }

// Inner returns the wrapped store.
func (b *Batching) Inner() Store { return b.inner }

// Appends implements Counter by delegation: the physical block
// operations actually performed after coalescing.
func (b *Batching) Appends() int64 { return b.counter().Appends() }

// Gets implements Counter.
func (b *Batching) Gets() int64 { return b.counter().Gets() }

// Lookups implements Counter.
func (b *Batching) Lookups() int64 { return b.counter().Lookups() }

func (b *Batching) counter() Counter {
	if ctr, ok := b.inner.(Counter); ok {
		return ctr
	}
	return zeroCounter{}
}

var (
	_ Store   = (*Batching)(nil)
	_ Counter = (*Batching)(nil)
)
