package dht

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dharma/internal/kadid"
	"dharma/internal/wire"
)

func TestCacheSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "readcache")
	c, l := newCachedLocal(t, 16, time.Minute, nil)
	keys := make([]kadid.ID, 5)
	for i := range keys {
		keys[i] = kadid.HashString(fmt.Sprintf("tag%d|3", i))
		if err := c.Append(context.Background(), keys[i], []wire.Entry{
			{Field: fmt.Sprintf("f%d", i), Count: uint64(i + 1), Data: []byte("uri")},
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Get(context.Background(), keys[i], 0); err != nil {
			t.Fatal(err)
		}
	}
	// One filtered read: its cache slot must survive too.
	if _, err := c.Get(context.Background(), keys[0], 1); err != nil {
		t.Fatal(err)
	}
	if err := c.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}

	// "Reboot": a fresh cache over the same inner store, warmed.
	c2 := NewCached(l, 16, time.Minute, nil)
	warmed, err := c2.WarmSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if warmed != 6 {
		t.Fatalf("warmed %d entries, want 6", warmed)
	}
	if c2.Len() != 6 {
		t.Fatalf("cache holds %d entries after warm, want 6", c2.Len())
	}

	// Every warmed read is a hit: the inner store sees no Get at all.
	innerGets := l.Gets()
	for i, key := range keys {
		es, err := c2.Get(context.Background(), key, 0)
		if err != nil || len(es) != 1 || es[0].Count != uint64(i+1) || string(es[0].Data) != "uri" {
			t.Fatalf("warmed read %d wrong: %+v, %v", i, es, err)
		}
	}
	if es, err := c2.Get(context.Background(), keys[0], 1); err != nil || len(es) != 1 {
		t.Fatalf("warmed filtered read wrong: %+v, %v", es, err)
	}
	if l.Gets() != innerGets {
		t.Fatalf("warmed reads reached the store: %d -> %d", innerGets, l.Gets())
	}
	if c2.Hits() != int64(len(keys))+1 || c2.Misses() != 0 {
		t.Fatalf("hits=%d misses=%d after warm", c2.Hits(), c2.Misses())
	}
}

func TestCacheWarmDropsExpired(t *testing.T) {
	path := filepath.Join(t.TempDir(), "readcache")
	clock := time.Now()
	now := func() time.Time { return clock }
	c, l := newCachedLocal(t, 16, 10*time.Second, now)
	fresh, stale := kadid.HashString("fresh"), kadid.HashString("stale")
	for _, k := range []kadid.ID{fresh, stale} {
		if err := c.Append(context.Background(), k, []wire.Entry{{Field: "f", Count: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	// stale is read first, fresh 8 seconds later — their absolute
	// expiries differ by that much.
	if _, err := c.Get(context.Background(), stale, 0); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(8 * time.Second)
	if _, err := c.Get(context.Background(), fresh, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}

	// The process is down for 5 seconds: stale's TTL (10s, 8 elapsed)
	// runs out mid-downtime, fresh's does not.
	clock = clock.Add(5 * time.Second)
	c2 := NewCached(l, 16, 10*time.Second, now)
	warmed, err := c2.WarmSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if warmed != 1 || c2.Len() != 1 {
		t.Fatalf("warmed=%d len=%d, want the one unexpired entry", warmed, c2.Len())
	}
	innerGets := l.Gets()
	if _, err := c2.Get(context.Background(), fresh, 0); err != nil {
		t.Fatal(err)
	}
	if l.Gets() != innerGets {
		t.Fatal("unexpired entry was not served from the warmed cache")
	}
	if _, err := c2.Get(context.Background(), stale, 0); err != nil {
		t.Fatal(err)
	}
	if l.Gets() != innerGets+1 {
		t.Fatal("expired entry should have gone through to the store")
	}
}

func TestCacheWarmToleratesMissingAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	c, _ := newCachedLocal(t, 8, time.Minute, nil)

	// Missing file: cold start, no error.
	if warmed, err := c.WarmSnapshot(filepath.Join(dir, "nope")); err != nil || warmed != 0 {
		t.Fatalf("missing snapshot: warmed=%d err=%v", warmed, err)
	}

	// Corrupt tail: the intact prefix warms, the rest is dropped.
	path := filepath.Join(dir, "readcache")
	key := kadid.HashString("ok")
	if err := c.Append(context.Background(), key, []wire.Entry{{Field: "f", Count: 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(context.Background(), key, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(raw, 0xFF, 0x03, 0x02), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, _ := newCachedLocal(t, 8, time.Minute, nil)
	if warmed, err := c2.WarmSnapshot(path); err != nil || warmed != 1 {
		t.Fatalf("corrupt tail: warmed=%d err=%v, want the intact record", warmed, err)
	}

	// Garbage from byte zero: nothing warms, boot proceeds.
	if err := os.WriteFile(path, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	c3, _ := newCachedLocal(t, 8, time.Minute, nil)
	if warmed, err := c3.WarmSnapshot(path); err != nil || warmed != 0 {
		t.Fatalf("garbage snapshot: warmed=%d err=%v", warmed, err)
	}
}

func TestCacheSnapshotPreservesLRUOrder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "readcache")
	c, l := newCachedLocal(t, 8, time.Minute, nil)
	keys := make([]kadid.ID, 6)
	for i := range keys {
		keys[i] = kadid.HashString(fmt.Sprintf("lru%d", i))
		if err := c.Append(context.Background(), keys[i], []wire.Entry{{Field: "f", Count: uint64(i)}}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Get(context.Background(), keys[i], 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}

	// Warm into a smaller cache: only the most recently used entries
	// must survive the capacity squeeze.
	c2 := NewCached(l, 3, time.Minute, nil)
	if _, err := c2.WarmSnapshot(path); err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 3 {
		t.Fatalf("len=%d want 3", c2.Len())
	}
	innerGets := l.Gets()
	for _, key := range keys[3:] {
		if _, err := c2.Get(context.Background(), key, 0); err != nil {
			t.Fatal(err)
		}
	}
	if l.Gets() != innerGets {
		t.Fatal("most recent half was evicted by the warm, oldest kept")
	}
}
