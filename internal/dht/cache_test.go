package dht

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dharma/internal/kadid"
	"dharma/internal/wire"
)

func newCachedLocal(t *testing.T, capacity int, ttl time.Duration, now func() time.Time) (*Cached, *Local) {
	t.Helper()
	l := NewLocal()
	return NewCached(l, capacity, ttl, now), l
}

func TestCacheHitAvoidsLookup(t *testing.T) {
	c, l := newCachedLocal(t, 8, time.Minute, nil)
	key := kadid.HashString("rock|3")
	if err := c.Append(context.Background(), key, []wire.Entry{{Field: "pop", Count: 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(context.Background(), key, 0); err != nil {
		t.Fatal(err)
	}
	innerGets := l.Gets()
	for i := 0; i < 10; i++ {
		es, err := c.Get(context.Background(), key, 0)
		if err != nil || len(es) != 1 || es[0].Count != 2 {
			t.Fatalf("cached read wrong: %+v, %v", es, err)
		}
	}
	if l.Gets() != innerGets {
		t.Fatalf("cache hits reached the store: %d -> %d", innerGets, l.Gets())
	}
	if c.Hits() != 10 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

func TestCacheKeyIncludesTopN(t *testing.T) {
	c, _ := newCachedLocal(t, 8, time.Minute, nil)
	key := kadid.HashString("k")
	if err := c.Append(context.Background(), key, []wire.Entry{
		{Field: "a", Count: 3}, {Field: "b", Count: 2}, {Field: "c", Count: 1},
	}); err != nil {
		t.Fatal(err)
	}
	full, err := c.Get(context.Background(), key, 0)
	if err != nil || len(full) != 3 {
		t.Fatalf("full read: %v %v", full, err)
	}
	top1, err := c.Get(context.Background(), key, 1)
	if err != nil || len(top1) != 1 {
		t.Fatalf("filtered read served from wrong cache slot: %v %v", top1, err)
	}
}

func TestCacheAppendInvalidates(t *testing.T) {
	c, _ := newCachedLocal(t, 8, time.Minute, nil)
	key := kadid.HashString("k")
	if err := c.Append(context.Background(), key, []wire.Entry{{Field: "a", Count: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(context.Background(), key, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Append(context.Background(), key, []wire.Entry{{Field: "a", Count: 1}}); err != nil {
		t.Fatal(err)
	}
	es, err := c.Get(context.Background(), key, 0)
	if err != nil || es[0].Count != 2 {
		t.Fatalf("stale read after write: %+v, %v", es, err)
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	c, l := newCachedLocal(t, 8, 10*time.Second, now)
	key := kadid.HashString("k")
	if err := c.Append(context.Background(), key, []wire.Entry{{Field: "a", Count: 1}}); err != nil {
		t.Fatal(err)
	}
	c.Get(context.Background(), key, 0) //nolint:errcheck
	before := l.Gets()
	clock = clock.Add(11 * time.Second)
	c.Get(context.Background(), key, 0) //nolint:errcheck
	if l.Gets() != before+1 {
		t.Fatal("expired entry served from cache")
	}
}

func TestCacheCapacityEviction(t *testing.T) {
	c, l := newCachedLocal(t, 2, time.Minute, nil)
	keys := []kadid.ID{kadid.HashString("a"), kadid.HashString("b"), kadid.HashString("c")}
	for _, k := range keys {
		if err := c.Append(context.Background(), k, []wire.Entry{{Field: "f", Count: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		c.Get(context.Background(), k, 0) //nolint:errcheck
	}
	if c.Len() != 2 {
		t.Fatalf("cache len = %d, want 2", c.Len())
	}
	// "a" was evicted (LRU): reading it again must hit the store.
	before := l.Gets()
	c.Get(context.Background(), keys[0], 0) //nolint:errcheck
	if l.Gets() != before+1 {
		t.Fatal("evicted entry still cached")
	}
	// "c" is fresh: cache hit.
	before = l.Gets()
	c.Get(context.Background(), keys[2], 0) //nolint:errcheck
	if l.Gets() != before {
		t.Fatal("fresh entry not cached")
	}
}

func TestCacheMissOnErrorNotCached(t *testing.T) {
	c, _ := newCachedLocal(t, 8, time.Minute, nil)
	missing := kadid.HashString("missing")
	if _, err := c.Get(context.Background(), missing, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if c.Len() != 0 {
		t.Fatal("error result was cached")
	}
	// The block appears later; it must be found.
	if err := c.Append(context.Background(), missing, []wire.Entry{{Field: "f", Count: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(context.Background(), missing, 0); err != nil {
		t.Fatalf("block invisible after append: %v", err)
	}
}

func TestCacheCountersDelegate(t *testing.T) {
	c, l := newCachedLocal(t, 8, time.Minute, nil)
	key := kadid.HashString("k")
	c.Append(context.Background(), key, []wire.Entry{{Field: "f", Count: 1}}) //nolint:errcheck
	c.Get(context.Background(), key, 0)                                       //nolint:errcheck
	c.Get(context.Background(), key, 0)                                       // hit //nolint:errcheck
	if c.Lookups() != l.Lookups() {
		t.Fatalf("counter mismatch: %d vs %d", c.Lookups(), l.Lookups())
	}
	if c.Gets() != 1 {
		t.Fatalf("Gets = %d, want 1 (hit must not count)", c.Gets())
	}
}

func TestCacheConcurrent(t *testing.T) {
	c, _ := newCachedLocal(t, 32, time.Minute, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := kadid.HashString(fmt.Sprintf("k%d", i%16))
				if i%5 == 0 {
					if err := c.Append(context.Background(), key, []wire.Entry{{Field: "f", Count: 1}}); err != nil {
						t.Error(err)
						return
					}
				} else {
					c.Get(context.Background(), key, 0) //nolint:errcheck // may be missing
				}
			}
		}(g)
	}
	wg.Wait()
}

// scriptedStore lets a test interleave a slow inner Get with a
// concurrent Append deterministically.
type scriptedStore struct {
	inner *Local
	getFn func(key kadid.ID, topN int) ([]wire.Entry, error)
}

func (s *scriptedStore) Append(ctx context.Context, key kadid.ID, entries []wire.Entry) error {
	return s.inner.Append(ctx, key, entries)
}
func (s *scriptedStore) AppendBatch(ctx context.Context, items []BatchItem) error {
	return s.inner.AppendBatch(ctx, items)
}
func (s *scriptedStore) Get(ctx context.Context, key kadid.ID, topN int) ([]wire.Entry, error) {
	if s.getFn != nil {
		return s.getFn(key, topN)
	}
	return s.inner.Get(ctx, key, topN)
}

func TestCacheStaleReinsertRace(t *testing.T) {
	// The race: a Get reads the pre-write value from inner, a concurrent
	// Append invalidates the key, then the Get inserts its stale value
	// after the invalidation — serving old data until TTL. The per-key
	// generation counter must fence the insert. The clock is pinned so
	// TTL can never mask the bug.
	fixed := time.Unix(1700000000, 0)
	inner := &scriptedStore{inner: NewLocal()}
	c := NewCached(inner, 8, time.Minute, func() time.Time { return fixed })

	key := kadid.HashString("k")
	if err := inner.inner.Append(context.Background(), key, []wire.Entry{{Field: "a", Count: 1}}); err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	inner.getFn = func(k kadid.ID, topN int) ([]wire.Entry, error) {
		// First read parks until the writer has gone through, then
		// returns the value it read "before" the write.
		once.Do(func() {
			close(entered)
			<-release
		})
		return []wire.Entry{{Field: "a", Count: 1}}, nil
	}

	got := make(chan uint64, 1)
	go func() {
		es, err := c.Get(context.Background(), key, 0)
		if err != nil {
			t.Error(err)
			got <- 0
			return
		}
		got <- es[0].Count
	}()

	<-entered
	if err := c.Append(context.Background(), key, []wire.Entry{{Field: "a", Count: 1}}); err != nil {
		t.Fatal(err)
	}
	close(release)
	if v := <-got; v != 1 {
		t.Fatalf("racing Get returned %d, want the pre-write 1", v)
	}

	// The stale value must NOT have been cached: the next read goes to
	// inner and sees the current count.
	inner.getFn = nil
	misses := c.Misses()
	es, err := c.Get(context.Background(), key, 0)
	if err != nil {
		t.Fatal(err)
	}
	if es[0].Count != 2 {
		t.Fatalf("read after race returned %d, want 2 — stale value was re-inserted", es[0].Count)
	}
	if c.Misses() != misses+1 {
		t.Fatalf("read after race was served from cache (misses %d -> %d)", misses, c.Misses())
	}
}

func TestCacheGetDoesNotAliasCacheState(t *testing.T) {
	c, _ := newCachedLocal(t, 8, time.Minute, nil)
	key := kadid.HashString("k")
	if err := c.Append(context.Background(), key, []wire.Entry{{Field: "a", Count: 2, Data: []byte("uri")}}); err != nil {
		t.Fatal(err)
	}
	// Miss populates the cache; mutating what the miss returned must
	// not touch the cached copy.
	es, err := c.Get(context.Background(), key, 0)
	if err != nil {
		t.Fatal(err)
	}
	es[0].Count = 999
	es[0].Data[0] = 'X'

	hit, err := c.Get(context.Background(), key, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hit[0].Count != 2 || string(hit[0].Data) != "uri" {
		t.Fatalf("miss-result mutation leaked into cache: %+v", hit[0])
	}
	// And mutating a hit result must not corrupt later hits either.
	hit[0].Count = 777
	hit[0].Data[0] = 'Y'
	hit2, err := c.Get(context.Background(), key, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hit2[0].Count != 2 || string(hit2[0].Data) != "uri" {
		t.Fatalf("hit-result mutation leaked into cache: %+v", hit2[0])
	}
}

func TestCacheAppendBatchInvalidatesEveryKey(t *testing.T) {
	c, l := newCachedLocal(t, 8, time.Minute, nil)
	k1, k2 := kadid.HashString("k1"), kadid.HashString("k2")
	for _, k := range []kadid.ID{k1, k2} {
		if err := c.Append(context.Background(), k, []wire.Entry{{Field: "a", Count: 1}}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Get(context.Background(), k, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AppendBatch(context.Background(), []BatchItem{
		{Key: k1, Entries: []wire.Entry{{Field: "a", Count: 1}}},
		{Key: k2, Entries: []wire.Entry{{Field: "a", Count: 4}}},
	}); err != nil {
		t.Fatal(err)
	}
	if l.Appends() == 0 {
		t.Fatal("batch did not reach inner store")
	}
	es1, _ := c.Get(context.Background(), k1, 0)
	es2, _ := c.Get(context.Background(), k2, 0)
	if es1[0].Count != 2 || es2[0].Count != 5 {
		t.Fatalf("stale reads after batch: %d, %d (want 2, 5)", es1[0].Count, es2[0].Count)
	}
}
