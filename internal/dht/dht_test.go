package dht

import (
	"context"
	"errors"
	"testing"

	"dharma/internal/kademlia"
	"dharma/internal/kadid"
	"dharma/internal/wire"
)

func TestLocalAppendGet(t *testing.T) {
	l := NewLocal()
	key := kadid.HashString("rock|3")
	if err := l.Append(context.Background(), key, []wire.Entry{{Field: "pop", Count: 2}}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Append(context.Background(), key, []wire.Entry{{Field: "pop", Count: 1}, {Field: "indie", Count: 1}}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	es, err := l.Get(context.Background(), key, 0)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if len(es) != 2 || es[0].Field != "pop" || es[0].Count != 3 {
		t.Fatalf("entries = %+v", es)
	}
}

func TestLocalGetNotFound(t *testing.T) {
	l := NewLocal()
	if _, err := l.Get(context.Background(), kadid.HashString("missing"), 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestLocalCounters(t *testing.T) {
	l := NewLocal()
	key := kadid.HashString("k")
	l.Append(context.Background(), key, []wire.Entry{{Field: "a", Count: 1}}) //nolint:errcheck
	l.Get(context.Background(), key, 0)                                       //nolint:errcheck
	l.Get(context.Background(), key, 0)                                       //nolint:errcheck
	l.Get(context.Background(), kadid.HashString("missing"), 0)               //nolint:errcheck

	if l.Appends() != 1 {
		t.Fatalf("Appends = %d, want 1", l.Appends())
	}
	if l.Gets() != 3 {
		t.Fatalf("Gets = %d, want 3 (misses also cost a lookup)", l.Gets())
	}
	if l.Lookups() != 4 {
		t.Fatalf("Lookups = %d, want 4", l.Lookups())
	}
}

func TestLocalTopN(t *testing.T) {
	l := NewLocal()
	key := kadid.HashString("k")
	l.Append(context.Background(), key, []wire.Entry{ //nolint:errcheck
		{Field: "a", Count: 3}, {Field: "b", Count: 2}, {Field: "c", Count: 1},
	})
	es, err := l.Get(context.Background(), key, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 2 || es[0].Field != "a" || es[1].Field != "b" {
		t.Fatalf("topN filter broken: %+v", es)
	}
}

func newOverlayPair(t *testing.T) (*Overlay, *Overlay) {
	t.Helper()
	cl, err := kademlia.NewCluster(kademlia.ClusterConfig{
		N:    24,
		Node: kademlia.Config{K: 8, Alpha: 3},
		Seed: 21,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return NewOverlay(cl.Nodes[3], nil), NewOverlay(cl.Nodes[17], nil)
}

func TestOverlayAppendGet(t *testing.T) {
	w, r := newOverlayPair(t)
	key := kadid.HashString("jazz|3")
	if err := w.Append(context.Background(), key, []wire.Entry{{Field: "bebop", Count: 1}}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := w.Append(context.Background(), key, []wire.Entry{{Field: "bebop", Count: 1}}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	es, err := r.Get(context.Background(), key, 0)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if len(es) != 1 || es[0].Count != 2 {
		t.Fatalf("entries = %+v, want bebop/2", es)
	}
}

func TestOverlayGetNotFound(t *testing.T) {
	_, r := newOverlayPair(t)
	if _, err := r.Get(context.Background(), kadid.HashString("missing"), 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestOverlayCountsOps(t *testing.T) {
	w, r := newOverlayPair(t)
	key := kadid.HashString("k")
	w.Append(context.Background(), key, []wire.Entry{{Field: "a", Count: 1}}) //nolint:errcheck
	r.Get(context.Background(), key, 0)                                       //nolint:errcheck
	if w.Appends() != 1 || w.Lookups() != 1 {
		t.Fatalf("writer counters: appends=%d lookups=%d", w.Appends(), w.Lookups())
	}
	if r.Gets() != 1 || r.Lookups() != 1 {
		t.Fatalf("reader counters: gets=%d lookups=%d", r.Gets(), r.Lookups())
	}
	// The overlay node performed exactly one iterative lookup per op.
	if w.Node().Lookups() == 0 {
		t.Fatal("overlay node reports no iterative lookups")
	}
}

func TestLocalAndOverlaySemanticsAgree(t *testing.T) {
	// The same operation sequence must yield the same block contents on
	// both backings — this is what lets the simulations use Local.
	w, r := newOverlayPair(t)
	l := NewLocal()
	key := kadid.HashString("agree|3")

	ops := [][]wire.Entry{
		{{Field: "x", Count: 1}},
		{{Field: "y", Count: 2}, {Field: "x", Count: 1}},
		{{Field: "z", Count: 1}},
		{{Field: "y", Count: 3}},
	}
	for _, es := range ops {
		if err := w.Append(context.Background(), key, es); err != nil {
			t.Fatal(err)
		}
		if err := l.Append(context.Background(), key, es); err != nil {
			t.Fatal(err)
		}
	}
	got, err := r.Get(context.Background(), key, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := l.Get(context.Background(), key, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("length mismatch: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Field != want[i].Field || got[i].Count != want[i].Count {
			t.Fatalf("entry %d: overlay %+v, local %+v", i, got[i], want[i])
		}
	}
}

func TestLocalAppendBatchAccounting(t *testing.T) {
	// A batch of n items is n block operations in Table-I units — the
	// counter must advance exactly n, including items whose entry list
	// is empty (the lookup happens even when nothing is stored).
	l := NewLocal()
	k1, k2, k3 := kadid.HashString("k1"), kadid.HashString("k2"), kadid.HashString("k3")
	if err := l.AppendBatch(context.Background(), []BatchItem{
		{Key: k1, Entries: []wire.Entry{{Field: "a", Count: 1}}},
		{Key: k2, Entries: []wire.Entry{{Field: "b", Count: 2}}},
		{Key: k3}, // empty: charged, not materialized
	}); err != nil {
		t.Fatal(err)
	}
	if l.Appends() != 3 {
		t.Fatalf("Appends = %d, want 3", l.Appends())
	}
	es, err := l.Get(context.Background(), k2, 0)
	if err != nil || len(es) != 1 || es[0].Count != 2 {
		t.Fatalf("batch write missing: %+v, %v", es, err)
	}
	if l.Raw().Has(k3) {
		t.Fatal("empty batch item materialized a block")
	}
}
