package dht

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
	"time"

	"dharma/internal/kadid"
	"dharma/internal/obs"
	"dharma/internal/wire"
)

// Cached wraps a Store with a bounded, TTL-limited LRU read cache.
// DHARMA's read traffic is extremely skewed — every navigation starts
// from a handful of popular tags whose t̂/t̄ blocks are fetched over and
// over — so a small client cache absorbs most repeat lookups (measured
// by the A7 experiment). Writes go through and invalidate the written
// key, and entries expire after TTL so cached weights cannot stray far
// behind the replicas.
type Cached struct {
	inner Store
	cap   int
	ttl   time.Duration
	now   func() time.Time

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[cacheKey]*list.Element
	byID  map[kadid.ID]map[int]*list.Element
	// gens guards against the stale-reinsert race: a Get that read from
	// inner before a concurrent Append invalidated the key must not
	// insert its pre-write value after the invalidation. Every Append
	// bumps the written key's generation; a Get only caches what it read
	// if the generation it snapshotted is still current. One counter per
	// ever-written key — a few bytes each, negligible next to the cached
	// blocks themselves.
	gens map[kadid.ID]uint64

	hits, misses atomic.Int64
}

// cacheKey caches per (block, filter) pair: a top-10 read and a top-100
// read of the same block are different wire results.
type cacheKey struct {
	id   kadid.ID
	topN int
}

type cacheEntry struct {
	key     cacheKey
	entries []wire.Entry
	expires time.Time
}

// DefaultCacheTTL bounds the staleness of cached reads.
const DefaultCacheTTL = 30 * time.Second

// NewCached wraps inner with a cache of at most capacity blocks. A zero
// ttl selects DefaultCacheTTL; now is injectable for tests (nil =
// time.Now).
func NewCached(inner Store, capacity int, ttl time.Duration, now func() time.Time) *Cached {
	if capacity <= 0 {
		capacity = 256
	}
	if ttl <= 0 {
		ttl = DefaultCacheTTL
	}
	if now == nil {
		now = time.Now
	}
	return &Cached{
		inner: inner,
		cap:   capacity,
		ttl:   ttl,
		now:   now,
		ll:    list.New(),
		items: make(map[cacheKey]*list.Element),
		byID:  make(map[kadid.ID]map[int]*list.Element),
		gens:  make(map[kadid.ID]uint64),
	}
}

// Get implements Store. Hits are served locally and cost no overlay
// lookup; misses go through and populate the cache. Results never alias
// cache state: both hits and the populated copy are independent clones,
// so a caller mutating what it got back cannot corrupt later reads.
func (c *Cached) Get(ctx context.Context, key kadid.ID, topN int) ([]wire.Entry, error) {
	ck := cacheKey{id: key, topN: topN}
	c.mu.Lock()
	if el, ok := c.items[ck]; ok {
		ce := el.Value.(*cacheEntry)
		if c.now().Before(ce.expires) {
			c.ll.MoveToFront(el)
			out := wire.CloneEntries(ce.entries)
			c.mu.Unlock()
			c.hits.Add(1)
			return out, nil
		}
		c.removeLocked(el)
	}
	gen := c.gens[key]
	c.mu.Unlock()
	c.misses.Add(1)

	entries, err := c.inner.Get(ctx, key, topN)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.gens[key] == gen {
		// No Append invalidated the key while we were reading; the
		// value is current and safe to cache.
		c.insertLocked(ck, wire.CloneEntries(entries))
	}
	c.mu.Unlock()
	return entries, nil
}

// Append implements Store: write-through plus invalidation of every
// cached read of the written block. The generation bump fences off
// concurrent Gets that read the pre-write value from inner but have not
// inserted it yet.
func (c *Cached) Append(ctx context.Context, key kadid.ID, entries []wire.Entry) error {
	if err := c.inner.Append(ctx, key, entries); err != nil {
		return err
	}
	c.invalidate(key)
	return nil
}

// AppendBatch implements Store: write-through, then invalidation of
// every written key.
func (c *Cached) AppendBatch(ctx context.Context, items []BatchItem) error {
	err := c.inner.AppendBatch(ctx, items)
	// Invalidate even on partial failure: some items may have landed.
	for _, it := range items {
		c.invalidate(it.Key)
	}
	return err
}

func (c *Cached) invalidate(key kadid.ID) {
	c.mu.Lock()
	for _, el := range c.byID[key] {
		c.removeLocked(el)
	}
	c.gens[key]++
	c.mu.Unlock()
}

// Instrument registers the cache's accounting on reg as scrape-time
// funcs. A nil reg is a no-op.
func (c *Cached) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("dharma_cache_hits_total",
		"Reads served from the client-side block cache.", c.Hits)
	reg.CounterFunc("dharma_cache_misses_total",
		"Reads that went through to the overlay.", c.Misses)
	reg.GaugeFunc("dharma_cache_entries",
		"Entries currently cached.", func() int64 { return int64(c.Len()) })
}

// Hits returns how many reads were served from the cache.
func (c *Cached) Hits() int64 { return c.hits.Load() }

// Misses returns how many reads went to the underlying store.
func (c *Cached) Misses() int64 { return c.misses.Load() }

// Len returns the number of cached blocks.
func (c *Cached) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Inner returns the wrapped store.
func (c *Cached) Inner() Store { return c.inner }

// Appends implements Counter by delegation (cache hits do not change
// the lookup cost of writes).
func (c *Cached) Appends() int64 { return c.counter().Appends() }

// Gets implements Counter: the overlay lookups actually performed.
func (c *Cached) Gets() int64 { return c.counter().Gets() }

// Lookups implements Counter.
func (c *Cached) Lookups() int64 { return c.counter().Lookups() }

func (c *Cached) counter() Counter {
	if ctr, ok := c.inner.(Counter); ok {
		return ctr
	}
	return zeroCounter{}
}

type zeroCounter struct{}

func (zeroCounter) Appends() int64 { return 0 }
func (zeroCounter) Gets() int64    { return 0 }
func (zeroCounter) Lookups() int64 { return 0 }

func (c *Cached) insertLocked(ck cacheKey, entries []wire.Entry) {
	if el, ok := c.items[ck]; ok {
		c.removeLocked(el)
	}
	el := c.ll.PushFront(&cacheEntry{key: ck, entries: entries, expires: c.now().Add(c.ttl)})
	c.items[ck] = el
	m, ok := c.byID[ck.id]
	if !ok {
		m = make(map[int]*list.Element, 2)
		c.byID[ck.id] = m
	}
	m[ck.topN] = el
	for c.ll.Len() > c.cap {
		c.removeLocked(c.ll.Back())
	}
}

func (c *Cached) removeLocked(el *list.Element) {
	ce := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, ce.key)
	if m, ok := c.byID[ce.key.id]; ok {
		delete(m, ce.key.topN)
		if len(m) == 0 {
			delete(c.byID, ce.key.id)
		}
	}
}

var (
	_ Store   = (*Cached)(nil)
	_ Counter = (*Cached)(nil)
)
