package dht

import (
	"bufio"
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"dharma/internal/kadid"
	"dharma/internal/wire"
)

// maxCacheRecordLen bounds one snapshot record so a corrupt length
// varint cannot trigger a huge allocation on warm.
const maxCacheRecordLen = 16 << 20

// Cache persistence. A Cached is an in-memory structure, so a restart
// used to throw the hot set away and pay a full overlay lookup per
// block to rebuild it — exactly the reads the cache exists to absorb.
// SaveSnapshot writes the cache contents (with their absolute expiry
// times) alongside the node's durable store; WarmSnapshot reloads them,
// dropping whatever expired while the process was down. The TTL
// contract survives the reboot unchanged: a warmed entry expires at the
// same instant it would have, had the process kept running.
//
// The snapshot is advisory state: a corrupt or truncated file warms
// whatever prefix was intact and discards the rest (the cache refills
// from the overlay either way), but never fails the boot.

// cacheSnapMagic identifies a cache snapshot file and its version.
var cacheSnapMagic = []byte("DHRC\x01")

// SaveSnapshot atomically writes the cache contents to path
// (temp-file-and-rename, fsynced), least recently used first so a
// sequential reload reconstructs the LRU order.
func (c *Cached) SaveSnapshot(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".readcache-*")
	if err != nil {
		return fmt.Errorf("dht: cache snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) //nolint:errcheck // no-op after the rename
	w := bufio.NewWriter(tmp)

	c.mu.Lock()
	err = c.writeLocked(w)
	c.mu.Unlock()
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		return fmt.Errorf("dht: cache snapshot: %w", err)
	}
	return nil
}

// writeLocked streams every record: magic, then per cache entry a
// header of (expiry unix-nanos, topN, payload length) varints followed
// by a wire-encoded KindValue message carrying the block key and
// entries — the same codec the entries crossed the network in.
func (c *Cached) writeLocked(w *bufio.Writer) error {
	if _, err := w.Write(cacheSnapMagic); err != nil {
		return err
	}
	var hdr [3 * binary.MaxVarintLen64]byte
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		ce := el.Value.(*cacheEntry)
		payload := wire.Encode(&wire.Message{
			Kind:    wire.KindValue,
			Target:  ce.key.id,
			Entries: ce.entries,
		})
		n := binary.PutVarint(hdr[:], ce.expires.UnixNano())
		n += binary.PutVarint(hdr[n:], int64(ce.key.topN))
		n += binary.PutUvarint(hdr[n:], uint64(len(payload)))
		if _, err := w.Write(hdr[:n]); err != nil {
			return err
		}
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// WarmSnapshot loads a snapshot written by SaveSnapshot, skipping
// entries that expired while the process was down. A missing file is a
// cold start, not an error; a corrupt tail warms the intact prefix.
// Returns how many entries were warmed.
func (c *Cached) WarmSnapshot(path string) (int, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("dht: cache warm: %w", err)
	}
	defer f.Close() //nolint:errcheck // read-only
	r := bufio.NewReader(f)

	magic := make([]byte, len(cacheSnapMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != string(cacheSnapMagic) {
		return 0, nil // not a snapshot (or empty): cold start
	}

	warmed := 0
	for {
		expires, err := binary.ReadVarint(r)
		if err != nil {
			break // clean EOF or corrupt tail: keep what we have
		}
		topN, err := binary.ReadVarint(r)
		if err != nil {
			break
		}
		plen, err := binary.ReadUvarint(r)
		if err != nil || plen > maxCacheRecordLen {
			break
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			break
		}
		m, err := wire.Decode(payload)
		if err != nil || m.Kind != wire.KindValue {
			break
		}
		if c.warm(m.Target, int(topN), m.Entries, time.Unix(0, expires)) {
			warmed++
		}
	}
	return warmed, nil
}

// warm inserts a reloaded entry with its original absolute expiry;
// already-expired entries are dropped (reported as false).
func (c *Cached) warm(id kadid.ID, topN int, entries []wire.Entry, expires time.Time) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.now().Before(expires) {
		return false
	}
	ck := cacheKey{id: id, topN: topN}
	if el, ok := c.items[ck]; ok {
		c.removeLocked(el)
	}
	el := c.ll.PushFront(&cacheEntry{key: ck, entries: entries, expires: expires})
	c.items[ck] = el
	m, ok := c.byID[ck.id]
	if !ok {
		m = make(map[int]*list.Element, 2)
		c.byID[ck.id] = m
	}
	m[ck.topN] = el
	for c.ll.Len() > c.cap {
		c.removeLocked(c.ll.Back())
	}
	return true
}
