package dht

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dharma/internal/kadid"
	"dharma/internal/wire"
)

func TestBatchingCoalescesSameKey(t *testing.T) {
	l := NewLocal()
	b := NewBatching(l, time.Hour) // window far beyond the test; Flush drives it
	key := kadid.HashString("hot")

	var wg sync.WaitGroup
	const writers = 8
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := b.Append(context.Background(), key, []wire.Entry{{Field: "t", Count: 1}}); err != nil {
				t.Error(err)
			}
		}()
	}
	// Wait until every writer has enqueued, then flush once.
	for b.Enqueued() < writers {
		time.Sleep(time.Millisecond)
	}
	b.Flush()
	wg.Wait()

	if got := l.Appends(); got != 1 {
		t.Fatalf("%d physical appends, want 1 (coalesced)", got)
	}
	if b.Coalesced() != writers-1 {
		t.Fatalf("Coalesced = %d, want %d", b.Coalesced(), writers-1)
	}
	es, err := b.Get(context.Background(), key, 0)
	if err != nil || len(es) != 1 || es[0].Count != writers {
		t.Fatalf("merged read: %+v, %v", es, err)
	}
}

func TestBatchingWindowFlushes(t *testing.T) {
	l := NewLocal()
	b := NewBatching(l, time.Millisecond)
	key := kadid.HashString("k")
	if err := b.Append(context.Background(), key, []wire.Entry{{Field: "a", Count: 1}}); err != nil {
		t.Fatal(err)
	}
	// Append blocks until the window flushed, so the write is visible.
	es, err := l.Get(context.Background(), key, 0)
	if err != nil || es[0].Count != 1 {
		t.Fatalf("window flush did not land: %+v, %v", es, err)
	}
}

func TestBatchingGetFlushesPendingKey(t *testing.T) {
	// A client must observe its own writes: a Get on a key with a
	// pending append forces the flush first (the engine's Tag reads r̄
	// immediately before appending to it).
	l := NewLocal()
	b := NewBatching(l, time.Hour)
	key := kadid.HashString("k")

	done := make(chan error, 1)
	go func() { done <- b.Append(context.Background(), key, []wire.Entry{{Field: "a", Count: 3}}) }()
	for b.Enqueued() == 0 {
		time.Sleep(time.Millisecond)
	}
	es, err := b.Get(context.Background(), key, 0)
	if err != nil || len(es) != 1 || es[0].Count != 3 {
		t.Fatalf("read-your-writes failed: %+v, %v", es, err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// failingAppendStore fails every write; reads succeed on nothing. Like
// any real Store it must tolerate concurrent calls (flush timers for
// different keys run in parallel).
type failingAppendStore struct{ calls atomic.Int64 }

func (f *failingAppendStore) Append(context.Context, kadid.ID, []wire.Entry) error {
	return fmt.Errorf("append %d down", f.calls.Add(1))
}
func (f *failingAppendStore) AppendBatch(ctx context.Context, items []BatchItem) error {
	errs := make([]error, len(items))
	for i := range items {
		errs[i] = f.Append(context.Background(), items[i].Key, items[i].Entries)
	}
	return errors.Join(errs...)
}
func (f *failingAppendStore) Get(context.Context, kadid.ID, int) ([]wire.Entry, error) {
	return nil, ErrNotFound
}

func TestBatchingReportsFlushErrorToEveryWaiter(t *testing.T) {
	b := NewBatching(&failingAppendStore{}, time.Hour)
	key := kadid.HashString("k")
	const writers = 4
	errs := make(chan error, writers)
	for i := 0; i < writers; i++ {
		go func() { errs <- b.Append(context.Background(), key, []wire.Entry{{Field: "a", Count: 1}}) }()
	}
	for b.Enqueued() < writers {
		time.Sleep(time.Millisecond)
	}
	b.Flush()
	for i := 0; i < writers; i++ {
		if err := <-errs; err == nil {
			t.Fatal("a coalesced writer did not receive the flush error")
		}
	}
}

func TestBatchingAppendBatchJoinsErrors(t *testing.T) {
	b := NewBatching(&failingAppendStore{}, time.Millisecond)
	err := b.AppendBatch(context.Background(), []BatchItem{
		{Key: kadid.HashString("k1"), Entries: []wire.Entry{{Field: "a", Count: 1}}},
		{Key: kadid.HashString("k2"), Entries: []wire.Entry{{Field: "b", Count: 1}}},
	})
	if err == nil {
		t.Fatal("batch against a failing store reported success")
	}
}

func TestBatchingCounterDelegates(t *testing.T) {
	l := NewLocal()
	b := NewBatching(l, time.Millisecond)
	key := kadid.HashString("k")
	if err := b.Append(context.Background(), key, []wire.Entry{{Field: "a", Count: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get(context.Background(), key, 0); err != nil {
		t.Fatal(err)
	}
	// Table-I accounting flows through the existing Counter interface:
	// the physical lookups the inner store performed.
	if b.Appends() != l.Appends() || b.Gets() != l.Gets() || b.Lookups() != l.Lookups() {
		t.Fatalf("counter drift: batching (%d,%d,%d) vs inner (%d,%d,%d)",
			b.Appends(), b.Gets(), b.Lookups(), l.Appends(), l.Gets(), l.Lookups())
	}
}

func TestBatchingConcurrentMixedUse(t *testing.T) {
	l := NewLocal()
	b := NewBatching(l, 200*time.Microsecond)
	keys := make([]kadid.ID, 8)
	for i := range keys {
		keys[i] = kadid.HashString(fmt.Sprintf("k%d", i))
	}
	var wg sync.WaitGroup
	const goroutines, perG = 8, 50
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				key := keys[(g+i)%len(keys)]
				if i%3 == 0 {
					b.Get(context.Background(), key, 10)
				} else if err := b.Append(context.Background(), key, []wire.Entry{{Field: "t", Count: 1}}); err != nil {
					t.Error(err)
				}
			}
		}(g)
	}
	wg.Wait()
	b.Flush()

	// Token conservation across coalesced flushes.
	var total uint64
	for _, key := range keys {
		es, err := b.Get(context.Background(), key, 0)
		if err != nil {
			continue
		}
		for _, e := range es {
			total += e.Count
		}
	}
	var want uint64
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			if i%3 != 0 {
				want++
			}
		}
	}
	if total != want {
		t.Fatalf("lost tokens through batching: got %d, want %d", total, want)
	}
}

// slowAppendStore delays every physical append, standing in for a
// congested overlay.
type slowAppendStore struct {
	inner Store
	delay time.Duration
}

func (s *slowAppendStore) Append(ctx context.Context, key kadid.ID, entries []wire.Entry) error {
	time.Sleep(s.delay)
	return s.inner.Append(ctx, key, entries)
}
func (s *slowAppendStore) AppendBatch(ctx context.Context, items []BatchItem) error {
	time.Sleep(s.delay)
	return s.inner.AppendBatch(ctx, items)
}
func (s *slowAppendStore) Get(ctx context.Context, key kadid.ID, topN int) ([]wire.Entry, error) {
	return s.inner.Get(ctx, key, topN)
}

// TestBatchingAppendCtxCancel: a committer whose context ends stops
// waiting immediately and gets the context error; the group still
// flushes (it may carry other callers' entries), so the write lands.
func TestBatchingAppendCtxCancel(t *testing.T) {
	inner := &slowAppendStore{inner: NewLocal(), delay: 100 * time.Millisecond}
	b := NewBatching(inner, time.Millisecond)
	key := kadid.HashString("slow-key")

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := b.Append(ctx, key, []wire.Entry{{Field: "f", Count: 1}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Append = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 90*time.Millisecond {
		t.Fatalf("canceled Append blocked %v on the flush", elapsed)
	}

	// The abandoned append still flushes on its own schedule: outcome
	// unknown to the canceller means "maybe written", and here it lands
	// once the slow inner append completes.
	deadline := time.Now().Add(2 * time.Second)
	for {
		es, err := b.Get(context.Background(), key, 0)
		if err == nil && len(es) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("abandoned append never flushed: entries=%v err=%v", es, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
