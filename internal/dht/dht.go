// Package dht exposes the block-store abstraction DHARMA is written
// against. The paper assumes "retrieving or modifying the content of a
// block on the DHT costs only one overlay lookup operation", provided
// the overlay offers PUT and GET primitives; this package provides those
// primitives and the lookup accounting that Table I is stated in.
//
// Two implementations are provided:
//
//   - Overlay: backed by a live Kademlia node (internal/kademlia); every
//     operation performs one iterative overlay lookup plus the replica
//     RPCs, exactly like a deployment.
//   - Local: backed by an in-process block store with identical
//     semantics; used to run the paper's large-scale graph simulations
//     without paying network costs that the experiment does not measure.
//
// Both count operations, so experiments can assert the costs of Table I
// regardless of the backing.
package dht

import (
	"errors"
	"sync/atomic"

	"dharma/internal/kademlia"
	"dharma/internal/kadid"
	"dharma/internal/likir"
	"dharma/internal/wire"
)

// ErrNotFound is returned by Get when no block exists under a key.
var ErrNotFound = errors.New("dht: block not found")

// Store is the PUT/GET interface DHARMA's engine runs on. Append merges
// entries into the block under key ("one-bit token" semantics: counts
// add up, data replaces); Get returns the block's entries sorted by
// descending count, truncated to topN when topN > 0.
type Store interface {
	Append(key kadid.ID, entries []wire.Entry) error
	Get(key kadid.ID, topN int) ([]wire.Entry, error)
}

// Counter reports how many block operations (the paper's "overlay
// lookups") a store has performed.
type Counter interface {
	Appends() int64
	Gets() int64
	// Lookups is Appends + Gets: the total cost in Table I units.
	Lookups() int64
}

// Local is an in-process Store. It reuses the same storage the overlay
// nodes use, so append/filter semantics are identical to a deployment.
type Local struct {
	store   *kademlia.Store
	appends atomic.Int64
	gets    atomic.Int64
}

// NewLocal creates an empty in-process store.
func NewLocal() *Local {
	return &Local{store: kademlia.NewStore()}
}

// Append implements Store.
func (l *Local) Append(key kadid.ID, entries []wire.Entry) error {
	l.appends.Add(1)
	l.store.Append(key, entries)
	return nil
}

// Get implements Store.
func (l *Local) Get(key kadid.ID, topN int) ([]wire.Entry, error) {
	l.gets.Add(1)
	es, ok := l.store.Get(key, topN)
	if !ok {
		return nil, ErrNotFound
	}
	return es, nil
}

// Appends implements Counter.
func (l *Local) Appends() int64 { return l.appends.Load() }

// Gets implements Counter.
func (l *Local) Gets() int64 { return l.gets.Load() }

// Lookups implements Counter.
func (l *Local) Lookups() int64 { return l.appends.Load() + l.gets.Load() }

// Raw exposes the underlying block store (for inspection in tests and
// the hotspot experiment).
func (l *Local) Raw() *kademlia.Store { return l.store }

// Overlay is a Store backed by a live Kademlia node. When Signer is
// set, entries that carry Data (URI blocks) are signed before storing,
// as Likir prescribes.
type Overlay struct {
	node    *kademlia.Node
	signer  *likir.Identity
	appends atomic.Int64
	gets    atomic.Int64
}

// NewOverlay wraps a bootstrapped node. signer may be nil (open overlay).
func NewOverlay(node *kademlia.Node, signer *likir.Identity) *Overlay {
	return &Overlay{node: node, signer: signer}
}

// Append implements Store: one iterative lookup locates the replica set,
// then the entries are stored on the k closest nodes.
func (o *Overlay) Append(key kadid.ID, entries []wire.Entry) error {
	o.appends.Add(1)
	if o.signer != nil {
		signed := make([]wire.Entry, len(entries))
		for i, e := range entries {
			if len(e.Data) > 0 && len(e.Sig) == 0 {
				o.signer.SignEntry(key, &e)
			}
			signed[i] = e
		}
		entries = signed
	}
	_, err := o.node.Store(key, entries)
	return err
}

// Get implements Store: one iterative value lookup.
func (o *Overlay) Get(key kadid.ID, topN int) ([]wire.Entry, error) {
	o.gets.Add(1)
	es, err := o.node.FindValue(key, topN)
	if errors.Is(err, kademlia.ErrNotFound) {
		return nil, ErrNotFound
	}
	return es, err
}

// Appends implements Counter.
func (o *Overlay) Appends() int64 { return o.appends.Load() }

// Gets implements Counter.
func (o *Overlay) Gets() int64 { return o.gets.Load() }

// Lookups implements Counter.
func (o *Overlay) Lookups() int64 { return o.appends.Load() + o.gets.Load() }

// Node exposes the backing overlay node.
func (o *Overlay) Node() *kademlia.Node { return o.node }

var (
	_ Store   = (*Local)(nil)
	_ Counter = (*Local)(nil)
	_ Store   = (*Overlay)(nil)
	_ Counter = (*Overlay)(nil)
)
