// Package dht exposes the block-store abstraction DHARMA is written
// against. The paper assumes "retrieving or modifying the content of a
// block on the DHT costs only one overlay lookup operation", provided
// the overlay offers PUT and GET primitives; this package provides those
// primitives and the lookup accounting that Table I is stated in.
//
// Two implementations are provided:
//
//   - Overlay: backed by a live Kademlia node (internal/kademlia); every
//     operation performs one iterative overlay lookup plus the replica
//     RPCs, exactly like a deployment.
//   - Local: backed by an in-process block store with identical
//     semantics; used to run the paper's large-scale graph simulations
//     without paying network costs that the experiment does not measure.
//
// Both count operations, so experiments can assert the costs of Table I
// regardless of the backing.
package dht

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"dharma/internal/kademlia"
	"dharma/internal/kadid"
	"dharma/internal/likir"
	"dharma/internal/wire"
)

// ErrNotFound is returned by Get when no block exists under a key.
var ErrNotFound = errors.New("dht: block not found")

// BatchItem is one (key, entries) pair of a multi-block append; it is
// the storage layer's batch unit re-exported for engine use.
type BatchItem = kademlia.BatchItem

// Store is the PUT/GET interface DHARMA's engine runs on. Append merges
// entries into the block under key ("one-bit token" semantics: counts
// add up, data replaces); Get returns the block's entries sorted by
// descending count, truncated to topN when topN > 0.
//
// AppendBatch applies a group of independent appends — distinct keys,
// commutative merges — as one call. Each item still costs one Table-I
// lookup (the paper's cost model counts block operations, and a batch
// of n items is n block operations), but implementations are free to
// execute the items with fewer lock acquisitions or in parallel.
//
// Every operation takes a context as its first argument and honors
// cancellation and deadlines: an overlay-backed store aborts its
// in-flight lookup and replica RPCs and returns the context error. A
// write abandoned this way may still have landed on some replicas —
// exactly like a write whose acknowledgement was lost on the wire — so
// callers must treat a context error as "outcome unknown", never as
// "not written".
type Store interface {
	Append(ctx context.Context, key kadid.ID, entries []wire.Entry) error
	AppendBatch(ctx context.Context, items []BatchItem) error
	Get(ctx context.Context, key kadid.ID, topN int) ([]wire.Entry, error)
}

// Counter reports how many block operations (the paper's "overlay
// lookups") a store has performed.
type Counter interface {
	Appends() int64
	Gets() int64
	// Lookups is Appends + Gets: the total cost in Table I units.
	Lookups() int64
}

// Local is an in-process Store. It reuses the same storage the overlay
// nodes use, so append/filter semantics are identical to a deployment.
type Local struct {
	store   *kademlia.Store
	appends atomic.Int64
	gets    atomic.Int64
}

// NewLocal creates an empty in-process store.
func NewLocal() *Local {
	return &Local{store: kademlia.NewStore()}
}

// Append implements Store. The in-process store cannot block on a
// network, but it still refuses work under an already-ended context so
// local and overlay deployments surface identical semantics.
func (l *Local) Append(ctx context.Context, key kadid.ID, entries []wire.Entry) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	l.appends.Add(1)
	return l.store.Append(ctx, key, entries)
}

// AppendBatch implements Store: the items are applied in one pass over
// the sharded store (each shard's lock taken once). The lookup counter
// advances by one per item, keeping Table-I accounting identical to a
// loop of Appends.
func (l *Local) AppendBatch(ctx context.Context, items []BatchItem) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	l.appends.Add(int64(len(items)))
	return l.store.AppendBatch(ctx, items)
}

// Get implements Store.
func (l *Local) Get(ctx context.Context, key kadid.ID, topN int) ([]wire.Entry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	l.gets.Add(1)
	es, ok := l.store.Get(key, topN)
	if !ok {
		return nil, ErrNotFound
	}
	return es, nil
}

// Appends implements Counter.
func (l *Local) Appends() int64 { return l.appends.Load() }

// Gets implements Counter.
func (l *Local) Gets() int64 { return l.gets.Load() }

// Lookups implements Counter.
func (l *Local) Lookups() int64 { return l.appends.Load() + l.gets.Load() }

// Raw exposes the underlying block store (for inspection in tests and
// the hotspot experiment).
func (l *Local) Raw() *kademlia.Store { return l.store }

// Overlay is a Store backed by a live Kademlia node. When Signer is
// set, entries that carry Data (URI blocks) are signed before storing,
// as Likir prescribes.
type Overlay struct {
	node    *kademlia.Node
	signer  *likir.Identity
	appends atomic.Int64
	gets    atomic.Int64
}

// NewOverlay wraps a bootstrapped node. signer may be nil (open overlay).
func NewOverlay(node *kademlia.Node, signer *likir.Identity) *Overlay {
	return &Overlay{node: node, signer: signer}
}

// Append implements Store: one iterative lookup locates the replica set,
// then the entries are stored on the k closest nodes.
func (o *Overlay) Append(ctx context.Context, key kadid.ID, entries []wire.Entry) error {
	o.appends.Add(1)
	_, err := o.node.Store(ctx, key, o.sign(key, entries))
	return err
}

// AppendBatch implements Store. Each item is one overlay store (one
// iterative lookup plus the replica RPCs, and one Table-I lookup on the
// counter); the items target distinct keys and commute, so they are
// issued concurrently — a batch costs the latency of the slowest item,
// not the sum. All failures are reported, joined.
func (o *Overlay) AppendBatch(ctx context.Context, items []BatchItem) error {
	o.appends.Add(int64(len(items)))
	if len(items) == 1 {
		_, err := o.node.Store(ctx, items[0].Key, o.sign(items[0].Key, items[0].Entries))
		return err
	}
	errs := make([]error, len(items))
	var wg sync.WaitGroup
	for i, it := range items {
		wg.Add(1)
		go func(i int, it BatchItem) {
			defer wg.Done()
			_, err := o.node.Store(ctx, it.Key, o.sign(it.Key, it.Entries))
			errs[i] = err
		}(i, it)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// sign signs entries that carry Data but no signature yet, when the
// overlay has a Likir identity attached.
func (o *Overlay) sign(key kadid.ID, entries []wire.Entry) []wire.Entry {
	if o.signer == nil {
		return entries
	}
	signed := make([]wire.Entry, len(entries))
	for i, e := range entries {
		if len(e.Data) > 0 && len(e.Sig) == 0 {
			e.Author, e.Sig = o.signer.SignEntry(key, e.Field, e.Data)
		}
		signed[i] = e
	}
	return signed
}

// Get implements Store: one iterative value lookup.
func (o *Overlay) Get(ctx context.Context, key kadid.ID, topN int) ([]wire.Entry, error) {
	o.gets.Add(1)
	es, err := o.node.FindValue(ctx, key, topN)
	if errors.Is(err, kademlia.ErrNotFound) {
		return nil, ErrNotFound
	}
	return es, err
}

// Appends implements Counter.
func (o *Overlay) Appends() int64 { return o.appends.Load() }

// Gets implements Counter.
func (o *Overlay) Gets() int64 { return o.gets.Load() }

// Lookups implements Counter.
func (o *Overlay) Lookups() int64 { return o.appends.Load() + o.gets.Load() }

// Node exposes the backing overlay node.
func (o *Overlay) Node() *kademlia.Node { return o.node }

var (
	_ Store   = (*Local)(nil)
	_ Counter = (*Local)(nil)
	_ Store   = (*Overlay)(nil)
	_ Counter = (*Overlay)(nil)
)
