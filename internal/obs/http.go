package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Handler builds the live ops endpoint served on `dharma-node serve
// -debug-addr`:
//
//	/metrics        Prometheus text exposition of reg
//	/debug/stats    JSON from stats() (Peer.Stats snapshot)
//	/debug/traces   JSON from traces() (recent slow/sampled lookup traces)
//	/debug/pprof/*  the standard runtime profiles
//
// stats and traces may be nil; their routes then answer 404. pprof is
// wired explicitly rather than via the net/http/pprof side-effect
// import so nothing leaks onto http.DefaultServeMux.
func Handler(reg *Registry, stats func() any, traces func() any) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	if stats != nil {
		mux.HandleFunc("/debug/stats", func(w http.ResponseWriter, _ *http.Request) {
			serveJSON(w, stats())
		})
	}
	if traces != nil {
		mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, _ *http.Request) {
			serveJSON(w, traces())
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func serveJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
