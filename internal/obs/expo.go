package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered instrument in the Prometheus
// text exposition format (version 0.0.4), sorted by metric name.
// Duration histograms expose `le` bounds and `_sum` in seconds, the
// Prometheus base unit; value histograms expose raw sample bounds.
// Scraping is the cold path: it allocates freely.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	for _, e := range r.snapshot() {
		writeEntry(&b, e)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeEntry(b *strings.Builder, e *entry) {
	if e.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", e.name, e.help)
	}
	switch e.kind {
	case kindCounter:
		fmt.Fprintf(b, "# TYPE %s counter\n", e.name)
		if len(e.labels) == 0 {
			fmt.Fprintf(b, "%s %d\n", e.name, e.counter.Load())
			return
		}
		for i, lv := range e.labels {
			writeName(b, e.name, e.label, lv, "")
			fmt.Fprintf(b, " %d\n", e.counters[i].Load())
		}
	case kindCounterFunc:
		fmt.Fprintf(b, "# TYPE %s counter\n%s %d\n", e.name, e.name, e.fn())
	case kindGauge:
		fmt.Fprintf(b, "# TYPE %s gauge\n%s %d\n", e.name, e.name, e.gauge.Load())
	case kindGaugeFunc:
		fmt.Fprintf(b, "# TYPE %s gauge\n%s %d\n", e.name, e.name, e.fn())
	case kindHistogram, kindValueHist:
		fmt.Fprintf(b, "# TYPE %s histogram\n", e.name)
		if len(e.labels) == 0 {
			writeHistogram(b, e.name, "", "", e.hists[0], e.kind == kindHistogram)
			return
		}
		for i, lv := range e.labels {
			writeHistogram(b, e.name, e.label, lv, e.hists[i], e.kind == kindHistogram)
		}
	}
}

// writeHistogram emits one histogram series (optionally labeled).
// Buckets above the highest nonzero one are elided — the +Inf bucket
// carries the total — keeping 48-bucket output readable.
func writeHistogram(b *strings.Builder, name, label, lv string, h *Histogram, seconds bool) {
	s := h.Snapshot()
	top := -1
	for i := range s.Buckets {
		if s.Buckets[i] != 0 {
			top = i
		}
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += s.Buckets[i]
		bound := formatBound(bucketUpper(i), seconds)
		writeName(b, name+"_bucket", label, lv, `le="`+bound+`"`)
		fmt.Fprintf(b, " %d\n", cum)
	}
	writeName(b, name+"_bucket", label, lv, `le="+Inf"`)
	fmt.Fprintf(b, " %d\n", s.Count)
	writeName(b, name+"_sum", label, lv, "")
	if seconds {
		fmt.Fprintf(b, " %s\n", strconv.FormatFloat(float64(s.Sum)/1e9, 'g', -1, 64))
	} else {
		fmt.Fprintf(b, " %d\n", s.Sum)
	}
	writeName(b, name+"_count", label, lv, "")
	fmt.Fprintf(b, " %d\n", s.Count)
}

// writeName emits `name{label="lv",extra}` with whichever parts are set.
func writeName(b *strings.Builder, name, label, lv, extra string) {
	b.WriteString(name)
	if label == "" && extra == "" {
		return
	}
	b.WriteByte('{')
	if label != "" {
		b.WriteString(label)
		b.WriteString(`="`)
		b.WriteString(lv)
		b.WriteByte('"')
		if extra != "" {
			b.WriteByte(',')
		}
	}
	b.WriteString(extra)
	b.WriteByte('}')
}

// formatBound renders a bucket's upper bound: seconds with full float
// precision for duration histograms, a plain integer for value ones.
func formatBound(upper int64, seconds bool) string {
	if !seconds {
		return strconv.FormatInt(upper, 10)
	}
	return strconv.FormatFloat(float64(upper)/1e9, 'g', -1, 64)
}
