package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestExpositionRoundTrip renders a populated registry and parses it
// back with the scrape-side parser — the two halves of the pipeline
// must agree on every value.
func TestExpositionRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dharma_rpc_total", "RPCs served.").Add(42)
	reg.Gauge("dharma_inflight", "In-flight requests.").Set(7)
	reg.CounterFunc("dharma_busy_total", "Busy rejections.", func() int64 { return 13 })
	reg.GaugeFunc("dharma_table_peers", "Routing table size.", func() int64 { return 99 })

	h := reg.Histogram("dharma_lookup_seconds", "Lookup wall time.")
	for i := 0; i < 1000; i++ {
		h.Observe(time.Duration(i+1) * time.Millisecond)
	}
	rounds := reg.ValueHistogram("dharma_lookup_rounds", "Rounds per lookup.")
	for i := 0; i < 100; i++ {
		rounds.ObserveN(int64(3 + i%5))
	}
	vec := reg.HistogramVec("dharma_rpc_seconds", "Serve latency by kind.",
		"kind", []string{"PING", "FIND_NODE"})
	vec.At(0).Observe(time.Millisecond)
	vec.At(1).Observe(10 * time.Millisecond)
	vec.At(1).Observe(20 * time.Millisecond)
	cvec := reg.CounterVec("dharma_rpc_bytes_total", "Bytes by kind.",
		"kind", []string{"PING", "FIND_NODE"})
	cvec.At(0).Add(128)
	cvec.At(1).Add(4096)
	cvec.At(99).Add(1) // out of range: no-op, not a panic

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	got, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse back: %v\n%s", err, text)
	}
	if m := got["dharma_rpc_total"]; m == nil || m.Value != 42 {
		t.Fatalf("counter round trip: %+v", m)
	}
	if m := got["dharma_inflight"]; m == nil || m.Value != 7 || m.Type != "gauge" {
		t.Fatalf("gauge round trip: %+v", m)
	}
	if m := got["dharma_busy_total"]; m == nil || m.Value != 13 {
		t.Fatalf("counter func round trip: %+v", m)
	}
	if m := got["dharma_table_peers"]; m == nil || m.Value != 99 {
		t.Fatalf("gauge func round trip: %+v", m)
	}
	if m := got["dharma_lookup_seconds"]; m == nil || m.Count != 1000 {
		t.Fatalf("histogram round trip: %+v", m)
	}
	if m := got["dharma_lookup_rounds"]; m == nil || m.Count != 100 {
		t.Fatalf("value histogram round trip: %+v", m)
	}
	if m := got["dharma_rpc_seconds{FIND_NODE}"]; m == nil || m.Count != 2 {
		t.Fatalf("labeled histogram round trip: %+v", m)
	}
	if m := got["dharma_rpc_seconds{PING}"]; m == nil || m.Count != 1 {
		t.Fatalf("labeled histogram round trip: %+v", m)
	}
	if m := got["dharma_rpc_bytes_total{FIND_NODE}"]; m == nil || m.Value != 4096 {
		t.Fatalf("labeled counter round trip: %+v", m)
	}

	// The scraped p50 of a 1..1000ms uniform sample must land within a
	// factor of two of 500ms, in seconds.
	p50 := got["dharma_lookup_seconds"].Quantile(50)
	if p50 < 0.25 || p50 > 1.0 {
		t.Fatalf("scraped p50 = %v s, want within [0.25, 1.0]", p50)
	}

	// Spot-check the text format itself.
	for _, want := range []string{
		"# TYPE dharma_rpc_total counter",
		"# TYPE dharma_lookup_seconds histogram",
		`dharma_rpc_seconds_bucket{kind="PING",le="+Inf"} 1`,
		"dharma_lookup_seconds_count 1000",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestCumulativeBucketsMonotone: Prometheus consumers require
// cumulative bucket counts to be nondecreasing and end at _count.
func TestCumulativeBucketsMonotone(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("m", "")
	for i := 0; i < 500; i++ {
		h.ObserveN(int64(1) << uint(i%30))
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	var last uint64
	var sawInf bool
	for _, line := range strings.Split(b.String(), "\n") {
		if !strings.HasPrefix(line, "m_bucket") {
			continue
		}
		var v uint64
		if _, err := fmtSscan(line[strings.LastIndexByte(line, ' ')+1:], &v); err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("cumulative buckets decreased: %q after %d", line, last)
		}
		last = v
		if strings.Contains(line, "+Inf") {
			sawInf = true
			if v != 500 {
				t.Fatalf("+Inf bucket = %d, want 500", v)
			}
		}
	}
	if !sawInf {
		t.Fatal("no +Inf bucket emitted")
	}
}

func fmtSscan(s string, v *uint64) (int, error) {
	var err error
	var n uint64
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, &parseErr{s}
		}
		n = n*10 + uint64(s[i]-'0')
	}
	*v = n
	return 1, err
}

type parseErr struct{ s string }

func (e *parseErr) Error() string { return "not a number: " + e.s }

// TestNilRegistry: a nil registry must hand out nil instruments whose
// every method is a no-op — this is the "telemetry off" configuration
// every instrumented package relies on.
func TestNilRegistry(t *testing.T) {
	var reg *Registry
	c := reg.Counter("c", "")
	g := reg.Gauge("g", "")
	h := reg.Histogram("h", "")
	vh := reg.ValueHistogram("v", "")
	vec := reg.HistogramVec("hv", "", "k", []string{"a"})
	reg.CounterFunc("cf", "", func() int64 { return 1 })
	reg.GaugeFunc("gf", "", func() int64 { return 1 })

	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(time.Second)
	vh.ObserveN(9)
	vec.At(0).Observe(time.Second)
	vec.At(99).Observe(time.Second)
	h.Merge(vh)
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Quantile(50) != 0 {
		t.Fatal("nil instruments must read zero")
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil registry exposition: %q, %v", b.String(), err)
	}
}

func TestRegistryIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("same", "")
	b := reg.Counter("same", "")
	if a != b {
		t.Fatal("re-registering a name must return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("cross-kind re-registration must panic")
		}
	}()
	reg.Gauge("same", "")
}

// TestHandler exercises the full ops endpoint: metrics, stats JSON,
// traces JSON, and pprof.
func TestHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up", "").Inc()
	type stats struct{ Lookups int }
	h := Handler(reg,
		func() any { return stats{Lookups: 3} },
		func() any { return []string{"trace-a"} },
	)
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, b.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "up 1") {
		t.Fatalf("/metrics: %d %q", code, body)
	}
	code, body := get("/debug/stats")
	if code != 200 {
		t.Fatalf("/debug/stats: %d", code)
	}
	var s stats
	if err := json.Unmarshal([]byte(body), &s); err != nil || s.Lookups != 3 {
		t.Fatalf("/debug/stats body %q: %v", body, err)
	}
	if code, body := get("/debug/traces"); code != 200 || !strings.Contains(body, "trace-a") {
		t.Fatalf("/debug/traces: %d %q", code, body)
	}
	if code, body := get("/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}
}
