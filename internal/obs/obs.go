// Package obs is the telemetry core of the stack: a metrics registry
// whose record path allocates nothing, so instruments can sit inside
// the paths the scale refactor de-allocated (codec round trips,
// Table.Closest, lookup rounds) without moving their budgets off zero.
//
// Three instrument kinds cover the stack's needs:
//
//   - Counter: a monotone atomic total (requests served, bytes sent).
//   - Gauge: a settable point-in-time level (in-flight requests).
//   - Histogram: a fixed array of power-of-two buckets over int64
//     samples (latencies in nanoseconds, or unit-less values like
//     lookup rounds), mergeable across instances, with p50/p99
//     extraction. Recording is one atomic add — no locks, no
//     allocation, no time-window bookkeeping.
//
// A Registry names instruments and renders them in the Prometheus text
// exposition format (see expo.go); func-backed variants (CounterFunc,
// GaugeFunc) adapt the pre-existing atomic counters of other packages
// without double counting state.
//
// Every method is nil-receiver safe: a nil *Registry hands out nil
// instruments, and recording on a nil instrument is a no-op branch.
// Packages therefore thread an optional registry without guarding every
// record site — an un-instrumented deployment pays one predictable
// branch per record.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotone total. The zero value is ready to use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current total (0 on a nil receiver).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable level. The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge's current level. No-op on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n. No-op on a nil receiver.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Load returns the current level (0 on a nil receiver).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// kind discriminates registered instruments for exposition.
type kind uint8

const (
	kindCounter kind = iota + 1
	kindGauge
	kindCounterFunc
	kindGaugeFunc
	kindHistogram // duration histogram: samples are nanoseconds, exposed in seconds
	kindValueHist // unit-less histogram: samples exposed raw
)

// entry is one registered, named instrument.
type entry struct {
	name   string
	help   string
	kind   kind
	labels []string // label values for vec members ("" for scalars)
	label  string   // label name ("" for scalars)

	counter  *Counter
	gauge    *Gauge
	fn       func() int64
	hists    []*Histogram // one for scalars, one per label value for vecs
	counters []*Counter   // per label value, for counter vecs
}

// Registry names instruments and renders them for scraping.
// Registration happens at setup time and may allocate; the instruments
// it hands out record without allocating. A nil *Registry is a valid
// "telemetry off" registry: every constructor returns a nil instrument.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// register installs e under its name, or returns the existing entry
// when the name is taken by the same instrument kind. A re-registration
// with a different kind panics: that is a wiring bug, not runtime
// input.
func (r *Registry) register(e *entry) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.entries[e.name]; ok {
		if prev.kind != e.kind {
			panic(fmt.Sprintf("obs: %q re-registered as a different kind", e.name))
		}
		return prev
	}
	r.entries[e.name] = e
	return e
}

// Counter registers (or returns the existing) named counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	e := r.register(&entry{name: name, help: help, kind: kindCounter, counter: &Counter{}})
	return e.counter
}

// Gauge registers (or returns the existing) named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	e := r.register(&entry{name: name, help: help, kind: kindGauge, gauge: &Gauge{}})
	return e.gauge
}

// CounterFunc registers a counter whose value is read from f at scrape
// time — the adapter for totals other packages already keep in atomics.
func (r *Registry) CounterFunc(name, help string, f func() int64) {
	if r == nil {
		return
	}
	r.register(&entry{name: name, help: help, kind: kindCounterFunc, fn: f})
}

// GaugeFunc registers a gauge whose level is read from f at scrape time.
func (r *Registry) GaugeFunc(name, help string, f func() int64) {
	if r == nil {
		return
	}
	r.register(&entry{name: name, help: help, kind: kindGaugeFunc, fn: f})
}

// Histogram registers (or returns the existing) named duration
// histogram: samples are nanoseconds and the exposition renders bucket
// bounds and sums in seconds, the Prometheus convention.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	e := r.register(&entry{name: name, help: help, kind: kindHistogram, hists: []*Histogram{new(Histogram)}})
	return e.hists[0]
}

// ValueHistogram registers a unit-less histogram (lookup rounds,
// candidate counts): samples are exposed raw.
func (r *Registry) ValueHistogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	e := r.register(&entry{name: name, help: help, kind: kindValueHist, hists: []*Histogram{new(Histogram)}})
	return e.hists[0]
}

// HistogramVec registers a family of duration histograms distinguished
// by one label (e.g. per-RPC-kind serve latency). The label value set
// is fixed at registration; At(i) addresses the i-th member.
func (r *Registry) HistogramVec(name, help, label string, values []string) *HistogramVec {
	if r == nil {
		return nil
	}
	hs := make([]*Histogram, len(values))
	for i := range hs {
		hs[i] = new(Histogram)
	}
	e := r.register(&entry{
		name: name, help: help, kind: kindHistogram,
		label: label, labels: append([]string(nil), values...), hists: hs,
	})
	return &HistogramVec{hists: e.hists}
}

// CounterVec registers a family of counters distinguished by one label
// (e.g. per-RPC-kind request bytes). Like HistogramVec, the value set
// is fixed at registration and members are addressed by index.
func (r *Registry) CounterVec(name, help, label string, values []string) *CounterVec {
	if r == nil {
		return nil
	}
	cs := make([]*Counter, len(values))
	for i := range cs {
		cs[i] = &Counter{}
	}
	e := r.register(&entry{
		name: name, help: help, kind: kindCounter,
		label: label, labels: append([]string(nil), values...), counters: cs,
	})
	return &CounterVec{counters: e.counters}
}

// CounterVec is a fixed family of counters indexed by label position.
type CounterVec struct {
	counters []*Counter
}

// At returns the i-th member counter, nil when the vec is nil or the
// index is out of range (recording on it is then a no-op).
func (v *CounterVec) At(i int) *Counter {
	if v == nil || i < 0 || i >= len(v.counters) {
		return nil
	}
	return v.counters[i]
}

// HistogramVec is a fixed family of histograms indexed by label
// position. The record path is an array index — no map lookups.
type HistogramVec struct {
	hists []*Histogram
}

// At returns the i-th member histogram, nil when the vec is nil or the
// index is out of range (recording on it is then a no-op).
func (v *HistogramVec) At(i int) *Histogram {
	if v == nil || i < 0 || i >= len(v.hists) {
		return nil
	}
	return v.hists[i]
}

// snapshot returns the registered entries sorted by name; values are
// read later, per entry, so a scrape sees near-consistent state without
// holding the registry lock across user callbacks.
func (r *Registry) snapshot() []*entry {
	r.mu.Lock()
	out := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
