package obs

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"dharma/internal/metrics"
)

// TestQuantileMatchesPercentile cross-checks histogram quantiles
// against the exact nearest-rank metrics.Percentile on random samples.
// Power-of-two buckets promise factor-of-two resolution: the reported
// quantile q must be the lower bound of the bucket holding the exact
// nearest-rank value v, i.e. q <= v < 2q (q == v == 0 for v <= 0).
func TestQuantileMatchesPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(2000)
		h := new(Histogram)
		sample := make([]float64, n)
		for i := range sample {
			// Mix of magnitudes: ns-scale latencies from ~1µs to ~4s.
			v := int64(1000) << uint(rng.Intn(22))
			v += rng.Int63n(v)
			h.ObserveN(v)
			sample[i] = float64(v)
		}
		for _, p := range []float64{0, 10, 50, 90, 99, 99.9, 100} {
			exact := metrics.Percentile(sample, p)
			got := h.Quantile(p)
			if exact <= 0 {
				if got != 0 {
					t.Fatalf("trial %d p%v: exact %v but histogram %d", trial, p, exact, got)
				}
				continue
			}
			if float64(got) > exact || exact >= float64(2*got) {
				t.Fatalf("trial %d p%v: exact %v outside [q, 2q) for q=%d (n=%d)",
					trial, p, exact, got, n)
			}
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var h Histogram
	if q := h.Quantile(50); q != 0 {
		t.Fatalf("empty histogram p50 = %d, want 0", q)
	}
	var nilH *Histogram
	nilH.Observe(time.Second) // must not panic
	if q := nilH.Quantile(99); q != 0 {
		t.Fatalf("nil histogram p99 = %d, want 0", q)
	}
	h.ObserveN(-5)
	h.ObserveN(0)
	if q := h.Quantile(100); q != 0 {
		t.Fatalf("all-nonpositive p100 = %d, want 0", q)
	}
	h.ObserveN(1 << 62) // clamps into the last bucket without panicking
	if got := h.Count(); got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
}

// TestMergeAssociativeCommutative is the property test for Merge:
// bucket-wise addition must make (a+b)+c == a+(b+c) == (c+b)+a exactly.
func TestMergeAssociativeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randomHist := func() *Histogram {
		h := new(Histogram)
		for i, n := 0, rng.Intn(500); i < n; i++ {
			h.ObserveN(rng.Int63n(1 << 40))
		}
		return h
	}
	for trial := 0; trial < 20; trial++ {
		a, b, c := randomHist(), randomHist(), randomHist()

		left := new(Histogram) // (a+b)+c
		left.Merge(a)
		left.Merge(b)
		left.Merge(c)

		right := new(Histogram) // a+(b+c)
		bc := new(Histogram)
		bc.Merge(b)
		bc.Merge(c)
		right.Merge(a)
		right.Merge(bc)

		rev := new(Histogram) // (c+b)+a
		rev.Merge(c)
		rev.Merge(b)
		rev.Merge(a)

		ls, rs, vs := left.Snapshot(), right.Snapshot(), rev.Snapshot()
		if ls != rs {
			t.Fatalf("trial %d: merge not associative: %+v vs %+v", trial, ls, rs)
		}
		if ls != vs {
			t.Fatalf("trial %d: merge not commutative: %+v vs %+v", trial, ls, vs)
		}
	}
}

// TestConcurrentObserve hammers one histogram from many goroutines and
// checks the totals are exact — the -race run doubles as the data-race
// proof for the lock-free record path.
func TestConcurrentObserve(t *testing.T) {
	const (
		workers = 8
		perG    = 10000
	)
	h := new(Histogram)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				h.ObserveN(1 + rng.Int63n(1<<30))
			}
		}(int64(w))
	}
	// Concurrent readers must not trip the race detector either.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = h.Quantile(99)
			_ = h.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if got := h.Count(); got != workers*perG {
		t.Fatalf("count = %d, want %d", got, workers*perG)
	}
	var bucketTotal uint64
	s := h.Snapshot()
	for _, b := range s.Buckets {
		bucketTotal += b
	}
	if bucketTotal != workers*perG {
		t.Fatalf("bucket total = %d, want %d", bucketTotal, workers*perG)
	}
	if s.Sum <= 0 {
		t.Fatalf("sum = %d, want positive", s.Sum)
	}
}

func TestBucketBounds(t *testing.T) {
	for _, v := range []int64{1, 2, 3, 7, 8, 1023, 1024, 1 << 40} {
		i := bucketIndex(v)
		if lo, hi := bucketLower(i), bucketUpper(i); v < lo || v > hi {
			t.Fatalf("sample %d landed in bucket %d [%d, %d]", v, i, lo, hi)
		}
	}
	if bucketIndex(0) != 0 || bucketIndex(-1) != 0 {
		t.Fatal("nonpositive samples must land in bucket 0")
	}
}

// BenchmarkHistogramObserve is alloc-gated: recording must stay
// 0 allocs/op so instruments can live inside the codec and lookup hot
// paths without moving their budgets.
func BenchmarkHistogramObserve(b *testing.B) {
	h := new(Histogram)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveN(int64(i)*7919 + 1)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := new(Counter)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramVecObserve(b *testing.B) {
	reg := NewRegistry()
	vec := reg.HistogramVec("x", "", "kind", []string{"a", "b", "c", "d"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		vec.At(i & 3).ObserveN(int64(i))
	}
}
