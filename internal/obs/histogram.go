package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets covers int64 samples in power-of-two buckets: bucket i
// holds samples v with bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i
// (bucket 0 holds v <= 0). 48 buckets reach 2^47 ns ≈ 39 hours — far
// past any latency this stack produces; larger samples clamp into the
// last bucket.
const histBuckets = 48

// Histogram is a fixed-bucket log-scale histogram over int64 samples.
// The zero value is ready to use. Observe is one atomic add per field —
// no locks, no allocation — so it can sit inside the 0 allocs/op paths
// (codec round trip, Table.Closest, the lookup inner loop).
//
// Quantiles come back as the *lower bound* of the bucket holding the
// nearest-rank sample, so for any true sample value v the reported
// quantile q satisfies q <= v < 2q (and q == v when v is an exact
// power of two or <= 1) — a factor-of-two resolution that matches what
// power-of-two bucketing can promise.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
}

// bucketIndex maps a sample to its bucket: 0 for v <= 0, else
// bits.Len64(v) clamped to the last bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// bucketLower returns the smallest sample value landing in bucket i
// (the quantile resolution floor). Bucket 0 covers v <= 0.
func bucketLower(i int) int64 {
	if i <= 0 {
		return 0
	}
	return int64(1) << (i - 1)
}

// bucketUpper returns the largest sample value landing in bucket i,
// i.e. the Prometheus `le` bound. The last bucket is unbounded in
// spirit; its nominal bound is still finite so cumulative exposition
// stays monotone before the +Inf bucket.
func bucketUpper(i int) int64 {
	if i < 0 {
		return 0
	}
	if i >= histBuckets-1 {
		i = histBuckets - 1
	}
	return int64(1)<<i - 1
}

// Observe records one duration sample. No-op on a nil receiver.
func (h *Histogram) Observe(d time.Duration) { h.ObserveN(int64(d)) }

// ObserveN records one raw int64 sample. No-op on a nil receiver.
func (h *Histogram) ObserveN(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of samples recorded (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running sample total (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile returns the p-th percentile (p in [0,100]) as the lower
// bound of the bucket containing the nearest-rank sample, using the
// same nearest-rank formula as metrics.Percentile so the two agree up
// to bucket resolution. An empty (or nil) histogram yields 0.
//
// Concurrent writers may race individual bucket loads; the result is
// then correct for *some* interleaving of the in-flight observations,
// which is all a monitoring read needs.
func (h *Histogram) Quantile(p float64) int64 {
	if h == nil {
		return 0
	}
	var cum [histBuckets]uint64
	var n uint64
	for i := range cum {
		n += h.buckets[i].Load()
		cum[i] = n
	}
	if n == 0 {
		return 0
	}
	// Nearest-rank, mirroring metrics.percentileSorted: the q-th sample
	// (0-based) of the sorted sequence.
	var rank uint64
	switch {
	case p <= 0:
		rank = 0
	case p >= 100:
		rank = n - 1
	default:
		r := int64(p/100*float64(n)+0.5) - 1
		if r < 0 {
			r = 0
		}
		if uint64(r) >= n {
			r = int64(n - 1)
		}
		rank = uint64(r)
	}
	for i := range cum {
		if cum[i] > rank {
			return bucketLower(i)
		}
	}
	return bucketLower(histBuckets - 1)
}

// Merge adds every sample recorded by other into h. Bucket-wise
// addition makes merge associative and commutative up to atomic
// interleaving; other should be quiescent for an exact result.
// No-op when either side is nil.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil {
		return
	}
	for i := range h.buckets {
		if v := other.buckets[i].Load(); v != 0 {
			h.buckets[i].Add(v)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
}

// HistogramSnapshot is a point-in-time copy of a histogram's state,
// safe to serialize or compare.
type HistogramSnapshot struct {
	Buckets [histBuckets]uint64
	Count   uint64
	Sum     int64
}

// Snapshot copies the histogram's current state (zero value on nil).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}
