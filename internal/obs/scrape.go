package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the consumer side of the pipeline: a minimal parser for
// the Prometheus text format WritePrometheus emits, used by
// `dharma-bench scrape` so benchmark runs and live fleets report
// through one path. It understands exactly the subset this registry
// produces (one optional label, `le` histogram buckets) — it is not a
// general Prometheus client.

// ScrapedMetric is one parsed series: a scalar sample or an assembled
// histogram.
type ScrapedMetric struct {
	Name  string
	Label string // label value ("" when unlabeled); the label *name* is not kept
	Type  string // "counter", "gauge", or "histogram"

	Value float64 // scalar sample (counter/gauge)

	// Histogram state, reassembled from the cumulative buckets.
	Count  uint64
	Sum    float64
	Bounds []float64 // finite `le` bounds, ascending
	Cumul  []uint64  // cumulative counts matching Bounds
}

// Quantile recovers the p-th percentile from the scraped buckets with
// the same nearest-rank rule the server uses; the answer is the lower
// bound of the bucket holding that rank (0 for the first bucket).
func (m *ScrapedMetric) Quantile(p float64) float64 {
	if m == nil || m.Count == 0 {
		return 0
	}
	n := m.Count
	var rank uint64
	switch {
	case p <= 0:
		rank = 0
	case p >= 100:
		rank = n - 1
	default:
		r := int64(p/100*float64(n)+0.5) - 1
		if r < 0 {
			r = 0
		}
		if uint64(r) >= n {
			r = int64(n - 1)
		}
		rank = uint64(r)
	}
	for i, c := range m.Cumul {
		if c > rank {
			if i == 0 {
				return 0
			}
			// The server's `le` bound is the bucket's inclusive upper
			// edge (2^i - 1 scaled); the next bucket's lower bound is
			// the previous bound rounded up — recover it as the
			// midpoint-free floor: previous upper + one resolution
			// step, which for this registry's power-of-two buckets is
			// simply the previous bound (lower = upper(i-1)+1 ≈ it).
			return m.Bounds[i-1]
		}
	}
	if len(m.Bounds) > 0 {
		return m.Bounds[len(m.Bounds)-1]
	}
	return 0
}

// ParsePrometheus parses a text exposition into metrics keyed by
// "name" or "name{labelvalue}" for labeled histogram members.
func ParsePrometheus(r io.Reader) (map[string]*ScrapedMetric, error) {
	out := make(map[string]*ScrapedMetric)
	types := make(map[string]string)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
				f := strings.Fields(rest)
				if len(f) == 2 {
					types[f[0]] = f[1]
				}
			}
			continue
		}
		if err := parseSample(line, types, out); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, m := range out {
		sortBuckets(m)
	}
	return out, nil
}

func parseSample(line string, types map[string]string, out map[string]*ScrapedMetric) error {
	// Split "name{labels} value" / "name value".
	var name, labels, valstr string
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.IndexByte(line, '}')
		if j < i {
			return fmt.Errorf("obs: malformed sample %q", line)
		}
		name, labels, valstr = line[:i], line[i+1:j], strings.TrimSpace(line[j+1:])
	} else {
		f := strings.Fields(line)
		if len(f) != 2 {
			return fmt.Errorf("obs: malformed sample %q", line)
		}
		name, valstr = f[0], f[1]
	}
	val, err := strconv.ParseFloat(valstr, 64)
	if err != nil {
		return fmt.Errorf("obs: bad value in %q: %w", line, err)
	}

	base, suffix := name, ""
	for _, s := range [...]string{"_bucket", "_sum", "_count"} {
		if b, ok := strings.CutSuffix(name, s); ok && types[b] == "histogram" {
			base, suffix = b, s
			break
		}
	}

	le, lv := "", ""
	for _, kv := range strings.Split(labels, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			continue
		}
		v = strings.Trim(v, `"`)
		if k == "le" {
			le = v
		} else {
			lv = v
		}
	}

	key := base
	if lv != "" {
		key = base + "{" + lv + "}"
	}
	m := out[key]
	if m == nil {
		m = &ScrapedMetric{Name: base, Label: lv, Type: types[base]}
		if m.Type == "" {
			m.Type = "counter"
		}
		out[key] = m
	}
	switch suffix {
	case "_bucket":
		if le == "+Inf" {
			return nil // Count comes from _count; +Inf duplicates it.
		}
		bound, err := strconv.ParseFloat(le, 64)
		if err != nil {
			return fmt.Errorf("obs: bad le bound in %q: %w", line, err)
		}
		m.Bounds = append(m.Bounds, bound)
		m.Cumul = append(m.Cumul, uint64(val))
	case "_sum":
		m.Sum = val
	case "_count":
		m.Count = uint64(val)
	default:
		m.Value = val
	}
	return nil
}

// sortBuckets orders a histogram's buckets by bound and appends the
// implicit +Inf cumulative count so Quantile can always terminate.
func sortBuckets(m *ScrapedMetric) {
	if m.Type != "histogram" || len(m.Bounds) == 0 {
		return
	}
	idx := make([]int, len(m.Bounds))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return m.Bounds[idx[a]] < m.Bounds[idx[b]] })
	bounds := make([]float64, len(idx))
	cumul := make([]uint64, len(idx))
	for i, j := range idx {
		bounds[i], cumul[i] = m.Bounds[j], m.Cumul[j]
	}
	m.Bounds, m.Cumul = bounds, cumul
	if m.Count > 0 {
		m.Bounds = append(m.Bounds, math.Inf(1))
		m.Cumul = append(m.Cumul, m.Count)
	}
}
