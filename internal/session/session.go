// Package session implements the authenticated-session layer of the
// secure wire transport. A session is established by a two-message
// handshake — an exchange of Likir credentials and a challenge
// signature over ephemeral X25519 keys — after which every datagram
// between the peers is authenticated by a cheap truncated HMAC instead
// of a per-call Ed25519 signature and credential verification.
//
// Protocol (SIGMA-flavoured, authentication only — DHT payloads are
// public, so frames are MACed, not encrypted):
//
//	init  → resp: HELLO       cred_i, eph_i, nonce, Sig_i(eph_i ‖ nonce)
//	resp  → init: HELLO_REPLY sid, cred_r, eph_r, Sig_r(eph_i ‖ nonce ‖ eph_r ‖ sid)
//	key = HKDF-SHA256(X25519(eph_i, eph_r), salt=nonce, info="dharma…" ‖ sid)
//
// The initiator's signature binds its credential to its ephemeral key,
// so a replayed HELLO yields the attacker a session it cannot use (it
// lacks the ephemeral private key and thus the MAC key). The
// responder's signature covers the full transcript, so the initiator
// authenticates the responder as soon as the reply verifies; the
// responder authenticates the initiator implicitly on the first frame
// that carries a valid MAC (key confirmation). Every sealed frame MACs
// the transport frame kind, the request id, the session id, a
// monotonic per-direction sequence number and the payload; receivers
// keep a 64-entry sliding replay window per direction.
//
// Sessions are cached per peer and expire on idleness; when a fresh
// revocation bundle loads, DropRevoked re-checks every cached peer so
// a revoked identity loses its amortized fast path immediately.
package session

import (
	"context"
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/hkdf"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"dharma/internal/kadid"
	"dharma/internal/likir"
	"dharma/internal/obs"
)

// Errors reported by the session layer.
var (
	// ErrHandshake wraps every handshake rejection: bad credential,
	// revoked peer, malformed or mis-signed hello.
	ErrHandshake = errors.New("session: handshake rejected")
	// ErrUnknownSession means a sealed frame referenced a session id the
	// receiver does not hold (expired, evicted, or the node restarted).
	// The sender should re-handshake.
	ErrUnknownSession = errors.New("session: unknown session")
	// ErrBadSeal means a sealed frame failed MAC verification.
	ErrBadSeal = errors.New("session: invalid frame MAC")
	// ErrReplay means a sealed frame carried an already-seen (or far
	// stale) sequence number.
	ErrReplay = errors.New("session: replayed frame")
)

// Defaults for the session cache.
const (
	DefaultMaxSessions = 4096
	DefaultTTL         = 10 * time.Minute
)

// Sealed frame layout: 8-byte session id, 8-byte sequence number,
// 16-byte truncated HMAC-SHA256 tag, then the payload.
const (
	TagLen    = 16
	Overhead  = 8 + 8 + TagLen
	keyLen    = 32
	nonceLen  = 16
	windowLen = 64 // replay window width in sequence numbers
)

// Domain-separation labels for the handshake signatures and the KDF.
var (
	labelHelloInit  = []byte("dharma/session hello-init v1")
	labelHelloReply = []byte("dharma/session hello-reply v1")
	labelMACKey     = "dharma/session mac-key v1"
)

// Config configures a Manager.
type Config struct {
	// Identity is this node's Likir identity; required.
	Identity *likir.Identity
	// CAPub is the Authority key peer credentials must verify against;
	// required.
	CAPub ed25519.PublicKey
	// Revoked reports whether a node identifier is revoked; nil means
	// nothing is.
	Revoked func(kadid.ID) bool
	// MaxSessions caps the total session cache (dial + accept); 0
	// selects DefaultMaxSessions. At the cap the idlest session is
	// evicted.
	MaxSessions int
	// TTL expires sessions idle longer than this; 0 selects DefaultTTL.
	TTL time.Duration
	// Now is the clock used for TTLs and credential windows; nil means
	// time.Now.
	Now func() time.Time
	// Rand seeds ephemeral keys, nonces and session ids; nil means
	// crypto/rand. Tests inject deterministic readers.
	Rand io.Reader
}

// Manager owns the session caches of one transport: outbound sessions
// keyed by remote address, inbound sessions keyed by the id this node
// assigned. All methods are safe for concurrent use.
type Manager struct {
	cfg      Config
	credBlob []byte

	mu     sync.Mutex
	dial   map[string]*Session
	accept map[uint64]*Session

	metrics atomic.Pointer[managerMetrics]
}

type managerMetrics struct {
	handshake *obs.Histogram
	accepted  *obs.Counter
	rejected  *obs.Counter
	replays   *obs.Counter
}

// NewManager validates cfg and builds an empty manager.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Identity == nil {
		return nil, errors.New("session: Config.Identity is required")
	}
	if len(cfg.CAPub) != ed25519.PublicKeySize {
		return nil, errors.New("session: Config.CAPub is required")
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.Reader
	}
	return &Manager{
		cfg:      cfg,
		credBlob: cfg.Identity.Credential.Marshal(),
		dial:     make(map[string]*Session),
		accept:   make(map[uint64]*Session),
	}, nil
}

// Instrument registers the session layer's instruments on reg: the
// dial-side handshake latency histogram, accept/reject counters, the
// replay-drop counter and the cache-size gauge. nil reg is a no-op.
func (m *Manager) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m.metrics.Store(&managerMetrics{
		handshake: reg.Histogram("dharma_session_handshake_seconds",
			"Dial-side session handshake latency (crypto + network round trip)."),
		accepted: reg.Counter("dharma_session_accepted_total",
			"Inbound session handshakes accepted."),
		rejected: reg.Counter("dharma_session_rejected_total",
			"Inbound session handshakes rejected (bad credential, signature, or revoked)."),
		replays: reg.Counter("dharma_session_replay_dropped_total",
			"Sealed frames dropped by the replay window."),
	})
	reg.GaugeFunc("dharma_session_cache_size",
		"Live sessions held by the transport (dial + accept side).",
		func() int64 { return int64(m.Len()) })
}

// Len reports the number of cached sessions across both directions.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.dial) + len(m.accept)
}

// Peer returns the live cached outbound session for addr, if any. An
// idle-expired session is dropped and reported as a miss.
func (m *Manager) Peer(addr string) (*Session, bool) {
	now := m.cfg.Now().UnixNano()
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.dial[addr]
	if !ok {
		return nil, false
	}
	if now-s.lastUsed.Load() > int64(m.cfg.TTL) {
		delete(m.dial, addr)
		return nil, false
	}
	return s, true
}

// DropPeer forgets the outbound session for addr (the peer restarted or
// rejected our session id); the next call re-handshakes.
func (m *Manager) DropPeer(addr string) {
	m.mu.Lock()
	delete(m.dial, addr)
	m.mu.Unlock()
}

// DropRevoked re-verifies every cached session against the (freshly
// loaded) revocation state and the credential validity window, dropping
// the ones that no longer pass. It returns how many were dropped.
func (m *Manager) DropRevoked() int {
	now := m.cfg.Now
	bad := func(s *Session) bool {
		if m.cfg.Revoked != nil && m.cfg.Revoked(s.peer.NodeID) {
			return true
		}
		return likir.VerifyCredential(m.cfg.CAPub, s.peer, now) != nil
	}
	dropped := 0
	m.mu.Lock()
	defer m.mu.Unlock()
	for addr, s := range m.dial {
		if bad(s) {
			delete(m.dial, addr)
			dropped++
		}
	}
	for id, s := range m.accept {
		if s != nil && bad(s) {
			delete(m.accept, id)
			dropped++
		}
	}
	return dropped
}

// evictLocked makes room for one more session by dropping expired
// entries, then (still at the cap) the idlest session. Callers hold
// m.mu.
func (m *Manager) evictLocked() {
	if len(m.dial)+len(m.accept) < m.cfg.MaxSessions {
		return
	}
	now := m.cfg.Now().UnixNano()
	ttl := int64(m.cfg.TTL)
	var idleKeyD string
	var idleKeyA uint64
	var idleS *Session
	oldest := int64(1<<63 - 1)
	for addr, s := range m.dial {
		last := s.lastUsed.Load()
		if now-last > ttl {
			delete(m.dial, addr)
			continue
		}
		if last < oldest {
			oldest, idleS, idleKeyD = last, s, addr
		}
	}
	for id, s := range m.accept {
		if s == nil {
			continue // reserved by an in-flight Accept
		}
		last := s.lastUsed.Load()
		if now-last > ttl {
			delete(m.accept, id)
			continue
		}
		if last < oldest {
			oldest, idleS, idleKeyD, idleKeyA = last, s, "", id
		}
	}
	if len(m.dial)+len(m.accept) < m.cfg.MaxSessions {
		return
	}
	if idleS == nil {
		return
	}
	if idleKeyD != "" {
		delete(m.dial, idleKeyD)
	} else {
		delete(m.accept, idleKeyA)
	}
}

// verifyPeer checks a peer credential against the CA key and the
// revocation state.
func (m *Manager) verifyPeer(cred *likir.Credential) error {
	if err := likir.VerifyCredential(m.cfg.CAPub, cred, m.cfg.Now); err != nil {
		return fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	if m.cfg.Revoked != nil && m.cfg.Revoked(cred.NodeID) {
		return fmt.Errorf("%w: peer %s is revoked", ErrHandshake, cred.NodeID)
	}
	return nil
}

// Session is one authenticated direction of traffic between two peers:
// the dialer seals requests and opens responses; the acceptor opens
// requests and seals responses. The MAC key is shared, the sequence
// spaces are per direction.
type Session struct {
	id   uint64
	peer *likir.Credential // the authenticated remote identity
	key  [keyLen]byte

	sendSeq  atomic.Uint64
	recvMu   sync.Mutex
	recvMax  uint64 // highest sequence number accepted
	recvBits uint64 // bitmap of the windowLen numbers below recvMax

	lastUsed atomic.Int64 // unix nanos of last successful seal/open
	mgr      *Manager

	macPool sync.Pool // *macState keyed by this session's MAC key
}

// macState is the pooled per-computation scratch: the HMAC instance
// plus the header and digest buffers, kept together on the heap so the
// interface calls in mac() have nothing to escape.
type macState struct {
	h   hash.Hash
	hdr [1 + 8 + 8 + 8]byte
	sum [sha256.Size]byte
}

func newSession(m *Manager, id uint64, peer *likir.Credential, key []byte) *Session {
	s := &Session{id: id, peer: peer, mgr: m}
	copy(s.key[:], key)
	s.macPool.New = func() any {
		return &macState{h: hmac.New(sha256.New, s.key[:])}
	}
	s.lastUsed.Store(m.cfg.Now().UnixNano())
	return s
}

// ID returns the responder-assigned session identifier.
func (s *Session) ID() uint64 { return s.id }

// Peer returns the authenticated remote credential.
func (s *Session) Peer() *likir.Credential { return s.peer }

// mac computes the truncated frame MAC into tag. The HMAC state is
// pooled per session so steady-state seal/open performs no allocation.
func (s *Session) mac(tag *[TagLen]byte, kind byte, reqID, seq uint64, payload []byte) {
	st := s.macPool.Get().(*macState)
	st.h.Reset()
	st.hdr[0] = kind
	binary.BigEndian.PutUint64(st.hdr[1:9], reqID)
	binary.BigEndian.PutUint64(st.hdr[9:17], s.id)
	binary.BigEndian.PutUint64(st.hdr[17:25], seq)
	st.h.Write(st.hdr[:])
	st.h.Write(payload)
	copy(tag[:], st.h.Sum(st.sum[:0]))
	s.macPool.Put(st)
}

// Seal appends the sealed form of payload to dst and returns the
// extended slice: [sid ‖ seq ‖ tag ‖ payload], where kind and reqID are
// the transport frame fields the seal is bound to.
func (s *Session) Seal(dst []byte, kind byte, reqID uint64, payload []byte) []byte {
	seq := s.sendSeq.Add(1)
	var tag [TagLen]byte
	s.mac(&tag, kind, reqID, seq, payload)
	dst = binary.BigEndian.AppendUint64(dst, s.id)
	dst = binary.BigEndian.AppendUint64(dst, seq)
	dst = append(dst, tag[:]...)
	dst = append(dst, payload...)
	s.lastUsed.Store(s.mgr.cfg.Now().UnixNano())
	return dst
}

// Open verifies a sealed frame and returns the inner payload, aliasing
// the input (no copy). The MAC is checked before the replay window is
// consulted or advanced, so unauthenticated traffic cannot poison the
// window.
func (s *Session) Open(kind byte, reqID uint64, sealed []byte) ([]byte, error) {
	if len(sealed) < Overhead {
		return nil, fmt.Errorf("%w: short frame", ErrBadSeal)
	}
	sid := binary.BigEndian.Uint64(sealed[0:8])
	seq := binary.BigEndian.Uint64(sealed[8:16])
	if sid != s.id {
		return nil, ErrUnknownSession
	}
	payload := sealed[Overhead:]
	var want [TagLen]byte
	s.mac(&want, kind, reqID, seq, payload)
	if subtle.ConstantTimeCompare(want[:], sealed[16:16+TagLen]) != 1 {
		return nil, ErrBadSeal
	}
	if !s.admitSeq(seq) {
		if mm := s.mgr.metrics.Load(); mm != nil {
			mm.replays.Inc()
		}
		return nil, ErrReplay
	}
	s.lastUsed.Store(s.mgr.cfg.Now().UnixNano())
	return payload, nil
}

// admitSeq implements the sliding replay window: sequence numbers may
// arrive out of order within windowLen of the highest seen, each at
// most once.
func (s *Session) admitSeq(seq uint64) bool {
	if seq == 0 {
		return false
	}
	s.recvMu.Lock()
	defer s.recvMu.Unlock()
	switch {
	case seq > s.recvMax:
		shift := seq - s.recvMax
		if shift >= windowLen {
			s.recvBits = 0
		} else {
			s.recvBits <<= shift
		}
		s.recvBits |= 1 // bit 0 = recvMax itself
		s.recvMax = seq
		return true
	case s.recvMax-seq >= windowLen:
		return false // too old to track
	default:
		bit := uint64(1) << (s.recvMax - seq)
		if s.recvBits&bit != 0 {
			return false // already seen
		}
		s.recvBits |= bit
		return true
	}
}

// Handshake is the dial-side state of an in-flight handshake: built by
// NewHandshake, completed by Finish with the responder's reply.
type Handshake struct {
	mgr     *Manager
	addr    string
	ephPriv *ecdh.PrivateKey
	nonce   [nonceLen]byte
	hello   []byte
	started time.Time
}

// NewHandshake builds the HELLO payload for a session with the peer at
// addr. The transport sends it and hands the reply to Finish.
func (m *Manager) NewHandshake(addr string) (*Handshake, error) {
	ephPriv, err := ecdh.X25519().GenerateKey(m.cfg.Rand)
	if err != nil {
		return nil, fmt.Errorf("session: ephemeral key: %w", err)
	}
	h := &Handshake{mgr: m, addr: addr, ephPriv: ephPriv, started: time.Now()}
	if _, err := io.ReadFull(m.cfg.Rand, h.nonce[:]); err != nil {
		return nil, fmt.Errorf("session: nonce: %w", err)
	}
	ephPub := ephPriv.PublicKey().Bytes()

	tbs := make([]byte, 0, len(labelHelloInit)+len(ephPub)+nonceLen)
	tbs = append(tbs, labelHelloInit...)
	tbs = append(tbs, ephPub...)
	tbs = append(tbs, h.nonce[:]...)
	sig := ed25519.Sign(m.cfg.Identity.Priv, tbs)

	var b []byte
	b = appendBlob(b, m.credBlob)
	b = append(b, ephPub...)
	b = append(b, h.nonce[:]...)
	b = appendBlob(b, sig)
	h.hello = b
	return h, nil
}

// Payload returns the HELLO bytes to send.
func (h *Handshake) Payload() []byte { return h.hello }

// Finish verifies the responder's HELLO_REPLY, derives the session key
// and installs the session in the dial cache. The responder credential
// is checked against the CA key and the revocation state; its signature
// must cover the full handshake transcript.
func (h *Handshake) Finish(reply []byte) (*Session, error) {
	m := h.mgr
	r := reply
	sid, r, err := readUint64(r)
	if err != nil {
		return nil, fmt.Errorf("%w: sid: %v", ErrHandshake, err)
	}
	credBlob, r, err := readBlobBytes(r)
	if err != nil {
		return nil, fmt.Errorf("%w: credential: %v", ErrHandshake, err)
	}
	if len(r) < 32 {
		return nil, fmt.Errorf("%w: truncated ephemeral", ErrHandshake)
	}
	respEph := r[:32]
	r = r[32:]
	sig, r, err := readBlobBytes(r)
	if err != nil || len(r) != 0 {
		return nil, fmt.Errorf("%w: signature", ErrHandshake)
	}

	cred, err := likir.UnmarshalCredential(credBlob)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	if err := m.verifyPeer(cred); err != nil {
		return nil, err
	}

	initEph := h.ephPriv.PublicKey().Bytes()
	tbs := replyTBS(initEph, h.nonce[:], respEph, sid)
	if !ed25519.Verify(cred.Pub, tbs, sig) {
		return nil, fmt.Errorf("%w: transcript signature check failed", ErrHandshake)
	}

	key, err := deriveKey(h.ephPriv, respEph, h.nonce[:], sid)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	s := newSession(m, sid, cred, key)

	m.mu.Lock()
	m.evictLocked()
	m.dial[h.addr] = s
	m.mu.Unlock()

	if mm := m.metrics.Load(); mm != nil {
		mm.handshake.Observe(time.Since(h.started))
	}
	return s, nil
}

// Accept verifies an inbound HELLO, creates the accept-side session and
// returns the HELLO_REPLY payload to send back. The initiator is only
// provisionally trusted until its first valid MACed frame arrives (key
// confirmation); a replayed HELLO therefore costs the attacker nothing
// but costs us one cache slot until the TTL reaps it — bounded by
// MaxSessions and the transport's admission gate.
func (m *Manager) Accept(init []byte) ([]byte, error) {
	reject := func(err error) ([]byte, error) {
		if mm := m.metrics.Load(); mm != nil {
			mm.rejected.Inc()
		}
		return nil, err
	}
	r := init
	credBlob, r, err := readBlobBytes(r)
	if err != nil {
		return reject(fmt.Errorf("%w: credential: %v", ErrHandshake, err))
	}
	if len(r) < 32+nonceLen {
		return reject(fmt.Errorf("%w: truncated hello", ErrHandshake))
	}
	initEph := r[:32]
	nonce := r[32 : 32+nonceLen]
	r = r[32+nonceLen:]
	sig, r, err := readBlobBytes(r)
	if err != nil || len(r) != 0 {
		return reject(fmt.Errorf("%w: signature", ErrHandshake))
	}

	cred, err := likir.UnmarshalCredential(credBlob)
	if err != nil {
		return reject(fmt.Errorf("%w: %v", ErrHandshake, err))
	}
	if err := m.verifyPeer(cred); err != nil {
		return reject(err)
	}
	tbs := make([]byte, 0, len(labelHelloInit)+32+nonceLen)
	tbs = append(tbs, labelHelloInit...)
	tbs = append(tbs, initEph...)
	tbs = append(tbs, nonce...)
	if !ed25519.Verify(cred.Pub, tbs, sig) {
		return reject(fmt.Errorf("%w: hello signature check failed", ErrHandshake))
	}

	ephPriv, err := ecdh.X25519().GenerateKey(m.cfg.Rand)
	if err != nil {
		return reject(fmt.Errorf("session: ephemeral key: %w", err))
	}
	var sidBuf [8]byte
	if _, err := io.ReadFull(m.cfg.Rand, sidBuf[:]); err != nil {
		return reject(fmt.Errorf("session: session id: %w", err))
	}
	sid := binary.BigEndian.Uint64(sidBuf[:])
	respEph := ephPriv.PublicKey().Bytes()

	// Reserve the id before deriving: the KDF binds the session id, so
	// it must be final when the key material is produced.
	m.mu.Lock()
	m.evictLocked()
	for {
		if _, taken := m.accept[sid]; !taken && sid != 0 {
			break
		}
		sid++
	}
	m.accept[sid] = nil
	m.mu.Unlock()

	key, err := deriveKey(ephPriv, initEph, nonce, sid)
	if err != nil {
		m.mu.Lock()
		delete(m.accept, sid)
		m.mu.Unlock()
		return reject(fmt.Errorf("%w: %v", ErrHandshake, err))
	}
	s := newSession(m, sid, cred, key)
	m.mu.Lock()
	m.accept[sid] = s
	m.mu.Unlock()

	replySig := ed25519.Sign(m.cfg.Identity.Priv, replyTBS(initEph, nonce, respEph, sid))
	var b []byte
	b = binary.BigEndian.AppendUint64(b, sid)
	b = appendBlob(b, m.credBlob)
	b = append(b, respEph...)
	b = appendBlob(b, replySig)

	if mm := m.metrics.Load(); mm != nil {
		mm.accepted.Inc()
	}
	return b, nil
}

// OpenRequest resolves the accept-side session a sealed request
// references and opens it.
func (m *Manager) OpenRequest(kind byte, reqID uint64, sealed []byte) ([]byte, *Session, error) {
	if len(sealed) < Overhead {
		return nil, nil, fmt.Errorf("%w: short frame", ErrBadSeal)
	}
	sid := binary.BigEndian.Uint64(sealed[0:8])
	m.mu.Lock()
	s, ok := m.accept[sid]
	m.mu.Unlock()
	if !ok || s == nil { // nil = reserved by an in-flight Accept
		return nil, nil, ErrUnknownSession
	}
	payload, err := s.Open(kind, reqID, sealed)
	if err != nil {
		return nil, nil, err
	}
	return payload, s, nil
}

// replyTBS is the transcript the responder signs.
func replyTBS(initEph, nonce, respEph []byte, sid uint64) []byte {
	tbs := make([]byte, 0, len(labelHelloReply)+32+nonceLen+32+8)
	tbs = append(tbs, labelHelloReply...)
	tbs = append(tbs, initEph...)
	tbs = append(tbs, nonce...)
	tbs = append(tbs, respEph...)
	tbs = binary.BigEndian.AppendUint64(tbs, sid)
	return tbs
}

// deriveKey runs X25519 and HKDF-SHA256 to produce the session MAC key.
func deriveKey(priv *ecdh.PrivateKey, peerEph, nonce []byte, sid uint64) ([]byte, error) {
	peer, err := ecdh.X25519().NewPublicKey(peerEph)
	if err != nil {
		return nil, err
	}
	secret, err := priv.ECDH(peer)
	if err != nil {
		return nil, err
	}
	info := labelMACKey + string(binary.BigEndian.AppendUint64(nil, sid))
	return hkdf.Key(sha256.New, secret, nonce, info, keyLen)
}

func appendBlob(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func readBlobBytes(b []byte) (blob, rest []byte, err error) {
	n, used := binary.Uvarint(b)
	if used <= 0 {
		return nil, nil, errors.New("bad length")
	}
	b = b[used:]
	if n > 1<<16 || uint64(len(b)) < n {
		return nil, nil, errors.New("truncated blob")
	}
	return b[:n], b[n:], nil
}

func readUint64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, errors.New("truncated uint64")
	}
	return binary.BigEndian.Uint64(b[:8]), b[8:], nil
}

// peerKey is the context key carrying the authenticated peer identity
// from the transport into RPC handlers.
type peerKey struct{}

// WithPeer tags ctx with the authenticated remote credential of the
// session a request arrived on.
func WithPeer(ctx context.Context, cred *likir.Credential) context.Context {
	return context.WithValue(ctx, peerKey{}, cred)
}

// PeerFromContext returns the transport-authenticated remote identity,
// if the request arrived over an established session.
func PeerFromContext(ctx context.Context) (*likir.Credential, bool) {
	cred, ok := ctx.Value(peerKey{}).(*likir.Credential)
	return cred, ok
}
