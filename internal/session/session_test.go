package session

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"dharma/internal/likir"
	"dharma/internal/obs"
)

// testPair builds an authority, two identities and their managers.
func testPair(t *testing.T) (*likir.Authority, *Manager, *Manager) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	auth, err := likir.NewAuthority(rng, time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	alice, err := auth.Issue(rng, "alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := auth.Issue(rng, "bob")
	if err != nil {
		t.Fatal(err)
	}
	ma, err := NewManager(Config{Identity: alice, CAPub: auth.PublicKey(), Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	mb, err := NewManager(Config{Identity: bob, CAPub: auth.PublicKey(), Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	return auth, ma, mb
}

// connect runs the full handshake from ma to mb and returns both ends'
// sessions.
func connect(t *testing.T, ma, mb *Manager) (dial, accept *Session) {
	t.Helper()
	hs, err := ma.NewHandshake("bob:1")
	if err != nil {
		t.Fatal(err)
	}
	reply, err := mb.Accept(hs.Payload())
	if err != nil {
		t.Fatal(err)
	}
	dial, err = hs.Finish(reply)
	if err != nil {
		t.Fatal(err)
	}
	sealed := dial.Seal(nil, 0x05, 7, []byte("probe"))
	_, accept, err = mb.OpenRequest(0x05, 7, sealed)
	if err != nil {
		t.Fatal(err)
	}
	return dial, accept
}

func TestHandshakeAndSeal(t *testing.T) {
	_, ma, mb := testPair(t)
	dial, accept := connect(t, ma, mb)

	if dial.ID() != accept.ID() {
		t.Fatalf("session id mismatch: %d vs %d", dial.ID(), accept.ID())
	}
	if accept.Peer().Name != "alice" || dial.Peer().Name != "bob" {
		t.Fatalf("peer identities wrong: %q / %q", accept.Peer().Name, dial.Peer().Name)
	}

	// Request direction.
	payload := []byte("store this")
	sealed := dial.Seal(nil, 0x05, 42, payload)
	got, s, err := mb.OpenRequest(0x05, 42, sealed)
	if err != nil {
		t.Fatalf("OpenRequest: %v", err)
	}
	if string(got) != string(payload) || s != accept {
		t.Fatalf("opened %q on session %v", got, s)
	}

	// Response direction: sealed by the acceptor, opened by the dialer.
	resp := accept.Seal(nil, 0x06, 42, []byte("ack"))
	back, err := dial.Open(0x06, 42, resp)
	if err != nil {
		t.Fatalf("Open response: %v", err)
	}
	if string(back) != "ack" {
		t.Fatalf("opened %q", back)
	}

	// The dial cache must serve the session for the same address.
	if s, ok := ma.Peer("bob:1"); !ok || s != dial {
		t.Fatal("dial cache miss after handshake")
	}
}

func TestOpenRejectsTamper(t *testing.T) {
	_, ma, mb := testPair(t)
	dial, _ := connect(t, ma, mb)

	sealed := dial.Seal(nil, 0x05, 1, []byte("payload"))

	flipped := append([]byte(nil), sealed...)
	flipped[len(flipped)-1] ^= 0x01 // payload bit
	if _, _, err := mb.OpenRequest(0x05, 1, flipped); !errors.Is(err, ErrBadSeal) {
		t.Fatalf("tampered payload accepted: %v", err)
	}
	// Wrong frame kind (reflection) and wrong request id both break the MAC.
	if _, _, err := mb.OpenRequest(0x06, 1, sealed); !errors.Is(err, ErrBadSeal) {
		t.Fatalf("kind reflection accepted: %v", err)
	}
	if _, _, err := mb.OpenRequest(0x05, 2, sealed); !errors.Is(err, ErrBadSeal) {
		t.Fatalf("request id swap accepted: %v", err)
	}
	// Unknown session id.
	unknown := append([]byte(nil), sealed...)
	unknown[0] ^= 0xFF
	if _, _, err := mb.OpenRequest(0x05, 1, unknown); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("unknown sid: %v", err)
	}
}

func TestReplayWindow(t *testing.T) {
	_, ma, mb := testPair(t)
	dial, _ := connect(t, ma, mb)

	sealed := dial.Seal(nil, 0x05, 9, []byte("once"))
	if _, _, err := mb.OpenRequest(0x05, 9, sealed); err != nil {
		t.Fatal(err)
	}
	if _, _, err := mb.OpenRequest(0x05, 9, sealed); !errors.Is(err, ErrReplay) {
		t.Fatalf("replay accepted: %v", err)
	}

	// Out-of-order delivery within the window is fine, each seq once.
	a := dial.Seal(nil, 0x05, 10, []byte("a"))
	b := dial.Seal(nil, 0x05, 11, []byte("b"))
	if _, _, err := mb.OpenRequest(0x05, 11, b); err != nil {
		t.Fatal(err)
	}
	if _, _, err := mb.OpenRequest(0x05, 10, a); err != nil {
		t.Fatalf("out-of-order frame rejected: %v", err)
	}
	if _, _, err := mb.OpenRequest(0x05, 10, a); !errors.Is(err, ErrReplay) {
		t.Fatalf("out-of-order replay accepted: %v", err)
	}
}

func TestHandshakeRejectsWrongCA(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	authA, _ := likir.NewAuthority(rng, time.Hour, nil)
	authB, _ := likir.NewAuthority(rng, time.Hour, nil)
	mallory, _ := authB.Issue(rng, "mallory")
	honest, _ := authA.Issue(rng, "honest")

	mm, _ := NewManager(Config{Identity: mallory, CAPub: authB.PublicKey(), Rand: rng})
	mh, _ := NewManager(Config{Identity: honest, CAPub: authA.PublicKey(), Rand: rng})

	hs, err := mm.NewHandshake("honest:1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mh.Accept(hs.Payload()); !errors.Is(err, ErrHandshake) {
		t.Fatalf("foreign-CA credential accepted: %v", err)
	}
}

func TestHandshakeRejectsRevoked(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	auth, _ := likir.NewAuthority(rng, time.Hour, nil)
	evil, _ := auth.Issue(rng, "evil")
	good, _ := auth.Issue(rng, "good")
	auth.Revoke(evil.NodeID)
	set, _ := likir.NewRevocationSet(auth.PublicKey(), nil)
	if err := set.Refresh(auth.PublicKey(), auth.RevocationBundle()); err != nil {
		t.Fatal(err)
	}

	me, _ := NewManager(Config{Identity: evil, CAPub: auth.PublicKey(), Rand: rng})
	mg, _ := NewManager(Config{Identity: good, CAPub: auth.PublicKey(), Revoked: set.Contains, Rand: rng})

	hs, _ := me.NewHandshake("good:1")
	if _, err := mg.Accept(hs.Payload()); !errors.Is(err, ErrHandshake) {
		t.Fatalf("revoked credential accepted: %v", err)
	}
}

func TestDropRevokedReverifiesCachedSessions(t *testing.T) {
	auth, ma, mb := testPair(t)
	// mb must consult a live revocation set for DropRevoked to act on.
	set, _ := likir.NewRevocationSet(auth.PublicKey(), nil)
	mb.cfg.Revoked = set.Contains

	dial, _ := connect(t, ma, mb)
	if mb.Len() == 0 {
		t.Fatal("no accept-side session cached")
	}

	auth.Revoke(ma.cfg.Identity.NodeID)
	if err := set.Refresh(auth.PublicKey(), auth.RevocationBundle()); err != nil {
		t.Fatal(err)
	}
	if n := mb.DropRevoked(); n != 1 {
		t.Fatalf("DropRevoked dropped %d sessions, want 1", n)
	}

	// The amortized fast path is gone: the frame no longer opens.
	sealed := dial.Seal(nil, 0x05, 3, []byte("post-revocation"))
	if _, _, err := mb.OpenRequest(0x05, 3, sealed); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("revoked session still open: %v", err)
	}
}

func TestSessionTTLAndEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	now := time.Unix(1000, 0)
	auth, _ := likir.NewAuthority(rng, time.Hour, func() time.Time { return now })
	id, _ := auth.Issue(rng, "ttl")
	m, err := NewManager(Config{
		Identity: id, CAPub: auth.PublicKey(), Rand: rng,
		TTL: time.Minute, MaxSessions: 2,
		Now: func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	peerMgr := func(name string) *Manager {
		pid, _ := auth.Issue(rng, name)
		pm, _ := NewManager(Config{Identity: pid, CAPub: auth.PublicKey(), Rand: rng,
			Now: func() time.Time { return now }})
		return pm
	}
	dialTo := func(addr string, pm *Manager) *Session {
		hs, err := m.NewHandshake(addr)
		if err != nil {
			t.Fatal(err)
		}
		reply, err := pm.Accept(hs.Payload())
		if err != nil {
			t.Fatal(err)
		}
		s, err := hs.Finish(reply)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	dialTo("p1:1", peerMgr("p1"))
	if _, ok := m.Peer("p1:1"); !ok {
		t.Fatal("fresh session missing")
	}
	// Idle past the TTL: the cache treats it as gone.
	now = now.Add(2 * time.Minute)
	if _, ok := m.Peer("p1:1"); ok {
		t.Fatal("expired session served")
	}

	// Cap eviction: with MaxSessions=2, a third dial evicts the idlest.
	dialTo("p2:1", peerMgr("p2"))
	now = now.Add(time.Second)
	dialTo("p3:1", peerMgr("p3"))
	now = now.Add(time.Second)
	dialTo("p4:1", peerMgr("p4"))
	if m.Len() > 2 {
		t.Fatalf("cache above cap: %d", m.Len())
	}
	if _, ok := m.Peer("p2:1"); ok {
		t.Fatal("idlest session survived eviction")
	}
	if _, ok := m.Peer("p4:1"); !ok {
		t.Fatal("newest session evicted")
	}
}

func TestInstrument(t *testing.T) {
	_, ma, mb := testPair(t)
	rega, regb := obs.NewRegistry(), obs.NewRegistry()
	ma.Instrument(rega)
	mb.Instrument(regb)

	dial, _ := connect(t, ma, mb)
	sealed := dial.Seal(nil, 0x05, 5, []byte("x"))
	if _, _, err := mb.OpenRequest(0x05, 5, sealed); err != nil {
		t.Fatal(err)
	}
	mb.OpenRequest(0x05, 5, sealed) //nolint:errcheck // deliberate replay

	am := ma.metrics.Load()
	bm := mb.metrics.Load()
	if am.handshake.Count() != 1 {
		t.Fatalf("handshake observations: %d", am.handshake.Count())
	}
	if bm.accepted.Load() != 1 || bm.replays.Load() != 1 {
		t.Fatalf("accepted=%d replays=%d", bm.accepted.Load(), bm.replays.Load())
	}
}

func BenchmarkSeal(b *testing.B) {
	ma, mb := benchPair(b)
	dial := benchConnect(b, ma, mb)
	payload := make([]byte, 512)
	dst := make([]byte, 0, len(payload)+Overhead)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = dial.Seal(dst[:0], 0x05, uint64(i), payload)
	}
}

func BenchmarkSealOpen(b *testing.B) {
	ma, mb := benchPair(b)
	dial := benchConnect(b, ma, mb)
	payload := make([]byte, 512)
	dst := make([]byte, 0, len(payload)+Overhead)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = dial.Seal(dst[:0], 0x05, uint64(i), payload)
		if _, _, err := mb.OpenRequest(0x05, uint64(i), dst); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPair(b *testing.B) (*Manager, *Manager) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	auth, err := likir.NewAuthority(rng, time.Hour, nil)
	if err != nil {
		b.Fatal(err)
	}
	ida, _ := auth.Issue(rng, "a")
	idb, _ := auth.Issue(rng, "b")
	ma, _ := NewManager(Config{Identity: ida, CAPub: auth.PublicKey(), Rand: rng})
	mb, _ := NewManager(Config{Identity: idb, CAPub: auth.PublicKey(), Rand: rng})
	return ma, mb
}

func benchConnect(b *testing.B, ma, mb *Manager) *Session {
	b.Helper()
	hs, err := ma.NewHandshake("b:1")
	if err != nil {
		b.Fatal(err)
	}
	reply, err := mb.Accept(hs.Payload())
	if err != nil {
		b.Fatal(err)
	}
	s, err := hs.Finish(reply)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func TestManagerConfigValidation(t *testing.T) {
	if _, err := NewManager(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	rng := rand.New(rand.NewSource(3))
	auth, _ := likir.NewAuthority(rng, time.Hour, nil)
	id, _ := auth.Issue(rng, "x")
	if _, err := NewManager(Config{Identity: id}); err == nil {
		t.Fatal("missing CAPub accepted")
	}
	if _, err := NewManager(Config{Identity: id, CAPub: auth.PublicKey()}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	_ = fmt.Sprintf // keep fmt imported if assertions change
}
