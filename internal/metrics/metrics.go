// Package metrics implements the comparison measures of §V-B — Kendall's
// τ rank correlation, cosine similarity, recall and sim1% — plus the
// summary statistics and CDFs used throughout the evaluation.
package metrics

import (
	"math"
	"sort"
)

// KendallTau computes the τ-b rank correlation between two paired value
// vectors (ties corrected), in O(n log n) using Knight's algorithm. It
// returns 0 for vectors shorter than 2 or when either vector is
// constant (τ undefined); the paper's use compares the weights of a
// tag's arc set in the original and approximated graphs.
func KendallTau(x, y []float64) float64 {
	n := len(x)
	if n != len(y) {
		panic("metrics: KendallTau needs paired vectors of equal length")
	}
	if n < 2 {
		return 0
	}

	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if x[ia] != x[ib] {
			return x[ia] < x[ib]
		}
		return y[ia] < y[ib]
	})

	yOrd := make([]float64, n)
	xOrd := make([]float64, n)
	for i, id := range idx {
		xOrd[i] = x[id]
		yOrd[i] = y[id]
	}

	n0 := float64(n) * float64(n-1) / 2

	// Ties in x, and joint ties in (x, y): scan the x-sorted order.
	var n1, n3 float64
	for i := 0; i < n; {
		j := i
		for j < n && xOrd[j] == xOrd[i] {
			j++
		}
		g := float64(j - i)
		n1 += g * (g - 1) / 2
		for a := i; a < j; {
			b := a
			for b < j && yOrd[b] == yOrd[a] {
				b++
			}
			jg := float64(b - a)
			n3 += jg * (jg - 1) / 2
			a = b
		}
		i = j
	}

	// Ties in y overall.
	ySorted := append([]float64(nil), y...)
	sort.Float64s(ySorted)
	var n2 float64
	for i := 0; i < n; {
		j := i
		for j < n && ySorted[j] == ySorted[i] {
			j++
		}
		g := float64(j - i)
		n2 += g * (g - 1) / 2
		i = j
	}

	swaps := float64(countInversions(yOrd))
	concMinusDisc := n0 - n1 - n2 + n3 - 2*swaps

	denom := math.Sqrt((n0 - n1) * (n0 - n2))
	if denom == 0 {
		return 0
	}
	return concMinusDisc / denom
}

// countInversions counts pairs i < j with v[i] > v[j] (strictly), by
// merge sort; v is modified.
func countInversions(v []float64) int64 {
	buf := make([]float64, len(v))
	return mergeCount(v, buf)
}

func mergeCount(v, buf []float64) int64 {
	n := len(v)
	if n < 2 {
		return 0
	}
	mid := n / 2
	inv := mergeCount(v[:mid], buf[:mid]) + mergeCount(v[mid:], buf[mid:])
	i, j, k := 0, mid, 0
	for i < mid && j < n {
		if v[i] <= v[j] {
			buf[k] = v[i]
			i++
		} else {
			buf[k] = v[j]
			j++
			inv += int64(mid - i)
		}
		k++
	}
	copy(buf[k:], v[i:mid])
	copy(buf[k+(mid-i):], v[j:])
	copy(v, buf[:n])
	return inv
}

// Cosine returns the cosine similarity of two paired vectors: 1 when
// they are perfectly scaled copies (the paper's example:
// θ([1,2,3],[100,200,300]) = 1), 0 when either vector is all-zero.
func Cosine(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("metrics: Cosine needs paired vectors of equal length")
	}
	var dot, nx, ny float64
	for i := range x {
		dot += x[i] * y[i]
		nx += x[i] * x[i]
		ny += y[i] * y[i]
	}
	if nx == 0 || ny == 0 {
		return 0
	}
	return dot / (math.Sqrt(nx) * math.Sqrt(ny))
}

// Recall returns |kept| / |reference|: the fraction of reference arcs
// present in the approximated graph. It returns 1 for an empty
// reference (nothing to lose).
func Recall(kept, reference int) float64 {
	if reference == 0 {
		return 1
	}
	return float64(kept) / float64(reference)
}

// Summary aggregates a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1)
	Median float64
	Min    float64
	Max    float64
}

// Summarize computes summary statistics; a nil/empty sample yields a
// zero Summary.
func Summarize(v []float64) Summary {
	if len(v) == 0 {
		return Summary{}
	}
	s := Summary{N: len(v), Min: v[0], Max: v[0]}
	var sum float64
	for _, x := range v {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(v))
	if len(v) > 1 {
		var ss float64
		for _, x := range v {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(v)-1))
	}
	sorted := append([]float64(nil), v...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// CDFPoint is one point of an empirical cumulative distribution:
// P(X <= Value) = Prob.
type CDFPoint struct {
	Value float64
	Prob  float64
}

// CDF builds the empirical CDF of a sample, one point per distinct
// value.
func CDF(v []float64) []CDFPoint {
	if len(v) == 0 {
		return nil
	}
	sorted := append([]float64(nil), v...)
	sort.Float64s(sorted)
	var out []CDFPoint
	n := float64(len(sorted))
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		out = append(out, CDFPoint{Value: sorted[i], Prob: float64(j) / n})
		i = j
	}
	return out
}

// CDFAt evaluates an empirical CDF at x.
func CDFAt(cdf []CDFPoint, x float64) float64 {
	p := 0.0
	for _, pt := range cdf {
		if pt.Value > x {
			break
		}
		p = pt.Prob
	}
	return p
}

// SlopeThroughOrigin fits y = a·x by least squares. Figure 6's claim —
// simulated degrees align on a line whose slope is close to the
// diagonal — is quantified by this estimator.
func SlopeThroughOrigin(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("metrics: SlopeThroughOrigin needs paired vectors")
	}
	var xy, xx float64
	for i := range x {
		xy += x[i] * y[i]
		xx += x[i] * x[i]
	}
	if xx == 0 {
		return 0
	}
	return xy / xx
}

// Gini computes the Gini coefficient of a non-negative sample — the
// load-imbalance measure used by the hotspot experiment (0 = perfectly
// even, →1 = concentrated on one node).
func Gini(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	sorted := append([]float64(nil), v...)
	sort.Float64s(sorted)
	var cum, total float64
	for i, x := range sorted {
		cum += float64(i+1) * x
		total += x
	}
	if total == 0 {
		return 0
	}
	n := float64(len(sorted))
	return (2*cum)/(n*total) - (n+1)/n
}
