package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestPercentile(t *testing.T) {
	v := []float64{50, 10, 40, 30, 20} // unsorted on purpose
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {10, 10}, {50, 30}, {90, 50}, {99, 50}, {100, 50},
	}
	for _, c := range cases {
		if got := Percentile(v, c.p); got != c.want {
			t.Errorf("Percentile(%.0f) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
	// Input must stay untouched (Percentile sorts a copy).
	if v[0] != 50 || v[4] != 20 {
		t.Errorf("Percentile mutated its input: %v", v)
	}
}

func TestLatencyRecorderSummary(t *testing.T) {
	var r LatencyRecorder
	if s := r.Summary(); s.N != 0 || s.P99 != 0 {
		t.Fatalf("empty recorder summary = %+v", s)
	}
	for i := 1; i <= 100; i++ {
		r.Observe(time.Duration(i) * time.Millisecond)
	}
	s := r.Summary()
	if s.N != 100 {
		t.Fatalf("N = %d", s.N)
	}
	if s.P50 != 50*time.Millisecond {
		t.Errorf("P50 = %v", s.P50)
	}
	if s.P99 != 99*time.Millisecond {
		t.Errorf("P99 = %v", s.P99)
	}
	if s.Max != 100*time.Millisecond {
		t.Errorf("Max = %v", s.Max)
	}
	if want := 50500 * time.Microsecond; s.Mean != want {
		t.Errorf("Mean = %v, want %v", s.Mean, want)
	}
}

func TestLatencyRecorderConcurrent(t *testing.T) {
	var r LatencyRecorder
	var wg sync.WaitGroup
	const workers, each = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Count(); got != workers*each {
		t.Fatalf("Count = %d, want %d", got, workers*each)
	}
}

func TestLatencyRecorderMerge(t *testing.T) {
	var a, b LatencyRecorder
	a.Observe(time.Millisecond)
	b.Observe(2 * time.Millisecond)
	b.Observe(3 * time.Millisecond)
	a.Merge(&b)
	s := a.Summary()
	if s.N != 3 || s.Max != 3*time.Millisecond {
		t.Fatalf("merged summary = %+v", s)
	}
}
