package metrics

import (
	"sort"
	"sync"
	"time"
)

// Percentile returns the p-th percentile (p in [0,100]) of a sample by
// the nearest-rank method on a sorted copy. An empty sample yields 0.
func Percentile(v []float64, p float64) float64 {
	if len(v) == 0 {
		return 0
	}
	sorted := append([]float64(nil), v...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	switch {
	case p <= 0:
		return sorted[0]
	case p >= 100:
		return sorted[len(sorted)-1]
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// LatencySummary condenses a latency sample into the figures a load
// report prints.
type LatencySummary struct {
	N                  int
	Mean               time.Duration
	P50, P90, P99, Max time.Duration
}

// LatencyRecorder accumulates per-operation latencies from many
// goroutines. Observations append under a mutex; summaries sort a
// snapshot. The recorder keeps raw samples (a load run is bounded), so
// percentiles are exact rather than histogram-bucketed.
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []float64 // nanoseconds
}

// Observe records one operation's latency. Safe for concurrent use.
func (r *LatencyRecorder) Observe(d time.Duration) {
	r.mu.Lock()
	r.samples = append(r.samples, float64(d))
	r.mu.Unlock()
}

// Merge appends every sample recorded by other. Safe for concurrent
// use on the receiver; other must be quiescent.
func (r *LatencyRecorder) Merge(other *LatencyRecorder) {
	r.mu.Lock()
	r.samples = append(r.samples, other.samples...)
	r.mu.Unlock()
}

// Count returns how many observations were recorded.
func (r *LatencyRecorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// Summary computes the latency figures over everything observed so far.
func (r *LatencyRecorder) Summary() LatencySummary {
	r.mu.Lock()
	sorted := append([]float64(nil), r.samples...)
	r.mu.Unlock()
	if len(sorted) == 0 {
		return LatencySummary{}
	}
	sort.Float64s(sorted)
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	return LatencySummary{
		N:    len(sorted),
		Mean: time.Duration(sum / float64(len(sorted))),
		P50:  time.Duration(percentileSorted(sorted, 50)),
		P90:  time.Duration(percentileSorted(sorted, 90)),
		P99:  time.Duration(percentileSorted(sorted, 99)),
		Max:  time.Duration(sorted[len(sorted)-1]),
	}
}
