package metrics

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkKendallTau verifies the O(n log n) implementation scales to
// the adjacency sizes of popular tags.
func BenchmarkKendallTau(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x := make([]float64, n)
			y := make([]float64, n)
			for i := range x {
				x[i] = float64(rng.Intn(50)) // plenty of ties, like arc weights
				y[i] = float64(rng.Intn(50))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				KendallTau(x, y)
			}
		})
	}
}

// BenchmarkCDF measures empirical CDF construction at degree-sample
// sizes.
func BenchmarkCDF(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	v := make([]float64, 50000)
	for i := range v {
		v[i] = float64(rng.Intn(1000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CDF(v)
	}
}
