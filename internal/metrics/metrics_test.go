package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// naiveTauB is the O(n²) reference implementation of Kendall τ-b.
func naiveTauB(x, y []float64) float64 {
	n := len(x)
	var conc, disc, tieX, tieY float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := x[i] - x[j]
			dy := y[i] - y[j]
			switch {
			case dx == 0 && dy == 0:
				tieX++
				tieY++
			case dx == 0:
				tieX++
			case dy == 0:
				tieY++
			case dx*dy > 0:
				conc++
			default:
				disc++
			}
		}
	}
	n0 := float64(n) * float64(n-1) / 2
	denom := math.Sqrt((n0 - tieX) * (n0 - tieY))
	if denom == 0 {
		return 0
	}
	return (conc - disc) / denom
}

func TestKendallTauPerfectAgreement(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if got := KendallTau(x, x); !almost(got, 1) {
		t.Fatalf("tau(x,x) = %v, want 1", got)
	}
	y := []float64{10, 20, 30, 40, 50} // same ranking, different scale
	if got := KendallTau(x, y); !almost(got, 1) {
		t.Fatalf("tau same ranking = %v, want 1", got)
	}
}

func TestKendallTauReversed(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{5, 4, 3, 2, 1}
	if got := KendallTau(x, y); !almost(got, -1) {
		t.Fatalf("tau reversed = %v, want -1", got)
	}
}

func TestKendallTauKnownValue(t *testing.T) {
	// Hand-checked example: x=[1,2,3,4,5], y=[3,1,2,5,4]
	// pairs: C=7, D=3, no ties -> tau = (7-3)/10 = 0.4.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{3, 1, 2, 5, 4}
	if got := KendallTau(x, y); !almost(got, 0.4) {
		t.Fatalf("tau = %v, want 0.4", got)
	}
}

func TestKendallTauDegenerate(t *testing.T) {
	if got := KendallTau(nil, nil); got != 0 {
		t.Fatalf("empty: %v", got)
	}
	if got := KendallTau([]float64{1}, []float64{2}); got != 0 {
		t.Fatalf("singleton: %v", got)
	}
	if got := KendallTau([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("constant x: %v", got)
	}
}

func TestKendallTauMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(60)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			// Small integer ranges force plenty of ties.
			x[i] = float64(r.Intn(8))
			y[i] = float64(r.Intn(8))
		}
		return almost(KendallTau(x, y), naiveTauB(x, y))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestKendallTauRange(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.Float64()
			y[i] = r.Float64()
		}
		tau := KendallTau(x, y)
		return tau >= -1-1e-9 && tau <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Fatal(err)
	}
}

func TestCosine(t *testing.T) {
	// The paper's example: θ([1,2,3],[100,200,300]) = 1.
	if got := Cosine([]float64{1, 2, 3}, []float64{100, 200, 300}); !almost(got, 1) {
		t.Fatalf("scaled vectors: %v, want 1", got)
	}
	if got := Cosine([]float64{1, 0}, []float64{0, 1}); !almost(got, 0) {
		t.Fatalf("orthogonal: %v, want 0", got)
	}
	if got := Cosine([]float64{0, 0}, []float64{1, 2}); got != 0 {
		t.Fatalf("zero vector: %v, want 0", got)
	}
	if got := Cosine([]float64{1, 2}, []float64{-1, -2}); !almost(got, -1) {
		t.Fatalf("opposite: %v, want -1", got)
	}
}

func TestRecall(t *testing.T) {
	if got := Recall(3, 4); !almost(got, 0.75) {
		t.Fatalf("Recall(3,4) = %v", got)
	}
	if got := Recall(0, 0); got != 1 {
		t.Fatalf("Recall(0,0) = %v, want 1", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || !almost(s.Mean, 5) {
		t.Fatalf("mean = %v", s.Mean)
	}
	// Sample std of this classic dataset is sqrt(32/7).
	if !almost(s.Std, math.Sqrt(32.0/7.0)) {
		t.Fatalf("std = %v", s.Std)
	}
	if !almost(s.Median, 4.5) {
		t.Fatalf("median = %v", s.Median)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}

	odd := Summarize([]float64{3, 1, 2})
	if !almost(odd.Median, 2) {
		t.Fatalf("odd median = %v", odd.Median)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Fatal("empty sample must be zero")
	}
	single := Summarize([]float64{7})
	if single.Std != 0 || single.Median != 7 {
		t.Fatalf("single = %+v", single)
	}
}

func TestCDF(t *testing.T) {
	cdf := CDF([]float64{1, 1, 2, 5})
	if len(cdf) != 3 {
		t.Fatalf("points = %d, want 3", len(cdf))
	}
	if !almost(cdf[0].Prob, 0.5) || cdf[0].Value != 1 {
		t.Fatalf("P(X<=1) = %+v", cdf[0])
	}
	if !almost(cdf[2].Prob, 1) {
		t.Fatal("CDF must end at 1")
	}
	// Monotone non-decreasing.
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Prob < cdf[i-1].Prob || cdf[i].Value <= cdf[i-1].Value {
			t.Fatal("CDF not monotone")
		}
	}
	if got := CDFAt(cdf, 1.5); !almost(got, 0.5) {
		t.Fatalf("CDFAt(1.5) = %v", got)
	}
	if got := CDFAt(cdf, 0); got != 0 {
		t.Fatalf("CDFAt below min = %v", got)
	}
	if got := CDFAt(cdf, 99); !almost(got, 1) {
		t.Fatalf("CDFAt above max = %v", got)
	}
	if CDF(nil) != nil {
		t.Fatal("empty CDF must be nil")
	}
}

func TestSlopeThroughOrigin(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{2, 4, 6}
	if got := SlopeThroughOrigin(x, y); !almost(got, 2) {
		t.Fatalf("slope = %v, want 2", got)
	}
	if got := SlopeThroughOrigin([]float64{0, 0}, []float64{1, 2}); got != 0 {
		t.Fatalf("degenerate slope = %v, want 0", got)
	}
}

func TestGini(t *testing.T) {
	if got := Gini([]float64{1, 1, 1, 1}); !almost(got, 0) {
		t.Fatalf("uniform Gini = %v, want 0", got)
	}
	// All mass on one of many: approaches (n-1)/n.
	v := make([]float64, 10)
	v[0] = 100
	if got := Gini(v); !almost(got, 0.9) {
		t.Fatalf("concentrated Gini = %v, want 0.9", got)
	}
	if got := Gini(nil); got != 0 {
		t.Fatalf("empty Gini = %v", got)
	}
	if got := Gini([]float64{0, 0}); got != 0 {
		t.Fatalf("zero-mass Gini = %v", got)
	}
}

func TestCountInversions(t *testing.T) {
	v := []float64{3, 1, 2}
	if got := countInversions(append([]float64(nil), v...)); got != 2 {
		t.Fatalf("inversions = %d, want 2", got)
	}
	sortedv := []float64{1, 2, 3, 4}
	if got := countInversions(append([]float64(nil), sortedv...)); got != 0 {
		t.Fatalf("sorted inversions = %d", got)
	}
	rev := []float64{4, 3, 2, 1}
	if got := countInversions(append([]float64(nil), rev...)); got != 6 {
		t.Fatalf("reversed inversions = %d, want 6", got)
	}
	ties := []float64{2, 2, 2}
	if got := countInversions(append([]float64(nil), ties...)); got != 0 {
		t.Fatalf("tied inversions = %d, want 0 (strict)", got)
	}
}
