// Package chaos provides the availability invariant DHARMA's churn
// tolerance is judged against: an acknowledged write must stay readable
// once the repair machinery (republish + read-repair) has run, no
// matter which k-1 replica holders crashed in between.
//
// The package has three parts. A Ledger records, per block key and
// field, the durable floor every acknowledged write guarantees. A
// Recording store decorator wraps any dht.Store and feeds the ledger
// exactly when the underlying store acknowledges. RepairAndCheck runs
// repair rounds over a cluster's live members and then verifies every
// ledger entry through a real overlay read.
//
// The floor is deliberately the paper-consistent one, not a sum.
// DHARMA's block counts are approximate by design: increments applied
// to disjoint replica subsets during a partition are reconciled by
// max-merge to the larger side rather than added (see
// kademlia/maintain.go). What an acknowledged Append(field, Count=c)
// does guarantee is that at least one replica applied it, leaving that
// replica's count ≥ c; counts are monotone and every repair path
// max-merges, so the block must forever contain the field with count
// ≥ c. An entry created through Approximation B's conditional create
// (Init > 0) guarantees only min(Init, Count) — the storage node takes
// one branch or the other — and a data-only write (Count = 0)
// guarantees presence alone.
package chaos

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"dharma/internal/dht"
	"dharma/internal/kademlia"
	"dharma/internal/kadid"
	"dharma/internal/wire"
)

// Ledger tracks the durable floor of every acknowledged write.
type Ledger struct {
	mu    sync.Mutex
	acked map[kadid.ID]map[string]uint64
}

// NewLedger creates an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{acked: make(map[kadid.ID]map[string]uint64)}
}

// floor is the count an acknowledged append of e guarantees survives.
func floor(e *wire.Entry) uint64 {
	f := e.Count
	if e.Init > 0 && e.Init < f {
		f = e.Init
	}
	return f
}

// Record notes an acknowledged append of entries under key. Call it
// only after the store acknowledged the write; the Recording decorator
// does this automatically.
func (l *Ledger) Record(key kadid.ID, entries []wire.Entry) {
	if len(entries) == 0 {
		return // empty appends materialize nothing, so they promise nothing
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	fields, ok := l.acked[key]
	if !ok {
		fields = make(map[string]uint64, len(entries))
		l.acked[key] = fields
	}
	for i := range entries {
		e := &entries[i]
		// A presence-only write (floor 0) still materializes the field:
		// the block must contain it after repair, whatever its count.
		if f := floor(e); f >= fields[e.Field] {
			fields[e.Field] = f
		}
	}
}

// Keys returns every block key with at least one acknowledged write.
func (l *Ledger) Keys() []kadid.ID {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]kadid.ID, 0, len(l.acked))
	for k := range l.acked {
		out = append(out, k)
	}
	return out
}

// Blocks returns how many distinct blocks carry acknowledged writes;
// Fields the total number of (block, field) obligations.
func (l *Ledger) Blocks() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.acked)
}

// Fields returns the total number of acknowledged (block, field) pairs.
func (l *Ledger) Fields() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, fields := range l.acked {
		n += len(fields)
	}
	return n
}

// Violation is one acknowledged write the post-repair overlay lost.
type Violation struct {
	Key     kadid.ID
	Field   string // empty when the whole block was unreadable
	Want    uint64 // the durable floor the ledger recorded
	Got     uint64 // the count actually read (0 when missing)
	Missing bool   // the field (or block) was absent entirely
	Err     error  // the read error, when the block was unreadable
}

// String renders a violation for reports and test failures.
func (v Violation) String() string {
	switch {
	case v.Err != nil:
		return fmt.Sprintf("block %s unreadable: %v", v.Key.Short(), v.Err)
	case v.Missing:
		return fmt.Sprintf("block %s lost field %q (acked floor %d)", v.Key.Short(), v.Field, v.Want)
	default:
		return fmt.Sprintf("block %s field %q count %d below acked floor %d", v.Key.Short(), v.Field, v.Got, v.Want)
	}
}

// Check reads every recorded block through get (an unfiltered read —
// kademlia.Node.FindValue, dht.Store.Get with topN 0, ...) and returns
// one Violation per lost obligation, ordered deterministically. ctx is
// handed to every read; a cancelled check surfaces the remaining
// obligations as unreadable.
func (l *Ledger) Check(ctx context.Context, get func(context.Context, kadid.ID) ([]wire.Entry, error)) []Violation {
	l.mu.Lock()
	type obligation struct {
		key    kadid.ID
		fields map[string]uint64
	}
	obligations := make([]obligation, 0, len(l.acked))
	for k, fields := range l.acked {
		copied := make(map[string]uint64, len(fields))
		for f, c := range fields {
			copied[f] = c
		}
		obligations = append(obligations, obligation{key: k, fields: copied})
	}
	l.mu.Unlock()
	sort.Slice(obligations, func(i, j int) bool {
		return bytes.Compare(obligations[i].key[:], obligations[j].key[:]) < 0
	})

	var out []Violation
	for _, ob := range obligations {
		entries, err := get(ctx, ob.key)
		if err != nil {
			out = append(out, Violation{Key: ob.key, Missing: true, Err: err})
			continue
		}
		got := make(map[string]uint64, len(entries))
		for _, e := range entries {
			got[e.Field] = e.Count
		}
		fields := make([]string, 0, len(ob.fields))
		for f := range ob.fields {
			fields = append(fields, f)
		}
		sort.Strings(fields)
		for _, f := range fields {
			want := ob.fields[f]
			cur, present := got[f]
			switch {
			case !present:
				out = append(out, Violation{Key: ob.key, Field: f, Want: want, Missing: true})
			case cur < want:
				out = append(out, Violation{Key: ob.key, Field: f, Want: want, Got: cur})
			}
		}
	}
	return out
}

// Recording decorates a dht.Store so every acknowledged append lands in
// the ledger. A batch that returns an error records nothing: the caller
// saw a failure, so none of its items count as acknowledged (the
// conservative side — a write that did land but was reported failed can
// only make the check easier to pass, never produce a false loss).
type Recording struct {
	inner  dht.Store
	ledger *Ledger
	writes atomic.Int64
}

// NewRecording wraps inner so acknowledged appends are recorded in l.
func NewRecording(inner dht.Store, l *Ledger) *Recording {
	return &Recording{inner: inner, ledger: l}
}

// Append implements dht.Store.
func (r *Recording) Append(ctx context.Context, key kadid.ID, entries []wire.Entry) error {
	if err := r.inner.Append(ctx, key, entries); err != nil {
		return err
	}
	r.writes.Add(1)
	r.ledger.Record(key, entries)
	return nil
}

// AppendBatch implements dht.Store.
func (r *Recording) AppendBatch(ctx context.Context, items []dht.BatchItem) error {
	if err := r.inner.AppendBatch(ctx, items); err != nil {
		return err
	}
	r.writes.Add(int64(len(items)))
	for _, it := range items {
		r.ledger.Record(it.Key, it.Entries)
	}
	return nil
}

// Get implements dht.Store.
func (r *Recording) Get(ctx context.Context, key kadid.ID, topN int) ([]wire.Entry, error) {
	return r.inner.Get(ctx, key, topN)
}

// Writes returns how many acknowledged append operations were recorded.
func (r *Recording) Writes() int64 { return r.writes.Load() }

var _ dht.Store = (*Recording)(nil)

// RepairAndCheck runs `rounds` repair passes — every live cluster
// member republishing its blocks to the currently closest nodes — and
// then verifies the ledger by reading each recorded block, unfiltered,
// through the cluster's first member (which also triggers read-repair
// when that node has it enabled). It returns the surviving violations:
// an empty slice is the churn invariant holding.
func RepairAndCheck(ctx context.Context, cl *kademlia.Cluster, l *Ledger, rounds int) []Violation {
	if rounds <= 0 {
		rounds = 2
	}
	for r := 0; r < rounds; r++ {
		for _, n := range cl.Snapshot() {
			n.RepublishOnce(ctx)
		}
	}
	return checkLedger(ctx, cl, l)
}

// AntiEntropyAndCheck is RepairAndCheck with the forced republish sweep
// replaced by the timer-driven anti-entropy path: every live member runs
// `rounds` AntiEntropyOnce rounds (RepublishEvery = every), so blocks
// move only when digests disagree and recently written blocks sit out a
// round. A cluster this heals proves the digest/delta/suppression
// machinery alone — no full sweep, and with read-repair disabled no
// read-path help either — restores every acknowledged write.
func AntiEntropyAndCheck(ctx context.Context, cl *kademlia.Cluster, l *Ledger, rounds, every int) []Violation {
	if rounds <= 0 {
		rounds = 2
	}
	if every <= 0 {
		every = kademlia.DefaultRepublishEvery
	}
	for r := 0; r < rounds; r++ {
		for _, n := range cl.Snapshot() {
			n.AntiEntropyOnce(ctx, every)
		}
	}
	return checkLedger(ctx, cl, l)
}

// checkLedger verifies every ledger obligation through an unfiltered
// overlay read from the cluster's first member.
func checkLedger(ctx context.Context, cl *kademlia.Cluster, l *Ledger) []Violation {
	reader := cl.NodeAt(0)
	if reader == nil {
		return []Violation{{Err: fmt.Errorf("chaos: cluster has no members left to read from")}}
	}
	return l.Check(ctx, func(ctx context.Context, key kadid.ID) ([]wire.Entry, error) {
		return reader.FindValue(ctx, key, 0)
	})
}
