package chaos

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"dharma/internal/dht"
	"dharma/internal/kademlia"
	"dharma/internal/kadid"
	"dharma/internal/wire"
)

func TestLedgerFloors(t *testing.T) {
	l := NewLedger()
	key := kadid.HashString("k")

	// Plain append: floor is the count.
	l.Record(key, []wire.Entry{{Field: "a", Count: 3}})
	// Conditional create (Approximation B): the storage node either
	// creates at Init or adds Count, so only min(Init, Count) is owed.
	l.Record(key, []wire.Entry{{Field: "b", Init: 10, Count: 2}})
	// Data-only write: presence is owed, no count.
	l.Record(key, []wire.Entry{{Field: "c", Count: 0, Data: []byte("uri")}})
	// A later larger floor wins; a smaller one must not regress it.
	l.Record(key, []wire.Entry{{Field: "a", Count: 9}})
	l.Record(key, []wire.Entry{{Field: "a", Count: 1}})

	good := map[string]uint64{"a": 9, "b": 2, "c": 0}
	viol := l.Check(context.Background(), func(_ context.Context, k kadid.ID) ([]wire.Entry, error) {
		var out []wire.Entry
		for f, c := range good {
			out = append(out, wire.Entry{Field: f, Count: c})
		}
		return out, nil
	})
	if len(viol) != 0 {
		t.Fatalf("exact floors flagged as violations: %v", viol)
	}

	viol = l.Check(context.Background(), func(_ context.Context, k kadid.ID) ([]wire.Entry, error) {
		return []wire.Entry{{Field: "a", Count: 8}, {Field: "b", Count: 2}}, nil
	})
	// a below floor, c missing entirely.
	if len(viol) != 2 {
		t.Fatalf("want 2 violations (a low, c missing), got %v", viol)
	}
}

func TestLedgerEmptyAppendPromisesNothing(t *testing.T) {
	l := NewLedger()
	l.Record(kadid.HashString("k"), nil)
	if got := l.Blocks(); got != 0 {
		t.Fatalf("empty append created %d obligations", got)
	}
}

func TestLedgerCheckReportsUnreadableBlocks(t *testing.T) {
	l := NewLedger()
	l.Record(kadid.HashString("k"), []wire.Entry{{Field: "f", Count: 1}})
	boom := errors.New("boom")
	viol := l.Check(context.Background(), func(context.Context, kadid.ID) ([]wire.Entry, error) { return nil, boom })
	if len(viol) != 1 || !errors.Is(viol[0].Err, boom) {
		t.Fatalf("viol = %v", viol)
	}
}

func TestRecordingOnlyRecordsAcknowledged(t *testing.T) {
	l := NewLedger()
	inner := dht.NewLocal()
	rec := NewRecording(failingStore{inner: inner, failKey: kadid.HashString("bad")}, l)

	good := kadid.HashString("good")
	if err := rec.Append(context.Background(), good, []wire.Entry{{Field: "f", Count: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := rec.Append(context.Background(), kadid.HashString("bad"), []wire.Entry{{Field: "f", Count: 2}}); err == nil {
		t.Fatal("failing append did not error")
	}
	if err := rec.AppendBatch(context.Background(), []dht.BatchItem{
		{Key: kadid.HashString("bad"), Entries: []wire.Entry{{Field: "x", Count: 1}}},
		{Key: good, Entries: []wire.Entry{{Field: "y", Count: 1}}},
	}); err == nil {
		t.Fatal("failing batch did not error")
	}
	if got := l.Blocks(); got != 1 {
		t.Fatalf("ledger holds %d blocks, want only the acknowledged one", got)
	}
	if got := l.Fields(); got != 1 {
		t.Fatalf("ledger holds %d fields, want 1 (the failed batch must record nothing)", got)
	}
	if rec.Writes() != 1 {
		t.Fatalf("Writes = %d, want 1", rec.Writes())
	}
}

type failingStore struct {
	inner   dht.Store
	failKey kadid.ID
}

func (s failingStore) Append(ctx context.Context, key kadid.ID, entries []wire.Entry) error {
	if key == s.failKey {
		return errors.New("injected append failure")
	}
	return s.inner.Append(ctx, key, entries)
}

func (s failingStore) AppendBatch(ctx context.Context, items []dht.BatchItem) error {
	for _, it := range items {
		if it.Key == s.failKey {
			return errors.New("injected batch failure")
		}
	}
	return s.inner.AppendBatch(ctx, items)
}

func (s failingStore) Get(ctx context.Context, key kadid.ID, topN int) ([]wire.Entry, error) {
	return s.inner.Get(ctx, key, topN)
}

func TestRepairAndCheckSurvivesKMinusOneCrashes(t *testing.T) {
	cl, err := kademlia.NewCluster(kademlia.ClusterConfig{
		N:    32,
		Node: kademlia.Config{K: 5, Alpha: 3, ReadRepair: true},
		Seed: 81,
	})
	if err != nil {
		t.Fatal(err)
	}
	ledger := NewLedger()
	store := NewRecording(dht.NewOverlay(cl.NodeAt(0), nil), ledger)

	for i := 0; i < 20; i++ {
		key := kadid.HashString(fmt.Sprintf("blk%d", i))
		if err := store.Append(context.Background(), key, []wire.Entry{{Field: "f", Count: uint64(i + 1)}}); err != nil {
			t.Fatal(err)
		}
	}

	// Crash k-1 = 4 holders of block 0, keeping one live.
	key0 := kadid.HashString("blk0")
	crashed := 0
	for _, c := range cl.ClosestGroundTruth(key0, 5) {
		if crashed == 4 {
			break
		}
		for i, n := range cl.Snapshot() {
			if n.Self().ID == c.ID && i != 0 && n.LocalStore().Has(key0) {
				if _, err := cl.Crash(i); err != nil {
					t.Fatal(err)
				}
				crashed++
				break
			}
		}
	}
	if crashed == 0 {
		t.Skip("no crashable holders under this seed")
	}

	if viol := RepairAndCheck(context.Background(), cl, ledger, 2); len(viol) != 0 {
		t.Fatalf("lost %d acknowledged writes after crashing %d holders: %v", len(viol), crashed, viol)
	}
}
