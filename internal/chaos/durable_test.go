package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"dharma/internal/dht"
	"dharma/internal/kademlia"
	"dharma/internal/kadid"
	"dharma/internal/persist"
	"dharma/internal/wire"
)

// TestDurableWipeRecover is the process-crash half of the availability
// invariant: on a durable cluster a crash is a real kill (the node's
// WAL dies mid-flight, its memory is abandoned) and a revival is a
// restart that recovers only what the disk holds. Acknowledged writes
// must survive waves of such wipe-and-recover cycles — including waves
// that take down EVERY holder of a block at once, which the pure
// detach-model chaos test could never distinguish from a warm standby.
func TestDurableWipeRecover(t *testing.T) {
	const (
		nodes   = 16
		clients = 2
		seed    = 4242
	)
	cl, err := kademlia.NewCluster(kademlia.ClusterConfig{
		N:       nodes,
		Node:    kademlia.Config{K: 4, Alpha: 3, ReadRepair: true, MinStoreAcks: 2},
		Seed:    seed,
		DataDir: t.TempDir(),
		Persist: persist.Options{Sync: persist.SyncNone, SegmentBytes: 1 << 14, CompactBytes: 1 << 15},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Shutdown()

	ledger := NewLedger()
	stores := make([]*Recording, clients)
	for i := range stores {
		stores[i] = NewRecording(dht.NewOverlay(cl.NodeAt(i), nil), ledger)
	}

	rng := rand.New(rand.NewSource(seed))
	write := func(round, i int) {
		st := stores[rng.Intn(clients)]
		key := kadid.HashString(fmt.Sprintf("blk%d", rng.Intn(24)))
		// Failures are fine (a quorum may be down mid-wave); only
		// acknowledged writes enter the ledger, and only those are owed.
		st.Append(context.Background(), key, []wire.Entry{ //nolint:errcheck
			{Field: fmt.Sprintf("f%d", rng.Intn(6)), Count: uint64(1 + rng.Intn(5))},
		})
	}

	for round := 0; round < 4; round++ {
		for i := 0; i < 30; i++ {
			write(round, i)
		}

		// Kill a wave of storage nodes process-style (clients are
		// protected: they are the ledger's readers and writers).
		var wave []*kademlia.Node
		kills := 3 + rng.Intn(3)
		for k := 0; k < kills && cl.Len() > clients+2; k++ {
			idx := clients + rng.Intn(cl.Len()-clients)
			n, err := cl.Crash(idx)
			if err != nil {
				continue
			}
			wave = append(wave, n)
		}

		// More traffic while the wave is down: acked writes here are
		// owed too (the quorum that acked them is still alive).
		for i := 0; i < 15; i++ {
			write(round, i)
		}

		// Restart the wave from disk.
		for _, n := range wave {
			if _, err := cl.Revive(context.Background(), n, 0); err != nil {
				t.Fatalf("round %d: revive: %v", round, err)
			}
		}

		if viol := RepairAndCheck(context.Background(), cl, ledger, 2); len(viol) != 0 {
			t.Fatalf("round %d: %d of %d acknowledged (block,field) obligations lost after wipe-and-recover: %v",
				round, len(viol), ledger.Fields(), viol[:min(len(viol), 5)])
		}
	}
	if ledger.Fields() == 0 {
		t.Fatal("test exercised nothing: no acknowledged writes recorded")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
