// Package core implements DHARMA, the paper's primary contribution: the
// mapping of a folksonomy onto a DHT as four block types, the three
// primitives (resource insertion, tagging, search step) with the exact
// lookup costs of Table I, and the two approximations that bound the
// cost of a tagging operation:
//
//   - Approximation A: the reverse FG arcs (τ,t), τ ∈ Tags(r), are
//     updated only for a uniform random subset of Tags(r) of size at
//     most k (the "connection parameter"), so tagging costs 4+k lookups
//     instead of 4+|Tags(r)|.
//   - Approximation B: a forward FG arc (t,τ) that does not exist yet
//     is created at weight 1 instead of u(τ,r) (existing arcs still grow
//     by the theoretic increment). Two users concurrently adding the
//     same new tag can then inflate a fresh arc by at most 1, instead of
//     double-counting a u(τ,r)-sized increment.
//
// The engine runs over any dht.Store: a live Kademlia overlay or an
// in-process store with identical semantics.
package core

import (
	"fmt"

	"dharma/internal/kadid"
)

// BlockType discriminates the four block families of §IV-A.
type BlockType byte

// The four block types. A block's DHT key is derived from the name of
// its graph node concatenated with the block type, so the four
// projections of the same name live at independent overlay locations.
const (
	// BlockResourceTags is r̄: {(t, u(t,r)) | t ∈ Tags(r)}.
	BlockResourceTags BlockType = 1
	// BlockTagResources is t̄: {(r, u(t,r)) | r ∈ Res(t)}.
	BlockTagResources BlockType = 2
	// BlockTagNeighbors is t̂: {(t', sim(t,t')) | t' ∈ N_FG(t)}.
	BlockTagNeighbors BlockType = 3
	// BlockResourceURI is r̃: (r, URI(r)).
	BlockResourceURI BlockType = 4
)

// String names the block type with the paper's notation.
func (bt BlockType) String() string {
	switch bt {
	case BlockResourceTags:
		return "r̄ (resource→tags)"
	case BlockTagResources:
		return "t̄ (tag→resources)"
	case BlockTagNeighbors:
		return "t̂ (tag→neighbors)"
	case BlockResourceURI:
		return "r̃ (resource URI)"
	default:
		return fmt.Sprintf("block-type-%d", byte(bt))
	}
}

// BlockKey maps a graph-node name and block type to the DHT key the
// block lives under: SHA-1(name ‖ "|" ‖ type). The type is the final
// "|"-separated segment, so distinct (name, type) pairs can never
// collide even when names themselves contain '|'.
func BlockKey(name string, bt BlockType) kadid.ID {
	return kadid.HashString(fmt.Sprintf("%s|%d", name, bt))
}
