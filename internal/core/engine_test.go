package core_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"dharma/internal/core"
	"dharma/internal/dht"
	"dharma/internal/folksonomy"
	"dharma/internal/kademlia"
	"dharma/internal/kadid"
	"dharma/internal/wire"
)

func newLocalEngine(t *testing.T, cfg core.Config) (*core.Engine, *dht.Local) {
	t.Helper()
	store := dht.NewLocal()
	e, err := core.NewEngine(store, cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return e, store
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := core.NewEngine(dht.NewLocal(), core.Config{Mode: core.Approximated}); err == nil {
		t.Fatal("approximated engine without K accepted")
	}
	if _, err := core.NewEngine(dht.NewLocal(), core.Config{Mode: core.Approximated, K: 1}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestBlockKeysDistinct(t *testing.T) {
	types := []core.BlockType{core.BlockResourceTags, core.BlockTagResources,
		core.BlockTagNeighbors, core.BlockResourceURI}
	seen := map[string]string{}
	for _, name := range []string{"rock", "pop", "rock|1", "rock|2", "a|b|3"} {
		for _, bt := range types {
			k := core.BlockKey(name, bt).String()
			label := fmt.Sprintf("%s/%d", name, bt)
			if prev, dup := seen[k]; dup {
				t.Fatalf("key collision: %s and %s", prev, label)
			}
			seen[k] = label
		}
	}
	// Same (name, type) must be stable.
	if core.BlockKey("rock", core.BlockTagNeighbors) != core.BlockKey("rock", core.BlockTagNeighbors) {
		t.Fatal("BlockKey not deterministic")
	}
}

func TestInsertResourceCost(t *testing.T) {
	// Table I row 1: Insert(r, t1..m) costs 2+2m lookups in both modes.
	for _, mode := range []core.Mode{core.Naive, core.Approximated} {
		for m := 0; m <= 12; m++ {
			e, store := newLocalEngine(t, core.Config{Mode: mode, K: 3})
			tags := make([]string, m)
			for i := range tags {
				tags[i] = fmt.Sprintf("t%d", i)
			}
			before := store.Lookups()
			if err := e.InsertResource(context.Background(), "r", "uri:r", tags...); err != nil {
				t.Fatal(err)
			}
			got := store.Lookups() - before
			want := int64(2 + 2*m)
			if got != want {
				t.Fatalf("mode=%v m=%d: cost %d lookups, Table I says %d", mode, m, got, want)
			}
		}
	}
}

func TestInsertResourceDedupCost(t *testing.T) {
	e, store := newLocalEngine(t, core.Config{})
	before := store.Lookups()
	if err := e.InsertResource(context.Background(), "r", "", "a", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if got := store.Lookups() - before; got != 2+2*2 {
		t.Fatalf("cost %d, want %d (duplicates must not be charged)", got, 2+2*2)
	}
}

func TestTagCostNaive(t *testing.T) {
	// Table I row 2, naive: Tag(r,t) costs 4+|Tags(r)| lookups (Tags(r)
	// counted without t itself).
	e, store := newLocalEngine(t, core.Config{Mode: core.Naive})
	tags := []string{"a", "b", "c", "d", "e"}
	if err := e.InsertResource(context.Background(), "r", "", tags...); err != nil {
		t.Fatal(err)
	}
	before := store.Lookups()
	if err := e.Tag(context.Background(), "r", "fresh"); err != nil {
		t.Fatal(err)
	}
	if got := store.Lookups() - before; got != 4+5 {
		t.Fatalf("new tag: cost %d, want %d", got, 4+5)
	}

	before = store.Lookups()
	if err := e.Tag(context.Background(), "r", "a"); err != nil { // re-tag: |Tags(r)\{a}| = 5
		t.Fatal(err)
	}
	if got := store.Lookups() - before; got != 4+5 {
		t.Fatalf("repeat tag: cost %d, want %d", got, 4+5)
	}
}

func TestTagCostApproximated(t *testing.T) {
	// Table I row 2, approximated: Tag(r,t) costs 4+k lookups however
	// many tags the resource carries.
	const k = 3
	e, store := newLocalEngine(t, core.Config{Mode: core.Approximated, K: k})
	var tags []string
	for i := 0; i < 40; i++ {
		tags = append(tags, fmt.Sprintf("t%02d", i))
	}
	if err := e.InsertResource(context.Background(), "r", "", tags...); err != nil {
		t.Fatal(err)
	}
	before := store.Lookups()
	if err := e.Tag(context.Background(), "r", "fresh"); err != nil {
		t.Fatal(err)
	}
	if got := store.Lookups() - before; got != 4+k {
		t.Fatalf("cost %d, want %d", got, 4+k)
	}

	// With fewer than k other tags, the subset is everything.
	e2, store2 := newLocalEngine(t, core.Config{Mode: core.Approximated, K: 10})
	if err := e2.InsertResource(context.Background(), "r", "", "x", "y"); err != nil {
		t.Fatal(err)
	}
	before = store2.Lookups()
	if err := e2.Tag(context.Background(), "r", "z"); err != nil {
		t.Fatal(err)
	}
	if got := store2.Lookups() - before; got != 4+2 {
		t.Fatalf("small resource: cost %d, want %d", got, 4+2)
	}
}

func TestSearchStepCost(t *testing.T) {
	// Table I row 3: a search step costs exactly 2 lookups.
	e, store := newLocalEngine(t, core.Config{})
	if err := e.InsertResource(context.Background(), "r", "", "rock", "pop"); err != nil {
		t.Fatal(err)
	}
	before := store.Lookups()
	if _, _, err := e.SearchStep(context.Background(), "rock"); err != nil {
		t.Fatal(err)
	}
	if got := store.Lookups() - before; got != 2 {
		t.Fatalf("cost %d, want 2", got)
	}
}

func TestTagCostProperty(t *testing.T) {
	// Property: over random workloads the measured lookup cost of every
	// operation equals the Table I formula.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		k := 1 + rng.Intn(6)
		mode := core.Naive
		if trial%2 == 1 {
			mode = core.Approximated
		}
		e, store := newLocalEngine(t, core.Config{Mode: mode, K: k, Seed: int64(trial)})
		model := folksonomy.New()

		nRes := 0
		for op := 0; op < 150; op++ {
			if nRes == 0 || rng.Float64() < 0.2 {
				m := rng.Intn(8)
				tags := make([]string, 0, m)
				for len(tags) < m {
					tg := fmt.Sprintf("t%d", rng.Intn(20))
					dup := false
					for _, x := range tags {
						if x == tg {
							dup = true
						}
					}
					if !dup {
						tags = append(tags, tg)
					}
				}
				r := fmt.Sprintf("r%d", nRes)
				before := store.Lookups()
				if err := e.InsertResource(context.Background(), r, "", tags...); err != nil {
					t.Fatal(err)
				}
				if got := store.Lookups() - before; got != int64(2+2*len(tags)) {
					t.Fatalf("trial %d: insert m=%d cost %d", trial, len(tags), got)
				}
				if err := model.InsertResource(r, "", tags...); err != nil {
					t.Fatal(err)
				}
				nRes++
			} else {
				r := fmt.Sprintf("r%d", rng.Intn(nRes))
				tg := fmt.Sprintf("t%d", rng.Intn(20))
				others := model.TagDegree(r)
				if model.U(tg, r) > 0 {
					others-- // t itself is excluded from the reverse set
				}
				want := int64(4 + others)
				if mode == core.Approximated && others > k {
					want = int64(4 + k)
				}
				before := store.Lookups()
				if err := e.Tag(context.Background(), r, tg); err != nil {
					t.Fatal(err)
				}
				if got := store.Lookups() - before; got != want {
					t.Fatalf("trial %d: tag cost %d, want %d (others=%d mode=%v k=%d)",
						trial, got, want, others, mode, k)
				}
				if err := model.Tag(r, tg); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestNaiveEngineMatchesTheoreticModel is the central correctness
// property: replaying any operation sequence through the naive engine
// must reproduce the in-memory model of §III exactly — same TRG weights,
// same FG arcs, same similarity values.
func TestNaiveEngineMatchesTheoreticModel(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	e, store := newLocalEngine(t, core.Config{Mode: core.Naive, TopN: -1})
	model := folksonomy.New()

	nRes := 0
	for op := 0; op < 400; op++ {
		if nRes == 0 || rng.Float64() < 0.15 {
			var tags []string
			for i := 0; i < 6; i++ {
				if rng.Float64() < 0.5 {
					tags = append(tags, fmt.Sprintf("t%d", rng.Intn(12)))
				}
			}
			r := fmt.Sprintf("r%d", nRes)
			if err := e.InsertResource(context.Background(), r, "uri:"+r, tags...); err != nil {
				t.Fatal(err)
			}
			if err := model.InsertResource(r, "uri:"+r, tags...); err != nil {
				t.Fatal(err)
			}
			nRes++
		} else {
			r := fmt.Sprintf("r%d", rng.Intn(nRes))
			tg := fmt.Sprintf("t%d", rng.Intn(12))
			if err := e.Tag(context.Background(), r, tg); err != nil {
				t.Fatal(err)
			}
			if err := model.Tag(r, tg); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Compare FG adjacency per tag.
	for _, tg := range model.TagNames() {
		wantArcs := map[string]int{}
		for _, w := range model.Neighbors(tg) {
			wantArcs[w.Name] = w.Weight
		}
		got, err := e.Neighbors(context.Background(), tg)
		if err != nil {
			t.Fatal(err)
		}
		gotArcs := map[string]int{}
		for _, w := range got {
			if w.Weight != 0 {
				gotArcs[w.Name] = w.Weight
			}
		}
		if len(gotArcs) != len(wantArcs) {
			t.Fatalf("tag %s: %d arcs on DHT, model has %d (%v vs %v)",
				tg, len(gotArcs), len(wantArcs), gotArcs, wantArcs)
		}
		for t2, w := range wantArcs {
			if gotArcs[t2] != w {
				t.Fatalf("sim(%s,%s) = %d on DHT, model says %d", tg, t2, gotArcs[t2], w)
			}
		}
	}

	// Compare TRG weights via r̄ blocks.
	for _, r := range model.ResourceNames() {
		got, err := e.TagsOf(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		gotU := map[string]int{}
		for _, w := range got {
			gotU[w.Name] = w.Weight
		}
		for _, w := range model.Tags(r) {
			if gotU[w.Name] != w.Weight {
				t.Fatalf("u(%s,%s) = %d on DHT, model says %d", w.Name, r, gotU[w.Name], w.Weight)
			}
		}
		if len(gotU) != model.TagDegree(r) {
			t.Fatalf("resource %s: %d tags on DHT, model has %d", r, len(gotU), model.TagDegree(r))
		}
	}
	_ = store
}

func TestApproximationBForwardArcWeight(t *testing.T) {
	// When a tagging operation creates forward arcs, the approximated
	// engine writes weight 1 where the naive engine writes u(τ,r).
	build := func(mode core.Mode) *core.Engine {
		e, _ := newLocalEngine(t, core.Config{Mode: mode, K: 100})
		if err := e.InsertResource(context.Background(), "r", "", "a"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ { // u(a,r) = 5
			if err := e.Tag(context.Background(), "r", "a"); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Tag(context.Background(), "r", "fresh"); err != nil {
			t.Fatal(err)
		}
		return e
	}

	naive := build(core.Naive)
	ws, err := naive.Neighbors(context.Background(), "fresh")
	if err != nil || len(ws) != 1 || ws[0].Weight != 5 {
		t.Fatalf("naive sim(fresh,a) = %v (err %v), want 5", ws, err)
	}

	approx := build(core.Approximated)
	ws, err = approx.Neighbors(context.Background(), "fresh")
	if err != nil || len(ws) != 1 || ws[0].Weight != 1 {
		t.Fatalf("approx sim(fresh,a) = %v (err %v), want 1 (Approximation B)", ws, err)
	}
}

func TestApproximationBExistingArcGrowsTheoretically(t *testing.T) {
	// Approximation B dampens only arc creation; an arc that already
	// exists still grows by the theoretic increment u(τ,r).
	e, _ := newLocalEngine(t, core.Config{Mode: core.Approximated, K: 100})
	// Create arc (fresh,a) with weight 1 on r1 (u(a,r1)=1 at creation).
	if err := e.InsertResource(context.Background(), "r1", "", "a"); err != nil {
		t.Fatal(err)
	}
	if err := e.Tag(context.Background(), "r1", "fresh"); err != nil {
		t.Fatal(err)
	}
	// On r2, a carries weight 4; adding fresh (arc now exists) must add
	// the full u(a,r2)=4.
	if err := e.InsertResource(context.Background(), "r2", "", "a"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := e.Tag(context.Background(), "r2", "a"); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Tag(context.Background(), "r2", "fresh"); err != nil {
		t.Fatal(err)
	}
	ws, err := e.Neighbors(context.Background(), "fresh")
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		if w.Name == "a" {
			if w.Weight != 1+4 {
				t.Fatalf("sim(fresh,a) = %d, want 5 (created at 1, then +u=4)", w.Weight)
			}
			return
		}
	}
	t.Fatal("arc (fresh,a) missing")
}

func TestApproximatedGraphIsBoundedByNaive(t *testing.T) {
	// The approximated FG must be a subgraph of the naive FG with
	// pointwise smaller-or-equal weights.
	rng := rand.New(rand.NewSource(17))
	naive, _ := newLocalEngine(t, core.Config{Mode: core.Naive})
	approx, _ := newLocalEngine(t, core.Config{Mode: core.Approximated, K: 2, Seed: 3})

	tags := []string{"a", "b", "c", "d", "e", "f", "g"}
	for i := 0; i < 10; i++ {
		r := fmt.Sprintf("r%d", i)
		if err := naive.InsertResource(context.Background(), r, ""); err != nil {
			t.Fatal(err)
		}
		if err := approx.InsertResource(context.Background(), r, ""); err != nil {
			t.Fatal(err)
		}
	}
	for op := 0; op < 300; op++ {
		r := fmt.Sprintf("r%d", rng.Intn(10))
		tg := tags[rng.Intn(len(tags))]
		if err := naive.Tag(context.Background(), r, tg); err != nil {
			t.Fatal(err)
		}
		if err := approx.Tag(context.Background(), r, tg); err != nil {
			t.Fatal(err)
		}
	}

	for _, tg := range tags {
		nv, err := naive.Neighbors(context.Background(), tg)
		if err != nil {
			t.Fatal(err)
		}
		naiveW := map[string]int{}
		for _, w := range nv {
			naiveW[w.Name] = w.Weight
		}
		av, err := approx.Neighbors(context.Background(), tg)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range av {
			if w.Weight == 0 {
				continue
			}
			nw, ok := naiveW[w.Name]
			if !ok {
				t.Fatalf("approximated arc (%s,%s) absent from naive graph", tg, w.Name)
			}
			if w.Weight > nw {
				t.Fatalf("sim(%s,%s): approx %d > naive %d", tg, w.Name, w.Weight, nw)
			}
		}
	}
}

func TestParallelReverseUpdatesEquivalent(t *testing.T) {
	// Parallel and sequential engines must produce identical graphs and
	// identical costs for the same seeded workload.
	run := func(parallel bool) (*core.Engine, *dht.Local) {
		e, store := newLocalEngine(t, core.Config{
			Mode: core.Approximated, K: 3, Seed: 11, Parallel: parallel,
		})
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 8; i++ {
			if err := e.InsertResource(context.Background(), fmt.Sprintf("r%d", i), ""); err != nil {
				t.Fatal(err)
			}
		}
		for op := 0; op < 200; op++ {
			r := fmt.Sprintf("r%d", rng.Intn(8))
			tg := fmt.Sprintf("t%d", rng.Intn(10))
			if err := e.Tag(context.Background(), r, tg); err != nil {
				t.Fatal(err)
			}
		}
		return e, store
	}
	seq, seqStore := run(false)
	par, parStore := run(true)
	if seqStore.Lookups() != parStore.Lookups() {
		t.Fatalf("lookup counts differ: %d vs %d", seqStore.Lookups(), parStore.Lookups())
	}
	for i := 0; i < 10; i++ {
		tg := fmt.Sprintf("t%d", i)
		a, err := seq.Neighbors(context.Background(), tg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.Neighbors(context.Background(), tg)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("tag %s: %d vs %d arcs", tg, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("tag %s arc %d: %+v vs %+v", tg, j, a[j], b[j])
			}
		}
	}
}

func TestSearchStepFilteringAndOrder(t *testing.T) {
	e, _ := newLocalEngine(t, core.Config{TopN: 3})
	var tags []string
	for i := 0; i < 10; i++ {
		tags = append(tags, fmt.Sprintf("t%d", i))
	}
	if err := e.InsertResource(context.Background(), "r0", "", tags...); err != nil {
		t.Fatal(err)
	}
	// Make t1 strongly related to t0 (co-tag them on more resources).
	for i := 1; i < 5; i++ {
		r := fmt.Sprintf("rr%d", i)
		if err := e.InsertResource(context.Background(), r, "", "t0", "t1"); err != nil {
			t.Fatal(err)
		}
	}
	related, resources, err := e.SearchStep(context.Background(), "t0")
	if err != nil {
		t.Fatal(err)
	}
	if len(related) != 3 {
		t.Fatalf("TopN not applied to tags: %d", len(related))
	}
	if related[0].Name != "t1" {
		t.Fatalf("strongest neighbour = %+v, want t1", related[0])
	}
	for i := 1; i < len(related); i++ {
		if related[i].Weight > related[i-1].Weight {
			t.Fatal("related tags not sorted by similarity")
		}
	}
	if len(resources) != 3 {
		t.Fatalf("TopN not applied to resources: %d", len(resources))
	}
}

func TestSearchStepUnknownTag(t *testing.T) {
	e, _ := newLocalEngine(t, core.Config{})
	if _, _, err := e.SearchStep(context.Background(), "ghost"); !errors.Is(err, core.ErrNoSuchTag) {
		t.Fatalf("want ErrNoSuchTag, got %v", err)
	}
}

func TestResolveURI(t *testing.T) {
	e, _ := newLocalEngine(t, core.Config{})
	if err := e.InsertResource(context.Background(), "song", "http://example/song.ogg", "rock"); err != nil {
		t.Fatal(err)
	}
	uri, err := e.ResolveURI(context.Background(), "song")
	if err != nil {
		t.Fatal(err)
	}
	if uri != "http://example/song.ogg" {
		t.Fatalf("URI = %q", uri)
	}
	if _, err := e.ResolveURI(context.Background(), "ghost"); err == nil {
		t.Fatal("ResolveURI on missing resource succeeded")
	}
}

func TestApproximationADeterministicUnderSeed(t *testing.T) {
	run := func() []folksonomy.Weighted {
		e, _ := newLocalEngine(t, core.Config{Mode: core.Approximated, K: 2, Seed: 77})
		if err := e.InsertResource(context.Background(), "r", "", "a", "b", "c", "d", "e", "f"); err != nil {
			t.Fatal(err)
		}
		if err := e.Tag(context.Background(), "r", "x"); err != nil {
			t.Fatal(err)
		}
		var out []folksonomy.Weighted
		for _, tg := range []string{"a", "b", "c", "d", "e", "f"} {
			ws, err := e.Neighbors(context.Background(), tg)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range ws {
				if w.Name == "x" {
					out = append(out, folksonomy.Weighted{Name: tg, Weight: w.Weight})
				}
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different subset sizes: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("subset differs under same seed: %v vs %v", a, b)
		}
	}
	if len(a) != 2 {
		t.Fatalf("reverse updates = %d, want K=2", len(a))
	}
}

// TestEngineOverRealOverlay runs the same workload over a live Kademlia
// cluster and over the in-process store; the resulting graphs must agree.
func TestEngineOverRealOverlay(t *testing.T) {
	cl, err := kademlia.NewCluster(kademlia.ClusterConfig{
		N:    24,
		Node: kademlia.Config{K: 8, Alpha: 3},
		Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	over, err := core.NewEngine(dht.NewOverlay(cl.Nodes[4], nil), core.Config{Mode: core.Approximated, K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	local, err := core.NewEngine(dht.NewLocal(), core.Config{Mode: core.Approximated, K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	type op struct {
		insert bool
		r, t   string
		tags   []string
	}
	ops := []op{
		{insert: true, r: "r1", tags: []string{"rock", "pop"}},
		{insert: true, r: "r2", tags: []string{"rock", "indie", "live"}},
		{r: "r1", t: "indie"},
		{r: "r1", t: "rock"},
		{r: "r2", t: "pop"},
		{insert: true, r: "r3", tags: []string{"pop"}},
		{r: "r3", t: "rock"},
	}
	for _, o := range ops {
		if o.insert {
			if err := over.InsertResource(context.Background(), o.r, "uri:"+o.r, o.tags...); err != nil {
				t.Fatal(err)
			}
			if err := local.InsertResource(context.Background(), o.r, "uri:"+o.r, o.tags...); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := over.Tag(context.Background(), o.r, o.t); err != nil {
				t.Fatal(err)
			}
			if err := local.Tag(context.Background(), o.r, o.t); err != nil {
				t.Fatal(err)
			}
		}
	}

	for _, tg := range []string{"rock", "pop", "indie", "live"} {
		a, err := over.Neighbors(context.Background(), tg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := local.Neighbors(context.Background(), tg)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("tag %s: overlay %v vs local %v", tg, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("tag %s entry %d: overlay %+v vs local %+v", tg, i, a[i], b[i])
			}
		}
	}
	uri, err := over.ResolveURI(context.Background(), "r2")
	if err != nil || uri != "uri:r2" {
		t.Fatalf("overlay ResolveURI = %q, %v", uri, err)
	}
}

func TestTagOnExistingTagCreatesNoPhantomBlock(t *testing.T) {
	// Re-tagging a resource whose tag set is {t} produces an empty
	// forward-arc append. The lookup is still charged (Table I), but no
	// empty t̂ block may materialize: Has flipping true and EntryCount
	// moving would skew the hotspot accounting.
	e, store := newLocalEngine(t, core.Config{Mode: core.Approximated, K: 5})
	if err := e.InsertResource(context.Background(), "r", "uri:r", "solo"); err != nil {
		t.Fatal(err)
	}
	tHat := core.BlockKey("solo", core.BlockTagNeighbors)
	if store.Raw().Has(tHat) {
		t.Fatal("single-tag insert materialized an empty t̂ block")
	}
	blocks, entries := store.Raw().Len(), store.Raw().EntryCount()

	before := store.Lookups()
	if err := e.Tag(context.Background(), "r", "solo"); err != nil {
		t.Fatal(err)
	}
	// Cost stays 4+0: 1 get of r̄, appends of r̄/t̄/t̂, no reverse arcs.
	if got := store.Lookups() - before; got != 4 {
		t.Fatalf("re-tag cost %d lookups, want 4", got)
	}
	if store.Raw().Has(tHat) {
		t.Fatal("re-tag materialized a phantom empty t̂ block")
	}
	if store.Raw().Len() != blocks || store.Raw().EntryCount() != entries {
		t.Fatalf("storage accounting moved: blocks %d->%d entries %d->%d",
			blocks, store.Raw().Len(), entries, store.Raw().EntryCount())
	}
}

// selectiveFailStore serves a canned r̄ read and fails appends to a
// chosen set of block keys — a stand-in for an overlay where some
// replica sets are unreachable.
type selectiveFailStore struct {
	prior []wire.Entry        // served for every Get
	fail  map[kadid.ID]string // failing keys -> name for the error
}

func (s *selectiveFailStore) failErr(key kadid.ID) error {
	if name, ok := s.fail[key]; ok {
		return fmt.Errorf("replica set for %s unreachable", name)
	}
	return nil
}

func (s *selectiveFailStore) Append(ctx context.Context, key kadid.ID, entries []wire.Entry) error {
	return s.failErr(key)
}

func (s *selectiveFailStore) AppendBatch(ctx context.Context, items []dht.BatchItem) error {
	errs := make([]error, len(items))
	for i := range items {
		errs[i] = s.failErr(items[i].Key)
	}
	return errors.Join(errs...)
}

func (s *selectiveFailStore) Get(context.Context, kadid.ID, int) ([]wire.Entry, error) {
	return s.prior, nil
}

func newSelectiveFailStore(tags []string, failing ...string) *selectiveFailStore {
	s := &selectiveFailStore{fail: make(map[kadid.ID]string)}
	for _, tag := range tags {
		s.prior = append(s.prior, wire.Entry{Field: tag, Count: 1})
	}
	for _, tag := range failing {
		s.fail[core.BlockKey(tag, core.BlockTagNeighbors)] = tag
	}
	return s
}

func TestReverseArcFailuresAllReported(t *testing.T) {
	// Both reverse-arc paths — the parallel per-arc appends and the
	// non-parallel batched append — must surface every failed arc, not
	// just one: the load harness counts failures from what Tag returns.
	for _, parallel := range []bool{true, false} {
		name := "batched"
		if parallel {
			name = "parallel"
		}
		t.Run(name, func(t *testing.T) {
			store := newSelectiveFailStore([]string{"a", "b", "c", "d"}, "a", "c")
			e, err := core.NewEngine(store, core.Config{Mode: core.Naive, Parallel: parallel})
			if err != nil {
				t.Fatal(err)
			}
			err = e.Tag(context.Background(), "r", "fresh")
			if err == nil {
				t.Fatal("Tag succeeded despite failing reverse arcs")
			}
			for _, want := range []string{"a", "c"} {
				if !strings.Contains(err.Error(), "replica set for "+want) {
					t.Fatalf("error dropped the %q failure:\n%v", want, err)
				}
			}
		})
	}
}

func TestInsertAndTagCostsSurviveBatching(t *testing.T) {
	// The batched write path must not change Table-I accounting: every
	// batch item is one block operation.
	e, store := newLocalEngine(t, core.Config{Mode: core.Approximated, K: 2})

	before := store.Lookups()
	if err := e.InsertResource(context.Background(), "r", "uri:r", "t0", "t1", "t2", "t3"); err != nil {
		t.Fatal(err)
	}
	if got, want := store.Lookups()-before, int64(2+2*4); got != want {
		t.Fatalf("insert cost %d lookups, want %d", got, want)
	}

	before = store.Lookups()
	if err := e.Tag(context.Background(), "r", "fresh"); err != nil {
		t.Fatal(err)
	}
	if got, want := store.Lookups()-before, int64(4+2); got != want {
		t.Fatalf("tag cost %d lookups, want 4+k=%d", got, want)
	}
}
