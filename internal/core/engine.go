package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"dharma/internal/dht"
	"dharma/internal/folksonomy"
	"dharma/internal/wire"
)

// Mode selects between the exact protocol and the approximated one.
type Mode int

// Engine modes. Naive implements §III-B verbatim (one lookup per
// reverse arc, forward arcs created at u(τ,r)); Approximated applies
// Approximations A and B.
const (
	Naive Mode = iota
	Approximated
)

// String returns the mode name.
func (m Mode) String() string {
	if m == Naive {
		return "naive"
	}
	return "approximated"
}

// DefaultTopN is the index-side filter cap used by search steps: the
// paper bounds the tag set shown to the user at each step to the top
// 100 tags retrieved from the DHT.
const DefaultTopN = 100

// Config parameterises an Engine.
type Config struct {
	// Mode selects naive or approximated maintenance (default Naive).
	Mode Mode
	// K is the connection parameter of Approximation A: the maximum
	// number of reverse-arc blocks updated per tagging operation.
	// It must be positive in Approximated mode.
	K int
	// TopN caps the entries fetched per block during a search step
	// (default DefaultTopN). 0 keeps the default; negative disables
	// filtering.
	TopN int
	// Parallel issues the reverse-arc block updates of a tagging
	// operation concurrently. The paper notes the lookups can run in
	// parallel (the count stays 4+k; only latency changes); the updates
	// are commutative token appends, so the result is identical.
	Parallel bool
	// Seed drives the random subset selection of Approximation A.
	Seed int64
}

// ErrNoSuchTag is returned by SearchStep for a tag with no blocks.
var ErrNoSuchTag = errors.New("core: unknown tag")

// Engine is a DHARMA endpoint: it executes tagging-system primitives
// against a block store. An Engine is what a peer embeds; any number of
// engines may operate on the same overlay concurrently, and a single
// Engine is itself safe for concurrent use — all mutable state is the
// subset-sampling source of Approximation A, guarded by rngMu.
type Engine struct {
	store dht.Store
	cfg   Config
	topN  int

	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewEngine creates an engine over store.
func NewEngine(store dht.Store, cfg Config) (*Engine, error) {
	if cfg.Mode == Approximated && cfg.K <= 0 {
		return nil, fmt.Errorf("core: approximated mode requires K > 0, got %d", cfg.K)
	}
	topN := cfg.TopN
	switch {
	case topN == 0:
		topN = DefaultTopN
	case topN < 0:
		topN = 0 // disable filtering
	}
	return &Engine{
		store: store,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		topN:  topN,
	}, nil
}

// Mode returns the engine's maintenance mode.
func (e *Engine) Mode() Mode { return e.cfg.Mode }

// K returns the connection parameter (meaningful in Approximated mode).
func (e *Engine) K() int { return e.cfg.K }

// Store returns the underlying block store.
func (e *Engine) Store() dht.Store { return e.store }

// InsertResource publishes a new resource r with URI uri and the tag
// set tags (deduplicated). Per Table I it costs exactly 2+2m lookups
// for m distinct tags, in both modes:
//
//	1 append of r̃ + 1 append of r̄ + m appends of t̄_i + m appends of t̂_i.
//
// Inserting a name that already exists is not detected here (checking
// would cost an extra lookup the paper does not account); higher layers
// own name allocation.
func (e *Engine) InsertResource(ctx context.Context, r, uri string, tags ...string) error {
	tags = dedup(tags)

	if err := e.store.Append(ctx, BlockKey(r, BlockResourceURI), []wire.Entry{
		{Field: r, Count: 1, Data: []byte(uri)},
	}); err != nil {
		return fmt.Errorf("core: insert %q (r̃): %w", r, err)
	}

	rBar := make([]wire.Entry, len(tags))
	for i, t := range tags {
		rBar[i] = wire.Entry{Field: t, Count: 1}
	}
	if err := e.store.Append(ctx, BlockKey(r, BlockResourceTags), rBar); err != nil {
		return fmt.Errorf("core: insert %q (r̄): %w", r, err)
	}

	// The 2m per-tag appends (t̄_i and t̂_i) target distinct keys and
	// commute, so they go out as one batch: still 2m Table-I lookups,
	// but one grouped store call instead of 2m sequential round-trips.
	// An empty t̂ arc set (single-tag insert) stays in the batch for the
	// lookup count, but materializes no block at the storage node.
	batch := make([]dht.BatchItem, 0, 2*len(tags))
	for _, t := range tags {
		batch = append(batch, dht.BatchItem{
			Key:     BlockKey(t, BlockTagResources),
			Entries: []wire.Entry{{Field: r, Count: 1}},
		})
	}
	for _, t := range tags {
		arcs := make([]wire.Entry, 0, len(tags)-1)
		for _, other := range tags {
			if other != t {
				arcs = append(arcs, wire.Entry{Field: other, Count: 1})
			}
		}
		batch = append(batch, dht.BatchItem{Key: BlockKey(t, BlockTagNeighbors), Entries: arcs})
	}
	if err := e.store.AppendBatch(ctx, batch); err != nil {
		return fmt.Errorf("core: insert %q (tag blocks): %w", r, err)
	}
	return nil
}

// Tag adds tag t to the existing resource r, maintaining the mapped TRG
// and FG. Its cost is exactly 4+|Tags(r)\{t}| lookups in Naive mode and
// 4+min(K,|Tags(r)\{t}|) in Approximated mode:
//
//	1 get of r̄ (learn Tags(r) and the u(τ,r) weights)
//	1 append of r̄ (u(t,r) += 1)
//	1 append of t̄ (u(t,r) += 1, reverse orientation)
//	1 append of t̂_t (forward arcs (t,τ); empty when t was present)
//	+ one append of t̂_τ per updated reverse arc (τ,t).
func (e *Engine) Tag(ctx context.Context, r, t string) error {
	prior, err := e.store.Get(ctx, BlockKey(r, BlockResourceTags), 0)
	if err != nil && !errors.Is(err, dht.ErrNotFound) {
		return fmt.Errorf("core: tag %q on %q (read r̄): %w", t, r, err)
	}

	wasTagged := false
	others := prior[:0:0]
	for _, en := range prior {
		if en.Field == t {
			wasTagged = true
		} else {
			others = append(others, en)
		}
	}

	if err := e.store.Append(ctx, BlockKey(r, BlockResourceTags), []wire.Entry{
		{Field: t, Count: 1},
	}); err != nil {
		return fmt.Errorf("core: tag %q on %q (r̄): %w", t, r, err)
	}
	if err := e.store.Append(ctx, BlockKey(t, BlockTagResources), []wire.Entry{
		{Field: r, Count: 1},
	}); err != nil {
		return fmt.Errorf("core: tag %q on %q (t̄): %w", t, r, err)
	}

	// Forward arcs (t,τ): only updated when t is new on r, by the
	// theoretic increment u(τ,r). Approximation B dampens the creation
	// case: an arc that does not exist yet starts at 1 instead of
	// u(τ,r). The conditional travels with the entry (Init) and is
	// evaluated by the storage node, so no extra lookup is needed and a
	// racing double-creation is bounded at 2 rather than 2·u(τ,r).
	//
	// When t was already present, forward stays empty: the append is
	// still issued (Table I charges the lookup either way), but the
	// storage node materializes no block for it — re-tagging must not
	// create a phantom empty t̂ that skews Has/EntryCount accounting.
	forward := make([]wire.Entry, 0, len(others))
	if !wasTagged {
		for _, en := range others {
			entry := wire.Entry{Field: en.Field, Count: en.Count}
			if e.cfg.Mode == Approximated {
				entry.Init = 1
			}
			forward = append(forward, entry)
		}
	}
	if err := e.store.Append(ctx, BlockKey(t, BlockTagNeighbors), forward); err != nil {
		return fmt.Errorf("core: tag %q on %q (t̂): %w", t, r, err)
	}

	// Reverse arcs (τ,t): one block update per τ. Approximation A
	// bounds the fan-out to a uniform random subset of size ≤ K.
	reverse := others
	if e.cfg.Mode == Approximated && len(reverse) > e.cfg.K {
		reverse = e.sampleEntries(reverse, e.cfg.K)
	}
	if e.cfg.Parallel && len(reverse) > 1 {
		return e.reverseParallel(ctx, r, t, reverse)
	}
	// The reverse updates are independent single-entry appends to
	// distinct t̂ blocks; one batched call covers them all while keeping
	// the per-block lookup count (len(reverse) Table-I lookups).
	if len(reverse) == 0 {
		return nil
	}
	batch := make([]dht.BatchItem, len(reverse))
	for i, en := range reverse {
		batch[i] = dht.BatchItem{
			Key:     BlockKey(en.Field, BlockTagNeighbors),
			Entries: []wire.Entry{{Field: t, Count: 1}},
		}
	}
	if err := e.store.AppendBatch(ctx, batch); err != nil {
		return fmt.Errorf("core: tag %q on %q (reverse t̂ arcs): %w", t, r, err)
	}
	return nil
}

// reverseParallel issues the reverse-arc appends concurrently. Appends
// are commutative, so ordering does not matter. Every failure is
// reported — the joined error carries one branch per failed arc, so a
// load test counting failed appends sees all of them, not just the
// first.
func (e *Engine) reverseParallel(ctx context.Context, r, t string, reverse []wire.Entry) error {
	var wg sync.WaitGroup
	errs := make([]error, len(reverse))
	for i, en := range reverse {
		wg.Add(1)
		go func(i int, field string) {
			defer wg.Done()
			if err := e.store.Append(ctx, BlockKey(field, BlockTagNeighbors), []wire.Entry{
				{Field: t, Count: 1},
			}); err != nil {
				errs[i] = fmt.Errorf("core: tag %q on %q (t̂ of %q): %w", t, r, field, err)
			}
		}(i, en.Field)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// SearchStep retrieves the navigation data for tag t: its FG neighbours
// ordered by descending similarity and its resources ordered by
// descending annotation count, both truncated to the engine's TopN
// (index-side filtering). Per Table I it costs exactly 2 lookups.
func (e *Engine) SearchStep(ctx context.Context, t string) (related, resources []folksonomy.Weighted, err error) {
	return e.SearchStepN(ctx, t, 0)
}

// SearchStepN is SearchStep with a per-call filter cap: topN overrides
// the engine's configured TopN for this step only (0 keeps the engine
// default, negative disables filtering). It is what per-operation
// options on the facade resolve to.
func (e *Engine) SearchStepN(ctx context.Context, t string, topN int) (related, resources []folksonomy.Weighted, err error) {
	limit := e.topN
	switch {
	case topN > 0:
		limit = topN
	case topN < 0:
		limit = 0 // disable filtering
	}
	neigh, errN := e.store.Get(ctx, BlockKey(t, BlockTagNeighbors), limit)
	if errN != nil && !errors.Is(errN, dht.ErrNotFound) {
		return nil, nil, fmt.Errorf("core: search %q (t̂): %w", t, errN)
	}
	res, errR := e.store.Get(ctx, BlockKey(t, BlockTagResources), limit)
	if errR != nil && !errors.Is(errR, dht.ErrNotFound) {
		return nil, nil, fmt.Errorf("core: search %q (t̄): %w", t, errR)
	}
	if errors.Is(errN, dht.ErrNotFound) && errors.Is(errR, dht.ErrNotFound) {
		return nil, nil, fmt.Errorf("%w: %q", ErrNoSuchTag, t)
	}
	return toWeighted(neigh), toWeighted(res), nil
}

// ResolveURI fetches the URI published for resource r (block r̃); one
// lookup.
func (e *Engine) ResolveURI(ctx context.Context, r string) (string, error) {
	es, err := e.store.Get(ctx, BlockKey(r, BlockResourceURI), 0)
	if err != nil {
		return "", fmt.Errorf("core: resolve %q: %w", r, err)
	}
	for _, en := range es {
		if en.Field == r {
			return string(en.Data), nil
		}
	}
	return "", fmt.Errorf("core: resolve %q: %w", r, dht.ErrNotFound)
}

// TagsOf fetches Tags(r) with weights from r̄ (one lookup), sorted by
// descending weight.
func (e *Engine) TagsOf(ctx context.Context, r string) ([]folksonomy.Weighted, error) {
	es, err := e.store.Get(ctx, BlockKey(r, BlockResourceTags), 0)
	if err != nil {
		if errors.Is(err, dht.ErrNotFound) {
			return nil, nil
		}
		return nil, err
	}
	return toWeighted(es), nil
}

// Neighbors fetches the full (unfiltered) FG adjacency of t; used by
// experiments that compare the mapped graph against the theoretic one.
func (e *Engine) Neighbors(ctx context.Context, t string) ([]folksonomy.Weighted, error) {
	es, err := e.store.Get(ctx, BlockKey(t, BlockTagNeighbors), 0)
	if err != nil {
		if errors.Is(err, dht.ErrNotFound) {
			return nil, nil
		}
		return nil, err
	}
	return toWeighted(es), nil
}

// sampleEntries returns k entries drawn uniformly without replacement
// (partial Fisher-Yates on a copy; input order is preserved for the
// caller).
func (e *Engine) sampleEntries(in []wire.Entry, k int) []wire.Entry {
	cp := append([]wire.Entry(nil), in...)
	e.rngMu.Lock()
	for i := 0; i < k; i++ {
		j := i + e.rng.Intn(len(cp)-i)
		cp[i], cp[j] = cp[j], cp[i]
	}
	e.rngMu.Unlock()
	return cp[:k]
}

func toWeighted(es []wire.Entry) []folksonomy.Weighted {
	out := make([]folksonomy.Weighted, len(es))
	for i, en := range es {
		out[i] = folksonomy.Weighted{Name: en.Field, Weight: int(en.Count)}
	}
	return out
}

func dedup(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := make([]string, 0, len(in))
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
