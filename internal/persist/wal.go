// Package persist gives a DHARMA node durable block storage: a
// segmented append-only write-ahead log plus periodic snapshot-and-
// truncate compaction, so a node's t̂/r̂ blocks outlive its process.
//
// The paper's availability argument (and the churn machinery of the
// overlay — republish, read-repair, graceful handoff) assumes replicas
// re-enter the overlay with their state. An in-memory store only
// simulates that: the node object survives because nothing ever kills
// the process. This package crosses the line to a deployable node: a
// mutation is logged (and, by default, fsynced) before it is
// acknowledged, a restart replays snapshot + WAL tail back into the
// in-memory store, and a torn or corrupt tail record — the signature of
// dying mid-write — is detected by CRC and truncated away instead of
// poisoning the node.
//
// # Log format
//
// A record is one framed block mutation:
//
//	[u32 payload length][u32 CRC-32C of payload][payload]
//
// The payload reuses the internal/wire codec: it is a wire.Message
// whose Kind encodes the operation (KindStore → append semantics,
// KindReplicate → max-merge semantics), Target the block key, and
// Entries the mutation body. Records live in numbered segment files
// (wal/%016d.wal); when the active segment exceeds SegmentBytes the log
// rolls to the next number. A snapshot (snap/%016d.snap, same record
// framing, max-merge records only) covers every segment numbered below
// it; compaction writes one atomically (tmp + rename) and deletes the
// covered segments.
//
// # Group commit
//
// Commit batches are the fsync amortization: an appender stages its
// records in an in-memory buffer and blocks; a dedicated flusher writes
// and fsyncs the whole buffer at once, so every appender that arrived
// while the previous fsync was in flight shares the next one. Under
// concurrent load this sustains one fsync per flush window rather than
// one per append — the same shape as dht.Batching, one layer down.
package persist

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"dharma/internal/kadid"
	"dharma/internal/obs"
	"dharma/internal/wire"
)

// Op is a logged mutation's merge rule.
type Op uint8

// Logged operations, mirroring the two mutation paths of the block
// store: Append is the "+1 token" add (Approximation B create-or-add),
// MergeMax the idempotent replica merge.
const (
	OpAppend   Op = 1
	OpMergeMax Op = 2
)

// Record is one logged block mutation.
type Record struct {
	Op      Op
	Key     kadid.ID
	Entries []wire.Entry
}

// SyncMode selects when the log calls fsync.
type SyncMode int

const (
	// SyncGroup (the default) fsyncs once per group-commit flush:
	// everyone who committed during the previous fsync rides the next
	// one. Acknowledged writes survive power loss.
	SyncGroup SyncMode = iota
	// SyncEach fsyncs every commit individually — the baseline group
	// commit is measured against (BenchmarkWALAppend).
	SyncEach
	// SyncNone never fsyncs. Acknowledged writes are written to the OS
	// before the ack, so they survive a process kill (SIGKILL), but not
	// power loss. Tests and simulated clusters use this mode.
	SyncNone
)

// Options parameterises a log.
type Options struct {
	// SegmentBytes is the size at which the active segment is rolled
	// (default 8 MiB).
	SegmentBytes int64
	// Sync selects the fsync policy (default SyncGroup).
	Sync SyncMode
	// FlushWindow is how long the group-commit flusher lingers after
	// the first staged commit before writing and fsyncing, letting
	// concurrent committers pile into the same flush (default 500µs,
	// negative disables the wait). Only SyncGroup uses it: it trades a
	// bounded ack latency for an order of magnitude fewer fsyncs under
	// load, the same window shape as dht.Batching one layer up.
	FlushWindow time.Duration
	// CompactBytes is the number of logged bytes after which the
	// embedding layer should snapshot-and-truncate. The Log itself
	// never compacts spontaneously — it has no access to the state to
	// snapshot — it only counts; kademlia's durable store watches
	// BytesSinceCompact against this threshold (default 64 MiB,
	// negative disables automatic compaction).
	CompactBytes int64
	// Metrics, when non-nil, registers the log's instruments there:
	// an fsync latency histogram plus flush accounting. fsync is the
	// tail-latency budget of every durable write, so it is the one
	// disk number the ops endpoint must be able to answer for.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.CompactBytes == 0 {
		o.CompactBytes = 64 << 20
	}
	if o.FlushWindow == 0 {
		o.FlushWindow = 500 * time.Microsecond
	}
	return o
}

// Errors of the log lifecycle.
var (
	// ErrClosed is returned by commits after a clean Close.
	ErrClosed = errors.New("persist: log closed")
	// ErrCrashed is returned by commits after Crash — including commits
	// that were staged but not yet flushed when the crash hit: their
	// writers never got an acknowledgement, which is exactly the
	// durability contract (unacknowledged writes may die).
	ErrCrashed = errors.New("persist: log crashed")
	// ErrCorrupt wraps recovery failures outside the replayable tail: a
	// CRC mismatch in a non-final segment or an unreadable snapshot is
	// real corruption, not a torn write, and refuses to open.
	ErrCorrupt = errors.New("persist: corrupt log")
)

// maxRecordBytes bounds a single record's payload so a corrupt length
// prefix cannot make recovery allocate unbounded memory.
const maxRecordBytes = 64 << 20

// maxEntriesPerRecord chunks oversized mutations: the wire codec bounds
// Entries at wire.MaxListLen, and both logged operations distribute
// over a split of their entry list, so a huge block (a hot tag's 100k+
// arcs at snapshot time) is logged as several records under one key.
const maxEntriesPerRecord = wire.MaxListLen

// maxRecordPayload is the write-side byte bound per record: chunking
// must cap encoded size as well as entry count, or a block heavy with
// Data blobs could produce an acknowledged record that recovery (which
// enforces maxRecordBytes) would reject as corrupt. Kept far below the
// read-side cap so the two can never disagree.
const maxRecordPayload = 4 << 20

// Log is a segmented write-ahead log with group commit.
type Log struct {
	dir  string
	opts Options

	// mu is the commit lock: it guards the staging buffer, the pending
	// batch, and — through Commit's apply callback — the in-memory
	// state's synchronization with the log. Compaction freezes writers
	// by holding it, which is what makes the snapshot an exact cut.
	mu     sync.Mutex
	buf    []byte
	batch  *flushBatch
	closed bool
	err    error // sticky: first write/sync failure poisons the log

	// eachMu serializes whole commits in SyncEach mode, so no two
	// appends can ever share an fsync — the honest baseline group
	// commit is measured against. Lock order: eachMu before fileMu.
	eachMu sync.Mutex

	// fileMu serializes file operations (flush, rotation, compaction).
	// Lock order: fileMu before mu, never the reverse.
	fileMu     sync.Mutex
	seg        *os.File
	segSeq     uint64
	segWritten int64 // bytes in the active segment, fileMu-guarded

	sinceCompact atomic.Int64 // bytes logged since the last compaction

	flushC      chan struct{}
	quit        chan struct{}
	flusherDone chan struct{}

	// Instruments; nil-safe no-ops when Options.Metrics was nil.
	fsyncLatency *obs.Histogram
	flushBytes   *obs.Counter
	flushes      *obs.Counter
	rotations    *obs.Counter
}

// instrument registers the log's instruments on reg (nil = no-op; the
// nil instruments the fields keep are themselves no-ops to record on).
func (l *Log) instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	l.fsyncLatency = reg.Histogram("dharma_wal_fsync_seconds",
		"Time one WAL fsync took; every durable write's tail-latency floor.")
	l.flushBytes = reg.Counter("dharma_wal_flush_bytes_total",
		"Bytes written by group-commit flushes.")
	l.flushes = reg.Counter("dharma_wal_flushes_total",
		"Group-commit flushes (one write + at most one fsync each).")
	l.rotations = reg.Counter("dharma_wal_segment_rotations_total",
		"Active-segment rollovers.")
	reg.GaugeFunc("dharma_wal_bytes_since_compact",
		"Bytes logged since the last compaction.", l.sinceCompact.Load)
}

// flushBatch is one group of commits waiting on the same flush.
type flushBatch struct {
	done chan struct{}
	err  error
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// opKind maps a logged operation onto the wire message kind that
// carries it, so the record payload is a plain wire.Message.
func opKind(op Op) (wire.Kind, error) {
	switch op {
	case OpAppend:
		return wire.KindStore, nil
	case OpMergeMax:
		return wire.KindReplicate, nil
	default:
		return 0, fmt.Errorf("persist: unknown op %d", op)
	}
}

func kindOp(k wire.Kind) (Op, error) {
	switch k {
	case wire.KindStore:
		return OpAppend, nil
	case wire.KindReplicate:
		return OpMergeMax, nil
	default:
		return 0, fmt.Errorf("persist: record carries non-mutation kind %v", k)
	}
}

// appendFrames encodes rec into dst as one or more framed records
// (chunking entry lists beyond the codec's bound) and returns dst.
func appendFrames(dst []byte, rec *Record) ([]byte, error) {
	kind, err := opKind(rec.Op)
	if err != nil {
		return dst, err
	}
	entries := rec.Entries
	for first := true; first || len(entries) > 0; first = false {
		var chunk []wire.Entry
		chunk, entries = splitChunk(entries)
		payload := wire.Encode(&wire.Message{Kind: kind, Target: rec.Key, Entries: chunk})
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
		dst = append(dst, hdr[:]...)
		dst = append(dst, payload...)
	}
	return dst, nil
}

// splitChunk takes the longest entry prefix within both the codec's
// list bound and the record payload byte bound (estimated; the fixed
// per-entry overhead is generous). A single entry always fits: the
// codec caps its strings and blobs two orders of magnitude below
// maxRecordPayload.
func splitChunk(entries []wire.Entry) (chunk, rest []wire.Entry) {
	n, size := 0, 0
	for n < len(entries) && n < maxEntriesPerRecord {
		e := &entries[n]
		size += len(e.Field) + len(e.Data) + len(e.Author) + len(e.Sig) + 32
		if size > maxRecordPayload && n > 0 {
			break
		}
		n++
	}
	return entries[:n], entries[n:]
}

// decodeFrame parses the first framed record in b. It returns the
// record and the total frame length consumed. Any failure — short
// header, oversized length, short payload, CRC mismatch, undecodable
// payload — reports errTorn with the reason; the caller decides whether
// the position makes it a truncatable tail or hard corruption.
func decodeFrame(b []byte) (Record, int, error) {
	if len(b) < 8 {
		return Record{}, 0, fmt.Errorf("%w: short header (%d bytes)", errTorn, len(b))
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	sum := binary.LittleEndian.Uint32(b[4:8])
	if n > maxRecordBytes {
		return Record{}, 0, fmt.Errorf("%w: record of %d bytes", errTorn, n)
	}
	if len(b) < 8+int(n) {
		return Record{}, 0, fmt.Errorf("%w: short payload (%d of %d bytes)", errTorn, len(b)-8, n)
	}
	payload := b[8 : 8+int(n)]
	if crc32.Checksum(payload, crcTable) != sum {
		return Record{}, 0, fmt.Errorf("%w: CRC mismatch", errTorn)
	}
	msg, err := wire.Decode(payload)
	if err != nil {
		return Record{}, 0, fmt.Errorf("%w: %v", errTorn, err)
	}
	op, err := kindOp(msg.Kind)
	if err != nil {
		return Record{}, 0, fmt.Errorf("%w: %v", errTorn, err)
	}
	return Record{Op: op, Key: msg.Target, Entries: msg.Entries}, 8 + int(n), nil
}

// errTorn marks a record that could not be read in full.
var errTorn = errors.New("torn record")

// Commit durably logs recs, then — with the records staged and the
// commit lock still held — runs apply (the in-memory application), and
// finally blocks until the staged bytes are flushed per the sync
// policy. It returns nil only once the records are as durable as the
// policy promises; a non-nil return means the write was NOT
// acknowledged and the in-memory state may be ahead of the log (the
// caller's node is expected to treat that as fatal for the operation
// and withhold its ack).
//
// ctx bounds only the WAIT for durability, never the batch itself: a
// ctx that ends before staging refuses the commit outright (nothing
// staged, nothing applied); a ctx that ends while waiting for the
// flush returns ctx.Err() immediately, but the staged records remain
// in the batch and the group still fsyncs on schedule for every other
// committer. The outcome of such an abandoned commit is unknown to the
// caller — exactly the semantics of a write whose ack was lost — so
// the caller must not acknowledge it. This is what keeps a cancelled
// write from pinning a storage handler for the whole FlushWindow.
//
// Running apply under the commit lock is what keeps the snapshot exact:
// compaction also takes the lock, so the in-memory state it dumps
// corresponds to precisely the records logged before the cut — replay
// after recovery applies every surviving record exactly once, and
// append counts (which are sums, not maxima) come back exact.
func (l *Log) Commit(ctx context.Context, recs []Record, apply func()) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	var frames []byte
	var err error
	for i := range recs {
		if frames, err = appendFrames(frames, &recs[i]); err != nil {
			return err
		}
	}

	if l.opts.Sync == SyncEach {
		// Hold eachMu across stage + flush: every commit pays its own
		// write and fsync, nothing coalesces.
		l.eachMu.Lock()
		defer l.eachMu.Unlock()
	}

	l.mu.Lock()
	if l.closed || l.err != nil {
		defer l.mu.Unlock()
		if l.err != nil {
			return l.err
		}
		return ErrClosed
	}
	l.buf = append(l.buf, frames...)
	if l.batch == nil {
		l.batch = &flushBatch{done: make(chan struct{})}
	}
	b := l.batch
	l.sinceCompact.Add(int64(len(frames)))
	if apply != nil {
		apply()
	}
	l.mu.Unlock()

	if l.opts.Sync == SyncEach {
		l.flushOnce()
		// flushOnce completed synchronously under eachMu; the batch is
		// resolved, so the done-wait below cannot block on ctx.
	} else {
		select {
		case l.flushC <- struct{}{}:
		default: // a flush signal is already pending
		}
	}
	select {
	case <-b.done:
		return b.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// flushLoop is the group-commit flusher: it drains the staging buffer
// whenever signaled, one write (+ fsync) per accumulated batch.
func (l *Log) flushLoop() {
	defer close(l.flusherDone)
	for {
		select {
		case <-l.flushC:
			if l.opts.Sync == SyncGroup && l.opts.FlushWindow > 0 {
				// Linger: committers that arrive during the window (and
				// during the fsync itself) share one flush.
				time.Sleep(l.opts.FlushWindow)
			}
			l.flushOnce()
		case <-l.quit:
			return
		}
	}
}

// flushOnce writes the staged buffer to the active segment, completes
// its batch, and rolls the segment if it outgrew SegmentBytes.
func (l *Log) flushOnce() {
	l.fileMu.Lock()
	defer l.fileMu.Unlock()

	l.mu.Lock()
	buf, b := l.buf, l.batch
	l.buf, l.batch = nil, nil
	seg := l.seg
	l.mu.Unlock()
	if b == nil {
		return
	}

	err := l.writeOut(seg, buf)
	if err != nil {
		l.poison(err)
	}
	b.err = err
	close(b.done)

	if err == nil && l.segWritten >= l.opts.SegmentBytes {
		if rerr := l.rotate(); rerr != nil {
			l.poison(rerr)
		}
	}
}

// writeOut appends buf to seg and syncs per policy; fileMu must be held.
func (l *Log) writeOut(seg *os.File, buf []byte) error {
	if len(buf) == 0 {
		return nil
	}
	if _, err := seg.Write(buf); err != nil {
		return err
	}
	l.segWritten += int64(len(buf))
	l.flushes.Inc()
	l.flushBytes.Add(int64(len(buf)))
	if l.opts.Sync != SyncNone {
		start := time.Now()
		err := seg.Sync()
		l.fsyncLatency.Observe(time.Since(start))
		return err
	}
	return nil
}

// rotate closes the active segment and opens the next one; fileMu must
// be held.
func (l *Log) rotate() error {
	next, err := createSegment(l.dir, l.segSeq+1)
	if err != nil {
		return err
	}
	l.mu.Lock()
	old := l.seg
	l.seg = next
	l.segSeq++
	l.mu.Unlock()
	l.segWritten = 0
	l.rotations.Inc()
	return old.Close()
}

// poison records the first file-level failure; every later commit is
// refused with it (a log that cannot persist must stop acknowledging).
func (l *Log) poison(err error) {
	l.mu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.mu.Unlock()
}

// segPath names segment seq.
func segPath(dir string, seq uint64) string {
	return filepath.Join(dir, walDirName, fmt.Sprintf("%016d.wal", seq))
}

// snapPath names the snapshot covering segments below seq.
func snapPath(dir string, seq uint64) string {
	return filepath.Join(dir, snapDirName, fmt.Sprintf("%016d.snap", seq))
}

const (
	walDirName  = "wal"
	snapDirName = "snap"
)

func createSegment(dir string, seq uint64) (*os.File, error) {
	f, err := os.OpenFile(segPath(dir, seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	syncDir(filepath.Join(dir, walDirName))
	return f, nil
}

// syncDir fsyncs a directory so entry creation/removal survives power
// loss; best-effort (some filesystems refuse directory fsync).
func syncDir(path string) {
	d, err := os.Open(path)
	if err != nil {
		return
	}
	d.Sync() //nolint:errcheck // best-effort
	d.Close()
}

// BytesSinceCompact reports how many record bytes were logged since the
// last compaction (or open) — the embedding layer's compaction trigger.
func (l *Log) BytesSinceCompact() int64 { return l.sinceCompact.Load() }

// Options returns the log's effective options (defaults applied).
func (l *Log) Options() Options { return l.opts }

// ActiveSegment reports the active segment's sequence number (tests and
// stats).
func (l *Log) ActiveSegment() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segSeq
}

// Close flushes every staged record and cleanly shuts the log down.
// Further commits return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()

	close(l.quit)
	<-l.flusherDone
	l.flushOnce() // drain what the flusher did not get to

	l.fileMu.Lock()
	defer l.fileMu.Unlock()
	l.mu.Lock()
	err := l.err
	seg := l.seg
	l.mu.Unlock()
	if cerr := seg.Close(); err == nil {
		err = cerr
	}
	return err
}

// Crash simulates the process dying (SIGKILL): the staged-but-unflushed
// buffer is dropped — its writers are woken with ErrCrashed, never
// having been acknowledged — and the file handles close without a final
// flush. Everything already written (acknowledged) stays on disk,
// which is exactly what the OS guarantees a killed process: page-cache
// writes survive, user-space buffers do not. Tests and the simulated
// cluster's Crash use this to model a real node death in-process.
func (l *Log) Crash() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.err = ErrCrashed
	l.mu.Unlock()

	// Stop the flusher before touching files: it may be mid-flush and
	// needs fileMu. A flush racing the crash is legitimate — it models
	// the kill landing just after the OS accepted the write.
	close(l.quit)
	<-l.flusherDone

	l.fileMu.Lock()
	defer l.fileMu.Unlock()
	l.mu.Lock()
	b := l.batch
	l.buf, l.batch = nil, nil
	seg := l.seg
	l.mu.Unlock()
	if b != nil {
		b.err = ErrCrashed
		close(b.done)
	}
	seg.Close() //nolint:errcheck // a crashed process does not check errors
}
