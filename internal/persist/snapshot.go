package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Snapshot trailer: the last snapTrailerLen bytes of every .snap file.
//
//	[8] magic "DHSNAPv2"
//	[4] CRC-32C (Castagnoli) over every byte before the trailer
//	[8] record count, big-endian
//
// The per-record frame CRCs catch bit rot inside a record, but a
// snapshot cut off at a frame boundary — a filesystem that silently
// truncated the file, a partial copy restored from backup — decodes
// cleanly and loses blocks without a trace. The whole-file checksum
// and record count close exactly that hole: recovery refuses any
// snapshot whose byte stream or record census does not match what the
// compaction wrote.
const (
	snapMagic      = "DHSNAPv2"
	snapTrailerLen = len(snapMagic) + 4 + 8
)

var snapCRCTable = crc32.MakeTable(crc32.Castagnoli)

// Compact snapshots the embedding store's full state and truncates the
// WAL to the segments logged after the cut.
//
// The protocol freezes commits (the commit lock) for the duration:
//
//  1. flush whatever is staged to the active segment,
//  2. roll to a fresh segment — the cut: every mutation so far lives in
//     segments below the new number, every later one above,
//  3. stream the store's state (via dump, one Record per block, chunked
//     as needed) into snap/<cut>.snap.tmp, fsync, rename — atomic,
//  4. delete the covered segments and superseded snapshots.
//
// Because Commit applies mutations to memory under the same lock, the
// state dump corresponds exactly to the covered segments: recovery
// never applies a record twice (append counts are sums — replaying a
// "+1 token" twice would double it) and never misses one.
//
// dump is called with an add function that appends one record to the
// snapshot; dump must not call back into the log.
func (l *Log) Compact(dump func(add func(Record) error) error) error {
	l.fileMu.Lock()
	defer l.fileMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()

	if l.closed || l.err != nil {
		if l.err != nil {
			return l.err
		}
		return ErrClosed
	}

	// (1) Flush the staged buffer ourselves — the flusher would need
	// fileMu, which we hold.
	buf, b := l.buf, l.batch
	l.buf, l.batch = nil, nil
	if b != nil {
		err := l.writeOut(l.seg, buf)
		if err != nil && l.err == nil {
			l.err = err
		}
		b.err = err
		close(b.done)
		if err != nil {
			return err
		}
	}

	// (2) Roll: the new segment's number is the cut.
	next, err := createSegment(l.dir, l.segSeq+1)
	if err != nil {
		return err
	}
	old := l.seg
	l.seg = next
	l.segSeq++
	l.segWritten = 0
	if err := old.Close(); err != nil {
		return err
	}
	cut := l.segSeq

	// (3) Write the snapshot atomically.
	if err := l.writeSnapshot(cut, dump); err != nil {
		return err
	}

	// (4) Drop everything the snapshot covers. Removals are best-effort:
	// recovery re-deletes leftovers below the snapshot's number.
	if seqs, err := listSeqFiles(filepath.Join(l.dir, walDirName), ".wal"); err == nil {
		for _, seq := range seqs {
			if seq < cut {
				os.Remove(segPath(l.dir, seq)) //nolint:errcheck
			}
		}
	}
	if seqs, err := listSeqFiles(filepath.Join(l.dir, snapDirName), ".snap"); err == nil {
		for _, seq := range seqs {
			if seq < cut {
				os.Remove(snapPath(l.dir, seq)) //nolint:errcheck
			}
		}
	}
	syncDir(filepath.Join(l.dir, walDirName))
	syncDir(filepath.Join(l.dir, snapDirName))

	l.sinceCompact.Store(0)
	return nil
}

// writeSnapshot streams dump's records into snap/<cut>.snap via a
// temporary file and an atomic rename.
func (l *Log) writeSnapshot(cut uint64, dump func(add func(Record) error) error) error {
	final := snapPath(l.dir, cut)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer os.Remove(tmp) //nolint:errcheck // no-op after the rename succeeds

	// Buffered: the dump runs with the commit lock held (writers are
	// frozen), so one syscall per block would multiply the stall by the
	// block count.
	w := bufio.NewWriterSize(f, 1<<20)
	crc := crc32.New(snapCRCTable)
	var records uint64
	var scratch []byte
	add := func(rec Record) error {
		scratch = scratch[:0]
		var err error
		if scratch, err = appendFrames(scratch, &rec); err != nil {
			return err
		}
		crc.Write(scratch) //nolint:errcheck // hash writes never fail
		records++
		_, err = w.Write(scratch)
		return err
	}
	if err := dump(add); err != nil {
		f.Close()
		return fmt.Errorf("persist: snapshot dump: %w", err)
	}
	var trailer [snapTrailerLen]byte
	copy(trailer[:], snapMagic)
	binary.BigEndian.PutUint32(trailer[len(snapMagic):], crc.Sum32())
	binary.BigEndian.PutUint64(trailer[len(snapMagic)+4:], records)
	if _, err := w.Write(trailer[:]); err != nil {
		f.Close()
		return fmt.Errorf("persist: %w", err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("persist: %w", err)
	}
	if l.opts.Sync != SyncNone {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("persist: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}
