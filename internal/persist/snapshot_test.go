package persist

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"testing"

	"dharma/internal/kadid"
	"dharma/internal/wire"
)

// compactOnce writes a log with one snapshot of recs under dir and
// returns the snapshot file's path.
func compactOnce(t *testing.T, dir string, recs []Record) string {
	t.Helper()
	_, _, l := collect(t, dir, Options{Sync: SyncNone})
	if err := l.Commit(context.Background(), []Record{{
		Op: OpAppend, Key: kadid.HashString("seedblock"),
		Entries: []wire.Entry{{Field: "f", Count: 1}},
	}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(func(add func(Record) error) error {
		for _, r := range recs {
			if err := add(r); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	path := snapPath(dir, l.ActiveSegment())
	l.Close()
	return path
}

func TestSnapshotChecksumRoundTrip(t *testing.T) {
	dir := t.TempDir()
	recs := randomRecords(rand.New(rand.NewSource(21)), 8)
	compactOnce(t, dir, recs)

	got, stats, l := collect(t, dir, Options{Sync: SyncNone})
	defer l.Close()
	recordsEqual(t, got, recs)
	if stats.SnapshotRecords != len(recs) {
		t.Fatalf("replayed %d snapshot records, want %d", stats.SnapshotRecords, len(recs))
	}
}

func TestSnapshotFlippedByteRefusesToOpen(t *testing.T) {
	dir := t.TempDir()
	path := compactOnce(t, dir, randomRecords(rand.New(rand.NewSource(22)), 8))

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of the record stream. The per-record
	// CRC would catch this too; the point here is that recovery reports
	// corruption rather than silently dropping state.
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{Sync: SyncNone}, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with flipped snapshot byte: %v, want ErrCorrupt", err)
	}
}

func TestSnapshotFrameBoundaryTruncationRefusesToOpen(t *testing.T) {
	dir := t.TempDir()
	recs := randomRecords(rand.New(rand.NewSource(23)), 6)
	path := compactOnce(t, dir, recs)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the file at an exact frame boundary — drop the LAST record and
	// re-append the (now lying) trailer. Without the whole-file checksum
	// every remaining record still decodes, so this is the silent-loss
	// case the trailer exists for.
	body := data[:len(data)-snapTrailerLen]
	off, prev := 0, 0
	for off < len(body) {
		_, n, err := decodeFrame(body[off:])
		if err != nil {
			t.Fatalf("decode at %d: %v", off, err)
		}
		prev = off
		off += n
	}
	truncated := append(append([]byte(nil), body[:prev]...), data[len(data)-snapTrailerLen:]...)
	if err := os.WriteFile(path, truncated, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{Sync: SyncNone}, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with boundary-truncated snapshot: %v, want ErrCorrupt", err)
	}
}

func TestSnapshotMissingTrailerRefusesToOpen(t *testing.T) {
	dir := t.TempDir()
	path := compactOnce(t, dir, randomRecords(rand.New(rand.NewSource(24)), 4))

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A pre-trailer snapshot (or one whose tail vanished entirely): the
	// records are intact but the integrity trailer is gone.
	if err := os.WriteFile(path, data[:len(data)-snapTrailerLen], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{Sync: SyncNone}, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with trailerless snapshot: %v, want ErrCorrupt", err)
	}
}
