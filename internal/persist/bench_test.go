package persist

import (
	"context"
	"fmt"
	"testing"
	"time"

	"dharma/internal/kadid"
	"dharma/internal/wire"
)

// BenchmarkWALAppend measures the durable append path under concurrent
// writers. The acceptance bar of the persistence ISSUE: group commit
// (one fsync per flush window, shared by every writer that arrived
// while the previous fsync ran) must sustain at least 10x the
// throughput of fsync-per-append on the same workload.
//
//	go test ./internal/persist/ -run xxx -bench WALAppend
func BenchmarkWALAppend(b *testing.B) {
	for _, mode := range []struct {
		name string
		sync SyncMode
	}{
		{"group-commit", SyncGroup},
		{"fsync-per-append", SyncEach},
	} {
		b.Run(mode.name, func(b *testing.B) {
			dir := b.TempDir()
			l, _, err := Open(dir, Options{
				Sync: mode.sync, SegmentBytes: 1 << 30, CompactBytes: -1,
				FlushWindow: time.Millisecond,
			}, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			key := kadid.HashString("hot")
			// Plenty of concurrent writers: group commit's win is the
			// batch that forms during the flush window and the fsync
			// itself; fsync-per-append serializes the same workload.
			b.SetParallelism(256)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rec := []Record{{Op: OpAppend, Key: key, Entries: []wire.Entry{{Field: "f", Count: 1}}}}
				for pb.Next() {
					if err := l.Commit(context.Background(), rec, nil); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkWALCommitBatch measures a multi-record commit (the
// AppendBatch shape: an insertion's 2m tag-block writes in one flush).
func BenchmarkWALCommitBatch(b *testing.B) {
	dir := b.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncNone, SegmentBytes: 1 << 30, CompactBytes: -1}, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	recs := make([]Record, 16)
	for i := range recs {
		recs[i] = Record{
			Op:      OpAppend,
			Key:     kadid.HashString(fmt.Sprintf("k%d", i)),
			Entries: []wire.Entry{{Field: "f", Count: 1}, {Field: "g", Count: 2}},
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Commit(context.Background(), recs, nil); err != nil {
			b.Fatal(err)
		}
	}
}
