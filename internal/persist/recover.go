package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dharma/internal/kadid"
)

// RecoveryStats describes what Open found and replayed.
type RecoveryStats struct {
	// SnapshotSeq is the snapshot the recovery started from (0 = none:
	// the full WAL was replayed).
	SnapshotSeq uint64
	// SnapshotRecords is how many block records the snapshot held.
	SnapshotRecords int
	// Segments is how many WAL segments were replayed after the
	// snapshot.
	Segments int
	// Records is how many WAL records were replayed.
	Records int
	// TruncatedBytes is how much torn tail was cut off the final
	// segment (0 on a clean shutdown).
	TruncatedBytes int64
}

func (s RecoveryStats) String() string {
	return fmt.Sprintf("snapshot %d (%d blocks) + %d segments (%d records, %d torn bytes truncated)",
		s.SnapshotSeq, s.SnapshotRecords, s.Segments, s.Records, s.TruncatedBytes)
}

// Open recovers the log under dir and readies it for appending. Every
// surviving mutation — the newest snapshot, then the WAL tail in log
// order — is handed to apply exactly once; the caller rebuilds its
// in-memory state from that stream (the kademlia store rebuilds its
// sharded block map and incremental top-N index this way).
//
// A torn or CRC-corrupt record at the tail of the final segment is
// truncated away: it can only be a mutation that died mid-write, and
// such a mutation was never acknowledged. The same damage anywhere
// else — an earlier segment, the snapshot — is not explainable by a
// crash and refuses to open with ErrCorrupt.
func Open(dir string, opts Options, apply func(Record) error) (*Log, RecoveryStats, error) {
	opts = opts.withDefaults()
	if apply == nil {
		apply = func(Record) error { return nil }
	}
	var stats RecoveryStats
	for _, sub := range []string{walDirName, snapDirName} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, stats, fmt.Errorf("persist: %w", err)
		}
	}

	snapSeq, err := loadNewestSnapshot(dir, apply, &stats)
	if err != nil {
		return nil, stats, err
	}

	segs, err := listSeqFiles(filepath.Join(dir, walDirName), ".wal")
	if err != nil {
		return nil, stats, err
	}
	// Drop segments a snapshot already covers (normally deleted by the
	// compaction that wrote it; a crash between rename and delete
	// leaves them behind).
	live := segs[:0]
	for _, seq := range segs {
		if seq < snapSeq {
			os.Remove(segPath(dir, seq)) //nolint:errcheck // leftover cleanup
			continue
		}
		live = append(live, seq)
	}
	segs = live
	for i := 1; i < len(segs); i++ {
		if segs[i] != segs[i-1]+1 {
			return nil, stats, fmt.Errorf("%w: segment gap between %d and %d", ErrCorrupt, segs[i-1], segs[i])
		}
	}
	// The chain must also begin where the snapshot ends: compaction
	// creates the cut segment before the snapshot it names, so segment
	// snapSeq always exists on an undamaged log — and without a
	// snapshot the chain starts at 1. A missing boundary segment is
	// lost data, not a torn tail.
	if len(segs) > 0 {
		first := uint64(1)
		if snapSeq > 0 {
			first = snapSeq
		}
		if segs[0] != first {
			return nil, stats, fmt.Errorf("%w: first segment is %d, want %d", ErrCorrupt, segs[0], first)
		}
	} else if snapSeq > 0 {
		return nil, stats, fmt.Errorf("%w: snapshot %d has no cut segment", ErrCorrupt, snapSeq)
	}

	activeSeq := snapSeq
	if activeSeq == 0 {
		activeSeq = 1
	}
	var activeSize int64
	for i, seq := range segs {
		last := i == len(segs)-1
		size, err := replaySegment(segPath(dir, seq), last, apply, &stats)
		if err != nil {
			return nil, stats, err
		}
		stats.Segments++
		activeSeq, activeSize = seq, size
	}

	seg, err := os.OpenFile(segPath(dir, activeSeq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, stats, fmt.Errorf("persist: %w", err)
	}
	syncDir(filepath.Join(dir, walDirName))

	l := &Log{
		dir:         dir,
		opts:        opts,
		seg:         seg,
		segSeq:      activeSeq,
		segWritten:  activeSize,
		flushC:      make(chan struct{}, 1),
		quit:        make(chan struct{}),
		flusherDone: make(chan struct{}),
	}
	l.instrument(opts.Metrics)
	go l.flushLoop()
	return l, stats, nil
}

// loadNewestSnapshot applies the newest snapshot's records and returns
// its sequence number (0 when no snapshot exists). Older snapshots and
// abandoned temporaries are removed.
func loadNewestSnapshot(dir string, apply func(Record) error, stats *RecoveryStats) (uint64, error) {
	snapDir := filepath.Join(dir, snapDirName)
	// A .tmp is a compaction that died before its atomic rename; it was
	// never the snapshot of record.
	tmps, _ := filepath.Glob(filepath.Join(snapDir, "*.tmp"))
	for _, t := range tmps {
		os.Remove(t) //nolint:errcheck // leftover cleanup
	}

	snaps, err := listSeqFiles(snapDir, ".snap")
	if err != nil || len(snaps) == 0 {
		return 0, err
	}
	newest := snaps[len(snaps)-1]
	for _, seq := range snaps[:len(snaps)-1] {
		os.Remove(snapPath(dir, seq)) //nolint:errcheck // superseded
	}

	data, err := os.ReadFile(snapPath(dir, newest))
	if err != nil {
		return 0, fmt.Errorf("persist: read snapshot: %w", err)
	}
	// Whole-file integrity first, before any record is applied: a
	// snapshot truncated at a frame boundary decodes cleanly record by
	// record, so only the trailer checksum can prove the file complete.
	body, wantRecords, err := verifySnapTrailer(data)
	if err != nil {
		return 0, fmt.Errorf("%w: snapshot %d: %v", ErrCorrupt, newest, err)
	}
	var applied uint64
	for off := 0; off < len(body); {
		rec, n, err := decodeFrame(body[off:])
		if err != nil {
			// Snapshots are written whole and renamed into place; any
			// damage is corruption, not a torn write.
			return 0, fmt.Errorf("%w: snapshot %d at offset %d: %v", ErrCorrupt, newest, off, err)
		}
		if err := apply(rec); err != nil {
			return 0, fmt.Errorf("persist: apply snapshot record: %w", err)
		}
		stats.SnapshotRecords++
		applied++
		off += n
	}
	if applied != wantRecords {
		return 0, fmt.Errorf("%w: snapshot %d holds %d records, trailer promises %d",
			ErrCorrupt, newest, applied, wantRecords)
	}
	stats.SnapshotSeq = newest
	return newest, nil
}

// verifySnapTrailer checks a snapshot's whole-file trailer (magic,
// CRC-32C, record count) and returns the record bytes it covers.
func verifySnapTrailer(data []byte) (body []byte, records uint64, err error) {
	if len(data) < snapTrailerLen {
		return nil, 0, fmt.Errorf("file too short for integrity trailer (%d bytes)", len(data))
	}
	trailer := data[len(data)-snapTrailerLen:]
	if string(trailer[:len(snapMagic)]) != snapMagic {
		return nil, 0, fmt.Errorf("integrity trailer missing or damaged")
	}
	body = data[:len(data)-snapTrailerLen]
	want := binary.BigEndian.Uint32(trailer[len(snapMagic):])
	if got := crc32.Checksum(body, snapCRCTable); got != want {
		return nil, 0, fmt.Errorf("whole-file checksum mismatch: %08x, trailer says %08x", got, want)
	}
	return body, binary.BigEndian.Uint64(trailer[len(snapMagic)+4:]), nil
}

// replaySegment applies every record of one segment file. On the final
// segment a torn tail is truncated in place; anywhere else it is fatal.
// It returns the segment's (possibly truncated) size.
func replaySegment(path string, last bool, apply func(Record) error, stats *RecoveryStats) (int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("persist: read segment: %w", err)
	}
	off := 0
	for off < len(data) {
		rec, n, derr := decodeFrame(data[off:])
		if derr != nil {
			if !last {
				return 0, fmt.Errorf("%w: segment %s at offset %d: %v", ErrCorrupt, filepath.Base(path), off, derr)
			}
			torn := int64(len(data) - off)
			if err := os.Truncate(path, int64(off)); err != nil {
				return 0, fmt.Errorf("persist: truncate torn tail: %w", err)
			}
			stats.TruncatedBytes += torn
			return int64(off), nil
		}
		if err := apply(rec); err != nil {
			return 0, fmt.Errorf("persist: apply record: %w", err)
		}
		stats.Records++
		off += n
	}
	return int64(len(data)), nil
}

// listSeqFiles returns the sorted sequence numbers of dir's files with
// the given extension, ignoring anything that does not parse.
func listSeqFiles(dir, ext string) ([]uint64, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	var seqs []uint64
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ext) {
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(strings.TrimSuffix(name, ext), "%d", &seq); err != nil || seq == 0 {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// identityFile holds the node's persistent overlay identifier.
const identityFile = "IDENTITY"

// LoadOrCreateIdentity returns the node identifier stored under dir,
// creating it from fresh on first use — a restarted node re-enters the
// overlay as the same member, so the replica sets its blocks belong to
// stay put.
func LoadOrCreateIdentity(dir string, fresh kadid.ID) (kadid.ID, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return kadid.ID{}, fmt.Errorf("persist: %w", err)
	}
	path := filepath.Join(dir, identityFile)
	if b, err := os.ReadFile(path); err == nil {
		id, perr := kadid.Parse(strings.TrimSpace(string(b)))
		if perr != nil {
			return kadid.ID{}, fmt.Errorf("persist: identity file %s: %w", path, perr)
		}
		return id, nil
	} else if !os.IsNotExist(err) {
		return kadid.ID{}, fmt.Errorf("persist: %w", err)
	}
	// fsync + tmp + atomic rename, like the snapshot writes: the node's
	// WAL is keyed to this identity, so a half-written IDENTITY after
	// power loss would strand the blocks under an unreachable ID.
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return kadid.ID{}, fmt.Errorf("persist: %w", err)
	}
	if _, err := f.WriteString(fresh.String() + "\n"); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp) //nolint:errcheck
		return kadid.ID{}, fmt.Errorf("persist: %w", err)
	}
	syncDir(dir)
	return fresh, nil
}
