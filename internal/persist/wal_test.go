package persist

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"dharma/internal/kadid"
	"dharma/internal/wire"
)

// collect opens the log under dir and returns every replayed record in
// order, plus the stats and the ready log.
func collect(t *testing.T, dir string, opts Options) ([]Record, RecoveryStats, *Log) {
	t.Helper()
	var got []Record
	l, stats, err := Open(dir, opts, func(rec Record) error {
		got = append(got, cloneRecord(rec))
		return nil
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return got, stats, l
}

func cloneRecord(rec Record) Record {
	return Record{Op: rec.Op, Key: rec.Key, Entries: wire.CloneEntries(rec.Entries)}
}

// randomRecords draws a reproducible mutation sequence.
func randomRecords(rng *rand.Rand, n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		op := OpAppend
		if rng.Intn(3) == 0 {
			op = OpMergeMax
		}
		entries := make([]wire.Entry, 1+rng.Intn(4))
		for j := range entries {
			entries[j] = wire.Entry{
				Field: fmt.Sprintf("f%d", rng.Intn(10)),
				Count: uint64(rng.Intn(100)),
				Init:  uint64(rng.Intn(3)),
			}
			if rng.Intn(4) == 0 {
				entries[j].Data = []byte(fmt.Sprintf("uri-%d", rng.Intn(100)))
			}
		}
		recs[i] = Record{
			Op:      op,
			Key:     kadid.HashString(fmt.Sprintf("k%d", rng.Intn(8))),
			Entries: entries,
		}
	}
	return recs
}

func recordsEqual(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	_, _, l := collect(t, dir, Options{Sync: SyncNone})
	recs := randomRecords(rand.New(rand.NewSource(1)), 50)
	for i := range recs {
		if err := l.Commit(context.Background(), []Record{recs[i]}, nil); err != nil {
			t.Fatalf("Commit %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	got, stats, l2 := collect(t, dir, Options{Sync: SyncNone})
	defer l2.Close()
	recordsEqual(t, got, recs)
	if stats.TruncatedBytes != 0 {
		t.Fatalf("clean shutdown truncated %d bytes", stats.TruncatedBytes)
	}
	if stats.Records != len(recs) {
		t.Fatalf("stats.Records = %d, want %d", stats.Records, len(recs))
	}
}

func TestCommitAfterCloseAndCrash(t *testing.T) {
	dir := t.TempDir()
	_, _, l := collect(t, dir, Options{Sync: SyncNone})
	l.Close()
	if err := l.Commit(context.Background(), []Record{{Op: OpAppend, Key: kadid.HashString("k"), Entries: []wire.Entry{{Field: "f"}}}}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("commit after close: %v, want ErrClosed", err)
	}

	_, _, l2 := collect(t, dir, Options{Sync: SyncNone})
	l2.Crash()
	if err := l2.Commit(context.Background(), []Record{{Op: OpAppend, Key: kadid.HashString("k"), Entries: []wire.Entry{{Field: "f"}}}}, nil); !errors.Is(err, ErrCrashed) {
		t.Fatalf("commit after crash: %v, want ErrCrashed", err)
	}
}

// TestAcknowledgedSurvivesCrash is the durability contract: every
// Commit that returned nil is on disk after a simulated SIGKILL.
func TestAcknowledgedSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	_, _, l := collect(t, dir, Options{Sync: SyncNone})
	recs := randomRecords(rand.New(rand.NewSource(7)), 100)
	for i := range recs {
		if err := l.Commit(context.Background(), []Record{recs[i]}, nil); err != nil {
			t.Fatalf("Commit %d: %v", i, err)
		}
	}
	l.Crash()

	got, _, l2 := collect(t, dir, Options{Sync: SyncNone})
	defer l2.Close()
	recordsEqual(t, got, recs)
}

// TestGroupCommitConcurrent drives many committers through the shared
// flusher and checks nothing is lost or duplicated.
func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	_, _, l := collect(t, dir, Options{Sync: SyncNone})
	const workers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				rec := Record{
					Op:      OpAppend,
					Key:     kadid.HashString(fmt.Sprintf("w%d", w)),
					Entries: []wire.Entry{{Field: fmt.Sprintf("f%d", i), Count: 1}},
				}
				if err := l.Commit(context.Background(), []Record{rec}, nil); err != nil {
					t.Errorf("worker %d commit %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	got, _, l2 := collect(t, dir, Options{Sync: SyncNone})
	defer l2.Close()
	if len(got) != workers*each {
		t.Fatalf("replayed %d records, want %d", len(got), workers*each)
	}
	seen := make(map[string]bool)
	for _, rec := range got {
		k := rec.Key.String() + "/" + rec.Entries[0].Field
		if seen[k] {
			t.Fatalf("record %s duplicated", k)
		}
		seen[k] = true
	}
}

// TestCrashPointRecovery is the crash-point property test of the
// ISSUE: the WAL is killed at every record boundary and at several
// mid-record positions of a randomized append sequence, and replay
// must equal exactly the prefix of fully persisted records.
func TestCrashPointRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	recs := randomRecords(rng, 40)

	// Deterministic expected image: the framed concatenation.
	var want []byte
	boundaries := []int{0}
	for i := range recs {
		var err error
		if want, err = appendFrames(want, &recs[i]); err != nil {
			t.Fatalf("encode: %v", err)
		}
		boundaries = append(boundaries, len(want))
	}

	dir := t.TempDir()
	// SyncEach writes each record synchronously in commit order, so the
	// on-disk image matches the deterministic concatenation.
	_, _, l := collect(t, dir, Options{Sync: SyncEach, SegmentBytes: 1 << 30})
	for i := range recs {
		if err := l.Commit(context.Background(), []Record{recs[i]}, nil); err != nil {
			t.Fatalf("Commit %d: %v", i, err)
		}
	}
	l.Close()

	seg := segPath(dir, 1)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(data, want) {
		t.Fatalf("segment bytes differ from deterministic encoding (%d vs %d bytes)", len(data), len(want))
	}

	// Every boundary, plus cuts inside the header and inside the
	// payload of the record that follows it.
	cuts := make(map[int]bool)
	for i, b := range boundaries {
		cuts[b] = true
		if i < len(recs) {
			width := boundaries[i+1] - b
			for _, off := range []int{3, 8, width - 1} {
				if off > 0 && off < width {
					cuts[b+off] = true
				}
			}
		}
	}

	for cut := range cuts {
		// The model: records whose frames are fully inside the prefix.
		complete := 0
		for complete < len(recs) && boundaries[complete+1] <= cut {
			complete++
		}

		sub := t.TempDir()
		if err := os.MkdirAll(filepath.Join(sub, walDirName), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(segPath(sub, 1), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}

		got, stats, l := collect(t, sub, Options{Sync: SyncNone})
		recordsEqual(t, got, recs[:complete])
		wantTorn := int64(cut - boundaries[complete])
		if stats.TruncatedBytes != wantTorn {
			t.Fatalf("cut %d: truncated %d bytes, want %d", cut, stats.TruncatedBytes, wantTorn)
		}

		// The truncated log must keep working: append one more record
		// and recover it on the next open.
		extra := Record{Op: OpAppend, Key: kadid.HashString("extra"), Entries: []wire.Entry{{Field: "x", Count: 9}}}
		if err := l.Commit(context.Background(), []Record{extra}, nil); err != nil {
			t.Fatalf("cut %d: commit after truncation: %v", cut, err)
		}
		l.Close()
		got2, _, l2 := collect(t, sub, Options{Sync: SyncNone})
		recordsEqual(t, got2, append(append([]Record(nil), recs[:complete]...), extra))
		l2.Close()
	}
}

// TestOversizedRecordChunksByBytes: a mutation whose encoded size
// exceeds the per-record payload bound must be split across several
// frames on the way in — and come back intact, never tripping the
// read-side record size cap.
func TestOversizedRecordChunksByBytes(t *testing.T) {
	blob := make([]byte, 60<<10)
	for i := range blob {
		blob[i] = byte(i)
	}
	entries := make([]wire.Entry, 120) // ~7 MiB encoded, bound is 4 MiB
	for i := range entries {
		entries[i] = wire.Entry{Field: fmt.Sprintf("f%03d", i), Count: 1, Data: blob}
	}
	rec := Record{Op: OpAppend, Key: kadid.HashString("big"), Entries: entries}

	frames, err := appendFrames(nil, &rec)
	if err != nil {
		t.Fatal(err)
	}
	var got []wire.Entry
	nFrames := 0
	for off := 0; off < len(frames); {
		r, n, err := decodeFrame(frames[off:])
		if err != nil {
			t.Fatalf("frame %d: %v", nFrames, err)
		}
		if int64(n) > maxRecordPayload+8+1024 {
			t.Fatalf("frame %d is %d bytes, beyond the payload bound", nFrames, n)
		}
		if r.Op != rec.Op || r.Key != rec.Key {
			t.Fatalf("frame %d changed op/key", nFrames)
		}
		got = append(got, r.Entries...)
		off += n
		nFrames++
	}
	if nFrames < 2 {
		t.Fatalf("oversized record produced %d frame(s), want a split", nFrames)
	}
	if !reflect.DeepEqual(got, entries) {
		t.Fatal("reassembled entries differ from the original")
	}

	// End to end: the same record commits and recovers through a log.
	dir := t.TempDir()
	_, _, l := collect(t, dir, Options{Sync: SyncNone})
	if err := l.Commit(context.Background(), []Record{rec}, nil); err != nil {
		t.Fatal(err)
	}
	l.Close()
	replayed, _, l2 := collect(t, dir, Options{Sync: SyncNone})
	defer l2.Close()
	var back []wire.Entry
	for _, r := range replayed {
		back = append(back, r.Entries...)
	}
	if !reflect.DeepEqual(back, entries) {
		t.Fatal("recovered entries differ from the committed ones")
	}
}

// TestBoundarySegmentGapRefusesToOpen: losing the segment the chain
// must start at — the snapshot's cut segment, or segment 1 when there
// is no snapshot — is data loss, not a torn tail.
func TestBoundarySegmentGapRefusesToOpen(t *testing.T) {
	dir := t.TempDir()
	_, _, l := collect(t, dir, Options{Sync: SyncEach, SegmentBytes: 64})
	for _, rec := range randomRecords(rand.New(rand.NewSource(11)), 12) {
		if err := l.Commit(context.Background(), []Record{rec}, nil); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// No snapshot: the chain must start at segment 1.
	if err := os.Remove(segPath(dir, 1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{Sync: SyncNone}, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with missing first segment: %v, want ErrCorrupt", err)
	}

	// With a snapshot: the cut segment must exist.
	dir2 := t.TempDir()
	_, _, l2 := collect(t, dir2, Options{Sync: SyncNone})
	if err := l2.Commit(context.Background(), []Record{{Op: OpAppend, Key: kadid.HashString("k"), Entries: []wire.Entry{{Field: "f", Count: 1}}}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := l2.Compact(func(add func(Record) error) error {
		return add(Record{Op: OpMergeMax, Key: kadid.HashString("k"), Entries: []wire.Entry{{Field: "f", Count: 1}}})
	}); err != nil {
		t.Fatal(err)
	}
	cut := l2.ActiveSegment()
	l2.Close()
	if err := os.Remove(segPath(dir2, cut)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir2, Options{Sync: SyncNone}, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with missing cut segment: %v, want ErrCorrupt", err)
	}
}

func TestCorruptMiddleSegmentRefusesToOpen(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation: every flush that ends >= 64 bytes
	// rolls, so the log spans several files.
	_, _, l := collect(t, dir, Options{Sync: SyncEach, SegmentBytes: 64})
	recs := randomRecords(rand.New(rand.NewSource(3)), 30)
	for i := range recs {
		if err := l.Commit(context.Background(), []Record{recs[i]}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if l.ActiveSegment() < 3 {
		t.Fatalf("expected several segments, active is %d", l.ActiveSegment())
	}
	l.Close()

	// Sanity: intact multi-segment recovery replays everything.
	got, stats, l2 := collect(t, dir, Options{Sync: SyncNone})
	recordsEqual(t, got, recs)
	if stats.Segments < 3 {
		t.Fatalf("replayed %d segments, want several", stats.Segments)
	}
	l2.Close()

	// Flip one payload byte in the FIRST segment: that is not a torn
	// tail, it is corruption, and recovery must refuse.
	seg1 := segPath(dir, 1)
	data, err := os.ReadFile(seg1)
	if err != nil {
		t.Fatal(err)
	}
	data[9] ^= 0xff
	if err := os.WriteFile(seg1, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(dir, Options{Sync: SyncNone}, func(Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with corrupt middle segment: %v, want ErrCorrupt", err)
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	_, _, l := collect(t, dir, Options{Sync: SyncNone, SegmentBytes: 128})
	recs := randomRecords(rand.New(rand.NewSource(5)), 25)
	for i := range recs {
		if err := l.Commit(context.Background(), []Record{recs[i]}, nil); err != nil {
			t.Fatal(err)
		}
	}

	// The embedder's "state" for this test: pretend the whole history
	// compacts to two records.
	snapRecs := []Record{
		{Op: OpMergeMax, Key: kadid.HashString("s1"), Entries: []wire.Entry{{Field: "a", Count: 10}}},
		{Op: OpMergeMax, Key: kadid.HashString("s2"), Entries: []wire.Entry{{Field: "b", Count: 20}}},
	}
	if err := l.Compact(func(add func(Record) error) error {
		for _, r := range snapRecs {
			if err := add(r); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if got := l.BytesSinceCompact(); got != 0 {
		t.Fatalf("BytesSinceCompact after compaction = %d", got)
	}

	// Old segments are gone; only the fresh cut segment remains.
	segs, err := listSeqFiles(filepath.Join(dir, walDirName), ".wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0] != l.ActiveSegment() {
		t.Fatalf("segments after compaction: %v (active %d)", segs, l.ActiveSegment())
	}

	// Post-compaction commits land in the tail.
	tail := randomRecords(rand.New(rand.NewSource(6)), 5)
	for i := range tail {
		if err := l.Commit(context.Background(), []Record{tail[i]}, nil); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	got, stats, l2 := collect(t, dir, Options{Sync: SyncNone})
	defer l2.Close()
	recordsEqual(t, got, append(append([]Record(nil), snapRecs...), tail...))
	if stats.SnapshotSeq == 0 || stats.SnapshotRecords != len(snapRecs) {
		t.Fatalf("stats = %+v, want snapshot with %d records", stats, len(snapRecs))
	}
}

func TestCompactionConcurrentWithCommits(t *testing.T) {
	dir := t.TempDir()
	_, _, l := collect(t, dir, Options{Sync: SyncNone})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var committed atomic64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			rec := Record{Op: OpAppend, Key: kadid.HashString("k"), Entries: []wire.Entry{{Field: fmt.Sprintf("f%d", i), Count: 1}}}
			if err := l.Commit(context.Background(), []Record{rec}, nil); err != nil {
				t.Errorf("commit: %v", err)
				return
			}
			committed.add(1)
		}
	}()
	for i := 0; i < 5; i++ {
		if err := l.Compact(func(add func(Record) error) error { return nil }); err != nil {
			t.Fatalf("Compact %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	l.Close()
	// Recovery still reads a consistent tail (the empty snapshots
	// discarded the history, which is the embedder's choice here).
	_, _, l2 := collect(t, dir, Options{Sync: SyncNone})
	l2.Close()
}

type atomic64 struct {
	mu sync.Mutex
	v  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.v += d; a.mu.Unlock() }

func TestIdentityPersistence(t *testing.T) {
	dir := t.TempDir()
	fresh := kadid.HashString("me")
	id, err := LoadOrCreateIdentity(dir, fresh)
	if err != nil || id != fresh {
		t.Fatalf("first load: %v %v", id, err)
	}
	other := kadid.HashString("other")
	id2, err := LoadOrCreateIdentity(dir, other)
	if err != nil {
		t.Fatal(err)
	}
	if id2 != fresh {
		t.Fatalf("restart minted a new identity: %s != %s", id2, fresh)
	}
	if err := os.WriteFile(filepath.Join(dir, identityFile), []byte("not-hex"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadOrCreateIdentity(dir, fresh); err == nil {
		t.Fatal("corrupt identity file accepted")
	}
}

// FuzzWALDecode throws arbitrary bytes at the record decoder: it must
// never panic, and anything it accepts must re-encode and re-decode to
// the same record.
func FuzzWALDecode(f *testing.F) {
	valid, err := appendFrames(nil, &Record{
		Op:  OpAppend,
		Key: kadid.HashString("seed"),
		Entries: []wire.Entry{
			{Field: "f", Count: 3, Init: 1, Data: []byte("uri"), Author: []byte("a"), Sig: []byte("s")},
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:4])
	f.Add([]byte{})
	two, _ := appendFrames(valid, &Record{Op: OpMergeMax, Key: kadid.HashString("x"), Entries: []wire.Entry{{Field: "g"}}})
	f.Add(two)

	f.Fuzz(func(t *testing.T, data []byte) {
		off := 0
		for off < len(data) {
			rec, n, err := decodeFrame(data[off:])
			if err != nil {
				return
			}
			if n <= 0 {
				t.Fatalf("accepted frame of %d bytes", n)
			}
			re, err := appendFrames(nil, &rec)
			if err != nil {
				t.Fatalf("re-encode of accepted record: %v", err)
			}
			rec2, _, err := decodeFrame(re)
			if err != nil {
				t.Fatalf("re-decode: %v", err)
			}
			if !reflect.DeepEqual(rec, rec2) {
				t.Fatalf("round trip changed record:\n was %+v\n now %+v", rec, rec2)
			}
			off += n
		}
	})
}
