package persist

import (
	"context"
	"errors"
	"testing"
	"time"

	"dharma/internal/kadid"
	"dharma/internal/wire"
)

func rec(key, field string, count uint64) Record {
	return Record{
		Op:      OpAppend,
		Key:     kadid.HashString(key),
		Entries: []wire.Entry{{Field: field, Count: count}},
	}
}

// TestCommitDeadlineBeatsFlushWindow: a committer with a 1ms deadline
// must return promptly instead of sitting out a long group-commit
// linger — while its staged record still reaches the log with the rest
// of the batch.
func TestCommitDeadlineBeatsFlushWindow(t *testing.T) {
	dir := t.TempDir()
	const window = 300 * time.Millisecond
	_, _, l := collect(t, dir, Options{Sync: SyncGroup, FlushWindow: window})

	// A background committer keeps the batch open for the full window.
	bgDone := make(chan error, 1)
	go func() {
		bgDone <- l.Commit(context.Background(), []Record{rec("k", "bg", 1)}, nil)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	applied := false
	start := time.Now()
	err := l.Commit(ctx, []Record{rec("k", "hurried", 2)}, func() { applied = true })
	elapsed := time.Since(start)

	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline commit: got %v, want DeadlineExceeded", err)
	}
	if !applied {
		t.Fatal("apply did not run: the record was staged, so the in-memory state must reflect it")
	}
	if elapsed >= window {
		t.Fatalf("deadline commit took %v; must not wait out the %v flush window", elapsed, window)
	}

	// The abandoned commit must not hurt the rest of the group.
	if err := <-bgDone; err != nil {
		t.Fatalf("background commit: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Both records — including the abandoned committer's — are in the log.
	got, _, l2 := collect(t, dir, Options{Sync: SyncNone})
	defer l2.Close()
	fields := map[string]bool{}
	for _, r := range got {
		for _, e := range r.Entries {
			fields[e.Field] = true
		}
	}
	if !fields["bg"] || !fields["hurried"] {
		t.Fatalf("replayed fields %v; want both bg and hurried (staged records must land)", fields)
	}
}

// TestCommitRefusesDeadContext: a ctx that is already over refuses the
// commit before staging anything — nothing lands, apply never runs.
func TestCommitRefusesDeadContext(t *testing.T) {
	dir := t.TempDir()
	_, _, l := collect(t, dir, Options{Sync: SyncNone})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := l.Commit(ctx, []Record{rec("k", "never", 1)}, func() {
		t.Error("apply ran under a dead context")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want Canceled", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	got, _, l2 := collect(t, dir, Options{Sync: SyncNone})
	defer l2.Close()
	if len(got) != 0 {
		t.Fatalf("replayed %d records, want 0", len(got))
	}
}

// TestCommitSyncEachIgnoresLateCancel: under SyncEach the flush happens
// synchronously inside Commit, so a ctx that ends mid-flush still gets
// a resolved batch — the committer learns the real outcome.
func TestCommitSyncEachIgnoresLateCancel(t *testing.T) {
	dir := t.TempDir()
	_, _, l := collect(t, dir, Options{Sync: SyncEach})
	defer l.Close()

	if err := l.Commit(context.Background(), []Record{rec("k", "each", 1)}, nil); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}
