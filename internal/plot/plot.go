// Package plot renders small ASCII charts for the benchmark harness:
// scatter plots for Figures 6 and 8 and multi-series line charts for
// the CDF figures (5 and 7). The goal is not beauty but a terminal
// rendering faithful enough to eyeball the paper's qualitative claims
// (diagonal alignment, left-shifted CDFs) without external tooling.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is a named point set. Successive series are drawn with
// distinct marks ('*', 'o', '+', 'x', ...).
type Series struct {
	Name   string
	Points [][2]float64
}

var marks = []byte{'*', 'o', '+', 'x', '#', '@'}

// Options controls the canvas.
type Options struct {
	Width, Height int  // character cells (defaults 64×20)
	LogX, LogY    bool // logarithmic axes (values < 1 clamp to 1)
	Title         string
	XLabel        string
	YLabel        string
	// Diagonal draws the y=x reference line (Figures 6 and 8).
	Diagonal bool
}

func (o Options) withDefaults() Options {
	if o.Width <= 0 {
		o.Width = 64
	}
	if o.Height <= 0 {
		o.Height = 20
	}
	return o
}

// Render draws the series onto one canvas.
func Render(series []Series, opt Options) string {
	opt = opt.withDefaults()

	tx := func(v float64) float64 { return v }
	ty := tx
	if opt.LogX {
		tx = logClamp
	}
	if opt.LogY {
		ty = logClamp
	}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, p := range s.Points {
			x, y := tx(p[0]), ty(p[1])
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if math.IsInf(minX, 1) { // no points at all
		minX, maxX, minY, maxY = 0, 1, 0, 1
	}
	if opt.Diagonal {
		lo := math.Min(minX, minY)
		hi := math.Max(maxX, maxY)
		minX, minY, maxX, maxY = lo, lo, hi, hi
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, opt.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", opt.Width))
	}
	toCol := func(x float64) int {
		c := int(math.Round((x - minX) / (maxX - minX) * float64(opt.Width-1)))
		return clamp(c, 0, opt.Width-1)
	}
	toRow := func(y float64) int {
		r := int(math.Round((y - minY) / (maxY - minY) * float64(opt.Height-1)))
		return clamp(opt.Height-1-r, 0, opt.Height-1)
	}

	if opt.Diagonal {
		for c := 0; c < opt.Width; c++ {
			x := minX + float64(c)/float64(opt.Width-1)*(maxX-minX)
			grid[toRow(x)][c] = '.'
		}
	}
	for si, s := range series {
		mark := marks[si%len(marks)]
		for _, p := range s.Points {
			grid[toRow(ty(p[1]))][toCol(tx(p[0]))] = mark
		}
	}

	var b strings.Builder
	if opt.Title != "" {
		fmt.Fprintf(&b, "%s\n", opt.Title)
	}
	legend := make([]string, 0, len(series))
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", marks[si%len(marks)], s.Name))
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "legend: %s\n", strings.Join(legend, "   "))
	}

	yHi, yLo := axisLabel(maxY, opt.LogY), axisLabel(minY, opt.LogY)
	labelW := len(yHi)
	if len(yLo) > labelW {
		labelW = len(yLo)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", labelW)
		switch i {
		case 0:
			label = pad(yHi, labelW)
		case opt.Height - 1:
			label = pad(yLo, labelW)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s+\n", strings.Repeat(" ", labelW), strings.Repeat("-", opt.Width))
	xHi := axisLabel(maxX, opt.LogX)
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", labelW),
		axisLabel(minX, opt.LogX),
		strings.Repeat(" ", max(1, opt.Width-len(axisLabel(minX, opt.LogX))-len(xHi))),
		xHi)
	if opt.XLabel != "" || opt.YLabel != "" {
		fmt.Fprintf(&b, "x: %s   y: %s\n", opt.XLabel, opt.YLabel)
	}
	return b.String()
}

func logClamp(v float64) float64 {
	if v < 1 {
		v = 1
	}
	return math.Log10(v)
}

func axisLabel(v float64, logged bool) string {
	if logged {
		return fmt.Sprintf("%.3g", math.Pow(10, v))
	}
	return fmt.Sprintf("%.3g", v)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
