package plot

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	out := Render([]Series{
		{Name: "a", Points: [][2]float64{{0, 0}, {1, 1}, {2, 4}}},
		{Name: "b", Points: [][2]float64{{0, 4}, {2, 0}}},
	}, Options{Width: 30, Height: 10, Title: "demo", XLabel: "x", YLabel: "y"})

	if !strings.Contains(out, "demo") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "* a") || !strings.Contains(out, "o b") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("marks missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + legend + 10 rows + axis + x labels + xy label line
	if len(lines) != 2+10+1+1+1 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "x: x   y: y") {
		t.Fatal("axis labels missing")
	}
}

func TestRenderDiagonal(t *testing.T) {
	out := Render([]Series{
		{Name: "pts", Points: [][2]float64{{1, 1}, {50, 48}, {100, 95}}},
	}, Options{Width: 40, Height: 12, Diagonal: true})
	if !strings.Contains(out, ".") {
		t.Fatal("diagonal reference line missing")
	}
}

func TestRenderLogAxes(t *testing.T) {
	out := Render([]Series{
		{Name: "cdf", Points: [][2]float64{{1, 0.1}, {10, 0.5}, {10000, 1}}},
	}, Options{Width: 40, Height: 8, LogX: true})
	// The x axis labels must show the de-logged bounds.
	if !strings.Contains(out, "1e+04") && !strings.Contains(out, "10000") {
		t.Fatalf("log axis label missing:\n%s", out)
	}
}

func TestRenderEmptySeries(t *testing.T) {
	out := Render(nil, Options{})
	if out == "" {
		t.Fatal("empty render must still draw a frame")
	}
	out = Render([]Series{{Name: "empty"}}, Options{Width: 10, Height: 4})
	if !strings.Contains(out, "empty") {
		t.Fatal("legend for empty series missing")
	}
}

func TestRenderConstantValues(t *testing.T) {
	// Degenerate ranges (all points equal) must not divide by zero.
	out := Render([]Series{
		{Name: "flat", Points: [][2]float64{{5, 5}, {5, 5}}},
	}, Options{Width: 10, Height: 4})
	if !strings.Contains(out, "*") {
		t.Fatalf("flat series not drawn:\n%s", out)
	}
}
