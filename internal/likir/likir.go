// Package likir implements the identity layer DHARMA runs on. The paper
// deploys its primitives on Likir ("Tempering Kademlia with a robust
// identity based system", Aiello et al., P2P'08), a Kademlia variant in
// which a certification service binds each node identifier to a user
// identity, and stored content is signed by its author.
//
// This package reproduces the two mechanisms DHARMA relies on:
//
//   - Node admission: a central Authority issues a Credential binding an
//     identity name and an Ed25519 public key to the node identifier
//     derived from them (NodeID = SHA-1(pubkey ‖ name)). Nodes cannot
//     choose their own position in the key space, which defeats targeted
//     key-space attacks.
//   - Content authenticity: block entries are signed over (block key,
//     field, data) so a storage node cannot forge or tamper with arcs it
//     hosts.
//
// Only the Go standard library is used (crypto/ed25519, crypto/sha1).
// The package deliberately depends on nothing above kadid, so the
// transport stack (wire, session) can build on it without cycles.
package likir

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha1"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"dharma/internal/kadid"
)

// Errors reported by credential and entry verification.
var (
	ErrBadCredential = errors.New("likir: invalid credential")
	ErrExpired       = errors.New("likir: credential expired")
	ErrBadSignature  = errors.New("likir: invalid entry signature")
)

// DefaultValidity is the lifetime of an issued credential.
const DefaultValidity = 365 * 24 * time.Hour

// Credential certifies that an identity name and public key are bound
// to a node identifier. It is issued and signed by an Authority.
type Credential struct {
	Name      string
	Pub       ed25519.PublicKey
	NodeID    kadid.ID
	IssuedAt  int64 // unix seconds
	ExpiresAt int64 // unix seconds
	CASig     []byte
}

// Identity is a principal's full key material: its credential plus the
// private key matching Credential.Pub.
type Identity struct {
	Credential
	Priv ed25519.PrivateKey
}

// Authority is the Likir certification service. It holds the CA key
// pair, issues credentials and maintains the revocation list. Clock is
// injectable for tests; nil means time.Now.
type Authority struct {
	pub      ed25519.PublicKey
	priv     ed25519.PrivateKey
	validity time.Duration
	now      func() time.Time

	revokedMu sync.Mutex
	revoked   map[kadid.ID]bool
}

// NewAuthority creates a certification service with a fresh CA key pair
// read from rng (nil means crypto/rand). A zero validity selects
// DefaultValidity.
func NewAuthority(rng io.Reader, validity time.Duration, now func() time.Time) (*Authority, error) {
	if rng == nil {
		rng = rand.Reader
	}
	if validity <= 0 {
		validity = DefaultValidity
	}
	if now == nil {
		now = time.Now
	}
	pub, priv, err := ed25519.GenerateKey(rng)
	if err != nil {
		return nil, fmt.Errorf("likir: generate CA key: %w", err)
	}
	return &Authority{pub: pub, priv: priv, validity: validity, now: now}, nil
}

// PublicKey returns the CA public key that nodes use to verify
// credentials.
func (a *Authority) PublicKey() ed25519.PublicKey { return a.pub }

// DeriveNodeID computes the identifier Likir assigns to (pub, name).
func DeriveNodeID(pub ed25519.PublicKey, name string) kadid.ID {
	h := sha1.New()
	h.Write(pub)
	io.WriteString(h, name) //nolint:errcheck // sha1 writes never fail
	var id kadid.ID
	copy(id[:], h.Sum(nil))
	return id
}

// Issue generates a key pair for name, derives its node identifier and
// returns the signed identity. rng nil means crypto/rand.
func (a *Authority) Issue(rng io.Reader, name string) (*Identity, error) {
	if rng == nil {
		rng = rand.Reader
	}
	pub, priv, err := ed25519.GenerateKey(rng)
	if err != nil {
		return nil, fmt.Errorf("likir: generate identity key: %w", err)
	}
	issued := a.now().Unix()
	cred := Credential{
		Name:      name,
		Pub:       pub,
		NodeID:    DeriveNodeID(pub, name),
		IssuedAt:  issued,
		ExpiresAt: issued + int64(a.validity/time.Second),
	}
	cred.CASig = ed25519.Sign(a.priv, credentialTBS(&cred))
	return &Identity{Credential: cred, Priv: priv}, nil
}

// credentialTBS returns the to-be-signed encoding of a credential
// (everything except the CA signature).
func credentialTBS(c *Credential) []byte {
	var b bytes.Buffer
	writeBlob(&b, []byte(c.Name))
	writeBlob(&b, c.Pub)
	b.Write(c.NodeID[:])
	binary.Write(&b, binary.BigEndian, c.IssuedAt)  //nolint:errcheck
	binary.Write(&b, binary.BigEndian, c.ExpiresAt) //nolint:errcheck
	return b.Bytes()
}

// VerifyCredential checks the CA signature, the node-identifier binding
// and the validity window of cred. now nil means time.Now.
func VerifyCredential(caPub ed25519.PublicKey, cred *Credential, now func() time.Time) error {
	if now == nil {
		now = time.Now
	}
	if len(cred.Pub) != ed25519.PublicKeySize {
		return fmt.Errorf("%w: bad public key size", ErrBadCredential)
	}
	if DeriveNodeID(cred.Pub, cred.Name) != cred.NodeID {
		return fmt.Errorf("%w: node id does not match identity", ErrBadCredential)
	}
	if !ed25519.Verify(caPub, credentialTBS(cred), cred.CASig) {
		return fmt.Errorf("%w: CA signature check failed", ErrBadCredential)
	}
	t := now().Unix()
	if t < cred.IssuedAt || t > cred.ExpiresAt {
		return ErrExpired
	}
	return nil
}

// Marshal encodes the credential for transport in wire.Message.Cred.
func (c *Credential) Marshal() []byte {
	var b bytes.Buffer
	writeBlob(&b, []byte(c.Name))
	writeBlob(&b, c.Pub)
	b.Write(c.NodeID[:])
	binary.Write(&b, binary.BigEndian, c.IssuedAt)  //nolint:errcheck
	binary.Write(&b, binary.BigEndian, c.ExpiresAt) //nolint:errcheck
	writeBlob(&b, c.CASig)
	return b.Bytes()
}

// UnmarshalCredential decodes a credential produced by Marshal.
func UnmarshalCredential(data []byte) (*Credential, error) {
	r := bytes.NewReader(data)
	name, err := readBlob(r)
	if err != nil {
		return nil, fmt.Errorf("%w: name: %v", ErrBadCredential, err)
	}
	pub, err := readBlob(r)
	if err != nil {
		return nil, fmt.Errorf("%w: pub: %v", ErrBadCredential, err)
	}
	var id kadid.ID
	if _, err := io.ReadFull(r, id[:]); err != nil {
		return nil, fmt.Errorf("%w: node id: %v", ErrBadCredential, err)
	}
	var issued, expires int64
	if err := binary.Read(r, binary.BigEndian, &issued); err != nil {
		return nil, fmt.Errorf("%w: issued: %v", ErrBadCredential, err)
	}
	if err := binary.Read(r, binary.BigEndian, &expires); err != nil {
		return nil, fmt.Errorf("%w: expires: %v", ErrBadCredential, err)
	}
	sig, err := readBlob(r)
	if err != nil {
		return nil, fmt.Errorf("%w: sig: %v", ErrBadCredential, err)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: trailing bytes", ErrBadCredential)
	}
	return &Credential{
		Name: string(name), Pub: pub, NodeID: id,
		IssuedAt: issued, ExpiresAt: expires, CASig: sig,
	}, nil
}

// entryTBS is the byte string an entry signature covers: the block key,
// the field name and the opaque data. Counts are excluded deliberately:
// they are aggregates of one-bit tokens appended by many writers and
// are not attributable to a single author.
func entryTBS(key kadid.ID, field string, data []byte) []byte {
	var b bytes.Buffer
	b.Write(key[:])
	writeBlob(&b, []byte(field))
	writeBlob(&b, data)
	return b.Bytes()
}

// SignEntry signs the (block key, field, data) triple of an entry and
// returns the author public key and signature to attach to it.
func (id *Identity) SignEntry(key kadid.ID, field string, data []byte) (author, sig []byte) {
	author = append([]byte(nil), id.Pub...)
	sig = ed25519.Sign(id.Priv, entryTBS(key, field, data))
	return author, sig
}

// VerifyEntry checks the author signature on a signed entry. Unsigned
// entries (no author) are accepted: the overlay may run open.
func VerifyEntry(key kadid.ID, field string, data, author, sig []byte) error {
	if len(author) == 0 {
		return nil
	}
	if len(author) != ed25519.PublicKeySize {
		return fmt.Errorf("%w: bad author key size", ErrBadSignature)
	}
	if !ed25519.Verify(ed25519.PublicKey(author), entryTBS(key, field, data), sig) {
		return ErrBadSignature
	}
	return nil
}

func writeBlob(b *bytes.Buffer, p []byte) {
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(p)))
	b.Write(lenBuf[:n])
	b.Write(p)
}

func readBlob(r *bytes.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > 1<<16 {
		return nil, fmt.Errorf("blob of %d bytes", n)
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(r, p); err != nil {
		return nil, err
	}
	return p, nil
}
