package likir

import (
	"bytes"
	"crypto/ed25519"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"dharma/internal/kadid"
)

// File persistence for the identity layer, used by the dharma-node CLI:
// the authority's key material lives in a state directory (`ca init`),
// issued identities in single files handed to node operators
// (`ca issue`), and the signed revocation bundle in a file every node
// re-reads on its maintenance tick (`ca revoke`).
//
// Key-bearing files are written 0600 and atomically (tmp + rename),
// like the persist package's identity file: a half-written key after a
// power cut must not strand a node behind an unusable identity.

// Names of the files a CA state directory holds.
const (
	caKeyFile    = "ca.key"          // authority private key (secret)
	caPubFile    = "ca.pub"          // authority public key (distribute)
	caRevledger  = "revoked.ids"     // revoked node ids, one per line
	caBundleFile = "revocations.bin" // signed bundle (distribute)
)

// Magic prefixes of the binary key files.
var (
	idMagic = []byte("LIKIRID1")
	caMagic = []byte("LIKIRCA1")
)

// SaveCA persists the authority's key material and revocation ledger
// under dir, plus the distributable ca.pub and signed bundle.
func (a *Authority) SaveCA(dir string) error {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return fmt.Errorf("likir: %w", err)
	}
	var key bytes.Buffer
	key.Write(caMagic)
	writeBlob(&key, a.priv)
	writeBlob(&key, []byte(fmt.Sprintf("%d", int64(a.validity/time.Second))))
	if err := writeFileAtomic(filepath.Join(dir, caKeyFile), key.Bytes(), 0o600); err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(dir, caPubFile),
		[]byte(hex.EncodeToString(a.pub)+"\n"), 0o644); err != nil {
		return err
	}
	a.revokedMu.Lock()
	ids := make([]kadid.ID, 0, len(a.revoked))
	for id := range a.revoked {
		ids = append(ids, id)
	}
	a.revokedMu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return kadid.Cmp(ids[i], ids[j]) < 0 })
	var ledger strings.Builder
	for _, id := range ids {
		ledger.WriteString(id.String())
		ledger.WriteByte('\n')
	}
	if err := writeFileAtomic(filepath.Join(dir, caRevledger), []byte(ledger.String()), 0o644); err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(dir, caBundleFile), a.RevocationBundle(), 0o644)
}

// LoadCA restores an authority from a state directory written by
// SaveCA, including its revocation ledger.
func LoadCA(dir string) (*Authority, error) {
	data, err := os.ReadFile(filepath.Join(dir, caKeyFile))
	if err != nil {
		return nil, fmt.Errorf("likir: %w", err)
	}
	if !bytes.HasPrefix(data, caMagic) {
		return nil, fmt.Errorf("likir: %s is not a CA key file", caKeyFile)
	}
	r := bytes.NewReader(data[len(caMagic):])
	priv, err := readBlob(r)
	if err != nil {
		return nil, fmt.Errorf("likir: CA key: %w", err)
	}
	if len(priv) != ed25519.PrivateKeySize {
		return nil, fmt.Errorf("likir: CA key has %d bytes, want %d", len(priv), ed25519.PrivateKeySize)
	}
	validityBlob, err := readBlob(r)
	if err != nil {
		return nil, fmt.Errorf("likir: CA validity: %w", err)
	}
	var secs int64
	if _, err := fmt.Sscanf(string(validityBlob), "%d", &secs); err != nil || secs <= 0 {
		return nil, fmt.Errorf("likir: CA validity %q", validityBlob)
	}
	key := ed25519.PrivateKey(priv)
	a := &Authority{
		pub:      key.Public().(ed25519.PublicKey),
		priv:     key,
		validity: time.Duration(secs) * time.Second,
		now:      time.Now,
	}
	ledger, err := os.ReadFile(filepath.Join(dir, caRevledger))
	if err != nil {
		if os.IsNotExist(err) {
			return a, nil
		}
		return nil, fmt.Errorf("likir: %w", err)
	}
	for _, line := range strings.Split(string(ledger), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		id, err := kadid.Parse(line)
		if err != nil {
			return nil, fmt.Errorf("likir: %s: %w", caRevledger, err)
		}
		a.Revoke(id)
	}
	return a, nil
}

// BundlePath returns where a CA state directory keeps its distributable
// revocation bundle.
func BundlePath(dir string) string { return filepath.Join(dir, caBundleFile) }

// PublicKeyPath returns where a CA state directory keeps its
// distributable public key.
func PublicKeyPath(dir string) string { return filepath.Join(dir, caPubFile) }

// Save writes the identity — credential and private key — to path,
// readable only by its owner.
func (id *Identity) Save(path string) error {
	var b bytes.Buffer
	b.Write(idMagic)
	writeBlob(&b, id.Credential.Marshal())
	writeBlob(&b, id.Priv)
	return writeFileAtomic(path, b.Bytes(), 0o600)
}

// LoadIdentity reads an identity file written by Save.
func LoadIdentity(path string) (*Identity, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("likir: %w", err)
	}
	if !bytes.HasPrefix(data, idMagic) {
		return nil, fmt.Errorf("likir: %s is not an identity file", path)
	}
	r := bytes.NewReader(data[len(idMagic):])
	credBlob, err := readBlob(r)
	if err != nil {
		return nil, fmt.Errorf("likir: identity credential: %w", err)
	}
	cred, err := UnmarshalCredential(credBlob)
	if err != nil {
		return nil, err
	}
	priv, err := readBlob(r)
	if err != nil {
		return nil, fmt.Errorf("likir: identity key: %w", err)
	}
	if len(priv) != ed25519.PrivateKeySize {
		return nil, fmt.Errorf("likir: identity key has %d bytes, want %d", len(priv), ed25519.PrivateKeySize)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("likir: %s: trailing bytes", path)
	}
	id := &Identity{Credential: *cred, Priv: ed25519.PrivateKey(priv)}
	if !id.Priv.Public().(ed25519.PublicKey).Equal(cred.Pub) {
		return nil, fmt.Errorf("likir: %s: private key does not match credential", path)
	}
	return id, nil
}

// LoadPublicKey reads a hex-encoded Ed25519 public key file (ca.pub).
func LoadPublicKey(path string) (ed25519.PublicKey, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("likir: %w", err)
	}
	raw, err := hex.DecodeString(strings.TrimSpace(string(data)))
	if err != nil {
		return nil, fmt.Errorf("likir: %s: %w", path, err)
	}
	if len(raw) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("likir: %s holds %d key bytes, want %d", path, len(raw), ed25519.PublicKeySize)
	}
	return ed25519.PublicKey(raw), nil
}

// writeFileAtomic writes data via tmp + fsync + rename so a crash never
// leaves a half-written key file behind.
func writeFileAtomic(path string, data []byte, perm os.FileMode) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, perm)
	if err != nil {
		return fmt.Errorf("likir: %w", err)
	}
	if _, err = f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp) //nolint:errcheck
		return fmt.Errorf("likir: %w", err)
	}
	return nil
}
