package likir

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

// FuzzCredentialDecode checks that no input can panic the credential
// decoder, that every accepted credential re-marshals to the same
// bytes, and that verification never panics on decoder output. The
// seeds cover a genuine issued credential, truncations, and the empty
// input — the shapes the session handshake receives from the network.
func FuzzCredentialDecode(f *testing.F) {
	a, err := NewAuthority(detRand{rand.New(rand.NewSource(77))}, time.Hour, nil)
	if err != nil {
		f.Fatal(err)
	}
	id, err := a.Issue(detRand{rand.New(rand.NewSource(78))}, "fuzz-node")
	if err != nil {
		f.Fatal(err)
	}
	genuine := id.Credential.Marshal()
	f.Add(genuine)
	f.Add(genuine[:len(genuine)/2])
	f.Add(append(append([]byte(nil), genuine...), 0x00))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	caPub := a.PublicKey()

	f.Fuzz(func(t *testing.T, data []byte) {
		cred, err := UnmarshalCredential(data)
		if err != nil {
			return
		}
		// Accepted input must round-trip byte-exactly: the credential is
		// covered by a CA signature, so any re-encoding drift would break
		// verification of legitimately relayed credentials.
		if !bytes.Equal(cred.Marshal(), data) {
			t.Fatalf("re-marshal drift: %x -> %x", data, cred.Marshal())
		}
		// Verification must be total — garbage that decoded cleanly may
		// still carry an arbitrary key and signature.
		VerifyCredential(caPub, cred, nil) //nolint:errcheck
	})
}
