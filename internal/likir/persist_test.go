package likir

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestIdentityFileRoundTrip(t *testing.T) {
	a := newTestAuthority(t, nil)
	id, err := a.Issue(detRand{rand.New(rand.NewSource(41))}, "alice")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "alice.id")
	if err := id.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := LoadIdentity(path)
	if err != nil {
		t.Fatalf("LoadIdentity: %v", err)
	}
	if got.NodeID != id.NodeID || got.Name != id.Name || !got.Priv.Equal(id.Priv) {
		t.Fatalf("round trip changed the identity: %+v", got.Credential)
	}
	if err := VerifyCredential(a.PublicKey(), &got.Credential, nil); err != nil {
		t.Fatalf("loaded credential does not verify: %v", err)
	}
}

func TestCARoundTripKeepsIssuingAndRevoking(t *testing.T) {
	dir := t.TempDir()
	a, err := NewAuthority(detRand{rand.New(rand.NewSource(42))}, time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	id, err := a.Issue(detRand{rand.New(rand.NewSource(43))}, "bob")
	if err != nil {
		t.Fatal(err)
	}
	a.Revoke(id.NodeID)
	if err := a.SaveCA(dir); err != nil {
		t.Fatalf("SaveCA: %v", err)
	}

	b, err := LoadCA(dir)
	if err != nil {
		t.Fatalf("LoadCA: %v", err)
	}
	// Same key: credentials issued before the restart still verify, and
	// the revocation ledger survived.
	if err := VerifyCredential(b.PublicKey(), &id.Credential, nil); err != nil {
		t.Fatalf("pre-restart credential rejected: %v", err)
	}
	if !b.IsRevoked(id.NodeID) {
		t.Fatal("revocation lost across SaveCA/LoadCA")
	}
	// New credentials from the restored CA verify under the distributed
	// public-key file.
	pub, err := LoadPublicKey(PublicKeyPath(dir))
	if err != nil {
		t.Fatalf("LoadPublicKey: %v", err)
	}
	id2, err := b.Issue(detRand{rand.New(rand.NewSource(44))}, "carol")
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCredential(pub, &id2.Credential, nil); err != nil {
		t.Fatalf("post-restart credential rejected: %v", err)
	}
	// The bundle file is a valid signed bundle naming bob.
	set, err := NewRevocationSet(pub, mustRead(t, BundlePath(dir)))
	if err != nil {
		t.Fatalf("bundle: %v", err)
	}
	if !set.Contains(id.NodeID) {
		t.Fatal("bundle does not list the revoked identity")
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
