package likir

import (
	"bytes"
	"crypto/ed25519"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"

	"dharma/internal/kadid"
)

// Credential revocation. The Likir certification service can withdraw
// an identity (compromised key, banned user); it publishes a signed
// revocation bundle that overlay nodes load and consult on admission.
// Revocation is checked on every message, not only on first contact, so
// a peer admitted before its revocation is cut off as soon as the node
// refreshes its bundle.

// ErrBadBundle is returned for revocation bundles that fail to parse or
// verify.
var ErrBadBundle = fmt.Errorf("likir: invalid revocation bundle")

// Revoke withdraws the credential bound to id. Subsequent bundles
// include it.
func (a *Authority) Revoke(id kadid.ID) {
	a.revokedMu.Lock()
	defer a.revokedMu.Unlock()
	if a.revoked == nil {
		a.revoked = make(map[kadid.ID]bool)
	}
	a.revoked[id] = true
}

// IsRevoked reports whether the authority has withdrawn id.
func (a *Authority) IsRevoked(id kadid.ID) bool {
	a.revokedMu.Lock()
	defer a.revokedMu.Unlock()
	return a.revoked[id]
}

// RevocationBundle returns the current signed revocation list for
// distribution to overlay nodes.
func (a *Authority) RevocationBundle() []byte {
	a.revokedMu.Lock()
	ids := make([]kadid.ID, 0, len(a.revoked))
	for id := range a.revoked {
		ids = append(ids, id)
	}
	a.revokedMu.Unlock()

	sort.Slice(ids, func(i, j int) bool { return kadid.Cmp(ids[i], ids[j]) < 0 })
	var payload bytes.Buffer
	binary.Write(&payload, binary.BigEndian, uint32(len(ids))) //nolint:errcheck
	for _, id := range ids {
		payload.Write(id[:])
	}
	sig := ed25519.Sign(a.priv, payload.Bytes())

	var out bytes.Buffer
	writeBlob(&out, payload.Bytes())
	writeBlob(&out, sig)
	return out.Bytes()
}

// RevocationSet is a verified, queryable revocation list. It is safe
// for concurrent use and can be refreshed in place as new bundles
// arrive.
type RevocationSet struct {
	mu  sync.RWMutex
	ids map[kadid.ID]bool
}

// NewRevocationSet verifies bundle against the CA key and builds the
// set. A nil/empty bundle yields an empty set.
func NewRevocationSet(caPub ed25519.PublicKey, bundle []byte) (*RevocationSet, error) {
	s := &RevocationSet{ids: make(map[kadid.ID]bool)}
	if len(bundle) == 0 {
		return s, nil
	}
	if err := s.Refresh(caPub, bundle); err != nil {
		return nil, err
	}
	return s, nil
}

// Refresh replaces the set's contents with a newer verified bundle.
func (s *RevocationSet) Refresh(caPub ed25519.PublicKey, bundle []byte) error {
	r := bytes.NewReader(bundle)
	payload, err := readBlob(r)
	if err != nil {
		return fmt.Errorf("%w: payload: %v", ErrBadBundle, err)
	}
	sig, err := readBlob(r)
	if err != nil {
		return fmt.Errorf("%w: signature: %v", ErrBadBundle, err)
	}
	if r.Len() != 0 {
		return fmt.Errorf("%w: trailing bytes", ErrBadBundle)
	}
	if !ed25519.Verify(caPub, payload, sig) {
		return fmt.Errorf("%w: signature check failed", ErrBadBundle)
	}

	pr := bytes.NewReader(payload)
	var n uint32
	if err := binary.Read(pr, binary.BigEndian, &n); err != nil {
		return fmt.Errorf("%w: count: %v", ErrBadBundle, err)
	}
	if int(n) > pr.Len()/kadid.Size {
		return fmt.Errorf("%w: count %d exceeds payload", ErrBadBundle, n)
	}
	ids := make(map[kadid.ID]bool, n)
	for i := uint32(0); i < n; i++ {
		var id kadid.ID
		if _, err := io.ReadFull(pr, id[:]); err != nil {
			return fmt.Errorf("%w: id %d: %v", ErrBadBundle, i, err)
		}
		ids[id] = true
	}
	s.mu.Lock()
	s.ids = ids
	s.mu.Unlock()
	return nil
}

// Contains reports whether id is revoked.
func (s *RevocationSet) Contains(id kadid.ID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ids[id]
}

// Len returns the number of revoked identities.
func (s *RevocationSet) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.ids)
}
