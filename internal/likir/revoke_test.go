package likir

import (
	"errors"
	"math/rand"
	"testing"
	"time"
)

func TestRevokeAndBundle(t *testing.T) {
	a := newTestAuthority(t, nil)
	alice, _ := a.Issue(detRand{rand.New(rand.NewSource(20))}, "alice")
	bob, _ := a.Issue(detRand{rand.New(rand.NewSource(21))}, "bob")

	if a.IsRevoked(alice.NodeID) {
		t.Fatal("fresh identity already revoked")
	}
	a.Revoke(alice.NodeID)
	if !a.IsRevoked(alice.NodeID) {
		t.Fatal("Revoke did not register")
	}

	set, err := NewRevocationSet(a.PublicKey(), a.RevocationBundle())
	if err != nil {
		t.Fatalf("NewRevocationSet: %v", err)
	}
	if !set.Contains(alice.NodeID) {
		t.Fatal("bundle missing revoked identity")
	}
	if set.Contains(bob.NodeID) {
		t.Fatal("bundle revoked an innocent identity")
	}
	if set.Len() != 1 {
		t.Fatalf("Len = %d, want 1", set.Len())
	}
}

func TestEmptyBundle(t *testing.T) {
	a := newTestAuthority(t, nil)
	set, err := NewRevocationSet(a.PublicKey(), nil)
	if err != nil {
		t.Fatalf("empty set: %v", err)
	}
	if set.Len() != 0 {
		t.Fatal("empty bundle produced entries")
	}
	// A bundle with zero revocations still verifies.
	set2, err := NewRevocationSet(a.PublicKey(), a.RevocationBundle())
	if err != nil || set2.Len() != 0 {
		t.Fatalf("zero-entry bundle: %v, len %d", err, set2.Len())
	}
}

func TestBundleTamperRejected(t *testing.T) {
	a := newTestAuthority(t, nil)
	id, _ := a.Issue(detRand{rand.New(rand.NewSource(22))}, "x")
	a.Revoke(id.NodeID)
	bundle := a.RevocationBundle()

	tampered := append([]byte(nil), bundle...)
	tampered[10] ^= 0xFF
	if _, err := NewRevocationSet(a.PublicKey(), tampered); !errors.Is(err, ErrBadBundle) {
		t.Fatalf("tampered bundle accepted: %v", err)
	}

	// Signed by the wrong authority.
	rogue, err := NewAuthority(detRand{rand.New(rand.NewSource(23))}, time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	rogue.Revoke(id.NodeID)
	if _, err := NewRevocationSet(a.PublicKey(), rogue.RevocationBundle()); !errors.Is(err, ErrBadBundle) {
		t.Fatalf("wrong-CA bundle accepted: %v", err)
	}

	if _, err := NewRevocationSet(a.PublicKey(), []byte{1, 2, 3}); !errors.Is(err, ErrBadBundle) {
		t.Fatalf("garbage bundle accepted: %v", err)
	}
}

func TestRevocationSetRefresh(t *testing.T) {
	a := newTestAuthority(t, nil)
	alice, _ := a.Issue(detRand{rand.New(rand.NewSource(24))}, "alice")

	set, err := NewRevocationSet(a.PublicKey(), a.RevocationBundle())
	if err != nil {
		t.Fatal(err)
	}
	if set.Contains(alice.NodeID) {
		t.Fatal("premature revocation")
	}
	a.Revoke(alice.NodeID)
	if err := set.Refresh(a.PublicKey(), a.RevocationBundle()); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if !set.Contains(alice.NodeID) {
		t.Fatal("refresh did not pick up new revocation")
	}
}
