package likir

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"dharma/internal/kadid"
)

// detRand is a deterministic io.Reader for key generation in tests.
type detRand struct{ r *rand.Rand }

func (d detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

func newTestAuthority(t *testing.T, now func() time.Time) *Authority {
	t.Helper()
	a, err := NewAuthority(detRand{rand.New(rand.NewSource(1))}, time.Hour, now)
	if err != nil {
		t.Fatalf("NewAuthority: %v", err)
	}
	return a
}

func TestIssueAndVerify(t *testing.T) {
	a := newTestAuthority(t, nil)
	id, err := a.Issue(detRand{rand.New(rand.NewSource(2))}, "alice")
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	if err := VerifyCredential(a.PublicKey(), &id.Credential, nil); err != nil {
		t.Fatalf("VerifyCredential: %v", err)
	}
	if id.NodeID != DeriveNodeID(id.Pub, "alice") {
		t.Fatal("node id not derived from (pub, name)")
	}
}

func TestVerifyRejectsTamperedName(t *testing.T) {
	a := newTestAuthority(t, nil)
	id, _ := a.Issue(detRand{rand.New(rand.NewSource(3))}, "alice")
	cred := id.Credential
	cred.Name = "mallory"
	if err := VerifyCredential(a.PublicKey(), &cred, nil); !errors.Is(err, ErrBadCredential) {
		t.Fatalf("want ErrBadCredential, got %v", err)
	}
}

func TestVerifyRejectsTamperedNodeID(t *testing.T) {
	a := newTestAuthority(t, nil)
	id, _ := a.Issue(detRand{rand.New(rand.NewSource(4))}, "alice")
	cred := id.Credential
	cred.NodeID[0] ^= 0xFF // try to move to a chosen key-space position
	if err := VerifyCredential(a.PublicKey(), &cred, nil); !errors.Is(err, ErrBadCredential) {
		t.Fatalf("want ErrBadCredential, got %v", err)
	}
}

func TestVerifyRejectsWrongCA(t *testing.T) {
	a := newTestAuthority(t, nil)
	rogue, err := NewAuthority(detRand{rand.New(rand.NewSource(5))}, time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := rogue.Issue(detRand{rand.New(rand.NewSource(6))}, "alice")
	if err := VerifyCredential(a.PublicKey(), &id.Credential, nil); !errors.Is(err, ErrBadCredential) {
		t.Fatalf("want ErrBadCredential, got %v", err)
	}
}

func TestVerifyRejectsExpired(t *testing.T) {
	issued := time.Unix(1000, 0)
	a := newTestAuthority(t, func() time.Time { return issued })
	id, _ := a.Issue(detRand{rand.New(rand.NewSource(7))}, "alice")

	late := func() time.Time { return issued.Add(2 * time.Hour) }
	if err := VerifyCredential(a.PublicKey(), &id.Credential, late); !errors.Is(err, ErrExpired) {
		t.Fatalf("want ErrExpired, got %v", err)
	}
	early := func() time.Time { return issued.Add(-time.Minute) }
	if err := VerifyCredential(a.PublicKey(), &id.Credential, early); !errors.Is(err, ErrExpired) {
		t.Fatalf("before issue: want ErrExpired, got %v", err)
	}
	within := func() time.Time { return issued.Add(time.Minute) }
	if err := VerifyCredential(a.PublicKey(), &id.Credential, within); err != nil {
		t.Fatalf("within validity: %v", err)
	}
}

func TestCredentialMarshalRoundTrip(t *testing.T) {
	a := newTestAuthority(t, nil)
	id, _ := a.Issue(detRand{rand.New(rand.NewSource(8))}, "bob")
	got, err := UnmarshalCredential(id.Credential.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalCredential: %v", err)
	}
	if got.Name != "bob" || got.NodeID != id.NodeID ||
		got.IssuedAt != id.IssuedAt || got.ExpiresAt != id.ExpiresAt {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if err := VerifyCredential(a.PublicKey(), got, nil); err != nil {
		t.Fatalf("verify decoded credential: %v", err)
	}
}

func TestUnmarshalCredentialRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalCredential(nil); err == nil {
		t.Fatal("accepted empty input")
	}
	if _, err := UnmarshalCredential([]byte{0xFF, 0x01, 0x02}); err == nil {
		t.Fatal("accepted garbage")
	}
	a := newTestAuthority(t, nil)
	id, _ := a.Issue(detRand{rand.New(rand.NewSource(9))}, "x")
	b := id.Credential.Marshal()
	if _, err := UnmarshalCredential(append(b, 1)); err == nil {
		t.Fatal("accepted trailing bytes")
	}
	if _, err := UnmarshalCredential(b[:len(b)-3]); err == nil {
		t.Fatal("accepted truncated credential")
	}
}

func TestSignAndVerifyEntry(t *testing.T) {
	a := newTestAuthority(t, nil)
	id, _ := a.Issue(detRand{rand.New(rand.NewSource(10))}, "alice")
	key := kadid.HashString("rock|3")
	author, sig := id.SignEntry(key, "pop", []byte("d"))
	if err := VerifyEntry(key, "pop", []byte("d"), author, sig); err != nil {
		t.Fatalf("VerifyEntry: %v", err)
	}
}

func TestVerifyEntryRejectsTampering(t *testing.T) {
	a := newTestAuthority(t, nil)
	id, _ := a.Issue(detRand{rand.New(rand.NewSource(11))}, "alice")
	key := kadid.HashString("rock|3")

	author, sig := id.SignEntry(key, "pop", []byte("d"))

	if err := VerifyEntry(key, "metal", []byte("d"), author, sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered field: want ErrBadSignature, got %v", err)
	}
	if err := VerifyEntry(key, "pop", []byte("evil"), author, sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered data: want ErrBadSignature, got %v", err)
	}

	// Signed for a different block key must not verify for this one.
	otherKey := kadid.HashString("pop|3")
	if err := VerifyEntry(otherKey, "pop", []byte("d"), author, sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("replayed under other key: want ErrBadSignature, got %v", err)
	}

	if err := VerifyEntry(key, "pop", []byte("d"), author[:16], sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("short author key: want ErrBadSignature, got %v", err)
	}
}

func TestVerifyEntryAcceptsUnsigned(t *testing.T) {
	// No author at all is acceptable: the overlay may run open, and
	// count-only entries are unattributable aggregates by design (the
	// signature covers key, field and data — never the count).
	if err := VerifyEntry(kadid.HashString("k"), "pop", nil, nil, nil); err != nil {
		t.Fatalf("unsigned entry must pass in open mode, got %v", err)
	}
}

func TestDistinctIdentitiesDistinctIDs(t *testing.T) {
	a := newTestAuthority(t, nil)
	seen := map[kadid.ID]bool{}
	src := detRand{rand.New(rand.NewSource(13))}
	for i := 0; i < 50; i++ {
		id, err := a.Issue(src, "user")
		if err != nil {
			t.Fatal(err)
		}
		if seen[id.NodeID] {
			t.Fatal("two identities collided on a node id")
		}
		seen[id.NodeID] = true
	}
}
