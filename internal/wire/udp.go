package wire

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dharma/internal/admission"
	"dharma/internal/obs"
	"dharma/internal/simnet"
)

// ErrBusy is returned by Call when the remote peer answered with a
// KindBusy admission rejection (and by a local admission gate). It is
// the same sentinel across transports: errors.Is(err, wire.ErrBusy)
// works whether the RPC travelled over simnet or UDP. Busy peers are
// alive — back off and retry, do not evict them from routing state.
var ErrBusy = admission.ErrBusy

// UDP framing: 1-byte frame kind + 8-byte request id + payload.
const (
	frameRequest  = 0x01
	frameResponse = 0x02
	frameHeader   = 1 + 8
	maxDatagram   = 64 << 10
)

// DefaultUDPTimeout is how long a Call waits for a response before it
// reports simnet.ErrTimeout.
const DefaultUDPTimeout = 2 * time.Second

// UDPTransport carries overlay RPCs over real UDP datagrams. It
// implements the same Transport interface as the in-memory simnet, so
// the Kademlia node code is identical in simulation and deployment.
type UDPTransport struct {
	conn    *net.UDPConn
	handler simnet.Handler
	timeout time.Duration
	ctrl    *admission.Controller

	nextID  atomic.Uint64
	mu      sync.Mutex
	pending map[uint64]chan []byte

	busyServed atomic.Int64 // inbound requests answered with KindBusy

	// metrics is set once by Instrument; the read loop races it, hence
	// the atomic pointer. nil = un-instrumented (the default).
	metrics atomic.Pointer[udpMetrics]

	baseCtx    context.Context // handler context; ends when Close begins
	baseCancel context.CancelFunc
	closeOnce  sync.Once
	closed     chan struct{}
	wg         sync.WaitGroup
}

// ListenUDP binds a UDP socket on bind (e.g. "127.0.0.1:0") and serves
// inbound RPCs with h under the default admission gate (bounded work
// queue, no per-peer rate limit). A zero timeout selects
// DefaultUDPTimeout.
func ListenUDP(bind string, h simnet.Handler, timeout time.Duration) (*UDPTransport, error) {
	return ListenUDPAdmitted(bind, h, timeout, admission.Config{})
}

// ListenUDPAdmitted is ListenUDP with an explicit admission
// configuration, for deployments that tune QueueDepth or enable
// per-peer rate limits.
func ListenUDPAdmitted(bind string, h simnet.Handler, timeout time.Duration, adm admission.Config) (*UDPTransport, error) {
	addr, err := net.ResolveUDPAddr("udp", bind)
	if err != nil {
		return nil, fmt.Errorf("wire: resolve %q: %w", bind, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen: %w", err)
	}
	if timeout <= 0 {
		timeout = DefaultUDPTimeout
	}
	baseCtx, baseCancel := context.WithCancel(context.Background())
	t := &UDPTransport{
		conn:       conn,
		handler:    h,
		timeout:    timeout,
		ctrl:       admission.New(adm),
		pending:    make(map[uint64]chan []byte),
		baseCtx:    baseCtx,
		baseCancel: baseCancel,
		closed:     make(chan struct{}),
	}
	t.wg.Add(1)
	go t.readLoop()
	return t, nil
}

// AdmissionStats reports this transport's admission accounting: how
// many inbound requests were admitted vs rejected busy.
func (t *UDPTransport) AdmissionStats() admission.Stats { return t.ctrl.Stats() }

// udpMetrics holds the transport's datagram/byte instruments. All
// fields are nil-safe obs counters, so the record sites stay branchless
// once the pointer test passes.
type udpMetrics struct {
	datagramsIn  *obs.Counter
	datagramsOut *obs.Counter
	bytesIn      *obs.Counter
	bytesOut     *obs.Counter
}

// Instrument registers the transport's instruments on reg: datagram
// and byte counters for both directions, plus the admission gate's
// accounting as scrape-time funcs. Safe to call while the transport is
// serving; a nil reg is a no-op.
func (t *UDPTransport) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	t.metrics.Store(&udpMetrics{
		datagramsIn: reg.Counter("dharma_udp_datagrams_read_total",
			"UDP datagrams read off the socket (requests and responses)."),
		datagramsOut: reg.Counter("dharma_udp_datagrams_written_total",
			"UDP datagrams written to the socket (requests and replies)."),
		bytesIn: reg.Counter("dharma_udp_read_bytes_total",
			"Bytes read off the UDP socket, framing included."),
		bytesOut: reg.Counter("dharma_udp_written_bytes_total",
			"Bytes written to the UDP socket, framing included."),
	})
	reg.CounterFunc("dharma_admission_admitted_total",
		"Inbound requests that passed the admission gate.",
		func() int64 { return t.ctrl.Stats().Admitted })
	reg.CounterFunc("dharma_admission_rejected_queue_total",
		"Inbound requests rejected by the full work queue.",
		func() int64 { return t.ctrl.Stats().RejectedQueue })
	reg.CounterFunc("dharma_admission_rejected_rate_total",
		"Inbound requests rejected by a peer's exhausted token bucket.",
		func() int64 { return t.ctrl.Stats().RejectedRate })
	reg.GaugeFunc("dharma_admission_in_flight",
		"Admitted requests currently in their handler.",
		func() int64 { return t.ctrl.Stats().InFlight })
	reg.CounterFunc("dharma_udp_busy_served_total",
		"Inbound requests answered with BUSY.", t.busyServed.Load)
}

// BusyServed is the number of inbound requests answered with KindBusy.
func (t *UDPTransport) BusyServed() int64 { return t.busyServed.Load() }

// Addr implements simnet.Transport; the address is the bound UDP
// endpoint, so it can be handed to peers as a contact address.
func (t *UDPTransport) Addr() simnet.Addr {
	return simnet.Addr(t.conn.LocalAddr().String())
}

// Call implements simnet.Transport. The wait for the response is
// aborted as soon as ctx ends — a caller with a 100ms deadline is not
// held hostage by the transport's own retry timeout.
func (t *UDPTransport) Call(ctx context.Context, to simnet.Addr, payload []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	select {
	case <-t.closed:
		return nil, simnet.ErrClosed
	default:
	}
	dst, err := net.ResolveUDPAddr("udp", string(to))
	if err != nil {
		return nil, fmt.Errorf("wire: resolve %q: %w", to, err)
	}
	if len(payload)+frameHeader > maxDatagram {
		return nil, fmt.Errorf("%w: %d bytes", simnet.ErrTooLarge, len(payload))
	}

	id := t.nextID.Add(1)
	ch := make(chan []byte, 1)
	t.mu.Lock()
	t.pending[id] = ch
	t.mu.Unlock()
	defer func() {
		t.mu.Lock()
		delete(t.pending, id)
		t.mu.Unlock()
	}()

	frame := make([]byte, frameHeader+len(payload))
	frame[0] = frameRequest
	binary.BigEndian.PutUint64(frame[1:9], id)
	copy(frame[frameHeader:], payload)
	if _, err := t.conn.WriteToUDP(frame, dst); err != nil {
		return nil, fmt.Errorf("wire: send: %w", err)
	}
	if m := t.metrics.Load(); m != nil {
		m.datagramsOut.Inc()
		m.bytesOut.Add(int64(len(frame)))
	}

	timer := time.NewTimer(t.timeout)
	defer timer.Stop()
	select {
	case resp := <-ch:
		return resp, nil
	case <-ctx.Done():
		// Abort the in-flight waiter: the pending entry is deleted by the
		// deferred cleanup, so a late response is dropped on the floor.
		return nil, ctx.Err()
	case <-timer.C:
		return nil, simnet.ErrTimeout
	case <-t.closed:
		return nil, simnet.ErrClosed
	}
}

// Close implements simnet.Transport. It stops the read loop, cancels
// the handler context so ctx-aware handlers unstick, and waits for
// in-flight handlers to finish.
func (t *UDPTransport) Close() error {
	var err error
	t.closeOnce.Do(func() {
		close(t.closed)
		t.baseCancel()
		err = t.conn.Close()
		t.wg.Wait()
	})
	return err
}

func (t *UDPTransport) readLoop() {
	defer t.wg.Done()
	buf := make([]byte, maxDatagram)
	for {
		n, from, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-t.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue // transient read error: drop the datagram
		}
		if m := t.metrics.Load(); m != nil {
			m.datagramsIn.Inc()
			m.bytesIn.Add(int64(n))
		}
		if n < frameHeader {
			continue
		}
		kind := buf[0]
		id := binary.BigEndian.Uint64(buf[1:9])
		payload := append([]byte(nil), buf[frameHeader:n]...)

		switch kind {
		case frameRequest:
			// Admission before the goroutine spawn: past QueueDepth the
			// transport answers busy inline instead of growing the handler
			// pool — the read loop never blocks and never queues unboundedly.
			release, aerr := t.ctrl.Admit(from.String())
			if aerr != nil {
				t.busyServed.Add(1)
				t.reply(from, id, busyResponse())
				continue
			}
			t.wg.Add(1)
			go t.serve(from, id, payload, release)
		case frameResponse:
			t.mu.Lock()
			ch, ok := t.pending[id]
			t.mu.Unlock()
			if ok {
				select {
				case ch <- payload:
				default: // duplicate response; first one wins
				}
			}
		}
	}
}

func (t *UDPTransport) serve(from *net.UDPAddr, id uint64, payload []byte, release func()) {
	defer t.wg.Done()
	defer release()
	resp, err := t.handler.HandleRPC(t.baseCtx, simnet.Addr(from.String()), payload)
	if err != nil {
		return // silence, as over real UDP: the caller times out
	}
	t.reply(from, id, resp)
}

func (t *UDPTransport) reply(from *net.UDPAddr, id uint64, resp []byte) {
	frame := make([]byte, frameHeader+len(resp))
	frame[0] = frameResponse
	binary.BigEndian.PutUint64(frame[1:9], id)
	copy(frame[frameHeader:], resp)
	t.conn.WriteToUDP(frame, from) //nolint:errcheck // best-effort reply
	if m := t.metrics.Load(); m != nil {
		m.datagramsOut.Inc()
		m.bytesOut.Add(int64(len(frame)))
	}
}

// busyFrame is the encoded KindBusy message sent on admission
// rejection. Encoding is cheap but allocation-per-reject is not free
// under a storm, so build it once.
var busyFrame = Encode(&Message{Kind: KindBusy})

func busyResponse() []byte { return busyFrame }

var _ simnet.Transport = (*UDPTransport)(nil)
