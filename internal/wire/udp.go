package wire

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dharma/internal/admission"
	"dharma/internal/obs"
	"dharma/internal/session"
	"dharma/internal/simnet"
)

// ErrBusy is returned by Call when the remote peer answered with a
// KindBusy admission rejection (and by a local admission gate). It is
// the same sentinel across transports: errors.Is(err, wire.ErrBusy)
// works whether the RPC travelled over simnet or UDP. Busy peers are
// alive — back off and retry, do not evict them from routing state.
var ErrBusy = admission.ErrBusy

// ErrUnauthorized is the typed rejection of the identity layer: the
// sender (or the entries it tried to write) failed Likir verification.
// It is NOT an eviction signal — the rejecting peer is healthy; the
// rejected party is the caller.
var ErrUnauthorized = errors.New("wire: unauthorized")

// UDP framing: 1-byte frame kind + 8-byte request id + payload.
// Secure frames wrap the same payloads in a session seal
// ([sid ‖ seq ‖ tag ‖ payload]); hello frames carry the session
// handshake and exist only at the transport layer.
const (
	frameRequest        = 0x01
	frameResponse       = 0x02
	frameHello          = 0x03
	frameHelloReply     = 0x04
	frameSecureRequest  = 0x05
	frameSecureResponse = 0x06
	frameHeader         = 1 + 8
	maxDatagram         = 64 << 10
)

// DefaultUDPTimeout is how long a Call waits for a response before it
// reports simnet.ErrTimeout.
const DefaultUDPTimeout = 2 * time.Second

// UDPTransport carries overlay RPCs over real UDP datagrams. It
// implements the same Transport interface as the in-memory simnet, so
// the Kademlia node code is identical in simulation and deployment.
type UDPTransport struct {
	conn    *net.UDPConn
	handler simnet.Handler
	timeout time.Duration
	ctrl    *admission.Controller

	// sessions enables the authenticated-session layer: outbound calls
	// are sealed under a per-peer session (handshaking on first use) and
	// inbound sealed requests are verified and served with the peer's
	// identity on the handler context. nil = open transport.
	sessions    *session.Manager
	requireAuth bool // reject plain (unsealed) inbound requests

	hsMu       sync.Mutex
	hsInflight map[string]chan struct{} // singleflight per dial addr

	nextID  atomic.Uint64
	mu      sync.Mutex
	pending map[uint64]chan frameMsg

	busyServed atomic.Int64 // inbound requests answered with KindBusy
	authRej    atomic.Int64 // inbound requests rejected unauthenticated

	// metrics is set once by Instrument; the read loop races it, hence
	// the atomic pointer. nil = un-instrumented (the default).
	metrics atomic.Pointer[udpMetrics]

	baseCtx    context.Context // handler context; ends when Close begins
	baseCancel context.CancelFunc
	closeOnce  sync.Once
	closed     chan struct{}
	wg         sync.WaitGroup
}

// ListenUDP binds a UDP socket on bind (e.g. "127.0.0.1:0") and serves
// inbound RPCs with h under the default admission gate (bounded work
// queue, no per-peer rate limit). A zero timeout selects
// DefaultUDPTimeout.
func ListenUDP(bind string, h simnet.Handler, timeout time.Duration) (*UDPTransport, error) {
	return ListenUDPAdmitted(bind, h, timeout, admission.Config{})
}

// ListenUDPAdmitted is ListenUDP with an explicit admission
// configuration, for deployments that tune QueueDepth or enable
// per-peer rate limits.
func ListenUDPAdmitted(bind string, h simnet.Handler, timeout time.Duration, adm admission.Config) (*UDPTransport, error) {
	return ListenUDPOptions(bind, h, UDPOptions{Timeout: timeout, Admission: adm})
}

// UDPOptions configures a UDP transport beyond the basics.
type UDPOptions struct {
	// Timeout is the per-call response wait; 0 = DefaultUDPTimeout.
	Timeout time.Duration
	// Admission configures the inbound admission gate.
	Admission admission.Config
	// Sessions enables the authenticated-session layer. Outbound calls
	// handshake on first contact with a peer and seal every datagram;
	// inbound sealed requests are verified against the session cache.
	Sessions *session.Manager
	// RequireAuth (with Sessions set) rejects plain inbound requests
	// with KindUnauthorized instead of serving them. Leave false during
	// a rolling upgrade, set true once the fleet speaks sessions.
	RequireAuth bool
}

// ListenUDPOptions is the fully-configurable constructor every other
// Listen variant delegates to.
func ListenUDPOptions(bind string, h simnet.Handler, o UDPOptions) (*UDPTransport, error) {
	addr, err := net.ResolveUDPAddr("udp", bind)
	if err != nil {
		return nil, fmt.Errorf("wire: resolve %q: %w", bind, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen: %w", err)
	}
	timeout := o.Timeout
	if timeout <= 0 {
		timeout = DefaultUDPTimeout
	}
	baseCtx, baseCancel := context.WithCancel(context.Background())
	t := &UDPTransport{
		conn:        conn,
		handler:     h,
		timeout:     timeout,
		ctrl:        admission.New(o.Admission),
		sessions:    o.Sessions,
		requireAuth: o.RequireAuth && o.Sessions != nil,
		hsInflight:  make(map[string]chan struct{}),
		pending:     make(map[uint64]chan frameMsg),
		baseCtx:     baseCtx,
		baseCancel:  baseCancel,
		closed:      make(chan struct{}),
	}
	t.wg.Add(1)
	go t.readLoop()
	return t, nil
}

// frameMsg is one routed response frame: the frame kind decides whether
// the payload is sealed.
type frameMsg struct {
	kind    byte
	payload []byte
}

// AdmissionStats reports this transport's admission accounting: how
// many inbound requests were admitted vs rejected busy.
func (t *UDPTransport) AdmissionStats() admission.Stats { return t.ctrl.Stats() }

// udpMetrics holds the transport's datagram/byte instruments. All
// fields are nil-safe obs counters, so the record sites stay branchless
// once the pointer test passes.
type udpMetrics struct {
	datagramsIn  *obs.Counter
	datagramsOut *obs.Counter
	bytesIn      *obs.Counter
	bytesOut     *obs.Counter
}

// Instrument registers the transport's instruments on reg: datagram
// and byte counters for both directions, plus the admission gate's
// accounting as scrape-time funcs. Safe to call while the transport is
// serving; a nil reg is a no-op.
func (t *UDPTransport) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	t.metrics.Store(&udpMetrics{
		datagramsIn: reg.Counter("dharma_udp_datagrams_read_total",
			"UDP datagrams read off the socket (requests and responses)."),
		datagramsOut: reg.Counter("dharma_udp_datagrams_written_total",
			"UDP datagrams written to the socket (requests and replies)."),
		bytesIn: reg.Counter("dharma_udp_read_bytes_total",
			"Bytes read off the UDP socket, framing included."),
		bytesOut: reg.Counter("dharma_udp_written_bytes_total",
			"Bytes written to the UDP socket, framing included."),
	})
	reg.CounterFunc("dharma_admission_admitted_total",
		"Inbound requests that passed the admission gate.",
		func() int64 { return t.ctrl.Stats().Admitted })
	reg.CounterFunc("dharma_admission_rejected_queue_total",
		"Inbound requests rejected by the full work queue.",
		func() int64 { return t.ctrl.Stats().RejectedQueue })
	reg.CounterFunc("dharma_admission_rejected_rate_total",
		"Inbound requests rejected by a peer's exhausted token bucket.",
		func() int64 { return t.ctrl.Stats().RejectedRate })
	reg.GaugeFunc("dharma_admission_in_flight",
		"Admitted requests currently in their handler.",
		func() int64 { return t.ctrl.Stats().InFlight })
	reg.CounterFunc("dharma_udp_busy_served_total",
		"Inbound requests answered with BUSY.", t.busyServed.Load)
	reg.CounterFunc("dharma_udp_unauthenticated_rejected_total",
		"Inbound frames rejected by the transport's session layer (failed handshakes and plain requests under require-auth).",
		t.authRej.Load)
	if t.sessions != nil {
		t.sessions.Instrument(reg)
	}
}

// AuthRejected is the number of inbound frames the session layer
// rejected: failed handshakes plus plain requests under require-auth.
func (t *UDPTransport) AuthRejected() int64 { return t.authRej.Load() }

// Sessions exposes the transport's session manager (nil when the
// transport runs open).
func (t *UDPTransport) Sessions() *session.Manager { return t.sessions }

// BusyServed is the number of inbound requests answered with KindBusy.
func (t *UDPTransport) BusyServed() int64 { return t.busyServed.Load() }

// Addr implements simnet.Transport; the address is the bound UDP
// endpoint, so it can be handed to peers as a contact address.
func (t *UDPTransport) Addr() simnet.Addr {
	return simnet.Addr(t.conn.LocalAddr().String())
}

// Call implements simnet.Transport. The wait for the response is
// aborted as soon as ctx ends — a caller with a 100ms deadline is not
// held hostage by the transport's own retry timeout.
//
// With sessions enabled the payload is sealed under the peer's session
// (handshaking on first contact). If the peer no longer recognises the
// session — it restarted or evicted us — it answers with a plain
// UNAUTHORIZED control frame; Call re-handshakes and retries once.
func (t *UDPTransport) Call(ctx context.Context, to simnet.Addr, payload []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	select {
	case <-t.closed:
		return nil, simnet.ErrClosed
	default:
	}
	dst, err := net.ResolveUDPAddr("udp", string(to))
	if err != nil {
		return nil, fmt.Errorf("wire: resolve %q: %w", to, err)
	}
	if len(payload)+frameHeader+session.Overhead > maxDatagram {
		return nil, fmt.Errorf("%w: %d bytes", simnet.ErrTooLarge, len(payload))
	}

	if t.sessions == nil {
		return t.exchangePlain(ctx, dst, payload)
	}
	resp, err := t.exchangeSealed(ctx, string(to), dst, payload)
	if errors.Is(err, errSessionStale) {
		// The peer forgot our session (restart, eviction). Handshake
		// afresh and retry once; a second stale answer is a real error.
		t.sessions.DropPeer(string(to))
		resp, err = t.exchangeSealed(ctx, string(to), dst, payload)
		if errors.Is(err, errSessionStale) {
			err = fmt.Errorf("%w: peer rejects session after re-handshake", ErrUnauthorized)
		}
	}
	return resp, err
}

// errSessionStale is the internal signal that the remote answered a
// sealed request with a plain UNAUTHORIZED control frame: it does not
// hold our session (anymore) and we should re-handshake.
var errSessionStale = errors.New("wire: stale session")

// exchangePlain is the open-transport request/response exchange.
func (t *UDPTransport) exchangePlain(ctx context.Context, dst *net.UDPAddr, payload []byte) ([]byte, error) {
	id, ch, cleanup := t.newPending()
	defer cleanup()

	frame := make([]byte, frameHeader+len(payload))
	frame[0] = frameRequest
	binary.BigEndian.PutUint64(frame[1:9], id)
	copy(frame[frameHeader:], payload)
	if err := t.send(frame, dst); err != nil {
		return nil, err
	}
	fm, err := t.await(ctx, ch)
	if err != nil {
		return nil, err
	}
	return fm.payload, nil
}

// exchangeSealed seals payload under the session with addr (dialing one
// if needed) and verifies the sealed response.
func (t *UDPTransport) exchangeSealed(ctx context.Context, addr string, dst *net.UDPAddr, payload []byte) ([]byte, error) {
	s, err := t.dialSession(ctx, addr, dst)
	if err != nil {
		return nil, err
	}
	id, ch, cleanup := t.newPending()
	defer cleanup()

	frame := make([]byte, frameHeader, frameHeader+session.Overhead+len(payload))
	frame[0] = frameSecureRequest
	binary.BigEndian.PutUint64(frame[1:9], id)
	frame = s.Seal(frame, frameSecureRequest, id, payload)
	if err := t.send(frame, dst); err != nil {
		return nil, err
	}

	// Responses may race with forged plain frames; keep reading until a
	// frame authenticates (or is an acceptable control answer).
	timer := time.NewTimer(t.timeout)
	defer timer.Stop()
	for {
		fm, err := t.awaitTimer(ctx, ch, timer)
		if err != nil {
			return nil, err
		}
		switch fm.kind {
		case frameSecureResponse:
			inner, err := s.Open(frameSecureResponse, id, fm.payload)
			if err != nil {
				continue // forged or corrupted; the real answer may follow
			}
			return inner, nil
		case frameResponse:
			// A plain response to a sealed request is only meaningful as a
			// transport control answer: BUSY from the admission gate (which
			// runs before session lookup) or UNAUTHORIZED from a peer that
			// does not hold our session. Anything else is unauthenticated
			// and ignored.
			switch peekKind(fm.payload) {
			case KindBusy:
				return fm.payload, nil
			case KindUnauthorized:
				return nil, errSessionStale
			}
		}
	}
}

// peekKind reads the message kind of an encoded frame without a full
// decode (layout: version byte, then kind byte).
func peekKind(payload []byte) Kind {
	if len(payload) < 2 {
		return 0
	}
	return Kind(payload[1])
}

// dialSession returns the cached live session for addr or performs the
// two-message handshake. Concurrent dials to the same peer are
// collapsed into one handshake.
func (t *UDPTransport) dialSession(ctx context.Context, addr string, dst *net.UDPAddr) (*session.Session, error) {
	for {
		if s, ok := t.sessions.Peer(addr); ok {
			return s, nil
		}
		// Singleflight: the first caller handshakes, the rest wait.
		t.hsMu.Lock()
		wait, inflight := t.hsInflight[addr]
		if !inflight {
			wait = make(chan struct{})
			t.hsInflight[addr] = wait
		}
		t.hsMu.Unlock()
		if inflight {
			select {
			case <-wait:
				continue // re-check the cache; handshake may have failed
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-t.closed:
				return nil, simnet.ErrClosed
			}
		}
		s, err := t.handshake(ctx, addr, dst)
		t.hsMu.Lock()
		delete(t.hsInflight, addr)
		t.hsMu.Unlock()
		close(wait)
		return s, err
	}
}

// handshake runs one HELLO / HELLO_REPLY exchange with the peer.
func (t *UDPTransport) handshake(ctx context.Context, addr string, dst *net.UDPAddr) (*session.Session, error) {
	hs, err := t.sessions.NewHandshake(addr)
	if err != nil {
		return nil, err
	}
	id, ch, cleanup := t.newPending()
	defer cleanup()

	hello := hs.Payload()
	frame := make([]byte, frameHeader+len(hello))
	frame[0] = frameHello
	binary.BigEndian.PutUint64(frame[1:9], id)
	copy(frame[frameHeader:], hello)
	if err := t.send(frame, dst); err != nil {
		return nil, err
	}
	timer := time.NewTimer(t.timeout)
	defer timer.Stop()
	for {
		fm, err := t.awaitTimer(ctx, ch, timer)
		if err != nil {
			return nil, err
		}
		if fm.kind != frameHelloReply {
			continue // stray frame under a recycled id; keep waiting
		}
		return hs.Finish(fm.payload)
	}
}

// newPending registers a response channel under a fresh request id.
func (t *UDPTransport) newPending() (uint64, chan frameMsg, func()) {
	id := t.nextID.Add(1)
	ch := make(chan frameMsg, 4)
	t.mu.Lock()
	t.pending[id] = ch
	t.mu.Unlock()
	return id, ch, func() {
		t.mu.Lock()
		delete(t.pending, id)
		t.mu.Unlock()
	}
}

// send writes one framed datagram and records transport metrics.
func (t *UDPTransport) send(frame []byte, dst *net.UDPAddr) error {
	if _, err := t.conn.WriteToUDP(frame, dst); err != nil {
		return fmt.Errorf("wire: send: %w", err)
	}
	if m := t.metrics.Load(); m != nil {
		m.datagramsOut.Inc()
		m.bytesOut.Add(int64(len(frame)))
	}
	return nil
}

// await waits for one routed frame under the transport's own timeout.
func (t *UDPTransport) await(ctx context.Context, ch chan frameMsg) (frameMsg, error) {
	timer := time.NewTimer(t.timeout)
	defer timer.Stop()
	return t.awaitTimer(ctx, ch, timer)
}

func (t *UDPTransport) awaitTimer(ctx context.Context, ch chan frameMsg, timer *time.Timer) (frameMsg, error) {
	select {
	case fm := <-ch:
		return fm, nil
	case <-ctx.Done():
		// Abort the in-flight waiter: the pending entry is deleted by the
		// caller's cleanup, so a late response is dropped on the floor.
		return frameMsg{}, ctx.Err()
	case <-timer.C:
		return frameMsg{}, simnet.ErrTimeout
	case <-t.closed:
		return frameMsg{}, simnet.ErrClosed
	}
}

// Close implements simnet.Transport. It stops the read loop, cancels
// the handler context so ctx-aware handlers unstick, and waits for
// in-flight handlers to finish.
func (t *UDPTransport) Close() error {
	var err error
	t.closeOnce.Do(func() {
		close(t.closed)
		t.baseCancel()
		err = t.conn.Close()
		t.wg.Wait()
	})
	return err
}

func (t *UDPTransport) readLoop() {
	defer t.wg.Done()
	buf := make([]byte, maxDatagram)
	for {
		n, from, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-t.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue // transient read error: drop the datagram
		}
		if m := t.metrics.Load(); m != nil {
			m.datagramsIn.Inc()
			m.bytesIn.Add(int64(n))
		}
		if n < frameHeader {
			continue
		}
		kind := buf[0]
		id := binary.BigEndian.Uint64(buf[1:9])
		payload := append([]byte(nil), buf[frameHeader:n]...)

		switch kind {
		case frameRequest, frameSecureRequest, frameHello:
			// Admission before the goroutine spawn: past QueueDepth the
			// transport answers busy inline instead of growing the handler
			// pool — the read loop never blocks and never queues unboundedly.
			// Hellos pass the same gate so a handshake flood cannot spawn
			// unbounded signature verifications.
			release, aerr := t.ctrl.Admit(from.String())
			if aerr != nil {
				t.busyServed.Add(1)
				t.reply(frameResponse, from, id, busyResponse())
				continue
			}
			t.wg.Add(1)
			go t.serve(kind, from, id, payload, release)
		case frameResponse, frameHelloReply, frameSecureResponse:
			t.mu.Lock()
			ch, ok := t.pending[id]
			t.mu.Unlock()
			if ok {
				select {
				case ch <- frameMsg{kind: kind, payload: payload}:
				default: // channel full; the waiter has enough to chew on
				}
			}
		}
	}
}

func (t *UDPTransport) serve(kind byte, from *net.UDPAddr, id uint64, payload []byte, release func()) {
	defer t.wg.Done()
	defer release()
	switch kind {
	case frameHello:
		if t.sessions == nil {
			return // no session layer: hellos are noise
		}
		reply, err := t.sessions.Accept(payload)
		if err != nil {
			t.authRej.Add(1)
			return // reject silently: the initiator failed authentication
		}
		t.reply(frameHelloReply, from, id, reply)
		return
	case frameSecureRequest:
		if t.sessions == nil {
			return
		}
		inner, s, err := t.sessions.OpenRequest(frameSecureRequest, id, payload)
		if err != nil {
			if errors.Is(err, session.ErrUnknownSession) {
				// Tell the caller to re-handshake: we restarted or evicted
				// it. This control answer is unsealed by necessity (no
				// session to seal under); the dial side treats it only as a
				// re-handshake hint, never as an RPC result.
				t.reply(frameResponse, from, id, staleSessionResponse())
			}
			return // bad MAC / replay: silence, as for any forged datagram
		}
		ctx := session.WithPeer(t.baseCtx, s.Peer())
		resp, err := t.handler.HandleRPC(ctx, simnet.Addr(from.String()), inner)
		if err != nil {
			return
		}
		sealed := make([]byte, 0, session.Overhead+len(resp))
		t.reply(frameSecureResponse, from, id, s.Seal(sealed, frameSecureResponse, id, resp))
		return
	}
	// Plain request.
	if t.requireAuth {
		t.authRej.Add(1)
		t.reply(frameResponse, from, id, unauthorizedResponse())
		return
	}
	resp, err := t.handler.HandleRPC(t.baseCtx, simnet.Addr(from.String()), payload)
	if err != nil {
		return // silence, as over real UDP: the caller times out
	}
	t.reply(frameResponse, from, id, resp)
}

func (t *UDPTransport) reply(kind byte, from *net.UDPAddr, id uint64, resp []byte) {
	frame := make([]byte, frameHeader+len(resp))
	frame[0] = kind
	binary.BigEndian.PutUint64(frame[1:9], id)
	copy(frame[frameHeader:], resp)
	t.conn.WriteToUDP(frame, from) //nolint:errcheck // best-effort reply
	if m := t.metrics.Load(); m != nil {
		m.datagramsOut.Inc()
		m.bytesOut.Add(int64(len(frame)))
	}
}

// Prebuilt control responses: encoding is cheap but an allocation per
// rejection is not free under a storm.
var (
	busyFrame         = Encode(&Message{Kind: KindBusy})
	staleSessionFrame = Encode(&Message{Kind: KindUnauthorized, Err: "unknown session; re-handshake"})
	unauthFrame       = Encode(&Message{Kind: KindUnauthorized, Err: "authenticated session required"})
)

func busyResponse() []byte         { return busyFrame }
func staleSessionResponse() []byte { return staleSessionFrame }
func unauthorizedResponse() []byte { return unauthFrame }

var _ simnet.Transport = (*UDPTransport)(nil)
