package wire

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"dharma/internal/simnet"
)

func TestUDPRoundTrip(t *testing.T) {
	srv, err := ListenUDP("127.0.0.1:0", simnet.HandlerFunc(
		func(_ context.Context, from simnet.Addr, p []byte) ([]byte, error) {
			return append([]byte("ok:"), p...), nil
		}), time.Second)
	if err != nil {
		t.Fatalf("ListenUDP server: %v", err)
	}
	defer srv.Close()

	cli, err := ListenUDP("127.0.0.1:0", simnet.HandlerFunc(
		func(context.Context, simnet.Addr, []byte) ([]byte, error) { return nil, nil }), time.Second)
	if err != nil {
		t.Fatalf("ListenUDP client: %v", err)
	}
	defer cli.Close()

	resp, err := cli.Call(context.Background(), srv.Addr(), []byte("ping"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if !bytes.Equal(resp, []byte("ok:ping")) {
		t.Fatalf("resp = %q", resp)
	}
}

func TestUDPTimeoutOnDeadPeer(t *testing.T) {
	cli, err := ListenUDP("127.0.0.1:0", simnet.HandlerFunc(
		func(context.Context, simnet.Addr, []byte) ([]byte, error) { return nil, nil }), 100*time.Millisecond)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	defer cli.Close()

	// Port 1 on loopback has no listener; the datagram vanishes.
	if _, err := cli.Call(context.Background(), "127.0.0.1:1", []byte("x")); !errors.Is(err, simnet.ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
}

func TestUDPHandlerErrorTimesOut(t *testing.T) {
	srv, err := ListenUDP("127.0.0.1:0", simnet.HandlerFunc(
		func(context.Context, simnet.Addr, []byte) ([]byte, error) {
			return nil, errors.New("refuse")
		}), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := ListenUDP("127.0.0.1:0", simnet.HandlerFunc(
		func(context.Context, simnet.Addr, []byte) ([]byte, error) { return nil, nil }), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if _, err := cli.Call(context.Background(), srv.Addr(), []byte("x")); !errors.Is(err, simnet.ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
}

func TestUDPConcurrentCalls(t *testing.T) {
	srv, err := ListenUDP("127.0.0.1:0", simnet.HandlerFunc(
		func(_ context.Context, from simnet.Addr, p []byte) ([]byte, error) {
			return p, nil // echo
		}), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := ListenUDP("127.0.0.1:0", simnet.HandlerFunc(
		func(context.Context, simnet.Addr, []byte) ([]byte, error) { return nil, nil }), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				msg := []byte{byte(g), byte(i)}
				resp, err := cli.Call(context.Background(), srv.Addr(), msg)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(resp, msg) {
					errs <- errors.New("response mismatch")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestUDPCloseUnblocksCallers(t *testing.T) {
	cli, err := ListenUDP("127.0.0.1:0", simnet.HandlerFunc(
		func(context.Context, simnet.Addr, []byte) ([]byte, error) { return nil, nil }), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := cli.Call(context.Background(), "127.0.0.1:1", []byte("x"))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := cli.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, simnet.ErrClosed) {
			t.Fatalf("want ErrClosed, got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Call did not unblock after Close")
	}
	if _, err := cli.Call(context.Background(), "127.0.0.1:1", nil); !errors.Is(err, simnet.ErrClosed) {
		t.Fatalf("Call after Close: want ErrClosed, got %v", err)
	}
	if err := cli.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestUDPMessageLevelRoundTrip(t *testing.T) {
	// End-to-end: a wire.Message travels over UDP and decodes intact.
	srv, err := ListenUDP("127.0.0.1:0", simnet.HandlerFunc(
		func(_ context.Context, from simnet.Addr, p []byte) ([]byte, error) {
			req, err := Decode(p)
			if err != nil {
				return nil, err
			}
			resp := &Message{Kind: KindPong, Target: req.Target}
			return Encode(resp), nil
		}), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := ListenUDP("127.0.0.1:0", simnet.HandlerFunc(
		func(context.Context, simnet.Addr, []byte) ([]byte, error) { return nil, nil }), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	req := sampleMessage()
	raw, err := cli.Call(context.Background(), srv.Addr(), Encode(req))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	resp, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if resp.Kind != KindPong || resp.Target != req.Target {
		t.Fatalf("resp = %+v", resp)
	}
}
