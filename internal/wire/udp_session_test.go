package wire

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"dharma/internal/likir"
	"dharma/internal/session"
	"dharma/internal/simnet"
)

// newTestCA issues a shared authority and n identities for transport
// session tests.
func newTestCA(t *testing.T, n int) (*likir.Authority, []*likir.Identity) {
	t.Helper()
	auth, err := likir.NewAuthority(nil, time.Hour, nil)
	if err != nil {
		t.Fatalf("NewAuthority: %v", err)
	}
	ids := make([]*likir.Identity, n)
	for i := range ids {
		id, err := auth.Issue(nil, "node-"+string(rune('a'+i)))
		if err != nil {
			t.Fatalf("Issue: %v", err)
		}
		ids[i] = id
	}
	return auth, ids
}

func newSecuredTransport(t *testing.T, auth *likir.Authority, id *likir.Identity, h simnet.Handler) *UDPTransport {
	t.Helper()
	mgr, err := session.NewManager(session.Config{Identity: id, CAPub: auth.PublicKey()})
	if err != nil {
		t.Fatalf("session.NewManager: %v", err)
	}
	tr, err := ListenUDPOptions("127.0.0.1:0", h, UDPOptions{
		Timeout:     time.Second,
		Sessions:    mgr,
		RequireAuth: true,
	})
	if err != nil {
		t.Fatalf("ListenUDPOptions: %v", err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

func TestUDPSessionRoundTrip(t *testing.T) {
	auth, ids := newTestCA(t, 2)

	// The server handler must see the transport-authenticated peer
	// identity on its context — that is what lets the overlay skip the
	// per-message credential check.
	var sawPeer atomic.Bool
	srv := newSecuredTransport(t, auth, ids[0], simnet.HandlerFunc(
		func(ctx context.Context, from simnet.Addr, p []byte) ([]byte, error) {
			if cred, ok := session.PeerFromContext(ctx); ok && cred.NodeID == ids[1].NodeID {
				sawPeer.Store(true)
			}
			return append([]byte("ok:"), p...), nil
		}))
	cli := newSecuredTransport(t, auth, ids[1], simnet.HandlerFunc(
		func(context.Context, simnet.Addr, []byte) ([]byte, error) { return nil, nil }))

	for i := 0; i < 3; i++ {
		resp, err := cli.Call(context.Background(), srv.Addr(), []byte("ping"))
		if err != nil {
			t.Fatalf("Call %d: %v", i, err)
		}
		if !bytes.Equal(resp, []byte("ok:ping")) {
			t.Fatalf("resp = %q", resp)
		}
	}
	if !sawPeer.Load() {
		t.Fatal("handler never saw the session peer identity on its context")
	}
	// One session serves all three calls: the dial cache holds exactly
	// one entry and the handshake ran once.
	if n := cli.Sessions().Len(); n != 1 {
		t.Fatalf("client session cache = %d entries, want 1", n)
	}
}

func TestUDPRequireAuthRejectsPlainCaller(t *testing.T) {
	auth, ids := newTestCA(t, 1)
	srv := newSecuredTransport(t, auth, ids[0], simnet.HandlerFunc(
		func(context.Context, simnet.Addr, []byte) ([]byte, error) {
			t.Error("handler ran for an unauthenticated request")
			return nil, nil
		}))

	// An open client (no session layer) gets a typed UNAUTHORIZED answer,
	// not service.
	cli, err := ListenUDP("127.0.0.1:0", simnet.HandlerFunc(
		func(context.Context, simnet.Addr, []byte) ([]byte, error) { return nil, nil }), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	raw, err := cli.Call(context.Background(), srv.Addr(), Encode(&Message{Kind: KindPing}))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	resp, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if resp.Kind != KindUnauthorized {
		t.Fatalf("plain request answered %v, want UNAUTHORIZED", resp.Kind)
	}
	if srv.AuthRejected() == 0 {
		t.Fatal("server did not count the rejection")
	}
}

func TestUDPSessionRejectsWrongCA(t *testing.T) {
	auth, ids := newTestCA(t, 1)
	srv := newSecuredTransport(t, auth, ids[0], simnet.HandlerFunc(
		func(context.Context, simnet.Addr, []byte) ([]byte, error) { return []byte("x"), nil }))

	// A client certified by a different authority fails the handshake:
	// the server never replies to its HELLO, so the dial times out.
	otherAuth, otherIDs := newTestCA(t, 1)
	cli := newSecuredTransport(t, otherAuth, otherIDs[0], simnet.HandlerFunc(
		func(context.Context, simnet.Addr, []byte) ([]byte, error) { return nil, nil }))

	if _, err := cli.Call(context.Background(), srv.Addr(), []byte("ping")); !errors.Is(err, simnet.ErrTimeout) {
		t.Fatalf("foreign-CA call: want handshake timeout, got %v", err)
	}
	if srv.AuthRejected() == 0 {
		t.Fatal("server did not count the failed handshake")
	}
}

func TestUDPSessionStaleRehandshake(t *testing.T) {
	auth, ids := newTestCA(t, 2)
	echo := simnet.HandlerFunc(
		func(_ context.Context, _ simnet.Addr, p []byte) ([]byte, error) { return p, nil })

	srv := newSecuredTransport(t, auth, ids[0], echo)
	cli := newSecuredTransport(t, auth, ids[1], simnet.HandlerFunc(
		func(context.Context, simnet.Addr, []byte) ([]byte, error) { return nil, nil }))

	if _, err := cli.Call(context.Background(), srv.Addr(), []byte("one")); err != nil {
		t.Fatalf("first call: %v", err)
	}

	// The server "restarts": a fresh transport (fresh session manager, no
	// accept-side state) binds the same address. The client still holds a
	// session for that address; its next sealed request must earn a
	// stale-session hint and transparently re-handshake.
	addr := srv.Addr()
	srv.Close()
	mgr2, err := session.NewManager(session.Config{Identity: ids[0], CAPub: auth.PublicKey()})
	if err != nil {
		t.Fatal(err)
	}
	var srv2 *UDPTransport
	for i := 0; ; i++ {
		srv2, err = ListenUDPOptions(string(addr), echo, UDPOptions{
			Timeout: time.Second, Sessions: mgr2, RequireAuth: true,
		})
		if err == nil {
			break
		}
		if i == 50 {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer srv2.Close()

	resp, err := cli.Call(context.Background(), addr, []byte("two"))
	if err != nil {
		t.Fatalf("call after server restart: %v", err)
	}
	if !bytes.Equal(resp, []byte("two")) {
		t.Fatalf("resp = %q", resp)
	}
}
