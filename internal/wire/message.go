// Package wire defines the overlay RPC message vocabulary shared by the
// Kademlia protocol logic (internal/kademlia), the storage layer
// (internal/dht) and both transports (internal/simnet in-memory, and the
// UDP transport in this package). Messages are encoded with a compact
// hand-rolled binary codec so that payload sizes — and therefore the
// UDP-MTU pressure the paper discusses — are realistic.
package wire

import (
	"dharma/internal/kadid"
)

// Kind discriminates the RPC message types of the overlay protocol.
type Kind uint8

// Protocol message kinds. The first four RPCs are Kademlia's; STORE is
// extended with append ("one-bit token") semantics and FIND_VALUE with
// index-side filtering, per DHARMA's requirements.
const (
	KindPing Kind = iota + 1
	KindPong
	KindStore        // append entries to the block stored under Target
	KindStoreAck     // acknowledgement for KindStore and KindReplicate
	KindFindNode     // request the k closest contacts to Target
	KindFindValue    // request the block under Target (or closest contacts)
	KindNodes        // response carrying contacts
	KindValue        // response carrying block entries
	KindError        // response carrying an error string
	KindReplicate    // max-merge a replica of the block under Target
	KindBusy         // admission rejection: retry with backoff, peer is alive
	KindSummary      // anti-entropy: compare block summaries before moving data
	KindSummaryReply // response carrying the receiver's summary (+ counts on mismatch)
	KindUnauthorized // identity rejection: sender or entries failed Likir verification
)

// String returns a human-readable name for the message kind.
func (k Kind) String() string {
	switch k {
	case KindPing:
		return "PING"
	case KindPong:
		return "PONG"
	case KindStore:
		return "STORE"
	case KindStoreAck:
		return "STORE_ACK"
	case KindFindNode:
		return "FIND_NODE"
	case KindFindValue:
		return "FIND_VALUE"
	case KindNodes:
		return "NODES"
	case KindValue:
		return "VALUE"
	case KindError:
		return "ERROR"
	case KindReplicate:
		return "REPLICATE"
	case KindBusy:
		return "BUSY"
	case KindSummary:
		return "SUMMARY"
	case KindSummaryReply:
		return "SUMMARY_REPLY"
	case KindUnauthorized:
		return "UNAUTHORIZED"
	default:
		return "UNKNOWN"
	}
}

// Contact is the (identifier, address) pair by which overlay nodes refer
// to each other.
type Contact struct {
	ID   kadid.ID
	Addr string
}

// Entry is one element of a stored block. DHARMA blocks are weighted
// adjacency lists: Field names the neighbour (a tag or resource name),
// Count is the accumulated arc weight (the number of "+1 tokens"
// appended), and Data carries optional opaque bytes (the URI for type-4
// blocks). Author and Sig are filled by the Likir identity layer; they
// authenticate (block key, Field, Data) and are empty when the overlay
// runs without identities.
//
// Init implements DHARMA's Approximation B: when Init > 0 and the field
// does not yet exist in the block, the storage node creates it with
// weight Init instead of adding Count. The conditional is evaluated at
// the storing node, so the writer needs no extra lookup to learn
// whether the arc exists, and two writers racing on the same new arc
// produce a bounded 2·Init instead of 2·u(τ,r).
type Entry struct {
	Field  string
	Count  uint64
	Init   uint64 // create-value when the field is absent (0 = plain add)
	Data   []byte
	Author []byte // Ed25519 public key of the writer (optional)
	Sig    []byte // signature over the entry (optional)
}

// Clone returns a deep copy of the entry.
func (e Entry) Clone() Entry {
	c := e
	if e.Data != nil {
		c.Data = append([]byte(nil), e.Data...)
	}
	if e.Author != nil {
		c.Author = append([]byte(nil), e.Author...)
	}
	if e.Sig != nil {
		c.Sig = append([]byte(nil), e.Sig...)
	}
	return c
}

// CloneEntries returns a deep copy of an entry list (nil stays nil).
// Callers that hand entries across an ownership boundary — a cache
// storing what it read, a store returning internal state — clone so
// that neither side can mutate the other's copy.
func CloneEntries(es []Entry) []Entry {
	if es == nil {
		return nil
	}
	out := make([]Entry, len(es))
	for i := range es {
		out[i] = es[i].Clone()
	}
	return out
}

// BlockSummary is the fixed-size digest replicas exchange before any
// block data moves. Fields is the number of fields in the block and
// Digest is an order-independent XOR fold of a 64-bit hash of every
// (field, count) pair, so two replicas whose digests match hold the
// same weight map with false-positive probability ~2^-64 per
// comparison. A block that does not exist summarises to the zero value.
type BlockSummary struct {
	Fields uint64
	Digest uint64
}

// Message is a single overlay RPC request or response.
//
// TraceID and Hop are the observability fields of codec v3: a client
// that is tracing a lookup stamps every RPC of that lookup with its
// trace ID and the α-wave (round) number, servers echo the trace ID in
// their responses, and the hop-by-hop timeline is reassembled by
// `Node.TraceLookup`. Both are zero for untraced traffic, and decode as
// zero from v2 peers.
//
// Deadline is the deadline-propagation field of codec v4: the caller's
// remaining budget in microseconds at send time (0 = unbounded). A
// server installs it as a handler context deadline and sheds requests
// whose budget already ran out — the caller is gone, answering is pure
// waste. It decodes as zero from v2/v3 peers.
type Message struct {
	Kind     Kind
	From     Contact  // the sender, so receivers can refresh routing state
	Target   kadid.ID // lookup target or block key
	TopN     uint32   // FIND_VALUE: return at most this many entries (0 = all)
	TraceID  uint64   // lookup trace this RPC belongs to (0 = untraced)
	Hop      uint32   // α-wave number within the traced lookup
	Deadline uint64   // caller's remaining budget in µs (0 = none)
	Summary  BlockSummary
	Contacts []Contact
	Entries  []Entry
	Err      string
	Cred     []byte // Likir credential blob of the sender (optional)
}
