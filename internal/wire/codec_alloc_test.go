package wire

import (
	"fmt"
	"reflect"
	"testing"

	"dharma/internal/kadid"
)

// lookupMessage is the RPC the overlay sends most at scale: a NODES
// response carrying k contacts and no blobs. This is the shape the
// 0-alloc steady-state claim is made for.
func lookupMessage(k int) *Message {
	m := &Message{
		Kind:   KindNodes,
		From:   Contact{ID: kadid.HashString("server"), Addr: "10.0.0.1:4100"},
		Target: kadid.HashString("target"),
	}
	for i := 0; i < k; i++ {
		m.Contacts = append(m.Contacts, Contact{
			ID:   kadid.HashString(fmt.Sprintf("peer-%d", i)),
			Addr: fmt.Sprintf("10.0.%d.%d:4100", i/256, i%256),
		})
	}
	return m
}

func TestAppendEncodeMatchesEncode(t *testing.T) {
	for _, m := range []*Message{sampleMessage(), lookupMessage(20), {Kind: KindPing}} {
		want := Encode(m)
		got := AppendEncode(nil, m)
		if string(got) != string(want) {
			t.Fatalf("AppendEncode differs from Encode for %v", m.Kind)
		}
		// Appending after a prefix must leave the prefix intact.
		withPrefix := AppendEncode([]byte("prefix"), m)
		if string(withPrefix[:6]) != "prefix" || string(withPrefix[6:]) != string(want) {
			t.Fatal("AppendEncode clobbered the prefix or the payload")
		}
	}
}

func TestDecodeIntoMatchesDecode(t *testing.T) {
	var d Decoder
	var reused Message
	// Decode a sequence of different messages into the SAME struct; each
	// result must equal the fresh Decode of the same bytes.
	for i, m := range []*Message{
		sampleMessage(),
		lookupMessage(20),
		{Kind: KindPing},
		lookupMessage(3),
		sampleMessage(),
	} {
		b := Encode(m)
		want, err := Decode(b)
		if err != nil {
			t.Fatalf("step %d: Decode: %v", i, err)
		}
		if err := d.DecodeInto(&reused, b); err != nil {
			t.Fatalf("step %d: DecodeInto: %v", i, err)
		}
		// Normalise empty-vs-nil slices (DecodeInto leaves truncated
		// capacity behind; Decode yields nil).
		got := reused
		if len(got.Contacts) == 0 {
			got.Contacts = nil
		}
		if len(got.Entries) == 0 {
			got.Entries = nil
		}
		if !reflect.DeepEqual(&got, want) {
			t.Fatalf("step %d: DecodeInto mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestDecodeIntoRejectsMalformed(t *testing.T) {
	var d Decoder
	var m Message
	b := Encode(sampleMessage())
	if err := d.DecodeInto(&m, b[:len(b)-3]); err == nil {
		t.Fatal("truncated input accepted")
	}
	if err := d.DecodeInto(&m, nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestDecodeIntoBlobsAreOwned(t *testing.T) {
	var d Decoder
	var m Message
	b := Encode(sampleMessage())
	if err := d.DecodeInto(&m, b); err != nil {
		t.Fatal(err)
	}
	data := m.Entries[0].Data
	cred := m.Cred
	for i := range b {
		b[i] = 0xff // scribble over the wire bytes
	}
	if string(data) != "x" || string(cred) != "credential-bytes" {
		t.Fatal("decoded blobs alias the input buffer")
	}
}

func TestInternerBounded(t *testing.T) {
	var in interner
	for i := 0; i < 3*maxInterned; i++ {
		_ = in.intern([]byte(fmt.Sprintf("unique-%d", i)))
		if len(in.m) > maxInterned {
			t.Fatalf("intern table grew to %d entries", len(in.m))
		}
	}
	// Despite resets, interning still returns correct strings.
	if s := in.intern([]byte("hello")); s != "hello" {
		t.Fatalf("intern returned %q", s)
	}
}

func TestBufferPoolRoundTrip(t *testing.T) {
	buf := GetBuffer()
	buf.B = AppendEncode(buf.B[:0], sampleMessage())
	if _, err := Decode(buf.B); err != nil {
		t.Fatal(err)
	}
	buf.Release()
	// Oversized buffers are dropped, not pooled.
	big := &Buffer{B: make([]byte, maxPooledBuf+1)}
	big.Release() // must not panic; nothing further observable
}

// BenchmarkAppendEncode is the gated steady-state request-marshal path:
// encoding into a recycled buffer must not allocate.
// scripts/alloc_gate.sh holds it to scripts/alloc_budgets.txt.
func BenchmarkAppendEncode(b *testing.B) {
	m := lookupMessage(20)
	buf := make([]byte, 0, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendEncode(buf[:0], m)
	}
	if len(buf) == 0 {
		b.Fatal("empty encode")
	}
}

// BenchmarkDecodeInto is the gated steady-state unmarshal path: a warmed
// Decoder re-reading lookup-plane traffic must not allocate (strings
// come from the intern table, slice capacity is recycled).
func BenchmarkDecodeInto(b *testing.B) {
	payloads := make([][]byte, 8)
	for i := range payloads {
		payloads[i] = Encode(lookupMessage(20))
	}
	var d Decoder
	var m Message
	for _, p := range payloads { // warm the intern table
		if err := d.DecodeInto(&m, p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.DecodeInto(&m, payloads[i%len(payloads)]); err != nil {
			b.Fatal(err)
		}
	}
}

// summaryReplyMessage is the anti-entropy mismatch reply shape: the
// receiver's summary plus count-only entries (no Data/Author/Sig).
func summaryReplyMessage(fields int) *Message {
	m := &Message{
		Kind:    KindSummaryReply,
		From:    Contact{ID: kadid.HashString("replica"), Addr: "10.0.0.2:4100"},
		Target:  kadid.HashString("rock|3"),
		Summary: BlockSummary{Fields: uint64(fields), Digest: 0x9e3779b97f4a7c15},
	}
	for i := 0; i < fields; i++ {
		m.Entries = append(m.Entries, Entry{
			Field: fmt.Sprintf("tag-%d", i),
			Count: uint64(i*7 + 1),
		})
	}
	return m
}

// BenchmarkAppendEncodeSummary gates the anti-entropy digest-exchange
// marshal path: encoding a summary reply into a recycled buffer must
// not allocate. scripts/alloc_gate.sh holds it to alloc_budgets.txt.
func BenchmarkAppendEncodeSummary(b *testing.B) {
	m := summaryReplyMessage(32)
	buf := make([]byte, 0, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendEncode(buf[:0], m)
	}
	if len(buf) == 0 {
		b.Fatal("empty encode")
	}
}

// BenchmarkDecodeIntoSummary gates the anti-entropy unmarshal path: a
// warmed Decoder re-reading summary replies must not allocate.
func BenchmarkDecodeIntoSummary(b *testing.B) {
	payloads := make([][]byte, 8)
	for i := range payloads {
		payloads[i] = Encode(summaryReplyMessage(32))
	}
	var d Decoder
	var m Message
	for _, p := range payloads { // warm the intern table
		if err := d.DecodeInto(&m, p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.DecodeInto(&m, payloads[i%len(payloads)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecRoundTrip is one full client-side RPC worth of codec
// work — marshal the request into a pooled buffer, unmarshal the
// response with a warmed Decoder — and must be allocation-free.
func BenchmarkCodecRoundTrip(b *testing.B) {
	req := &Message{Kind: KindFindNode, From: Contact{ID: kadid.HashString("client"), Addr: "10.9.9.9:4100"}, Target: kadid.HashString("t")}
	respBytes := Encode(lookupMessage(20))
	var d Decoder
	var resp Message
	if err := d.DecodeInto(&resp, respBytes); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := GetBuffer()
		buf.B = AppendEncode(buf.B[:0], req)
		if err := d.DecodeInto(&resp, respBytes); err != nil {
			b.Fatal(err)
		}
		buf.Release()
	}
}
