package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dharma/internal/kadid"
)

func sampleMessage() *Message {
	return &Message{
		Kind:    KindFindValue,
		From:    Contact{ID: kadid.HashString("node-a"), Addr: "node-a"},
		Target:  kadid.HashString("rock|3"),
		TopN:    100,
		TraceID: 0x1122334455667788,
		Hop:     3,
		Summary: BlockSummary{Fields: 2, Digest: 0xdeadbeefcafe},
		Contacts: []Contact{
			{ID: kadid.HashString("node-b"), Addr: "node-b"},
			{ID: kadid.HashString("node-c"), Addr: "10.0.0.3:9999"},
		},
		Entries: []Entry{
			{Field: "pop", Count: 42, Init: 1, Data: []byte("x")},
			{Field: "indie", Count: 7, Author: bytes.Repeat([]byte{1}, 32), Sig: bytes.Repeat([]byte{2}, 64)},
		},
		Err:  "",
		Cred: []byte("credential-bytes"),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := sampleMessage()
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestEncodeDecodeEmptyMessage(t *testing.T) {
	m := &Message{Kind: KindPing}
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Kind != KindPing || len(got.Contacts) != 0 || len(got.Entries) != 0 {
		t.Fatalf("got %+v", got)
	}
}

// encodeLegacy hand-crafts a frame in an older codec layout: v2 (no
// trace fields, no deadline) or v3 (trace fields, no deadline). Tests
// and fuzz seeds use it to prove the rolling-upgrade guarantee — old
// peers keep talking to new ones while the fleet converges.
func encodeLegacy(version byte, m *Message) []byte {
	w := &writer{}
	w.byte(version)
	w.byte(byte(m.Kind))
	w.id(m.From.ID)
	w.str(m.From.Addr)
	w.id(m.Target)
	w.uvarint(uint64(m.TopN))
	w.uvarint(m.Summary.Fields)
	w.uvarint(m.Summary.Digest)
	if version >= 3 {
		w.uvarint(m.TraceID)
		w.uvarint(uint64(m.Hop))
	}
	w.uvarint(uint64(len(m.Contacts)))
	for _, c := range m.Contacts {
		w.id(c.ID)
		w.str(c.Addr)
	}
	w.uvarint(uint64(len(m.Entries)))
	for _, e := range m.Entries {
		w.str(e.Field)
		w.uvarint(e.Count)
		w.uvarint(e.Init)
		w.blob(e.Data)
		w.blob(e.Author)
		w.blob(e.Sig)
	}
	w.str(m.Err)
	w.blob(m.Cred)
	return w.buf
}

// TestDecodeAcceptsV2 hand-crafts a codec-v2 frame — the pre-trace
// layout, with nothing between Summary.Digest and the contact count —
// and asserts a v4 decoder still reads it, with the trace and deadline
// fields zero.
func TestDecodeAcceptsV2(t *testing.T) {
	want := sampleMessage()
	want.TraceID = 0 // v2 frames cannot carry trace state
	want.Hop = 0

	w := &writer{}
	w.byte(codecVersionOldest)
	w.byte(byte(want.Kind))
	w.id(want.From.ID)
	w.str(want.From.Addr)
	w.id(want.Target)
	w.uvarint(uint64(want.TopN))
	w.uvarint(want.Summary.Fields)
	w.uvarint(want.Summary.Digest)
	w.uvarint(uint64(len(want.Contacts)))
	for _, c := range want.Contacts {
		w.id(c.ID)
		w.str(c.Addr)
	}
	w.uvarint(uint64(len(want.Entries)))
	for _, e := range want.Entries {
		w.str(e.Field)
		w.uvarint(e.Count)
		w.uvarint(e.Init)
		w.blob(e.Data)
		w.blob(e.Author)
		w.blob(e.Sig)
	}
	w.str(want.Err)
	w.blob(want.Cred)

	got, err := Decode(w.buf)
	if err != nil {
		t.Fatalf("Decode v2 frame: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("v2 decode mismatch:\n got %+v\nwant %+v", got, want)
	}

	// A traced message decoded from a stale (v2-shaped) buffer must not
	// leak the previous decode's trace fields.
	var d Decoder
	m := &Message{}
	if err := d.DecodeInto(m, Encode(sampleMessage())); err != nil {
		t.Fatal(err)
	}
	if m.TraceID == 0 || m.Hop == 0 {
		t.Fatal("v4 decode should have set trace fields")
	}
	if err := d.DecodeInto(m, w.buf); err != nil {
		t.Fatal(err)
	}
	if m.TraceID != 0 || m.Hop != 0 {
		t.Fatalf("v2 decode left stale trace fields: id=%d hop=%d", m.TraceID, m.Hop)
	}
}

// TestDecodeAcceptsV3 does the same for a codec-v3 frame — trace
// fields present, no Deadline — proving the v3→v4 upgrade path and
// that stale deadline state never leaks across decodes.
func TestDecodeAcceptsV3(t *testing.T) {
	want := sampleMessage()
	buf := encodeLegacy(codecVersionPrev, want)

	got, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode v3 frame: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("v3 decode mismatch:\n got %+v\nwant %+v", got, want)
	}

	var d Decoder
	m := &Message{}
	v4 := sampleMessage()
	v4.Deadline = 12345
	if err := d.DecodeInto(m, Encode(v4)); err != nil {
		t.Fatal(err)
	}
	if m.Deadline != 12345 {
		t.Fatal("v4 decode should have set the deadline field")
	}
	if err := d.DecodeInto(m, buf); err != nil {
		t.Fatal(err)
	}
	if m.Deadline != 0 {
		t.Fatalf("v3 decode left a stale deadline: %d", m.Deadline)
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	b := Encode(sampleMessage())
	b[0] = 99
	if _, err := Decode(b); !errors.Is(err, ErrMalformed) {
		t.Fatalf("want ErrMalformed, got %v", err)
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	b := append(Encode(sampleMessage()), 0xFF)
	if _, err := Decode(b); !errors.Is(err, ErrMalformed) {
		t.Fatalf("want ErrMalformed, got %v", err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	b := Encode(sampleMessage())
	for cut := 1; cut < len(b); cut += 7 {
		if _, err := Decode(b[:cut]); err == nil {
			t.Fatalf("Decode accepted a message truncated to %d bytes", cut)
		}
	}
}

func TestDecodeRejectsEmptyInput(t *testing.T) {
	// An empty input has no version byte; byte() returns 0 which fails
	// the version check.
	if _, err := Decode(nil); !errors.Is(err, ErrMalformed) {
		t.Fatalf("want ErrMalformed, got %v", err)
	}
}

func TestDecodeRejectsHugeString(t *testing.T) {
	// Hand-craft a message whose From.Addr length claims > MaxStringLen.
	w := &writer{}
	w.byte(codecVersion)
	w.byte(byte(KindPing))
	w.id(kadid.ID{})
	w.uvarint(MaxStringLen + 1) // From.Addr length
	if _, err := Decode(w.buf); !errors.Is(err, ErrMalformed) {
		t.Fatalf("want ErrMalformed, got %v", err)
	}
}

func TestDecodeRejectsHugeList(t *testing.T) {
	w := &writer{}
	w.byte(codecVersion)
	w.byte(byte(KindNodes))
	w.id(kadid.ID{})
	w.str("a")
	w.id(kadid.ID{})
	w.uvarint(0)              // TopN
	w.uvarint(0)              // Summary.Fields
	w.uvarint(0)              // Summary.Digest
	w.uvarint(0)              // TraceID
	w.uvarint(0)              // Hop
	w.uvarint(0)              // Deadline
	w.uvarint(MaxListLen + 1) // contact count
	if _, err := Decode(w.buf); !errors.Is(err, ErrMalformed) {
		t.Fatalf("want ErrMalformed, got %v", err)
	}
}

func TestDecodeNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		b := make([]byte, rng.Intn(300))
		rng.Read(b)
		Decode(b) //nolint:errcheck // only checking absence of panics
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(kind uint8, fromID, target [kadid.Size]byte, addr string, topN uint32,
		field string, count, initV uint64, data []byte, errStr string) bool {
		if len(addr) > MaxStringLen || len(field) > MaxStringLen || len(errStr) > MaxStringLen {
			return true
		}
		if len(data) > MaxBlobLen {
			return true
		}
		m := &Message{
			Kind:    Kind(kind),
			From:    Contact{ID: kadid.ID(fromID), Addr: addr},
			Target:  kadid.ID(target),
			TopN:    topN,
			Entries: []Entry{{Field: field, Count: count, Init: initV, Data: data}},
			Err:     errStr,
		}
		if len(data) == 0 {
			m.Entries[0].Data = nil // Decode normalises empty blobs to nil
		}
		got, err := Decode(Encode(m))
		return err == nil && reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Fatal(err)
	}
}

func TestEntryClone(t *testing.T) {
	e := Entry{Field: "f", Count: 3, Data: []byte{1}, Author: []byte{2}, Sig: []byte{3}}
	c := e.Clone()
	c.Data[0] = 9
	c.Author[0] = 9
	c.Sig[0] = 9
	if e.Data[0] != 1 || e.Author[0] != 2 || e.Sig[0] != 3 {
		t.Fatal("Clone shares underlying arrays")
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{KindPing, KindPong, KindStore, KindStoreAck, KindFindNode,
		KindFindValue, KindNodes, KindValue, KindError, KindReplicate, KindBusy,
		KindSummary, KindSummaryReply, KindUnauthorized, Kind(200)}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" {
			t.Fatalf("empty name for kind %d", k)
		}
		if seen[s] {
			t.Fatalf("duplicate name %q", s)
		}
		seen[s] = true
	}
}

func BenchmarkEncode(b *testing.B) {
	m := sampleMessage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(m)
	}
}

func BenchmarkDecode(b *testing.B) {
	raw := Encode(sampleMessage())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(raw); err != nil {
			b.Fatal(err)
		}
	}
}
