package wire

import (
	"context"
	"testing"
	"time"

	"dharma/internal/admission"
	"dharma/internal/simnet"
)

// TestUDPBusyReplyIsFast: with the single work-queue slot held by a
// stuck handler, the next request must get an explicit KindBusy reply
// almost immediately — not sit out the client's full retry timeout the
// way silence would.
func TestUDPBusyReplyIsFast(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	srv, err := ListenUDPAdmitted("127.0.0.1:0", simnet.HandlerFunc(
		func(_ context.Context, _ simnet.Addr, p []byte) ([]byte, error) {
			entered <- struct{}{}
			<-gate
			return p, nil
		}), 5*time.Second, admission.Config{QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer close(gate)

	cli, err := ListenUDP("127.0.0.1:0", simnet.HandlerFunc(
		func(context.Context, simnet.Addr, []byte) ([]byte, error) { return nil, nil }), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		cli.Call(context.Background(), srv.Addr(), Encode(&Message{Kind: KindPing})) //nolint:errcheck
	}()
	<-entered // slot held

	start := time.Now()
	raw, err := cli.Call(context.Background(), srv.Addr(), Encode(&Message{Kind: KindPing}))
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("second call failed at transport level: %v", err)
	}
	resp, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode busy reply: %v", err)
	}
	if resp.Kind != KindBusy {
		t.Fatalf("reply kind = %v, want BUSY", resp.Kind)
	}
	if elapsed > time.Second {
		t.Fatalf("busy reply took %v; rejection must be near-instant, not a timeout", elapsed)
	}
	if got := srv.BusyServed(); got != 1 {
		t.Fatalf("BusyServed = %d, want 1", got)
	}
	if st := srv.AdmissionStats(); st.RejectedQueue != 1 {
		t.Fatalf("AdmissionStats = %+v, want one queue rejection", st)
	}

	gate <- struct{}{} // release the stuck handler
	<-firstDone
}
